GO ?= go

.PHONY: ci fmt vet build test race lint cover bench bench-smoke bench-guard smoke obs-guard migrate-chaos determinism-guard determinism-record

ci: fmt vet lint build race cover migrate-chaos smoke obs-guard determinism-guard bench-guard

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# cover: the core LITE layer carries the dedup/admission/failover state
# machines; its statement coverage must not silently erode. The floor
# sits below the current figure (~86%) so honest refactors pass while a
# test-free subsystem landing in internal/lite fails loudly.
COVER_FLOOR = 80.0
# The fault-injection and load-generation harnesses back every chaos
# and tail claim; they carry their own (lower) floor.
COVER_FLOOR_HARNESS = 75.0
define check_cover
	@pct=$$($(GO) test -cover $(1) | awk '{for (i=1; i<=NF; i++) if ($$i ~ /%$$/) print substr($$i, 1, length($$i)-1)}'); \
	if [ -z "$$pct" ]; then echo "cover: no coverage figure from go test $(1)"; exit 1; fi; \
	ok=$$(awk -v p="$$pct" -v f="$(2)" 'BEGIN { print (p >= f) ? 1 : 0 }'); \
	if [ "$$ok" = 1 ]; then \
		echo "cover: $(1) at $$pct% (floor $(2)%)"; \
	else \
		echo "cover: $(1) at $$pct% is below the $(2)% floor"; exit 1; \
	fi
endef
cover:
	$(call check_cover,./internal/lite/,$(COVER_FLOOR))
	$(call check_cover,./internal/tenant/,$(COVER_FLOOR))
	$(call check_cover,./internal/simtime/,$(COVER_FLOOR))
	$(call check_cover,./internal/fabric/,$(COVER_FLOOR))
	$(call check_cover,./internal/apps/kvstore/,$(COVER_FLOOR))
	$(call check_cover,./internal/faults/,$(COVER_FLOOR_HARNESS))
	$(call check_cover,./internal/load/,$(COVER_FLOOR_HARNESS))

# lint: simulation code must not read the host clock or the global
# math/rand stream — either breaks bit-for-bit reproducibility.
lint:
	$(GO) run ./cmd/simlint internal

bench:
	$(GO) run ./cmd/litebench -all

# bench-smoke regenerates the machine-readable perf feed from a fast
# experiment subset (sub-second each, except scale — the 500-node run
# deliberately includes the expensive pre-PR baseline for its speedup
# gate — and the three 500-node stressors churn/incast/rebalance,
# which run twice each for their built-in replay check).
bench-smoke:
	$(GO) run ./cmd/litebench -metrics -json BENCH_litebench.json trace breakdown tput tail saturate fairness lease drain tenants scale churn incast rebalance crossover

# bench-guard re-runs the experiments recorded in the committed feed
# and fails if any virtual-time figure drifted: performance changes
# must be deliberate (and re-recorded with bench-smoke), never
# accidental.
bench-guard:
	$(GO) run ./cmd/litebench -compare BENCH_litebench.json

# migrate-chaos: the chaos-during-migration suite under the race
# detector — faults pinned to every migration phase, replayed under
# three distinct seeds (see migChaosSeeds), each run twice and compared
# bit for bit.
migrate-chaos:
	$(GO) test -race -count=1 -run TestMigrationChaos ./internal/faults/

# determinism-guard replays the seeded chaos experiment and the
# 500-node churn storm and diffs their tables against the committed
# goldens byte for byte. Chaos exercises every layer (scheduler,
# wakeups, fabric, faults, RPC) at small scale; churn replays a
# whole-leaf failure on the Clos fabric — mass declarations, lease
# revocation, shard failover — so any scheduler or fabric change that
# moves a single event shows up here immediately. Wall-time footer
# lines (bracketed) are stripped; everything else is virtual and must
# match exactly. Refresh the goldens with determinism-record after a
# deliberate timeline change.
define check_golden
	@$(GO) run ./cmd/litebench $(1) | grep -v '^\[' > .$(1).fresh.txt; \
	if cmp -s $(2) .$(1).fresh.txt; then \
		rm -f .$(1).fresh.txt; \
		echo "determinism-guard: $(1) replay matches the committed golden"; \
	else \
		echo "determinism-guard: DRIFT from $(2)"; \
		diff $(2) .$(1).fresh.txt || true; \
		rm -f .$(1).fresh.txt; exit 1; \
	fi
endef
determinism-guard:
	$(call check_golden,chaos,GOLDEN_chaos.txt)
	$(call check_golden,churn,GOLDEN_churn.txt)

determinism-record:
	$(GO) run ./cmd/litebench chaos | grep -v '^\[' > GOLDEN_chaos.txt
	$(GO) run ./cmd/litebench churn | grep -v '^\[' > GOLDEN_churn.txt

# smoke: the harness lists its experiments and one runs end to end.
smoke:
	$(GO) run ./cmd/litebench -list
	$(GO) run ./cmd/litebench trace

# obs-guard: collecting metrics must not move a single virtual-time
# event — the same experiment renders identical tables with and
# without -metrics (metric dump lines are '%'-prefixed; the bracketed
# footer carries wall time, so both are stripped before comparing).
obs-guard:
	@a=$$($(GO) run ./cmd/litebench breakdown | grep -v '^\['); \
	b=$$($(GO) run ./cmd/litebench -metrics breakdown | grep -v '^\[' | grep -v '^%'); \
	if [ "$$a" = "$$b" ]; then \
		echo "obs-guard: metrics leave the virtual timeline unchanged"; \
	else \
		echo "obs-guard: DRIFT between plain and -metrics runs"; \
		echo "--- plain ---"; echo "$$a"; \
		echo "--- with -metrics ---"; echo "$$b"; exit 1; \
	fi
