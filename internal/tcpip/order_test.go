package tcpip

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"lite/internal/fabric"
	"lite/internal/params"
	"lite/internal/simtime"
)

// Property: messages of arbitrary sizes arrive exactly once, in order,
// with contents intact, regardless of interleaved bidirectional
// traffic.
func TestQuickMessageOrdering(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		count := int(n%40) + 5
		rng := rand.New(rand.NewSource(seed))
		sizes := make([]int, count)
		for i := range sizes {
			sizes[i] = rng.Intn(200000) + 4
		}
		cfg := params.Default()
		env := simtime.NewEnv()
		fab := fabric.New(&cfg)
		_ = fab.AddPort(0)
		_ = fab.AddPort(1)
		net := NewNetwork(env, &cfg, fab)
		l, _ := net.Stack(1).Listen(80)
		ok := true
		env.Go("server", func(p *simtime.Proc) {
			conn, err := l.Accept(p)
			if err != nil {
				ok = false
				return
			}
			for i := 0; i < count; i++ {
				msg, err := conn.Recv(p)
				if err != nil || len(msg) != sizes[i] {
					ok = false
					return
				}
				if binary.LittleEndian.Uint32(msg) != uint32(i) {
					ok = false
					return
				}
				// Echo a small ack to exercise the reverse flow.
				if conn.Send(p, msg[:4]) != nil {
					ok = false
					return
				}
			}
		})
		env.Go("client", func(p *simtime.Proc) {
			conn, err := net.Stack(0).Dial(p, 1, 80)
			if err != nil {
				ok = false
				return
			}
			for i := 0; i < count; i++ {
				msg := make([]byte, sizes[i])
				binary.LittleEndian.PutUint32(msg, uint32(i))
				if conn.Send(p, msg) != nil {
					ok = false
					return
				}
				ack, err := conn.Recv(p)
				if err != nil || binary.LittleEndian.Uint32(ack) != uint32(i) {
					ok = false
					return
				}
			}
		})
		if err := env.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
