// Package tcpip simulates the TCP/IP-over-InfiniBand (IPoIB) stack the
// paper uses as its conventional-networking baseline. It shares the
// same fabric ports as the RDMA NICs — IPoIB rides the same physical
// link — but pays the kernel network-stack software costs on both
// sides of every message: per-message socket overhead, per-packet
// processing, and per-byte copy/checksum bandwidth.
//
// Connections are reliable and message-oriented (boundaries are
// preserved, like SOCK_SEQPACKET); all the paper's TCP baselines
// exchange length-delimited messages, so this loses no generality.
package tcpip

import (
	"errors"

	"lite/internal/fabric"
	"lite/internal/params"
	"lite/internal/simtime"
)

// Errors returned by the stack.
var (
	ErrClosed      = errors.New("tcpip: connection closed")
	ErrRefused     = errors.New("tcpip: connection refused")
	ErrUnreachable = errors.New("tcpip: destination unreachable")
	ErrPortInUse   = errors.New("tcpip: port in use")
)

// Network is the cluster-wide IPoIB network.
type Network struct {
	env    *simtime.Env
	cfg    *params.Config
	fab    *fabric.Fabric
	stacks map[int]*Stack
}

// NewNetwork returns an IPoIB network over the given fabric. The
// fabric ports must already exist (they are shared with the RDMA NICs).
func NewNetwork(env *simtime.Env, cfg *params.Config, fab *fabric.Fabric) *Network {
	return &Network{env: env, cfg: cfg, fab: fab, stacks: make(map[int]*Stack)}
}

// Stack returns (creating on first use) the TCP stack of a node.
func (n *Network) Stack(node int) *Stack {
	s, ok := n.stacks[node]
	if !ok {
		s = &Stack{net: n, node: node, listeners: make(map[int]*Listener)}
		n.stacks[node] = s
	}
	return s
}

// Stack is one node's TCP stack.
type Stack struct {
	net       *Network
	node      int
	listeners map[int]*Listener
}

// Node returns the node id.
func (s *Stack) Node() int { return s.node }

// Listener accepts incoming connections on one port.
type Listener struct {
	stack   *Stack
	port    int
	backlog []*Conn
	cond    simtime.Cond
	closed  bool
}

// Listen opens a listener on port.
func (s *Stack) Listen(port int) (*Listener, error) {
	if l, ok := s.listeners[port]; ok && !l.closed {
		return nil, ErrPortInUse
	}
	l := &Listener{stack: s, port: port}
	s.listeners[port] = l
	return l, nil
}

// Accept blocks until a connection arrives and returns it.
func (l *Listener) Accept(p *simtime.Proc) (*Conn, error) {
	for len(l.backlog) == 0 {
		if l.closed {
			return nil, ErrClosed
		}
		l.cond.Wait(p)
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	return c, nil
}

// Close shuts the listener down; pending Accepts fail.
func (l *Listener) Close(e *simtime.Env) {
	l.closed = true
	l.cond.Broadcast(e)
}

// direction is one flow of a full-duplex connection.
type direction struct {
	queue    [][]byte
	arrive   simtime.Cond
	inflight int64
	credit   simtime.Cond
	closed   bool
}

// connState is the state shared by a connection's two handles.
type connState struct {
	net  *Network
	a, b int       // node ids; a dialed b
	ab   direction // a -> b flow
	ba   direction // b -> a flow
}

// Conn is one endpoint's handle on an established connection.
type Conn struct {
	st    *connState
	local int
}

// LocalNode returns this handle's node.
func (c *Conn) LocalNode() int { return c.local }

// RemoteNode returns the peer's node.
func (c *Conn) RemoteNode() int {
	if c.local == c.st.a {
		return c.st.b
	}
	return c.st.a
}

func (c *Conn) out() *direction {
	if c.local == c.st.a {
		return &c.st.ab
	}
	return &c.st.ba
}

func (c *Conn) in() *direction {
	if c.local == c.st.a {
		return &c.st.ba
	}
	return &c.st.ab
}

// Dial connects to (node, port), paying one handshake round trip, and
// returns the caller's connection handle.
func (s *Stack) Dial(p *simtime.Proc, node, port int) (*Conn, error) {
	cfg := s.net.cfg
	if !s.net.fab.Reachable(s.node, node) || !s.net.fab.Reachable(node, s.node) {
		return nil, ErrUnreachable
	}
	rs := s.net.Stack(node)
	l, ok := rs.listeners[port]
	if !ok || l.closed {
		return nil, ErrRefused
	}
	p.Work(cfg.TCPPerMessage)
	st := &connState{net: s.net, a: s.node, b: node}
	local := &Conn{st: st, local: s.node}
	remote := &Conn{st: st, local: node}

	synArrive, ok := s.net.fab.ReservePath(p.Now(), s.node, node, 64)
	if !ok {
		return nil, ErrUnreachable
	}
	ackArrive, ok := s.net.fab.ReservePath(synArrive, node, s.node, 64)
	if !ok {
		return nil, ErrUnreachable
	}
	s.net.env.At(synArrive, func(e *simtime.Env) {
		l.backlog = append(l.backlog, remote)
		l.cond.Signal(e)
	})
	p.SleepUntil(ackArrive)
	return local, nil
}

// Send transmits one message, blocking while the flow-control window
// is full. The sender pays the per-message, per-packet, and per-byte
// software costs before the message reaches the wire.
func (c *Conn) Send(p *simtime.Proc, data []byte) error {
	cfg := c.st.net.cfg
	d := c.out()
	if d.closed {
		return ErrClosed
	}
	n := int64(len(data))
	for d.inflight > 0 && d.inflight+n > cfg.TCPWindow {
		d.credit.Wait(p)
		if d.closed {
			return ErrClosed
		}
	}
	d.inflight += n

	packets := int64(1)
	if n > 0 {
		packets = (n + int64(cfg.TCPMTU) - 1) / int64(cfg.TCPMTU)
	}
	// Sender-side software: socket call, segmentation, copy/checksum.
	p.Work(cfg.TCPPerMessage + simtime.Time(packets)*cfg.TCPPerPacket +
		params.TransferTime(n, cfg.TCPCopyBandwidth))

	// Wire: packets ride the shared fabric back to back.
	src, dst := c.local, c.RemoteNode()
	cursor := p.Now()
	var last simtime.Time
	remaining := n
	for i := int64(0); i < packets; i++ {
		sz := int64(cfg.TCPMTU)
		if sz > remaining {
			sz = remaining
		}
		remaining -= sz
		arr, ok := c.st.net.fab.ReservePath(cursor, src, dst, sz+66) // headers
		if !ok {
			return ErrUnreachable
		}
		last = arr
	}
	msg := append([]byte(nil), data...)
	c.st.net.env.At(last, func(e *simtime.Env) {
		d.queue = append(d.queue, msg)
		d.inflight -= n
		d.arrive.Broadcast(e)
		d.credit.Broadcast(e)
	})
	return nil
}

// Recv blocks until a message arrives and returns it, paying the
// receive-side software costs.
func (c *Conn) Recv(p *simtime.Proc) ([]byte, error) {
	cfg := c.st.net.cfg
	d := c.in()
	for len(d.queue) == 0 {
		// A closed flow still drains messages already on the wire.
		if d.closed && d.inflight == 0 {
			return nil, ErrClosed
		}
		d.arrive.Wait(p)
	}
	msg := d.queue[0]
	d.queue = d.queue[1:]
	n := int64(len(msg))
	packets := int64(1)
	if n > 0 {
		packets = (n + int64(cfg.TCPMTU) - 1) / int64(cfg.TCPMTU)
	}
	p.Work(cfg.TCPPerMessage + simtime.Time(packets)*cfg.TCPPerPacket +
		params.TransferTime(n, cfg.TCPCopyBandwidth))
	return msg, nil
}

// TryRecv returns a queued message without blocking; ok is false when
// the queue is empty.
func (c *Conn) TryRecv(p *simtime.Proc) ([]byte, bool, error) {
	d := c.in()
	if len(d.queue) == 0 {
		if d.closed && d.inflight == 0 {
			return nil, false, ErrClosed
		}
		return nil, false, nil
	}
	msg, err := c.Recv(p)
	return msg, err == nil, err
}

// Close shuts down both flows; blocked peers fail with ErrClosed.
// Undelivered queued messages may still be received.
func (c *Conn) Close(e *simtime.Env) {
	for _, d := range []*direction{&c.st.ab, &c.st.ba} {
		d.closed = true
		d.arrive.Broadcast(e)
		d.credit.Broadcast(e)
	}
}
