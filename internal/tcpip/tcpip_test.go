package tcpip

import (
	"bytes"
	"testing"
	"time"

	"lite/internal/fabric"
	"lite/internal/params"
	"lite/internal/simtime"
)

func newNet(t *testing.T, nodes int) (*simtime.Env, *Network, *params.Config) {
	t.Helper()
	cfg := params.Default()
	env := simtime.NewEnv()
	fab := fabric.New(&cfg)
	for i := 0; i < nodes; i++ {
		if err := fab.AddPort(i); err != nil {
			t.Fatal(err)
		}
	}
	return env, NewNetwork(env, &cfg, fab), &cfg
}

func TestDialAcceptSendRecv(t *testing.T) {
	env, net, _ := newNet(t, 2)
	l, err := net.Stack(1).Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello over ipoib")
	env.Go("server", func(p *simtime.Proc) {
		conn, err := l.Accept(p)
		if err != nil {
			t.Error(err)
			return
		}
		got, err := conn.Recv(p)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("got %q", got)
		}
		if err := conn.Send(p, []byte("ack")); err != nil {
			t.Error(err)
		}
	})
	env.Go("client", func(p *simtime.Proc) {
		conn, err := net.Stack(0).Dial(p, 1, 80)
		if err != nil {
			t.Error(err)
			return
		}
		if conn.RemoteNode() != 1 || conn.LocalNode() != 0 {
			t.Errorf("nodes: local %d remote %d", conn.LocalNode(), conn.RemoteNode())
		}
		if err := conn.Send(p, msg); err != nil {
			t.Error(err)
		}
		if reply, err := conn.Recv(p); err != nil || string(reply) != "ack" {
			t.Errorf("reply = %q, %v", reply, err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSmallMessageLatencyIsTensOfMicroseconds(t *testing.T) {
	env, net, _ := newNet(t, 2)
	l, _ := net.Stack(1).Listen(80)
	var rtt simtime.Time
	env.Go("server", func(p *simtime.Proc) {
		conn, _ := l.Accept(p)
		m, err := conn.Recv(p)
		if err != nil {
			t.Error(err)
			return
		}
		_ = conn.Send(p, m)
	})
	env.Go("client", func(p *simtime.Proc) {
		conn, err := net.Stack(0).Dial(p, 1, 80)
		if err != nil {
			t.Error(err)
			return
		}
		start := p.Now()
		_ = conn.Send(p, make([]byte, 8))
		_, _ = conn.Recv(p)
		rtt = p.Now() - start
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// The paper's qperf IPoIB latency is ~20-35us one way; our ping-pong
	// round trip should be in the tens of microseconds, far above RDMA.
	if rtt < 15*time.Microsecond || rtt > 100*time.Microsecond {
		t.Fatalf("8B ping-pong rtt = %v, want tens of microseconds", rtt)
	}
}

func TestStreamingThroughputBelowLinkRate(t *testing.T) {
	env, net, cfg := newNet(t, 2)
	l, _ := net.Stack(1).Listen(80)
	const msgSize = 64 << 10
	const count = 200
	var elapsed simtime.Time
	env.Go("sink", func(p *simtime.Proc) {
		conn, _ := l.Accept(p)
		for i := 0; i < count; i++ {
			if _, err := conn.Recv(p); err != nil {
				t.Error(err)
				return
			}
		}
		elapsed = p.Now()
	})
	env.Go("source", func(p *simtime.Proc) {
		conn, err := net.Stack(0).Dial(p, 1, 80)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, msgSize)
		for i := 0; i < count; i++ {
			if err := conn.Send(p, buf); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	gbps := float64(msgSize*count) / elapsed.Seconds() / 1e9
	linkGBps := cfg.LinkBandwidth / 1e9
	if gbps >= linkGBps {
		t.Fatalf("TCP throughput %.2f GB/s should be below link rate %.2f GB/s", gbps, linkGBps)
	}
	if gbps < 0.8 || gbps > 2.5 {
		t.Fatalf("TCP throughput %.2f GB/s out of the expected 1-2 GB/s band", gbps)
	}
}

func TestDialErrors(t *testing.T) {
	env, net, _ := newNet(t, 2)
	env.Go("client", func(p *simtime.Proc) {
		if _, err := net.Stack(0).Dial(p, 1, 9); err != ErrRefused {
			t.Errorf("err = %v, want ErrRefused", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPortInUse(t *testing.T) {
	_, net, _ := newNet(t, 1)
	if _, err := net.Stack(0).Listen(80); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Stack(0).Listen(80); err != ErrPortInUse {
		t.Fatalf("err = %v, want ErrPortInUse", err)
	}
}

func TestCloseUnblocksPeer(t *testing.T) {
	env, net, _ := newNet(t, 2)
	l, _ := net.Stack(1).Listen(80)
	env.Go("server", func(p *simtime.Proc) {
		conn, _ := l.Accept(p)
		if _, err := conn.Recv(p); err != ErrClosed {
			t.Errorf("recv err = %v, want ErrClosed", err)
		}
	})
	env.Go("client", func(p *simtime.Proc) {
		conn, err := net.Stack(0).Dial(p, 1, 80)
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(5 * time.Microsecond)
		conn.Close(p.Env())
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFlowControlLimitsInflight(t *testing.T) {
	env, net, cfg := newNet(t, 2)
	l, _ := net.Stack(1).Listen(80)
	big := int(cfg.TCPWindow) // each message fills the window
	var sendDone simtime.Time
	env.Go("slow-sink", func(p *simtime.Proc) {
		conn, _ := l.Accept(p)
		for i := 0; i < 3; i++ {
			if _, err := conn.Recv(p); err != nil {
				t.Error(err)
			}
		}
	})
	env.Go("source", func(p *simtime.Proc) {
		conn, err := net.Stack(0).Dial(p, 1, 80)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 3; i++ {
			_ = conn.Send(p, make([]byte, big))
		}
		sendDone = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// The third send cannot start before the first delivery: at least
	// two full window transmissions must have completed.
	minWire := 2 * params.TransferTime(int64(big), cfg.LinkBandwidth)
	if sendDone < minWire {
		t.Fatalf("sendDone = %v, want >= %v (flow control must block)", sendDone, minWire)
	}
}

func TestListenerClose(t *testing.T) {
	env, net, _ := newNet(t, 1)
	l, _ := net.Stack(0).Listen(80)
	env.Go("acceptor", func(p *simtime.Proc) {
		if _, err := l.Accept(p); err != ErrClosed {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	})
	env.Go("closer", func(p *simtime.Proc) {
		p.Sleep(time.Microsecond)
		l.Close(p.Env())
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
