// Package litelog implements LITE-Log, the paper's distributed atomic
// logging system (§8.1). The design pushes "one-sided" to the extreme:
// the global log is created, appended to, and cleaned entirely with
// one-sided LITE operations — LT_malloc for the log and its metadata,
// LT_fetch-add to reserve space and advance pointers, LT_write to
// commit transaction data, and LT_read to scan.
package litelog

import (
	"encoding/binary"
	"errors"

	"lite/internal/lite"
	"lite/internal/simtime"
)

// Errors returned by the log.
var (
	ErrLogFull  = errors.New("litelog: log full; run the cleaner")
	ErrTooLarge = errors.New("litelog: transaction exceeds log capacity")
)

// Meta layout: [0:8] tail (reserve pointer), [8:16] head (clean pointer).
const (
	metaTail = 0
	metaHead = 8
	metaSize = 64
)

// txnHdr: [8B flags|length]. Bit 63 marks the record committed.
const txnHdrSize = 8
const committedBit = uint64(1) << 63

// Log is one participant's handle on a shared global log.
type Log struct {
	c    *lite.Client
	data lite.LH
	meta lite.LH
	size int64
}

// Create allocates a new global log of the given capacity at home and
// publishes it under name. The creator is the master of both LMRs.
func Create(p *simtime.Proc, c *lite.Client, home int, size int64, name string) (*Log, error) {
	data, err := c.MallocAt(p, []int{home}, size, name, lite.PermRead|lite.PermWrite)
	if err != nil {
		return nil, err
	}
	meta, err := c.MallocAt(p, []int{home}, metaSize, name+".meta", lite.PermRead|lite.PermWrite)
	if err != nil {
		return nil, err
	}
	if err := c.Memset(p, meta, 0, 0, metaSize); err != nil {
		return nil, err
	}
	return &Log{c: c, data: data, meta: meta, size: size}, nil
}

// Open maps an existing global log by name; the opener can be on any
// node — all access is remote and one-sided.
func Open(p *simtime.Proc, c *lite.Client, name string, size int64) (*Log, error) {
	data, err := c.Map(p, name)
	if err != nil {
		return nil, err
	}
	meta, err := c.Map(p, name+".meta")
	if err != nil {
		return nil, err
	}
	return &Log{c: c, data: data, meta: meta, size: size}, nil
}

// Append atomically commits one transaction containing the given
// entries: one LT_fetch-add reserves log space, one LT_write lands the
// payload, and a final 8-byte LT_write of the header publishes the
// record (readers treat records without the committed bit as absent).
func (l *Log) Append(p *simtime.Proc, entries [][]byte) (int64, error) {
	var payloadLen int64
	for _, e := range entries {
		payloadLen += 4 + int64(len(e))
	}
	total := (txnHdrSize + payloadLen + 7) &^ 7
	if total > l.size {
		return 0, ErrTooLarge
	}
	// Reserve space with one remote atomic.
	off, err := l.c.FetchAdd(p, l.meta, metaTail, uint64(total))
	if err != nil {
		return 0, err
	}
	// Check against the cleaner's progress (best effort: the reserve
	// is unconditional, so an overfull log is reported to the caller).
	var headBuf [8]byte
	if err := l.c.Read(p, l.meta, metaHead, headBuf[:]); err != nil {
		return 0, err
	}
	head := binary.LittleEndian.Uint64(headBuf[:])
	if int64(off)+total-int64(head) > l.size {
		return 0, ErrLogFull
	}
	// Serialize entries: [4B len][bytes]...
	payload := make([]byte, payloadLen)
	cursor := 0
	for _, e := range entries {
		binary.LittleEndian.PutUint32(payload[cursor:], uint32(len(e)))
		copy(payload[cursor+4:], e)
		cursor += 4 + len(e)
	}
	pos := int64(off) % l.size
	if pos+total > l.size {
		// Wrapped reservation: commit at the start instead; the skipped
		// tail bytes stay uncommitted and scanners skip them.
		pos = 0
	}
	if err := l.c.Write(p, l.data, pos+txnHdrSize, payload); err != nil {
		return 0, err
	}
	// Publish: the 8-byte header write is the commit point.
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], committedBit|uint64(total))
	if err := l.c.Write(p, l.data, pos, hdr[:]); err != nil {
		return 0, err
	}
	return int64(off), nil
}

// Scan reads committed transactions in [from, to) (log offsets as
// returned by Append / read from the tail pointer), invoking fn for
// each entry. It is used by the log cleaner and by recovery.
func (l *Log) Scan(p *simtime.Proc, from, to int64, fn func(entry []byte)) error {
	for off := from; off < to; {
		pos := off % l.size
		var hdr [8]byte
		if err := l.c.Read(p, l.data, pos, hdr[:]); err != nil {
			return err
		}
		h := binary.LittleEndian.Uint64(hdr[:])
		total := int64(h &^ committedBit)
		if h&committedBit == 0 || total <= 0 || total > l.size {
			// Uncommitted or wrap padding: stop the scan here.
			return nil
		}
		payload := make([]byte, total-txnHdrSize)
		if err := l.c.Read(p, l.data, pos+txnHdrSize, payload); err != nil {
			return err
		}
		cursor := int64(0)
		for cursor+4 <= int64(len(payload)) {
			n := int64(binary.LittleEndian.Uint32(payload[cursor:]))
			if n == 0 || cursor+4+n > int64(len(payload)) {
				break
			}
			fn(payload[cursor+4 : cursor+4+n])
			cursor += 4 + n
		}
		off += total
	}
	return nil
}

// Tail returns the current reserve pointer.
func (l *Log) Tail(p *simtime.Proc) (int64, error) {
	v, err := l.c.FetchAdd(p, l.meta, metaTail, 0)
	return int64(v), err
}

// Head returns the cleaner's progress pointer.
func (l *Log) Head(p *simtime.Proc) (int64, error) {
	v, err := l.c.FetchAdd(p, l.meta, metaHead, 0)
	return int64(v), err
}

// Clean advances the head pointer past fully consumed records,
// releasing their space. Like everything else it runs remotely with
// one-sided operations (LT_read to validate, LT_fetch-add to advance,
// and LT_write to scrub headers so space cannot be re-read).
func (l *Log) Clean(p *simtime.Proc, upTo int64) error {
	head, err := l.Head(p)
	if err != nil {
		return err
	}
	if upTo <= head {
		return nil
	}
	// Scrub the headers of the cleaned region.
	var zero [8]byte
	for off := head; off < upTo; {
		pos := off % l.size
		var hdr [8]byte
		if err := l.c.Read(p, l.data, pos, hdr[:]); err != nil {
			return err
		}
		h := binary.LittleEndian.Uint64(hdr[:])
		total := int64(h &^ committedBit)
		if h&committedBit == 0 || total <= 0 {
			break
		}
		if err := l.c.Write(p, l.data, pos, zero[:]); err != nil {
			return err
		}
		off += total
	}
	_, err = l.c.FetchAdd(p, l.meta, metaHead, uint64(upTo-head))
	return err
}
