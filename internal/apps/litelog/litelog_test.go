package litelog

import (
	"testing"
	"time"

	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/params"
	"lite/internal/simtime"
)

func testEnv(t *testing.T, n int) (*cluster.Cluster, *lite.Deployment) {
	t.Helper()
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, n, 1<<30)
	dep, err := lite.Start(cls, lite.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return cls, dep
}

func TestAppendScanRoundTrip(t *testing.T) {
	cls, dep := testEnv(t, 2)
	cls.GoOn(1, "writer", func(p *simtime.Proc) {
		c := dep.Instance(1).KernelClient()
		lg, err := Create(p, c, 0, 1<<20, "log")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := lg.Append(p, [][]byte{[]byte("alpha"), []byte("beta")}); err != nil {
			t.Fatal(err)
		}
		if _, err := lg.Append(p, [][]byte{[]byte("gamma")}); err != nil {
			t.Fatal(err)
		}
		tail, _ := lg.Tail(p)
		var got []string
		if err := lg.Scan(p, 0, tail, func(e []byte) { got = append(got, string(e)) }); err != nil {
			t.Fatal(err)
		}
		want := []string{"alpha", "beta", "gamma"}
		if len(got) != len(want) {
			t.Fatalf("got %v", got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("got %v, want %v", got, want)
			}
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentWritersNoOverlap(t *testing.T) {
	cls, dep := testEnv(t, 3)
	const perWriter = 40
	cls.GoOn(0, "creator", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		if _, err := Create(p, c, 0, 1<<20, "clog"); err != nil {
			t.Fatal(err)
		}
	})
	for n := 1; n < 3; n++ {
		n := n
		cls.GoOn(n, "writer", func(p *simtime.Proc) {
			p.Sleep(100 * time.Microsecond)
			c := dep.Instance(n).KernelClient()
			lg, err := Open(p, c, "clog", 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < perWriter; k++ {
				entry := []byte{byte(n), byte(k), 0xEE}
				if _, err := lg.Append(p, [][]byte{entry}); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
	// Verify all records landed without overlap.
	cls.GoOn(1, "scanner", func(p *simtime.Proc) {
		c := dep.Instance(1).KernelClient()
		lg, err := Open(p, c, "clog", 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		tail, _ := lg.Tail(p)
		seen := make(map[[2]byte]bool)
		if err := lg.Scan(p, 0, tail, func(e []byte) {
			if len(e) != 3 || e[2] != 0xEE {
				t.Fatalf("corrupt entry %v", e)
			}
			k := [2]byte{e[0], e[1]}
			if seen[k] {
				t.Fatalf("duplicate entry %v", k)
			}
			seen[k] = true
		}); err != nil {
			t.Fatal(err)
		}
		if len(seen) != 2*perWriter {
			t.Fatalf("scanned %d entries, want %d", len(seen), 2*perWriter)
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCleanerAdvancesHead(t *testing.T) {
	cls, dep := testEnv(t, 2)
	cls.GoOn(1, "worker", func(p *simtime.Proc) {
		c := dep.Instance(1).KernelClient()
		lg, err := Create(p, c, 0, 1<<16, "cleanlog")
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 10; k++ {
			if _, err := lg.Append(p, [][]byte{make([]byte, 100)}); err != nil {
				t.Fatal(err)
			}
		}
		tail, _ := lg.Tail(p)
		if err := lg.Clean(p, tail); err != nil {
			t.Fatal(err)
		}
		head, _ := lg.Head(p)
		if head != tail {
			t.Fatalf("head = %d, want %d", head, tail)
		}
		// Cleaned region no longer scans as committed.
		count := 0
		_ = lg.Scan(p, 0, tail, func([]byte) { count++ })
		if count != 0 {
			t.Fatalf("scanned %d entries after clean", count)
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLogFull(t *testing.T) {
	cls, dep := testEnv(t, 2)
	cls.GoOn(1, "writer", func(p *simtime.Proc) {
		c := dep.Instance(1).KernelClient()
		lg, err := Create(p, c, 0, 4096, "tiny")
		if err != nil {
			t.Fatal(err)
		}
		var sawFull bool
		for k := 0; k < 20; k++ {
			if _, err := lg.Append(p, [][]byte{make([]byte, 400)}); err == ErrLogFull {
				sawFull = true
				break
			} else if err != nil {
				t.Fatal(err)
			}
		}
		if !sawFull {
			t.Fatal("never observed ErrLogFull on a tiny log")
		}
		if _, err := lg.Append(p, [][]byte{make([]byte, 8192)}); err != ErrTooLarge {
			t.Fatalf("err = %v, want ErrTooLarge", err)
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCommitThroughputOrder(t *testing.T) {
	// §8.1: two nodes committing 16B single-entry transactions reach
	// hundreds of thousands of commits/second.
	cls, dep := testEnv(t, 3)
	const perThread = 100
	threads := 0
	cls.GoOn(0, "creator", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		if _, err := Create(p, c, 0, 8<<20, "tlog"); err != nil {
			t.Fatal(err)
		}
	})
	for n := 1; n <= 2; n++ {
		for th := 0; th < 4; th++ {
			n := n
			threads++
			cls.GoOn(n, "committer", func(p *simtime.Proc) {
				p.Sleep(100 * time.Microsecond)
				c := dep.Instance(n).KernelClient()
				lg, err := Open(p, c, "tlog", 8<<20)
				if err != nil {
					t.Fatal(err)
				}
				entry := make([]byte, 16)
				for k := 0; k < perThread; k++ {
					if _, err := lg.Append(p, [][]byte{entry}); err != nil {
						t.Fatal(err)
					}
				}
			})
		}
	}
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
	total := float64(threads * perThread)
	rate := total / cls.Env.Now().Seconds()
	if rate < 300e3 {
		t.Fatalf("commit rate = %.0f/s, want several hundred thousand", rate)
	}
}
