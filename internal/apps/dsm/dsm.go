// Package dsm implements LITE-DSM, the paper's kernel-level
// distributed shared memory system (§8.4): multiple-reader /
// single-writer pages with release consistency, a home node per page
// (HLRC style, assigned round robin), one-sided LT_reads for remote
// page fetches (readers never inform the home node), LT_write
// write-back at release time, and multicast LT_RPC invalidations —
// the workload that motivated LITE's multicast extension.
package dsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/params"
	"lite/internal/simtime"
)

// dsmFn is the RPC function id used for invalidation multicasts.
const dsmFn = lite.FirstUserFunc + 8

// ErrBounds reports an access outside the shared region.
var ErrBounds = errors.New("dsm: access outside the shared region")

// Config tunes the DSM.
type Config struct {
	// PageSize is the coherence granularity.
	PageSize int64
	// FaultOverhead is the cost of a page-fault trap, kernel entry,
	// and mapping update on a miss (LITE-DSM intercepts the page-fault
	// handler).
	FaultOverhead simtime.Time
}

// DefaultConfig returns the standard DSM parameters.
func DefaultConfig() Config {
	return Config{PageSize: 4096, FaultOverhead: 6 * time.Microsecond}
}

// System is one DSM deployment over a set of nodes.
type System struct {
	cls   *cluster.Cluster
	dep   *lite.Deployment
	cfg   Config
	nodes []int
	size  int64
	pages int64
	name  string

	// ends[i] is node nodes[i]'s endpoint.
	ends map[int]*NodeDSM
}

var dsmBootCount int

// Boot creates a DSM of the given size across nodes. It must run in a
// simulation process; the caller's node allocates nothing special —
// each home allocates its share. Every participating node gets an
// invalidation server thread.
func Boot(p *simtime.Proc, cls *cluster.Cluster, dep *lite.Deployment, nodes []int, size int64, cfg Config) (*System, error) {
	dsmBootCount++
	s := &System{
		cls: cls, dep: dep, cfg: cfg, nodes: nodes,
		size: size, name: fmt.Sprintf("dsm%d", dsmBootCount),
		ends: make(map[int]*NodeDSM),
	}
	s.pages = (size + cfg.PageSize - 1) / cfg.PageSize
	// Home regions, one LMR per node, page-interleaved.
	perNode := (s.pages + int64(len(nodes)) - 1) / int64(len(nodes))
	c0 := dep.Instance(nodes[0]).KernelClient()
	for idx, n := range nodes {
		name := fmt.Sprintf("%s-home-%d", s.name, idx)
		if _, err := c0.MallocAt(p, []int{n}, perNode*cfg.PageSize, name, lite.PermRead|lite.PermWrite); err != nil {
			return nil, err
		}
	}
	for _, n := range nodes {
		end := &NodeDSM{
			sys: s, node: n,
			c:      dep.Instance(n).KernelClient(),
			homeLH: make(map[int]lite.LH),
			cache:  make(map[int64]*cachedPage),
		}
		for idx := range nodes {
			h, err := end.c.Map(p, fmt.Sprintf("%s-home-%d", s.name, idx))
			if err != nil {
				return nil, err
			}
			end.homeLH[idx] = h
		}
		if err := dep.Instance(n).RegisterRPC(dsmFn); err != nil {
			// Another DSM instance already registered the function on
			// this node; both share the server loop below.
			_ = err
		} else {
			nn := n
			cls.GoDaemonOn(n, "dsm-inval", func(q *simtime.Proc) {
				invalidationServer(q, dep, nn, s)
			})
		}
		s.ends[n] = end
	}
	return s, nil
}

// Node returns the endpoint for one participating node.
func (s *System) Node(node int) *NodeDSM { return s.ends[node] }

// Size returns the shared region's size in bytes.
func (s *System) Size() int64 { return s.size }

// homeOf maps a page to (home index, offset inside the home LMR).
func (s *System) homeOf(page int64) (int, int64) {
	idx := int(page % int64(len(s.nodes)))
	return idx, (page / int64(len(s.nodes))) * s.cfg.PageSize
}

// cachedPage is one locally cached shared page. On the first write
// after a fetch a twin copy is taken; at release only the bytes that
// differ from the twin are written back (the classic HLRC twin/diff
// scheme), so two nodes writing disjoint parts of one page do not
// clobber each other.
type cachedPage struct {
	data  []byte
	twin  []byte
	dirty bool
}

// NodeDSM is one node's view of the shared region.
type NodeDSM struct {
	sys    *System
	node   int
	c      *lite.Client
	homeLH map[int]lite.LH
	cache  map[int64]*cachedPage

	// Stats.
	Faults      int64
	Writebacks  int64
	Invalidates int64
}

// fault pulls a page into the local cache with a one-sided LT_read
// (readers never involve the home node's CPU, §8.4).
func (d *NodeDSM) fault(p *simtime.Proc, page int64) (*cachedPage, error) {
	if pg, ok := d.cache[page]; ok {
		return pg, nil
	}
	d.Faults++
	p.Work(d.sys.cfg.FaultOverhead)
	idx, off := d.sys.homeOf(page)
	pg := &cachedPage{data: make([]byte, d.sys.cfg.PageSize)}
	homeNode := d.sys.nodes[idx]
	if homeNode == d.node {
		// Home pages are read in place but still cached for writes.
		if err := d.c.Read(p, d.homeLH[idx], off, pg.data); err != nil {
			return nil, err
		}
	} else if err := d.c.Read(p, d.homeLH[idx], off, pg.data); err != nil {
		return nil, err
	}
	d.cache[page] = pg
	return pg, nil
}

// Read copies len(buf) bytes at offset off of the shared region.
// Cached accesses cost a host memcpy; misses additionally pay the
// page-fault and remote-fetch path.
func (d *NodeDSM) Read(p *simtime.Proc, off int64, buf []byte) error {
	if off < 0 || off+int64(len(buf)) > d.sys.size {
		return ErrBounds
	}
	p.Work(params.TransferTime(int64(len(buf)), params.Default().MemcpyBandwidth))
	ps := d.sys.cfg.PageSize
	for len(buf) > 0 {
		page := off / ps
		po := off % ps
		n := ps - po
		if n > int64(len(buf)) {
			n = int64(len(buf))
		}
		pg, err := d.fault(p, page)
		if err != nil {
			return err
		}
		copy(buf[:n], pg.data[po:po+n])
		buf = buf[n:]
		off += n
	}
	return nil
}

// Write stores data at offset off. The caller must be the single
// writer of the affected pages (MRSW); dirty pages become globally
// visible at Release.
func (d *NodeDSM) Write(p *simtime.Proc, off int64, data []byte) error {
	if off < 0 || off+int64(len(data)) > d.sys.size {
		return ErrBounds
	}
	p.Work(params.TransferTime(int64(len(data)), params.Default().MemcpyBandwidth))
	ps := d.sys.cfg.PageSize
	for len(data) > 0 {
		page := off / ps
		po := off % ps
		n := ps - po
		if n > int64(len(data)) {
			n = int64(len(data))
		}
		pg, err := d.fault(p, page)
		if err != nil {
			return err
		}
		if !pg.dirty {
			pg.twin = append([]byte(nil), pg.data...)
			pg.dirty = true
		}
		copy(pg.data[po:po+n], data[:n])
		data = data[n:]
		off += n
	}
	return nil
}

// Acquire opens a critical section. Invalidations are applied eagerly
// by the invalidation server, so acquire is a local no-op beyond its
// ordering role.
func (d *NodeDSM) Acquire(p *simtime.Proc) {
	p.Work(200 * time.Nanosecond)
}

// Release pushes every dirty page to its home with LT_write and
// multicasts invalidations to all other nodes, waiting for their
// acknowledgments (the paper's LT_RPC multicast).
func (d *NodeDSM) Release(p *simtime.Proc) error {
	var dirty []int64
	for page, pg := range d.cache {
		if pg.dirty {
			dirty = append(dirty, page)
		}
	}
	if len(dirty) == 0 {
		return nil
	}
	// Map iteration order is randomized; the write-back and
	// invalidation traffic must hit the fabric in a replayable order.
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	for _, page := range dirty {
		pg := d.cache[page]
		idx, off := d.sys.homeOf(page)
		// Diff against the twin and write back only the changed runs,
		// coalescing runs separated by small unchanged gaps so a mostly
		// rewritten page goes home in one LT_write.
		const coalesce = 128
		for a := 0; a < len(pg.data); {
			if pg.data[a] == pg.twin[a] {
				a++
				continue
			}
			b := a
			gap := 0
			for e := a; e < len(pg.data); e++ {
				if pg.data[e] != pg.twin[e] {
					b = e + 1
					gap = 0
				} else if gap++; gap > coalesce {
					break
				}
			}
			if err := d.c.Write(p, d.homeLH[idx], off+int64(a), pg.data[a:b]); err != nil {
				return err
			}
			a = b
		}
		pg.dirty = false
		pg.twin = nil
		d.Writebacks++
	}
	// Multicast invalidations: concurrent LT_RPCs to every other node,
	// reply to the caller once all destinations reply (§8.4).
	msg := make([]byte, 8*len(dirty))
	for i, page := range dirty {
		binary.LittleEndian.PutUint64(msg[8*i:], uint64(page))
	}
	others := make([]int, 0, len(d.sys.nodes)-1)
	for _, n := range d.sys.nodes {
		if n != d.node {
			others = append(others, n)
		}
	}
	_, err := d.c.MulticastRPC(p, others, dsmFn, msg, 8)
	return err
}

// invalidationServer applies invalidation multicasts at one node.
func invalidationServer(p *simtime.Proc, dep *lite.Deployment, node int, s *System) {
	c := dep.Instance(node).KernelClient()
	for {
		call, err := c.RecvRPC(p, dsmFn)
		if err != nil {
			return
		}
		if end := s.ends[node]; end != nil {
			for i := 0; i+8 <= len(call.Input); i += 8 {
				page := int64(binary.LittleEndian.Uint64(call.Input[i:]))
				if pg, ok := end.cache[page]; ok && !pg.dirty {
					delete(end.cache, page)
					end.Invalidates++
				}
			}
		}
		_ = c.ReplyRPC(p, call, []byte{1})
	}
}
