package dsm

import (
	"bytes"
	"testing"
	"time"

	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/params"
	"lite/internal/simtime"
)

func testEnv(t *testing.T, n int) (*cluster.Cluster, *lite.Deployment) {
	t.Helper()
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, n, 1<<30)
	dep, err := lite.Start(cls, lite.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return cls, dep
}

func TestLocalReadWriteRoundTrip(t *testing.T) {
	cls, dep := testEnv(t, 3)
	cls.GoOn(0, "app", func(p *simtime.Proc) {
		sys, err := Boot(p, cls, dep, []int{0, 1, 2}, 1<<20, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		d := sys.Node(0)
		data := make([]byte, 20000) // spans several pages and homes
		for i := range data {
			data[i] = byte(i * 13)
		}
		d.Acquire(p)
		if err := d.Write(p, 1000, data); err != nil {
			t.Fatal(err)
		}
		if err := d.Release(p); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if err := d.Read(p, 1000, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("round trip mismatch")
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseConsistencyAcrossNodes(t *testing.T) {
	cls, dep := testEnv(t, 3)
	ready := false
	var cond simtime.Cond
	var sys *System
	cls.GoOn(0, "writer", func(p *simtime.Proc) {
		var err error
		sys, err = Boot(p, cls, dep, []int{0, 1, 2}, 1<<20, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		d := sys.Node(0)
		d.Acquire(p)
		if err := d.Write(p, 5000, []byte("epoch-one")); err != nil {
			t.Fatal(err)
		}
		if err := d.Release(p); err != nil {
			t.Fatal(err)
		}
		ready = true
		cond.Broadcast(p.Env())
	})
	cls.GoOn(1, "reader", func(p *simtime.Proc) {
		for !ready {
			cond.Wait(p)
		}
		d := sys.Node(1)
		d.Acquire(p)
		got := make([]byte, 9)
		if err := d.Read(p, 5000, got); err != nil {
			t.Fatal(err)
		}
		if string(got) != "epoch-one" {
			t.Fatalf("got %q", got)
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidationPropagatesNewData(t *testing.T) {
	cls, dep := testEnv(t, 2)
	var sys *System
	step := 0
	var cond simtime.Cond
	wait := func(p *simtime.Proc, s int) {
		for step < s {
			cond.Wait(p)
		}
	}
	bump := func(p *simtime.Proc) {
		step++
		cond.Broadcast(p.Env())
	}
	cls.GoOn(0, "writer", func(p *simtime.Proc) {
		var err error
		sys, err = Boot(p, cls, dep, []int{0, 1}, 1<<20, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		d := sys.Node(0)
		d.Acquire(p)
		_ = d.Write(p, 0, []byte("v1"))
		_ = d.Release(p)
		bump(p) // step 1: v1 visible
		wait(p, 2)
		d.Acquire(p)
		_ = d.Write(p, 0, []byte("v2"))
		if err := d.Release(p); err != nil {
			t.Fatal(err)
		}
		bump(p) // step 3: v2 visible
	})
	cls.GoOn(1, "reader", func(p *simtime.Proc) {
		wait(p, 1)
		d := sys.Node(1)
		d.Acquire(p)
		got := make([]byte, 2)
		_ = d.Read(p, 0, got) // caches the page
		if string(got) != "v1" {
			t.Fatalf("first read = %q", got)
		}
		bump(p) // step 2
		wait(p, 3)
		d.Acquire(p)
		if err := d.Read(p, 0, got); err != nil {
			t.Fatal(err)
		}
		if string(got) != "v2" {
			t.Fatalf("read after invalidation = %q, want v2", got)
		}
		if d.Invalidates == 0 {
			t.Fatal("no invalidation recorded at the reader")
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReadLatencyScale(t *testing.T) {
	// §8.4: a remote 4KB random read is on the order of 10us (page
	// fault + one-sided read).
	cls, dep := testEnv(t, 4)
	var lat simtime.Time
	cls.GoOn(0, "app", func(p *simtime.Proc) {
		sys, err := Boot(p, cls, dep, []int{0, 1, 2, 3}, 1<<22, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		d := sys.Node(0)
		buf := make([]byte, 4096)
		// Page 1 homes on node 1 (remote).
		start := p.Now()
		if err := d.Read(p, 4096, buf); err != nil {
			t.Fatal(err)
		}
		lat = p.Now() - start
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
	if lat < 5*time.Microsecond || lat > 30*time.Microsecond {
		t.Fatalf("remote 4KB DSM read = %v, want ~10us", lat)
	}
}

func TestBounds(t *testing.T) {
	cls, dep := testEnv(t, 2)
	cls.GoOn(0, "app", func(p *simtime.Proc) {
		sys, err := Boot(p, cls, dep, []int{0, 1}, 8192, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		d := sys.Node(0)
		if err := d.Read(p, 8000, make([]byte, 1000)); err != ErrBounds {
			t.Fatalf("err = %v, want ErrBounds", err)
		}
		if err := d.Write(p, -1, []byte{1}); err != ErrBounds {
			t.Fatalf("err = %v, want ErrBounds", err)
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCachedReadsAreFast(t *testing.T) {
	cls, dep := testEnv(t, 2)
	cls.GoOn(0, "app", func(p *simtime.Proc) {
		sys, err := Boot(p, cls, dep, []int{0, 1}, 1<<20, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		d := sys.Node(0)
		buf := make([]byte, 4096)
		_ = d.Read(p, 4096, buf) // fault
		faults := d.Faults
		start := p.Now()
		_ = d.Read(p, 4096, buf) // cached
		if d.Faults != faults {
			t.Fatal("second read faulted")
		}
		if el := p.Now() - start; el > time.Microsecond {
			t.Fatalf("cached read took %v", el)
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}
