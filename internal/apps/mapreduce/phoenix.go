package mapreduce

import (
	"fmt"

	"lite/internal/cluster"
	"lite/internal/simtime"
)

// RunPhoenix executes WordCount on a Phoenix-style single-node
// multithreaded MapReduce (Ranger et al. [65]): all data in shared
// memory, a global tree-structured intermediate index (whose per-emit
// cost exceeds LITE-MR's per-node split index — the one change the
// paper made when porting), and the same merge structure.
func RunPhoenix(cls *cluster.Cluster, cfg Config, node int, input []byte) (*Result, error) {
	res := &Result{Counts: make(map[string]int64)}
	threads := cfg.ThreadsPerWorker * len(cfg.Workers) // same total threads
	chunks := splitChunks(input, cfg.ChunkSize)

	cls.GoOn(node, "phoenix-master", func(p *simtime.Proc) {
		// ---- map phase: threads pull chunks from shared memory ----
		t0 := p.Now()
		perThread := make([][]map[string]int64, threads)
		cursor := 0
		var wg simtime.WaitGroup
		wg.Add(threads)
		for th := 0; th < threads; th++ {
			th := th
			perThread[th] = make([]map[string]int64, cfg.Reducers)
			for r := range perThread[th] {
				perThread[th][r] = make(map[string]int64)
			}
			cls.GoOn(node, fmt.Sprintf("phx-map%d", th), func(q *simtime.Proc) {
				defer wg.Done(q.Env())
				// The global tree index adds contention cost per emit.
				mapCfg := *cfg.asPhoenix()
				for {
					if cursor >= len(chunks) {
						return
					}
					ch := chunks[cursor]
					cursor++
					mapChunk(q, &mapCfg, input[ch[0]:ch[0]+ch[1]], perThread[th])
				}
			})
		}
		wg.Wait(p)
		res.Map = p.Now() - t0

		// ---- reduce phase: threads merge reducer partitions ----
		t0 = p.Now()
		reduced := make([][]byte, cfg.Reducers)
		rc := 0
		var rwg simtime.WaitGroup
		rwg.Add(threads)
		for th := 0; th < threads; th++ {
			cls.GoOn(node, "phx-reduce", func(q *simtime.Proc) {
				defer rwg.Done(q.Env())
				for {
					if rc >= cfg.Reducers {
						return
					}
					r := rc
					rc++
					m := make(map[string]int64)
					var bytesIn int
					for th2 := 0; th2 < threads; th2++ {
						for w, c := range perThread[th2][r] {
							m[w] += c
							bytesIn += len(w) + 10
						}
					}
					q.Work(cfg.MergePerKB * simtime.Time(bytesIn) / 1024)
					reduced[r] = serializeCounts(m)
				}
			})
		}
		rwg.Wait(p)
		res.Reduce = p.Now() - t0

		// ---- merge phase: local 2-way merge rounds ----
		t0 = p.Now()
		bufs := reduced
		for len(bufs) > 1 {
			var next [][]byte
			mc := 0
			var mwg simtime.WaitGroup
			pairs := len(bufs) / 2
			next = make([][]byte, (len(bufs)+1)/2)
			mwg.Add(threads)
			for th := 0; th < threads; th++ {
				cls.GoOn(node, "phx-merge", func(q *simtime.Proc) {
					defer mwg.Done(q.Env())
					for {
						if mc >= pairs {
							return
						}
						k := mc
						mc++
						next[k] = mergeSorted(q, &cfg, bufs[2*k], bufs[2*k+1])
					}
				})
			}
			mwg.Wait(p)
			if len(bufs)%2 == 1 {
				next[len(next)-1] = bufs[len(bufs)-1]
			}
			bufs = next
		}
		res.Merge = p.Now() - t0
		parseCounts(bufs[0], res.Counts)
	})
	start := cls.Env.Now()
	if err := cls.Run(); err != nil {
		return nil, err
	}
	res.Total = cls.Env.Now() - start
	return res, nil
}

// asPhoenix returns a copy of the config with the global-index emit
// cost applied.
func (c *Config) asPhoenix() *Config {
	out := *c
	out.EmitCost += c.GlobalIndexExtra
	return &out
}
