package mapreduce

import (
	"testing"
	"time"

	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/params"
	"lite/internal/simtime"
)

func TestSingleWorkerLITEMR(t *testing.T) {
	input := testInput(60000)
	cls, dep := newLITECluster(t, 2)
	cfg := DefaultConfig(0, []int{1}, 1, 2)
	cfg.ChunkSize = 8192
	res, err := RunLITE(cls, dep, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Counts, refWordCount(input))
}

func TestMasterAsWorker(t *testing.T) {
	// The master node can also serve as a worker.
	input := testInput(60000)
	cls, dep := newLITECluster(t, 2)
	cfg := DefaultConfig(0, []int{0, 1}, 2, 3)
	cfg.ChunkSize = 8192
	res, err := RunLITE(cls, dep, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Counts, refWordCount(input))
}

func TestTinyInput(t *testing.T) {
	input := []byte("a b a")
	cls, dep := newLITECluster(t, 3)
	cfg := DefaultConfig(0, []int{1, 2}, 2, 4)
	res, err := RunLITE(cls, dep, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["a"] != 2 || res.Counts["b"] != 1 {
		t.Fatalf("counts = %v", res.Counts)
	}
}

func TestMoreReducersThanWords(t *testing.T) {
	input := []byte("x y")
	cls, dep := newLITECluster(t, 2)
	cfg := DefaultConfig(0, []int{1}, 1, 16)
	res, err := RunLITE(cls, dep, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Counts, refWordCount(input))
}

func TestPhoenixSingleThread(t *testing.T) {
	input := testInput(30000)
	pcfg := params.Default()
	cls := cluster.MustNew(&pcfg, 1, 1<<30)
	cfg := DefaultConfig(0, []int{0}, 1, 2)
	cfg.ChunkSize = 8192
	res, err := RunPhoenix(cls, cfg, 0, input)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Counts, refWordCount(input))
}

// newFaultyLITECluster boots LITE with the failure detector on, for
// tests that kill nodes mid-run.
func newFaultyLITECluster(t *testing.T, n int) (*cluster.Cluster, *lite.Deployment) {
	t.Helper()
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, n, 1<<30)
	opts := lite.DefaultOptions()
	opts.HeartbeatInterval = 100 * time.Microsecond
	opts.HeartbeatTimeout = 300 * time.Microsecond
	dep, err := lite.Start(cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	return cls, dep
}

// A worker node that drops off the fabric mid-job must not sink the
// run: the master re-executes on the survivors and the counts match a
// clean run exactly.
func TestLITEMRSurvivesWorkerNodeDown(t *testing.T) {
	input := testInput(60000)
	cls, dep := newFaultyLITECluster(t, 4)
	cfg := DefaultConfig(0, []int{1, 2, 3}, 2, 4)
	cfg.ChunkSize = 4096
	cfg.TaskTimeout = 5 * time.Millisecond
	cls.GoDaemonOn(0, "fault", func(p *simtime.Proc) {
		p.Sleep(50 * time.Microsecond)
		cls.Fab.SetNodeDown(2)
	})
	res, err := RunLITE(cls, dep, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Counts, refWordCount(input))
}

// A transient symmetric partition separating the master from one
// worker heals mid-run; the job must ride it out (via retries or by
// dropping the suspected worker) and still produce exact counts.
func TestLITEMRRidesOutPartitionFlap(t *testing.T) {
	input := testInput(40000)
	cls, dep := newFaultyLITECluster(t, 4)
	cfg := DefaultConfig(0, []int{1, 2, 3}, 2, 4)
	cfg.ChunkSize = 4096
	cfg.TaskTimeout = 5 * time.Millisecond
	cls.GoDaemonOn(0, "flap", func(p *simtime.Proc) {
		p.Sleep(100 * time.Microsecond)
		cls.Fab.Partition([]int{0, 1, 2}, []int{3})
		p.Sleep(4 * time.Millisecond)
		cls.Fab.HealPartition([]int{0, 1, 2}, []int{3})
	})
	res, err := RunLITE(cls, dep, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Counts, refWordCount(input))
}
