package mapreduce

import (
	"testing"

	"lite/internal/cluster"
	"lite/internal/params"
)

func TestSingleWorkerLITEMR(t *testing.T) {
	input := testInput(60000)
	cls, dep := newLITECluster(t, 2)
	cfg := DefaultConfig(0, []int{1}, 1, 2)
	cfg.ChunkSize = 8192
	res, err := RunLITE(cls, dep, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Counts, refWordCount(input))
}

func TestMasterAsWorker(t *testing.T) {
	// The master node can also serve as a worker.
	input := testInput(60000)
	cls, dep := newLITECluster(t, 2)
	cfg := DefaultConfig(0, []int{0, 1}, 2, 3)
	cfg.ChunkSize = 8192
	res, err := RunLITE(cls, dep, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Counts, refWordCount(input))
}

func TestTinyInput(t *testing.T) {
	input := []byte("a b a")
	cls, dep := newLITECluster(t, 3)
	cfg := DefaultConfig(0, []int{1, 2}, 2, 4)
	res, err := RunLITE(cls, dep, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["a"] != 2 || res.Counts["b"] != 1 {
		t.Fatalf("counts = %v", res.Counts)
	}
}

func TestMoreReducersThanWords(t *testing.T) {
	input := []byte("x y")
	cls, dep := newLITECluster(t, 2)
	cfg := DefaultConfig(0, []int{1}, 1, 16)
	res, err := RunLITE(cls, dep, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Counts, refWordCount(input))
}

func TestPhoenixSingleThread(t *testing.T) {
	input := testInput(30000)
	pcfg := params.Default()
	cls := cluster.MustNew(&pcfg, 1, 1<<30)
	cfg := DefaultConfig(0, []int{0}, 1, 2)
	cfg.ChunkSize = 8192
	res, err := RunPhoenix(cls, cfg, 0, input)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Counts, refWordCount(input))
}
