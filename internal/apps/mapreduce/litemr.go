package mapreduce

import (
	"encoding/json"
	"fmt"

	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/simtime"
)

// mrFn is the RPC function id LITE-MR workers serve.
const mrFn = lite.FirstUserFunc + 4

var liteMRRun int // distinguishes LMR names across runs

// taskMsg is a worker assignment (JSON over LT_RPC, as the paper's
// LITE-MR exchanges control messages with LT_RPC and bulk data with
// LT_read).
type taskMsg struct {
	Kind      string     // "map", "reduce", "merge", "quit"
	RunID     int        // LMR name namespace
	InputName string     // map: input LMR name
	Chunks    [][2]int64 // map: chunk (offset, length) pairs
	WorkerIdx int        // map: this worker's index for output naming
	Workers   int        // total workers (reduce reads all their outputs)
	Reducers  []int      // reduce: reducer ids assigned to this worker
	Merges    [][3]string
}

type taskReply struct {
	Names []string
}

// RunLITE executes WordCount on LITE-MR and returns the result with
// its phase breakdown. It spawns its own processes and runs the
// cluster simulation to completion.
func RunLITE(cls *cluster.Cluster, dep *lite.Deployment, cfg Config, input []byte) (*Result, error) {
	liteMRRun++
	runID := liteMRRun
	res := &Result{Counts: make(map[string]int64)}
	var runErr error

	// Worker servers.
	for _, w := range cfg.Workers {
		w := w
		inst := dep.Instance(w)
		if err := inst.RegisterRPC(mrFn); err != nil {
			// Already registered by a previous run on this cluster.
			_ = err
		}
		cls.GoDaemonOn(w, "mr-worker", func(p *simtime.Proc) {
			liteWorkerLoop(p, cls, dep, &cfg, w)
		})
	}

	cls.GoOn(cfg.Master, "mr-master", func(p *simtime.Proc) {
		runErr = liteMaster(p, cls, dep, &cfg, runID, input, res)
	})
	start := cls.Env.Now()
	if err := cls.Run(); err != nil {
		return nil, err
	}
	res.Total = cls.Env.Now() - start
	return res, runErr
}

func liteMaster(p *simtime.Proc, cls *cluster.Cluster, dep *lite.Deployment, cfg *Config, runID int, input []byte, res *Result) error {
	c := dep.Instance(cfg.Master).KernelClient()
	inputName := fmt.Sprintf("mr%d-input", runID)
	in, err := c.Malloc(p, int64(len(input)), inputName, lite.PermRead)
	if err != nil {
		return err
	}
	if err := c.Write(p, in, 0, input); err != nil {
		return err
	}
	chunks := splitChunks(input, cfg.ChunkSize)

	// ---- map phase ----
	t0 := p.Now()
	perWorker := make([][][2]int64, len(cfg.Workers))
	for i, ch := range chunks {
		w := i % len(cfg.Workers)
		perWorker[w] = append(perWorker[w], ch)
	}
	replies, err := broadcastTasks(p, cls, dep, cfg, func(wi int) taskMsg {
		return taskMsg{
			Kind: "map", RunID: runID, InputName: inputName,
			Chunks: perWorker[wi], WorkerIdx: wi, Workers: len(cfg.Workers),
		}
	})
	if err != nil {
		return err
	}
	_ = replies
	res.Map = p.Now() - t0

	// ---- reduce phase ----
	t0 = p.Now()
	perRed := make([][]int, len(cfg.Workers))
	for r := 0; r < cfg.Reducers; r++ {
		w := r % len(cfg.Workers)
		perRed[w] = append(perRed[w], r)
	}
	replies, err = broadcastTasks(p, cls, dep, cfg, func(wi int) taskMsg {
		return taskMsg{Kind: "reduce", RunID: runID, Reducers: perRed[wi], Workers: len(cfg.Workers)}
	})
	if err != nil {
		return err
	}
	var names []string
	for _, r := range replies {
		names = append(names, r.Names...)
	}
	res.Reduce = p.Now() - t0

	// ---- merge phase: rounds of 2-way merges ----
	t0 = p.Now()
	round := 0
	for len(names) > 1 {
		var merges [][3]string
		var next []string
		for k := 0; k+1 < len(names); k += 2 {
			out := fmt.Sprintf("mr%d-mg-%d-%d", runID, round, k/2)
			merges = append(merges, [3]string{names[k], names[k+1], out})
			next = append(next, out)
		}
		if len(names)%2 == 1 {
			next = append(next, names[len(names)-1])
		}
		perMerge := make([][][3]string, len(cfg.Workers))
		for i, m := range merges {
			perMerge[i%len(cfg.Workers)] = append(perMerge[i%len(cfg.Workers)], m)
		}
		if _, err := broadcastTasks(p, cls, dep, cfg, func(wi int) taskMsg {
			return taskMsg{Kind: "merge", RunID: runID, Merges: perMerge[wi]}
		}); err != nil {
			return err
		}
		names = next
		round++
	}
	res.Merge = p.Now() - t0

	// Read the final result.
	final, err := c.Map(p, names[0])
	if err != nil {
		return err
	}
	sz := lmrSize(dep, names[0])
	buf := make([]byte, sz)
	if err := c.Read(p, final, 0, buf); err != nil {
		return err
	}
	parseCounts(buf, res.Counts)
	return nil
}

// broadcastTasks sends one task message to every worker in parallel
// and collects the replies.
func broadcastTasks(p *simtime.Proc, cls *cluster.Cluster, dep *lite.Deployment, cfg *Config, mk func(wi int) taskMsg) ([]taskReply, error) {
	replies := make([]taskReply, len(cfg.Workers))
	errs := make([]error, len(cfg.Workers))
	var wg simtime.WaitGroup
	wg.Add(len(cfg.Workers))
	for wi, w := range cfg.Workers {
		wi, w := wi, w
		cls.GoOn(cfg.Master, "mr-dispatch", func(q *simtime.Proc) {
			defer wg.Done(q.Env())
			c := dep.Instance(cfg.Master).KernelClient()
			msg, _ := json.Marshal(mk(wi))
			out, err := c.RPCT(q, w, mrFn, msg, 1<<20, 0)
			if err != nil {
				errs[wi] = err
				return
			}
			errs[wi] = json.Unmarshal(out, &replies[wi])
		})
	}
	wg.Wait(p)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return replies, nil
}

// lmrSize looks up an LMR's size by name via the deployment directory
// (stand-in for an out-of-band size exchange).
func lmrSize(dep *lite.Deployment, name string) int64 {
	return dep.LMRSizeByName(name)
}

// liteWorkerLoop serves LITE-MR task RPCs on one worker node.
func liteWorkerLoop(p *simtime.Proc, cls *cluster.Cluster, dep *lite.Deployment, cfg *Config, node int) {
	c := dep.Instance(node).KernelClient()
	for {
		call, err := c.RecvRPC(p, mrFn)
		if err != nil {
			return
		}
		var t taskMsg
		if err := json.Unmarshal(call.Input, &t); err != nil {
			_ = c.ReplyRPC(p, call, nil)
			continue
		}
		var reply taskReply
		switch t.Kind {
		case "map":
			reply.Names = liteMapPhase(p, cls, dep, cfg, node, &t)
		case "reduce":
			reply.Names = liteReducePhase(p, cls, dep, cfg, node, &t)
		case "merge":
			for _, m := range t.Merges {
				liteMerge(p, dep, cfg, node, m[0], m[1], m[2])
				reply.Names = append(reply.Names, m[2])
			}
		}
		out, _ := json.Marshal(reply)
		_ = c.ReplyRPC(p, call, out)
	}
}

// liteMapPhase runs this worker's map tasks on ThreadsPerWorker
// threads, combines per-reducer output, and publishes one LMR per
// reducer.
func liteMapPhase(p *simtime.Proc, cls *cluster.Cluster, dep *lite.Deployment, cfg *Config, node int, t *taskMsg) []string {
	c := dep.Instance(node).KernelClient()
	in, err := c.Map(p, t.InputName)
	if err != nil {
		return nil
	}
	// Per-thread per-reducer maps; threads pull chunks from a shared
	// cursor.
	threads := cfg.ThreadsPerWorker
	perThread := make([][]map[string]int64, threads)
	cursor := 0
	var wg simtime.WaitGroup
	wg.Add(threads)
	for th := 0; th < threads; th++ {
		th := th
		perThread[th] = make([]map[string]int64, cfg.Reducers)
		for r := range perThread[th] {
			perThread[th][r] = make(map[string]int64)
		}
		cls.GoOn(node, "mr-map", func(q *simtime.Proc) {
			defer wg.Done(q.Env())
			tc := dep.Instance(node).KernelClient()
			for {
				if cursor >= len(t.Chunks) {
					return
				}
				ch := t.Chunks[cursor]
				cursor++
				buf := make([]byte, ch[1])
				if err := tc.Read(q, in, ch[0], buf); err != nil {
					return
				}
				mapChunk(q, cfg, buf, perThread[th])
			}
		})
	}
	wg.Wait(p)
	// Combine thread-local results into node-level finalized buffers
	// (the paper: a worker combines intermediate results after
	// completing all its map tasks).
	names := make([]string, 0, cfg.Reducers)
	for r := 0; r < cfg.Reducers; r++ {
		m := make(map[string]int64)
		for th := 0; th < threads; th++ {
			for w, cnt := range perThread[th][r] {
				m[w] += cnt
			}
		}
		buf := serializeCounts(m)
		p.Work(cfg.MergePerKB * simtime.Time(len(buf)) / 1024)
		name := fmt.Sprintf("mr%d-mo-%d-%d", t.RunID, t.WorkerIdx, r)
		h, err := c.Malloc(p, int64(len(buf))+1, name, lite.PermRead)
		if err != nil {
			return nil
		}
		_ = c.Write(p, h, 0, buf)
		names = append(names, name)
	}
	return names
}

// liteReducePhase pulls every worker's finalized buffer for this
// worker's reducers with one-sided LT_reads and merges them.
func liteReducePhase(p *simtime.Proc, cls *cluster.Cluster, dep *lite.Deployment, cfg *Config, node int, t *taskMsg) []string {
	threads := cfg.ThreadsPerWorker
	var wg simtime.WaitGroup
	names := make([]string, len(t.Reducers))
	cursor := 0
	wg.Add(threads)
	for th := 0; th < threads; th++ {
		cls.GoOn(node, "mr-reduce", func(q *simtime.Proc) {
			defer wg.Done(q.Env())
			tc := dep.Instance(node).KernelClient()
			for {
				if cursor >= len(t.Reducers) {
					return
				}
				idx := cursor
				cursor++
				r := t.Reducers[idx]
				m := make(map[string]int64)
				for w := 0; w < t.Workers; w++ {
					name := fmt.Sprintf("mr%d-mo-%d-%d", t.RunID, w, r)
					h, err := tc.Map(q, name)
					if err != nil {
						continue
					}
					sz := lmrSize(dep, name)
					buf := make([]byte, sz)
					if err := tc.Read(q, h, 0, buf); err != nil {
						continue
					}
					q.Work(cfg.MergePerKB * simtime.Time(len(buf)) / 1024)
					parseCounts(buf, m)
					_ = tc.Unmap(q, h)
				}
				buf := serializeCounts(m)
				name := fmt.Sprintf("mr%d-ro-%d", t.RunID, r)
				h, err := tc.Malloc(q, int64(len(buf))+1, name, lite.PermRead)
				if err != nil {
					return
				}
				_ = tc.Write(q, h, 0, buf)
				names[idx] = name
			}
		})
	}
	wg.Wait(p)
	return names
}

// liteMerge two-way merges two named buffers into a new named buffer,
// reading both with LT_read.
func liteMerge(p *simtime.Proc, dep *lite.Deployment, cfg *Config, node int, a, b, out string) {
	c := dep.Instance(node).KernelClient()
	read := func(name string) []byte {
		h, err := c.Map(p, name)
		if err != nil {
			return nil
		}
		buf := make([]byte, lmrSize(dep, name))
		if err := c.Read(p, h, 0, buf); err != nil {
			return nil
		}
		_ = c.Unmap(p, h)
		return buf
	}
	merged := mergeSorted(p, cfg, read(a), read(b))
	h, err := c.Malloc(p, int64(len(merged))+1, out, lite.PermRead)
	if err != nil {
		return
	}
	_ = c.Write(p, h, 0, merged)
}
