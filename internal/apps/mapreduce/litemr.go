package mapreduce

import (
	"encoding/json"
	"fmt"

	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/simtime"
)

// mrFn is the RPC function id LITE-MR workers serve.
const mrFn = lite.FirstUserFunc + 4

var liteMRRun int // distinguishes LMR names across runs

// taskMsg is a worker assignment (JSON over LT_RPC, as the paper's
// LITE-MR exchanges control messages with LT_RPC and bulk data with
// LT_read).
type taskMsg struct {
	Kind      string     // "map", "reduce", "merge", "quit"
	RunID     int        // LMR name namespace
	Attempt   int        // job attempt; names are namespaced per attempt
	InputName string     // map: input LMR name
	Chunks    [][2]int64 // map: chunk (offset, length) pairs
	WorkerIdx int        // map: this worker's index for output naming
	Workers   int        // total workers (reduce reads all their outputs)
	Reducers  []int      // reduce: reducer ids assigned to this worker
	Merges    [][3]string
}

type taskReply struct {
	Names []string
	Err   string // non-empty: the worker could not complete the task
}

// Intermediate and output LMR names carry the run id and the attempt
// number, so a re-executed job never collides with names published by
// a partially completed earlier attempt.
func mapOutName(runID, attempt, worker, reducer int) string {
	return fmt.Sprintf("mr%d-a%d-mo-%d-%d", runID, attempt, worker, reducer)
}
func reduceOutName(runID, attempt, reducer int) string {
	return fmt.Sprintf("mr%d-a%d-ro-%d", runID, attempt, reducer)
}
func mergeOutName(runID, attempt, round, k int) string {
	return fmt.Sprintf("mr%d-a%d-mg-%d-%d", runID, attempt, round, k)
}

// RunLITE executes WordCount on LITE-MR and returns the result with
// its phase breakdown. It spawns its own processes and runs the
// cluster simulation to completion.
//
// When cfg.TaskTimeout is set, the run degrades gracefully under node
// failures: dispatches go through the bounded retry layer, a worker
// declared dead is dropped from the pool, and the whole job re-executes
// on the survivors under a fresh attempt namespace. Workers also
// re-arm their serving loop if their node restarts mid-run.
func RunLITE(cls *cluster.Cluster, dep *lite.Deployment, cfg Config, input []byte) (*Result, error) {
	liteMRRun++
	runID := liteMRRun
	res := &Result{Counts: make(map[string]int64)}
	var runErr error

	// Worker servers.
	isWorker := make(map[int]bool, len(cfg.Workers))
	for _, w := range cfg.Workers {
		w := w
		isWorker[w] = true
		inst := dep.Instance(w)
		if err := inst.RegisterRPC(mrFn); err != nil {
			// Already registered by a previous run on this cluster.
			_ = err
		}
		cls.GoDaemonOn(w, "mr-worker", func(p *simtime.Proc) {
			liteWorkerLoop(p, cls, dep, &cfg, w)
		})
	}
	// A crashed worker's serving loop exits with ErrNodeDead; re-arm it
	// when the node comes back so a restarted worker can serve again.
	cls.OnNodeUp(func(p *simtime.Proc, node int) {
		if !isWorker[node] {
			return
		}
		cls.GoDaemonOn(node, "mr-worker", func(q *simtime.Proc) {
			liteWorkerLoop(q, cls, dep, &cfg, node)
		})
	})

	cls.GoOn(cfg.Master, "mr-master", func(p *simtime.Proc) {
		runErr = liteMaster(p, cls, dep, &cfg, runID, input, res)
	})
	start := cls.Env.Now()
	if err := cls.Run(); err != nil {
		return nil, err
	}
	res.Total = cls.Env.Now() - start
	return res, runErr
}

// liteMaster runs the job, re-executing it on the surviving workers
// when an attempt is lost to a node failure. Intermediate data on a
// dead worker is unrecoverable (every reducer reads every mapper, so
// the re-execution closure is the whole job), which is why degradation
// restarts the job rather than individual tasks.
func liteMaster(p *simtime.Proc, cls *cluster.Cluster, dep *lite.Deployment, cfg *Config, runID int, input []byte, res *Result) error {
	c := dep.Instance(cfg.Master).KernelClient()
	inputName := fmt.Sprintf("mr%d-input", runID)
	in, err := c.Malloc(p, int64(len(input)), inputName, lite.PermRead)
	if err != nil {
		return err
	}
	if err := c.Write(p, in, 0, input); err != nil {
		return err
	}

	workers := append([]int(nil), cfg.Workers...)
	maxAttempts := len(workers)
	if cfg.TaskTimeout <= 0 {
		maxAttempts = 1 // legacy mode: no failure handling
	}
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		err := liteRunJob(p, cls, dep, cfg, runID, attempt, workers, inputName, input, res)
		if err == nil {
			return nil
		}
		lastErr = err
		// Drop workers declared dead and retry on the survivors.
		alive := workers[:0]
		for _, w := range workers {
			if !c.NodeDead(w) {
				alive = append(alive, w)
			}
		}
		workers = alive
		if len(workers) == 0 {
			return fmt.Errorf("litemr: no surviving workers: %w", err)
		}
		if attempt < maxAttempts-1 {
			// Pace re-execution: an attempt launched immediately after a
			// node failure burns its budget before detection converges
			// and before a restarting node is back, so later attempts
			// wait exponentially longer — up to one task timeout — for
			// the cluster to recover.
			backoff := simtime.Time(cfg.TaskTimeout) / 4 << uint(attempt)
			if backoff > simtime.Time(cfg.TaskTimeout) {
				backoff = simtime.Time(cfg.TaskTimeout)
			}
			p.Sleep(backoff)
		}
	}
	return fmt.Errorf("litemr: job failed after %d attempts: %w", maxAttempts, lastErr)
}

// liteRunJob runs one complete map/reduce/merge attempt on the given
// worker set. Any failure (dispatch error, worker-reported error, or a
// failed final read) aborts the attempt.
func liteRunJob(p *simtime.Proc, cls *cluster.Cluster, dep *lite.Deployment, cfg *Config, runID, attempt int, workers []int, inputName string, input []byte, res *Result) error {
	c := dep.Instance(cfg.Master).KernelClient()
	chunks := splitChunks(input, cfg.ChunkSize)

	// ---- map phase ----
	t0 := p.Now()
	perWorker := make([][][2]int64, len(workers))
	for i, ch := range chunks {
		w := i % len(workers)
		perWorker[w] = append(perWorker[w], ch)
	}
	_, err := broadcastTasks(p, cls, dep, cfg, workers, func(wi int) taskMsg {
		return taskMsg{
			Kind: "map", RunID: runID, Attempt: attempt, InputName: inputName,
			Chunks: perWorker[wi], WorkerIdx: wi, Workers: len(workers),
		}
	})
	if err != nil {
		return err
	}
	res.Map = p.Now() - t0

	// ---- reduce phase ----
	t0 = p.Now()
	perRed := make([][]int, len(workers))
	for r := 0; r < cfg.Reducers; r++ {
		w := r % len(workers)
		perRed[w] = append(perRed[w], r)
	}
	replies, err := broadcastTasks(p, cls, dep, cfg, workers, func(wi int) taskMsg {
		return taskMsg{Kind: "reduce", RunID: runID, Attempt: attempt, Reducers: perRed[wi], Workers: len(workers)}
	})
	if err != nil {
		return err
	}
	var names []string
	for _, r := range replies {
		names = append(names, r.Names...)
	}
	res.Reduce = p.Now() - t0

	// ---- merge phase: rounds of 2-way merges ----
	t0 = p.Now()
	round := 0
	for len(names) > 1 {
		var merges [][3]string
		var next []string
		for k := 0; k+1 < len(names); k += 2 {
			out := mergeOutName(runID, attempt, round, k/2)
			merges = append(merges, [3]string{names[k], names[k+1], out})
			next = append(next, out)
		}
		if len(names)%2 == 1 {
			next = append(next, names[len(names)-1])
		}
		perMerge := make([][][3]string, len(workers))
		for i, m := range merges {
			perMerge[i%len(workers)] = append(perMerge[i%len(workers)], m)
		}
		if _, err := broadcastTasks(p, cls, dep, cfg, workers, func(wi int) taskMsg {
			return taskMsg{Kind: "merge", RunID: runID, Attempt: attempt, Merges: perMerge[wi]}
		}); err != nil {
			return err
		}
		names = next
		round++
	}
	res.Merge = p.Now() - t0

	// Read the final result.
	final, err := c.Map(p, names[0])
	if err != nil {
		return err
	}
	sz := lmrSize(dep, names[0])
	buf := make([]byte, sz)
	if err := c.Read(p, final, 0, buf); err != nil {
		return err
	}
	for k := range res.Counts {
		delete(res.Counts, k) // discard a partial earlier attempt
	}
	parseCounts(buf, res.Counts)
	return nil
}

// broadcastTasks sends one task message to every worker in parallel
// and collects the replies. With TaskTimeout set, dispatches go
// through the bounded retry layer so a crashed worker surfaces as
// ErrNodeDead (or a timeout) instead of hanging the job.
func broadcastTasks(p *simtime.Proc, cls *cluster.Cluster, dep *lite.Deployment, cfg *Config, workers []int, mk func(wi int) taskMsg) ([]taskReply, error) {
	replies := make([]taskReply, len(workers))
	errs := make([]error, len(workers))
	var wg simtime.WaitGroup
	wg.Add(len(workers))
	for wi, w := range workers {
		wi, w := wi, w
		cls.GoOn(cfg.Master, "mr-dispatch", func(q *simtime.Proc) {
			defer wg.Done(q.Env())
			c := dep.Instance(cfg.Master).KernelClient()
			msg, _ := json.Marshal(mk(wi))
			var out []byte
			var err error
			if cfg.TaskTimeout > 0 {
				out, err = c.RPCRetryT(q, w, mrFn, msg, 1<<20, cfg.TaskTimeout)
			} else {
				out, err = c.RPCT(q, w, mrFn, msg, 1<<20, 0)
			}
			if err != nil {
				errs[wi] = err
				return
			}
			if err := json.Unmarshal(out, &replies[wi]); err != nil {
				errs[wi] = err
				return
			}
			if replies[wi].Err != "" {
				errs[wi] = fmt.Errorf("worker %d: %s", w, replies[wi].Err)
			}
		})
	}
	wg.Wait(p)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return replies, nil
}

// lmrSize looks up an LMR's size by name via the deployment directory
// (stand-in for an out-of-band size exchange).
func lmrSize(dep *lite.Deployment, name string) int64 {
	return dep.LMRSizeByName(name)
}

// liteWorkerLoop serves LITE-MR task RPCs on one worker node.
//
// Dispatches are deduplicated: the retry layer can deliver the same
// task twice (the first reply lost or timed out), and re-executing it
// would collide on the already-published output LMR names. A completed
// task's reply is cached by its exact message bytes and replayed on a
// duplicate — at-most-once execution per worker incarnation.
func liteWorkerLoop(p *simtime.Proc, cls *cluster.Cluster, dep *lite.Deployment, cfg *Config, node int) {
	c := dep.Instance(node).KernelClient()
	done := make(map[string][]byte)
	for {
		call, err := c.RecvRPC(p, mrFn)
		if err != nil {
			return
		}
		if out, ok := done[string(call.Input)]; ok {
			_ = c.ReplyRPC(p, call, out)
			continue
		}
		var t taskMsg
		if err := json.Unmarshal(call.Input, &t); err != nil {
			_ = c.ReplyRPC(p, call, nil)
			continue
		}
		var reply taskReply
		var terr error
		switch t.Kind {
		case "map":
			reply.Names, terr = liteMapPhase(p, cls, dep, cfg, node, &t)
		case "reduce":
			reply.Names, terr = liteReducePhase(p, cls, dep, cfg, node, &t)
		case "merge":
			for _, m := range t.Merges {
				if terr = liteMerge(p, dep, cfg, node, m[0], m[1], m[2]); terr != nil {
					break
				}
				reply.Names = append(reply.Names, m[2])
			}
		}
		if terr != nil {
			reply = taskReply{Err: terr.Error()}
		}
		out, _ := json.Marshal(reply)
		if terr == nil {
			// Only successes are replayable; a failed task may be
			// legitimately retried.
			done[string(call.Input)] = out
		}
		_ = c.ReplyRPC(p, call, out)
	}
}

// liteMapPhase runs this worker's map tasks on ThreadsPerWorker
// threads, combines per-reducer output, and publishes one LMR per
// reducer. Any I/O failure is reported to the master rather than
// swallowed, so a lost input or a dead peer aborts the attempt instead
// of silently undercounting.
func liteMapPhase(p *simtime.Proc, cls *cluster.Cluster, dep *lite.Deployment, cfg *Config, node int, t *taskMsg) ([]string, error) {
	c := dep.Instance(node).KernelClient()
	in, err := c.Map(p, t.InputName)
	if err != nil {
		return nil, fmt.Errorf("map input %q: %w", t.InputName, err)
	}
	// Per-thread per-reducer maps; threads pull chunks from a shared
	// cursor.
	threads := cfg.ThreadsPerWorker
	perThread := make([][]map[string]int64, threads)
	threadErrs := make([]error, threads)
	cursor := 0
	var wg simtime.WaitGroup
	wg.Add(threads)
	for th := 0; th < threads; th++ {
		th := th
		perThread[th] = make([]map[string]int64, cfg.Reducers)
		for r := range perThread[th] {
			perThread[th][r] = make(map[string]int64)
		}
		cls.GoOn(node, "mr-map", func(q *simtime.Proc) {
			defer wg.Done(q.Env())
			tc := dep.Instance(node).KernelClient()
			for {
				if cursor >= len(t.Chunks) {
					return
				}
				ch := t.Chunks[cursor]
				cursor++
				buf := make([]byte, ch[1])
				if err := tc.Read(q, in, ch[0], buf); err != nil {
					threadErrs[th] = fmt.Errorf("read chunk @%d: %w", ch[0], err)
					return
				}
				mapChunk(q, cfg, buf, perThread[th])
			}
		})
	}
	wg.Wait(p)
	for _, err := range threadErrs {
		if err != nil {
			return nil, err
		}
	}
	// Combine thread-local results into node-level finalized buffers
	// (the paper: a worker combines intermediate results after
	// completing all its map tasks).
	names := make([]string, 0, cfg.Reducers)
	for r := 0; r < cfg.Reducers; r++ {
		m := make(map[string]int64)
		for th := 0; th < threads; th++ {
			for w, cnt := range perThread[th][r] {
				m[w] += cnt
			}
		}
		buf := serializeCounts(m)
		p.Work(cfg.MergePerKB * simtime.Time(len(buf)) / 1024)
		name := mapOutName(t.RunID, t.Attempt, t.WorkerIdx, r)
		h, err := c.Malloc(p, int64(len(buf))+1, name, lite.PermRead)
		if err != nil {
			return nil, fmt.Errorf("publish %q: %w", name, err)
		}
		if err := c.Write(p, h, 0, buf); err != nil {
			return nil, fmt.Errorf("write %q: %w", name, err)
		}
		names = append(names, name)
	}
	return names, nil
}

// liteReducePhase pulls every worker's finalized buffer for this
// worker's reducers with one-sided LT_reads and merges them. A mapper
// output that cannot be resolved or read (its home node died) is a
// hard error — skipping it would drop that mapper's counts from the
// result.
func liteReducePhase(p *simtime.Proc, cls *cluster.Cluster, dep *lite.Deployment, cfg *Config, node int, t *taskMsg) ([]string, error) {
	threads := cfg.ThreadsPerWorker
	var wg simtime.WaitGroup
	names := make([]string, len(t.Reducers))
	threadErrs := make([]error, threads)
	cursor := 0
	wg.Add(threads)
	for th := 0; th < threads; th++ {
		th := th
		cls.GoOn(node, "mr-reduce", func(q *simtime.Proc) {
			defer wg.Done(q.Env())
			tc := dep.Instance(node).KernelClient()
			for {
				if cursor >= len(t.Reducers) {
					return
				}
				idx := cursor
				cursor++
				r := t.Reducers[idx]
				m := make(map[string]int64)
				for w := 0; w < t.Workers; w++ {
					name := mapOutName(t.RunID, t.Attempt, w, r)
					h, err := tc.Map(q, name)
					if err != nil {
						threadErrs[th] = fmt.Errorf("map %q: %w", name, err)
						return
					}
					sz := lmrSize(dep, name)
					buf := make([]byte, sz)
					if err := tc.Read(q, h, 0, buf); err != nil {
						threadErrs[th] = fmt.Errorf("read %q: %w", name, err)
						return
					}
					q.Work(cfg.MergePerKB * simtime.Time(len(buf)) / 1024)
					parseCounts(buf, m)
					_ = tc.Unmap(q, h)
				}
				buf := serializeCounts(m)
				name := reduceOutName(t.RunID, t.Attempt, r)
				h, err := tc.Malloc(q, int64(len(buf))+1, name, lite.PermRead)
				if err != nil {
					threadErrs[th] = fmt.Errorf("publish %q: %w", name, err)
					return
				}
				if err := tc.Write(q, h, 0, buf); err != nil {
					threadErrs[th] = fmt.Errorf("write %q: %w", name, err)
					return
				}
				names[idx] = name
			}
		})
	}
	wg.Wait(p)
	for _, err := range threadErrs {
		if err != nil {
			return nil, err
		}
	}
	return names, nil
}

// liteMerge two-way merges two named buffers into a new named buffer,
// reading both with LT_read.
func liteMerge(p *simtime.Proc, dep *lite.Deployment, cfg *Config, node int, a, b, out string) error {
	c := dep.Instance(node).KernelClient()
	read := func(name string) ([]byte, error) {
		h, err := c.Map(p, name)
		if err != nil {
			return nil, fmt.Errorf("map %q: %w", name, err)
		}
		buf := make([]byte, lmrSize(dep, name))
		if err := c.Read(p, h, 0, buf); err != nil {
			return nil, fmt.Errorf("read %q: %w", name, err)
		}
		_ = c.Unmap(p, h)
		return buf, nil
	}
	av, err := read(a)
	if err != nil {
		return err
	}
	bv, err := read(b)
	if err != nil {
		return err
	}
	merged := mergeSorted(p, cfg, av, bv)
	h, err := c.Malloc(p, int64(len(merged))+1, out, lite.PermRead)
	if err != nil {
		return fmt.Errorf("publish %q: %w", out, err)
	}
	if err := c.Write(p, h, 0, merged); err != nil {
		return fmt.Errorf("write %q: %w", out, err)
	}
	return nil
}
