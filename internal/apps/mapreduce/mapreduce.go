// Package mapreduce implements the paper's MapReduce comparison
// (§8.2, Figure 18): LITE-MR, a distributed WordCount ported from the
// single-node Phoenix design whose network phase uses LT_read and
// LT_RPC; a Phoenix-style single-node baseline; and a Hadoop-style
// baseline that ships data over the TCP/IP (IPoIB) stack with
// disk-materialized intermediate output and per-task scheduling
// overheads.
//
// All three share the same computational kernels and cost model, so
// the performance differences come from data movement and
// coordination, as in the paper.
package mapreduce

import (
	"encoding/binary"
	"sort"
	"time"

	"lite/internal/simtime"
)

// Config controls a WordCount run.
type Config struct {
	// Master is the coordinating node.
	Master int
	// Workers lists the worker nodes (may include the master).
	Workers []int
	// ThreadsPerWorker is the number of map/reduce threads per worker.
	ThreadsPerWorker int
	// Reducers is the number of reduce partitions.
	Reducers int
	// ChunkSize is the map-task input split size.
	ChunkSize int64
	// TaskTimeout bounds each task dispatch on LITE-MR. Zero keeps the
	// legacy behavior of waiting forever for a worker's reply; a
	// positive value routes dispatches through the retry layer and lets
	// the master declare a worker lost and re-execute the job on the
	// survivors.
	TaskTimeout simtime.Time

	// Cost model (virtual time charged per unit of computation).

	// MapPerKB is the tokenize+count cost per KB of input.
	MapPerKB simtime.Time
	// EmitCost is the per-word cost of inserting into the worker's
	// intermediate index. Phoenix's global tree index pays
	// GlobalIndexExtra on top (the contention the paper's port removed
	// by splitting the index per node).
	EmitCost simtime.Time
	// GlobalIndexExtra is Phoenix's additional per-emit cost.
	GlobalIndexExtra simtime.Time
	// MergePerKB is the cost of merging sorted runs, per KB merged.
	MergePerKB simtime.Time
}

// DefaultConfig returns the standard cost model with the given
// topology.
func DefaultConfig(master int, workers []int, threads, reducers int) Config {
	return Config{
		Master:           master,
		Workers:          workers,
		ThreadsPerWorker: threads,
		Reducers:         reducers,
		ChunkSize:        1 << 20,
		MapPerKB:         2500 * time.Nanosecond, // ~400 MB/s tokenizer
		EmitCost:         60 * time.Nanosecond,
		GlobalIndexExtra: 90 * time.Nanosecond,
		MergePerKB:       800 * time.Nanosecond, // ~1.3 GB/s merge
	}
}

// Result reports a run's output and phase breakdown.
type Result struct {
	Counts map[string]int64
	Map    simtime.Time
	Reduce simtime.Time
	Merge  simtime.Time
	Total  simtime.Time
}

// ---- shared computational kernels ----

// splitChunks cuts input into word-aligned chunks of roughly
// chunkSize bytes and returns (offset, length) pairs.
func splitChunks(input []byte, chunkSize int64) [][2]int64 {
	var out [][2]int64
	var off int64
	n := int64(len(input))
	for off < n {
		end := off + chunkSize
		if end >= n {
			end = n
		} else {
			for end < n && input[end] != ' ' {
				end++
			}
		}
		out = append(out, [2]int64{off, end - off})
		off = end
	}
	return out
}

// fnv1a hashes a word for reducer partitioning.
func fnv1a(w []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range w {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

// mapChunk tokenizes chunk and counts words into per-reducer maps,
// charging the map cost model.
func mapChunk(p *simtime.Proc, cfg *Config, chunk []byte, into []map[string]int64) {
	p.Work(cfg.MapPerKB * simtime.Time(len(chunk)) / 1024)
	start := -1
	emits := 0
	for i := 0; i <= len(chunk); i++ {
		if i < len(chunk) && chunk[i] != ' ' {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			w := chunk[start:i]
			r := int(fnv1a(w)) % len(into)
			if r < 0 {
				r += len(into)
			}
			into[r][string(w)]++
			emits++
			start = -1
		}
	}
	p.Work(cfg.EmitCost * simtime.Time(emits))
}

// kv is a sorted word-count pair.
type kv struct {
	word  string
	count int64
}

// serializeCounts emits a sorted [4B n]{[2B wlen][word][8B count]}
// buffer.
func serializeCounts(m map[string]int64) []byte {
	kvs := make([]kv, 0, len(m))
	size := 4
	for w, c := range m {
		kvs = append(kvs, kv{w, c})
		size += 2 + len(w) + 8
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].word < kvs[j].word })
	out := make([]byte, size)
	binary.LittleEndian.PutUint32(out, uint32(len(kvs)))
	cur := 4
	for _, e := range kvs {
		binary.LittleEndian.PutUint16(out[cur:], uint16(len(e.word)))
		copy(out[cur+2:], e.word)
		binary.LittleEndian.PutUint64(out[cur+2+len(e.word):], uint64(e.count))
		cur += 2 + len(e.word) + 8
	}
	return out
}

// parseCounts decodes a serializeCounts buffer into the map, adding to
// existing entries.
func parseCounts(buf []byte, into map[string]int64) {
	if len(buf) < 4 {
		return
	}
	n := binary.LittleEndian.Uint32(buf)
	cur := 4
	for k := uint32(0); k < n; k++ {
		if cur+2 > len(buf) {
			return
		}
		wl := int(binary.LittleEndian.Uint16(buf[cur:]))
		if cur+2+wl+8 > len(buf) {
			return
		}
		w := string(buf[cur+2 : cur+2+wl])
		c := int64(binary.LittleEndian.Uint64(buf[cur+2+wl:]))
		into[w] += c
		cur += 2 + wl + 8
	}
}

// mergeSorted merges two serializeCounts buffers (sorted by word) into
// one, charging the merge cost model.
func mergeSorted(p *simtime.Proc, cfg *Config, a, b []byte) []byte {
	p.Work(cfg.MergePerKB * simtime.Time(len(a)+len(b)) / 1024)
	m := make(map[string]int64)
	parseCounts(a, m)
	parseCounts(b, m)
	return serializeCounts(m)
}
