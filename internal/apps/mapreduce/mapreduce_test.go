package mapreduce

import (
	"bytes"
	"testing"

	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/params"
	"lite/internal/workload"
)

// refWordCount computes the expected answer directly.
func refWordCount(input []byte) map[string]int64 {
	out := make(map[string]int64)
	for _, w := range bytes.Fields(input) {
		out[string(w)]++
	}
	return out
}

func checkCounts(t *testing.T, got, want map[string]int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("distinct words: got %d, want %d", len(got), len(want))
	}
	for w, c := range want {
		if got[w] != c {
			t.Fatalf("count[%q] = %d, want %d", w, got[w], c)
		}
	}
}

func testInput(n int) []byte {
	return workload.NewCorpus(42, 300).Generate(n)
}

func newLITECluster(t *testing.T, n int) (*cluster.Cluster, *lite.Deployment) {
	t.Helper()
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, n, 1<<30)
	dep, err := lite.Start(cls, lite.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return cls, dep
}

func TestSplitChunksCoversInput(t *testing.T) {
	input := testInput(100000)
	chunks := splitChunks(input, 8192)
	var total int64
	for i, ch := range chunks {
		if ch[1] <= 0 {
			t.Fatalf("chunk %d has length %d", i, ch[1])
		}
		total += ch[1]
		// Chunks must break at word boundaries (except the last).
		if end := ch[0] + ch[1]; end < int64(len(input)) && input[end] != ' ' {
			t.Fatalf("chunk %d ends mid-word", i)
		}
	}
	if total != int64(len(input)) {
		t.Fatalf("chunks cover %d bytes, want %d", total, len(input))
	}
}

func TestSerializeParseRoundTrip(t *testing.T) {
	m := map[string]int64{"apple": 3, "pear": 1, "zebra": 99}
	got := make(map[string]int64)
	parseCounts(serializeCounts(m), got)
	checkCounts(t, got, m)
}

func TestLITEMRCorrectness(t *testing.T) {
	input := testInput(200000)
	cls, dep := newLITECluster(t, 4)
	cfg := DefaultConfig(0, []int{1, 2, 3}, 2, 4)
	cfg.ChunkSize = 16384
	res, err := RunLITE(cls, dep, cfg, input)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Counts, refWordCount(input))
	if res.Map <= 0 || res.Reduce <= 0 || res.Merge <= 0 {
		t.Fatalf("phase times: %+v", res)
	}
}

func TestPhoenixCorrectness(t *testing.T) {
	input := testInput(150000)
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, 1, 1<<30)
	mrCfg := DefaultConfig(0, []int{0}, 4, 4)
	mrCfg.ChunkSize = 16384
	res, err := RunPhoenix(cls, mrCfg, 0, input)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Counts, refWordCount(input))
}

func TestHadoopCorrectness(t *testing.T) {
	input := testInput(150000)
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, 3, 1<<30)
	hCfg := DefaultHadoopConfig(0, []int{1, 2}, 2, 4)
	hCfg.ChunkSize = 16384
	res, err := RunHadoop(cls, hCfg, input)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res.Counts, refWordCount(input))
}

func TestLITEMRBeatsHadoop(t *testing.T) {
	input := testInput(400000)

	cls1, dep1 := newLITECluster(t, 3)
	liteCfg := DefaultConfig(0, []int{1, 2}, 4, 4)
	liteCfg.ChunkSize = 32768
	liteRes, err := RunLITE(cls1, dep1, liteCfg, input)
	if err != nil {
		t.Fatal(err)
	}

	cfg := params.Default()
	cls2 := cluster.MustNew(&cfg, 3, 1<<30)
	hCfg := DefaultHadoopConfig(0, []int{1, 2}, 4, 4)
	hCfg.ChunkSize = 32768
	hadoopRes, err := RunHadoop(cls2, hCfg, input)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(hadoopRes.Total) / float64(liteRes.Total)
	if ratio < 2 {
		t.Fatalf("Hadoop/LITE-MR = %.2f (LITE %v vs Hadoop %v), want LITE clearly faster", ratio, liteRes.Total, hadoopRes.Total)
	}
}

func TestLITEMRMapReduceFasterThanPhoenix(t *testing.T) {
	// The paper's surprising result: LITE-MR's map and reduce phases
	// beat single-node Phoenix (same total threads) because the split
	// per-node index is cheaper than Phoenix's global tree, while the
	// merge phase is slower because the data is distributed.
	input := testInput(400000)

	cls1, dep1 := newLITECluster(t, 3)
	liteCfg := DefaultConfig(0, []int{1, 2}, 4, 8)
	liteCfg.ChunkSize = 32768
	liteRes, err := RunLITE(cls1, dep1, liteCfg, input)
	if err != nil {
		t.Fatal(err)
	}

	cfg := params.Default()
	cls2 := cluster.MustNew(&cfg, 1, 1<<30)
	phxCfg := DefaultConfig(0, []int{1, 2}, 4, 8) // 2 workers x 4 threads = 8 threads
	phxCfg.ChunkSize = 32768
	phxRes, err := RunPhoenix(cls2, phxCfg, 0, input)
	if err != nil {
		t.Fatal(err)
	}
	if liteRes.Map+liteRes.Reduce >= phxRes.Map+phxRes.Reduce {
		t.Fatalf("LITE-MR map+reduce (%v) should beat Phoenix (%v)",
			liteRes.Map+liteRes.Reduce, phxRes.Map+phxRes.Reduce)
	}
	if liteRes.Merge <= phxRes.Merge {
		t.Fatalf("LITE-MR merge (%v) should be slower than Phoenix local merge (%v)",
			liteRes.Merge, phxRes.Merge)
	}
}
