package mapreduce

import (
	"encoding/json"
	"fmt"
	"time"

	"lite/internal/cluster"
	"lite/internal/params"
	"lite/internal/simtime"
	"lite/internal/tcpip"
)

// HadoopConfig extends the common cost model with the overheads that
// separate a Hadoop-style engine from LITE-MR: per-task scheduling and
// JVM overhead, disk materialization of intermediate data, and a
// TCP/IP (IPoIB) shuffle.
type HadoopConfig struct {
	Config
	// JobStartup is the fixed job submission + container launch cost.
	JobStartup simtime.Time
	// PerTask is the scheduling + task-launch overhead per task.
	PerTask simtime.Time
	// DiskBandwidth is the intermediate-data materialization rate in
	// bytes/second.
	DiskBandwidth float64
}

// DefaultHadoopConfig mirrors DefaultConfig plus Hadoop's overheads.
// The fixed costs are scaled to this repository's reduced input sizes
// (the paper's runs use multi-GB inputs where multi-second job startup
// amortizes); the shape — Hadoop several times slower than LITE-MR on
// the same input — is what carries over.
func DefaultHadoopConfig(master int, workers []int, threads, reducers int) HadoopConfig {
	return HadoopConfig{
		Config:        DefaultConfig(master, workers, threads, reducers),
		JobStartup:    120 * time.Millisecond,
		PerTask:       10 * time.Millisecond,
		DiskBandwidth: 150e6,
	}
}

const hadoopPortBase = 9000

// hadoopMsg is a control/data message between the Hadoop master and
// workers (JSON over the simulated TCP stack).
type hadoopMsg struct {
	Kind      string
	Chunks    [][2]int64
	Input     []byte `json:",omitempty"`
	Reducers  []int
	WorkerIdx int
	Workers   int
	// Data-plane messages.
	Reducer int
	Buf     []byte `json:",omitempty"`
	Names   []string
	Merges  [][3]string
}

// RunHadoop executes WordCount on the Hadoop-style engine: the same
// kernels, but every byte of intermediate data is written to disk and
// shuffled over the TCP/IP stack, and every task pays scheduling
// overhead.
func RunHadoop(cls *cluster.Cluster, cfg HadoopConfig, input []byte) (*Result, error) {
	res := &Result{Counts: make(map[string]int64)}
	var runErr error

	// Worker servers: one listener per worker node; each accepted
	// connection is served by its own handler thread so concurrent
	// shuffles between workers cannot deadlock the accept loops.
	states := make([]*hadoopWorkerState, len(cfg.Workers))
	for wi, w := range cfg.Workers {
		wi, w := wi, w
		st := &hadoopWorkerState{disk: make(map[string][]byte)}
		states[wi] = st
		l, err := cls.Net.Stack(w).Listen(hadoopPortBase + wi)
		if err != nil {
			return nil, err
		}
		cls.GoDaemonOn(w, "hadoop-worker", func(p *simtime.Proc) {
			for {
				conn, err := l.Accept(p)
				if err != nil {
					return
				}
				cls.GoDaemonOn(w, "hadoop-conn", func(q *simtime.Proc) {
					hadoopServeConn(q, cls, &cfg, st, wi, w, conn)
				})
			}
		})
	}

	cls.GoOn(cfg.Master, "hadoop-master", func(p *simtime.Proc) {
		runErr = hadoopMaster(p, cls, &cfg, input, res)
	})
	start := cls.Env.Now()
	if err := cls.Run(); err != nil {
		return nil, err
	}
	res.Total = cls.Env.Now() - start
	return res, runErr
}

func hadoopRPC(p *simtime.Proc, cls *cluster.Cluster, from, toNode, toPort int, msg hadoopMsg) (hadoopMsg, error) {
	conn, err := cls.Net.Stack(from).Dial(p, toNode, toPort)
	if err != nil {
		return hadoopMsg{}, err
	}
	defer conn.Close(p.Env())
	b, _ := json.Marshal(msg)
	if err := conn.Send(p, b); err != nil {
		return hadoopMsg{}, err
	}
	rb, err := conn.Recv(p)
	if err != nil {
		return hadoopMsg{}, err
	}
	var reply hadoopMsg
	err = json.Unmarshal(rb, &reply)
	return reply, err
}

func hadoopMaster(p *simtime.Proc, cls *cluster.Cluster, cfg *HadoopConfig, input []byte, res *Result) error {
	p.Sleep(cfg.JobStartup)
	chunks := splitChunks(input, cfg.ChunkSize)

	// ---- map phase: ship splits to workers over TCP ----
	t0 := p.Now()
	perWorker := make([][][2]int64, len(cfg.Workers))
	for i, ch := range chunks {
		perWorker[i%len(cfg.Workers)] = append(perWorker[i%len(cfg.Workers)], ch)
	}
	var wg simtime.WaitGroup
	errs := make([]error, len(cfg.Workers))
	wg.Add(len(cfg.Workers))
	for wi, w := range cfg.Workers {
		wi, w := wi, w
		cls.GoOn(cfg.Master, "hadoop-dispatch", func(q *simtime.Proc) {
			defer wg.Done(q.Env())
			// The input split contents travel with the task (HDFS would
			// stream them from a datanode over the same network).
			var mine []byte
			for _, ch := range perWorker[wi] {
				mine = append(mine, input[ch[0]:ch[0]+ch[1]]...)
			}
			_, errs[wi] = hadoopRPC(q, cls, cfg.Master, w, hadoopPortBase+wi, hadoopMsg{
				Kind: "map", Input: mine, Chunks: perWorker[wi],
				WorkerIdx: wi, Workers: len(cfg.Workers),
			})
		})
	}
	wg.Wait(p)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	res.Map = p.Now() - t0

	// ---- reduce phase ----
	t0 = p.Now()
	perRed := make([][]int, len(cfg.Workers))
	for r := 0; r < cfg.Reducers; r++ {
		perRed[r%len(cfg.Workers)] = append(perRed[r%len(cfg.Workers)], r)
	}
	var rwg simtime.WaitGroup
	rwg.Add(len(cfg.Workers))
	for wi, w := range cfg.Workers {
		wi, w := wi, w
		cls.GoOn(cfg.Master, "hadoop-dispatch", func(q *simtime.Proc) {
			defer rwg.Done(q.Env())
			_, errs[wi] = hadoopRPC(q, cls, cfg.Master, w, hadoopPortBase+wi, hadoopMsg{
				Kind: "reduce", Reducers: perRed[wi], WorkerIdx: wi, Workers: len(cfg.Workers),
			})
		})
	}
	rwg.Wait(p)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	res.Reduce = p.Now() - t0

	// ---- merge: fetch all reduce outputs to the master and merge ----
	t0 = p.Now()
	var bufs [][]byte
	for wi, w := range cfg.Workers {
		for _, r := range perRed[wi] {
			reply, err := hadoopRPC(p, cls, cfg.Master, w, hadoopPortBase+wi, hadoopMsg{
				Kind: "fetch", Reducer: r,
			})
			if err != nil {
				return err
			}
			bufs = append(bufs, reply.Buf)
		}
	}
	for len(bufs) > 1 {
		var next [][]byte
		for k := 0; k+1 < len(bufs); k += 2 {
			next = append(next, mergeSorted(p, &cfg.Config, bufs[k], bufs[k+1]))
		}
		if len(bufs)%2 == 1 {
			next = append(next, bufs[len(bufs)-1])
		}
		bufs = next
	}
	res.Merge = p.Now() - t0
	parseCounts(bufs[0], res.Counts)
	return nil
}

// hadoopWorkerState is a worker's simulated local disk.
type hadoopWorkerState struct {
	disk map[string][]byte
}

// hadoopServeConn handles one request on a worker.
func hadoopServeConn(p *simtime.Proc, cls *cluster.Cluster, cfg *HadoopConfig, st *hadoopWorkerState, wi, node int, conn *tcpip.Conn) {
	b, err := conn.Recv(p)
	if err != nil {
		return
	}
	var msg hadoopMsg
	if json.Unmarshal(b, &msg) != nil {
		return
	}
	var reply hadoopMsg
	switch msg.Kind {
	case "map":
		// One task launch per chunk.
		p.Sleep(cfg.PerTask * simtime.Time(len(msg.Chunks)))
		into := make([]map[string]int64, cfg.Reducers)
		for r := range into {
			into[r] = make(map[string]int64)
		}
		var off int64
		for _, ch := range msg.Chunks {
			mapChunk(p, &cfg.Config, msg.Input[off:off+ch[1]], into)
			off += ch[1]
		}
		// Materialize map output to disk, one spill per reducer.
		for r := 0; r < cfg.Reducers; r++ {
			buf := serializeCounts(into[r])
			p.Work(params.TransferTime(int64(len(buf)), cfg.DiskBandwidth))
			st.disk[fmt.Sprintf("mo-%d-%d", msg.WorkerIdx, r)] = buf
		}
	case "reduce":
		p.Sleep(cfg.PerTask * simtime.Time(len(msg.Reducers)))
		for _, r := range msg.Reducers {
			m := make(map[string]int64)
			for w2 := 0; w2 < msg.Workers; w2++ {
				name := fmt.Sprintf("mo-%d-%d", w2, r)
				var buf []byte
				if w2 == wi {
					buf = st.disk[name]
					p.Work(params.TransferTime(int64(len(buf)), cfg.DiskBandwidth))
				} else {
					// Shuffle over TCP from the peer worker.
					peer := cfg.Workers[w2]
					rep, err := hadoopRPC(p, cls, node, peer, hadoopPortBase+w2, hadoopMsg{Kind: "fetchmap", WorkerIdx: w2, Reducer: r})
					if err != nil {
						continue
					}
					buf = rep.Buf
				}
				p.Work(cfg.MergePerKB * simtime.Time(len(buf)) / 1024)
				parseCounts(buf, m)
			}
			out := serializeCounts(m)
			p.Work(params.TransferTime(int64(len(out)), cfg.DiskBandwidth))
			st.disk[fmt.Sprintf("ro-%d", r)] = out
		}
	case "fetchmap":
		name := fmt.Sprintf("mo-%d-%d", msg.WorkerIdx, msg.Reducer)
		buf := st.disk[name]
		p.Work(params.TransferTime(int64(len(buf)), cfg.DiskBandwidth)) // disk read
		reply.Buf = buf
	case "fetch":
		buf := st.disk[fmt.Sprintf("ro-%d", msg.Reducer)]
		p.Work(params.TransferTime(int64(len(buf)), cfg.DiskBandwidth))
		reply.Buf = buf
	}
	rb, _ := json.Marshal(reply)
	_ = conn.Send(p, rb)
	conn.Close(p.Env())
}
