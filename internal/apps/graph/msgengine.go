package graph

import (
	"lite/internal/cluster"
	"lite/internal/simtime"
	"lite/internal/tcpip"
	"lite/internal/workload"
)

// MsgEngineParams distinguish the TCP-based engines: PowerGraph-sim
// exchanges rank updates in small messages (the fine-grained traffic
// vertex-cut engines generate), while Grappa-sim aggregates into large
// batches at the cost of added latency per exchange (its
// latency-tolerant delegation/aggregation design).
type MsgEngineParams struct {
	// BatchBytes is the message size the engine packs updates into.
	BatchBytes int
	// AggregationDelay is the per-exchange latency added by buffering
	// updates for aggregation (zero for PowerGraph).
	AggregationDelay simtime.Time
}

// PowerGraphParams returns the fine-grained messaging profile:
// vertex-cut engines exchange per-vertex gather/scatter messages, so
// even with batching the wire unit stays small.
func PowerGraphParams() MsgEngineParams {
	return MsgEngineParams{BatchBytes: 2 << 10}
}

// GrappaParams returns the aggregating profile.
func GrappaParams() MsgEngineParams {
	return MsgEngineParams{BatchBytes: 64 << 10, AggregationDelay: 100 * 1000}
}

const graphPortBase = 9500

// RunMsgEngine executes PageRank with the same kernels as LITE-Graph
// but exchanging contribution vectors over the TCP/IP (IPoIB) stack in
// engine-specific batches. The all-to-all exchange doubles as the
// inter-iteration barrier.
func RunMsgEngine(cls *cluster.Cluster, cfg Config, prm MsgEngineParams, g *workload.Graph) (*Result, error) {
	n := g.NumVertices
	gt := g.Transpose()
	nodes := cfg.Nodes
	res := &Result{Ranks: make([]float64, n)}
	errs := make([]error, len(nodes))

	// Connection mesh: node i listens on graphPortBase+i; every node
	// dials every higher-numbered node.
	conns := make([][]*meshConn, len(nodes))
	for i := range conns {
		conns[i] = make([]*meshConn, len(nodes))
	}
	listeners := make([]*tcpip.Listener, len(nodes))
	for idx, node := range nodes {
		l, err := cls.Net.Stack(node).Listen(graphPortBase + idx)
		if err != nil {
			return nil, err
		}
		listeners[idx] = l
	}

	for idx, node := range nodes {
		idx, node := idx, node
		cls.GoOn(node, "msggraph", func(p *simtime.Proc) {
			errs[idx] = msgEngineNode(p, cls, &cfg, prm, g, gt, idx, node, listeners, conns, res)
		})
	}
	start := cls.Env.Now()
	if err := cls.Run(); err != nil {
		return nil, err
	}
	res.Time = cls.Env.Now() - start
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// meshConn wraps a TCP connection with an inbox so a node can receive
// from all peers through dedicated reader threads.
type meshConn struct {
	inbox *simtime.Chan[[]byte]
}

func msgEngineNode(p *simtime.Proc, cls *cluster.Cluster, cfg *Config, prm MsgEngineParams, g, gt *workload.Graph, idx, node int, listeners []*tcpip.Listener, conns [][]*meshConn, res *Result) error {
	nodes := cfg.Nodes
	n := g.NumVertices
	lo, hi := ownedRange(n, len(nodes), idx)

	// Build the mesh: dial higher indices, accept lower ones.
	meshConns := make([]*tcpip.Conn, len(nodes))
	for j := idx + 1; j < len(nodes); j++ {
		conn, err := cls.Net.Stack(node).Dial(p, nodes[j], graphPortBase+j)
		if err != nil {
			return err
		}
		meshConns[j] = conn
	}
	for j := 0; j < idx; j++ {
		conn, err := listeners[idx].Accept(p)
		if err != nil {
			return err
		}
		peer := -1
		for k, nd := range nodes {
			if nd == conn.RemoteNode() {
				peer = k
			}
		}
		if peer < 0 {
			continue
		}
		meshConns[peer] = conn
	}
	_ = conns

	ranks := make([]float64, n)
	contrib := make([]float64, n)
	for v := lo; v < hi; v++ {
		ranks[v] = 1.0 / float64(n)
	}
	base := (1 - cfg.Damping) / float64(n)
	var buf []byte

	for it := 0; it < cfg.Iterations; it++ {
		contribFor(g, ranks, lo, hi, contrib)
		buf = floatsToBytes(contrib[lo:hi], buf)
		if prm.AggregationDelay > 0 {
			p.Sleep(prm.AggregationDelay)
		}
		// One comm thread sends this node's contributions to every peer
		// in batches; the node's main thread pays the receive-side
		// processing for every inbound batch (PowerGraph's fine-grained
		// messages compete with computation for the CPU).
		var swg simtime.WaitGroup
		swg.Add(1)
		cls.GoOn(node, "msggraph-send", func(q *simtime.Proc) {
			defer swg.Done(q.Env())
			for j := range nodes {
				if j == idx || len(buf) == 0 {
					continue
				}
				for off := 0; off < len(buf); off += prm.BatchBytes {
					end := off + prm.BatchBytes
					if end > len(buf) {
						end = len(buf)
					}
					if err := meshConns[j].Send(q, buf[off:end]); err != nil {
						return
					}
				}
			}
		})
		// Receive every peer's contributions.
		for j := range nodes {
			if j == idx {
				continue
			}
			jlo, jhi := ownedRange(n, len(nodes), j)
			want := (jhi - jlo) * 8
			got := 0
			tmp := make([]byte, 0, want)
			for got < want {
				b, err := meshConns[j].Recv(p)
				if err != nil {
					return err
				}
				tmp = append(tmp, b...)
				got += len(b)
			}
			bytesToFloats(tmp, contrib[jlo:jhi])
		}
		swg.Wait(p)

		// Compute on the node's threads.
		next := make([]float64, n)
		threads := cfg.ThreadsPerNode
		var wg simtime.WaitGroup
		wg.Add(threads)
		for th := 0; th < threads; th++ {
			tlo, thi := ownedRange(hi-lo, threads, th)
			tlo, thi = tlo+lo, thi+lo
			cls.GoOn(node, "msggraph-compute", func(q *simtime.Proc) {
				defer wg.Done(q.Env())
				computeRange(q, cfg, gt, contrib, tlo, thi, base, next)
			})
		}
		wg.Wait(p)
		copy(ranks[lo:hi], next[lo:hi])
	}
	copy(res.Ranks[lo:hi], ranks[lo:hi])
	return nil
}
