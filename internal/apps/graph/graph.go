// Package graph implements the paper's graph-engine comparison (§8.3,
// Figure 19): LITE-Graph, a PowerGraph-design engine whose 20 lines of
// network code are LITE calls (LT_read/LT_write for global data,
// LT_lock for protected updates, LT_barrier between the gather, apply,
// and scatter steps, with delta caching); a PowerGraph-style baseline
// exchanging fine-grained messages over the TCP/IP (IPoIB) stack; a
// Grappa-style baseline that aggregates messages into large batches on
// a latency-tolerant stack; and LITE-Graph-DSM, the same engine on top
// of LITE-DSM (§8.4). All run PageRank with identical computational
// kernels.
package graph

import (
	"math"
	"time"

	"lite/internal/simtime"
	"lite/internal/workload"
)

// Config controls a PageRank run.
type Config struct {
	// Nodes lists the participating cluster nodes.
	Nodes []int
	// ThreadsPerNode is the number of compute threads per node.
	ThreadsPerNode int
	// Iterations is the number of PageRank iterations.
	Iterations int
	// Damping is the PageRank damping factor.
	Damping float64

	// GatherPerEdge is the per-in-edge compute cost.
	GatherPerEdge simtime.Time
	// ApplyPerVertex is the per-vertex apply cost.
	ApplyPerVertex simtime.Time
	// PartitionsPerNode controls lock granularity in LITE-Graph
	// (splitting global data into more LMRs increases parallelism,
	// §8.5).
	PartitionsPerNode int
}

// DefaultConfig returns the standard cost model for the given nodes.
func DefaultConfig(nodes []int, threads, iterations int) Config {
	return Config{
		Nodes:             nodes,
		ThreadsPerNode:    threads,
		Iterations:        iterations,
		Damping:           0.85,
		GatherPerEdge:     5 * time.Nanosecond,
		ApplyPerVertex:    20 * time.Nanosecond,
		PartitionsPerNode: threads,
	}
}

// Result reports a PageRank run.
type Result struct {
	Ranks []float64
	Time  simtime.Time
}

// RefPageRank computes PageRank in plain Go for correctness checks.
func RefPageRank(g *workload.Graph, iterations int, damping float64) []float64 {
	n := g.NumVertices
	gt := g.Transpose()
	rank := make([]float64, n)
	next := make([]float64, n)
	for v := range rank {
		rank[v] = 1.0 / float64(n)
	}
	base := (1 - damping) / float64(n)
	for it := 0; it < iterations; it++ {
		contrib := make([]float64, n)
		for v := 0; v < n; v++ {
			if d := g.OutDegree(v); d > 0 {
				contrib[v] = rank[v] / float64(d)
			}
		}
		for v := 0; v < n; v++ {
			var sum float64
			for _, u := range gt.OutNeighbors(v) {
				sum += contrib[u]
			}
			next[v] = base + damping*sum
		}
		rank, next = next, rank
	}
	return rank
}

// ranksClose reports whether two rank vectors agree within tolerance.
func ranksClose(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// ownedRange returns the vertex range [lo, hi) owned by node index
// idx out of parts.
func ownedRange(n, parts, idx int) (int, int) {
	per := (n + parts - 1) / parts
	lo := idx * per
	hi := lo + per
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// computeRange runs the gather+apply kernel for vertices [lo, hi),
// reading the global contrib vector and writing new ranks, charging
// the compute cost model.
func computeRange(p *simtime.Proc, cfg *Config, gt *workload.Graph, contrib []float64, lo, hi int, base float64, out []float64) {
	edges := 0
	for v := lo; v < hi; v++ {
		var sum float64
		nbrs := gt.OutNeighbors(v)
		edges += len(nbrs)
		for _, u := range nbrs {
			sum += contrib[u]
		}
		out[v] = base + cfg.Damping*sum
	}
	p.Work(cfg.GatherPerEdge*simtime.Time(edges) + cfg.ApplyPerVertex*simtime.Time(hi-lo))
}

// contribFor fills contrib[lo:hi] from ranks and out-degrees.
func contribFor(g *workload.Graph, ranks []float64, lo, hi int, contrib []float64) {
	for v := lo; v < hi; v++ {
		if d := g.OutDegree(v); d > 0 {
			contrib[v] = ranks[v] / float64(d)
		} else {
			contrib[v] = 0
		}
	}
}

// float64 (de)serialization for shipping contrib slices.

func floatsToBytes(f []float64, buf []byte) []byte {
	need := len(f) * 8
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	for i, v := range f {
		bits := math.Float64bits(v)
		buf[8*i+0] = byte(bits)
		buf[8*i+1] = byte(bits >> 8)
		buf[8*i+2] = byte(bits >> 16)
		buf[8*i+3] = byte(bits >> 24)
		buf[8*i+4] = byte(bits >> 32)
		buf[8*i+5] = byte(bits >> 40)
		buf[8*i+6] = byte(bits >> 48)
		buf[8*i+7] = byte(bits >> 56)
	}
	return buf
}

func bytesToFloats(buf []byte, f []float64) {
	n := len(buf) / 8
	if n > len(f) {
		n = len(f)
	}
	for i := 0; i < n; i++ {
		bits := uint64(buf[8*i]) | uint64(buf[8*i+1])<<8 | uint64(buf[8*i+2])<<16 |
			uint64(buf[8*i+3])<<24 | uint64(buf[8*i+4])<<32 | uint64(buf[8*i+5])<<40 |
			uint64(buf[8*i+6])<<48 | uint64(buf[8*i+7])<<56
		f[i] = math.Float64frombits(bits)
	}
}
