package graph

import (
	"testing"

	"lite/internal/cluster"
	"lite/internal/params"
	"lite/internal/workload"
)

func TestSingleNodeEngines(t *testing.T) {
	g := workload.NewPowerLawGraph(1, 500, 4000)
	want := RefPageRank(g, 3, 0.85)

	cls, dep := newLITECluster(t, 1)
	res, err := RunLITE(cls, dep, DefaultConfig([]int{0}, 2, 3), g)
	if err != nil {
		t.Fatal(err)
	}
	if !ranksClose(res.Ranks, want, 1e-12) {
		t.Fatal("single-node LITE-Graph diverges")
	}

	pcfg := params.Default()
	cls2 := cluster.MustNew(&pcfg, 1, 1<<30)
	res2, err := RunMsgEngine(cls2, DefaultConfig([]int{0}, 2, 3), PowerGraphParams(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !ranksClose(res2.Ranks, want, 1e-12) {
		t.Fatal("single-node msg engine diverges")
	}
}

func TestMoreNodesThanVertices(t *testing.T) {
	// Empty partitions (nodes owning no vertices) must not wedge the
	// barriers or the exchange.
	g := workload.NewPowerLawGraph(2, 3, 6)
	want := RefPageRank(g, 2, 0.85)
	cls, dep := newLITECluster(t, 5)
	res, err := RunLITE(cls, dep, DefaultConfig([]int{0, 1, 2, 3, 4}, 1, 2), g)
	if err != nil {
		t.Fatal(err)
	}
	if !ranksClose(res.Ranks, want, 1e-12) {
		t.Fatal("tiny graph on many nodes diverges")
	}
}

func TestZeroIterations(t *testing.T) {
	g := workload.NewPowerLawGraph(3, 100, 500)
	cls, dep := newLITECluster(t, 2)
	res, err := RunLITE(cls, dep, DefaultConfig([]int{0, 1}, 1, 0), g)
	if err != nil {
		t.Fatal(err)
	}
	// Zero iterations: everyone keeps the uniform initial rank.
	for v, r := range res.Ranks {
		if r != 1.0/float64(g.NumVertices) {
			t.Fatalf("rank[%d] = %g after 0 iterations", v, r)
		}
	}
}

func TestDeltaCachingSkipsUnchangedPartitions(t *testing.T) {
	// A node that owns no vertices never bumps its contribution data,
	// so peers skip its bulk fetch after the first check — count the
	// fetches via the version mechanism by running a graph where one
	// partition is empty and confirming the run stays correct.
	g := workload.NewPowerLawGraph(4, 10, 40)
	want := RefPageRank(g, 4, 0.85)
	cls, dep := newLITECluster(t, 4) // 10 vertices over 4 nodes: last may be small
	res, err := RunLITE(cls, dep, DefaultConfig([]int{0, 1, 2, 3}, 1, 4), g)
	if err != nil {
		t.Fatal(err)
	}
	if !ranksClose(res.Ranks, want, 1e-12) {
		t.Fatal("delta-cached run diverges")
	}
}

func TestPartitionHealsBeforeRun(t *testing.T) {
	// A healed partition must leave no residue in the fabric: a full
	// LITE-Graph run across the former partition boundary converges
	// exactly as if the cut never happened.
	g := workload.NewPowerLawGraph(5, 200, 1500)
	want := RefPageRank(g, 3, 0.85)
	cls, dep := newLITECluster(t, 4)
	cls.Fab.Partition([]int{0, 1}, []int{2, 3})
	if cls.Fab.Reachable(0, 2) || cls.Fab.Reachable(3, 1) {
		t.Fatal("partition not in effect")
	}
	cls.Fab.HealPartition([]int{0, 1}, []int{2, 3})
	res, err := RunLITE(cls, dep, DefaultConfig([]int{0, 1, 2, 3}, 2, 3), g)
	if err != nil {
		t.Fatal(err)
	}
	if !ranksClose(res.Ranks, want, 1e-12) {
		t.Fatal("run after healed partition diverges")
	}
}

func TestNodeDownBlocksThenHeals(t *testing.T) {
	// SetNodeDown isolates one node in both directions; SetNodeUp fully
	// restores it for a subsequent run.
	g := workload.NewPowerLawGraph(6, 100, 700)
	want := RefPageRank(g, 2, 0.85)
	cls, dep := newLITECluster(t, 3)
	cls.Fab.SetNodeDown(1)
	for _, pair := range [][2]int{{0, 1}, {1, 0}, {2, 1}, {1, 2}} {
		if cls.Fab.Reachable(pair[0], pair[1]) {
			t.Fatalf("downed node still reachable via %v", pair)
		}
	}
	cls.Fab.SetNodeUp(1)
	res, err := RunLITE(cls, dep, DefaultConfig([]int{0, 1, 2}, 1, 2), g)
	if err != nil {
		t.Fatal(err)
	}
	if !ranksClose(res.Ranks, want, 1e-12) {
		t.Fatal("run after node revival diverges")
	}
}
