package graph

import (
	"testing"

	"lite/internal/cluster"
	"lite/internal/params"
	"lite/internal/workload"
)

func TestSingleNodeEngines(t *testing.T) {
	g := workload.NewPowerLawGraph(1, 500, 4000)
	want := RefPageRank(g, 3, 0.85)

	cls, dep := newLITECluster(t, 1)
	res, err := RunLITE(cls, dep, DefaultConfig([]int{0}, 2, 3), g)
	if err != nil {
		t.Fatal(err)
	}
	if !ranksClose(res.Ranks, want, 1e-12) {
		t.Fatal("single-node LITE-Graph diverges")
	}

	pcfg := params.Default()
	cls2 := cluster.MustNew(&pcfg, 1, 1<<30)
	res2, err := RunMsgEngine(cls2, DefaultConfig([]int{0}, 2, 3), PowerGraphParams(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !ranksClose(res2.Ranks, want, 1e-12) {
		t.Fatal("single-node msg engine diverges")
	}
}

func TestMoreNodesThanVertices(t *testing.T) {
	// Empty partitions (nodes owning no vertices) must not wedge the
	// barriers or the exchange.
	g := workload.NewPowerLawGraph(2, 3, 6)
	want := RefPageRank(g, 2, 0.85)
	cls, dep := newLITECluster(t, 5)
	res, err := RunLITE(cls, dep, DefaultConfig([]int{0, 1, 2, 3, 4}, 1, 2), g)
	if err != nil {
		t.Fatal(err)
	}
	if !ranksClose(res.Ranks, want, 1e-12) {
		t.Fatal("tiny graph on many nodes diverges")
	}
}

func TestZeroIterations(t *testing.T) {
	g := workload.NewPowerLawGraph(3, 100, 500)
	cls, dep := newLITECluster(t, 2)
	res, err := RunLITE(cls, dep, DefaultConfig([]int{0, 1}, 1, 0), g)
	if err != nil {
		t.Fatal(err)
	}
	// Zero iterations: everyone keeps the uniform initial rank.
	for v, r := range res.Ranks {
		if r != 1.0/float64(g.NumVertices) {
			t.Fatalf("rank[%d] = %g after 0 iterations", v, r)
		}
	}
}

func TestDeltaCachingSkipsUnchangedPartitions(t *testing.T) {
	// A node that owns no vertices never bumps its contribution data,
	// so peers skip its bulk fetch after the first check — count the
	// fetches via the version mechanism by running a graph where one
	// partition is empty and confirming the run stays correct.
	g := workload.NewPowerLawGraph(4, 10, 40)
	want := RefPageRank(g, 4, 0.85)
	cls, dep := newLITECluster(t, 4) // 10 vertices over 4 nodes: last may be small
	res, err := RunLITE(cls, dep, DefaultConfig([]int{0, 1, 2, 3}, 1, 4), g)
	if err != nil {
		t.Fatal(err)
	}
	if !ranksClose(res.Ranks, want, 1e-12) {
		t.Fatal("delta-cached run diverges")
	}
}
