package graph

import (
	"encoding/binary"
	"fmt"

	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/simtime"
	"lite/internal/workload"
)

var liteGraphRun int

// RunLITE executes PageRank on LITE-Graph. Each node owns a contiguous
// vertex range; per-iteration contribution vectors live in named LMRs
// (one per node plus an 8-byte version header used for delta caching);
// threads update their partitions under LT_locks; LT_barrier separates
// the gather/apply/scatter steps. The graph structure is replicated,
// as PowerGraph replicates structure via vertex mirrors — only rank
// data crosses the network.
func RunLITE(cls *cluster.Cluster, dep *lite.Deployment, cfg Config, g *workload.Graph) (*Result, error) {
	liteGraphRun++
	runID := liteGraphRun
	n := g.NumVertices
	gt := g.Transpose()
	nodes := cfg.Nodes
	res := &Result{Ranks: make([]float64, n)}
	errs := make([]error, len(nodes))

	barrierID := uint64(0xB000 + runID*64)

	for idx, node := range nodes {
		idx, node := idx, node
		cls.GoOn(node, "litegraph", func(p *simtime.Proc) {
			errs[idx] = liteGraphNode(p, cls, dep, &cfg, runID, barrierID, g, gt, idx, node, res)
		})
	}
	start := cls.Env.Now()
	if err := cls.Run(); err != nil {
		return nil, err
	}
	res.Time = cls.Env.Now() - start
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

func liteGraphNode(p *simtime.Proc, cls *cluster.Cluster, dep *lite.Deployment, cfg *Config, runID int, barrierID uint64, g, gt *workload.Graph, idx, node int, res *Result) error {
	c := dep.Instance(node).KernelClient()
	n := g.NumVertices
	nodes := cfg.Nodes
	lo, hi := ownedRange(n, len(nodes), idx)

	// Publish this node's contribution LMR and version header.
	name := fmt.Sprintf("pg%d-contrib-%d", runID, idx)
	ownBytes := int64((hi - lo) * 8)
	if ownBytes == 0 {
		ownBytes = 8
	}
	ownLH, err := c.Malloc(p, ownBytes, name, lite.PermRead|lite.PermWrite)
	if err != nil {
		return err
	}
	verLH, err := c.Malloc(p, 8, name+".ver", lite.PermRead|lite.PermWrite)
	if err != nil {
		return err
	}
	// Locks protecting this node's partitions of the global data.
	locks := make([]lite.Lock, cfg.PartitionsPerNode)
	for k := range locks {
		lk, err := c.AllocLock(p, node)
		if err != nil {
			return err
		}
		locks[k] = lk
	}
	if err := c.Barrier(p, barrierID, len(nodes)); err != nil {
		return err
	}
	// Map every peer's LMRs.
	peersLH := make([]lite.LH, len(nodes))
	peersVer := make([]lite.LH, len(nodes))
	for j := range nodes {
		if j == idx {
			continue
		}
		pn := fmt.Sprintf("pg%d-contrib-%d", runID, j)
		h, err := c.Map(p, pn)
		if err != nil {
			return err
		}
		v, err := c.Map(p, pn+".ver")
		if err != nil {
			return err
		}
		peersLH[j], peersVer[j] = h, v
	}

	ranks := make([]float64, n)
	contrib := make([]float64, n)
	lastVer := make([]uint64, len(nodes))
	for v := lo; v < hi; v++ {
		ranks[v] = 1.0 / float64(n)
	}
	base := (1 - cfg.Damping) / float64(n)
	var buf []byte

	for it := 0; it < cfg.Iterations; it++ {
		// Scatter: publish own contributions under the partition locks
		// and bump the version header (delta caching metadata).
		contribFor(g, ranks, lo, hi, contrib)
		buf = floatsToBytes(contrib[lo:hi], buf)
		per := (len(buf) + len(locks) - 1) / len(locks)
		for k := range locks {
			a := k * per
			b := a + per
			if a >= len(buf) {
				break
			}
			if b > len(buf) {
				b = len(buf)
			}
			if err := c.LockAcquire(p, locks[k]); err != nil {
				return err
			}
			if err := c.Write(p, ownLH, int64(a), buf[a:b]); err != nil {
				return err
			}
			if err := c.LockRelease(p, locks[k]); err != nil {
				return err
			}
		}
		var verBuf [8]byte
		binary.LittleEndian.PutUint64(verBuf[:], uint64(it+1))
		if err := c.Write(p, verLH, 0, verBuf[:]); err != nil {
			return err
		}
		if err := c.Barrier(p, barrierID, len(nodes)); err != nil {
			return err
		}

		// Gather inputs: bulk-read peers' contributions in parallel,
		// skipping any whose version header is unchanged (delta
		// caching).
		fetchErrs := make([]error, len(nodes))
		var fwg simtime.WaitGroup
		for j := range nodes {
			if j == idx {
				continue
			}
			j := j
			fwg.Add(1)
			cls.GoOn(node, "litegraph-fetch", func(q *simtime.Proc) {
				defer fwg.Done(q.Env())
				qc := dep.Instance(node).KernelClient()
				var vb [8]byte
				if err := qc.Read(q, peersVer[j], 0, vb[:]); err != nil {
					fetchErrs[j] = err
					return
				}
				ver := binary.LittleEndian.Uint64(vb[:])
				jlo, jhi := ownedRange(n, len(nodes), j)
				if ver == lastVer[j] || jhi == jlo {
					return // unchanged since last fetch
				}
				lastVer[j] = ver
				rb := make([]byte, (jhi-jlo)*8)
				if err := qc.Read(q, peersLH[j], 0, rb); err != nil {
					fetchErrs[j] = err
					return
				}
				bytesToFloats(rb, contrib[jlo:jhi])
			})
		}
		fwg.Wait(p)
		for _, err := range fetchErrs {
			if err != nil {
				return err
			}
		}

		// Apply: compute owned ranks on the node's threads.
		next := make([]float64, n)
		threads := cfg.ThreadsPerNode
		var wg simtime.WaitGroup
		wg.Add(threads)
		for th := 0; th < threads; th++ {
			tlo, thi := ownedRange(hi-lo, threads, th)
			tlo, thi = tlo+lo, thi+lo
			cls.GoOn(node, "litegraph-compute", func(q *simtime.Proc) {
				defer wg.Done(q.Env())
				computeRange(q, cfg, gt, contrib, tlo, thi, base, next)
			})
		}
		wg.Wait(p)
		copy(ranks[lo:hi], next[lo:hi])
		if err := c.Barrier(p, barrierID, len(nodes)); err != nil {
			return err
		}
	}
	copy(res.Ranks[lo:hi], ranks[lo:hi])
	return nil
}
