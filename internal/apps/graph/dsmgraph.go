package graph

import (
	"lite/internal/apps/dsm"
	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/simtime"
	"lite/internal/workload"
)

var dsmGraphRun int

// RunDSM executes PageRank on LITE-Graph-DSM: the same engine design
// as LITE-Graph, but the globally shared contribution vector lives in
// LITE-DSM and is accessed with plain loads and stores (page faults
// pull remote pages; release pushes dirty pages home and multicasts
// invalidations). The paper finds it slower than LITE-Graph — the
// extra DSM layer — but still far ahead of PowerGraph (§8.4).
func RunDSM(cls *cluster.Cluster, dep *lite.Deployment, cfg Config, g *workload.Graph) (*Result, error) {
	dsmGraphRun++
	n := g.NumVertices
	gt := g.Transpose()
	nodes := cfg.Nodes
	res := &Result{Ranks: make([]float64, n)}
	errs := make([]error, len(nodes))
	barrierID := uint64(0xD000 + dsmGraphRun*64)

	var sys *dsm.System
	var bootErr error
	booted := false
	var bootCond simtime.Cond

	// Page-align each node's slot so no shared page has two writers
	// (the MRSW discipline LITE-DSM requires).
	dcfg := dsm.DefaultConfig()
	per := (n + len(nodes) - 1) / len(nodes)
	slotBytes := (int64(per*8) + dcfg.PageSize - 1) / dcfg.PageSize * dcfg.PageSize

	for idx, node := range nodes {
		idx, node := idx, node
		cls.GoOn(node, "dsmgraph", func(p *simtime.Proc) {
			if idx == 0 {
				sys, bootErr = dsm.Boot(p, cls, dep, nodes, slotBytes*int64(len(nodes)), dcfg)
				booted = true
				bootCond.Broadcast(p.Env())
				if bootErr != nil {
					return
				}
			} else {
				for !booted {
					bootCond.Wait(p)
				}
				if bootErr != nil {
					return
				}
			}
			errs[idx] = dsmGraphNode(p, cls, dep, &cfg, barrierID, g, gt, sys, idx, node, slotBytes, res)
		})
	}
	start := cls.Env.Now()
	if err := cls.Run(); err != nil {
		return nil, err
	}
	if bootErr != nil {
		return nil, bootErr
	}
	res.Time = cls.Env.Now() - start
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

func dsmGraphNode(p *simtime.Proc, cls *cluster.Cluster, dep *lite.Deployment, cfg *Config, barrierID uint64, g, gt *workload.Graph, sys *dsm.System, idx, node int, slotBytes int64, res *Result) error {
	c := dep.Instance(node).KernelClient()
	d := sys.Node(node)
	nodes := cfg.Nodes
	n := g.NumVertices
	lo, hi := ownedRange(n, len(nodes), idx)

	ranks := make([]float64, n)
	contrib := make([]float64, n)
	for v := lo; v < hi; v++ {
		ranks[v] = 1.0 / float64(n)
	}
	base := (1 - cfg.Damping) / float64(n)
	var buf []byte

	for it := 0; it < cfg.Iterations; it++ {
		// Publish own contributions as stores into this node's
		// page-aligned DSM slot.
		contribFor(g, ranks, lo, hi, contrib)
		buf = floatsToBytes(contrib[lo:hi], buf)
		d.Acquire(p)
		if len(buf) > 0 {
			if err := d.Write(p, int64(idx)*slotBytes, buf); err != nil {
				return err
			}
		}
		if err := d.Release(p); err != nil {
			return err
		}
		if err := c.Barrier(p, barrierID, len(nodes)); err != nil {
			return err
		}

		// Load every peer's slot; invalidated pages fault and re-fetch
		// from their homes.
		d.Acquire(p)
		for j := range nodes {
			jlo, jhi := ownedRange(n, len(nodes), j)
			if jhi == jlo {
				continue
			}
			slot := make([]byte, (jhi-jlo)*8)
			if err := d.Read(p, int64(j)*slotBytes, slot); err != nil {
				return err
			}
			bytesToFloats(slot, contrib[jlo:jhi])
		}

		next := make([]float64, n)
		threads := cfg.ThreadsPerNode
		var wg simtime.WaitGroup
		wg.Add(threads)
		for th := 0; th < threads; th++ {
			tlo, thi := ownedRange(hi-lo, threads, th)
			tlo, thi = tlo+lo, thi+lo
			cls.GoOn(node, "dsmgraph-compute", func(q *simtime.Proc) {
				defer wg.Done(q.Env())
				computeRange(q, cfg, gt, contrib, tlo, thi, base, next)
			})
		}
		wg.Wait(p)
		copy(ranks[lo:hi], next[lo:hi])
		if err := c.Barrier(p, barrierID, len(nodes)); err != nil {
			return err
		}
	}
	copy(res.Ranks[lo:hi], ranks[lo:hi])
	return nil
}
