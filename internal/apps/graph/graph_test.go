package graph

import (
	"testing"

	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/params"
	"lite/internal/workload"
)

func testGraph() *workload.Graph {
	return workload.NewPowerLawGraph(7, 2000, 20000)
}

func newLITECluster(t *testing.T, n int) (*cluster.Cluster, *lite.Deployment) {
	t.Helper()
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, n, 1<<30)
	dep, err := lite.Start(cls, lite.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return cls, dep
}

func TestRefPageRankConserves(t *testing.T) {
	g := testGraph()
	ranks := RefPageRank(g, 10, 0.85)
	var sum float64
	for _, r := range ranks {
		if r < 0 {
			t.Fatal("negative rank")
		}
		sum += r
	}
	// Rank mass stays near 1 (dangling vertices leak a little).
	if sum < 0.3 || sum > 1.01 {
		t.Fatalf("rank sum = %f", sum)
	}
}

func TestLITEGraphMatchesReference(t *testing.T) {
	g := testGraph()
	want := RefPageRank(g, 5, 0.85)
	cls, dep := newLITECluster(t, 4)
	cfg := DefaultConfig([]int{0, 1, 2, 3}, 2, 5)
	res, err := RunLITE(cls, dep, cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if !ranksClose(res.Ranks, want, 1e-12) {
		t.Fatal("LITE-Graph ranks diverge from reference")
	}
	if res.Time <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestMsgEngineMatchesReference(t *testing.T) {
	g := testGraph()
	want := RefPageRank(g, 4, 0.85)
	pcfg := params.Default()
	cls := cluster.MustNew(&pcfg, 4, 1<<30)
	cfg := DefaultConfig([]int{0, 1, 2, 3}, 2, 4)
	res, err := RunMsgEngine(cls, cfg, PowerGraphParams(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !ranksClose(res.Ranks, want, 1e-12) {
		t.Fatal("PowerGraph-sim ranks diverge from reference")
	}
}

func TestDSMGraphMatchesReference(t *testing.T) {
	g := testGraph()
	want := RefPageRank(g, 4, 0.85)
	cls, dep := newLITECluster(t, 4)
	cfg := DefaultConfig([]int{0, 1, 2, 3}, 2, 4)
	res, err := RunDSM(cls, dep, cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if !ranksClose(res.Ranks, want, 1e-12) {
		t.Fatal("LITE-Graph-DSM ranks diverge from reference")
	}
}

func TestEngineOrdering(t *testing.T) {
	// The Figure 19 shape: LITE-Graph < Graph-DSM < Grappa < PowerGraph
	// in run time (LITE-Graph fastest).
	g := workload.NewPowerLawGraph(7, 20000, 200000)
	iters := 4

	cls1, dep1 := newLITECluster(t, 4)
	liteRes, err := RunLITE(cls1, dep1, DefaultConfig([]int{0, 1, 2, 3}, 4, iters), g)
	if err != nil {
		t.Fatal(err)
	}

	cls2, dep2 := newLITECluster(t, 4)
	dsmRes, err := RunDSM(cls2, dep2, DefaultConfig([]int{0, 1, 2, 3}, 4, iters), g)
	if err != nil {
		t.Fatal(err)
	}

	pcfg := params.Default()
	cls3 := cluster.MustNew(&pcfg, 4, 1<<30)
	pgRes, err := RunMsgEngine(cls3, DefaultConfig([]int{0, 1, 2, 3}, 4, iters), PowerGraphParams(), g)
	if err != nil {
		t.Fatal(err)
	}

	pcfg2 := params.Default()
	cls4 := cluster.MustNew(&pcfg2, 4, 1<<30)
	grRes, err := RunMsgEngine(cls4, DefaultConfig([]int{0, 1, 2, 3}, 4, iters), GrappaParams(), g)
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("LITE-Graph %v, Graph-DSM %v, Grappa %v, PowerGraph %v",
		liteRes.Time, dsmRes.Time, grRes.Time, pgRes.Time)
	if liteRes.Time >= pgRes.Time {
		t.Fatalf("LITE-Graph (%v) must beat PowerGraph (%v)", liteRes.Time, pgRes.Time)
	}
	if liteRes.Time >= dsmRes.Time {
		t.Fatalf("LITE-Graph (%v) must beat Graph-DSM (%v)", liteRes.Time, dsmRes.Time)
	}
	if grRes.Time >= pgRes.Time {
		t.Fatalf("Grappa (%v) must beat PowerGraph (%v)", grRes.Time, pgRes.Time)
	}
	if dsmRes.Time >= pgRes.Time {
		t.Fatalf("Graph-DSM (%v) must beat PowerGraph (%v)", dsmRes.Time, pgRes.Time)
	}
	ratio := float64(pgRes.Time) / float64(liteRes.Time)
	if ratio < 2 {
		t.Fatalf("PowerGraph/LITE-Graph = %.2f, want the paper's multi-x gap", ratio)
	}
}

func TestOwnedRangePartition(t *testing.T) {
	// Ranges must tile [0, n) without overlap for any node count.
	for _, n := range []int{1, 7, 100, 1001} {
		for _, parts := range []int{1, 2, 3, 8} {
			covered := 0
			prevHi := 0
			for i := 0; i < parts; i++ {
				lo, hi := ownedRange(n, parts, i)
				if lo != prevHi {
					t.Fatalf("n=%d parts=%d idx=%d: lo=%d, want %d", n, parts, i, lo, prevHi)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n {
				t.Fatalf("n=%d parts=%d: covered %d", n, parts, covered)
			}
		}
	}
}

func TestFloatSerializationRoundTrip(t *testing.T) {
	in := []float64{0, 1.5, -2.25, 1e-300, 9e300}
	buf := floatsToBytes(in, nil)
	out := make([]float64, len(in))
	bytesToFloats(buf, out)
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("round trip [%d]: %v != %v", i, out[i], in[i])
		}
	}
}
