package kvstore

import (
	"fmt"
	"testing"

	"lite/internal/lite"
	"lite/internal/simtime"
)

// Regression for a cross-run determinism bug the rebalance stress run
// flushed out: store ids came from a process-global counter, so how
// many stores *earlier simulations in the same process* had created
// decided this run's ids. The id feeds LMR names ("kv<id>-..."), which
// ride inside Malloc control messages and Put replies — one extra
// digit grows those messages a byte, their serialization time shifts,
// and a supposedly seed-identical run drifts. Ids now come from
// deployment-scoped state (lite.Deployment.NextAppSeq).

// runStoreWorkload builds a fresh deployment with nstores stores on
// one node, drives puts/gets through a drain, and returns the store
// ids plus the virtual end time — the drift detector.
func runStoreWorkload(t *testing.T, nstores int) ([]int, simtime.Time) {
	t.Helper()
	cls, dep := testEnv(t, 4)
	ids := make([]int, 0, nstores)
	stores := make([]*Store, nstores)
	for i := 0; i < nstores; i++ {
		s, err := StartFn(cls, dep, []int{1}, 2, lite.FirstUserFunc+i)
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = s
		ids = append(ids, s.id)
	}
	cls.GoOn(3, "client", func(p *simtime.Proc) {
		for gen := 0; gen < 4; gen++ {
			for i, s := range stores {
				k := s.NewClient(3)
				for j := 0; j < 6; j++ {
					key := fmt.Sprintf("k%d-%d", i, j)
					if err := k.Put(p, key, []byte(fmt.Sprintf("v%d", gen))); err != nil {
						t.Errorf("put: %v", err)
					}
					if _, err := k.Get(p, key); err != nil {
						t.Errorf("get: %v", err)
					}
				}
			}
			p.Sleep(20 * 1000)
		}
	})
	cls.GoOn(1, "drain", func(p *simtime.Proc) {
		p.SleepUntil(50 * 1000)
		if err := stores[0].DrainShard(p, 1, 2); err != nil {
			t.Errorf("DrainShard: %v", err)
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
	return ids, cls.Env.Now()
}

// TestStoreIDsAreDeploymentScoped perturbs what a process-global
// counter would see — a warm-up deployment that creates seven stores,
// walking such a counter across the one-digit/two-digit boundary —
// then runs the same workload twice. With global state the second run
// mints wider ids, its LMR names and replies grow, and the timelines
// diverge; deployment-scoped ids must make the runs bit-identical.
func TestStoreIDsAreDeploymentScoped(t *testing.T) {
	warmIDs, _ := runStoreWorkload(t, 7)
	firstIDs, firstEnd := runStoreWorkload(t, 3)
	secondIDs, secondEnd := runStoreWorkload(t, 3)

	for i, id := range warmIDs {
		if want := i + 1; id != want {
			t.Fatalf("warm-up store %d got id %d, want %d (ids must restart per deployment)", i, id, want)
		}
	}
	if fmt.Sprint(firstIDs) != fmt.Sprint(secondIDs) {
		t.Fatalf("store ids differ across identical runs: %v vs %v", firstIDs, secondIDs)
	}
	if firstEnd != secondEnd {
		t.Fatalf("identical runs ended at %v and %v: id state leaked between simulations", firstEnd, secondEnd)
	}
}
