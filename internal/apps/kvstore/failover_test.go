package kvstore

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/params"
	"lite/internal/simtime"
)

func faultyEnv(t *testing.T, n int) (*cluster.Cluster, *lite.Deployment) {
	t.Helper()
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, n, 1<<30)
	opts := lite.DefaultOptions()
	opts.HeartbeatInterval = 100 * time.Microsecond
	opts.HeartbeatTimeout = 300 * time.Microsecond
	dep, err := lite.Start(cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	return cls, dep
}

// When a server node dies, its shard's keys remap deterministically to
// the survivors. The data it held is lost — a re-put recreates each key
// on its new home, after which gets work again. When the node restarts
// (with an empty index) and rejoins, the keys route back to it and
// behave like missing keys until re-put.
func TestServerCrashRemapsShardAndRejoins(t *testing.T) {
	cls, dep := faultyEnv(t, 4)
	s, err := Start(cls, dep, []int{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cls.GoOn(3, "client", func(p *simtime.Proc) {
		k := s.NewClient(3)
		keys := make([]string, 8)
		for i := range keys {
			keys[i] = fmt.Sprintf("key-%d", i)
			if err := k.Put(p, keys[i], []byte("v1-"+keys[i])); err != nil {
				t.Fatal(err)
			}
		}
		cls.CrashNode(p, 1)
		for !k.c.NodeDead(1) {
			p.Sleep(100 * time.Microsecond)
		}
		// Every key is now served by node 2; lost ones surface as
		// ErrNotFound and a re-put restores them.
		for _, key := range keys {
			if home := k.serverFor(key); home != 2 {
				t.Fatalf("serverFor(%q) = %d with node 1 dead, want 2", key, home)
			}
			v, err := k.Get(p, key)
			if err == ErrNotFound {
				if err := k.Put(p, key, []byte("v2-"+key)); err != nil {
					t.Fatalf("re-put %q: %v", key, err)
				}
				if v, err = k.Get(p, key); err != nil {
					t.Fatalf("get after re-put %q: %v", key, err)
				}
				if !bytes.Equal(v, []byte("v2-"+key)) {
					t.Fatalf("get %q = %q after re-put", key, v)
				}
			} else if err != nil {
				t.Fatalf("get %q: %v", key, err)
			} else if !bytes.Equal(v, []byte("v1-"+key)) {
				t.Fatalf("get %q = %q", key, v)
			}
		}
		cls.RestartNode(p, 1)
		deadline := p.Now() + 30*time.Millisecond
		for k.c.NodeDead(1) {
			if p.Now() > deadline {
				t.Fatal("server node never rejoined")
			}
			p.Sleep(200 * time.Microsecond)
		}
		// Keys homed on node 1 route back to it; its index is empty, so
		// they must be re-put once more, then serve normally.
		reput := 0
		for _, key := range keys {
			if k.serverFor(key) != 1 {
				continue
			}
			if _, err := k.Get(p, key); err != ErrNotFound {
				t.Fatalf("get %q from restarted empty server err = %v, want ErrNotFound", key, err)
			}
			if err := k.Put(p, key, []byte("v3-"+key)); err != nil {
				t.Fatal(err)
			}
			v, err := k.Get(p, key)
			if err != nil || !bytes.Equal(v, []byte("v3-"+key)) {
				t.Fatalf("get %q after rejoin = %q, %v", key, v, err)
			}
			reput++
		}
		if reput == 0 {
			t.Fatal("no key hashed to the restarted server; test is vacuous")
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}
