package kvstore

import (
	"bytes"
	"fmt"
	"testing"

	"lite/internal/simtime"
)

// TestGetDirectBasics covers hit, miss, overwrite, delete and the
// empty-value edge through the client-traversed path.
func TestGetDirectBasics(t *testing.T) {
	cls, dep := testEnv(t, 3)
	s, err := StartOneSided(cls, dep, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cls.GoOn(2, "client", func(p *simtime.Proc) {
		k := s.NewClient(2)
		if _, err := k.GetDirect(p, "missing"); err != ErrNotFound {
			t.Fatalf("direct get missing err = %v", err)
		}
		if err := k.Put(p, "a", []byte("value-a")); err != nil {
			t.Fatal(err)
		}
		v, err := k.GetDirect(p, "a")
		if err != nil || string(v) != "value-a" {
			t.Fatalf("direct get = %q, %v", v, err)
		}
		// Overwrite: the new record must be visible immediately.
		if err := k.Put(p, "a", []byte("value-a2")); err != nil {
			t.Fatal(err)
		}
		if v, err = k.GetDirect(p, "a"); err != nil || string(v) != "value-a2" {
			t.Fatalf("direct get after overwrite = %q, %v", v, err)
		}
		// RPC-path get agrees.
		if v, err = k.GetRPC(p, "a"); err != nil || string(v) != "value-a2" {
			t.Fatalf("rpc get = %q, %v", v, err)
		}
		if err := k.Delete(p, "a"); err != nil {
			t.Fatal(err)
		}
		if _, err := k.GetDirect(p, "a"); err != ErrNotFound {
			t.Fatalf("direct get after delete err = %v", err)
		}
		// Empty value round-trips.
		if err := k.Put(p, "empty", nil); err != nil {
			t.Fatal(err)
		}
		if v, err = k.GetDirect(p, "empty"); err != nil || len(v) != 0 {
			t.Fatalf("direct get empty = %q, %v", v, err)
		}
		if k.DirectGets == 0 {
			t.Error("no GETs were resolved one-sided")
		}
		if k.DirectFallbacks != 0 {
			t.Errorf("DirectFallbacks = %d on an uncontended store", k.DirectFallbacks)
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestGetDirectZeroServerCPU is the tentpole gate: once attached,
// stable GETs touch neither the server's RPC path nor its CPU — the
// metadata-op counter and the cluster-wide lite.rpc.calls counter stay
// flat while one-sided GETs flow.
func TestGetDirectZeroServerCPU(t *testing.T) {
	cls, dep := testEnv(t, 3)
	obs := cls.EnableObs()
	s, err := StartOneSided(cls, dep, []int{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	cls.GoOn(2, "client", func(p *simtime.Proc) {
		k := s.NewClient(2)
		for i := 0; i < 8; i++ {
			if err := k.Put(p, fmt.Sprintf("key%d", i), []byte(fmt.Sprintf("val%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		// Warm the attachment (one RPC, amortized forever after).
		if _, err := k.GetDirect(p, "key0"); err != nil {
			t.Fatal(err)
		}
		served0 := s.ServedOps(0)
		rpc0 := obs.Total("lite.rpc.served")
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("key%d", i%8)
			v, err := k.GetDirect(p, key)
			if err != nil || !bytes.Equal(v, []byte(fmt.Sprintf("val%d", i%8))) {
				t.Fatalf("direct get %q = %q, %v", key, v, err)
			}
		}
		if d := s.ServedOps(0) - served0; d != 0 {
			t.Errorf("server handled %d metadata ops during one-sided GETs, want 0", d)
		}
		if d := obs.Total("lite.rpc.served") - rpc0; d != 0 {
			t.Errorf("lite.rpc.served grew by %d during one-sided GETs, want 0", d)
		}
		if k.DirectGets < n {
			t.Errorf("DirectGets = %d, want >= %d", k.DirectGets, n)
		}
		if k.Attaches != 1 {
			t.Errorf("Attaches = %d, want 1", k.Attaches)
		}
		// Guard against the gate being vacuous: the puts and the attach
		// above did go through the server's RPC path.
		if rpc0 == 0 {
			t.Error("lite.rpc.served never moved; the zero-delta check proves nothing")
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestGetDirectSurvivesResize loads enough keys to force bucket and
// heap resizes; attached readers must re-attach transparently and never
// observe a stale or torn value.
func TestGetDirectSurvivesResize(t *testing.T) {
	cls, dep := testEnv(t, 2)
	s, err := StartOneSided(cls, dep, []int{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cls.GoOn(1, "client", func(p *simtime.Proc) {
		k := s.NewClient(1)
		// initialBuckets*slotsPerBucket = 64 slots; 300 keys forces
		// several resizes (and heap growth past initialHeap).
		for i := 0; i < 300; i++ {
			key := fmt.Sprintf("key%04d", i)
			if err := k.Put(p, key, bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
				t.Fatal(err)
			}
			// Interleave direct reads so attachments go stale mid-stream.
			probe := fmt.Sprintf("key%04d", i/2)
			v, err := k.GetDirect(p, probe)
			if err != nil {
				t.Fatalf("direct get %q: %v", probe, err)
			}
			if want := bytes.Repeat([]byte{byte(i / 2)}, 64); !bytes.Equal(v, want) {
				t.Fatalf("direct get %q returned stale/torn value", probe)
			}
		}
		// Full sweep after the dust settles.
		for i := 0; i < 300; i++ {
			key := fmt.Sprintf("key%04d", i)
			v, err := k.GetDirect(p, key)
			if err != nil || !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, 64)) {
				t.Fatalf("final sweep %q = %v", key, err)
			}
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestGetDirectTenantIsolation: tenant keys are never published to the
// kernel-public index; a tenant's GetDirect still works (via the RPC
// fallback) and a kernel probe of the raw index never sees tenant data.
func TestGetDirectTenantIsolation(t *testing.T) {
	cls, dep := testEnv(t, 3)
	s, err := StartOneSided(cls, dep, []int{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cls.GoOn(2, "tenant", func(p *simtime.Proc) {
		tk := s.NewTenantClient(2, 7)
		if err := tk.Put(p, "secret", []byte("tenant-data")); err != nil {
			t.Fatal(err)
		}
		v, err := tk.GetDirect(p, "secret")
		if err != nil || string(v) != "tenant-data" {
			t.Fatalf("tenant GetDirect = %q, %v", v, err)
		}
		if tk.DirectGets != 0 {
			t.Errorf("tenant GET went one-sided (DirectGets = %d), must use RPC", tk.DirectGets)
		}
		// The kernel-side server index must not contain the tenant key.
		srv := s.srvs[0]
		srv.idx.lock(p)
		if srv.idx.inited {
			if _, ok := srv.idx.slots["t7/secret"]; ok {
				t.Error("tenant key published in the kernel-public one-sided index")
			}
		}
		srv.idx.unlock(p)
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestGetDirectSurvivesDrain drains the shard to another node while a
// reader keeps issuing direct GETs: every GET must return the current
// value (possibly via RPC fallback during the fence) and the one-sided
// path must resume against the new home.
func TestGetDirectSurvivesDrain(t *testing.T) {
	cls, dep := testEnv(t, 4)
	s, err := StartOneSided(cls, dep, []int{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	cls.GoOn(3, "migrator", func(p *simtime.Proc) {
		p.Sleep(2 * 1e6) // let the reader get going (2ms virtual)
		if err := s.DrainShard(p, 0, 1); err != nil {
			t.Errorf("drain: %v", err)
		}
		done = true
	})
	cls.GoOn(2, "reader", func(p *simtime.Proc) {
		k := s.NewClient(2)
		for i := 0; i < 20; i++ {
			if err := k.Put(p, fmt.Sprintf("key%d", i), []byte(fmt.Sprintf("val%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		i := 0
		for !done {
			key := fmt.Sprintf("key%d", i%20)
			v, err := k.GetDirect(p, key)
			if err != nil || string(v) != fmt.Sprintf("val%d", i%20) {
				t.Fatalf("get %q during drain = %q, %v", key, v, err)
			}
			i++
			p.Sleep(50_000) // 50us between gets
		}
		// After the drain the one-sided path works against the new home.
		k2 := s.NewClient(2)
		before := k2.DirectGets
		for i := 0; i < 20; i++ {
			key := fmt.Sprintf("key%d", i)
			v, err := k2.GetDirect(p, key)
			if err != nil || string(v) != fmt.Sprintf("val%d", i) {
				t.Fatalf("get %q after drain = %q, %v", key, v, err)
			}
		}
		if k2.DirectGets-before != 20 {
			t.Errorf("one-sided path did not resume after drain: DirectGets = %d/20", k2.DirectGets-before)
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestGetDirectFallsBackWithoutIndex: GetDirect against a classic
// (non-one-sided) store must silently use the RPC path.
func TestGetDirectFallsBackWithoutIndex(t *testing.T) {
	cls, dep := testEnv(t, 2)
	s, err := Start(cls, dep, []int{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cls.GoOn(1, "client", func(p *simtime.Proc) {
		k := s.NewClient(1)
		if err := k.Put(p, "a", []byte("v")); err != nil {
			t.Fatal(err)
		}
		v, err := k.GetDirect(p, "a")
		if err != nil || string(v) != "v" {
			t.Fatalf("fallback get = %q, %v", v, err)
		}
		if k.DirectGets != 0 || k.DirectFallbacks != 1 {
			t.Errorf("DirectGets=%d DirectFallbacks=%d, want 0/1", k.DirectGets, k.DirectFallbacks)
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}
