package kvstore

import (
	"encoding/json"
	"errors"
	"testing"

	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/params"
	"lite/internal/simtime"
)

// TestTenantNamespaces proves the store's multi-tenant story end to
// end: tenants get disjoint key namespaces over one shared store, a
// tenant's value LMRs are unmappable by other tenants even when the
// LMR name leaks, forged key prefixes bounce off the transport's
// tenant label, and kernel clients retain root-like reach.
func TestTenantNamespaces(t *testing.T) {
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, 2, 1<<30)
	cls.EnableObs()
	dep, err := lite.Start(cls, lite.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st, err := Start(cls, dep, []int{1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := st.NewTenantClient(0, 1)
	b := st.NewTenantClient(0, 2)
	k := st.NewClient(0)
	cls.GoOn(0, "tenants", func(p *simtime.Proc) {
		if err := a.Put(p, "secret", []byte("alpha")); err != nil {
			t.Errorf("tenant 1 put: %v", err)
			return
		}
		if v, err := a.Get(p, "secret"); err != nil || string(v) != "alpha" {
			t.Errorf("tenant 1 get = %q, %v", v, err)
		}
		// Same key, different tenant: a disjoint namespace, not a
		// collision.
		if _, err := b.Get(p, "secret"); !errors.Is(err, ErrNotFound) {
			t.Errorf("tenant 2 get of tenant 1 key = %v, want ErrNotFound", err)
		}
		if err := b.Put(p, "secret", []byte("beta")); err != nil {
			t.Errorf("tenant 2 put: %v", err)
			return
		}
		if v, err := b.Get(p, "secret"); err != nil || string(v) != "beta" {
			t.Errorf("tenant 2 get = %q, %v", v, err)
		}
		if v, err := a.Get(p, "secret"); err != nil || string(v) != "alpha" {
			t.Errorf("tenant 1 get after tenant 2 put = %q, %v", v, err)
		}
		// Even with the LMR name in hand (leaked via a root observer),
		// another tenant cannot map the value: the lite layer denies
		// cross-tenant maps with a typed error.
		name, err := k.ResolveName(p, "t1/secret")
		if err != nil || name == "" {
			t.Errorf("kernel resolve of tenant key: %q, %v", name, err)
			return
		}
		if _, err := dep.Instance(0).TenantClient(2).Map(p, name); !errors.Is(err, lite.ErrTenantDenied) {
			t.Errorf("cross-tenant map = %v, want ErrTenantDenied", err)
		}
		// Forging another tenant's key prefix in the request body fails:
		// the server checks the prefix against the transport's tenant.
		req, _ := json.Marshal(request{Op: "lookup", Key: "t1/secret"})
		out, err := dep.Instance(0).TenantClient(2).RPC(p, 1, kvFn, req, 512)
		var resp response
		if err != nil || json.Unmarshal(out, &resp) != nil || resp.OK {
			t.Errorf("forged-prefix lookup = %+v, %v; want OK=false", resp, err)
		}
		// Kernel clients are root: they can read any tenant's values.
		if v, err := k.Get(p, "t1/secret"); err != nil || string(v) != "alpha" {
			t.Errorf("kernel get of tenant value = %q, %v", v, err)
		}
		// Raw single-shot ops share the namespace rules.
		if err := a.PutOnce(p, "raw", []byte("r")); err != nil {
			t.Errorf("PutOnce: %v", err)
		}
		if err := a.LookupOnce(p, "raw"); err != nil {
			t.Errorf("LookupOnce: %v", err)
		}
		if err := b.LookupOnce(p, "raw"); !errors.Is(err, ErrNotFound) {
			t.Errorf("cross-tenant LookupOnce = %v, want ErrNotFound", err)
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
	if got := cls.Obs.Total("lite.tenant.denied"); got < 1 {
		t.Fatalf("lite.tenant.denied = %d, want >= 1", got)
	}
}
