// Shard rebalancing: DrainShard live-migrates one server node's whole
// shard — index, value LMRs, and the LITE-level serving state (dedup
// windows, boot lineage) — onto another node with zero failed client
// calls. The heavy lifting is lite.Instance.Drain; this file supplies
// the application side of the handoff:
//
//   - the appState callback runs on the quiesced source and, per key,
//     grants the target mastership of the value LMR and LT_moves its
//     backing pages to the target node, then serializes the index
//     (sorted — the payload must be byte-identical across runs);
//   - the OnAdopt hook runs on the target while the source is fenced:
//     it stands up serving threads (registering kvFn if this node never
//     served before), LT_maps every shipped LMR name, and installs the
//     index entries.
//
// Clients need no coordination: calls issued at the old home during
// the fence are answered with a moved notification and transparently
// re-routed by the retry layer; the Store's own routing table is
// re-pointed after commit so later calls go direct.
package kvstore

import (
	"encoding/binary"
	"fmt"
	"sort"

	"lite/internal/lite"
	"lite/internal/simtime"
)

// DrainShard live-migrates the shard served at node from onto node to.
// On success from no longer serves this store (stale traffic bounces to
// to); on error the migration aborted and from still owns the shard.
func (s *Store) DrainShard(p *simtime.Proc, from, to int) error {
	if !s.isServer[from] || s.srvs[from] == nil {
		return fmt.Errorf("kvstore: node %d serves no shard of store %d", from, s.id)
	}
	if from == to {
		return fmt.Errorf("kvstore: shard at node %d is already there", from)
	}
	// Source-scoped hook: concurrent drains of other stores sharing this
	// fn onto the same target must not overwrite each other's adoption.
	s.dep.Instance(to).OnAdoptFrom(s.fn, from, s.adoptHook(to))
	err := s.dep.Instance(from).Drain(p, s.fn, to, s.shardState(from, to))
	if err != nil {
		return err
	}
	// Ownership committed: route future calls straight to the new home.
	// Replacing from's slots (rather than re-hashing) keeps every other
	// key's mapping unchanged.
	for idx, n := range s.servers {
		if n == from {
			s.servers[idx] = to
		}
	}
	s.isServer[from] = false
	s.isServer[to] = true
	delete(s.srvs, from)
	return nil
}

// ServedOps returns the number of metadata-path requests the server
// incarnation currently on node has handled, or 0 if node serves no
// shard of this store. Load-driven rebalancers sample it periodically;
// the delta between samples is the shard's request rate.
func (s *Store) ServedOps(node int) int64 {
	if srv := s.srvs[node]; srv != nil {
		return srv.served
	}
	return 0
}

// ServerNodes returns the nodes currently serving this store, sorted.
func (s *Store) ServerNodes() []int {
	var nodes []int
	for n, on := range s.isServer {
		if on {
			nodes = append(nodes, n)
		}
	}
	sort.Ints(nodes)
	return nodes
}

// shardState returns the Drain appState callback: it runs on the
// source after the function has quiesced, hands each value LMR to the
// target (grant mastership, move the backing pages), and serializes
// the index.
//
// Payload wire format, little endian, keys sorted:
//
//	[nkeys 4] per key: [klen 2][key][nlen 2][name][size 8][version 8]
func (s *Store) shardState(from, to int) func(q *simtime.Proc) ([]byte, error) {
	return func(q *simtime.Proc) ([]byte, error) {
		srv := s.srvs[from]
		c := s.dep.Instance(from).KernelClient()
		// One-sided stores fence and retire the source's published index
		// first: in-flight client-traversed readers fail their CAS
		// validation (the fence goes odd and every slot version is
		// poisoned) and fall back to the RPC path, which the drain
		// protocol re-routes to the target. The function is quiesced, so
		// no local mutator holds the index lock.
		if s.onesided && srv.idx.inited {
			s.cls.Announce(q, "kvstore.drain.fence")
			srv.idxPoison(q, c)
		}
		keys := make([]string, 0, len(srv.index))
		for k := range srv.index {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out := make([]byte, 4)
		binary.LittleEndian.PutUint32(out, uint32(len(keys)))
		var b [8]byte
		for _, key := range keys {
			e := srv.index[key]
			if err := c.Grant(q, e.lh, to, lite.PermRead|lite.PermWrite|lite.PermMaster); err != nil {
				return nil, err
			}
			if err := c.Move(q, e.lh, to); err != nil {
				return nil, err
			}
			// Relinquish our own mastership: the target is now the sole
			// owner, so grant requests never route to this (soon idle,
			// possibly later dead) node.
			if err := c.Grant(q, e.lh, from, lite.PermRead|lite.PermWrite); err != nil {
				return nil, err
			}
			binary.LittleEndian.PutUint16(b[:2], uint16(len(key)))
			out = append(out, b[:2]...)
			out = append(out, key...)
			binary.LittleEndian.PutUint16(b[:2], uint16(len(e.name)))
			out = append(out, b[:2]...)
			out = append(out, e.name...)
			binary.LittleEndian.PutUint64(b[:], uint64(e.size))
			out = append(out, b[:]...)
			binary.LittleEndian.PutUint64(b[:], e.version)
			out = append(out, b[:]...)
		}
		return out, nil
	}
}

// adoptHook returns the OnAdopt callback for a migration landing on
// node: stand up serving (or reuse the shard server already there) and
// install the shipped index.
func (s *Store) adoptHook(node int) lite.AdoptFunc {
	return func(p *simtime.Proc, src int, app []byte) error {
		srv, ok := s.srvs[node]
		if !ok {
			inst := s.dep.Instance(node)
			if !inst.RPCRegistered(s.fn) {
				if err := inst.RegisterRPC(s.fn); err != nil {
					return err
				}
			}
			s.gen++
			srv = &server{store: s, node: node, gen: s.gen, index: make(map[string]*entry), idx: &idxState{}}
			s.srvs[node] = srv
			s.armThreads(srv)
		}
		return srv.adoptIndex(p, app)
	}
}

// adoptIndex parses a shardState payload and installs its entries,
// mapping each shipped LMR name into a local handle.
func (srv *server) adoptIndex(p *simtime.Proc, app []byte) error {
	if len(app) < 4 {
		return fmt.Errorf("kvstore: truncated shard payload")
	}
	c := srv.store.dep.Instance(srv.node).KernelClient()
	n := int(binary.LittleEndian.Uint32(app))
	off := 4
	str := func() (string, bool) {
		if len(app) < off+2 {
			return "", false
		}
		l := int(binary.LittleEndian.Uint16(app[off:]))
		off += 2
		if len(app) < off+l {
			return "", false
		}
		v := string(app[off : off+l])
		off += l
		return v, true
	}
	for k := 0; k < n; k++ {
		key, ok := str()
		if !ok {
			return fmt.Errorf("kvstore: truncated shard payload")
		}
		name, ok := str()
		if !ok || len(app) < off+16 {
			return fmt.Errorf("kvstore: truncated shard payload")
		}
		size := int64(binary.LittleEndian.Uint64(app[off:]))
		version := binary.LittleEndian.Uint64(app[off+8:])
		off += 16
		lh, err := c.Map(p, name)
		if err != nil {
			return fmt.Errorf("kvstore: adopt map %q: %w", name, err)
		}
		srv.index[key] = &entry{name: name, lh: lh, size: size, version: version}
	}
	// One-sided stores republish the adopted shard into this server's
	// index so client-traversed GETs resume against the new home.
	if srv.store.onesided {
		return srv.idxAdopt(p, c)
	}
	return nil
}
