package kvstore

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/params"
	"lite/internal/simtime"
	"lite/internal/workload"
)

func testEnv(t *testing.T, n int) (*cluster.Cluster, *lite.Deployment) {
	t.Helper()
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, n, 1<<30)
	dep, err := lite.Start(cls, lite.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return cls, dep
}

func TestPutGetDelete(t *testing.T) {
	cls, dep := testEnv(t, 3)
	s, err := Start(cls, dep, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cls.GoOn(2, "client", func(p *simtime.Proc) {
		k := s.NewClient(2)
		if _, err := k.Get(p, "missing"); err != ErrNotFound {
			t.Fatalf("get missing err = %v", err)
		}
		if err := k.Put(p, "a", []byte("value-a")); err != nil {
			t.Fatal(err)
		}
		v, err := k.Get(p, "a")
		if err != nil || string(v) != "value-a" {
			t.Fatalf("get = %q, %v", v, err)
		}
		if err := k.Delete(p, "a"); err != nil {
			t.Fatal(err)
		}
		if _, err := k.Get(p, "a"); err != ErrNotFound {
			t.Fatalf("get after delete err = %v", err)
		}
		if err := k.Delete(p, "a"); err != ErrNotFound {
			t.Fatalf("double delete err = %v", err)
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGetIsOneSidedAfterFirst(t *testing.T) {
	cls, dep := testEnv(t, 2)
	s, err := Start(cls, dep, []int{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cls.GoOn(1, "client", func(p *simtime.Proc) {
		k := s.NewClient(1)
		if err := k.Put(p, "hot", make([]byte, 512)); err != nil {
			t.Fatal(err)
		}
		if _, err := k.Get(p, "hot"); err != nil {
			t.Fatal(err)
		}
		lookups := k.MetaLookups
		start := p.Now()
		const gets = 50
		for i := 0; i < gets; i++ {
			if _, err := k.Get(p, "hot"); err != nil {
				t.Fatal(err)
			}
		}
		lat := (p.Now() - start) / gets
		if k.MetaLookups != lookups {
			t.Fatalf("warm gets did %d extra metadata lookups", k.MetaLookups-lookups)
		}
		// One-sided read latency, not an RPC round trip.
		if lat > 3*time.Microsecond {
			t.Fatalf("warm get = %v, want one-sided read latency", lat)
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOverwriteSameSizeInPlace(t *testing.T) {
	cls, dep := testEnv(t, 2)
	s, err := Start(cls, dep, []int{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cls.GoOn(1, "client", func(p *simtime.Proc) {
		k := s.NewClient(1)
		_ = k.Put(p, "x", []byte("v1v1"))
		if _, err := k.Get(p, "x"); err != nil {
			t.Fatal(err)
		}
		_ = k.Put(p, "x", []byte("v2v2"))
		v, err := k.Get(p, "x")
		if err != nil || string(v) != "v2v2" {
			t.Fatalf("after same-size overwrite: %q, %v", v, err)
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOverwriteDifferentSizeInvalidatesHandles(t *testing.T) {
	cls, dep := testEnv(t, 3)
	s, err := Start(cls, dep, []int{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	step := 0
	var cond simtime.Cond
	bump := func(p *simtime.Proc) { step++; cond.Broadcast(p.Env()) }
	wait := func(p *simtime.Proc, n int) {
		for step < n {
			cond.Wait(p)
		}
	}
	cls.GoOn(1, "writer", func(p *simtime.Proc) {
		k := s.NewClient(1)
		_ = k.Put(p, "y", []byte("short"))
		bump(p)
		wait(p, 2)
		// Different size: reallocates the LMR; the reader's cached
		// handle is invalidated by LT_free.
		_ = k.Put(p, "y", []byte("a considerably longer value"))
		bump(p)
	})
	cls.GoOn(2, "reader", func(p *simtime.Proc) {
		k := s.NewClient(2)
		wait(p, 1)
		v, err := k.Get(p, "y")
		if err != nil || string(v) != "short" {
			t.Fatalf("first get: %q, %v", v, err)
		}
		bump(p)
		wait(p, 3)
		v, err = k.Get(p, "y")
		if err != nil || string(v) != "a considerably longer value" {
			t.Fatalf("get after resize: %q, %v", v, err)
		}
		if k.MetaLookups < 2 {
			t.Fatal("reader never re-resolved after the resize")
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitioningAcrossServers(t *testing.T) {
	cls, dep := testEnv(t, 4)
	s, err := Start(cls, dep, []int{0, 1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cls.GoOn(3, "client", func(p *simtime.Proc) {
		k := s.NewClient(3)
		vals := make(map[string][]byte)
		for i := 0; i < 60; i++ {
			key := fmt.Sprintf("key-%03d", i)
			v := bytes.Repeat([]byte{byte(i)}, i+1)
			vals[key] = v
			if err := k.Put(p, key, v); err != nil {
				t.Fatal(err)
			}
		}
		for key, want := range vals {
			v, err := k.Get(p, key)
			if err != nil || !bytes.Equal(v, want) {
				t.Fatalf("get %s: %v, %v", key, v, err)
			}
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
	// The hash must actually spread keys over all three servers.
	seen := map[int]bool{}
	for i := 0; i < 60; i++ {
		seen[s.serverFor(fmt.Sprintf("key-%03d", i))] = true
	}
	if len(seen) != 3 {
		t.Fatalf("keys landed on %d servers, want 3", len(seen))
	}
}

func TestFacebookWorkloadMix(t *testing.T) {
	// A get-heavy Facebook-style mix: 95% gets, 5% puts.
	cls, dep := testEnv(t, 3)
	s, err := Start(cls, dep, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	kv := workload.NewFacebookKV(5)
	cls.GoOn(2, "client", func(p *simtime.Proc) {
		k := s.NewClient(2)
		keys := make([]string, 30)
		for i := range keys {
			keys[i] = fmt.Sprintf("fb-%d", i)
			sz := kv.ValueSize()
			if sz > 32<<10 {
				sz = 32 << 10
			}
			if err := k.Put(p, keys[i], make([]byte, sz)); err != nil {
				t.Fatal(err)
			}
		}
		rng := uint64(99)
		for i := 0; i < 400; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			key := keys[rng%uint64(len(keys))]
			if rng%100 < 5 {
				sz := kv.ValueSize()
				if sz > 32<<10 {
					sz = 32 << 10
				}
				if err := k.Put(p, key, make([]byte, sz)); err != nil {
					t.Fatal(err)
				}
			} else if _, err := k.Get(p, key); err != nil {
				t.Fatal(err)
			}
		}
		if k.OneSidedGets < 300 {
			t.Fatalf("only %d one-sided gets; the data path should dominate", k.OneSidedGets)
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}
