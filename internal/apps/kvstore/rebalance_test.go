package kvstore

import (
	"fmt"
	"testing"

	"lite/internal/simtime"
)

// TestDrainShardScaleOut live-migrates a shard onto a node that never
// served before, with a client mutating throughout. No operation may
// fail; after the migration the values must be intact AND physically
// re-homed — crashing the old server must not lose a byte.
func TestDrainShardScaleOut(t *testing.T) {
	cls, dep := testEnv(t, 5)
	s, err := Start(cls, dep, []int{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	const nkeys = 40
	key := func(k int) string { return fmt.Sprintf("key-%03d", k) }
	val := func(k, gen int) []byte { return []byte(fmt.Sprintf("value-%03d-gen%d", k, gen)) }

	mutationsDone := false
	cls.GoOn(4, "client", func(p *simtime.Proc) {
		k := s.NewClient(4)
		for i := 0; i < nkeys; i++ {
			if err := k.Put(p, key(i), val(i, 0)); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
		}
		// Keep mutating across the whole migration window.
		for gen := 1; gen <= 8; gen++ {
			for i := 0; i < nkeys; i++ {
				if err := k.Put(p, key(i), val(i, gen)); err != nil {
					t.Fatalf("put %d gen %d: %v", i, gen, err)
				}
				got, err := k.Get(p, key(i))
				if err != nil || string(got) != string(val(i, gen)) {
					t.Fatalf("get %d gen %d = %q, %v", i, gen, got, err)
				}
			}
			p.Sleep(50 * 1000)
		}
		mutationsDone = true
	})
	cls.GoOn(1, "rebalance", func(p *simtime.Proc) {
		p.SleepUntil(200 * 1000)
		if err := s.DrainShard(p, 1, 3); err != nil {
			t.Errorf("DrainShard: %v", err)
		}
		for _, n := range s.servers {
			if n == 1 {
				t.Error("routing still names the drained node")
			}
		}
		if s.isServer[1] || !s.isServer[3] {
			t.Error("server marks not re-pointed after drain")
		}
	})
	// The values now live on the target: killing the old home loses
	// nothing. (Runs on node 0 — a proc on the crashed node would halt
	// with it.)
	cls.GoOn(0, "crash-verify", func(p *simtime.Proc) {
		p.SleepUntil(10 * 1000 * 1000)
		if !mutationsDone {
			t.Fatal("mutation loop still running at verification time")
		}
		cls.CrashNode(p, 1)
		k := s.NewClient(0)
		for i := 0; i < nkeys; i++ {
			got, err := k.Get(p, key(i))
			if err != nil || string(got) != string(val(i, 8)) {
				t.Errorf("post-crash get %d = %q, %v", i, got, err)
			}
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestDrainShardMergeIntoPeer drains a shard onto a node already
// serving another shard of the same store: the indexes merge and both
// shards keep serving.
func TestDrainShardMergeIntoPeer(t *testing.T) {
	cls, dep := testEnv(t, 4)
	s, err := Start(cls, dep, []int{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	const nkeys = 30
	drained := false
	cls.GoOn(1, "rebalance", func(p *simtime.Proc) {
		p.SleepUntil(300 * 1000)
		if err := s.DrainShard(p, 1, 2); err != nil {
			t.Errorf("DrainShard onto peer: %v", err)
		}
		drained = true
	})
	cls.GoOn(3, "client", func(p *simtime.Proc) {
		k := s.NewClient(3)
		for i := 0; i < nkeys; i++ {
			if err := k.Put(p, fmt.Sprintf("m%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		p.SleepUntil(600 * 1000)
		if !drained {
			t.Fatal("drain did not finish before the verification pass")
		}
		for i := 0; i < nkeys; i++ {
			got, err := k.Get(p, fmt.Sprintf("m%d", i))
			if err != nil || string(got) != fmt.Sprintf("v%d", i) {
				t.Fatalf("get after merge = %q, %v", got, err)
			}
			if err := k.Put(p, fmt.Sprintf("m%d", i), []byte("updated")); err != nil {
				t.Fatalf("put after merge: %v", err)
			}
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}
