package kvstore

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"lite/internal/detrand"
	"lite/internal/simtime"
)

// The model-based oracle test: a randomized PUT/DELETE mix runs
// against one-sided stores while concurrent readers traverse the
// index, and every result is checked against an in-memory model.
//
// Values encode (key, seq). For each GET the oracle accumulates the
// set of legal outcomes over the GET's window: the value (or absence)
// committed when the GET started, plus everything issued on that key
// while the GET was in flight (single mutator, so the set is exact).
// A result outside the set is a phantom read or a lost update. After
// the mutator quiesces, a final sweep requires every key to read back
// exactly its committed state — catching lost updates the windowed
// check would tolerate.
//
// The whole run is repeated per seed and the full event streams must
// be identical: the protocol is bit-deterministic.

// oracleKey tracks one key's oracle state. seq -1 means absent.
type oracleKey struct {
	committed int64  // seq of the committed value, -1 if absent
	pending   *int64 // in-flight op's outcome, nil if none (single mutator)
}

// getWatch is one in-flight GET's legal-outcome set.
type getWatch struct {
	key     string
	allowed map[int64]bool
}

func oracleVal(key string, seq int64, rng uint64) []byte {
	pad := int(detrand.Mix64(rng^uint64(seq)) % 48)
	return []byte(fmt.Sprintf("%s#%d#%s", key, seq, strings.Repeat("x", pad)))
}

func parseOracleVal(v []byte) (key string, seq int64, ok bool) {
	parts := strings.SplitN(string(v), "#", 3)
	if len(parts) != 3 {
		return "", 0, false
	}
	n, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return parts[0], n, true
}

// runOracle executes one seeded run and returns its event stream.
func runOracle(t *testing.T, seed uint64) []string {
	t.Helper()
	cls, dep := testEnv(t, 4)
	s, err := StartOneSided(cls, dep, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}

	const (
		nKeys = 24
		nOps  = 300
	)
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("okey%02d", i)
	}
	model := make(map[string]*oracleKey, nKeys)
	for _, k := range keys {
		model[k] = &oracleKey{committed: -1}
	}
	var (
		events   []string
		watches  []*getWatch
		mutDone  bool
		nReaders = 2
		readers  = 0 // readers finished
	)
	fail := func(format string, args ...interface{}) {
		t.Errorf(format, args...)
	}

	// Mutator: puts and deletes, announcing each issue to in-flight GETs.
	cls.GoOn(2, "mutator", func(p *simtime.Proc) {
		rng := detrand.New(seed)
		k := s.NewClient(2)
		var seq int64
		for i := 0; i < nOps; i++ {
			key := keys[rng.Intn(nKeys)]
			if rng.Intn(10) < 7 { // PUT
				seq++
				out := seq
				model[key].pending = &out
				for _, w := range watches {
					if w.key == key {
						w.allowed[out] = true
					}
				}
				if err := k.Put(p, key, oracleVal(key, seq, seed)); err != nil {
					fail("put %q: %v", key, err)
					return
				}
				model[key].committed = out
				model[key].pending = nil
				events = append(events, fmt.Sprintf("put %s %d", key, seq))
			} else { // DELETE
				out := int64(-1)
				model[key].pending = &out
				for _, w := range watches {
					if w.key == key {
						w.allowed[-1] = true
					}
				}
				err := k.Delete(p, key)
				if err != nil && err != ErrNotFound {
					fail("delete %q: %v", key, err)
					return
				}
				model[key].committed = -1
				model[key].pending = nil
				events = append(events, fmt.Sprintf("del %s", key))
			}
		}
		mutDone = true
	})

	// Readers: concurrent client-traversed GETs (mixed with RPC GETs),
	// each validated against its windowed legal-outcome set.
	for r := 0; r < nReaders; r++ {
		r := r
		cls.GoOn(3, "reader", func(p *simtime.Proc) {
			rng := detrand.New(seed ^ uint64(r+1)*0x9e37)
			k := s.NewClient(3)
			gets := 0
			for !mutDone {
				key := keys[rng.Intn(nKeys)]
				w := &getWatch{key: key, allowed: map[int64]bool{model[key].committed: true}}
				if pd := model[key].pending; pd != nil {
					w.allowed[*pd] = true
				}
				watches = append(watches, w)
				var v []byte
				var err error
				if rng.Intn(4) == 0 {
					v, err = k.GetRPC(p, key)
				} else {
					v, err = k.GetDirect(p, key)
				}
				// Unregister the watch.
				for i, x := range watches {
					if x == w {
						watches = append(watches[:i], watches[i+1:]...)
						break
					}
				}
				got := int64(-1)
				if err == nil {
					vk, seq, ok := parseOracleVal(v)
					if !ok || vk != key {
						fail("reader %d: phantom value %q for key %q", r, v, key)
						return
					}
					got = seq
				} else if err != ErrNotFound {
					fail("reader %d: get %q: %v", r, key, err)
					return
				}
				if !w.allowed[got] {
					fail("reader %d: get %q returned seq %d, legal set %v", r, key, got, w.allowed)
					return
				}
				events = append(events, fmt.Sprintf("get %s %d", key, got))
				gets++
				p.Sleep(simtime.Time(10_000 + rng.Intn(40_000)))
			}
			readers++
			if readers < nReaders {
				return
			}
			// Last reader out sweeps: committed state must read back
			// exactly (this is the lost-update check).
			for _, key := range keys {
				v, err := k.GetDirect(p, key)
				want := model[key].committed
				got := int64(-1)
				if err == nil {
					_, seq, ok := parseOracleVal(v)
					if !ok {
						fail("sweep: bad value %q", v)
						return
					}
					got = seq
				} else if err != ErrNotFound {
					fail("sweep: get %q: %v", key, err)
					return
				}
				if got != want {
					fail("sweep: key %q = seq %d, committed %d (lost update or stale read)", key, got, want)
				}
				events = append(events, fmt.Sprintf("sweep %s %d", key, got))
			}
		})
	}
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
	return events
}

func TestOracleRandomizedMix(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		first := runOracle(t, seed)
		if t.Failed() {
			t.Fatalf("seed %d: oracle violations above", seed)
		}
		if len(first) == 0 {
			t.Fatalf("seed %d: no events recorded", seed)
		}
		// Determinism: an identical run produces the identical stream.
		second := runOracle(t, seed)
		if !reflect.DeepEqual(first, second) {
			for i := range first {
				if i >= len(second) || first[i] != second[i] {
					t.Fatalf("seed %d: runs diverge at event %d: %q vs %q", seed, i, first[i], second[i])
				}
			}
			t.Fatalf("seed %d: runs diverge in length: %d vs %d", seed, len(first), len(second))
		}
	}
}
