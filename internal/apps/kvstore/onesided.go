// One-sided GET path: a client-traversed index that makes stable reads
// cost zero server CPU.
//
// A one-sided store (StartOneSided) publishes, per server, two
// kernel-public LMRs:
//
//   - the index: a 32-byte header [fence][nbuckets][slots/bucket][rsvd]
//     followed by nbuckets buckets of 4 slots, each slot 32 bytes
//     {version, tag, heap offset, record length}. Two-choice hashing
//     (h mod nb, h>>32 mod nb), no cuckoo kicks: bucket overflow
//     triggers a resize into a fresh LMR generation.
//   - the heap: a bump-allocated arena of write-once records
//     [klen 2][key][value]. Records are never overwritten in place, so
//     a heap read can never be torn — the slot write is the single
//     commit point of every mutation.
//
// Clients resolve a GET with LT_reads of the bucket and the record,
// then validate the slot version with a no-op masked LT_cas (compare
// the version they read, swap nothing): a seqlock. Odd versions mark
// mutations in progress; misses are linearized by CAS-validating the
// fence word instead. Torn reads retry; a fence change, revoked handle
// or persistent conflict falls back to the RPC path ("get") and, for
// the index location, re-attaches.
//
// Resize and shard drain invalidate in-flight readers by writing the
// fence odd and poisoning every slot version (one LT_memset of 0xff:
// all-ones is odd), then freeing the old generation's LMRs. A reader
// holding the old attachment fails its validation CAS — or its read
// outright — and re-attaches.
//
// Tenant keys are never indexed: the index and heap are kernel-public
// (tenant 0), and publishing tenant data there would bypass the lite
// layer's namespace isolation. Tenant GETs use the RPC path.
package kvstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"lite/internal/lite"
	"lite/internal/simtime"
)

const (
	idxHdr         = 32 // [fence 8][nbuckets 8][slotsPer 8][reserved 8]
	slotBytes      = 32 // [version 8][tag 8][heap off 8][record len 8]
	slotsPerBucket = 4
	bucketBytes    = slotBytes * slotsPerBucket
	initialBuckets = 16
	initialHeap    = 1 << 14
)

// Direct-path control-flow sentinels (internal).
var (
	errTorn  = errors.New("kvstore: torn one-sided read")    // retry, same attachment
	errStale = errors.New("kvstore: stale index attachment") // re-attach, then retry
	errNoIdx = errors.New("kvstore: server publishes no index")
)

// hashKey64 is FNV-1a (64-bit), the one-sided index hash. The low and
// high halves pick the two candidate buckets; the whole hash is the
// slot tag.
func hashKey64(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// idxEntry locates one live key in the index.
type idxEntry struct {
	slot int64 // global slot number: bucket*slotsPerBucket + i
	tag  uint64
	pos  int64 // heap offset of the record
	rlen int64 // record length
}

// idxState is one server incarnation's published index: the LMR pair,
// the authoritative Go-side mirror, and a virtual-time mutex
// serializing the server's own mutators (several RPC threads share one
// incarnation; readers need no lock — that is the point).
type idxState struct {
	busy bool
	cond simtime.Cond

	inited   bool
	seq      uint64 // LMR generation counter; also the fence generation
	lh       lite.LH
	heapLH   lite.LH
	idxName  string
	heapName string
	nb       int64
	heapCap  int64
	heapOff  int64

	slots map[string]*idxEntry
	occ   []string // slot number -> key ("" = free)
	vers  []uint64 // slot number -> committed (even) version
}

func (ix *idxState) lock(p *simtime.Proc) {
	for ix.busy {
		ix.cond.Wait(p)
	}
	ix.busy = true
}

func (ix *idxState) unlock(p *simtime.Proc) {
	ix.busy = false
	ix.cond.Broadcast(p.Env())
}

func (ix *idxState) fence() uint64 { return ix.seq << 1 }

func slotOff(slot int64) int64 { return idxHdr + slot*slotBytes }

// buckets returns the two candidate buckets of a hash (equal when the
// two halves collide).
func buckets(h uint64, nb int64) (int64, int64) {
	return int64(h % uint64(nb)), int64((h >> 32) % uint64(nb))
}

// findFree returns a free slot in key's two candidate buckets, or -1.
func (ix *idxState) findFree(h uint64) int64 {
	b1, b2 := buckets(h, ix.nb)
	for _, b := range []int64{b1, b2} {
		for i := int64(0); i < slotsPerBucket; i++ {
			s := b*slotsPerBucket + i
			if ix.occ[s] == "" {
				return s
			}
		}
		if b2 == b1 {
			break
		}
	}
	return -1
}

// liveRec is one key-value pair during a rebuild.
type liveRec struct {
	key string
	val []byte
}

// idxBuild allocates a fresh LMR generation sized for recs (at least
// minNB buckets and minHeap heap bytes), writes the complete images,
// and installs the new state in ix. recs must be sorted by key.
func (srv *server) idxBuild(p *simtime.Proc, c *lite.Client, recs []liveRec, minNB, minHeap int64) error {
	nb := minNB
	var heapNeed int64
	for _, r := range recs {
		heapNeed += 2 + int64(len(r.key)) + int64(len(r.val))
	}
	if heapNeed > minHeap {
		minHeap = heapNeed
	}
	ix := srv.idx
placement:
	for {
		occ := make([]string, nb*slotsPerBucket)
		slots := make(map[string]*idxEntry, len(recs))
		idxImg := make([]byte, idxHdr+nb*bucketBytes)
		heapImg := make([]byte, 0, minHeap)
		for _, r := range recs {
			h := hashKey64(r.key)
			// Inline findFree against the in-progress occupancy.
			slot := int64(-1)
			b1, b2 := buckets(h, nb)
			for _, b := range []int64{b1, b2} {
				for i := int64(0); i < slotsPerBucket; i++ {
					if s := b*slotsPerBucket + i; occ[s] == "" {
						slot = s
						break
					}
				}
				if slot >= 0 || b2 == b1 {
					break
				}
			}
			if slot < 0 {
				nb *= 2
				continue placement
			}
			pos := int64(len(heapImg))
			rlen := int64(2 + len(r.key) + len(r.val))
			var kl [2]byte
			binary.LittleEndian.PutUint16(kl[:], uint16(len(r.key)))
			heapImg = append(heapImg, kl[:]...)
			heapImg = append(heapImg, r.key...)
			heapImg = append(heapImg, r.val...)
			occ[slot] = r.key
			slots[r.key] = &idxEntry{slot: slot, tag: h, pos: pos, rlen: rlen}
			so := slotOff(slot) - idxHdr
			img := idxImg[idxHdr+so:]
			binary.LittleEndian.PutUint64(img[0:], 2) // first committed version
			binary.LittleEndian.PutUint64(img[8:], h)
			binary.LittleEndian.PutUint64(img[16:], uint64(pos))
			binary.LittleEndian.PutUint64(img[24:], uint64(rlen))
		}
		heapCap := minHeap
		if int64(len(heapImg)) > heapCap {
			heapCap = int64(len(heapImg))
		}
		ix.seq++
		idxName := fmt.Sprintf("kvidx%d-%d-g%d-%d", srv.store.id, srv.node, srv.gen, ix.seq)
		heapName := fmt.Sprintf("kvheap%d-%d-g%d-%d", srv.store.id, srv.node, srv.gen, ix.seq)
		binary.LittleEndian.PutUint64(idxImg[0:], ix.seq<<1)
		binary.LittleEndian.PutUint64(idxImg[8:], uint64(nb))
		binary.LittleEndian.PutUint64(idxImg[16:], slotsPerBucket)
		// The index is CAS-validated by readers, so its default map
		// permission must include write; the heap is read-only.
		lh, err := c.Malloc(p, int64(len(idxImg)), idxName, lite.PermRead|lite.PermWrite)
		if err != nil {
			ix.seq--
			return err
		}
		heapLH, err := c.Malloc(p, heapCap, heapName, lite.PermRead)
		if err != nil {
			_ = c.Free(p, lh)
			ix.seq--
			return err
		}
		if err := c.Write(p, lh, 0, idxImg); err != nil {
			return err
		}
		if len(heapImg) > 0 {
			if err := c.Write(p, heapLH, 0, heapImg); err != nil {
				return err
			}
		}
		vers := make([]uint64, nb*slotsPerBucket)
		for _, e := range slots {
			vers[e.slot] = 2
		}
		ix.inited = true
		ix.lh, ix.heapLH = lh, heapLH
		ix.idxName, ix.heapName = idxName, heapName
		ix.nb, ix.heapCap, ix.heapOff = nb, heapCap, int64(len(heapImg))
		ix.slots, ix.occ, ix.vers = slots, occ, vers
		return nil
	}
}

// idxPoison invalidates the current generation for every in-flight
// reader: fence odd, then every slot version odd (0xff bytes), then
// the LMRs are freed. Callers must hold the index lock (or have the
// server quiesced).
func (srv *server) idxPoison(p *simtime.Proc, c *lite.Client) {
	ix := srv.idx
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], ix.fence()|1)
	_ = c.Write(p, ix.lh, 0, b[:])
	_ = c.Memset(p, ix.lh, idxHdr, 0xff, ix.nb*bucketBytes)
	_ = c.Free(p, ix.lh)
	_ = c.Free(p, ix.heapLH)
	ix.inited = false
}

// idxResize rebuilds the index into a fresh generation with at least
// minNB buckets and minHeap heap bytes, invalidating the old one.
// Lock held by caller. The two announcements bracket the window a
// chaos harness crashes into.
func (srv *server) idxResize(p *simtime.Proc, c *lite.Client, minNB, minHeap int64) error {
	ix := srv.idx
	// Fence first: readers racing the rebuild fail validation from the
	// first instant state becomes inconsistent.
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], ix.fence()|1)
	if err := c.Write(p, ix.lh, 0, b[:]); err != nil {
		return err
	}
	srv.store.cls.Announce(p, "kvstore.resize.fence")
	keys := make([]string, 0, len(ix.slots))
	for k := range ix.slots {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	recs := make([]liveRec, 0, len(keys))
	for _, k := range keys {
		e := ix.slots[k]
		rec := make([]byte, e.rlen)
		if err := c.Read(p, ix.heapLH, e.pos, rec); err != nil {
			return err
		}
		kl := int(binary.LittleEndian.Uint16(rec))
		recs = append(recs, liveRec{key: k, val: rec[2+kl:]})
	}
	_ = c.Memset(p, ix.lh, idxHdr, 0xff, ix.nb*bucketBytes)
	oldIdx, oldHeap := ix.lh, ix.heapLH
	if err := srv.idxBuild(p, c, recs, minNB, minHeap); err != nil {
		return err
	}
	srv.store.cls.Announce(p, "kvstore.resize.publish")
	_ = c.Free(p, oldIdx)
	_ = c.Free(p, oldHeap)
	return nil
}

// idxEnsure builds the initial (empty) generation on first use. Lock
// held by caller.
func (srv *server) idxEnsure(p *simtime.Proc, c *lite.Client) error {
	if srv.idx.inited {
		return nil
	}
	return srv.idxBuild(p, c, nil, initialBuckets, initialHeap)
}

// idxPut publishes key=value into the one-sided index: seqlock odd
// version, write-once heap append, then the committing 32-byte slot
// write.
func (srv *server) idxPut(p *simtime.Proc, c *lite.Client, key string, value []byte) {
	ix := srv.idx
	ix.lock(p)
	defer ix.unlock(p)
	if err := srv.idxEnsure(p, c); err != nil {
		return
	}
	h := hashKey64(key)
	rlen := int64(2 + len(key) + len(value))
	var slot int64
	for {
		if ix.heapOff+rlen > ix.heapCap {
			if srv.idxResize(p, c, ix.nb, ix.heapCap*2+rlen) != nil {
				return
			}
			continue
		}
		if e := ix.slots[key]; e != nil {
			slot = e.slot
			break
		}
		if slot = ix.findFree(h); slot >= 0 {
			break
		}
		if srv.idxResize(p, c, ix.nb*2, ix.heapCap) != nil {
			return
		}
	}
	var b [8]byte
	vOdd := ix.vers[slot] + 1
	binary.LittleEndian.PutUint64(b[:], vOdd)
	if c.Write(p, ix.lh, slotOff(slot), b[:]) != nil {
		return
	}
	rec := make([]byte, rlen)
	binary.LittleEndian.PutUint16(rec, uint16(len(key)))
	copy(rec[2:], key)
	copy(rec[2+len(key):], value)
	pos := ix.heapOff
	if c.Write(p, ix.heapLH, pos, rec) != nil {
		return
	}
	ix.heapOff += rlen
	var img [slotBytes]byte
	binary.LittleEndian.PutUint64(img[0:], vOdd+1)
	binary.LittleEndian.PutUint64(img[8:], h)
	binary.LittleEndian.PutUint64(img[16:], uint64(pos))
	binary.LittleEndian.PutUint64(img[24:], uint64(rlen))
	if c.Write(p, ix.lh, slotOff(slot), img[:]) != nil {
		return
	}
	ix.vers[slot] = vOdd + 1
	ix.occ[slot] = key
	ix.slots[key] = &idxEntry{slot: slot, tag: h, pos: pos, rlen: rlen}
}

// idxDelete unpublishes key (record length zero marks a free slot; the
// version keeps counting so readers of the old slot fail validation).
func (srv *server) idxDelete(p *simtime.Proc, c *lite.Client, key string) {
	ix := srv.idx
	ix.lock(p)
	defer ix.unlock(p)
	if !ix.inited {
		return
	}
	e := ix.slots[key]
	if e == nil {
		return
	}
	var b [8]byte
	vOdd := ix.vers[e.slot] + 1
	binary.LittleEndian.PutUint64(b[:], vOdd)
	if c.Write(p, ix.lh, slotOff(e.slot), b[:]) != nil {
		return
	}
	var img [slotBytes]byte
	binary.LittleEndian.PutUint64(img[0:], vOdd+1)
	if c.Write(p, ix.lh, slotOff(e.slot), img[:]) != nil {
		return
	}
	ix.vers[e.slot] = vOdd + 1
	ix.occ[e.slot] = ""
	delete(ix.slots, key)
}

// idxAdopt republishes an adopted shard into this server's index so
// one-sided GETs keep working after a migration: values are read back
// from the (already LT_moved) value LMRs. Keys are walked sorted for
// run-to-run determinism.
func (srv *server) idxAdopt(p *simtime.Proc, c *lite.Client) error {
	keys := make([]string, 0, len(srv.index))
	for k := range srv.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		e := srv.index[key]
		buf := make([]byte, e.size)
		if err := c.Read(p, e.lh, 0, buf); err != nil {
			return err
		}
		srv.idxPut(p, c, key, buf[valueHdr:])
	}
	return nil
}

// ---- client side ----

// attachInfo is a client's cached view of one server's published index
// generation.
type attachInfo struct {
	idx   lite.LH
	heap  lite.LH
	gen   uint64
	nb    int64
	fence uint64
}

// attachTo resolves (one RPC, amortized over every subsequent GET) and
// maps a server's index generation.
func (k *Client) attachTo(p *simtime.Proc, node int) (*attachInfo, error) {
	if a := k.att[node]; a != nil {
		return a, nil
	}
	req, _ := json.Marshal(request{Op: "attach"})
	out, err := k.metaRPC(p, node, req)
	if err != nil {
		return nil, err
	}
	var resp response
	if json.Unmarshal(out, &resp) != nil || !resp.OK || resp.IndexName == "" {
		return nil, errNoIdx
	}
	idx, err := k.c.Map(p, resp.IndexName)
	if err != nil {
		return nil, errStale
	}
	heap, err := k.c.Map(p, resp.HeapName)
	if err != nil {
		_ = k.c.Unmap(p, idx)
		return nil, errStale
	}
	a := &attachInfo{idx: idx, heap: heap, gen: resp.Gen, nb: resp.NBuckets, fence: resp.Gen << 1}
	if k.att == nil {
		k.att = make(map[int]*attachInfo)
	}
	k.att[node] = a
	k.Attaches++
	return a, nil
}

// detach drops a stale attachment (the generation it maps was freed).
func (k *Client) detach(p *simtime.Proc, node int) {
	if a := k.att[node]; a != nil {
		_ = k.c.Unmap(p, a.idx)
		_ = k.c.Unmap(p, a.heap)
		delete(k.att, node)
	}
}

// tryDirect runs one round of the client-traversed GET protocol
// against an attachment. It returns the value, ErrNotFound (linearized
// at the bucket read, validated through the fence), errTorn (retry) or
// errStale (re-attach).
func (k *Client) tryDirect(p *simtime.Proc, a *attachInfo, key string) ([]byte, error) {
	h := hashKey64(key)
	b1, b2 := buckets(h, a.nb)
	bs := []int64{b1, b2}
	if b2 == b1 {
		bs = bs[:1]
	}
	sawOdd := false
	for _, b := range bs {
		var bb [bucketBytes]byte
		if err := k.c.Read(p, a.idx, idxHdr+b*bucketBytes, bb[:]); err != nil {
			return nil, errStale
		}
		for s := int64(0); s < slotsPerBucket; s++ {
			w := bb[s*slotBytes:]
			ver := binary.LittleEndian.Uint64(w[0:])
			tag := binary.LittleEndian.Uint64(w[8:])
			pos := int64(binary.LittleEndian.Uint64(w[16:]))
			rlen := int64(binary.LittleEndian.Uint64(w[24:]))
			if ver&1 == 1 {
				sawOdd = true
				continue
			}
			if rlen == 0 || tag != h {
				continue
			}
			rec := make([]byte, rlen)
			if err := k.c.Read(p, a.heap, pos, rec); err != nil {
				return nil, errStale
			}
			klen := int(binary.LittleEndian.Uint16(rec))
			if 2+klen > len(rec) || string(rec[2:2+klen]) != key {
				continue
			}
			// Seqlock validation: a no-op masked CAS (swap mask zero)
			// proves the slot is still at the version we read.
			old, err := k.c.CompareSwapMasked(p, a.idx, idxHdr+b*bucketBytes+s*slotBytes, ver, 0, ^uint64(0), 0)
			if err != nil {
				return nil, errStale
			}
			if old != ver {
				return nil, errTorn
			}
			return rec[2+klen:], nil
		}
	}
	if sawOdd {
		return nil, errTorn
	}
	// Miss: CAS-validate the fence so "not found" is known to come
	// from a generation that was live and stable at the bucket read.
	old, err := k.c.CompareSwapMasked(p, a.idx, 0, a.fence, 0, ^uint64(0), 0)
	if err != nil {
		return nil, errStale
	}
	if old != a.fence {
		return nil, errStale
	}
	return nil, ErrNotFound
}

// GetDirect fetches key's value with the client-traversed one-sided
// protocol: bucket read, record read, CAS validation — zero server CPU
// and zero admission cost on the stable path. Torn reads retry;
// persistent conflict, a resize/migration fence, or a server that
// publishes no index falls back to the RPC path.
func (k *Client) GetDirect(p *simtime.Proc, key string) ([]byte, error) {
	full := k.prefix + key
	if k.prefix != "" {
		// Tenant keys are not indexed (the index is kernel-public).
		return k.getValRPC(p, full)
	}
	k.refreshEpoch()
	const maxTries = 6
	for i := 0; i < maxTries; i++ {
		node := k.serverFor(full)
		a, err := k.attachTo(p, node)
		if err != nil {
			break
		}
		v, err := k.tryDirect(p, a, full)
		switch {
		case err == nil:
			k.DirectGets++
			return v, nil
		case errors.Is(err, ErrNotFound):
			k.DirectGets++
			return nil, ErrNotFound
		case errors.Is(err, errTorn):
			k.DirectRetries++
		case errors.Is(err, errStale):
			k.DirectRetries++
			k.detach(p, node)
		default:
			i = maxTries
		}
	}
	k.DirectFallbacks++
	return k.getValRPC(p, full)
}

// GetRPC fetches key's value entirely over the metadata RPC path (the
// server reads the value and ships it in the reply) — the baseline the
// crossover experiment compares GetDirect against.
func (k *Client) GetRPC(p *simtime.Proc, key string) ([]byte, error) {
	return k.getValRPC(p, k.prefix+key)
}

func (k *Client) getValRPC(p *simtime.Proc, full string) ([]byte, error) {
	req, _ := json.Marshal(request{Op: "get", Key: full})
	out, err := k.metaRPCN(p, k.serverFor(full), req, 8192)
	if err != nil {
		return nil, err
	}
	var resp response
	if json.Unmarshal(out, &resp) != nil || !resp.OK {
		return nil, ErrNotFound
	}
	return resp.Value, nil
}

// refreshEpoch drops per-epoch caches (value handles and index
// attachments) when the membership epoch moves: a death or rejoin can
// re-home keys.
func (k *Client) refreshEpoch() {
	if e := k.c.MembershipEpoch(); e != k.cacheEpoch {
		k.cache = make(map[string]*cachedHandle)
		k.att = make(map[int]*attachInfo)
		k.cacheEpoch = e
	}
}
