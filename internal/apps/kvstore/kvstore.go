// Package kvstore implements a distributed key-value store on LITE in
// the style of the RDMA key-value systems the paper motivates and
// compares against (Pilaf, HERD, FaRM's hash table): values live in
// LITE memory and are fetched with one-sided LT_reads — no server CPU
// on the get path — while puts and index lookups go through LT_RPC.
//
// Keys are hash-partitioned across server nodes. Each server keeps an
// in-memory index from key to (LMR name, length, version); clients
// resolve a key once through the metadata path, cache the mapped
// handle, and then read the value directly. A version check detects
// stale handles after overwrites, falling back to re-resolution — the
// standard optimistic one-sided-read protocol.
//
// Under native RDMA this design is exactly the one §2.4 shows failing
// to scale: one memory region per value overwhelms NIC SRAM. Under
// LITE, per-value LMRs are free because the NIC holds one global
// physical registration.
package kvstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/simtime"
)

// kvFn is the RPC function id for the metadata path.
const kvFn = lite.FirstUserFunc + 12

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("kvstore: key not found")

// valueHdr prefixes every value LMR: [8B version]. A get reads header
// and payload in one LT_read and validates the version.
const valueHdr = 8

type request struct {
	Op    string // "put", "lookup", "delete"
	Key   string
	Value []byte `json:",omitempty"`
}

type response struct {
	OK      bool
	Name    string
	Len     int64
	Version uint64
	// One-sided read-path fields ("get" and "attach" replies only;
	// omitempty keeps every pre-existing reply byte-identical).
	Value     []byte `json:",omitempty"`
	IndexName string `json:",omitempty"`
	HeapName  string `json:",omitempty"`
	Gen       uint64 `json:",omitempty"`
	NBuckets  int64  `json:",omitempty"`
}

// Store is a deployed key-value store.
type Store struct {
	cls     *cluster.Cluster
	dep     *lite.Deployment
	servers []int
	id      int
	threads int
	// fn is the RPC function id this store's metadata path speaks —
	// kvFn for Start, caller-chosen for StartFn (several independent
	// single-server stores can then coexist as shards of a larger
	// keyspace without colliding on one function id).
	fn int
	// isServer marks the nodes currently serving a shard (it changes
	// when DrainShard re-homes one); srvs holds their live server
	// structs so a migration can reach the source's index.
	isServer map[int]bool
	srvs     map[int]*server
	gen      int
	// onesided stores additionally publish a client-traversed index
	// (see onesided.go); off by default so existing deployments are
	// bit-identical.
	onesided bool
}

// Start deploys the store's metadata servers on the given nodes. Each
// server node runs `threads` RPC server threads. A server node that
// crashes and restarts comes back with an empty index — its values
// died with it — and its serving threads are re-armed automatically.
func Start(cls *cluster.Cluster, dep *lite.Deployment, servers []int, threads int) (*Store, error) {
	return StartFn(cls, dep, servers, threads, kvFn)
}

// StartOneSided is Start for a store that additionally publishes the
// client-traversed one-sided index: GETs issued through
// Client.GetDirect resolve with zero server CPU (see onesided.go).
func StartOneSided(cls *cluster.Cluster, dep *lite.Deployment, servers []int, threads int) (*Store, error) {
	s, err := StartFn(cls, dep, servers, threads, kvFn)
	if err != nil {
		return nil, err
	}
	s.onesided = true
	return s, nil
}

// StartFn is Start with a caller-chosen RPC function id in
// [lite.FirstUserFunc, lite.MaxFunc). Rebalancing harnesses use it to
// deploy one store per shard, each on its own function id, so shards
// route and migrate independently.
func StartFn(cls *cluster.Cluster, dep *lite.Deployment, servers []int, threads, fn int) (*Store, error) {
	// The store id feeds LMR names, which ride in Malloc control
	// messages and Put replies — it must come from deployment-scoped
	// state, or two seed-identical runs mint different-width ids and
	// their message timings drift (see Deployment.NextAppSeq).
	s := &Store{
		cls: cls, dep: dep, servers: servers, id: int(dep.NextAppSeq()),
		threads: threads, fn: fn,
		isServer: make(map[int]bool, len(servers)),
		srvs:     make(map[int]*server, len(servers)),
	}
	for _, node := range servers {
		s.isServer[node] = true
		if err := dep.Instance(node).RegisterRPC(s.fn); err != nil {
			return nil, err
		}
		s.spawn(node)
	}
	cls.OnNodeUp(func(p *simtime.Proc, node int) {
		if s.isServer[node] {
			s.spawn(node)
		}
	})
	return s, nil
}

// spawn stands up a fresh (empty-index) server incarnation on node and
// arms its RPC threads.
func (s *Store) spawn(node int) {
	// Each incarnation gets its own generation number so the value
	// LMR names it allocates never collide with names its previous
	// life left behind in the manager directory.
	s.gen++
	srv := &server{store: s, node: node, gen: s.gen, index: make(map[string]*entry), idx: &idxState{}}
	s.srvs[node] = srv
	s.armThreads(srv)
}

// armThreads starts the RPC serving threads for one server struct.
func (s *Store) armThreads(srv *server) {
	for th := 0; th < s.threads; th++ {
		s.cls.GoDaemonOn(srv.node, "kv-server", func(p *simtime.Proc) { srv.loop(p) })
	}
}

// hashKey is FNV-1a over the key, the partitioning hash.
func hashKey(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

// serverFor returns the home server of a key (hash partitioning).
func (s *Store) serverFor(key string) int {
	return s.servers[int(hashKey(key))%len(s.servers)]
}

// entry is one key's server-side metadata.
type entry struct {
	name    string
	lh      lite.LH
	size    int64
	version uint64
}

// server owns one node's index shard.
type server struct {
	store *Store
	node  int
	gen   int
	index map[string]*entry
	seq   int
	// served counts metadata-path requests handled by this incarnation;
	// load-driven rebalancers read it through Store.ServedOps.
	served int64
	// tcs caches per-tenant clients so a tenant's value LMRs are
	// allocated in that tenant's namespace (another tenant cannot map
	// or read them, even knowing the LMR name).
	tcs map[uint16]*lite.Client
	// idx is the published one-sided index (LMRs allocated lazily, and
	// only when the store is one-sided).
	idx *idxState
}

// tenantPrefix is the key-namespace prefix a tenant's requests must
// carry; the server derives the required prefix from the transport's
// tenant label, so a tenant cannot route into another tenant's keys by
// forging request bodies.
func tenantPrefix(ten uint16) string { return fmt.Sprintf("t%d/", ten) }

// allocClient returns the client value LMRs are allocated with: the
// calling tenant's client, so the LMR lands in its namespace. Kernel
// callers (tenant 0) keep the untenanted kernel client.
func (srv *server) allocClient(c *lite.Client, ten uint16) *lite.Client {
	if ten == 0 {
		return c
	}
	if srv.tcs == nil {
		srv.tcs = make(map[uint16]*lite.Client)
	}
	tc := srv.tcs[ten]
	if tc == nil {
		tc = srv.store.dep.Instance(srv.node).TenantClient(ten)
		srv.tcs[ten] = tc
	}
	return tc
}

func (srv *server) loop(p *simtime.Proc) {
	c := srv.store.dep.Instance(srv.node).KernelClient()
	call, err := c.RecvRPC(p, srv.store.fn)
	for err == nil {
		out := srv.handle(p, c, call)
		call, err = c.ReplyRecvRPC(p, call, out, srv.store.fn)
	}
}

func (srv *server) handle(p *simtime.Proc, c *lite.Client, call *lite.Call) []byte {
	srv.served++
	var req request
	var resp response
	if json.Unmarshal(call.Input, &req) == nil {
		// Tenant calls only reach their own key namespace: the required
		// prefix comes from the transport's tenant label, not the
		// request body, so it cannot be forged.
		if ten := call.Tenant; ten != 0 && !strings.HasPrefix(req.Key, tenantPrefix(ten)) {
			req.Op = "denied"
		}
		switch req.Op {
		case "put":
			resp = srv.put(p, srv.allocClient(c, call.Tenant), req.Key, req.Value)
			// Tenant keys are never published to the kernel-public
			// one-sided index (see onesided.go).
			if resp.OK && srv.store.onesided && call.Tenant == 0 {
				srv.idxPut(p, c, req.Key, req.Value)
			}
		case "lookup":
			if e, ok := srv.index[req.Key]; ok {
				resp = response{OK: true, Name: e.name, Len: e.size, Version: e.version}
			}
		case "get":
			// RPC-path value fetch: the server reads the value itself and
			// ships it in the reply — the baseline GetDirect competes with.
			if e, ok := srv.index[req.Key]; ok {
				buf := make([]byte, e.size)
				if c.Read(p, e.lh, 0, buf) == nil {
					resp = response{OK: true, Len: e.size, Version: e.version, Value: buf[valueHdr:]}
				}
			}
		case "attach":
			if srv.store.onesided {
				srv.idx.lock(p)
				err := srv.idxEnsure(p, c)
				ix := srv.idx
				if err == nil {
					resp = response{OK: true, IndexName: ix.idxName, HeapName: ix.heapName, Gen: ix.seq, NBuckets: ix.nb}
				}
				srv.idx.unlock(p)
			}
		case "delete":
			if e, ok := srv.index[req.Key]; ok {
				delete(srv.index, req.Key)
				_ = c.Free(p, e.lh)
				resp.OK = true
				if srv.store.onesided && call.Tenant == 0 {
					srv.idxDelete(p, c, req.Key)
				}
			}
		}
	}
	out, _ := json.Marshal(resp)
	return out
}

// put stores a value. Same-size overwrites update in place and bump
// the version; size changes allocate a fresh LMR (old readers' cached
// handles fail their version check and re-resolve).
func (srv *server) put(p *simtime.Proc, c *lite.Client, key string, value []byte) response {
	total := valueHdr + int64(len(value))
	e, ok := srv.index[key]
	if !ok || e.size != total {
		srv.seq++
		name := fmt.Sprintf("kv%d-%d-g%d-%d", srv.store.id, srv.node, srv.gen, srv.seq)
		lh, err := c.Malloc(p, total, name, lite.PermRead)
		if err != nil {
			return response{}
		}
		var old *entry
		if ok {
			old = e
		}
		e = &entry{name: name, lh: lh, size: total}
		srv.index[key] = e
		if old != nil {
			// Old LMR freed after the new one is published; stale
			// handles are invalidated cluster-wide by LT_free.
			_ = c.Free(p, old.lh)
		}
	}
	e.version++
	buf := make([]byte, total)
	binary.LittleEndian.PutUint64(buf, e.version)
	copy(buf[valueHdr:], value)
	if err := c.Write(p, e.lh, 0, buf); err != nil {
		return response{}
	}
	return response{OK: true, Name: e.name, Len: e.size, Version: e.version}
}

// Client is one process's handle on the store.
type Client struct {
	store *Store
	c     *lite.Client
	// prefix is the tenant key-namespace prefix ("t<id>/", empty for
	// kernel clients); it participates in routing and the index, so a
	// tenant's keys hash and migrate like any other keys.
	prefix string
	// cache maps keys to mapped value handles for the one-sided path.
	// It is valid only for one membership epoch: a node death or
	// rejoin can re-home keys, so a cached handle from an older epoch
	// might read a value the key no longer routes to.
	cache      map[string]*cachedHandle
	cacheEpoch uint64
	// att caches per-server index attachments for the client-traversed
	// GetDirect path; like cache it is valid for one membership epoch.
	att map[int]*attachInfo
	// Stats.
	OneSidedGets int64
	MetaLookups  int64
	Overloads    int64
	Resubmits    int64
	// Client-traversed path stats.
	DirectGets      int64 // GETs resolved without any server CPU
	DirectRetries   int64 // torn reads / stale attachments retried
	DirectFallbacks int64 // GETs that fell back to the RPC path
	Attaches        int64 // index attach round trips
}

type cachedHandle struct {
	lh      lite.LH
	size    int64
	version uint64
}

// NewClient returns a client bound to one node.
func (s *Store) NewClient(node int) *Client {
	return &Client{store: s, c: s.dep.Instance(node).KernelClient(), cache: make(map[string]*cachedHandle)}
}

// NewTenantClient returns a client bound to one node that issues every
// operation as the given tenant: keys live under the tenant's own
// namespace, values are allocated as tenant-owned LMRs, and the
// one-sided get path is subject to the lite layer's tenant checks.
func (s *Store) NewTenantClient(node int, ten uint16) *Client {
	k := s.NewClient(node)
	if ten != 0 {
		k.c = s.dep.Instance(node).TenantClient(ten)
		k.prefix = tenantPrefix(ten)
	}
	return k
}

// serverFor routes a key from this client's view of the membership: a
// key whose home server is currently declared dead is deterministically
// remapped onto the surviving servers (the data it held is lost — the
// application re-puts on ErrNotFound). If every server looks dead the
// home mapping is kept, so the error surfaces as ErrNodeDead rather
// than a panic.
func (k *Client) serverFor(key string) int {
	h := hashKey(key)
	home := k.store.servers[int(h)%len(k.store.servers)]
	if !k.c.NodeDead(home) {
		return home
	}
	var live []int
	for _, s := range k.store.servers {
		if !k.c.NodeDead(s) {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return home
	}
	return live[int(h)%len(live)]
}

// metaRPC sends one metadata-path request through the bounded retry
// layer, so a flapping link is retried and a dead server fails fast.
// An overloaded server is visible to callers as lite.ErrOverloaded —
// a definitive "not executed" the application may back off on and
// resubmit, unlike a timeout whose call may still be in flight.
//
// A retry that crossed a server restart comes back ErrMaybeExecuted:
// the call may or may not have run, and the transport cannot say
// which. Every kvstore metadata op (put, get-meta, delete) is
// idempotent — re-running one lands the store in the same state — so
// the ambiguity is safe to resolve by resubmitting once against the
// restarted server. A second ambiguous answer is surfaced: something
// is wrong beyond a single unlucky restart.
func (k *Client) metaRPC(p *simtime.Proc, dst int, req []byte) ([]byte, error) {
	return k.metaRPCN(p, dst, req, 512)
}

// metaRPCN is metaRPC with a caller-chosen reply budget (the "get" op
// ships whole values back, which don't fit the 512-byte metadata cap).
func (k *Client) metaRPCN(p *simtime.Proc, dst int, req []byte, maxReply int64) ([]byte, error) {
	out, err := k.c.RPCRetry(p, dst, k.store.fn, req, maxReply)
	if errors.Is(err, lite.ErrMaybeExecuted) {
		k.Resubmits++
		out, err = k.c.RPCRetry(p, dst, k.store.fn, req, 512)
	}
	if errors.Is(err, lite.ErrOverloaded) {
		k.Overloads++
	}
	return out, err
}

// Put stores value under key via the metadata path.
func (k *Client) Put(p *simtime.Proc, key string, value []byte) error {
	key = k.prefix + key
	req, _ := json.Marshal(request{Op: "put", Key: key, Value: value})
	out, err := k.metaRPC(p, k.serverFor(key), req)
	if err != nil {
		return err
	}
	var resp response
	if err := json.Unmarshal(out, &resp); err != nil || !resp.OK {
		return fmt.Errorf("kvstore: put %q failed", key)
	}
	// Our own cached handle may now be stale.
	delete(k.cache, key)
	return nil
}

// PutOnce stores value under key with a single unretried RPC. Open-loop
// load harnesses use it so overload sheds and timeouts surface to the
// caller (errors.Is lite.ErrOverloaded / lite.ErrTimeout) instead of
// dissolving into retries.
func (k *Client) PutOnce(p *simtime.Proc, key string, value []byte) error {
	key = k.prefix + key
	req, _ := json.Marshal(request{Op: "put", Key: key, Value: value})
	out, err := k.c.RPC(p, k.serverFor(key), k.store.fn, req, 512)
	if err != nil {
		return err
	}
	var resp response
	if err := json.Unmarshal(out, &resp); err != nil || !resp.OK {
		return fmt.Errorf("kvstore: put %q failed", key)
	}
	delete(k.cache, key)
	return nil
}

// LookupOnce resolves key's metadata with a single unretried RPC and
// reports whether it exists, without mapping the value. The raw
// metadata-path counterpart of PutOnce for load harnesses.
func (k *Client) LookupOnce(p *simtime.Proc, key string) error {
	key = k.prefix + key
	req, _ := json.Marshal(request{Op: "lookup", Key: key})
	out, err := k.c.RPC(p, k.serverFor(key), k.store.fn, req, 512)
	if err != nil {
		return err
	}
	var resp response
	if err := json.Unmarshal(out, &resp); err != nil || !resp.OK {
		return ErrNotFound
	}
	return nil
}

// ResolveName returns the LMR name currently backing key, without
// mapping it. Isolation probes use it (through a kernel client) to
// learn a victim tenant's LMR name and prove that mapping it as
// another tenant is denied.
func (k *Client) ResolveName(p *simtime.Proc, key string) (string, error) {
	key = k.prefix + key
	req, _ := json.Marshal(request{Op: "lookup", Key: key})
	out, err := k.metaRPC(p, k.serverFor(key), req)
	if err != nil {
		return "", err
	}
	var resp response
	if err := json.Unmarshal(out, &resp); err != nil || !resp.OK {
		return "", ErrNotFound
	}
	return resp.Name, nil
}

// Get fetches the value for key. The hot path is one one-sided
// LT_read against the cached handle; version mismatches and revoked
// handles fall back to the metadata path.
func (k *Client) Get(p *simtime.Proc, key string) ([]byte, error) {
	key = k.prefix + key
	k.refreshEpoch()
	for attempt := 0; attempt < 3; attempt++ {
		ch, ok := k.cache[key]
		if !ok {
			var err error
			ch, err = k.resolve(p, key)
			if err != nil {
				return nil, err
			}
		}
		buf := make([]byte, ch.size)
		if err := k.c.Read(p, ch.lh, 0, buf); err != nil {
			// Handle revoked (value freed and reallocated): re-resolve.
			delete(k.cache, key)
			continue
		}
		k.OneSidedGets++
		ver := binary.LittleEndian.Uint64(buf)
		if ver < ch.version {
			// Torn historical read; retry.
			delete(k.cache, key)
			continue
		}
		return buf[valueHdr:], nil
	}
	return nil, fmt.Errorf("kvstore: get %q kept racing updates", key)
}

// resolve performs the metadata path: an RPC lookup plus LT_map.
func (k *Client) resolve(p *simtime.Proc, key string) (*cachedHandle, error) {
	k.MetaLookups++
	req, _ := json.Marshal(request{Op: "lookup", Key: key})
	out, err := k.metaRPC(p, k.serverFor(key), req)
	if err != nil {
		return nil, err
	}
	var resp response
	if err := json.Unmarshal(out, &resp); err != nil || !resp.OK {
		return nil, ErrNotFound
	}
	lh, err := k.c.Map(p, resp.Name)
	if err != nil {
		return nil, ErrNotFound
	}
	ch := &cachedHandle{lh: lh, size: resp.Len, version: resp.Version}
	k.cache[key] = ch
	return ch, nil
}

// Delete removes a key.
func (k *Client) Delete(p *simtime.Proc, key string) error {
	key = k.prefix + key
	req, _ := json.Marshal(request{Op: "delete", Key: key})
	out, err := k.metaRPC(p, k.serverFor(key), req)
	if err != nil {
		return err
	}
	var resp response
	if err := json.Unmarshal(out, &resp); err != nil || !resp.OK {
		return ErrNotFound
	}
	delete(k.cache, key)
	return nil
}
