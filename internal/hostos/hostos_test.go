package hostos

import (
	"testing"
	"time"

	"lite/internal/params"
	"lite/internal/simtime"
)

func TestSyscallChargesCrossings(t *testing.T) {
	cfg := params.Default()
	os := New(&cfg)
	env := simtime.NewEnv()
	acct := &simtime.CPUAccount{}
	env.Go("p", func(p *simtime.Proc) {
		p.SetCPUAccount(acct)
		ran := false
		os.Syscall(p, func() { ran = true })
		if !ran {
			t.Error("syscall body did not run")
		}
		want := 2*cfg.SyscallCrossing + cfg.KernelDispatch
		if p.Now() != want {
			t.Errorf("elapsed = %v, want %v", p.Now(), want)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if acct.Busy() != 2*cfg.SyscallCrossing+cfg.KernelDispatch {
		t.Fatalf("cpu = %v", acct.Busy())
	}
}

func TestAdaptiveWaitBusyPhase(t *testing.T) {
	// Completion arrives inside the poll window: the whole wait is
	// busy-polled (charged) and no wakeup latency is paid.
	cfg := params.Default()
	os := New(&cfg)
	env := simtime.NewEnv()
	acct := &simtime.CPUAccount{}
	page := &CompletionPage{}
	arrival := cfg.AdaptivePollWindow / 2
	env.After(arrival, func(e *simtime.Env) { page.Complete(e) })
	env.Go("waiter", func(p *simtime.Proc) {
		p.SetCPUAccount(acct)
		waited := os.AdaptiveWait(p, page)
		if waited != arrival {
			t.Errorf("waited = %v, want %v", waited, arrival)
		}
		if p.Now() != arrival {
			t.Errorf("now = %v, want %v (no wakeup latency in busy phase)", p.Now(), arrival)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if acct.Busy() != arrival {
		t.Fatalf("cpu = %v, want %v (busy phase fully charged)", acct.Busy(), arrival)
	}
}

func TestAdaptiveWaitSleepPhase(t *testing.T) {
	// Completion arrives long after the window: only the window is
	// charged, the sleep is free, and one wakeup latency is paid.
	cfg := params.Default()
	os := New(&cfg)
	env := simtime.NewEnv()
	acct := &simtime.CPUAccount{}
	page := &CompletionPage{}
	arrival := 200 * time.Microsecond
	env.After(arrival, func(e *simtime.Env) { page.Complete(e) })
	env.Go("waiter", func(p *simtime.Proc) {
		p.SetCPUAccount(acct)
		os.AdaptiveWait(p, page)
		if p.Now() != arrival+cfg.WakeupLatency {
			t.Errorf("now = %v, want %v", p.Now(), arrival+cfg.WakeupLatency)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := cfg.AdaptivePollWindow + cfg.WakeupLatency
	if acct.Busy() != want {
		t.Fatalf("cpu = %v, want %v (only window + wakeup charged)", acct.Busy(), want)
	}
}

func TestAdaptiveWaitAlreadyReady(t *testing.T) {
	cfg := params.Default()
	os := New(&cfg)
	env := simtime.NewEnv()
	page := &CompletionPage{}
	env.Go("p", func(p *simtime.Proc) {
		page.Complete(p.Env())
		if d := os.AdaptiveWait(p, page); d != 0 {
			t.Errorf("waited %v on ready page", d)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBusyWaitChargesEverything(t *testing.T) {
	cfg := params.Default()
	os := New(&cfg)
	env := simtime.NewEnv()
	acct := &simtime.CPUAccount{}
	page := &CompletionPage{}
	arrival := 50 * time.Microsecond
	env.After(arrival, func(e *simtime.Env) { page.Complete(e) })
	env.Go("spinner", func(p *simtime.Proc) {
		p.SetCPUAccount(acct)
		os.BusyWait(p, page)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if acct.Busy() != arrival {
		t.Fatalf("cpu = %v, want %v", acct.Busy(), arrival)
	}
}
