// Package hostos models the host operating-system boundary that LITE
// lives behind: user/kernel crossings with their fixed cost, in-kernel
// dispatch, and the shared-completion-page optimization of the paper's
// §5.2 (a system call returns to a user-level library immediately; the
// library busy-checks a page shared with the kernel for a short window
// and then sleeps, which is LITE's adaptive thread model).
package hostos

import (
	"lite/internal/obs"
	"lite/internal/params"
	"lite/internal/simtime"
)

// OS is one node's operating-system boundary.
type OS struct {
	cfg *params.Config
	reg *obs.Registry
}

// New returns an OS boundary with the given cost model.
func New(cfg *params.Config) *OS { return &OS{cfg: cfg} }

// SetObs directs the boundary's metrics ("hostos.syscalls",
// "hostos.kernel_enters", wait-behaviour counters) and crossing spans
// into the given registry. A nil registry disables collection.
func (o *OS) SetObs(reg *obs.Registry) { o.reg = reg }

// procSpan returns the process's active trace span, if any.
func procSpan(p *simtime.Proc) *obs.Span {
	s, _ := p.Trace().(*obs.Span)
	return s
}

// Syscall runs fn in kernel context, charging both the entry and exit
// crossings plus the kernel dispatch cost. Use it for calls whose
// result is returned synchronously through the normal syscall path.
func (o *OS) Syscall(p *simtime.Proc, fn func()) {
	o.reg.Add("hostos.syscalls", 1)
	parent := procSpan(p)
	t0 := p.Now()
	p.Work(o.cfg.SyscallCrossing + o.cfg.KernelDispatch)
	o.reg.AddSpan(t0, t0+o.cfg.SyscallCrossing, "hostos.crossing", parent)
	o.reg.AddSpan(t0+o.cfg.SyscallCrossing, p.Now(), "hostos.dispatch", parent)
	fn()
	t1 := p.Now()
	p.Work(o.cfg.SyscallCrossing)
	o.reg.AddSpan(t1, p.Now(), "hostos.crossing", parent)
}

// EnterKernel charges only the entry crossing and dispatch. Pair it
// with a CompletionPage when the result is delivered through shared
// memory instead of the syscall return path (LITE's optimized RPC
// path pays only the entry crossings of LT_RPC and LT_replyRPC).
func (o *OS) EnterKernel(p *simtime.Proc) {
	o.reg.Add("hostos.kernel_enters", 1)
	parent := procSpan(p)
	t0 := p.Now()
	p.Work(o.cfg.SyscallCrossing + o.cfg.KernelDispatch)
	o.reg.AddSpan(t0, t0+o.cfg.SyscallCrossing, "hostos.crossing", parent)
	o.reg.AddSpan(t0+o.cfg.SyscallCrossing, p.Now(), "hostos.dispatch", parent)
}

// CompletionPage is a one-shot completion flag on a page shared
// between the kernel and a user process. The kernel side calls
// Complete; the user side calls AdaptiveWait.
type CompletionPage struct {
	ready bool
	cond  simtime.Cond
}

// Complete marks the result ready and wakes the waiter. Callable from
// processes and scheduler callbacks.
func (c *CompletionPage) Complete(e *simtime.Env) {
	c.ready = true
	c.cond.Broadcast(e)
}

// Ready reports whether Complete has been called.
func (c *CompletionPage) Ready() bool { return c.ready }

// AdaptiveWait blocks until Complete has been called, using LITE's
// adaptive thread model: it busy-checks the shared page for the
// configured poll window (charging CPU), then sleeps (free) and pays
// one scheduler wakeup on completion. It returns the total time
// waited.
func (o *OS) AdaptiveWait(p *simtime.Proc, c *CompletionPage) simtime.Time {
	start := p.Now()
	if c.ready {
		o.reg.Add("hostos.wait.immediate", 1)
		return 0
	}
	// Busy phase: burn CPU up to the poll window.
	deadline := start + o.cfg.AdaptivePollWindow
	for !c.ready && p.Now() < deadline {
		t0 := p.Now()
		c.cond.WaitTimeout(p, deadline-p.Now())
		p.CPUAccount().Charge(p.Now() - t0)
	}
	if c.ready {
		o.reg.Add("hostos.wait.polled", 1)
		o.reg.Observe("hostos.adaptive_wait", p.Now()-start)
		return p.Now() - start
	}
	// Sleep phase: block without burning CPU, then pay the wakeup.
	for !c.ready {
		c.cond.Wait(p)
	}
	t0 := p.Now()
	p.Work(o.cfg.WakeupLatency)
	o.reg.Add("hostos.wait.slept", 1)
	o.reg.AddSpan(t0, p.Now(), "hostos.wakeup", procSpan(p))
	o.reg.Observe("hostos.adaptive_wait", p.Now()-start)
	return p.Now() - start
}

// BusyWait blocks until Complete has been called, busy-polling the
// whole time (all of it charged as CPU). It returns the time waited.
func (o *OS) BusyWait(p *simtime.Proc, c *CompletionPage) simtime.Time {
	start := p.Now()
	for !c.ready {
		t0 := p.Now()
		c.cond.Wait(p)
		p.CPUAccount().Charge(p.Now() - t0)
	}
	return p.Now() - start
}
