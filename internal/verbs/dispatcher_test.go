package verbs

import (
	"testing"
	"time"

	"lite/internal/rnic"
	"lite/internal/simtime"
)

func TestTryPollCQ(t *testing.T) {
	env, _, a, _ := newPair(t)
	env.Go("p", func(p *simtime.Proc) {
		cq := a.CreateCQ()
		if _, ok := a.TryPollCQ(p, cq); ok {
			t.Error("TryPoll on empty CQ succeeded")
		}
		cq.Push(p.Env(), rnic.CQE{WRID: 9})
		cqe, ok := a.TryPollCQ(p, cq)
		if !ok || cqe.WRID != 9 {
			t.Errorf("cqe = %+v ok = %v", cqe, ok)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPostRecvChargesDoorbell(t *testing.T) {
	env, cfg, a, _ := newPair(t)
	env.Go("p", func(p *simtime.Proc) {
		pa, _ := a.NIC().Mem().AllocContiguous(4096)
		mr, _ := a.RegisterPhysMR(p, pa, 4096, rnic.PermRead|rnic.PermWrite)
		qp := a.CreateQP(rnic.UD, a.CreateCQ(), a.CreateCQ())
		start := p.Now()
		if err := a.PostRecv(p, qp, rnic.PostedRecv{MR: mr, Len: 64, WRID: 1}); err != nil {
			t.Fatal(err)
		}
		if p.Now()-start != cfg.NICDoorbell {
			t.Errorf("post recv cost %v, want %v", p.Now()-start, cfg.NICDoorbell)
		}
		if qp.RecvPosted() != 1 {
			t.Errorf("posted = %d", qp.RecvPosted())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitQuietDoesNotChargeCPU(t *testing.T) {
	env, _, a, _ := newPair(t)
	acct := &simtime.CPUAccount{}
	cq := a.CreateCQ()
	disp := NewDispatcher(cq)
	env.After(20*time.Microsecond, func(e *simtime.Env) {
		cq.Push(e, rnic.CQE{WRID: 1})
	})
	env.Go("waiter", func(p *simtime.Proc) {
		p.SetCPUAccount(acct)
		cqe := disp.WaitQuiet(p, 1)
		if cqe.WRID != 1 {
			t.Errorf("cqe = %+v", cqe)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if acct.Busy() != 0 {
		t.Fatalf("WaitQuiet charged %v of CPU", acct.Busy())
	}
}

func TestWaitQuietStashesForeignCompletions(t *testing.T) {
	env, _, a, _ := newPair(t)
	cq := a.CreateCQ()
	disp := NewDispatcher(cq)
	got := make(map[uint64]bool)
	// Two quiet waiters; completions arrive in reverse order.
	for _, id := range []uint64{1, 2} {
		id := id
		env.Go("waiter", func(p *simtime.Proc) {
			p.SetCPUAccount(&simtime.CPUAccount{})
			cqe := disp.WaitQuiet(p, id)
			got[cqe.WRID] = true
		})
	}
	env.After(time.Microsecond, func(e *simtime.Env) {
		cq.Push(e, rnic.CQE{WRID: 2})
		cq.Push(e, rnic.CQE{WRID: 1})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !got[1] || !got[2] {
		t.Fatalf("got = %v", got)
	}
}
