package verbs

import (
	"testing"
	"time"

	"lite/internal/fabric"
	"lite/internal/hostmem"
	"lite/internal/params"
	"lite/internal/rnic"
	"lite/internal/simtime"
)

func newPair(t *testing.T) (*simtime.Env, *params.Config, *Context, *Context) {
	t.Helper()
	cfg := params.Default()
	env := simtime.NewEnv()
	reg := rnic.NewRegistry(env, &cfg, fabric.New(&cfg))
	var ctxs []*Context
	for i := 0; i < 2; i++ {
		mem := hostmem.New(1<<30, cfg.PageSize)
		nic, err := reg.NewNIC(i, mem)
		if err != nil {
			t.Fatal(err)
		}
		ctxs = append(ctxs, Open(nic, hostmem.NewAddressSpace(mem)))
	}
	return env, &cfg, ctxs[0], ctxs[1]
}

func TestRegisterMRChargesPinning(t *testing.T) {
	env, cfg, a, _ := newPair(t)
	env.Go("p", func(p *simtime.Proc) {
		va, err := a.AddressSpace().Map(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		start := p.Now()
		mr, err := a.RegisterMR(p, va, 1<<20, rnic.PermRead|rnic.PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		regTime := p.Now() - start
		pages := int64(1<<20) / cfg.PageSize
		want := cfg.MRRegisterBase + simtime.Time(pages)*cfg.PinPerPage
		if regTime != want {
			t.Errorf("register time = %v, want %v", regTime, want)
		}
		// Physical registration is O(1) regardless of size.
		pa, _ := a.NIC().Mem().AllocContiguous(64 << 20)
		start = p.Now()
		if _, err := a.RegisterPhysMR(p, pa, 64<<20, rnic.PermRead); err != nil {
			t.Fatal(err)
		}
		if physTime := p.Now() - start; physTime >= regTime {
			t.Errorf("phys registration (%v) should be far cheaper than pinned (%v)", physTime, regTime)
		}
		if err := a.DeregisterMR(p, mr); err != nil {
			t.Fatal(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockingWriteViaDispatcher(t *testing.T) {
	env, _, a, b := newPair(t)
	env.Go("p", func(p *simtime.Proc) {
		pa, _ := a.NIC().Mem().AllocContiguous(4096)
		lmr, _ := a.RegisterPhysMR(p, pa, 4096, rnic.PermRead|rnic.PermWrite)
		pb, _ := b.NIC().Mem().AllocContiguous(4096)
		rmr, _ := b.RegisterPhysMR(p, pb, 4096, rnic.PermRead|rnic.PermWrite)
		qa, _ := ConnectRC(a, b)
		disp := NewDispatcher(qa.SendCQ())

		_ = lmr.WriteAt(0, []byte("dispatch me"))
		if err := a.PostSend(p, qa, rnic.WR{
			Kind: rnic.OpWrite, WRID: 42, Signaled: true,
			LocalMR: lmr, Len: 11, RemoteKey: rmr.Key(),
		}); err != nil {
			t.Fatal(err)
		}
		cqe := disp.Wait(p, 42)
		if cqe.Status != rnic.StatusOK {
			t.Fatalf("status = %v", cqe.Status)
		}
		got := make([]byte, 11)
		_ = rmr.ReadAt(0, got)
		if string(got) != "dispatch me" {
			t.Fatalf("got %q", got)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDispatcherDemultiplexesByWRID(t *testing.T) {
	env, _, a, b := newPair(t)
	pa, _ := a.NIC().Mem().AllocContiguous(4096)
	pb, _ := b.NIC().Mem().AllocContiguous(4096)
	var lmr, rmr *rnic.MR
	var qa *rnic.QP
	var disp *Dispatcher
	env.Go("setup", func(p *simtime.Proc) {
		lmr, _ = a.RegisterPhysMR(p, pa, 4096, rnic.PermRead|rnic.PermWrite)
		rmr, _ = b.RegisterPhysMR(p, pb, 4096, rnic.PermRead|rnic.PermWrite)
		qa, _ = ConnectRC(a, b)
		disp = NewDispatcher(qa.SendCQ())
		// Two writers wait on different WRIDs; completions arrive in
		// posting order, but each writer gets exactly its own.
		for k := 1; k <= 2; k++ {
			k := k
			p.Env().Go("writer", func(q *simtime.Proc) {
				q.SetCPUAccount(&simtime.CPUAccount{})
				// Stagger so writer 2 posts first.
				q.Sleep(simtime.Time(3-k) * time.Microsecond)
				_ = a.PostSend(q, qa, rnic.WR{
					Kind: rnic.OpWrite, WRID: uint64(k), Signaled: true,
					LocalMR: lmr, Len: 8, RemoteKey: rmr.Key(), RemoteOff: int64(k * 64),
				})
				cqe := disp.Wait(q, uint64(k))
				if cqe.WRID != uint64(k) {
					t.Errorf("writer %d got wrid %d", k, cqe.WRID)
				}
			})
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPollCQChargesCPU(t *testing.T) {
	env, _, a, b := newPair(t)
	acct := &simtime.CPUAccount{}
	env.Go("p", func(p *simtime.Proc) {
		p.SetCPUAccount(acct)
		pa, _ := a.NIC().Mem().AllocContiguous(4096)
		lmr, _ := a.RegisterPhysMR(p, pa, 4096, rnic.PermRead|rnic.PermWrite)
		pb, _ := b.NIC().Mem().AllocContiguous(4096)
		rmr, _ := b.RegisterPhysMR(p, pb, 4096, rnic.PermRead|rnic.PermWrite)
		qa, _ := ConnectRC(a, b)
		before := acct.Busy()
		_ = a.PostSend(p, qa, rnic.WR{
			Kind: rnic.OpWrite, WRID: 1, Signaled: true,
			LocalMR: lmr, Len: 64, RemoteKey: rmr.Key(),
		})
		_ = a.PollCQ(p, qa.SendCQ())
		spin := acct.Busy() - before
		if spin < time.Microsecond {
			t.Errorf("busy-poll charged only %v; native pollers must spin", spin)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
