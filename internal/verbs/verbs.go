// Package verbs is the native RDMA programming interface of the
// simulation — the analogue of libibverbs. It wraps the rnic device
// model and charges the host-side costs of each call to the calling
// process: memory-region registration pins pages (the cost the paper's
// Figure 8 measures), posting work rings a doorbell, and polling a
// completion queue burns CPU.
//
// LITE is built on top of this interface, exactly as the real LITE is
// built on kernel Verbs; benchmarks also use it directly as the
// "native RDMA" baseline.
package verbs

import (
	"lite/internal/hostmem"
	"lite/internal/params"
	"lite/internal/rnic"
	"lite/internal/simtime"
)

// Context is a per-process handle on a NIC, analogous to ibv_context.
type Context struct {
	nic *rnic.NIC
	as  *hostmem.AddressSpace
	cfg *params.Config
}

// Open returns a verbs context for the given NIC and process address
// space.
func Open(nic *rnic.NIC, as *hostmem.AddressSpace) *Context {
	return &Context{nic: nic, as: as, cfg: nic.Registry().Config()}
}

// NIC returns the underlying device.
func (c *Context) NIC() *rnic.NIC { return c.nic }

// AddressSpace returns the process address space of this context.
func (c *Context) AddressSpace() *hostmem.AddressSpace { return c.as }

// RegisterMR registers [va, va+size) of the process address space and
// pins its pages, charging the caller the pinning time (this is the
// cost native RDMA pays in Figure 8).
func (c *Context) RegisterMR(p *simtime.Proc, va hostmem.VAddr, size int64, perm rnic.Perm) (*rnic.MR, error) {
	pages := params.Pages(size, c.cfg.PageSize)
	p.Work(c.cfg.MRRegisterBase + simtime.Time(pages)*c.cfg.PinPerPage)
	return c.nic.RegisterMR(c.as, va, size, perm)
}

// RegisterPhysMR registers a physically addressed region. This is the
// kernel-only path LITE exploits: no page walk and no pinning, so the
// cost is the fixed driver overhead regardless of size.
func (c *Context) RegisterPhysMR(p *simtime.Proc, pa hostmem.PAddr, size int64, perm rnic.Perm) (*rnic.MR, error) {
	p.Work(c.cfg.MRRegisterBase)
	return c.nic.RegisterPhysMR(c.as, pa, size, perm)
}

// DeregisterMR removes a region, unpinning its pages (charged to the
// caller for virtual regions).
func (c *Context) DeregisterMR(p *simtime.Proc, mr *rnic.MR) error {
	cost := c.cfg.MRRegisterBase / 2
	if !mr.Phys() {
		cost += simtime.Time(params.Pages(mr.Size(), c.cfg.PageSize)) * c.cfg.UnpinPerPage
	}
	p.Work(cost)
	return c.nic.DeregisterMR(mr)
}

// CreateCQ returns a new completion queue.
func (c *Context) CreateCQ() *rnic.CQ { return c.nic.CreateCQ() }

// CreateQP returns a new queue pair.
func (c *Context) CreateQP(typ rnic.QPType, sendCQ, recvCQ *rnic.CQ) *rnic.QP {
	return c.nic.CreateQP(typ, sendCQ, recvCQ)
}

// inlineCopyCost returns the host PIO time of building an inline WQE:
// the posting CPU write-combines the payload into the doorbell window,
// paid per byte at InlineBandwidth. Zero for non-inline requests.
func (c *Context) inlineCopyCost(wr *rnic.WR) simtime.Time {
	if !wr.Inline {
		return 0
	}
	return params.TransferTime(wr.Len, c.cfg.InlineBandwidth)
}

// PostSend charges the doorbell (plus the PIO copy for inline WQEs)
// and hands the work request to the NIC.
func (c *Context) PostSend(p *simtime.Proc, qp *rnic.QP, wr rnic.WR) error {
	p.Work(c.cfg.NICDoorbell + c.inlineCopyCost(&wr))
	return c.nic.PostSend(p.Now(), qp, wr)
}

// PostSendList charges a single doorbell for a whole chain of work
// requests (plus the PIO copies of any inline payloads) and hands the
// chain to the NIC. This is the batched posting path: N requests cost
// one MMIO ring instead of N.
func (c *Context) PostSendList(p *simtime.Proc, qp *rnic.QP, wrs []rnic.WR) error {
	cost := c.cfg.NICDoorbell
	for k := range wrs {
		cost += c.inlineCopyCost(&wrs[k])
	}
	p.Work(cost)
	return c.nic.PostSendList(p.Now(), qp, wrs)
}

// AtomicRMW posts one atomic work request (fetch-add, cmp-swap, or a
// masked variant) and busy-waits on the dispatcher for its completion,
// returning the remote word's value before the operation. It fills the
// bookkeeping fields of the request (WRID, Signaled, Len, the result
// sink); the caller supplies kind, operands, masks, and the remote
// address. Alignment and size violations surface synchronously as the
// rnic layer's typed errors (ErrAtomicSize, ErrAtomicAlign).
func (c *Context) AtomicRMW(p *simtime.Proc, d *Dispatcher, qp *rnic.QP, wr rnic.WR) (uint64, error) {
	if !wr.Kind.IsAtomic() {
		return 0, rnic.ErrBadQPState
	}
	var result uint64
	var buf [8]byte
	wr.WRID = c.nic.NextWRID()
	wr.Signaled = true
	wr.Len = 8
	if wr.LocalMR == nil {
		wr.LocalBuf = buf[:]
	}
	wr.AtomicResult = &result
	if err := c.PostSend(p, qp, wr); err != nil {
		return 0, err
	}
	cqe := d.Wait(p, wr.WRID)
	if cqe.Status != rnic.StatusOK {
		return 0, rnic.ErrBadMR
	}
	return result, nil
}

// PostRecv charges the doorbell and posts a receive buffer.
func (c *Context) PostRecv(p *simtime.Proc, qp *rnic.QP, r rnic.PostedRecv) error {
	p.Work(c.cfg.NICDoorbell)
	return qp.PostRecv(r)
}

// PostRecvList charges a single doorbell and posts a batch of receive
// buffers.
func (c *Context) PostRecvList(p *simtime.Proc, qp *rnic.QP, rs []rnic.PostedRecv) error {
	p.Work(c.cfg.NICDoorbell)
	return qp.PostRecvList(rs)
}

// PollCQ busy-polls the CQ until a completion arrives, charging the
// wait to the caller's CPU account (native RDMA pollers spin).
func (c *Context) PollCQ(p *simtime.Proc, cq *rnic.CQ) rnic.CQE {
	for {
		if cqe, ok := cq.TryPoll(); ok {
			return cqe
		}
		t0 := p.Now()
		cq.Wait(p)
		p.CPUAccount().Charge(p.Now() - t0)
	}
}

// TryPollCQ polls without blocking.
func (c *Context) TryPollCQ(p *simtime.Proc, cq *rnic.CQ) (rnic.CQE, bool) {
	return cq.TryPoll()
}

// ConnectRC creates a connected RC queue pair between two contexts,
// each side with its own send and receive CQs.
func ConnectRC(a, b *Context) (*rnic.QP, *rnic.QP) {
	qa := a.CreateQP(rnic.RC, a.CreateCQ(), a.CreateCQ())
	qb := b.CreateQP(rnic.RC, b.CreateCQ(), b.CreateCQ())
	qa.Connect(b.nic.Node(), qb.QPN())
	qb.Connect(a.nic.Node(), qa.QPN())
	return qa, qb
}

// ConnectQP performs the cold RC connection establishment for an
// already-created QP: the rdma_cm REQ/REP/RTU exchange plus the
// INIT→RTR→RTS driver transitions, charged to the calling process at
// Params.QPConnectTime. This is the path leasing avoids.
func (c *Context) ConnectQP(p *simtime.Proc, qp *rnic.QP, remoteNode, remoteQPN int) {
	p.Work(simtime.Time(c.cfg.QPConnectTime))
	qp.Connect(remoteNode, remoteQPN)
}

// LeaseQP hands out a pre-established QP from a kernel connection
// pool: an ownership transfer with no wire exchange and no QP state
// machine, charged at Params.QPLeaseGrant. The QP must already be
// connected (it was built and connected ahead of demand).
func (c *Context) LeaseQP(p *simtime.Proc, qp *rnic.QP) *rnic.QP {
	p.Work(simtime.Time(c.cfg.QPLeaseGrant))
	return qp
}

// Dispatcher demultiplexes completions of one CQ by work-request id,
// so several processes can issue blocking operations over a shared CQ.
type Dispatcher struct {
	cq    *rnic.CQ
	stash map[uint64]rnic.CQE
}

// NewDispatcher returns a dispatcher over cq.
func NewDispatcher(cq *rnic.CQ) *Dispatcher {
	return &Dispatcher{cq: cq, stash: make(map[uint64]rnic.CQE)}
}

// Wait blocks (busy-polling; CPU charged) until the completion with
// the given work-request id arrives and returns it.
func (d *Dispatcher) Wait(p *simtime.Proc, wrid uint64) rnic.CQE {
	for {
		if cqe, ok := d.stash[wrid]; ok {
			delete(d.stash, wrid)
			return cqe
		}
		if cqe, ok := d.cq.TryPoll(); ok {
			if cqe.WRID == wrid {
				return cqe
			}
			d.stash[cqe.WRID] = cqe
			d.cq.Broadcast(p.Env())
			continue
		}
		t0 := p.Now()
		d.cq.Wait(p)
		p.CPUAccount().Charge(p.Now() - t0)
	}
}

// TryClaim drains any ready completions into the stash without
// blocking and claims the one with the given work-request id if it
// has arrived.
func (d *Dispatcher) TryClaim(p *simtime.Proc, wrid uint64) (rnic.CQE, bool) {
	for {
		cqe, ok := d.cq.TryPoll()
		if !ok {
			break
		}
		d.stash[cqe.WRID] = cqe
		d.cq.Broadcast(p.Env())
	}
	if cqe, ok := d.stash[wrid]; ok {
		delete(d.stash, wrid)
		return cqe, true
	}
	return rnic.CQE{}, false
}

// WaitQuiet is Wait without CPU charging, for callers modeling
// sleep-based waiting.
func (d *Dispatcher) WaitQuiet(p *simtime.Proc, wrid uint64) rnic.CQE {
	for {
		if cqe, ok := d.stash[wrid]; ok {
			delete(d.stash, wrid)
			return cqe
		}
		if cqe, ok := d.cq.TryPoll(); ok {
			if cqe.WRID == wrid {
				return cqe
			}
			d.stash[cqe.WRID] = cqe
			d.cq.Broadcast(p.Env())
			continue
		}
		d.cq.Wait(p)
	}
}
