package verbs

import (
	"encoding/binary"
	"errors"
	"testing"

	"lite/internal/rnic"
	"lite/internal/simtime"
)

// TestAtomicRMWBlockingHelper drives the verbs-level atomic helper
// end to end: fetch-add, plain CAS, masked CAS, and the synchronous
// typed errors for misuse.
func TestAtomicRMWBlockingHelper(t *testing.T) {
	env, _, a, b := newPair(t)
	qa, _ := ConnectRC(a, b)

	env.Go("p", func(p *simtime.Proc) {
		pa, err := b.NIC().Mem().AllocContiguous(4096)
		if err != nil {
			t.Fatal(err)
		}
		mr, err := b.NIC().RegisterPhysMR(b.AddressSpace(), pa, 4096,
			rnic.PermRead|rnic.PermWrite|rnic.PermAtomic)
		if err != nil {
			t.Fatal(err)
		}
		d := NewDispatcher(qa.SendCQ())

		old, err := a.AtomicRMW(p, d, qa, rnic.WR{
			Kind: rnic.OpFetchAdd, RemoteKey: mr.Key(), Add: 41})
		if err != nil || old != 0 {
			t.Fatalf("FAA: old=%d err=%v", old, err)
		}
		old, err = a.AtomicRMW(p, d, qa, rnic.WR{
			Kind: rnic.OpCmpSwap, RemoteKey: mr.Key(), Compare: 41, Swap: 100})
		if err != nil || old != 41 {
			t.Fatalf("CAS: old=%d err=%v", old, err)
		}
		// Masked no-op CAS (swap mask zero): a pure remote compare.
		old, err = a.AtomicRMW(p, d, qa, rnic.WR{
			Kind: rnic.OpMaskCmpSwap, RemoteKey: mr.Key(),
			Compare: 100, CompareMask: ^uint64(0)})
		if err != nil || old != 100 {
			t.Fatalf("masked no-op CAS: old=%d err=%v", old, err)
		}
		var got [8]byte
		if err := mr.ReadAt(0, got[:]); err != nil {
			t.Fatal(err)
		}
		if v := binary.LittleEndian.Uint64(got[:]); v != 100 {
			t.Errorf("remote word = %d, want 100", v)
		}

		// Non-atomic kinds are rejected before posting.
		if _, err := a.AtomicRMW(p, d, qa, rnic.WR{Kind: rnic.OpWrite}); err == nil {
			t.Error("AtomicRMW accepted OpWrite")
		}
		// Misalignment surfaces synchronously as the rnic typed error.
		_, err = a.AtomicRMW(p, d, qa, rnic.WR{
			Kind: rnic.OpFetchAdd, RemoteKey: mr.Key(), RemoteOff: 12, Add: 1})
		if !errors.Is(err, rnic.ErrAtomicAlign) {
			t.Errorf("misaligned AtomicRMW: err = %v, want ErrAtomicAlign", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
