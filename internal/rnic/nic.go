package rnic

import (
	"fmt"
	"math"

	"lite/internal/fabric"
	"lite/internal/hostmem"
	"lite/internal/obs"
	"lite/internal/params"
	"lite/internal/simtime"
)

// Registry connects the NICs of a cluster over one fabric and routes
// operations between them.
type Registry struct {
	env  *simtime.Env
	cfg  *params.Config
	fab  *fabric.Fabric
	nics map[int]*NIC
}

// NewRegistry returns an empty NIC registry over the given fabric.
func NewRegistry(env *simtime.Env, cfg *params.Config, fab *fabric.Fabric) *Registry {
	return &Registry{env: env, cfg: cfg, fab: fab, nics: make(map[int]*NIC)}
}

// Env returns the simulation environment.
func (r *Registry) Env() *simtime.Env { return r.env }

// Config returns the shared cost model.
func (r *Registry) Config() *params.Config { return r.cfg }

// Fabric returns the fabric connecting the NICs.
func (r *Registry) Fabric() *fabric.Fabric { return r.fab }

// NIC returns the NIC installed at the given node, or nil.
func (r *Registry) NIC(node int) *NIC { return r.nics[node] }

// NewNIC installs a NIC at node, backed by that node's physical
// memory, and adds a fabric port for it.
func (r *Registry) NewNIC(node int, mem *hostmem.Memory) (*NIC, error) {
	if _, ok := r.nics[node]; ok {
		return nil, fmt.Errorf("rnic: node %d already has a NIC", node)
	}
	if err := r.fab.AddPort(node); err != nil {
		return nil, err
	}
	n := &NIC{
		reg:      r,
		node:     node,
		mem:      mem,
		mrs:      make(map[uint32]*MR),
		qps:      make(map[int]*QP),
		keyCache: newLRU[uint32](r.cfg.MRKeyCacheEntries),
		pteCache: newLRU[pteKey](int(r.cfg.PTECacheBytes / r.cfg.PageSize)),
		qpCache:  newLRU[int](r.cfg.QPCacheEntries),
		nextKey:  1,
		nextQPN:  1,
		nextCQN:  1,
	}
	r.nics[node] = n
	return n, nil
}

type pteKey struct {
	as    *hostmem.AddressSpace
	vpage int64
}

// NIC is one node's simulated RDMA NIC.
type NIC struct {
	reg  *Registry
	node int
	mem  *hostmem.Memory

	txPipe simtime.Server
	rxPipe simtime.Server
	dma    simtime.Server

	mrs      map[uint32]*MR
	qps      map[int]*QP
	keyCache *lru[uint32]
	pteCache *lru[pteKey]
	qpCache  *lru[int]

	nextKey  uint32
	nextQPN  int
	nextCQN  int
	nextWRID uint64

	// slidingQueues makes subsequently created CQs and QPs consume
	// entries by re-slicing the front away (q = q[1:]) instead of the
	// head-indexed ring discipline. See SetCompatSlidingQueues.
	slidingQueues bool

	// Counters for diagnostics and experiments.
	OpsPosted   int64
	OpsDeliverd int64

	// obs, when non-nil, receives the NIC's counters (cache hits and
	// misses, RC timeouts, RNR exhaustion) and pipeline spans.
	obs *obs.Registry
}

// Node returns the node id this NIC is installed at.
func (n *NIC) Node() int { return n.node }

// Mem returns the node's physical memory.
func (n *NIC) Mem() *hostmem.Memory { return n.mem }

// Registry returns the registry this NIC belongs to.
func (n *NIC) Registry() *Registry { return n.reg }

// MRCount returns the number of registered memory regions.
func (n *NIC) MRCount() int { return len(n.mrs) }

// SetObs directs the NIC's counters and pipeline spans into the given
// registry (normally the owning node's). A nil registry disables
// collection. Failure counters appear as "rnic.timeouts" and
// "rnic.rnr_exhausted"; SRAM cache traffic as "rnic.<cache>.hits" /
// ".misses" for the mrkey, pte and qp caches.
func (n *NIC) SetObs(reg *obs.Registry) { n.obs = reg }

// Obs returns the NIC's registry (nil when collection is disabled).
func (n *NIC) Obs() *obs.Registry { return n.obs }

// CacheStats returns hit/miss counters of the three SRAM caches.
func (n *NIC) CacheStats() (keyHits, keyMisses, pteHits, pteMisses int64) {
	keyHits, keyMisses = n.keyCache.Stats()
	pteHits, pteMisses = n.pteCache.Stats()
	return
}

// RegisterMR registers a virtual-address memory region of the given
// address space with the NIC and pins its pages. The caller (driver
// layer) is responsible for charging the pinning time; this method
// only performs the state changes.
func (n *NIC) RegisterMR(as *hostmem.AddressSpace, va hostmem.VAddr, size int64, perm Perm) (*MR, error) {
	if size <= 0 {
		return nil, hostmem.ErrBadSize
	}
	ps := n.mem.PageSize()
	// Pin page by page: virtual ranges need not be physically contiguous.
	var pinned []hostmem.PAddr
	for off := int64(0); off < size; off += ps {
		pa, err := as.Translate(va + hostmem.VAddr(off))
		if err != nil {
			for _, q := range pinned {
				_ = n.mem.Unpin(q, 1)
			}
			return nil, err
		}
		page := pa - hostmem.PAddr(int64(pa)%ps)
		if err := n.mem.Pin(page, 1); err != nil {
			return nil, err
		}
		pinned = append(pinned, page)
	}
	mr := &MR{key: n.nextKey, node: n.node, size: size, perm: perm, as: as, va: va}
	n.nextKey++
	n.mrs[mr.key] = mr
	return mr, nil
}

// RegisterPhysMR registers a physically addressed memory region (the
// kernel-only path). No pinning is needed: the caller guarantees the
// memory is resident kernel memory.
func (n *NIC) RegisterPhysMR(mem *hostmem.AddressSpace, pa hostmem.PAddr, size int64, perm Perm) (*MR, error) {
	if size <= 0 {
		return nil, hostmem.ErrBadSize
	}
	mr := &MR{key: n.nextKey, node: n.node, size: size, perm: perm, phys: true, pa: pa, as: mem}
	n.nextKey++
	n.mrs[mr.key] = mr
	return mr, nil
}

// DeregisterMR removes the region and unpins its pages (for virtual
// regions). The caller charges the unpinning time.
func (n *NIC) DeregisterMR(mr *MR) error {
	if _, ok := n.mrs[mr.key]; !ok {
		return ErrBadMR
	}
	delete(n.mrs, mr.key)
	n.keyCache.Invalidate(mr.key)
	if !mr.phys {
		ps := n.mem.PageSize()
		for off := int64(0); off < mr.size; off += ps {
			pa, err := mr.as.Translate(mr.va + hostmem.VAddr(off))
			if err != nil {
				return err
			}
			page := pa - hostmem.PAddr(int64(pa)%ps)
			if err := n.mem.Unpin(page, 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// LookupMR resolves a protection key on this NIC.
func (n *NIC) LookupMR(key uint32) (*MR, bool) {
	mr, ok := n.mrs[key]
	return mr, ok
}

// SetCompatSlidingQueues controls the queue discipline of CQs and QPs
// created after the call. When enabled they consume entries by
// re-slicing the front away (q = q[1:], as the queues worked before
// the head-indexed rings), so every queue lap reallocates its backing
// array. Completion order and virtual-time behavior are identical
// either way — the difference is pure host cost, which is exactly what
// the scale benchmark's pre-optimization baseline needs to reproduce.
func (n *NIC) SetCompatSlidingQueues(v bool) { n.slidingQueues = v }

// CreateCQ returns a new completion queue.
func (n *NIC) CreateCQ() *CQ {
	cq := &CQ{cqn: n.nextCQN, sliding: n.slidingQueues}
	n.nextCQN++
	return cq
}

// CreateQP returns a new queue pair using the given completion queues.
func (n *NIC) CreateQP(typ QPType, sendCQ, recvCQ *CQ) *QP {
	qp := &QP{qpn: n.nextQPN, nic: n, typ: typ, sendCQ: sendCQ, recvCQ: recvCQ, sliding: n.slidingQueues}
	n.nextQPN++
	n.qps[qp.qpn] = qp
	return qp
}

// NextWRID returns a fresh work-request id, unique per NIC. Callers
// that manage their own id space (LITE does) need not use it; it
// exists for direct verbs users sharing a CQ through a Dispatcher.
func (n *NIC) NextWRID() uint64 {
	n.nextWRID++
	return n.nextWRID
}

// QPCount returns the number of live QPs on this NIC.
func (n *NIC) QPCount() int { return len(n.qps) }

// QPCountByOwner returns the number of live QPs tagged with the given
// owner label (see QP.SetOwner).
func (n *NIC) QPCountByOwner(owner string) int {
	c := 0
	for _, qp := range n.qps {
		if qp.owner == owner {
			c++
		}
	}
	return c
}

// keyCost returns the SRAM cost of touching MR key k: zero on a cache
// hit, and a host-fetch penalty that grows with the size of the
// host-side MR table on a miss.
func (n *NIC) keyCost(k uint32) simtime.Time {
	if n.keyCache.Access(k) {
		n.obs.Add("rnic.mrkey.hits", 1)
		return 0
	}
	n.obs.Add("rnic.mrkey.misses", 1)
	c := n.reg.cfg.MRKeyMissBase
	if extra := len(n.mrs); extra > n.reg.cfg.MRKeyCacheEntries {
		depth := math.Log2(float64(extra) / float64(n.reg.cfg.MRKeyCacheEntries))
		c += simtime.Time(depth * float64(n.reg.cfg.MRKeyMissPerLog2))
	}
	return c
}

// pteCost returns the translation cost of touching [off, off+length)
// of a virtual MR: one potential PTE fetch per page. Physical MRs cost
// nothing (call sites skip them).
func (n *NIC) pteCost(mr *MR, off, length int64) simtime.Time {
	ps := n.mem.PageSize()
	start := (int64(mr.va) + off) / ps
	end := (int64(mr.va) + off + length + ps - 1) / ps
	if length == 0 {
		end = start + 1
	}
	var c simtime.Time
	for vp := start; vp < end; vp++ {
		if n.pteCache.Access(pteKey{mr.as, vp}) {
			n.obs.Add("rnic.pte.hits", 1)
		} else {
			n.obs.Add("rnic.pte.misses", 1)
			c += n.reg.cfg.PTEMiss
		}
	}
	return c
}

// qpCost returns the QP-context SRAM cost of touching QP number qpn.
func (n *NIC) qpCost(qpn int) simtime.Time {
	if n.qpCache.Access(qpn) {
		n.obs.Add("rnic.qp.hits", 1)
		return 0
	}
	n.obs.Add("rnic.qp.misses", 1)
	return n.reg.cfg.QPMiss
}

// mrAccessCost is the total NIC-side cost of addressing a region.
func (n *NIC) mrAccessCost(mr *MR, off, length int64) simtime.Time {
	c := n.keyCost(mr.key)
	if !mr.phys {
		c += n.pteCost(mr, off, length)
	}
	return c
}

// PipelineBusy reports the cumulative busy time of the NIC's transmit
// pipeline, receive pipeline, and DMA engine, for utilization studies.
func (n *NIC) PipelineBusy() (tx, rx, dma simtime.Time) {
	return n.txPipe.BusyTotal(), n.rxPipe.BusyTotal(), n.dma.BusyTotal()
}
