package rnic

import (
	"encoding/binary"

	"lite/internal/params"
	"lite/internal/simtime"
)

// PostSend posts a work request on qp with the operation considered
// handed to the NIC at time at (the caller has already charged the
// doorbell cost). It returns immediately; completions are reported
// through the QP's completion queues. Synchronous errors are returned
// only for malformed requests.
func (n *NIC) PostSend(at simtime.Time, qp *QP, wr WR) error {
	if err := n.validate(qp, &wr); err != nil {
		return err
	}
	n.dispatch(at, qp, wr)
	return nil
}

// PostSendList posts a linked chain of work requests handed to the NIC
// in one doorbell ring at time at (the caller charges a single
// NICDoorbell for the whole chain). Each WQE still pays its own
// processing time in the transmit pipeline; the chain is validated in
// full before any request is posted, so a malformed entry posts
// nothing.
func (n *NIC) PostSendList(at simtime.Time, qp *QP, wrs []WR) error {
	if len(wrs) == 0 {
		return ErrEmptyList
	}
	for k := range wrs {
		if err := n.validate(qp, &wrs[k]); err != nil {
			return err
		}
	}
	for k := range wrs {
		n.dispatch(at, qp, wrs[k])
	}
	return nil
}

// dispatch routes one validated work request into the NIC pipelines.
func (n *NIC) dispatch(at simtime.Time, qp *QP, wr WR) {
	n.OpsPosted++
	if wr.Inline {
		n.obs.Add("rnic.inline_wqes", 1)
	}
	switch wr.Kind {
	case OpWrite, OpWriteImm:
		n.postWrite(at, qp, wr)
	case OpRead:
		n.postRead(at, qp, wr)
	case OpSend:
		if qp.typ == UD {
			n.postSendUD(at, qp, wr)
		} else {
			n.postSendRC(at, qp, wr)
		}
	case OpFetchAdd, OpCmpSwap, OpMaskFetchAdd, OpMaskCmpSwap:
		n.postAtomic(at, qp, wr)
	}
}

func (n *NIC) validate(qp *QP, wr *WR) error {
	if qp.typ == RC && !qp.conn {
		return ErrBadQPState
	}
	if qp.typ == UD && wr.Kind != OpSend {
		return ErrUDOneSided
	}
	switch wr.Kind {
	case OpWrite, OpWriteImm, OpRead, OpSend:
	case OpFetchAdd, OpCmpSwap, OpMaskFetchAdd, OpMaskCmpSwap:
		if wr.Len != 8 {
			return ErrAtomicSize
		}
		if wr.RemoteOff&7 != 0 {
			return ErrAtomicAlign
		}
	default:
		return ErrBadQPState
	}
	if wr.Inline {
		switch wr.Kind {
		case OpWrite, OpWriteImm, OpSend:
		default:
			return ErrInlineKind
		}
		if wr.Len > int64(n.cfg().MaxInline) {
			return ErrInlineSize
		}
	}
	if wr.LocalBuf != nil {
		if int64(len(wr.LocalBuf)) < wr.Len {
			return ErrBounds
		}
		return nil
	}
	if wr.LocalMR != nil {
		if wr.LocalMR.node != n.node {
			return ErrBadMR
		}
		if err := wr.LocalMR.checkRange(wr.LocalOff, wr.Len); err != nil {
			return err
		}
	} else if wr.Len > 0 && wr.Kind != OpWriteImm {
		return ErrBadMR
	}
	return nil
}

// localCost returns the NIC-side cost of addressing the gather/scatter
// buffer of a work request: zero for raw physical buffers (LITE path)
// and for inline WQEs (the payload arrived with the doorbell, so the
// NIC never touches the host buffer), key+PTE costs for registered
// regions.
func (n *NIC) localCost(wr WR) simtime.Time {
	if wr.Inline || wr.LocalBuf != nil || wr.LocalMR == nil || wr.Len == 0 {
		return 0
	}
	return n.mrAccessCost(wr.LocalMR, wr.LocalOff, wr.Len)
}

// txSchedule books the transmit-side pipeline stages of an outbound
// request: WQE processing in the tx pipe, then the payload DMA read.
// Inline WQEs process faster (no WQE fetch from the host send queue)
// and skip the DMA stage entirely, so t1 == t2 and no tx_dma span is
// ever recorded for them.
func (n *NIC) txSchedule(at simtime.Time, qp *QP, wr WR) (t1, t2 simtime.Time) {
	cfg := n.cfg()
	proc := cfg.NICProcess
	if wr.Inline {
		proc = cfg.NICInlineProcess
	}
	t1 = n.txPipe.Reserve(at, proc+n.qpCost(qp.qpn)+n.localCost(wr))
	if wr.Inline {
		return t1, t1
	}
	return t1, n.dma.Reserve(t1, params.TransferTime(wr.Len, cfg.DMABandwidth))
}

// writeLocal scatters result bytes into the request's local buffer.
func writeLocal(wr WR, data []byte) {
	if wr.LocalBuf != nil {
		copy(wr.LocalBuf, data)
		return
	}
	if wr.LocalMR != nil {
		_ = wr.LocalMR.WriteAt(wr.LocalOff, data)
	}
}

func (n *NIC) env() *simtime.Env        { return n.reg.env }
func (n *NIC) cfg() *params.Config      { return n.reg.cfg }
func (n *NIC) peer(node int) *NIC       { return n.reg.nics[node] }
func (n *NIC) ackProcess() simtime.Time { return n.cfg().NICProcess / 2 }

// completeSend pushes a send-side completion at time t if requested.
func (n *NIC) completeSend(t simtime.Time, qp *QP, wr WR, st Status) {
	// Failure accounting happens regardless of signaling, so chaos
	// runs can report losses that produced no visible completion.
	switch st {
	case StatusTimeout:
		n.obs.Add("rnic.timeouts", 1)
	case StatusRNRExceeded:
		n.obs.Add("rnic.rnr_exhausted", 1)
	}
	if !wr.Signaled {
		return
	}
	cqe := CQE{WRID: wr.WRID, QPN: qp.qpn, Kind: wr.Kind, Status: st, Len: wr.Len}
	n.env().At(t, func(e *simtime.Env) { qp.sendCQ.Push(e, cqe) })
}

// failAfterTimeout completes the request in error after the RC
// transport timeout. Used when the destination is unreachable.
func (n *NIC) failAfterTimeout(at simtime.Time, qp *QP, wr WR) {
	n.completeSend(at+n.cfg().RCTimeout, qp, wr, StatusTimeout)
}

// snapshot reads the gather buffer at post time (the host buffer must
// stay stable until completion, as with real RDMA).
func snapshot(wr WR) []byte {
	if wr.Len == 0 {
		return nil
	}
	buf := make([]byte, wr.Len)
	if wr.LocalBuf != nil {
		copy(buf, wr.LocalBuf[:wr.Len])
		return buf
	}
	if wr.LocalMR == nil {
		return nil
	}
	if err := wr.LocalMR.ReadAt(wr.LocalOff, buf); err != nil {
		return nil
	}
	return buf
}

// postWrite implements one-sided RDMA write and write-with-immediate.
func (n *NIC) postWrite(at simtime.Time, qp *QP, wr WR) {
	cfg := n.cfg()
	t1, t2 := n.txSchedule(at, qp, wr)
	payload := snapshot(wr)

	dst := qp.remoteNode
	t3, ok := n.reg.fab.ReservePath(t2, n.node, dst, wr.Len+int64(cfg.WireHeader))
	rn := n.peer(dst)
	if !ok || rn == nil {
		n.failAfterTimeout(at, qp, wr)
		return
	}
	rqp := rn.qps[qp.remoteQPN]
	if rqp == nil {
		n.failAfterTimeout(at, qp, wr)
		return
	}
	rmr, found := rn.mrs[wr.RemoteKey]
	if !found {
		n.nack(t3, rn, qp, wr, StatusBadKey)
		return
	}
	if rmr.perm&PermWrite == 0 {
		n.nack(t3, rn, qp, wr, StatusAccessError)
		return
	}
	if rmr.checkRange(wr.RemoteOff, wr.Len) != nil {
		n.nack(t3, rn, qp, wr, StatusLengthError)
		return
	}
	t4 := rn.rxPipe.Reserve(t3, cfg.NICProcess+rn.qpCost(qp.remoteQPN)+rn.mrAccessCost(rmr, wr.RemoteOff, wr.Len))
	t5 := rn.dma.Reserve(t4, params.TransferTime(wr.Len, cfg.DMABandwidth))

	// Pipeline spans: the NIC computes its whole timeline up front, so
	// the stages are recorded as pre-computed intervals hanging off the
	// caller's span (carried in-simulation on the WR — never on the
	// wire, so tracing cannot change message sizes or timing).
	if wr.Trace != nil {
		n.obs.AddSpan(at, t1, "rnic.tx", wr.Trace)
		if !wr.Inline {
			n.obs.AddSpan(t1, t2, "rnic.tx_dma", wr.Trace)
		}
		n.obs.AddSpan(t2, t3, "fabric.wire", wr.Trace)
		rn.obs.AddSpan(t3, t4, "rnic.rx", wr.Trace)
		rn.obs.AddSpan(t4, t5, "rnic.rx_dma", wr.Trace)
	}

	if wr.Kind == OpWriteImm {
		// The immediate consumes a posted receive at the target; retry
		// on receiver-not-ready, failing after RNRRetryMax attempts.
		n.deliverImm(t5, rn, rqp, qp, wr, payload, rmr, 0)
		return
	}
	n.env().At(t5, func(*simtime.Env) {
		rn.OpsDeliverd++
		_ = rmr.WriteAt(wr.RemoteOff, payload)
	})
	n.ackBack(t5, dst, qp, wr, StatusOK)
}

// deliverImm commits a write-imm at the target: writes the payload,
// consumes one posted receive for the immediate, and pushes a receive
// completion. On receiver-not-ready it retries.
func (n *NIC) deliverImm(t simtime.Time, rn *NIC, rqp *QP, qp *QP, wr WR, payload []byte, rmr *MR, attempt int) {
	cfg := n.cfg()
	n.env().At(t, func(e *simtime.Env) {
		if _, ok := rqp.popRecv(); !ok {
			if attempt >= cfg.RNRRetryMax {
				n.completeSend(e.Now(), qp, wr, StatusRNRExceeded)
				return
			}
			n.deliverImm(e.Now()+cfg.RNRRetryDelay, rn, rqp, qp, wr, payload, rmr, attempt+1)
			return
		}
		rn.OpsDeliverd++
		if len(payload) > 0 {
			_ = rmr.WriteAt(wr.RemoteOff, payload)
		}
		rqp.recvCQ.Push(e, CQE{
			QPN:     rqp.qpn,
			Kind:    OpWriteImm,
			Status:  StatusOK,
			Imm:     wr.Imm,
			HasImm:  true,
			Len:     wr.Len,
			SrcNode: n.node,
			SrcQPN:  qp.qpn,
		})
		n.ackBack(e.Now(), rn.node, qp, wr, StatusOK)
	})
}

// nack completes the request in error after a negative ack round trip.
func (n *NIC) nack(t simtime.Time, rn *NIC, qp *QP, wr WR, st Status) {
	// Error detected at remote rx pipeline; small processing then nack.
	cfg := n.cfg()
	t4 := rn.rxPipe.Reserve(t, cfg.NICProcess)
	back, ok := n.reg.fab.ReservePath(t4, rn.node, n.node, int64(cfg.AckBytes))
	if !ok {
		n.failAfterTimeout(t, qp, wr)
		return
	}
	t6 := n.rxPipe.Reserve(back, n.ackProcess())
	// Errors are always reported, signaled or not.
	cqe := CQE{WRID: wr.WRID, QPN: qp.qpn, Kind: wr.Kind, Status: st, Len: wr.Len}
	n.env().At(t6, func(e *simtime.Env) { qp.sendCQ.Push(e, cqe) })
}

// ackBack schedules the RC acknowledgment and the sender completion.
func (n *NIC) ackBack(t simtime.Time, dst int, qp *QP, wr WR, st Status) {
	cfg := n.cfg()
	back, ok := n.reg.fab.ReservePath(t, dst, n.node, int64(cfg.AckBytes))
	if !ok {
		n.failAfterTimeout(t, qp, wr)
		return
	}
	t6 := n.rxPipe.Reserve(back, n.ackProcess())
	n.completeSend(t6, qp, wr, st)
}

// postRead implements one-sided RDMA read.
func (n *NIC) postRead(at simtime.Time, qp *QP, wr WR) {
	cfg := n.cfg()
	t1 := n.txPipe.Reserve(at, cfg.NICProcess+n.qpCost(qp.qpn)+n.localCost(wr))

	dst := qp.remoteNode
	t3, ok := n.reg.fab.ReservePath(t1, n.node, dst, int64(cfg.WireHeader))
	rn := n.peer(dst)
	if !ok || rn == nil || rn.qps[qp.remoteQPN] == nil {
		n.failAfterTimeout(at, qp, wr)
		return
	}
	rmr, found := rn.mrs[wr.RemoteKey]
	if !found {
		n.nack(t3, rn, qp, wr, StatusBadKey)
		return
	}
	if rmr.perm&PermRead == 0 {
		n.nack(t3, rn, qp, wr, StatusAccessError)
		return
	}
	if rmr.checkRange(wr.RemoteOff, wr.Len) != nil {
		n.nack(t3, rn, qp, wr, StatusLengthError)
		return
	}
	t4 := rn.rxPipe.Reserve(t3, cfg.NICProcess+rn.qpCost(qp.remoteQPN)+rn.mrAccessCost(rmr, wr.RemoteOff, wr.Len))
	t5 := rn.dma.Reserve(t4, params.TransferTime(wr.Len, cfg.DMABandwidth))

	// Snapshot the remote bytes at the instant the remote DMA reads them.
	data := make([]byte, wr.Len)
	n.env().At(t5, func(*simtime.Env) {
		rn.OpsDeliverd++
		_ = rmr.ReadAt(wr.RemoteOff, data)
	})

	back, ok := n.reg.fab.ReservePath(t5, dst, n.node, wr.Len+int64(cfg.WireHeader))
	if !ok {
		n.failAfterTimeout(t5, qp, wr)
		return
	}
	t7 := n.rxPipe.Reserve(back, cfg.NICProcess)
	t8 := n.dma.Reserve(t7, params.TransferTime(wr.Len, cfg.DMABandwidth))
	if wr.Trace != nil {
		n.obs.AddSpan(at, t1, "rnic.tx", wr.Trace)
		n.obs.AddSpan(t1, t3, "fabric.wire", wr.Trace)
		rn.obs.AddSpan(t3, t4, "rnic.rx", wr.Trace)
		rn.obs.AddSpan(t4, t5, "rnic.rx_dma", wr.Trace)
		n.obs.AddSpan(t5, back, "fabric.wire", wr.Trace)
		n.obs.AddSpan(back, t7, "rnic.rx", wr.Trace)
		n.obs.AddSpan(t7, t8, "rnic.rx_dma", wr.Trace)
	}
	wrCopy := wr
	n.env().At(t8, func(*simtime.Env) { writeLocal(wrCopy, data) })
	n.completeSend(t8, qp, wr, StatusOK)
}

// postSendRC implements two-sided send on a reliable connection.
func (n *NIC) postSendRC(at simtime.Time, qp *QP, wr WR) {
	cfg := n.cfg()
	_, t2 := n.txSchedule(at, qp, wr)
	payload := snapshot(wr)

	dst := qp.remoteNode
	t3, ok := n.reg.fab.ReservePath(t2, n.node, dst, wr.Len+int64(cfg.WireHeader))
	rn := n.peer(dst)
	if !ok || rn == nil {
		n.failAfterTimeout(at, qp, wr)
		return
	}
	rqp := rn.qps[qp.remoteQPN]
	if rqp == nil {
		n.failAfterTimeout(at, qp, wr)
		return
	}
	t4 := rn.rxPipe.Reserve(t3, cfg.NICProcess+rn.qpCost(qp.remoteQPN))
	n.deliverSend(t4, rn, rqp, qp, wr, payload, 0)
}

// deliverSend commits a two-sided send into a posted receive buffer,
// retrying on receiver-not-ready.
func (n *NIC) deliverSend(t simtime.Time, rn *NIC, rqp *QP, qp *QP, wr WR, payload []byte, attempt int) {
	cfg := n.cfg()
	n.env().At(t, func(e *simtime.Env) {
		recv, ok := rqp.popRecv()
		if !ok {
			if attempt >= cfg.RNRRetryMax {
				n.completeSend(e.Now(), qp, wr, StatusRNRExceeded)
				return
			}
			n.deliverSend(e.Now()+cfg.RNRRetryDelay, rn, rqp, qp, wr, payload, attempt+1)
			return
		}
		if recv.Len < wr.Len {
			// Message does not fit the posted buffer.
			rqp.recvCQ.Push(e, CQE{QPN: rqp.qpn, Kind: OpRecv, Status: StatusLengthError,
				SrcNode: n.node, SrcQPN: qp.qpn, RecvWRID: recv.WRID})
			n.ackBack(e.Now(), rn.node, qp, wr, StatusLengthError)
			return
		}
		// Receive-side DMA and translation of the receive buffer.
		cost := rn.mrAccessCost(recv.MR, recv.Off, wr.Len)
		t5 := rn.rxPipe.Reserve(e.Now(), cost)
		t6 := rn.dma.Reserve(t5, params.TransferTime(wr.Len, cfg.DMABandwidth))
		e.At(t6, func(e2 *simtime.Env) {
			rn.OpsDeliverd++
			_ = recv.MR.WriteAt(recv.Off, payload)
			rqp.recvCQ.Push(e2, CQE{
				QPN:      rqp.qpn,
				Kind:     OpRecv,
				Status:   StatusOK,
				Len:      wr.Len,
				SrcNode:  n.node,
				SrcQPN:   qp.qpn,
				RecvWRID: recv.WRID,
			})
		})
		n.ackBack(t6, rn.node, qp, wr, StatusOK)
	})
}

// postSendUD implements unreliable datagram send: fire and forget,
// dropped silently if the destination has no posted receive.
func (n *NIC) postSendUD(at simtime.Time, qp *QP, wr WR) {
	cfg := n.cfg()
	_, t2 := n.txSchedule(at, qp, wr)
	payload := snapshot(wr)

	// UD completes locally as soon as the datagram leaves the NIC.
	n.completeSend(t2, qp, wr, StatusOK)

	t3, ok := n.reg.fab.ReservePath(t2, n.node, wr.DestNode, wr.Len+int64(cfg.UDHeader))
	rn := n.peer(wr.DestNode)
	if !ok || rn == nil {
		return // lost on the wire; UD gives no feedback
	}
	rqp := rn.qps[wr.DestQPN]
	if rqp == nil || rqp.typ != UD {
		return
	}
	t4 := rn.rxPipe.Reserve(t3, cfg.NICProcess+rn.qpCost(wr.DestQPN))
	srcNode, srcQPN := n.node, qp.qpn
	n.env().At(t4, func(e *simtime.Env) {
		recv, ok := rqp.popRecv()
		if !ok || recv.Len < wr.Len {
			rqp.drops++
			return
		}
		t5 := rn.rxPipe.Reserve(e.Now(), rn.mrAccessCost(recv.MR, recv.Off, wr.Len))
		t6 := rn.dma.Reserve(t5, params.TransferTime(wr.Len, cfg.DMABandwidth))
		e.At(t6, func(e2 *simtime.Env) {
			rn.OpsDeliverd++
			_ = recv.MR.WriteAt(recv.Off, payload)
			rqp.recvCQ.Push(e2, CQE{
				QPN:      rqp.qpn,
				Kind:     OpRecv,
				Status:   StatusOK,
				Len:      wr.Len,
				SrcNode:  srcNode,
				SrcQPN:   srcQPN,
				RecvWRID: recv.WRID,
			})
		})
	})
}

// MaskedAdd adds delta to val with carries confined by boundary: each
// set bit of boundary marks the most significant bit of an independent
// field, so the addition of one field never carries into the next.
// This is the ConnectX masked-fetch-add ("extended atomics") rule; a
// zero boundary degenerates to a plain 64-bit add. Exported so host
// layers (LITE's local fast path, tests) compute the exact value the
// responder NIC would.
func MaskedAdd(val, delta, boundary uint64) uint64 {
	if boundary == 0 {
		return val + delta
	}
	var out uint64
	lo := uint(0)
	for bit := uint(0); bit < 64; bit++ {
		if boundary&(1<<bit) != 0 || bit == 63 {
			width := bit - lo + 1
			fieldMask := ^uint64(0)
			if width < 64 {
				fieldMask = (uint64(1)<<width - 1) << lo
			}
			sum := (val&fieldMask)>>lo + (delta&fieldMask)>>lo
			out |= sum << lo & fieldMask
			lo = bit + 1
		}
	}
	return out
}

// maskedCASNext returns the word after a masked compare-and-swap of
// old: if old matches cmp under cmpMask, the bits under swapMask are
// replaced from swp; otherwise the word is unchanged. Plain CAS is the
// degenerate case with both masks all-ones.
func maskedCASNext(old, cmp, swp, cmpMask, swapMask uint64) uint64 {
	if old&cmpMask != cmp&cmpMask {
		return old
	}
	return old&^swapMask | swp&swapMask
}

// atomicObs records the per-kind posting counter for an atomic verb.
func (n *NIC) atomicObs(kind OpKind) {
	switch kind {
	case OpFetchAdd:
		n.obs.Add("rnic.atomic.faa", 1)
	case OpCmpSwap:
		n.obs.Add("rnic.atomic.cas", 1)
	case OpMaskFetchAdd:
		n.obs.Add("rnic.atomic.masked_faa", 1)
	case OpMaskCmpSwap:
		n.obs.Add("rnic.atomic.masked_cas", 1)
	}
}

// postAtomic implements 8-byte masked atomics (fetch-add, cmp-swap and
// their masked variants) executed at the remote NIC in arrival order.
func (n *NIC) postAtomic(at simtime.Time, qp *QP, wr WR) {
	cfg := n.cfg()
	n.atomicObs(wr.Kind)
	t1 := n.txPipe.Reserve(at, cfg.NICProcess+n.qpCost(qp.qpn)+n.localCost(wr))

	dst := qp.remoteNode
	t3, ok := n.reg.fab.ReservePath(t1, n.node, dst, int64(cfg.WireHeader)+16)
	rn := n.peer(dst)
	if !ok || rn == nil || rn.qps[qp.remoteQPN] == nil {
		n.failAfterTimeout(at, qp, wr)
		return
	}
	rmr, found := rn.mrs[wr.RemoteKey]
	if !found {
		n.nack(t3, rn, qp, wr, StatusBadKey)
		return
	}
	if rmr.perm&PermAtomic == 0 {
		n.nack(t3, rn, qp, wr, StatusAccessError)
		return
	}
	if rmr.checkRange(wr.RemoteOff, 8) != nil {
		n.nack(t3, rn, qp, wr, StatusLengthError)
		return
	}
	// The remote rx pipeline is the atomicity serialization point: two
	// concurrent atomics to one address reserve it back to back, and
	// each read-modify-write executes whole at its reserved instant, so
	// the second always observes the first's result.
	t4 := rn.rxPipe.Reserve(t3, cfg.NICProcess+rn.qpCost(qp.remoteQPN)+rn.mrAccessCost(rmr, wr.RemoteOff, 8)+cfg.AtomicProcess)

	var old uint64
	kind := wr.Kind
	add, cmp, swp := wr.Add, wr.Compare, wr.Swap
	cmpMask, swapMask, bound := wr.CompareMask, wr.SwapMask, wr.BoundaryMask
	n.env().At(t4, func(*simtime.Env) {
		rn.OpsDeliverd++
		rn.obs.Add("rnic.atomic.executed", 1)
		var b [8]byte
		_ = rmr.ReadAt(wr.RemoteOff, b[:])
		old = binary.LittleEndian.Uint64(b[:])
		next := old
		switch kind {
		case OpFetchAdd:
			next = old + add
		case OpCmpSwap:
			next = maskedCASNext(old, cmp, swp, ^uint64(0), ^uint64(0))
		case OpMaskFetchAdd:
			next = MaskedAdd(old, add, bound)
		case OpMaskCmpSwap:
			next = maskedCASNext(old, cmp, swp, cmpMask, swapMask)
		}
		binary.LittleEndian.PutUint64(b[:], next)
		_ = rmr.WriteAt(wr.RemoteOff, b[:])
	})

	back, ok := n.reg.fab.ReservePath(t4, dst, n.node, int64(cfg.WireHeader)+8)
	if !ok {
		n.failAfterTimeout(t4, qp, wr)
		return
	}
	t6 := n.rxPipe.Reserve(back, n.ackProcess())
	wrCopy, res := wr, wr.AtomicResult
	n.env().At(t6, func(*simtime.Env) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], old)
		writeLocal(wrCopy, b[:])
		if res != nil {
			*res = old
		}
	})
	n.completeSend(t6, qp, wr, StatusOK)
}
