package rnic

import (
	"testing"

	"lite/internal/simtime"
)

// benchmarkPostSend measures the host-side (wall-clock) allocation
// cost of posting one signaled write and reaping its CQE. Inline posts
// copy the payload into the WQE snapshot at post time; the point of
// the benchmark is that neither path allocates per-operation beyond
// that snapshot. Run with:
//
//	go test -bench=PostSend -benchmem ./internal/rnic/
func benchmarkPostSend(b *testing.B, inline bool) {
	c := newCluster(b, 2)
	src := c.physMR(b, 0, 4096, allPerm)
	dst := c.physMR(b, 1, 4096, allPerm)
	qa, _ := c.rcPair(0, 1)
	c.env.Go("poster", func(p *simtime.Proc) {
		wr := WR{
			Kind: OpWrite, Signaled: true, Inline: inline,
			LocalMR: src, Len: 64, RemoteKey: dst.Key(),
		}
		// Warm SRAM caches, then measure steady state.
		_ = c.nic[0].PostSend(p.Now(), qa, wr)
		qa.SendCQ().Poll(p)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			wr.WRID = uint64(i + 1)
			if err := c.nic[0].PostSend(p.Now(), qa, wr); err != nil {
				b.Fatal(err)
			}
			qa.SendCQ().Poll(p)
		}
	})
	if err := c.env.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPostSendInline(b *testing.B) { benchmarkPostSend(b, true) }
func BenchmarkPostSendDMA(b *testing.B)    { benchmarkPostSend(b, false) }
