package rnic

import (
	"testing"
	"time"

	"lite/internal/simtime"
)

func TestAccessorsAndStrings(t *testing.T) {
	c := newCluster(t, 2)
	nic := c.nic[0]
	if nic.Node() != 0 || nic.Registry() != c.reg || nic.Mem() != c.nic[0].Mem() {
		t.Fatal("NIC accessors inconsistent")
	}
	if c.reg.Env() != c.env || c.reg.Config() != &c.cfg || c.reg.NIC(1) != c.nic[1] {
		t.Fatal("registry accessors inconsistent")
	}
	if c.reg.NIC(99) != nil {
		t.Fatal("unknown node should return nil NIC")
	}

	mr := c.physMR(t, 0, 8192, PermRead)
	if mr.Size() != 8192 || mr.Node() != 0 || !mr.Phys() {
		t.Fatalf("MR accessors: %d %d %v", mr.Size(), mr.Node(), mr.Phys())
	}
	if got, ok := nic.LookupMR(mr.Key()); !ok || got != mr {
		t.Fatal("LookupMR failed")
	}
	if _, ok := nic.LookupMR(9999); ok {
		t.Fatal("LookupMR found a ghost")
	}
	if nic.MRCount() != 1 {
		t.Fatalf("MRCount = %d", nic.MRCount())
	}

	cq := nic.CreateCQ()
	if cq.CQN() == 0 || cq.Len() != 0 {
		t.Fatal("fresh CQ state wrong")
	}
	qp := nic.CreateQP(RC, cq, cq)
	if qp.Type() != RC || qp.NIC() != nic || qp.SendCQ() != cq || qp.RecvCQ() != cq {
		t.Fatal("QP accessors inconsistent")
	}
	if qp.Connected() {
		t.Fatal("unconnected QP claims connection")
	}
	if nic.QPCount() != 1 {
		t.Fatalf("QPCount = %d", nic.QPCount())
	}

	if mr.Owner() != "" || qp.Owner() != "" {
		t.Fatal("fresh MR/QP should be untagged")
	}
	mr.SetOwner("test/mr")
	qp.SetOwner("test/qp")
	if mr.Owner() != "test/mr" || qp.Owner() != "test/qp" {
		t.Fatal("owner tags not retained")
	}
	if nic.QPCountByOwner("test/qp") != 1 || nic.QPCountByOwner("ghost") != 0 {
		t.Fatal("QPCountByOwner wrong")
	}

	for _, k := range []OpKind{OpWrite, OpWriteImm, OpRead, OpSend, OpRecv, OpFetchAdd, OpCmpSwap, OpKind(99)} {
		if k.String() == "" {
			t.Fatalf("OpKind %d has empty String", k)
		}
	}
	for _, s := range []Status{StatusOK, StatusAccessError, StatusTimeout, StatusRNRExceeded, StatusLengthError, StatusBadKey, Status(99)} {
		if s.String() == "" {
			t.Fatalf("Status %d has empty String", s)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	c := newCluster(t, 2)
	local := c.physMR(t, 0, 4096, allPerm)
	foreign := c.physMR(t, 1, 4096, allPerm)
	qa, _ := c.rcPair(0, 1)
	unconnected := c.nic[0].CreateQP(RC, c.nic[0].CreateCQ(), c.nic[0].CreateCQ())

	cases := []struct {
		name string
		qp   *QP
		wr   WR
		want error
	}{
		{"unconnected RC", unconnected, WR{Kind: OpWrite, LocalMR: local, Len: 8}, ErrBadQPState},
		{"foreign local MR", qa, WR{Kind: OpWrite, LocalMR: foreign, Len: 8}, ErrBadMR},
		{"local bounds", qa, WR{Kind: OpWrite, LocalMR: local, LocalOff: 4090, Len: 64}, ErrBounds},
		{"atomic size", qa, WR{Kind: OpFetchAdd, LocalMR: local, Len: 4}, ErrAtomicSize},
		{"missing local MR", qa, WR{Kind: OpSend, Len: 8}, ErrBadMR},
		{"short LocalBuf", qa, WR{Kind: OpWrite, LocalBuf: make([]byte, 4), Len: 8}, ErrBounds},
	}
	for _, tc := range cases {
		if err := c.nic[0].PostSend(0, tc.qp, tc.wr); err != tc.want {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestCQPollTimeout(t *testing.T) {
	c := newCluster(t, 1)
	cq := c.nic[0].CreateCQ()
	c.env.Go("poller", func(p *simtime.Proc) {
		start := p.Now()
		if _, ok := cq.PollTimeout(p, 5*time.Microsecond); ok {
			t.Error("poll on empty CQ succeeded")
		}
		if p.Now()-start != 5*time.Microsecond {
			t.Errorf("timeout at %v", p.Now()-start)
		}
		// Push after a waiter arms; the poll succeeds.
		p.Env().After(2*time.Microsecond, func(e *simtime.Env) {
			cq.Push(e, CQE{WRID: 42})
		})
		cqe, ok := cq.PollTimeout(p, 10*time.Microsecond)
		if !ok || cqe.WRID != 42 {
			t.Errorf("cqe = %+v ok=%v", cqe, ok)
		}
	})
	c.run(t)
}

func TestCQWaitAndBroadcast(t *testing.T) {
	c := newCluster(t, 1)
	cq := c.nic[0].CreateCQ()
	woken := 0
	for i := 0; i < 3; i++ {
		c.env.Go("waiter", func(p *simtime.Proc) {
			cq.Wait(p)
			woken++
		})
	}
	c.env.Go("caster", func(p *simtime.Proc) {
		p.Sleep(time.Microsecond)
		cq.Broadcast(p.Env())
	})
	c.run(t)
	if woken != 3 {
		t.Fatalf("woken = %d", woken)
	}
}

func TestWriteImmRNRExceededReportsError(t *testing.T) {
	// A signaled write-imm to a QP that never posts receives must
	// complete in error after the retry budget.
	c := newCluster(t, 2)
	src := c.physMR(t, 0, 4096, allPerm)
	dst := c.physMR(t, 1, 4096, allPerm)
	qa, _ := c.rcPair(0, 1)
	c.env.Go("sender", func(p *simtime.Proc) {
		_ = c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpWriteImm, WRID: 5, Signaled: true,
			LocalMR: src, Len: 8, RemoteKey: dst.Key(), Imm: 1,
		})
		cqe := qa.SendCQ().Poll(p)
		if cqe.Status != StatusRNRExceeded {
			t.Errorf("status = %v, want RNR_EXCEEDED", cqe.Status)
		}
	})
	c.run(t)
}

func TestSendBufferTooSmall(t *testing.T) {
	c := newCluster(t, 2)
	src := c.physMR(t, 0, 4096, allPerm)
	rbuf := c.physMR(t, 1, 4096, allPerm)
	qa, qb := c.rcPair(0, 1)
	_ = qb.PostRecv(PostedRecv{MR: rbuf, Len: 8, WRID: 3}) // too small for 64B
	c.env.Go("sender", func(p *simtime.Proc) {
		_ = c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpSend, WRID: 1, Signaled: true, LocalMR: src, Len: 64,
		})
		if cqe := qa.SendCQ().Poll(p); cqe.Status != StatusLengthError {
			t.Errorf("send status = %v, want LENGTH_ERROR", cqe.Status)
		}
	})
	c.env.Go("receiver", func(p *simtime.Proc) {
		if cqe := qb.RecvCQ().Poll(p); cqe.Status != StatusLengthError {
			t.Errorf("recv status = %v, want LENGTH_ERROR", cqe.Status)
		}
	})
	c.run(t)
}

func TestZeroLengthWriteImm(t *testing.T) {
	// Pure-IMM notifications (LITE's head updates) carry no payload.
	c := newCluster(t, 2)
	dst := c.physMR(t, 1, 4096, allPerm)
	imm := c.physMR(t, 1, 4096, allPerm)
	qa, qb := c.rcPair(0, 1)
	_ = qb.PostRecv(PostedRecv{MR: imm, Len: 0, WRID: 1})
	c.env.Go("sender", func(p *simtime.Proc) {
		_ = c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpWriteImm, Signaled: false, Len: 0,
			RemoteKey: dst.Key(), Imm: 0xABCD,
		})
	})
	c.env.Go("receiver", func(p *simtime.Proc) {
		cqe := qb.RecvCQ().Poll(p)
		if !cqe.HasImm || cqe.Imm != 0xABCD || cqe.Len != 0 {
			t.Errorf("cqe = %+v", cqe)
		}
	})
	c.run(t)
}

func TestUDToWrongQPTypeDropped(t *testing.T) {
	c := newCluster(t, 2)
	src := c.physMR(t, 0, 4096, allPerm)
	// Destination QPN exists but is RC, not UD: datagram silently lost.
	_, qb := c.rcPair(0, 1)
	qa := c.nic[0].CreateQP(UD, c.nic[0].CreateCQ(), c.nic[0].CreateCQ())
	c.env.Go("sender", func(p *simtime.Proc) {
		_ = c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpSend, WRID: 1, Signaled: true, LocalMR: src, Len: 16,
			DestNode: 1, DestQPN: qb.QPN(),
		})
		if cqe := qa.SendCQ().Poll(p); cqe.Status != StatusOK {
			t.Errorf("UD send local status = %v", cqe.Status)
		}
		p.Sleep(10 * time.Microsecond)
		if qb.RecvCQ().Len() != 0 {
			t.Error("RC QP received a UD datagram")
		}
	})
	c.run(t)
}

func TestPipelineBusyAndCacheStats(t *testing.T) {
	c := newCluster(t, 2)
	src := c.physMR(t, 0, 4096, allPerm)
	dst := c.physMR(t, 1, 4096, allPerm)
	qa, _ := c.rcPair(0, 1)
	c.env.Go("w", func(p *simtime.Proc) {
		_ = c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpWrite, WRID: 1, Signaled: true, LocalMR: src, Len: 64, RemoteKey: dst.Key(),
		})
		qa.SendCQ().Poll(p)
	})
	c.run(t)
	tx, rx, dma := c.nic[0].PipelineBusy()
	if tx == 0 || rx == 0 || dma == 0 {
		t.Fatalf("pipelines unused: %v %v %v", tx, rx, dma)
	}
	_, misses, _, _ := c.nic[1].CacheStats()
	if misses == 0 {
		t.Fatal("remote key cache never missed (cold start expected)")
	}
}
