package rnic

import (
	"encoding/binary"
	"errors"
	"testing"

	"lite/internal/obs"
	"lite/internal/simtime"
)

// word reads the 8-byte word at off of mr.
func word(t *testing.T, mr *MR, off int64) uint64 {
	t.Helper()
	var b [8]byte
	if err := mr.ReadAt(off, b[:]); err != nil {
		t.Fatal(err)
	}
	return binary.LittleEndian.Uint64(b[:])
}

func putWord(t *testing.T, mr *MR, off int64, v uint64) {
	t.Helper()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	if err := mr.WriteAt(off, b[:]); err != nil {
		t.Fatal(err)
	}
}

func TestMaskedAddFieldBoundaries(t *testing.T) {
	cases := []struct {
		val, delta, boundary, want uint64
	}{
		// Zero boundary degenerates to a plain 64-bit add.
		{10, 5, 0, 15},
		{^uint64(0), 1, 0, 0},
		// Split at bit 31: two 32-bit fields, low-field carry discarded.
		{0x00000000_ffffffff, 1, 1 << 31, 0},
		{0x00000001_ffffffff, 1, 1 << 31, 1 << 32},
		// High field increments independently.
		{0x00000002_00000005, 1<<32 | 3, 1 << 31, 0x00000003_00000008},
		// Eight 8-bit counters, each saturating mod 256.
		{0x01ff01ff01ff01ff, 0x0101010101010101, 0x8080808080808080, 0x0200020002000200},
	}
	for _, c := range cases {
		if got := MaskedAdd(c.val, c.delta, c.boundary); got != c.want {
			t.Errorf("MaskedAdd(%#x, %#x, %#x) = %#x, want %#x", c.val, c.delta, c.boundary, got, c.want)
		}
	}
}

func TestMaskedCASRule(t *testing.T) {
	all := ^uint64(0)
	cases := []struct {
		old, cmp, swp, cmpMask, swapMask, want uint64
	}{
		// Plain CAS: both masks all-ones.
		{5, 5, 9, all, all, 9},
		{5, 6, 9, all, all, 5},
		// Compare only the low byte; unmasked compare bits ignored.
		{0xab05, 0xcd05, 0xffff, 0xff, all, 0xffff},
		{0xab05, 0xcd06, 0xffff, 0xff, all, 0xab05},
		// Swap only the high byte of the low 16 bits.
		{0xab05, 5, 0x1200, 0xff, 0xff00, 0x1205},
		// Swap mask zero: a pure compare, the word never changes.
		{0xab05, 5, all, 0xff, 0, 0xab05},
	}
	for _, c := range cases {
		if got := maskedCASNext(c.old, c.cmp, c.swp, c.cmpMask, c.swapMask); got != c.want {
			t.Errorf("maskedCASNext(%#x, %#x, %#x, %#x, %#x) = %#x, want %#x",
				c.old, c.cmp, c.swp, c.cmpMask, c.swapMask, got, c.want)
		}
	}
}

func TestMaskedAtomicsOverWire(t *testing.T) {
	c := newCluster(t, 2)
	mr := c.physMR(t, 1, 4096, allPerm)
	qa, _ := c.rcPair(0, 1)
	putWord(t, mr, 0, 0xab05)
	putWord(t, mr, 8, 0x00000000_ffffffff)

	c.env.Go("atomics", func(p *simtime.Proc) {
		var res uint64
		buf := make([]byte, 8)
		post := func(wr WR) uint64 {
			wr.Signaled = true
			wr.Len = 8
			wr.LocalBuf = buf
			wr.AtomicResult = &res
			wr.RemoteKey = mr.Key()
			if err := c.nic[0].PostSend(p.Now(), qa, wr); err != nil {
				t.Fatal(err)
			}
			cqe := qa.SendCQ().Poll(p)
			if cqe.Status != StatusOK {
				t.Fatalf("atomic completion status = %v", cqe.Status)
			}
			return res
		}

		// Masked CAS: compare the low byte only, swap bits 8-15 only.
		old := post(WR{Kind: OpMaskCmpSwap, WRID: 1, RemoteOff: 0,
			Compare: 5, Swap: 0x1200, CompareMask: 0xff, SwapMask: 0xff00})
		if old != 0xab05 {
			t.Errorf("masked CAS returned %#x, want 0xab05", old)
		}
		if got := word(t, mr, 0); got != 0x1205 {
			t.Errorf("word after masked CAS = %#x, want 0x1205", got)
		}
		// The fetched value is also scattered into the local buffer.
		if lb := binary.LittleEndian.Uint64(buf); lb != 0xab05 {
			t.Errorf("local buffer = %#x, want 0xab05", lb)
		}

		// Masked CAS whose compare fails under the mask: no change.
		old = post(WR{Kind: OpMaskCmpSwap, WRID: 2, RemoteOff: 0,
			Compare: 6, Swap: 0xff00, CompareMask: 0xff, SwapMask: 0xff00})
		if old != 0x1205 || word(t, mr, 0) != 0x1205 {
			t.Errorf("failed masked CAS: old=%#x word=%#x, want both 0x1205", old, word(t, mr, 0))
		}

		// Masked FAA with a 32-bit boundary: the low field wraps without
		// carrying into the high field.
		old = post(WR{Kind: OpMaskFetchAdd, WRID: 3, RemoteOff: 8,
			Add: 1, BoundaryMask: 1 << 31})
		if old != 0x00000000_ffffffff {
			t.Errorf("masked FAA returned %#x", old)
		}
		if got := word(t, mr, 8); got != 0 {
			t.Errorf("word after masked FAA = %#x, want 0 (no carry across boundary)", got)
		}

		// Plain CAS still behaves (regression for the shared code path).
		old = post(WR{Kind: OpCmpSwap, WRID: 4, RemoteOff: 8, Compare: 0, Swap: 7})
		if old != 0 || word(t, mr, 8) != 7 {
			t.Errorf("plain CAS: old=%#x word=%#x, want 0 and 7", old, word(t, mr, 8))
		}
	})
	c.run(t)
}

func TestAtomicValidationTypedErrors(t *testing.T) {
	c := newCluster(t, 2)
	mr := c.physMR(t, 1, 4096, allPerm)
	qa, _ := c.rcPair(0, 1)
	buf := make([]byte, 16)

	c.env.Go("bad", func(p *simtime.Proc) {
		for _, kind := range []OpKind{OpFetchAdd, OpCmpSwap, OpMaskFetchAdd, OpMaskCmpSwap} {
			// Wrong size.
			err := c.nic[0].PostSend(p.Now(), qa, WR{
				Kind: kind, Len: 16, LocalBuf: buf, RemoteKey: mr.Key()})
			if !errors.Is(err, ErrAtomicSize) {
				t.Errorf("%v with Len=16: err = %v, want ErrAtomicSize", kind, err)
			}
			// Misaligned remote address.
			err = c.nic[0].PostSend(p.Now(), qa, WR{
				Kind: kind, Len: 8, LocalBuf: buf, RemoteKey: mr.Key(), RemoteOff: 4})
			if !errors.Is(err, ErrAtomicAlign) {
				t.Errorf("%v at offset 4: err = %v, want ErrAtomicAlign", kind, err)
			}
			// Atomics cannot be inline: the WQE carries operands, not payload.
			err = c.nic[0].PostSend(p.Now(), qa, WR{
				Kind: kind, Len: 8, LocalBuf: buf, RemoteKey: mr.Key(), Inline: true})
			if !errors.Is(err, ErrInlineKind) {
				t.Errorf("inline %v: err = %v, want ErrInlineKind", kind, err)
			}
		}
		// A batched chain with one malformed atomic posts nothing.
		err := c.nic[0].PostSendList(p.Now(), qa, []WR{
			{Kind: OpFetchAdd, WRID: 1, Len: 8, LocalBuf: buf, RemoteKey: mr.Key(), Add: 1},
			{Kind: OpCmpSwap, WRID: 2, Len: 8, LocalBuf: buf, RemoteKey: mr.Key(), RemoteOff: 4},
		})
		if !errors.Is(err, ErrAtomicAlign) {
			t.Errorf("chain with misaligned CAS: err = %v, want ErrAtomicAlign", err)
		}
		if got := word(t, mr, 0); got != 0 {
			t.Errorf("word changed to %#x by a rejected chain", got)
		}
	})
	c.run(t)
}

// TestConcurrentCASOneWinner races two CASes from different nodes at
// the same word with the same expected value: the responder NIC's rx
// pipeline serializes them, so exactly one must win and the loser must
// observe the winner's value.
func TestConcurrentCASOneWinner(t *testing.T) {
	c := newCluster(t, 3)
	mr := c.physMR(t, 2, 4096, allPerm)
	q02, _ := c.rcPair(0, 2)
	q12, _ := c.rcPair(1, 2)

	olds := make([]uint64, 2)
	for i, qp := range []*QP{q02, q12} {
		i, qp := i, qp
		src := i
		c.env.Go("racer", func(p *simtime.Proc) {
			var res uint64
			buf := make([]byte, 8)
			err := c.nic[src].PostSend(p.Now(), qp, WR{
				Kind: OpCmpSwap, WRID: 1, Signaled: true, Len: 8,
				LocalBuf: buf, RemoteKey: mr.Key(),
				Compare: 0, Swap: uint64(i) + 1,
				AtomicResult: &res,
			})
			if err != nil {
				t.Error(err)
				return
			}
			if cqe := qp.SendCQ().Poll(p); cqe.Status != StatusOK {
				t.Errorf("racer %d status %v", i, cqe.Status)
			}
			olds[i] = res
		})
	}
	c.run(t)

	winners := 0
	final := word(t, mr, 0)
	for i, old := range olds {
		if old == 0 {
			winners++
			if final != uint64(i)+1 {
				t.Errorf("racer %d won but word = %d", i, final)
			}
		} else if old != final {
			t.Errorf("loser %d fetched %d, want the winner's value %d", i, old, final)
		}
	}
	if winners != 1 {
		t.Fatalf("winners = %d, want exactly 1 (olds = %v)", winners, olds)
	}
}

// TestAtomicBatchedDoorbell posts a chain of atomics in one doorbell:
// they execute in order at the responder, each observing the previous
// result, and the atomic obs counters record every posting and
// execution.
func TestAtomicBatchedDoorbell(t *testing.T) {
	c := newCluster(t, 2)
	reg0, reg1 := obs.NewRegistry(0), obs.NewRegistry(1)
	c.nic[0].SetObs(reg0)
	c.nic[1].SetObs(reg1)
	mr := c.physMR(t, 1, 4096, allPerm)
	qa, _ := c.rcPair(0, 1)

	results := make([]uint64, 3)
	c.env.Go("batch", func(p *simtime.Proc) {
		bufs := make([][]byte, 3)
		wrs := make([]WR, 3)
		for i := range wrs {
			bufs[i] = make([]byte, 8)
			wrs[i] = WR{
				Kind: OpFetchAdd, WRID: uint64(i + 1), Signaled: true, Len: 8,
				LocalBuf: bufs[i], RemoteKey: mr.Key(), Add: 10,
				AtomicResult: &results[i],
			}
		}
		// The middle one is a masked CAS validating the first add landed.
		wrs[1] = WR{
			Kind: OpMaskCmpSwap, WRID: 2, Signaled: true, Len: 8,
			LocalBuf: bufs[1], RemoteKey: mr.Key(),
			Compare: 10, Swap: 0, CompareMask: 0xff, SwapMask: 0,
			AtomicResult: &results[1],
		}
		if err := c.nic[0].PostSendList(p.Now(), qa, wrs); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if cqe := qa.SendCQ().Poll(p); cqe.Status != StatusOK {
				t.Fatalf("completion %d status %v", i, cqe.Status)
			}
		}
	})
	c.run(t)

	if results[0] != 0 || results[1] != 10 || results[2] != 10 {
		t.Errorf("fetched values = %v, want [0 10 10]", results)
	}
	if got := word(t, mr, 0); got != 20 {
		t.Errorf("final word = %d, want 20", got)
	}
	if n := reg0.Counter("rnic.atomic.faa").Value(); n != 2 {
		t.Errorf("rnic.atomic.faa = %d, want 2", n)
	}
	if n := reg0.Counter("rnic.atomic.masked_cas").Value(); n != 1 {
		t.Errorf("rnic.atomic.masked_cas = %d, want 1", n)
	}
	if n := reg1.Counter("rnic.atomic.executed").Value(); n != 3 {
		t.Errorf("rnic.atomic.executed = %d, want 3", n)
	}
}
