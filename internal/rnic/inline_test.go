package rnic

import (
	"bytes"
	"fmt"
	"testing"

	"lite/internal/simtime"
)

// inlineWriteLatency measures one warmed small signaled write with the
// given inline setting and returns its completion latency.
func inlineWriteLatency(t *testing.T, inline bool) simtime.Time {
	t.Helper()
	c := newCluster(t, 2)
	src := c.physMR(t, 0, 4096, allPerm)
	dst := c.physMR(t, 1, 4096, allPerm)
	qa, _ := c.rcPair(0, 1)

	var lat simtime.Time
	c.env.Go("writer", func(p *simtime.Proc) {
		msg := []byte("inline wqe payload bytes")
		if err := src.WriteAt(0, msg); err != nil {
			t.Error(err)
		}
		// Warm the NIC SRAM caches so the measured post pays no
		// key/QP misses.
		_ = c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpWrite, WRID: 99, Signaled: true,
			LocalMR: src, Len: 1, RemoteKey: dst.Key(),
		})
		qa.SendCQ().Poll(p)
		start := p.Now()
		err := c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpWrite, WRID: 1, Signaled: true, Inline: inline,
			LocalMR: src, Len: int64(len(msg)), RemoteKey: dst.Key(), RemoteOff: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		cqe := qa.SendCQ().Poll(p)
		lat = p.Now() - start
		if cqe.Status != StatusOK || cqe.WRID != 1 {
			t.Errorf("cqe = %+v", cqe)
		}
		got := make([]byte, len(msg))
		if err := dst.ReadAt(64, got); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("remote memory = %q, want %q", got, msg)
		}
	})
	c.run(t)
	return lat
}

// An inline write must still move the data and must complete strictly
// faster than the same write through the DMA-read path: it skips both
// the WQE fetch (cheaper processing) and the payload DMA stage.
func TestInlineWriteFasterAndCorrect(t *testing.T) {
	dma := inlineWriteLatency(t, false)
	inl := inlineWriteLatency(t, true)
	if inl >= dma {
		t.Fatalf("inline write latency %v, want < non-inline %v", inl, dma)
	}
}

func TestInlineValidation(t *testing.T) {
	c := newCluster(t, 2)
	src := c.physMR(t, 0, 4096, allPerm)
	dst := c.physMR(t, 1, 4096, allPerm)
	qa, _ := c.rcPair(0, 1)
	c.env.Go("poster", func(p *simtime.Proc) {
		err := c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpWrite, WRID: 1, Inline: true,
			LocalMR: src, Len: int64(c.cfg.MaxInline) + 1, RemoteKey: dst.Key(),
		})
		if err != ErrInlineSize {
			t.Errorf("oversized inline: err = %v, want ErrInlineSize", err)
		}
		err = c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpRead, WRID: 2, Inline: true,
			LocalMR: src, Len: 8, RemoteKey: dst.Key(),
		})
		if err != ErrInlineKind {
			t.Errorf("inline read: err = %v, want ErrInlineKind", err)
		}
		// Exactly MaxInline is legal.
		err = c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpWrite, WRID: 3, Signaled: true, Inline: true,
			LocalMR: src, Len: int64(c.cfg.MaxInline), RemoteKey: dst.Key(),
		})
		if err != nil {
			t.Errorf("MaxInline-sized inline: %v", err)
		}
		qa.SendCQ().Poll(p)
	})
	c.run(t)
}

// A post list is validated in full before anything is dispatched: a
// malformed entry anywhere in the chain posts nothing.
func TestPostSendListValidatesWholeChain(t *testing.T) {
	c := newCluster(t, 2)
	src := c.physMR(t, 0, 4096, allPerm)
	dst := c.physMR(t, 1, 4096, allPerm)
	qa, _ := c.rcPair(0, 1)
	c.env.Go("poster", func(p *simtime.Proc) {
		if err := c.nic[0].PostSendList(p.Now(), qa, nil); err != ErrEmptyList {
			t.Errorf("empty list: err = %v, want ErrEmptyList", err)
		}
		before := c.nic[0].OpsPosted
		wrs := []WR{
			{Kind: OpWrite, WRID: 1, LocalMR: src, Len: 8, RemoteKey: dst.Key()},
			{Kind: OpWrite, WRID: 2, LocalMR: src, Len: int64(c.cfg.MaxInline) + 1, Inline: true, RemoteKey: dst.Key()},
		}
		if err := c.nic[0].PostSendList(p.Now(), qa, wrs); err != ErrInlineSize {
			t.Errorf("bad chain: err = %v, want ErrInlineSize", err)
		}
		if c.nic[0].OpsPosted != before {
			t.Errorf("bad chain dispatched %d ops, want 0", c.nic[0].OpsPosted-before)
		}
	})
	c.run(t)
}

// A valid chain posts all entries at one doorbell time; only the WRs
// marked signaled produce CQEs, and every write lands.
func TestPostSendListChainCompletes(t *testing.T) {
	c := newCluster(t, 2)
	src := c.physMR(t, 0, 4096, allPerm)
	dst := c.physMR(t, 1, 4096, allPerm)
	qa, _ := c.rcPair(0, 1)
	c.env.Go("poster", func(p *simtime.Proc) {
		const n = 3
		var wrs []WR
		for k := 0; k < n; k++ {
			msg := []byte(fmt.Sprintf("chain entry %d", k))
			if err := src.WriteAt(int64(k*64), msg); err != nil {
				t.Error(err)
			}
			wrs = append(wrs, WR{
				Kind: OpWrite, WRID: uint64(k + 1),
				LocalMR: src, LocalOff: int64(k * 64), Len: int64(len(msg)),
				RemoteKey: dst.Key(), RemoteOff: int64(k * 64),
				Signaled: k == n-1, Inline: true,
			})
		}
		if err := c.nic[0].PostSendList(p.Now(), qa, wrs); err != nil {
			t.Fatal(err)
		}
		cqe := qa.SendCQ().Poll(p)
		if cqe.WRID != n || cqe.Status != StatusOK {
			t.Errorf("cqe = %+v, want WRID %d OK", cqe, n)
		}
		if got, ok := qa.SendCQ().TryPoll(); ok {
			t.Errorf("unsignaled WR produced CQE %+v", got)
		}
		for k := 0; k < n; k++ {
			want := []byte(fmt.Sprintf("chain entry %d", k))
			got := make([]byte, len(want))
			if err := dst.ReadAt(int64(k*64), got); err != nil {
				t.Error(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("entry %d: remote = %q, want %q", k, got, want)
			}
		}
	})
	c.run(t)
}

func TestPostRecvList(t *testing.T) {
	c := newCluster(t, 2)
	mrA := c.physMR(t, 0, 4096, allPerm)
	mrB := c.physMR(t, 1, 4096, allPerm)
	_, qb := c.rcPair(0, 1)

	if err := qb.PostRecvList(nil); err != ErrEmptyList {
		t.Errorf("empty list: err = %v, want ErrEmptyList", err)
	}
	// An MR from another node anywhere in the batch rejects the whole
	// batch.
	bad := []PostedRecv{
		{MR: mrB, Len: 0},
		{MR: mrA, Len: 0},
	}
	if err := qb.PostRecvList(bad); err != ErrBadMR {
		t.Errorf("foreign MR: err = %v, want ErrBadMR", err)
	}
	if qb.RecvPosted() != 0 {
		t.Errorf("rejected batch left %d receives posted", qb.RecvPosted())
	}
	rs := make([]PostedRecv, 5)
	for k := range rs {
		rs[k] = PostedRecv{MR: mrB, Off: int64(k * 64), Len: 0}
	}
	if err := qb.PostRecvList(rs); err != nil {
		t.Fatal(err)
	}
	if qb.RecvPosted() != 5 {
		t.Errorf("RecvPosted = %d, want 5", qb.RecvPosted())
	}
}
