package rnic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLRUBasics(t *testing.T) {
	c := newLRU[int](2)
	if c.Access(1) {
		t.Fatal("first access must miss")
	}
	if !c.Access(1) {
		t.Fatal("second access must hit")
	}
	c.Access(2)
	c.Access(3) // evicts 1 (LRU)
	if c.Access(1) {
		t.Fatal("evicted key must miss")
	}
	// 1's re-insert evicted 2.
	if c.Access(2) {
		t.Fatal("2 should have been evicted")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 5 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestLRUAccessOrderMatters(t *testing.T) {
	c := newLRU[string](2)
	c.Access("a")
	c.Access("b")
	c.Access("a") // refresh a; b is now LRU
	c.Access("c") // evicts b
	if !c.Access("a") {
		t.Fatal("a should be resident")
	}
	if c.Access("b") {
		t.Fatal("b should be evicted")
	}
}

func TestLRUInvalidate(t *testing.T) {
	c := newLRU[int](4)
	c.Access(7)
	c.Invalidate(7)
	if c.Access(7) {
		t.Fatal("invalidated key must miss")
	}
	c.Invalidate(999) // no-op
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

// Property: the cache never exceeds capacity and behaves identically
// to a reference LRU implementation.
func TestQuickLRUMatchesReference(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		c := newLRU[int](capacity)
		// Reference: slice ordered most-recent first.
		var ref []int
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			k := rng.Intn(capacity * 3)
			// Reference behaviour.
			refHit := false
			for idx, v := range ref {
				if v == k {
					refHit = true
					ref = append(ref[:idx], ref[idx+1:]...)
					break
				}
			}
			ref = append([]int{k}, ref...)
			if len(ref) > capacity {
				ref = ref[:capacity]
			}
			if got := c.Access(k); got != refHit {
				t.Logf("key %d: got hit=%v, ref hit=%v", k, got, refHit)
				return false
			}
			if c.Len() > capacity {
				t.Logf("len %d > cap %d", c.Len(), capacity)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
