package rnic

import "lite/internal/simtime"

// Wait parks the caller until the CQ sees activity (a push or a
// broadcast). Callers must re-check the queue after waking; use it to
// build dispatchers that demultiplex completions by work-request id.
func (c *CQ) Wait(p *simtime.Proc) { c.cond.Wait(p) }

// WaitTimeout is Wait with a deadline; reports whether the wake came
// from a signal.
func (c *CQ) WaitTimeout(p *simtime.Proc, d simtime.Time) bool {
	return c.cond.WaitTimeout(p, d)
}

// Broadcast wakes every waiter on the CQ. Dispatchers call it after
// stashing a completion that belongs to another waiter.
func (c *CQ) Broadcast(e *simtime.Env) { c.cond.Broadcast(e) }
