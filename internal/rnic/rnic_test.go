package rnic

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"lite/internal/fabric"
	"lite/internal/hostmem"
	"lite/internal/params"
	"lite/internal/simtime"
)

type testCluster struct {
	env *simtime.Env
	cfg params.Config
	reg *Registry
	nic []*NIC
	as  []*hostmem.AddressSpace
}

func newCluster(t testing.TB, n int) *testCluster {
	t.Helper()
	c := &testCluster{env: simtime.NewEnv(), cfg: params.Default()}
	c.reg = NewRegistry(c.env, &c.cfg, fabric.New(&c.cfg))
	for i := 0; i < n; i++ {
		mem := hostmem.New(1<<30, c.cfg.PageSize)
		nic, err := c.reg.NewNIC(i, mem)
		if err != nil {
			t.Fatal(err)
		}
		c.nic = append(c.nic, nic)
		c.as = append(c.as, hostmem.NewAddressSpace(mem))
	}
	return c
}

// physMR allocates contiguous physical memory and registers it.
func (c *testCluster) physMR(t testing.TB, node int, size int64, perm Perm) *MR {
	t.Helper()
	pa, err := c.nic[node].Mem().AllocContiguous(size)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := c.nic[node].RegisterPhysMR(c.as[node], pa, size, perm)
	if err != nil {
		t.Fatal(err)
	}
	return mr
}

func (c *testCluster) rcPair(a, b int) (*QP, *QP) {
	qa := c.nic[a].CreateQP(RC, c.nic[a].CreateCQ(), c.nic[a].CreateCQ())
	qb := c.nic[b].CreateQP(RC, c.nic[b].CreateCQ(), c.nic[b].CreateCQ())
	qa.Connect(b, qb.QPN())
	qb.Connect(a, qa.QPN())
	return qa, qb
}

func (c *testCluster) run(t testing.TB) {
	t.Helper()
	if err := c.env.Run(); err != nil {
		t.Fatal(err)
	}
}

const allPerm = PermRead | PermWrite | PermAtomic

func TestRCWriteMovesData(t *testing.T) {
	c := newCluster(t, 2)
	src := c.physMR(t, 0, 4096, allPerm)
	dst := c.physMR(t, 1, 4096, allPerm)
	qa, _ := c.rcPair(0, 1)

	var lat simtime.Time
	c.env.Go("writer", func(p *simtime.Proc) {
		msg := []byte("hello rdma world")
		if err := src.WriteAt(0, msg); err != nil {
			t.Error(err)
		}
		// Warm the NIC SRAM caches (first touch pays key/QP misses).
		_ = c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpWrite, WRID: 99, Signaled: true,
			LocalMR: src, Len: 1, RemoteKey: dst.Key(),
		})
		qa.SendCQ().Poll(p)
		start := p.Now()
		err := c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpWrite, WRID: 1, Signaled: true,
			LocalMR: src, Len: int64(len(msg)),
			RemoteKey: dst.Key(),
		})
		if err != nil {
			t.Fatal(err)
		}
		cqe := qa.SendCQ().Poll(p)
		lat = p.Now() - start
		if cqe.Status != StatusOK || cqe.WRID != 1 {
			t.Errorf("cqe = %+v", cqe)
		}
		got := make([]byte, len(msg))
		if err := dst.ReadAt(0, got); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("remote memory = %q, want %q", got, msg)
		}
	})
	c.run(t)
	if lat < 500*time.Nanosecond || lat > 3*time.Microsecond {
		t.Fatalf("small write latency = %v, want roughly 1-2us", lat)
	}
}

func TestRCReadFetchesData(t *testing.T) {
	c := newCluster(t, 2)
	local := c.physMR(t, 0, 4096, allPerm)
	remote := c.physMR(t, 1, 4096, allPerm)
	qa, _ := c.rcPair(0, 1)

	c.env.Go("reader", func(p *simtime.Proc) {
		want := []byte("remote payload bytes")
		if err := remote.WriteAt(64, want); err != nil {
			t.Error(err)
		}
		err := c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpRead, WRID: 9, Signaled: true,
			LocalMR: local, LocalOff: 8, Len: int64(len(want)),
			RemoteKey: remote.Key(), RemoteOff: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		cqe := qa.SendCQ().Poll(p)
		if cqe.Status != StatusOK {
			t.Fatalf("status = %v", cqe.Status)
		}
		got := make([]byte, len(want))
		_ = local.ReadAt(8, got)
		if !bytes.Equal(got, want) {
			t.Errorf("read = %q, want %q", got, want)
		}
	})
	c.run(t)
}

func TestWritePermissionDenied(t *testing.T) {
	c := newCluster(t, 2)
	src := c.physMR(t, 0, 4096, allPerm)
	dst := c.physMR(t, 1, 4096, PermRead) // no write permission
	qa, _ := c.rcPair(0, 1)

	c.env.Go("writer", func(p *simtime.Proc) {
		_ = c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpWrite, WRID: 2, Signaled: true,
			LocalMR: src, Len: 16, RemoteKey: dst.Key(),
		})
		cqe := qa.SendCQ().Poll(p)
		if cqe.Status != StatusAccessError {
			t.Errorf("status = %v, want ACCESS_ERROR", cqe.Status)
		}
		// Memory must be untouched.
		got := make([]byte, 16)
		_ = dst.ReadAt(0, got)
		if !bytes.Equal(got, make([]byte, 16)) {
			t.Error("remote memory modified despite permission error")
		}
	})
	c.run(t)
}

func TestBadKeyAndBounds(t *testing.T) {
	c := newCluster(t, 2)
	src := c.physMR(t, 0, 4096, allPerm)
	dst := c.physMR(t, 1, 4096, allPerm)
	qa, _ := c.rcPair(0, 1)

	c.env.Go("writer", func(p *simtime.Proc) {
		_ = c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpWrite, WRID: 1, Signaled: true,
			LocalMR: src, Len: 16, RemoteKey: 9999,
		})
		if cqe := qa.SendCQ().Poll(p); cqe.Status != StatusBadKey {
			t.Errorf("status = %v, want BAD_KEY", cqe.Status)
		}
		_ = c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpWrite, WRID: 2, Signaled: true,
			LocalMR: src, Len: 16, RemoteKey: dst.Key(), RemoteOff: 4090,
		})
		if cqe := qa.SendCQ().Poll(p); cqe.Status != StatusLengthError {
			t.Errorf("status = %v, want LENGTH_ERROR", cqe.Status)
		}
	})
	c.run(t)
}

func TestSendRecvRC(t *testing.T) {
	c := newCluster(t, 2)
	src := c.physMR(t, 0, 4096, allPerm)
	rbuf := c.physMR(t, 1, 4096, allPerm)
	qa, qb := c.rcPair(0, 1)

	if err := qb.PostRecv(PostedRecv{MR: rbuf, Off: 0, Len: 1024, WRID: 77}); err != nil {
		t.Fatal(err)
	}
	msg := []byte("two-sided message")
	c.env.Go("sender", func(p *simtime.Proc) {
		_ = src.WriteAt(0, msg)
		_ = c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpSend, WRID: 5, Signaled: true,
			LocalMR: src, Len: int64(len(msg)),
		})
		if cqe := qa.SendCQ().Poll(p); cqe.Status != StatusOK {
			t.Errorf("send status = %v", cqe.Status)
		}
	})
	c.env.Go("receiver", func(p *simtime.Proc) {
		cqe := qb.RecvCQ().Poll(p)
		if cqe.Status != StatusOK || cqe.RecvWRID != 77 || cqe.Len != int64(len(msg)) {
			t.Errorf("recv cqe = %+v", cqe)
		}
		got := make([]byte, len(msg))
		_ = rbuf.ReadAt(0, got)
		if !bytes.Equal(got, msg) {
			t.Errorf("recv buffer = %q", got)
		}
	})
	c.run(t)
}

func TestSendRNRRetryThenSuccess(t *testing.T) {
	c := newCluster(t, 2)
	src := c.physMR(t, 0, 4096, allPerm)
	rbuf := c.physMR(t, 1, 4096, allPerm)
	qa, qb := c.rcPair(0, 1)

	c.env.Go("sender", func(p *simtime.Proc) {
		_ = c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpSend, WRID: 1, Signaled: true, LocalMR: src, Len: 64,
		})
		if cqe := qa.SendCQ().Poll(p); cqe.Status != StatusOK {
			t.Errorf("send status = %v", cqe.Status)
		}
	})
	c.env.Go("late-poster", func(p *simtime.Proc) {
		p.Sleep(5 * time.Microsecond) // a couple of RNR retries happen first
		_ = qb.PostRecv(PostedRecv{MR: rbuf, Len: 64, WRID: 1})
		cqe := qb.RecvCQ().Poll(p)
		if cqe.Status != StatusOK {
			t.Errorf("recv status = %v", cqe.Status)
		}
	})
	c.run(t)
}

func TestSendRNRExceeded(t *testing.T) {
	c := newCluster(t, 2)
	src := c.physMR(t, 0, 4096, allPerm)
	qa, _ := c.rcPair(0, 1)

	c.env.Go("sender", func(p *simtime.Proc) {
		_ = c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpSend, WRID: 1, Signaled: true, LocalMR: src, Len: 64,
		})
		cqe := qa.SendCQ().Poll(p)
		if cqe.Status != StatusRNRExceeded {
			t.Errorf("status = %v, want RNR_EXCEEDED", cqe.Status)
		}
	})
	c.run(t)
}

func TestWriteImmDeliversImmediate(t *testing.T) {
	c := newCluster(t, 2)
	src := c.physMR(t, 0, 4096, allPerm)
	dst := c.physMR(t, 1, 4096, allPerm)
	imm := c.physMR(t, 1, 4096, allPerm)
	qa, qb := c.rcPair(0, 1)
	_ = qb.PostRecv(PostedRecv{MR: imm, Len: 0, WRID: 1})

	msg := []byte("imm payload")
	c.env.Go("sender", func(p *simtime.Proc) {
		_ = src.WriteAt(0, msg)
		_ = c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpWriteImm, WRID: 3, Signaled: false,
			LocalMR: src, Len: int64(len(msg)),
			RemoteKey: dst.Key(), RemoteOff: 256,
			Imm: 0xDEADBEEF,
		})
	})
	c.env.Go("receiver", func(p *simtime.Proc) {
		cqe := qb.RecvCQ().Poll(p)
		if !cqe.HasImm || cqe.Imm != 0xDEADBEEF || cqe.Kind != OpWriteImm {
			t.Errorf("cqe = %+v", cqe)
		}
		got := make([]byte, len(msg))
		_ = dst.ReadAt(256, got)
		if !bytes.Equal(got, msg) {
			t.Errorf("payload = %q", got)
		}
	})
	c.run(t)
}

func TestUDSendAndDrop(t *testing.T) {
	c := newCluster(t, 2)
	src := c.physMR(t, 0, 4096, allPerm)
	rbuf := c.physMR(t, 1, 4096, allPerm)
	qa := c.nic[0].CreateQP(UD, c.nic[0].CreateCQ(), c.nic[0].CreateCQ())
	qb := c.nic[1].CreateQP(UD, c.nic[1].CreateCQ(), c.nic[1].CreateCQ())

	c.env.Go("sender", func(p *simtime.Proc) {
		// First datagram: no posted receive => silently dropped.
		_ = c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpSend, WRID: 1, Signaled: true, LocalMR: src, Len: 32,
			DestNode: 1, DestQPN: qb.QPN(),
		})
		if cqe := qa.SendCQ().Poll(p); cqe.Status != StatusOK {
			t.Errorf("UD send should complete OK locally, got %v", cqe.Status)
		}
		p.Sleep(10 * time.Microsecond)
		if qb.Drops() != 1 {
			t.Errorf("drops = %d, want 1", qb.Drops())
		}
		// Second datagram: receive posted => delivered.
		_ = qb.PostRecv(PostedRecv{MR: rbuf, Len: 64, WRID: 2})
		_ = c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpSend, WRID: 2, Signaled: false, LocalMR: src, Len: 32,
			DestNode: 1, DestQPN: qb.QPN(),
		})
		cqe := qb.RecvCQ().Poll(p)
		if cqe.Status != StatusOK || cqe.SrcNode != 0 {
			t.Errorf("recv cqe = %+v", cqe)
		}
	})
	c.run(t)

	// One-sided on UD is rejected synchronously.
	if err := c.nic[0].PostSend(0, qa, WR{Kind: OpWrite, LocalMR: src, Len: 8}); err != ErrUDOneSided {
		t.Fatalf("err = %v, want ErrUDOneSided", err)
	}
}

func TestFetchAddSerializes(t *testing.T) {
	c := newCluster(t, 3)
	target := c.physMR(t, 2, 4096, allPerm)
	const perNode = 50

	seen := make(map[uint64]bool)
	for node := 0; node < 2; node++ {
		node := node
		local := c.physMR(t, node, 4096, allPerm)
		qa, _ := c.rcPair(node, 2)
		c.env.Go("adder", func(p *simtime.Proc) {
			for i := 0; i < perNode; i++ {
				var old uint64
				_ = c.nic[node].PostSend(p.Now(), qa, WR{
					Kind: OpFetchAdd, WRID: uint64(i), Signaled: true,
					LocalMR: local, Len: 8,
					RemoteKey: target.Key(), RemoteOff: 0,
					Add: 1, AtomicResult: &old,
				})
				cqe := qa.SendCQ().Poll(p)
				if cqe.Status != StatusOK {
					t.Errorf("atomic status = %v", cqe.Status)
				}
				if seen[old] {
					t.Errorf("fetch-add returned duplicate old value %d", old)
				}
				seen[old] = true
			}
		})
	}
	c.run(t)
	var b [8]byte
	_ = target.ReadAt(0, b[:])
	if got := binary.LittleEndian.Uint64(b[:]); got != 2*perNode {
		t.Fatalf("counter = %d, want %d", got, 2*perNode)
	}
}

func TestCmpSwap(t *testing.T) {
	c := newCluster(t, 2)
	local := c.physMR(t, 0, 4096, allPerm)
	target := c.physMR(t, 1, 4096, allPerm)
	qa, _ := c.rcPair(0, 1)

	c.env.Go("swapper", func(p *simtime.Proc) {
		var old uint64
		// Swap 0 -> 42 succeeds.
		_ = c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpCmpSwap, WRID: 1, Signaled: true, LocalMR: local, Len: 8,
			RemoteKey: target.Key(), Compare: 0, Swap: 42, AtomicResult: &old,
		})
		qa.SendCQ().Poll(p)
		if old != 0 {
			t.Errorf("old = %d, want 0", old)
		}
		// Swap 0 -> 7 fails (value is 42 now).
		_ = c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpCmpSwap, WRID: 2, Signaled: true, LocalMR: local, Len: 8,
			RemoteKey: target.Key(), Compare: 0, Swap: 7, AtomicResult: &old,
		})
		qa.SendCQ().Poll(p)
		if old != 42 {
			t.Errorf("old = %d, want 42", old)
		}
		var b [8]byte
		_ = target.ReadAt(0, b[:])
		if got := binary.LittleEndian.Uint64(b[:]); got != 42 {
			t.Errorf("value = %d, want 42 (failed swap must not write)", got)
		}
	})
	c.run(t)

	if err := c.nic[0].PostSend(0, qa, WR{Kind: OpFetchAdd, LocalMR: local, Len: 4}); err != ErrAtomicSize {
		t.Fatalf("err = %v, want ErrAtomicSize", err)
	}
}

// The Figure 4 mechanism: with many MRs, the NIC key cache thrashes and
// write latency grows; with one (or few) MRs it stays flat.
func TestMRKeyCacheThrashing(t *testing.T) {
	avgLatency := func(nMRs int) simtime.Time {
		c := newCluster(t, 2)
		src := c.physMR(t, 0, 4096, allPerm)
		mrs := make([]*MR, nMRs)
		for i := range mrs {
			mrs[i] = c.physMR(t, 1, 4096, allPerm)
		}
		qa, _ := c.rcPair(0, 1)
		var total simtime.Time
		const ops = 400
		c.env.Go("writer", func(p *simtime.Proc) {
			rng := uint64(12345)
			for i := 0; i < ops; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				mr := mrs[rng%uint64(nMRs)]
				start := p.Now()
				_ = c.nic[0].PostSend(p.Now(), qa, WR{
					Kind: OpWrite, WRID: uint64(i), Signaled: true,
					LocalMR: src, Len: 64, RemoteKey: mr.Key(),
				})
				qa.SendCQ().Poll(p)
				total += p.Now() - start
			}
		})
		c.run(t)
		return total / ops
	}
	small := avgLatency(10)
	big := avgLatency(5000)
	if big < small+500*time.Nanosecond {
		t.Fatalf("latency with 5000 MRs (%v) should clearly exceed 10 MRs (%v)", big, small)
	}
}

// The Figure 5 mechanism: virtual MRs larger than the NIC PTE cache
// thrash; physical registrations never touch the PTE cache.
func TestPTECacheThrashing(t *testing.T) {
	run := func(phys bool, size int64) simtime.Time {
		c := newCluster(t, 2)
		src := c.physMR(t, 0, 4096, allPerm)
		var mr *MR
		if phys {
			mr = c.physMR(t, 1, size, allPerm)
		} else {
			va, err := c.as[1].Map(size)
			if err != nil {
				t.Fatal(err)
			}
			var rerr error
			mr, rerr = c.nic[1].RegisterMR(c.as[1], va, size, allPerm)
			if rerr != nil {
				t.Fatal(rerr)
			}
		}
		qa, _ := c.rcPair(0, 1)
		var total simtime.Time
		const warm, ops = 400, 1000
		c.env.Go("writer", func(p *simtime.Proc) {
			rng := uint64(99)
			for i := 0; i < warm+ops; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				off := int64(rng % uint64(size-64))
				start := p.Now()
				_ = c.nic[0].PostSend(p.Now(), qa, WR{
					Kind: OpWrite, WRID: uint64(i), Signaled: true,
					LocalMR: src, Len: 64, RemoteKey: mr.Key(), RemoteOff: off,
				})
				qa.SendCQ().Poll(p)
				if i >= warm {
					total += p.Now() - start
				}
			}
		})
		c.run(t)
		return total / ops
	}
	const big = 64 << 20 // 64 MB >> 4 MB PTE cache
	virt := run(false, big)
	phys := run(true, big)
	if virt < phys+500*time.Nanosecond {
		t.Fatalf("virtual-MR latency (%v) should exceed phys-MR latency (%v) at 64MB", virt, phys)
	}
	smallVirt := run(false, 1<<20) // 1 MB fits the PTE cache
	if virt < smallVirt+500*time.Nanosecond {
		t.Fatalf("64MB virtual (%v) should exceed 1MB virtual (%v)", virt, smallVirt)
	}
}

func TestLinkDownTimesOut(t *testing.T) {
	c := newCluster(t, 2)
	src := c.physMR(t, 0, 4096, allPerm)
	dst := c.physMR(t, 1, 4096, allPerm)
	qa, _ := c.rcPair(0, 1)
	c.reg.Fabric().SetLinkDown(0, 1)

	c.env.Go("writer", func(p *simtime.Proc) {
		start := p.Now()
		_ = c.nic[0].PostSend(p.Now(), qa, WR{
			Kind: OpWrite, WRID: 1, Signaled: true,
			LocalMR: src, Len: 64, RemoteKey: dst.Key(),
		})
		cqe := qa.SendCQ().Poll(p)
		if cqe.Status != StatusTimeout {
			t.Errorf("status = %v, want TIMEOUT", cqe.Status)
		}
		if el := p.Now() - start; el < c.cfg.RCTimeout {
			t.Errorf("timed out after %v, want >= %v", el, c.cfg.RCTimeout)
		}
	})
	c.run(t)
}

func TestDeregisterUnpins(t *testing.T) {
	c := newCluster(t, 1)
	va, err := c.as[0].Map(4 * c.cfg.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := c.nic[0].RegisterMR(c.as[0], va, 4*c.cfg.PageSize, allPerm)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := c.as[0].Translate(va)
	if !c.nic[0].Mem().Pinned(pa) {
		t.Fatal("page not pinned after RegisterMR")
	}
	if err := c.nic[0].DeregisterMR(mr); err != nil {
		t.Fatal(err)
	}
	if c.nic[0].Mem().Pinned(pa) {
		t.Fatal("page still pinned after DeregisterMR")
	}
	if err := c.nic[0].DeregisterMR(mr); err != ErrBadMR {
		t.Fatalf("double deregister err = %v, want ErrBadMR", err)
	}
}

func TestRCOrderingPerQP(t *testing.T) {
	// Two writes to the same location posted back to back must land in
	// order: the second value wins.
	c := newCluster(t, 2)
	src := c.physMR(t, 0, 4096, allPerm)
	dst := c.physMR(t, 1, 4096, allPerm)
	qa, _ := c.rcPair(0, 1)

	c.env.Go("writer", func(p *simtime.Proc) {
		_ = src.WriteAt(0, []byte{1})
		_ = src.WriteAt(1, []byte{2})
		_ = c.nic[0].PostSend(p.Now(), qa, WR{Kind: OpWrite, WRID: 1, Signaled: false, LocalMR: src, LocalOff: 0, Len: 1, RemoteKey: dst.Key(), RemoteOff: 0})
		_ = c.nic[0].PostSend(p.Now(), qa, WR{Kind: OpWrite, WRID: 2, Signaled: true, LocalMR: src, LocalOff: 1, Len: 1, RemoteKey: dst.Key(), RemoteOff: 0})
		qa.SendCQ().Poll(p)
		var b [1]byte
		_ = dst.ReadAt(0, b[:])
		if b[0] != 2 {
			t.Errorf("final value = %d, want 2 (second write)", b[0])
		}
	})
	c.run(t)
}
