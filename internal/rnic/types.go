// Package rnic simulates an RDMA-capable network interface card and
// its scarce on-NIC SRAM, faithfully enough that the scalability
// pathologies the LITE paper attributes to native RDMA (Figures 4 and
// 5 of Tsai & Zhang, SOSP'17) emerge from cache behaviour rather than
// from curve fitting.
//
// Each NIC owns three SRAM caches — memory-region protection keys,
// page-table entries for virtual-address memory regions, and QP
// contexts — plus FIFO processing pipelines (transmit, receive) and a
// DMA engine, all modeled as simtime resource servers. Memory regions
// registered with physical addresses (the kernel-only path LITE
// exploits) bypass the PTE cache entirely.
package rnic

import (
	"errors"

	"lite/internal/hostmem"
	"lite/internal/obs"
	"lite/internal/simtime"
)

// OpKind identifies a work-request or completion type.
type OpKind int

// Work-request kinds.
const (
	OpWrite OpKind = iota
	OpWriteImm
	OpRead
	OpSend
	OpRecv
	OpFetchAdd
	OpCmpSwap
	// Masked extended atomics (ConnectX "extended atomic operations"):
	// a masked compare-and-swap compares and swaps only under caller
	// masks, and a masked fetch-and-add treats the 64-bit word as
	// independent fields whose carries do not cross the boundary mask.
	OpMaskCmpSwap
	OpMaskFetchAdd
)

func (k OpKind) String() string {
	switch k {
	case OpWrite:
		return "WRITE"
	case OpWriteImm:
		return "WRITE_IMM"
	case OpRead:
		return "READ"
	case OpSend:
		return "SEND"
	case OpRecv:
		return "RECV"
	case OpFetchAdd:
		return "FETCH_ADD"
	case OpCmpSwap:
		return "CMP_SWAP"
	case OpMaskCmpSwap:
		return "MASK_CMP_SWAP"
	case OpMaskFetchAdd:
		return "MASK_FETCH_ADD"
	}
	return "UNKNOWN"
}

// IsAtomic reports whether the kind is one of the atomic verbs.
func (k OpKind) IsAtomic() bool {
	switch k {
	case OpFetchAdd, OpCmpSwap, OpMaskCmpSwap, OpMaskFetchAdd:
		return true
	}
	return false
}

// Status is a completion status.
type Status int

// Completion statuses.
const (
	StatusOK Status = iota
	StatusAccessError
	StatusTimeout
	StatusRNRExceeded
	StatusLengthError
	StatusBadKey
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusAccessError:
		return "ACCESS_ERROR"
	case StatusTimeout:
		return "TIMEOUT"
	case StatusRNRExceeded:
		return "RNR_EXCEEDED"
	case StatusLengthError:
		return "LENGTH_ERROR"
	case StatusBadKey:
		return "BAD_KEY"
	}
	return "UNKNOWN"
}

// Errors returned synchronously by posting paths.
var (
	ErrBadQPState  = errors.New("rnic: QP not connected")
	ErrBadMR       = errors.New("rnic: unknown or foreign memory region")
	ErrBounds      = errors.New("rnic: access outside memory region")
	ErrUDOneSided  = errors.New("rnic: one-sided and atomic verbs unsupported on UD")
	ErrAtomicSize  = errors.New("rnic: atomics operate on exactly 8 bytes")
	ErrAtomicAlign = errors.New("rnic: atomics require an 8-byte-aligned remote address")
	ErrInlineSize  = errors.New("rnic: inline payload exceeds MaxInline")
	ErrInlineKind  = errors.New("rnic: only writes and sends may be inline")
	ErrEmptyList   = errors.New("rnic: empty work-request list")
)

// Perm is an MR permission bitmask.
type Perm uint8

// Permission bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermAtomic
)

// MR is a registered memory region. Virtual MRs are backed by an
// address space and require per-page NIC translations; physical MRs
// (kernel-only registration) are addressed directly.
type MR struct {
	key  uint32
	node int
	size int64
	perm Perm

	phys bool
	pa   hostmem.PAddr
	as   *hostmem.AddressSpace
	va   hostmem.VAddr

	owner string // optional subsystem/tenant label for accounting
}

// Key returns the region's protection key (serves as lkey and rkey).
func (m *MR) Key() uint32 { return m.key }

// SetOwner labels the region with the subsystem that registered it
// (e.g. "lite/global"). Purely an accounting tag: it never affects
// permission checks or costs.
func (m *MR) SetOwner(o string) { m.owner = o }

// Owner returns the region's accounting label ("" if untagged).
func (m *MR) Owner() string { return m.owner }

// Size returns the region's length in bytes.
func (m *MR) Size() int64 { return m.size }

// Node returns the node the region lives on.
func (m *MR) Node() int { return m.node }

// Phys reports whether the region was registered with physical
// addresses (the kernel-only path).
func (m *MR) Phys() bool { return m.phys }

func (m *MR) checkRange(off, n int64) error {
	if off < 0 || n < 0 || off+n > m.size {
		return ErrBounds
	}
	return nil
}

// ReadAt copies len(buf) bytes at offset off out of the region.
func (m *MR) ReadAt(off int64, buf []byte) error {
	if err := m.checkRange(off, int64(len(buf))); err != nil {
		return err
	}
	if m.phys {
		return m.as.Mem().Read(m.pa+hostmem.PAddr(off), buf)
	}
	return m.as.ReadV(m.va+hostmem.VAddr(off), buf)
}

// WriteAt copies data into the region at offset off.
func (m *MR) WriteAt(off int64, data []byte) error {
	if err := m.checkRange(off, int64(len(data))); err != nil {
		return err
	}
	if m.phys {
		return m.as.Mem().Write(m.pa+hostmem.PAddr(off), data)
	}
	return m.as.WriteV(m.va+hostmem.VAddr(off), data)
}

// CQE is a completion-queue entry.
type CQE struct {
	WRID     uint64
	QPN      int
	Kind     OpKind
	Status   Status
	Imm      uint32
	HasImm   bool
	Len      int64
	SrcNode  int
	SrcQPN   int
	RecvWRID uint64 // for receive completions: the posted buffer's WRID
}

// CQ is a completion queue. Pollers wait on its condition variable;
// busy-polling callers charge the wait to their CPU account themselves.
type CQ struct {
	cqn int
	// q[head:] holds the pending completions. Consuming advances head
	// instead of re-slicing the base away, and Push compacts in place
	// when the tail is full — the backing array is reused forever
	// instead of reallocating once per queue lap (at 1M+ events the
	// completion path must be alloc-free).
	q    []CQE
	head int
	cond simtime.Cond
	// sliding restores the pre-ring consume-by-reslice discipline (see
	// NIC.SetCompatSlidingQueues).
	sliding bool
}

// CQN returns the completion queue number.
func (c *CQ) CQN() int { return c.cqn }

// Len returns the number of pending completions.
func (c *CQ) Len() int { return len(c.q) - c.head }

// Push appends a completion and wakes one poller. It may be called
// from scheduler callbacks.
func (c *CQ) Push(e *simtime.Env, cqe CQE) {
	if !c.sliding && c.head > 0 && len(c.q) == cap(c.q) {
		n := copy(c.q, c.q[c.head:])
		clear(c.q[n:])
		c.q = c.q[:n]
		c.head = 0
	}
	c.q = append(c.q, cqe)
	c.cond.Signal(e)
}

// TryPoll removes and returns the oldest completion, if any.
func (c *CQ) TryPoll() (CQE, bool) {
	if c.head == len(c.q) {
		return CQE{}, false
	}
	cqe := c.q[c.head]
	if c.sliding {
		c.q = c.q[1:] // head stays 0; append reallocates each lap
		return cqe, true
	}
	c.q[c.head] = CQE{} // release references held by the slot
	c.head++
	if c.head == len(c.q) {
		c.q = c.q[:0]
		c.head = 0
	}
	return cqe, true
}

// Poll blocks until a completion is available and returns it. The
// caller decides whether the wait was a busy-poll (and charges CPU
// accordingly) or a sleep.
func (c *CQ) Poll(p *simtime.Proc) CQE {
	for {
		if cqe, ok := c.TryPoll(); ok {
			return cqe
		}
		c.cond.Wait(p)
	}
}

// PollTimeout is Poll with a deadline; ok is false on timeout.
func (c *CQ) PollTimeout(p *simtime.Proc, d simtime.Time) (CQE, bool) {
	deadline := p.Now() + d
	for {
		if cqe, ok := c.TryPoll(); ok {
			return cqe, true
		}
		remain := deadline - p.Now()
		if remain <= 0 {
			return CQE{}, false
		}
		c.cond.WaitTimeout(p, remain)
	}
}

// QPType selects the transport.
type QPType int

// Transports.
const (
	RC QPType = iota // reliable connection
	UD               // unreliable datagram
)

// PostedRecv is a receive buffer posted to a QP's receive queue.
type PostedRecv struct {
	MR   *MR
	Off  int64
	Len  int64
	WRID uint64
}

// QP is a queue pair.
type QP struct {
	qpn  int
	nic  *NIC
	typ  QPType
	conn bool
	// RC peer.
	remoteNode int
	remoteQPN  int

	sendCQ *CQ
	recvCQ *CQ
	// rq[rqHead:] holds the posted receives, consumed by advancing
	// rqHead and compacted in place on post — same alloc-free ring
	// discipline as CQ.q (the restock path was the simulator's single
	// largest allocation source before this).
	rq     []PostedRecv
	rqHead int

	// Low-water notification (see SetRecvLowWater): fires once when the
	// posted-receive count crosses below lowWater, re-arms when a
	// restock brings it back to lowWater or above.
	lowWater int
	lowFn    func(*QP)
	lowFired bool

	drops int64 // UD datagrams dropped for lack of a posted receive

	// sliding restores the pre-ring consume-by-reslice discipline (see
	// NIC.SetCompatSlidingQueues).
	sliding bool

	owner string // optional subsystem/tenant label for accounting
}

// QPN returns the queue pair number (unique per NIC).
func (q *QP) QPN() int { return q.qpn }

// SetOwner labels the QP with the subsystem that created it (e.g.
// "lite/shared-mesh"). Purely an accounting tag — multi-tenant audits
// use it to prove QP counts scale with nodes, not tenants.
func (q *QP) SetOwner(o string) { q.owner = o }

// Owner returns the QP's accounting label ("" if untagged).
func (q *QP) Owner() string { return q.owner }

// Type returns the transport type.
func (q *QP) Type() QPType { return q.typ }

// NIC returns the owning NIC.
func (q *QP) NIC() *NIC { return q.nic }

// SendCQ returns the send completion queue.
func (q *QP) SendCQ() *CQ { return q.sendCQ }

// RecvCQ returns the receive completion queue.
func (q *QP) RecvCQ() *CQ { return q.recvCQ }

// Connect pairs an RC QP with a remote QP. UD QPs need no connection.
func (q *QP) Connect(remoteNode, remoteQPN int) {
	q.remoteNode = remoteNode
	q.remoteQPN = remoteQPN
	q.conn = true
}

// Connected reports whether an RC QP has been paired.
func (q *QP) Connected() bool { return q.conn }

// RemoteNode returns the connected peer's node id (RC only).
func (q *QP) RemoteNode() int { return q.remoteNode }

// RemoteQPN returns the connected peer's queue pair number (RC only).
func (q *QP) RemoteQPN() int { return q.remoteQPN }

// SetRecvLowWater arms a low-water notification on the receive queue:
// fn runs — synchronously, in whatever context consumed the receive —
// when the posted count crosses from >= lw to < lw, and re-arms once a
// restock brings the count back to lw or above. The callback is pure
// host-side bookkeeping and must not consume virtual time. LITE's
// background reposter uses it to find the QPs needing an IMM-buffer
// restock in O(QPs below low water) instead of scanning every peer's
// QPs on each completion.
func (q *QP) SetRecvLowWater(lw int, fn func(*QP)) {
	q.lowWater = lw
	q.lowFn = fn
	q.lowFired = false
	q.notifyRecvLow()
}

// notifyRecvLow fires the armed low-water callback if the queue just
// dropped below the mark.
func (q *QP) notifyRecvLow() {
	if q.lowFn != nil && !q.lowFired && q.RecvPosted() < q.lowWater {
		q.lowFired = true
		q.lowFn(q)
	}
}

// rearmRecvLow re-arms the notification after a restock refilled the
// queue.
func (q *QP) rearmRecvLow() {
	if q.lowFired && q.RecvPosted() >= q.lowWater {
		q.lowFired = false
	}
}

// compactRQ reclaims consumed slots when the next need entries would
// not fit in the tail, so the post reuses the backing array instead of
// growing it.
func (q *QP) compactRQ(need int) {
	if !q.sliding && q.rqHead > 0 && len(q.rq)+need > cap(q.rq) {
		n := copy(q.rq, q.rq[q.rqHead:])
		clear(q.rq[n:])
		q.rq = q.rq[:n]
		q.rqHead = 0
	}
}

// PostRecv posts a receive buffer. The buffer's MR must belong to the
// same node as the QP.
func (q *QP) PostRecv(r PostedRecv) error {
	if r.MR == nil || r.MR.node != q.nic.node {
		return ErrBadMR
	}
	if err := r.MR.checkRange(r.Off, r.Len); err != nil {
		return err
	}
	q.compactRQ(1)
	q.rq = append(q.rq, r)
	q.rearmRecvLow()
	return nil
}

// PostRecvList posts a batch of receive buffers behind one doorbell.
// The whole list is validated before any buffer is enqueued, so a bad
// entry leaves the receive queue untouched.
func (q *QP) PostRecvList(rs []PostedRecv) error {
	if len(rs) == 0 {
		return ErrEmptyList
	}
	for k := range rs {
		r := &rs[k]
		if r.MR == nil || r.MR.node != q.nic.node {
			return ErrBadMR
		}
		if err := r.MR.checkRange(r.Off, r.Len); err != nil {
			return err
		}
	}
	q.compactRQ(len(rs))
	q.rq = append(q.rq, rs...)
	q.rearmRecvLow()
	return nil
}

// RecvPosted returns the number of posted receive buffers.
func (q *QP) RecvPosted() int { return len(q.rq) - q.rqHead }

// Drops returns the number of UD datagrams dropped because no receive
// buffer was posted.
func (q *QP) Drops() int64 { return q.drops }

func (q *QP) popRecv() (PostedRecv, bool) {
	if q.rqHead == len(q.rq) {
		return PostedRecv{}, false
	}
	r := q.rq[q.rqHead]
	if q.sliding {
		q.rq = q.rq[1:] // rqHead stays 0; post reallocates each lap
		q.notifyRecvLow()
		return r, true
	}
	q.rq[q.rqHead] = PostedRecv{} // release the MR reference
	q.rqHead++
	if q.rqHead == len(q.rq) {
		q.rq = q.rq[:0]
		q.rqHead = 0
	}
	q.notifyRecvLow()
	return r, true
}

// WR is a work request for PostSend.
type WR struct {
	Kind     OpKind
	WRID     uint64
	Signaled bool

	// Inline requests that the payload travel inside the WQE itself:
	// the posting CPU PIO-copies it at the doorbell (the verbs layer
	// charges that copy), so the NIC skips both its WQE fetch and the
	// payload DMA read — the tx_dma pipeline stage disappears. Only
	// writes and sends of at most Params.MaxInline bytes qualify. The
	// buffer is free for reuse as soon as the post returns.
	Inline bool

	// Local buffer (gather source for writes/sends, scatter target for
	// reads and atomic results).
	LocalMR  *MR
	LocalOff int64
	Len      int64

	// LocalBuf, if non-nil, is used instead of LocalMR: the NIC
	// addresses the host buffer directly by physical address with no
	// local key lookup or translation. This models LITE's kernel path,
	// which covers all of physical memory with one always-resident
	// global registration and hands the NIC raw physical addresses.
	LocalBuf []byte

	// Remote buffer for one-sided operations.
	RemoteKey uint32
	RemoteOff int64

	// Immediate value for WriteImm.
	Imm uint32

	// UD addressing.
	DestNode int
	DestQPN  int

	// Atomics. The remote address (RemoteOff within the target MR's
	// physical placement) must be 8-byte aligned and Len must be 8.
	Add     uint64
	Compare uint64
	Swap    uint64

	// Masked-atomic operands (ConnectX extended atomics). For
	// OpMaskCmpSwap the compare applies only under CompareMask and the
	// swap replaces only the bits under SwapMask. For OpMaskFetchAdd
	// each set bit of BoundaryMask marks the most significant bit of an
	// independent field: carries do not propagate across it, so several
	// narrow counters can share one 64-bit word. Plain OpCmpSwap and
	// OpFetchAdd ignore all three.
	CompareMask  uint64
	SwapMask     uint64
	BoundaryMask uint64

	// AtomicResult, if non-nil, receives the 8-byte old value in
	// addition to it being written to the local buffer.
	AtomicResult *uint64

	// Trace, if non-nil, is the caller's observability span; the NIC
	// hangs its pipeline-stage spans off it. Purely in-simulation
	// metadata: it is never part of the wire image, so tracing cannot
	// perturb message sizes or timing.
	Trace *obs.Span
}
