package rnic

import "container/list"

// lru is a fixed-capacity LRU set used to model on-NIC SRAM caches
// (MR protection keys, page-table entries, QP contexts).
type lru[K comparable] struct {
	cap    int
	m      map[K]*list.Element
	l      *list.List
	hits   int64
	misses int64
}

func newLRU[K comparable](capacity int) *lru[K] {
	if capacity < 1 {
		capacity = 1
	}
	return &lru[K]{cap: capacity, m: make(map[K]*list.Element), l: list.New()}
}

// Access touches key k and reports whether it was resident (a hit).
// On a miss the key is inserted, evicting the least recently used
// entry if the cache is full.
func (c *lru[K]) Access(k K) bool {
	if e, ok := c.m[k]; ok {
		c.l.MoveToFront(e)
		c.hits++
		return true
	}
	c.misses++
	if c.l.Len() >= c.cap {
		old := c.l.Back()
		c.l.Remove(old)
		delete(c.m, old.Value.(K))
	}
	c.m[k] = c.l.PushFront(k)
	return false
}

// Invalidate removes k from the cache if present.
func (c *lru[K]) Invalidate(k K) {
	if e, ok := c.m[k]; ok {
		c.l.Remove(e)
		delete(c.m, k)
	}
}

// Len returns the number of resident entries.
func (c *lru[K]) Len() int { return c.l.Len() }

// Stats returns cumulative hits and misses.
func (c *lru[K]) Stats() (hits, misses int64) { return c.hits, c.misses }
