package bench

import (
	"errors"
	"fmt"

	"lite/internal/apps/kvstore"
	"lite/internal/lite"
	"lite/internal/load"
	"lite/internal/simtime"
	"lite/internal/tenant"
)

func init() {
	register("tenants", "1000 tenants on one shared kvstore: weighted QoS split, namespace isolation, O(nodes) QPs", tenants)
}

// The multi-tenant experiment: LITE as a shared service. A thousand
// registered tenants in three service classes (declared in the
// orion-bench-style config below) drive one kvstore deployment
// open-loop at ~2x its metadata-path capacity. The weighted tenant
// admission regime must split goodput by purchased QoS weight, one
// deliberately greedy tenant must be clamped to its class share, a
// leaked LMR name must not let one tenant map another's value, and
// the QP budget must stay n(n-1) x K — a function of nodes, never of
// tenants. Each gate is enforced as an experiment error, so the bench
// guard fails loudly if any regresses.
const tenantsConfig = `
# LITE-as-a-service isolation workload.
workload:
  name: tenants
  user-count: 1_000
  operations:
    - op: put
      weight: 60
    - op: lookup
      weight: 40
  classes:
    - name: gold
      count: 100
      weight: 4
    - name: silver
      count: 300
      weight: 2
    - name: bronze
      count: 600
      weight: 1
  greedy:
    class: bronze
    factor: 5
`

const (
	tenantsSeed    = 42
	tenantsClients = 4 // client nodes 0..3
	tenantsSrvA    = 4 // kvstore metadata servers
	tenantsSrvB    = 5
	tenantsThreads = 4   // RPC threads per server node
	tenantsRate    = 2.4 // aggregate offered load, req/us
	tenantsReqs    = 7200
)

// tenantsRun drives the configured workload and returns the parsed
// config, the built specs, per-tenant results, and the cluster (for
// the QP audit).
func tenants() (*Table, error) {
	w, err := tenant.ParseWorkload(tenantsConfig)
	if err != nil {
		return nil, err
	}
	reg := tenant.NewRegistry()
	specs, err := tenant.Build(reg, w)
	if err != nil {
		return nil, err
	}
	opts := tailOpts(32)
	opts.FairAdmission = true
	cls, dep, err := newLITEOpts(tenantsClients+2, opts)
	if err != nil {
		return nil, err
	}
	reg.Attach(dep)
	st, err := kvstore.Start(cls, dep, []int{tenantsSrvA, tenantsSrvB}, tenantsThreads)
	if err != nil {
		return nil, err
	}
	// One kvstore client per tenant, spread round-robin over the client
	// nodes. The store client carries the tenant's key-namespace prefix
	// and issues through the tenant's shared-QP lite client.
	nodes := make([]int, len(specs))
	kcs := make([]*kvstore.Client, len(specs))
	for i, s := range specs {
		nodes[i] = i % tenantsClients
		kcs[i] = st.NewTenantClient(nodes[i], s.Tenant.ID)
	}
	// The leak probe runs alongside the load: the victim (first gold
	// tenant) puts a value, a root observer resolves the backing LMR
	// name — deliberately leaking it — and a bronze tenant tries to map
	// it. The lite layer must answer with the typed tenant denial.
	var leakErr error
	leakDenied := false
	victim := specs[0]
	thiefID := specs[len(specs)-1].Tenant.ID
	cls.GoOn(0, "leak-probe", func(p *simtime.Proc) {
		if err := kcs[0].Put(p, "seed", []byte("victim-value")); err != nil {
			leakErr = fmt.Errorf("victim seed put: %w", err)
			return
		}
		name, err := st.NewClient(0).ResolveName(p, fmt.Sprintf("t%d/seed", victim.Tenant.ID))
		if err != nil {
			leakErr = fmt.Errorf("root resolve: %w", err)
			return
		}
		_, err = dep.Instance(0).TenantClient(thiefID).Map(p, name)
		if errors.Is(err, lite.ErrTenantDenied) {
			leakDenied = true
		} else {
			leakErr = fmt.Errorf("cross-tenant map of %q = %v, want ErrTenantDenied", name, err)
		}
	})
	// Prime each client node's server bindings and the admission cost
	// model before the schedule opens.
	for n := 0; n < tenantsClients; n++ {
		n := n
		cls.GoOn(n, "warmup", func(p *simtime.Proc) {
			c := st.NewClient(n)
			_ = c.Put(p, fmt.Sprintf("warm-%d-a", n), []byte("w"))
			_ = c.Put(p, fmt.Sprintf("warm-%d-b", n), []byte("w"))
		})
	}
	// One aggregate Poisson arrival stream thinned across all 1000
	// tenants by QoS weight (the greedy tenant by 5x its weight), issued
	// raw — a shed must count as a shed.
	scheds := load.SplitPoissonWeighted(tenantsSeed, tenantsRate, tenantsReqs,
		simtime.Time(50_000), tenant.RateWeights(specs))
	val := []byte("0123456789abcdef")
	res := load.RunMulti(cls, nodes, scheds, func(p *simtime.Proc, issuer, k int) load.Status {
		var err error
		if w.PickOp(tenantsSeed, specs[issuer].Tenant.ID, k) == "put" {
			err = kcs[issuer].PutOnce(p, fmt.Sprintf("k%d", k%8), val)
		} else if err = kcs[issuer].LookupOnce(p, "seed"); errors.Is(err, kvstore.ErrNotFound) {
			// A miss is a served lookup: only the victim ever put "seed".
			err = nil
		}
		switch {
		case err == nil:
			return load.StatusOK
		case errors.Is(err, lite.ErrOverloaded):
			return load.StatusShed
		case errors.Is(err, lite.ErrTimeout):
			return load.StatusTimeout
		default:
			return load.StatusError
		}
	})
	if err := cls.Run(); err != nil {
		return nil, err
	}
	if leakErr != nil {
		return nil, leakErr
	}
	t := &Table{
		ID:     "tenants",
		Title:  "1000 tenants, three QoS classes, one shared kvstore at ~2x metadata capacity",
		Header: []string{"Class", "Tenants", "Weight", "Issued", "OK", "Shed", "Timeout", "OK/weight-unit", "p99 (us)"},
	}
	// Aggregate per class; the greedy tenant is reported as its own row
	// and excluded from its class's weighted-split arithmetic.
	type agg struct {
		count, weight int
		rs            []*load.Result
	}
	order := []string{}
	classes := map[string]*agg{}
	var greedy *load.Result
	var greedyW int
	for i, s := range specs {
		if s.Greedy {
			greedy = res[i]
			greedyW = s.Tenant.Weight
			continue
		}
		a := classes[s.Class]
		if a == nil {
			a = &agg{weight: s.Tenant.Weight}
			classes[s.Class] = a
			order = append(order, s.Class)
		}
		a.count++
		a.rs = append(a.rs, res[i])
	}
	perUnit := map[string]float64{}
	for _, name := range order {
		a := classes[name]
		m := load.Merge(a.rs)
		unitOK := float64(m.OK) / float64(a.count*a.weight)
		perUnit[name] = unitOK
		t.AddRow(name, fmt.Sprintf("%d", a.count), fmt.Sprintf("%d", a.weight),
			fmt.Sprintf("%d", m.Issued), fmt.Sprintf("%d", m.OK),
			fmt.Sprintf("%d", m.Shed), fmt.Sprintf("%d", m.Timeout),
			fmt.Sprintf("%.2f", unitOK), us(m.P99()))
	}
	t.AddRow("greedy(bronze,5x)", "1", fmt.Sprintf("%d", greedyW),
		fmt.Sprintf("%d", greedy.Issued), fmt.Sprintf("%d", greedy.OK),
		fmt.Sprintf("%d", greedy.Shed), fmt.Sprintf("%d", greedy.Timeout),
		fmt.Sprintf("%.2f", float64(greedy.OK)/float64(greedyW)), us(greedy.P99()))
	// Gate 1: the goodput split tracks the purchased weights within
	// 1.5x (per weight unit, max class over min class).
	lo, hi := perUnit[order[0]], perUnit[order[0]]
	for _, name := range order {
		if perUnit[name] < lo {
			lo = perUnit[name]
		}
		if perUnit[name] > hi {
			hi = perUnit[name]
		}
	}
	if lo <= 0 {
		return nil, fmt.Errorf("tenants: a class got zero goodput: %v", perUnit)
	}
	ratio := hi / lo
	t.Note("weighted split: OK per weight-unit max/min = %.2f across classes (gate: <= 1.5)", ratio)
	if ratio > 1.5 {
		return nil, fmt.Errorf("tenants: weighted goodput ratio %.2f exceeds 1.5", ratio)
	}
	// Gate 2: the greedy tenant is clamped, not rewarded — its excess
	// offered load sheds instead of displacing the well-behaved classes.
	if greedy.Shed == 0 {
		return nil, fmt.Errorf("tenants: greedy tenant was never clamped (0 sheds)")
	}
	t.Note("greedy bronze tenant at 5x offered load: %d/%d sheds; isolation p99 property is tested in internal/tenant", greedy.Shed, greedy.Issued)
	// Gate 3: zero cross-tenant leaks — the live steal probe was denied.
	if !leakDenied {
		return nil, fmt.Errorf("tenants: leak probe did not observe a denial")
	}
	t.Note("leak probe: root-resolved LMR name, cross-tenant LT_map denied with ErrTenantDenied (0 leaks)")
	// Gate 4: the QP budget is a function of nodes, never of tenants.
	meshQPs := 0
	for i := range cls.Nodes {
		meshQPs += cls.Nodes[i].NIC.QPCountByOwner("lite/shared-mesh")
	}
	n := tenantsClients + 2
	want := n * (n - 1) * opts.QPsPerPair
	if meshQPs != want {
		return nil, fmt.Errorf("tenants: mesh QPs = %d, want n(n-1) x K = %d", meshQPs, want)
	}
	t.Note("QP audit: %d tenants share %d mesh QPs = n(n-1) x K with n=%d nodes, K=%d", len(specs), meshQPs, n, opts.QPsPerPair)
	return t, nil
}
