// The churn experiment kills an entire leaf — 25 hosts at one instant
// — out of a 500-node Clos cluster and replays the aftermath: the
// manager's probers declare 25 deaths, every hub revokes its leased
// spare connections toward the corpses, a mid-flight shard migration
// sourced inside the dead leaf aborts and its handoff record is
// purged, and when the whole leaf restarts at one instant the
// connection pools re-lease and replenish back to target. Gates: zero
// double executions across the storm, zero lost acked writes, the
// in-flight drain aborted cleanly and a post-revival retry succeeds,
// every revoked lease is re-established within a bounded virtual time,
// and the whole run replays bit-identically (run twice, compared
// field by field).
package bench

import (
	"encoding/binary"
	"fmt"
	"time"

	"lite/internal/apps/kvstore"
	"lite/internal/faults"
	"lite/internal/lite"
	"lite/internal/params"
	"lite/internal/simtime"
)

func init() {
	register("churn", "Churn storm: kill and revive a whole 25-host leaf under load", runChurn)
}

const (
	churnNodes     = 500
	churnLeafNodes = 25 // 20 leaves of 25 hosts
	churnSpines    = 5
	churnServers   = 8 // kvstore servers on 1..8 (leaf 0), manager on 0
	churnClients   = 200
	churnLeasePool = 1
	churnSeed      = 901

	// ctrFn is the double-execution ledger RPC; kvFn (FirstUserFunc+12)
	// and the throwaway store's churnMigFn stay clear of it.
	churnCtrFn = lite.FirstUserFunc
	churnMigFn = lite.FirstUserFunc + 1

	churnHeartbeat = 2 * time.Millisecond
	churnDrainAt   = 9500 * time.Microsecond // in flight when the leaf dies
	churnKillAt    = 10 * time.Millisecond
	churnReviveAt  = 25 * time.Millisecond
	churnDeadline  = 80 * time.Millisecond
	// churnHealBound caps the virtual time from the simultaneous
	// revival until every hub<->victim spare pool is back at target
	// (the re-lease latency gate). A hub replenishes its 25 victims'
	// slots serially at QPConnectTime each, plus the jittered start.
	churnHealBound = 25 * time.Millisecond
)

// churnVictims returns the nodes of the victim leaf (the last one:
// clients only, so the kvstore's acked data survives the blast).
func churnVictims() (lo, hi int) {
	return churnNodes - churnLeafNodes, churnNodes - 1
}

// churnOutcome is everything one run measures; two runs of the same
// seed must agree on every field.
type churnOutcome struct {
	events      int64
	virtual     simtime.Time
	opsOK       int64
	opsErr      int64
	victimOK    int64
	victimErr   int64
	acked       int64
	lost        int64
	doubles     int64
	revoked     int64
	replenished int64
	broadcasts  int64
	epochs      int64
	healNs      int64 // virtual ns from revival to full re-lease; -1 if never
	drainFlight bool  // the pre-kill drain was still running when the leaf died
	drainRetry  bool  // the post-revival drain retry succeeded
}

type churnAck struct {
	key, val string
}

func runChurnOnce() (*churnOutcome, error) {
	cfg := params.Default()
	cfg.ClosLeafNodes = churnLeafNodes
	cfg.ClosSpines = churnSpines
	opts := lite.DefaultOptions()
	opts.QPsPerPair = 1
	opts.HeartbeatInterval = simtime.Time(churnHeartbeat)
	opts.ProbeStagger = true
	opts.QPLeasePool = churnLeasePool
	opts.ReconnectOnRestart = true
	vLo, vHi := churnVictims()
	// Hub mesh plus the victim-leaf shard host: QPs exist only on pairs
	// touching the manager, a kvstore server, or the throwaway store's
	// home inside the victim leaf.
	opts.MeshPeers = func(a, b int) bool {
		return a <= churnServers || b <= churnServers || a == vLo || b == vLo
	}
	cls, dep, err := newLITECfg(&cfg, churnNodes, opts)
	if err != nil {
		return nil, err
	}

	servers := make([]int, churnServers)
	for i := range servers {
		servers[i] = i + 1
	}
	st, err := kvstore.Start(cls, dep, servers, 4)
	if err != nil {
		return nil, err
	}
	// Throwaway store: one shard homed inside the victim leaf, so the
	// storm catches a live migration mid-transfer.
	st2, err := kvstore.StartFn(cls, dep, []int{vLo}, 2, churnMigFn)
	if err != nil {
		return nil, err
	}

	// Double-execution ledger: a unique-id increment RPC on server 1.
	// The dedup windows must hold the line while the storm fails and
	// retries calls en masse.
	if err := dep.Instance(1).RegisterRPC(churnCtrFn); err != nil {
		return nil, err
	}
	execSeen := make(map[uint64]int64)
	for th := 0; th < 4; th++ {
		cls.GoDaemonOn(1, "churn-ctr-server", func(p *simtime.Proc) {
			c := dep.Instance(1).KernelClient()
			call, err := c.RecvRPC(p, churnCtrFn)
			for err == nil {
				execSeen[binary.LittleEndian.Uint64(call.Input)]++
				call, err = c.ReplyRecvRPC(p, call, []byte{1}, churnCtrFn)
			}
		})
	}

	out := &churnOutcome{healNs: -1}
	var acked []churnAck

	// client runs one node's op loop: alternating acked kvstore puts
	// and ledger increments, spaced so the storm lands mid-stream.
	// Victim-leaf clients keep issuing while their node is down (every
	// call fails fast with ErrNodeDead); their counts are recorded
	// separately — only survivor ops are gated on zero failures.
	client := func(node int, ops int, gap simtime.Time, victim bool) {
		kc := st.NewClient(node)
		lc := dep.Instance(node).KernelClient()
		cls.GoOn(node, "churn-client", func(p *simtime.Proc) {
			for j := 0; j < ops; j++ {
				var err error
				if j%2 == 0 {
					key := fmt.Sprintf("c%d-k%d", node, j)
					val := fmt.Sprintf("v%d-%d", node, j)
					if err = kc.Put(p, key, []byte(val)); err == nil {
						acked = append(acked, churnAck{key, val})
					}
				} else {
					var req [8]byte
					binary.LittleEndian.PutUint64(req[:], uint64(node)<<32|uint64(j))
					_, err = lc.RPCRetry(p, 1, churnCtrFn, req[:], 8)
				}
				switch {
				case victim && err != nil:
					out.victimErr++
				case victim:
					out.victimOK++
				case err != nil:
					out.opsErr++
				default:
					out.opsOK++
				}
				p.Sleep(gap)
			}
		})
	}
	for n := churnServers + 1; n <= churnServers+churnClients; n++ {
		client(n, 26, 2*time.Millisecond, false)
	}
	for v := vLo; v <= vHi; v++ {
		// Victim clients: puts acked before the blast must still be
		// readable afterwards.
		client(v, 60, 250*time.Microsecond, true)
	}

	// Seed the throwaway shard from a hub, then drain it out of the
	// victim leaf starting just before the kill: the blast lands
	// mid-transfer, the drain must abort cleanly (the source's proc
	// survives and sees the error), and the manager must purge the
	// stale handoff record so a post-revival retry can go through.
	var drain1Err error
	var drain1End simtime.Time
	cls.GoOn(8, "churn-mig-seed", func(p *simtime.Proc) {
		mc := st2.NewClient(8)
		for j := 0; j < 200; j++ {
			_ = mc.Put(p, fmt.Sprintf("m-k%d", j), []byte("m-val"))
		}
	})
	cls.GoOn(vLo, "churn-mig-driver", func(p *simtime.Proc) {
		p.SleepUntil(simtime.Time(churnDrainAt))
		drain1Err = st2.DrainShard(p, vLo, 8)
		drain1End = p.Now()
	})

	pl := faults.NewPlan(churnSeed)
	for v := vLo; v <= vHi; v++ {
		pl.CrashAt(v, simtime.Time(churnKillAt))
		pl.RestartAt(v, simtime.Time(churnReviveAt))
	}
	faults.Attach(cls, pl)

	// Monitor: wait out the re-lease heal (every hub<->victim spare
	// pool back at target), then retry the aborted drain and audit the
	// acked-write ledger. A regular proc, so it holds the run open.
	healed := func() bool {
		for h := 0; h <= churnServers; h++ {
			for v := vLo; v <= vHi; v++ {
				if dep.Instance(h).LeaseSpares(v) < churnLeasePool ||
					dep.Instance(v).LeaseSpares(h) < churnLeasePool {
					return false
				}
			}
		}
		return true
	}
	drain2OK := false
	cls.GoOn(0, "churn-monitor", func(p *simtime.Proc) {
		p.SleepUntil(simtime.Time(churnReviveAt))
		for !healed() {
			if p.Now() >= simtime.Time(churnDeadline) {
				return
			}
			p.Sleep(50 * time.Microsecond)
		}
		out.healNs = int64(p.Now() - simtime.Time(churnReviveAt))
		var wg simtime.WaitGroup
		wg.Add(1)
		cls.GoOn(vLo, "churn-drain-retry", func(q *simtime.Proc) {
			defer wg.Done(q.Env())
			drain2OK = st2.DrainShard(q, vLo, 8) == nil
		})
		wg.Wait(p)
		kc := st.NewClient(0)
		for _, a := range acked {
			got, err := kc.Get(p, a.key)
			if err != nil || string(got) != a.val {
				out.lost++
			}
		}
	})

	if err := cls.Run(); err != nil {
		return nil, err
	}
	for _, n := range execSeen {
		if n > 1 {
			out.doubles++
		}
	}
	out.acked = int64(len(acked))
	out.drainFlight = drain1Err != nil && drain1End >= simtime.Time(churnKillAt)
	out.drainRetry = drain2OK
	out.revoked = cls.Obs.Total("lite.lease.revoked")
	out.replenished = cls.Obs.Total("lite.lease.replenished")
	out.broadcasts = cls.Obs.Total("lite.membership.broadcasts")
	out.epochs = cls.Obs.Total("lite.membership.epochs")
	out.events = cls.Env.Events()
	out.virtual = cls.Env.Now()
	return out, nil
}

func runChurn() (*Table, error) {
	a, err := runChurnOnce()
	if err != nil {
		return nil, fmt.Errorf("churn: %w", err)
	}
	b, err := runChurnOnce()
	if err != nil {
		return nil, fmt.Errorf("churn: rerun: %w", err)
	}
	tab := &Table{
		ID:     "churn",
		Title:  "Churn storm: a 25-host leaf dies and revives at one instant under 225 clients",
		Header: []string{"metric", "value"},
	}
	row := func(k, v string) { tab.AddRow(k, v) }
	row("ops_ok", fmt.Sprintf("%d", a.opsOK))
	row("ops_err", fmt.Sprintf("%d", a.opsErr))
	row("victim_ops_ok", fmt.Sprintf("%d", a.victimOK))
	row("victim_ops_err", fmt.Sprintf("%d", a.victimErr))
	row("acked_writes", fmt.Sprintf("%d", a.acked))
	row("lost_acked", fmt.Sprintf("%d", a.lost))
	row("double_execs", fmt.Sprintf("%d", a.doubles))
	row("leases_revoked", fmt.Sprintf("%d", a.revoked))
	row("leases_replenished", fmt.Sprintf("%d", a.replenished))
	row("membership_broadcasts", fmt.Sprintf("%d", a.broadcasts))
	row("membership_epochs", fmt.Sprintf("%d", a.epochs))
	row("heal_ms", fmt.Sprintf("%.3f", float64(a.healNs)/1e6))
	row("drain_in_flight", fmt.Sprintf("%v", a.drainFlight))
	row("drain_retry_ok", fmt.Sprintf("%v", a.drainRetry))
	tab.Note("topology: %d nodes over %d leaves x %d spines; leaf %d (nodes %d..%d) killed at %v, revived at %v",
		churnNodes, churnNodes/churnLeafNodes, churnSpines, (churnNodes-1)/churnLeafNodes,
		churnNodes-churnLeafNodes, churnNodes-1, churnKillAt, churnReviveAt)
	tab.Note("heal = virtual time from revival until every hub<->victim spare pool is back at target (%d per pair)", churnLeasePool)

	if *a != *b {
		return tab, fmt.Errorf("churn: runs diverge: %+v vs %+v", a, b)
	}
	if a.doubles != 0 {
		return tab, fmt.Errorf("churn: %d unique requests executed more than once", a.doubles)
	}
	if a.lost != 0 {
		return tab, fmt.Errorf("churn: %d acked writes lost", a.lost)
	}
	if a.opsErr != 0 {
		return tab, fmt.Errorf("churn: %d survivor ops failed", a.opsErr)
	}
	if a.revoked == 0 || a.replenished == 0 {
		return tab, fmt.Errorf("churn: storm did not exercise the lease pool (revoked=%d replenished=%d)", a.revoked, a.replenished)
	}
	if a.healNs < 0 {
		return tab, fmt.Errorf("churn: revoked leases never fully re-established by the %v deadline", churnDeadline)
	}
	if a.healNs > int64(simtime.Time(churnHealBound)) {
		return tab, fmt.Errorf("churn: re-lease took %.3fms, bound %v", float64(a.healNs)/1e6, churnHealBound)
	}
	if !a.drainFlight {
		return tab, fmt.Errorf("churn: the shard drain was not in flight when the leaf died")
	}
	if !a.drainRetry {
		return tab, fmt.Errorf("churn: post-revival drain retry failed (stale handoff not purged?)")
	}
	return tab, nil
}
