// The scale experiment makes the simulator itself the system under
// test: a 500-node two-tier Clos cluster running a kvstore + tenants
// mix, executed on the identical workload by the post-PR simulator
// (calendar-queue scheduler, hub mesh, dirty-list restock — twice, as
// a same-scheduler determinism check), by the legacy binary-heap
// scheduler on the same hub-mesh workload, and by the pre-PR
// configuration (heap scheduler + full K×N mesh + restock scan +
// sliding queues) — reporting virtual-time results plus host
// bring-up/run wall time, CPU time, and end-to-end events per CPU
// second for each, and gating on the post-PR speedup.
//
// This file measures the simulator's own host-time throughput (events
// per CPU second): the host clocks are the measurement here, never an
// input to virtual-time behavior, hence the lint waiver.
//
//simlint:allow-wallclock wall time is the measurement, not an input
package bench

import (
	"errors"
	"fmt"
	"runtime"
	"syscall"
	"time"

	"lite/internal/apps/kvstore"
	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/params"
	"lite/internal/simtime"
	"lite/internal/tenant"
)

func init() {
	register("scale", "500-node Clos cluster: kvstore+tenants mix, post-PR simulator vs pre-PR baseline", runScale)
}

const (
	scaleNodes     = 500
	scaleLeafNodes = 25 // 20 leaves of 25 hosts
	scaleSpines    = 5  // uplinks at host link rate -> 5x oversubscribed leaves
	scaleServers   = 8  // kvstore servers on nodes 1..8, manager on 0
	scaleThreads   = 4  // RPC threads per server node
	scaleOps       = 48 // closed-loop ops per client node
	scaleMinEvents = 1_000_000
	scaleMinGain   = 5.0 // required post-PR speedup over the pre-PR baseline
)

// scaleOutcome is one scheduler's run of the identical workload. boot
// is the host wall time to stand the cluster up (node construction,
// the QP mesh, control rings, kvstore); run is the host wall time to
// simulate the workload to completion; cpu is the process CPU time
// the whole thing consumed. Events per second is end-to-end — at 500
// nodes the pre-PR full-mesh bring-up is a first-class part of what
// it costs to complete an experiment.
type scaleOutcome struct {
	events  int64
	virtual simtime.Time
	boot    time.Duration
	run     time.Duration
	cpu     time.Duration
	ops     int64
	sheds   int64
	errs    int64
}

// eventsPerSec is throughput against CPU time, not wall time. The
// simulator is single-threaded, so CPU seconds measure the work an
// experiment costs; unlike wall time they do not inflate while the
// process sits descheduled behind a noisy host neighbor, which on
// shared machines is the difference between a reproducible figure and
// a coin flip. Wall times are still reported per phase for context.
func (o *scaleOutcome) eventsPerSec() float64 {
	if o.cpu <= 0 {
		return 0
	}
	return float64(o.events) / o.cpu.Seconds()
}

// cpuTime returns the CPU time (user + system) consumed by the process
// so far. Deltas around a measured region are immune to host
// descheduling in a way wall-clock deltas are not.
func cpuTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// scaleWorkload builds the 500-node cluster on the given environment
// and drives the mix to completion. Everything inside is seeded and
// virtual, so two calls with different schedulers must produce the
// same events, virtual duration, op count, and error count.
//
// prePR additionally reverts the bring-up and hot path to their
// pre-calendar-queue shape: a full K×N QP mesh (MeshPeers did not
// exist, so 500 nodes meant ~125k QP pairs and ~250k control rings —
// the RDMAvisor connection explosion), the O(peers)-per-completion
// receive restock scan, and the reallocate-per-lap sliding completion
// and receive queues. Virtual-time behavior of the client mix is
// unchanged; what it restores is the pre-PR host cost per event.
func scaleWorkload(env *simtime.Env, prePR bool) (*scaleOutcome, error) {
	// Collect the previous run's garbage now so no run pays another
	// run's GC debt inside its measured window. (The clusters are
	// deliberately not track()ed: each becomes collectable as soon as
	// its outcome is extracted.)
	runtime.GC()
	cpuStart := cpuTime()
	bootStart := time.Now()
	cfg := params.Default()
	cfg.ClosLeafNodes = scaleLeafNodes
	cfg.ClosSpines = scaleSpines
	cls, err := cluster.NewOn(env, &cfg, scaleNodes, 4<<30)
	if err != nil {
		return nil, err
	}
	opts := lite.DefaultOptions()
	opts.QPsPerPair = 1
	if prePR {
		opts.CompatBaseline = true
	} else {
		// Hub mesh: every node brings up QPs and control rings to the
		// manager and the kvstore servers only.
		opts.MeshPeers = func(a, b int) bool { return a <= scaleServers || b <= scaleServers }
	}
	opts.AdmissionHighWater = 64
	opts.FairAdmission = true
	dep, err := lite.Start(cls, opts)
	if err != nil {
		return nil, err
	}
	reg := tenant.NewRegistry()
	var classes [3]*tenant.Tenant
	for i, c := range []struct {
		name   string
		weight int
	}{{"gold", 4}, {"silver", 2}, {"bronze", 1}} {
		t, err := reg.Register(c.name, "secret", c.weight)
		if err != nil {
			return nil, err
		}
		classes[i] = t
	}
	reg.Attach(dep)
	servers := make([]int, scaleServers)
	for i := range servers {
		servers[i] = i + 1
	}
	st, err := kvstore.Start(cls, dep, servers, scaleThreads)
	if err != nil {
		return nil, err
	}
	out := &scaleOutcome{}
	val := []byte("0123456789abcdef0123456789abcdef")
	for node := scaleServers + 1; node < scaleNodes; node++ {
		node := node
		// Every third client issues through a tenant service class
		// (weighted fair admission + namespaced keys); the rest are
		// plain kvstore clients.
		var kc *kvstore.Client
		if node%3 == 0 {
			kc = st.NewTenantClient(node, classes[(node/3)%3].ID)
		} else {
			kc = st.NewClient(node)
		}
		cls.GoOn(node, "scale-client", func(p *simtime.Proc) {
			rng := xorshift(uint64(node)*0x9e3779b97f4a7c15 + 1)
			for k := 0; k < scaleOps; k++ {
				key := fmt.Sprintf("k%d", rng.next()%4096)
				put := rng.next()%3 == 0
				var err error
				for attempt := 0; ; attempt++ {
					if put {
						err = kc.Put(p, key, val)
					} else if _, err = kc.Get(p, key); errors.Is(err, kvstore.ErrNotFound) {
						err = nil // a miss is a served lookup
					}
					// An overload shed is a definitive "not executed"
					// with a Retry-After hint; the well-behaved client
					// backs off by the hint and resubmits.
					var ov *lite.OverloadError
					if !errors.As(err, &ov) || attempt >= 50 {
						break
					}
					out.sheds++
					wait := ov.RetryAfter
					if wait <= 0 {
						wait = simtime.Time(time.Microsecond)
					}
					p.Sleep(wait)
				}
				out.ops++
				if err != nil {
					out.errs++
				}
			}
		})
	}
	out.boot = time.Since(bootStart)
	start := time.Now()
	runErr := env.Run()
	out.run = time.Since(start)
	out.cpu = cpuTime() - cpuStart
	out.events = env.Events()
	out.virtual = env.Now()
	if runErr != nil {
		return nil, runErr
	}
	return out, nil
}

// runScale executes the workload four times — the post-PR simulator
// (calendar queue, handoff-free wakeups, hub mesh, dirty-list
// restock) twice, the legacy heap scheduler on the same hub-mesh
// workload (isolating the scheduler), and the full pre-PR
// configuration (heap scheduler + full mesh + restock scan + sliding
// queues) — and gates: every run must agree bit-for-bit on the
// virtual timeline, the run must dispatch at least a million events,
// and the post-PR simulator must beat the pre-PR baseline by
// scaleMinGain in events per CPU second.
// Each gate is an experiment error, so bench-guard fails loudly on a
// scheduler performance or determinism regression.
func runScale() (*Table, error) {
	calRun, err := scaleWorkload(simtime.NewEnv(), false)
	if err != nil {
		return nil, fmt.Errorf("scale: calendar-queue run: %w", err)
	}
	// Second post-PR run: wall jitter on a shared host dwarfs the
	// post-PR row's small total, so the reported wall is the better of
	// two runs — and the two runs double as a same-scheduler
	// determinism check (they must agree bit-for-bit).
	calRun2, err := scaleWorkload(simtime.NewEnv(), false)
	if err != nil {
		return nil, fmt.Errorf("scale: calendar-queue rerun: %w", err)
	}
	if calRun2.cpu < calRun.cpu {
		calRun, calRun2 = calRun2, calRun
	}
	heapRun, err := scaleWorkload(simtime.NewLegacyEnv(), false)
	if err != nil {
		return nil, fmt.Errorf("scale: legacy-heap run: %w", err)
	}
	preRun, err := scaleWorkload(simtime.NewLegacyEnv(), true)
	if err != nil {
		return nil, fmt.Errorf("scale: pre-PR baseline run: %w", err)
	}
	tab := &Table{
		ID:     "scale",
		Title:  "500-node Clos cluster: kvstore+tenants mix, post-PR simulator vs pre-PR baseline",
		Header: []string{"simulator", "events", "virtual_ms", "ops", "errs", "boot_ms", "run_ms", "cpu_ms", "events_per_sec"},
	}
	row := func(name string, o *scaleOutcome) {
		tab.AddRow(name,
			fmt.Sprintf("%d", o.events),
			fmt.Sprintf("%.3f", float64(o.virtual)/1e6),
			fmt.Sprintf("%d", o.ops),
			fmt.Sprintf("%d", o.errs),
			fmt.Sprintf("%.0f", float64(o.boot.Nanoseconds())/1e6),
			fmt.Sprintf("%.0f", float64(o.run.Nanoseconds())/1e6),
			fmt.Sprintf("%.0f", float64(o.cpu.Nanoseconds())/1e6),
			fmt.Sprintf("%.0f", o.eventsPerSec()),
		)
	}
	row("calendar-queue", calRun)
	row("legacy-heap", heapRun)
	row("pre-PR-full-mesh", preRun)
	tab.Events = calRun.events
	tab.Virtual = calRun.virtual
	tab.EventsPerSec = calRun.eventsPerSec()
	ratio := 0.0
	if preRun.eventsPerSec() > 0 {
		ratio = calRun.eventsPerSec() / preRun.eventsPerSec()
	}
	schedRatio := 0.0
	if heapRun.eventsPerSec() > 0 {
		schedRatio = calRun.eventsPerSec() / heapRun.eventsPerSec()
	}
	cfg := params.Default()
	cfg.ClosLeafNodes = scaleLeafNodes
	cfg.ClosSpines = scaleSpines
	tab.Note("topology: %d nodes over %d leaves x %d spines, %.1fx oversubscribed; hub mesh to manager+%d servers (pre-PR row: full %d-pair mesh + restock scan + sliding queues)",
		scaleNodes, scaleNodes/scaleLeafNodes, scaleSpines, cfg.ClosOversubscription(), scaleServers, scaleNodes*(scaleNodes-1)/2)
	tab.Note("speedup: %.2fx end-to-end events per CPU second over the pre-PR simulator (%.2fx from the scheduler alone); wall and CPU columns are host-dependent, virtual columns must match exactly", ratio, schedRatio)
	// Gate failures return the table too, so the failing numbers are
	// visible in the report next to the error.
	for _, o := range []struct {
		name string
		run  *scaleOutcome
	}{{"calendar-queue-rerun", calRun2}, {"legacy-heap", heapRun}, {"pre-PR-full-mesh", preRun}} {
		if calRun.events != o.run.events || calRun.virtual != o.run.virtual ||
			calRun.ops != o.run.ops || calRun.errs != o.run.errs {
			return tab, fmt.Errorf("scale: %s diverges from calendar-queue: (events=%d virtual=%v ops=%d errs=%d) vs (events=%d virtual=%v ops=%d errs=%d)",
				o.name, o.run.events, o.run.virtual, o.run.ops, o.run.errs,
				calRun.events, calRun.virtual, calRun.ops, calRun.errs)
		}
	}
	if calRun.errs != 0 {
		return tab, fmt.Errorf("scale: %d of %d client ops failed", calRun.errs, calRun.ops)
	}
	if calRun.events < scaleMinEvents {
		return tab, fmt.Errorf("scale: only %d events dispatched, want >= %d", calRun.events, scaleMinEvents)
	}
	if ratio < scaleMinGain {
		return tab, fmt.Errorf("scale: only %.2fx the pre-PR baseline in events/sec, want >= %.1fx", ratio, scaleMinGain)
	}
	return tab, nil
}
