package bench

import (
	"fmt"

	"lite/internal/apps/kvstore"
	"lite/internal/simtime"
	"lite/internal/workload"
)

func init() {
	register("kv-tput", "Key-value store on LITE: get latency and throughput", kvTput)
}

// kvTput exercises the motivating key-value workload (§2.2, §2.4): a
// store with thousands of per-value LMRs — the exact pattern that
// collapses native RDMA NIC SRAM in Figure 4 — served at one-sided
// read latency under LITE.
func kvTput() (*Table, error) {
	t := &Table{
		ID:     "kv-tput",
		Title:  "LITE key-value store (2 servers, Facebook value sizes)",
		Header: []string{"Metric", "Value"},
	}
	cls, dep, err := newLITE(4)
	if err != nil {
		return nil, err
	}
	store, err := kvstore.Start(cls, dep, []int{0, 1}, 4)
	if err != nil {
		return nil, err
	}
	const nKeys = 2000
	const clients = 8
	const getsPerClient = 200

	kv := workload.NewFacebookKV(3)
	keys := make([]string, nKeys)
	loaded := false
	var loadedCond simtime.Cond
	var coldGet, warmGet simtime.Time
	cls.GoOn(2, "loader", func(p *simtime.Proc) {
		k := store.NewClient(2)
		for i := range keys {
			keys[i] = fmt.Sprintf("k%05d", i)
			sz := kv.ValueSize()
			if sz > 16<<10 {
				sz = 16 << 10
			}
			if err := k.Put(p, keys[i], make([]byte, sz)); err != nil {
				return
			}
		}
		// Cold and warm single-get latency.
		start := p.Now()
		if _, err := k.Get(p, keys[42]); err != nil {
			return
		}
		coldGet = p.Now() - start
		start = p.Now()
		if _, err := k.Get(p, keys[42]); err != nil {
			return
		}
		warmGet = p.Now() - start
		loaded = true
		loadedCond.Broadcast(p.Env())
	})

	var done simtime.WaitGroup
	done.Add(clients)
	var measStart, last simtime.Time
	var totalGets int64
	for th := 0; th < clients; th++ {
		node := 2 + th%2
		th := th
		cls.GoOn(node, "getter", func(p *simtime.Proc) {
			defer done.Done(p.Env())
			for !loaded {
				loadedCond.Wait(p)
			}
			if measStart == 0 {
				measStart = p.Now()
			}
			k := store.NewClient(node)
			rng := xorshift(uint64(th)*31337 + 5)
			for i := 0; i < getsPerClient; i++ {
				key := keys[rng.next()%nKeys]
				if _, err := k.Get(p, key); err != nil {
					return
				}
				totalGets++
			}
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := cls.Run(); err != nil {
		return nil, err
	}
	t.AddRow("values stored (one LMR each)", fmt.Sprintf("%d", nKeys))
	t.AddRow("cold get (RPC + LT_map + LT_read)", us(coldGet)+" us")
	t.AddRow("warm get (LT_read only)", us(warmGet)+" us")
	t.AddRow("8-client mixed-get throughput", reqPerUs(totalGets, last-measStart)+" req/us")
	t.Note("2000 per-value regions would already thrash a native RNIC's key cache (Figure 4); under LITE they are free")
	return t, nil
}
