package bench

import (
	"fmt"
	"time"

	"lite/internal/apps/kvstore"
	"lite/internal/detrand"
	"lite/internal/load"
	"lite/internal/obs"
	"lite/internal/simtime"
)

func init() {
	register("crossover", "One-sided (client-traversed) vs RPC kvstore GETs: read fan-out sweep and the crossover point", crossoverExp)
}

// The crossover experiment puts the zero-server-CPU claim on the
// open-loop harness. A single 2-thread kvstore server holds a hot set
// of keys; a growing fan-out of client nodes issues Poisson GETs
// against it, once through the RPC path (one round trip plus server
// CPU and admission per GET) and once through the one-sided path (the
// client walks the published bucket index with LT_read and validates
// with a masked CAS — three NIC round trips, zero server anything).
//
// The sweep exposes both sides of the trade. At low fan-out the
// one-sided path wins the tail: its three NIC round trips are fixed
// cost, while the RPC p99 eats server-side dequeue jitter. But every
// one-sided GET also charges the responder NIC's rx pipeline three
// times (two reads plus the atomic, which reserves AtomicProcess
// extra), so as fan-out grows the *NIC*, not the server, saturates
// first — the RPC path sends one inbound message per GET and its
// 2-thread server still has CPU headroom when the traversal path has
// collapsed. The note pins both ends: the fan-out range where
// one-sided holds the better p99, and where RPC takes it back.
//
// The run also enforces the admission claim outright: during the
// measured GET phase of every one-sided sweep, the cluster-wide
// lite.rpc.served counter (bumped on the
// responder for every call handed to a server thread) must not move (attachments are warmed before
// the phase opens). A nonzero delta fails the experiment — and the
// recorded rows are compared exactly by bench-guard.
const (
	crossSeed  = 31
	crossRate  = 0.15 // per client node, req/us
	crossReqs  = 150  // per client node
	crossStart = 4 * time.Millisecond
)

var (
	crossFanouts = []int{1, 2, 4, 8, 12}
	crossHotsets = []int{16, 512}
)

// crossRes is one (mode, fanout, hotset) cell.
type crossRes struct {
	issued, ok int
	p50, p99   simtime.Time
	srvRPCs    int64 // lite.rpc.calls delta over the GET phase
}

func runCrossover(onesided bool, fanout, hotset int) (crossRes, error) {
	// Node 0 drives, node 1 serves, nodes 2.. read.
	cls, dep, err := newLITE(fanout + 2)
	if err != nil {
		return crossRes{}, err
	}
	dom := cls.EnableObs()
	var s *kvstore.Store
	if onesided {
		s, err = kvstore.StartOneSided(cls, dep, []int{1}, 2)
	} else {
		s, err = kvstore.Start(cls, dep, []int{1}, 2)
	}
	if err != nil {
		return crossRes{}, err
	}
	key := func(k uint64) string { return fmt.Sprintf("hot-%04d", k) }

	// Preload the hot set, then let every client warm its attachment
	// (one metadata RPC, amortized over the whole phase) before the
	// schedule opens.
	loaded := false
	cls.GoOn(0, "cross-loader", func(p *simtime.Proc) {
		k := s.NewClient(0)
		for i := 0; i < hotset; i++ {
			if err := k.Put(p, key(uint64(i)), []byte(fmt.Sprintf("v-%04d", i))); err != nil {
				return
			}
		}
		loaded = true
	})

	var rpc0 int64
	cls.GoOn(0, "cross-meter", func(p *simtime.Proc) {
		p.SleepUntil(simtime.Time(crossStart) - 1)
		rpc0 = dom.Total("lite.rpc.served")
	})

	type rec struct {
		lat simtime.Time
		ok  bool
	}
	recs := make([][]rec, fanout)
	for ci := 0; ci < fanout; ci++ {
		ci := ci
		node := 2 + ci
		sched := load.Poisson(crossSeed+uint64(ci), crossRate, crossReqs, simtime.Time(crossStart))
		z := detrand.NewZipf(crossSeed+100*uint64(ci), 1.1, uint64(hotset))
		ops := make([]uint64, len(sched))
		for i := range ops {
			ops[i] = z.Next()
		}
		cls.GoOn(node, "cross-client", func(p *simtime.Proc) {
			for !loaded {
				p.Sleep(50 * time.Microsecond)
			}
			k := s.NewClient(node)
			if onesided {
				if _, err := k.GetDirect(p, key(0)); err != nil {
					return
				}
			}
			var wg simtime.WaitGroup
			wg.Add(len(sched))
			out := make([]rec, len(sched))
			for idx, at := range sched {
				if at > p.Now() {
					p.SleepUntil(at)
				}
				idx := idx
				cls.GoOn(node, "cross-req", func(q *simtime.Proc) {
					defer wg.Done(q.Env())
					t0 := q.Now()
					var err error
					if onesided {
						_, err = k.GetDirect(q, key(ops[idx]))
					} else {
						_, err = k.GetRPC(q, key(ops[idx]))
					}
					out[idx] = rec{lat: q.Now() - t0, ok: err == nil}
				})
			}
			wg.Wait(p)
			recs[ci] = out
		})
	}
	if err := cls.Run(); err != nil {
		return crossRes{}, err
	}
	res := crossRes{srvRPCs: dom.Total("lite.rpc.served") - rpc0}
	h := &obs.Histogram{}
	for _, rs := range recs {
		for _, r := range rs {
			res.issued++
			if r.ok {
				res.ok++
				h.Record(r.lat)
			}
		}
	}
	res.p50, res.p99 = h.Quantile(0.5), h.Quantile(0.99)
	if onesided && res.srvRPCs != 0 {
		return res, fmt.Errorf("crossover: %d server RPCs during a one-sided GET phase (fanout %d, hotset %d), want 0",
			res.srvRPCs, fanout, hotset)
	}
	return res, nil
}

func crossoverExp() (*Table, error) {
	t := &Table{
		ID:     "crossover",
		Title:  "Kvstore GET: RPC path vs one-sided client traversal, read fan-out x hot-set sweep",
		Header: []string{"Mode", "Fanout", "Hotset", "Issued", "OK", "p50 (us)", "p99 (us)", "Server RPCs"},
	}
	type cell struct{ rpc, one crossRes }
	cells := make(map[[2]int]*cell)
	for _, hotset := range crossHotsets {
		for _, fanout := range crossFanouts {
			c := &cell{}
			var err error
			if c.rpc, err = runCrossover(false, fanout, hotset); err != nil {
				return nil, err
			}
			if c.one, err = runCrossover(true, fanout, hotset); err != nil {
				return nil, err
			}
			cells[[2]int{hotset, fanout}] = c
			for _, m := range []struct {
				name string
				r    crossRes
			}{{"rpc", c.rpc}, {"one-sided", c.one}} {
				t.AddRow(m.name, fmt.Sprintf("%d", fanout), fmt.Sprintf("%d", hotset),
					fmt.Sprintf("%d", m.r.issued), fmt.Sprintf("%d", m.r.ok),
					us(m.r.p50), us(m.r.p99), fmt.Sprintf("%d", m.r.srvRPCs))
			}
		}
	}
	for _, hotset := range crossHotsets {
		lastWin, rpcBack := -1, -1
		for _, fanout := range crossFanouts {
			c := cells[[2]int{hotset, fanout}]
			if c.one.p99 < c.rpc.p99 {
				lastWin = fanout
			} else if rpcBack < 0 {
				rpcBack = fanout
			}
		}
		switch {
		case lastWin < 0:
			t.Note("hotset %d: one-sided GETs never beat RPC p99 in this sweep", hotset)
		case rpcBack < 0:
			t.Note("hotset %d: one-sided holds the better p99 across the whole sweep", hotset)
		default:
			t.Note("hotset %d: one-sided holds the better p99 through fan-out %d; RPC takes it back at %d when the responder NIC's rx pipeline (3 inbound ops per traversal, atomics serialized) saturates before the 2-thread RPC server does", hotset, lastWin, rpcBack)
		}
	}
	t.Note("every one-sided phase ran with the server's lite.rpc.served flat: stable GETs consume zero server CPU and zero admission budget")
	return t, nil
}
