package bench

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must have a
	// registered experiment.
	want := []string{
		"fig4", "fig5", "fig6", "fig7", "fig8",
		"fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"tab-cpu", "breakdown", "log-tput", "dsm-micro", "kv-tput",
		"abl-qp", "abl-window", "abl-chunk", "abl-ring",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d experiments, want >= %d", len(All()), len(want))
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope"); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestTableFormat(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	tab.Note("a note")
	out := tab.Format()
	for _, want := range []string{"== x: demo ==", "333", "# a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

// TestSmallExperimentsRun executes the cheap experiments end to end so
// the harness itself stays green under `go test`.
func TestSmallExperimentsRun(t *testing.T) {
	for _, id := range []string{"fig8", "fig12", "breakdown", "fig6"} {
		tab, err := Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
	}
}
