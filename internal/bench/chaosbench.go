package bench

import (
	"bytes"
	"fmt"
	"time"

	"lite/internal/apps/mapreduce"
	"lite/internal/faults"
	"lite/internal/lite"
	"lite/internal/workload"
)

func init() {
	register("chaos", "LITE-MR under a seeded fault plan: degradation and NIC failure counters", chaosRun)
}

// chaosRun executes a LITE-MR word count while a seeded fault plan
// crashes a worker mid-run, flaps a link, and drops messages for a
// while. It reports how the job degraded (wall time, result
// correctness) and what the failures cost at each layer: fabric-level
// drops from the loss window and the NIC-level RC-timeout and
// RNR-exhaustion counters that LITE's failure handling turned into
// clean errors instead of stuck QPs.
func chaosRun() (*Table, error) {
	t := &Table{
		ID:     "chaos",
		Title:  "Chaos run: worker crash + link flap + 0.2% loss during LITE-MR",
		Header: []string{"Metric", "Value"},
	}
	const seed = 0xC0FFEE
	input := workload.NewCorpus(42, 300).Generate(40000)

	opts := lite.DefaultOptions()
	opts.HeartbeatInterval = 100 * time.Microsecond
	opts.HeartbeatTimeout = 300 * time.Microsecond
	cls, dep, err := newLITEOpts(5, opts)
	if err != nil {
		return nil, err
	}
	pl := faults.NewPlan(seed).
		CrashAt(2, 150*time.Microsecond).
		RestartAt(2, 6*time.Millisecond).
		FlapBoth(1, 4, 300*time.Microsecond, 1500*time.Microsecond).
		LossDuring(0.002, 100*time.Microsecond, 4*time.Millisecond)
	inj := faults.Attach(cls, pl)

	cfg := mapreduce.DefaultConfig(0, []int{1, 2, 3, 4}, 2, 4)
	cfg.ChunkSize = 4096
	cfg.TaskTimeout = 5 * time.Millisecond
	res, err := mapreduce.RunLITE(cls, dep, cfg, input)
	if err != nil {
		return nil, err
	}

	want := make(map[string]int64)
	for _, w := range bytes.Fields(input) {
		want[string(w)]++
	}
	correct := len(res.Counts) == len(want)
	for w, n := range want {
		if res.Counts[w] != n {
			correct = false
			break
		}
	}

	// faults.Attach enabled the cluster's observability domain; the
	// failure counters every layer recorded are read back from it.
	nicTimeouts := cls.Obs.Total("rnic.timeouts")
	nicRNR := cls.Obs.Total("rnic.rnr_exhausted")

	t.AddRow("MR wall time (ms)", fmt.Sprintf("%.2f", float64(res.Total)/1e6))
	t.AddRow("result correct", fmt.Sprintf("%v", correct))
	t.AddRow("crashes / restarts injected", fmt.Sprintf("%d / %d", inj.Crashes, inj.Restarts))
	t.AddRow("directed link cuts", fmt.Sprintf("%d", inj.Flaps))
	t.AddRow("messages dropped by loss window", fmt.Sprintf("%d", inj.Dropped()))
	t.AddRow("NIC RC timeouts (all nodes)", fmt.Sprintf("%d", nicTimeouts))
	t.AddRow("NIC RNR retries exhausted (all nodes)", fmt.Sprintf("%d", nicRNR))
	t.Note("seed 0x%X: crash node 2 @150us, restart @6ms, flap 1<->4 0.3-1.5ms, 0.2%% loss 0.1-4ms", seed)
	t.Note("heartbeat 100us interval / 3 misses; per-task timeout 5ms; job re-executes on survivors")
	if !correct {
		return t, fmt.Errorf("chaos: MR result incorrect")
	}
	return t, nil
}
