package bench

import (
	"reflect"
	"testing"
	"time"

	"lite/internal/obs"
	"lite/internal/params"
)

// TestTraceTimelineNeutral is the core obs guarantee: enabling
// tracing must not move a single event, so the traced run's measured
// latency equals the untraced run's, and the client root span covers
// exactly that interval.
func TestTraceTimelineNeutral(t *testing.T) {
	base, spans, err := traceRPC(false)
	if err != nil {
		t.Fatal(err)
	}
	if spans != nil {
		t.Fatal("untraced run produced spans")
	}
	lat, spans, err := traceRPC(true)
	if err != nil {
		t.Fatal(err)
	}
	if lat != base {
		t.Fatalf("tracing perturbed the timeline: traced %v vs untraced %v", lat, base)
	}
	sums := obs.SumByName(spans)
	if sums["lite.rpc"] != lat {
		t.Fatalf("client root span %v != end-to-end latency %v", sums["lite.rpc"], lat)
	}
}

// TestTraceBreakdownComponents pins the §5.3 numbers that fall out of
// the span tree against the cost model: two entry crossings (client
// LT_RPC, server LT_replyRPC) and two metadata checks.
func TestTraceBreakdownComponents(t *testing.T) {
	lat, spans, err := traceRPC(true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := params.Default()
	sums := obs.SumByName(spans)
	counts := obs.CountByName(spans)
	if counts["hostos.crossing"] != 2 || sums["hostos.crossing"] != 2*cfg.SyscallCrossing {
		t.Fatalf("crossings: %d spans, %v (want 2 x %v)", counts["hostos.crossing"], sums["hostos.crossing"], cfg.SyscallCrossing)
	}
	if counts["lite.check"] != 2 || sums["lite.check"] != 2*cfg.LITECheck {
		t.Fatalf("metadata checks: %d spans, %v", counts["lite.check"], sums["lite.check"])
	}
	if counts["lite.rpc"] != 1 || counts["lite.rpc.server"] != 1 {
		t.Fatalf("roots: %d client, %d server", counts["lite.rpc"], counts["lite.rpc.server"])
	}
	// The request and the reply each traverse the NIC pipeline once.
	if counts["rnic.tx"] != 2 || counts["rnic.rx"] != 2 || counts["fabric.wire"] != 2 {
		t.Fatalf("pipeline spans: tx %d rx %d wire %d", counts["rnic.tx"], counts["rnic.rx"], counts["fabric.wire"])
	}
	// Every component fits inside the end-to-end interval.
	for name, d := range sums {
		if d < 0 || (name != "lite.rpc" && d > lat) {
			t.Fatalf("component %s = %v outside [0, %v]", name, d, lat)
		}
	}
}

// TestTraceDeterministic: two runs of the same traced workload yield
// byte-identical span sets — ids, names, nodes, and timestamps.
func TestTraceDeterministic(t *testing.T) {
	lat1, spans1, err := traceRPC(true)
	if err != nil {
		t.Fatal(err)
	}
	lat2, spans2, err := traceRPC(true)
	if err != nil {
		t.Fatal(err)
	}
	if lat1 != lat2 {
		t.Fatalf("latencies differ across identical runs: %v vs %v", lat1, lat2)
	}
	if !reflect.DeepEqual(spans1, spans2) {
		t.Fatalf("traces differ across identical runs:\n%+v\nvs\n%+v", spans1, spans2)
	}
}

// TestRunFillsVirtualAndMetrics covers the harness plumbing: Run must
// report the cluster's virtual duration, and with SetObsEnabled the
// table carries a merged snapshot the JSON feed can serialize.
func TestRunFillsVirtualAndMetrics(t *testing.T) {
	SetObsEnabled(true)
	defer SetObsEnabled(false)
	tab, err := Run("trace")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Virtual <= 0 {
		t.Fatalf("virtual duration = %v", tab.Virtual)
	}
	if tab.Metrics == nil {
		t.Fatal("metrics snapshot missing with obs enabled")
	}
	if tab.Metrics.Counters["lite.rpc.calls"] == 0 {
		t.Fatalf("rpc calls counter empty: %+v", tab.Metrics.Counters)
	}
	if tab.Metrics.Hists["lite.rpc.latency"].Count() == 0 {
		t.Fatal("rpc latency histogram empty")
	}
	res := NewJSONResult("trace", tab, 5*time.Millisecond, nil)
	if res.VirtualNs != int64(tab.Virtual) || res.WallNs != int64(5*time.Millisecond) {
		t.Fatalf("json result times = %+v", res)
	}
	if res.Metrics == nil || len(res.Metrics.Histograms) == 0 {
		t.Fatal("json result lost the metrics")
	}
}

// TestMetricsDoNotPerturbTables: the same experiment renders the same
// rows with and without metrics collection (the obs-guard in make ci
// re-checks this end to end through the CLI).
func TestMetricsDoNotPerturbTables(t *testing.T) {
	plain, err := Run("breakdown")
	if err != nil {
		t.Fatal(err)
	}
	SetObsEnabled(true)
	defer SetObsEnabled(false)
	observed, err := Run("breakdown")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Rows, observed.Rows) || plain.Virtual != observed.Virtual {
		t.Fatalf("metrics collection changed the experiment:\n%v\nvs\n%v", plain.Rows, observed.Rows)
	}
}
