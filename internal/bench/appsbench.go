package bench

import (
	"fmt"

	"lite/internal/apps/graph"
	"lite/internal/apps/mapreduce"
	"lite/internal/workload"
)

func init() {
	register("fig18", "MapReduce WordCount: Phoenix vs LITE-MR (2/4/8 nodes) vs Hadoop", fig18)
	register("fig19", "PageRank: LITE-Graph vs Graph-DSM vs Grappa vs PowerGraph", fig19)
}

func fig18() (*Table, error) {
	t := &Table{
		ID:     "fig18",
		Title:  "WordCount run time (equal total threads; synthetic Zipf corpus)",
		Header: []string{"System", "Map (s)", "Reduce (s)", "Merge (s)", "Total (s)"},
	}
	const totalThreads = 8
	const reducers = 8
	input := workload.NewCorpus(42, 30000).Generate(16 << 20)
	secs := func(d interface{ Seconds() float64 }) string {
		return fmt.Sprintf("%.3f", d.Seconds())
	}

	// Phoenix: single node, all threads.
	{
		cls, err := newBare(1)
		if err != nil {
			return nil, err
		}
		cfg := mapreduce.DefaultConfig(0, []int{0}, totalThreads, reducers)
		res, err := mapreduce.RunPhoenix(cls, cfg, 0, input)
		if err != nil {
			return nil, err
		}
		t.AddRow("Phoenix (1 node)", secs(res.Map), secs(res.Reduce), secs(res.Merge), secs(res.Total))
	}
	// LITE-MR and Hadoop at 2, 4, 8 worker nodes.
	for _, workers := range []int{2, 4, 8} {
		nodes := make([]int, workers)
		for i := range nodes {
			nodes[i] = i + 1
		}
		threads := totalThreads / workers
		if threads < 1 {
			threads = 1
		}
		cls, dep, err := newLITE(workers + 1)
		if err != nil {
			return nil, err
		}
		cfg := mapreduce.DefaultConfig(0, nodes, threads, reducers)
		res, err := mapreduce.RunLITE(cls, dep, cfg, input)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("LITE-MR (%d nodes)", workers), secs(res.Map), secs(res.Reduce), secs(res.Merge), secs(res.Total))

		hcls, err := newBare(workers + 1)
		if err != nil {
			return nil, err
		}
		hcfg := mapreduce.DefaultHadoopConfig(0, nodes, threads, reducers)
		hres, err := mapreduce.RunHadoop(hcls, hcfg, input)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("Hadoop (%d nodes)", workers), secs(hres.Map), secs(hres.Reduce), secs(hres.Merge), secs(hres.Total))
	}
	t.Note("paper: LITE-MR beats Hadoop 4.3-5.3x; beats Phoenix in map+reduce, loses the merge phase")
	return t, nil
}

func fig19() (*Table, error) {
	t := &Table{
		ID:     "fig19",
		Title:  "PageRank run time (power-law graph, 10 iterations, 4 threads/node)",
		Header: []string{"Nodes", "LITE-Graph (ms)", "Graph-DSM (ms)", "Grappa (ms)", "PowerGraph (ms)", "PG/LITE"},
	}
	g := workload.NewPowerLawGraph(7, 60000, 900000)
	const iters = 10
	ms := func(d interface{ Seconds() float64 }) string {
		return fmt.Sprintf("%.2f", d.Seconds()*1000)
	}
	for _, n := range []int{4, 7} {
		nodes := make([]int, n)
		for i := range nodes {
			nodes[i] = i
		}
		cfg := graph.DefaultConfig(nodes, 4, iters)

		cls1, dep1, err := newLITE(n)
		if err != nil {
			return nil, err
		}
		liteRes, err := graph.RunLITE(cls1, dep1, cfg, g)
		if err != nil {
			return nil, err
		}
		cls2, dep2, err := newLITE(n)
		if err != nil {
			return nil, err
		}
		dsmRes, err := graph.RunDSM(cls2, dep2, cfg, g)
		if err != nil {
			return nil, err
		}
		cls3, err := newBare(n)
		if err != nil {
			return nil, err
		}
		grRes, err := graph.RunMsgEngine(cls3, cfg, graph.GrappaParams(), g)
		if err != nil {
			return nil, err
		}
		cls4, err := newBare(n)
		if err != nil {
			return nil, err
		}
		pgRes, err := graph.RunMsgEngine(cls4, cfg, graph.PowerGraphParams(), g)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n), ms(liteRes.Time), ms(dsmRes.Time), ms(grRes.Time), ms(pgRes.Time),
			fmt.Sprintf("%.1fx", float64(pgRes.Time)/float64(liteRes.Time)))
	}
	t.Note("paper: LITE-Graph outperforms PowerGraph 3.5-5.6x and beats Grappa; Graph-DSM sits between LITE-Graph and the baselines")
	return t, nil
}
