package bench

import (
	"fmt"

	"lite/internal/apps/litelog"
	"lite/internal/lite"
	"lite/internal/simtime"
)

func init() {
	register("fig14", "Scalability of LITE RDMA and RPC with cluster size", fig14)
	register("log-tput", "LITE-Log transaction commit throughput (8.1)", logTput)
}

// clusterWriteRate runs 8 threads per node doing 64B LT_writes to
// random peers and returns aggregate requests/us.
func clusterWriteRate(n int) (float64, error) {
	cls, dep, err := newLITE(n)
	if err != nil {
		return 0, err
	}
	const threads = 8
	const ops = 150
	var done simtime.WaitGroup
	done.Add(n * threads)
	var measStart, last simtime.Time
	var started simtime.WaitGroup
	started.Add(n * threads)
	// One 1MB LMR per node, written by everyone else.
	lhs := make([][]lite.LH, n) // lhs[node][target]
	for node := 0; node < n; node++ {
		node := node
		cls.GoOn(node, "setup", func(p *simtime.Proc) {
			c := dep.Instance(node).KernelClient()
			name := fmt.Sprintf("f14-%d", node)
			if _, err := c.Malloc(p, 1<<20, name, lite.PermRead|lite.PermWrite); err != nil {
				return
			}
			// Wait for all allocations, then map every peer.
			if err := c.Barrier(p, 0xF14, n); err != nil {
				return
			}
			lhs[node] = make([]lite.LH, n)
			for t := 0; t < n; t++ {
				h, err := c.Map(p, fmt.Sprintf("f14-%d", t))
				if err != nil {
					return
				}
				lhs[node][t] = h
			}
			for th := 0; th < threads; th++ {
				th := th
				cls.GoOn(node, "writer", func(q *simtime.Proc) {
					defer done.Done(q.Env())
					qc := dep.Instance(node).KernelClient()
					buf := make([]byte, 64)
					rng := xorshift(uint64(node*threads+th)*2654435761 + 11)
					write := func() {
						t := int(rng.next() % uint64(n))
						if t == node {
							t = (t + 1) % n
						}
						off := int64(rng.next() % (1<<20 - 64))
						_ = qc.Write(q, lhs[node][t], off, buf)
					}
					for i := 0; i < ops/4; i++ {
						write()
					}
					started.Done(q.Env())
					started.Wait(q)
					if measStart == 0 {
						measStart = q.Now()
					}
					for i := 0; i < ops; i++ {
						write()
					}
					if q.Now() > last {
						last = q.Now()
					}
				})
			}
		})
	}
	if err := cls.Run(); err != nil {
		return 0, err
	}
	el := last - measStart
	if el <= 0 {
		return 0, fmt.Errorf("fig14: no elapsed time")
	}
	return float64(n*threads*ops) / (float64(el) / 1000.0), nil
}

// clusterRPCRate runs 8 client threads per node issuing 64B->8B RPCs
// to random peers (every node also serves) and returns requests/us.
func clusterRPCRate(n int) (float64, error) {
	cls, dep, err := newLITE(n)
	if err != nil {
		return 0, err
	}
	for node := 0; node < n; node++ {
		startLITEEcho(cls, dep, node, 8)
	}
	const threads = 8
	const ops = 120
	var done, started simtime.WaitGroup
	done.Add(n * threads)
	started.Add(n * threads)
	var measStart, last simtime.Time
	for node := 0; node < n; node++ {
		node := node
		for th := 0; th < threads; th++ {
			th := th
			cls.GoOn(node, "client", func(q *simtime.Proc) {
				defer done.Done(q.Env())
				c := dep.Instance(node).KernelClient()
				rng := xorshift(uint64(node*threads+th)*40503 + 3)
				in := rpcInput(64, 8)
				call := func() {
					t := int(rng.next() % uint64(n))
					if t == node {
						t = (t + 1) % n
					}
					_, _ = c.RPC(q, t, benchFn, in, 64)
				}
				for i := 0; i < ops/4; i++ {
					call()
				}
				started.Done(q.Env())
				started.Wait(q)
				if measStart == 0 {
					measStart = q.Now()
				}
				for i := 0; i < ops; i++ {
					call()
				}
				if q.Now() > last {
					last = q.Now()
				}
			})
		}
	}
	if err := cls.Run(); err != nil {
		return 0, err
	}
	el := last - measStart
	if el <= 0 {
		return 0, fmt.Errorf("fig14: no elapsed time")
	}
	return float64(n*threads*ops) / (float64(el) / 1000.0), nil
}

func fig14() (*Table, error) {
	t := &Table{
		ID:     "fig14",
		Title:  "Scalability with cluster size (8 threads/node; 64B LT_write; 64B->8B LT_RPC)",
		Header: []string{"Nodes", "LT_write (req/us)", "LT_RPC (req/us)"},
	}
	for _, n := range []int{2, 4, 6, 8} {
		w, err := clusterWriteRate(n)
		if err != nil {
			return nil, err
		}
		r, err := clusterRPCRate(n)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.2f", w), fmt.Sprintf("%.2f", r))
	}
	t.Note("paper: both scale near-linearly with node count on K x N shared QPs")
	return t, nil
}

func logTput() (*Table, error) {
	t := &Table{
		ID:     "log-tput",
		Title:  "LITE-Log single-entry (16B) transaction commits/s",
		Header: []string{"Writer nodes", "Commits/s"},
	}
	for _, writers := range []int{2, 4, 8} {
		rate, err := logCommitRate(writers)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", writers), fmt.Sprintf("%.0f", rate))
	}
	t.Note("paper: ~833K commits/s with two nodes; scales with nodes and transaction size")
	return t, nil
}

func logCommitRate(writers int) (float64, error) {
	cls, dep, err := newLITE(writers + 1)
	if err != nil {
		return 0, err
	}
	const threadsPerNode = 4
	const ops = 120
	var done, started simtime.WaitGroup
	done.Add(writers * threadsPerNode)
	started.Add(writers * threadsPerNode)
	var measStart, last simtime.Time
	ready := false
	var readyCond simtime.Cond
	cls.GoOn(0, "creator", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		if _, err := litelog.Create(p, c, 0, 64<<20, "bench-log"); err != nil {
			return
		}
		ready = true
		readyCond.Broadcast(p.Env())
	})
	for w := 1; w <= writers; w++ {
		w := w
		for th := 0; th < threadsPerNode; th++ {
			cls.GoOn(w, "committer", func(q *simtime.Proc) {
				defer done.Done(q.Env())
				for !ready {
					readyCond.Wait(q)
				}
				c := dep.Instance(w).KernelClient()
				lg, err := litelog.Open(q, c, "bench-log", 64<<20)
				if err != nil {
					return
				}
				entry := [][]byte{make([]byte, 16)}
				for i := 0; i < ops/4; i++ {
					_, _ = lg.Append(q, entry)
				}
				started.Done(q.Env())
				started.Wait(q)
				if measStart == 0 {
					measStart = q.Now()
				}
				for i := 0; i < ops; i++ {
					_, _ = lg.Append(q, entry)
				}
				if q.Now() > last {
					last = q.Now()
				}
			})
		}
	}
	if err := cls.Run(); err != nil {
		return 0, err
	}
	el := last - measStart
	if el <= 0 {
		return 0, fmt.Errorf("log-tput: no elapsed time")
	}
	return float64(writers*threadsPerNode*ops) / el.Seconds(), nil
}
