// The rebalance experiment closes the ROADMAP's "autoscaling policy"
// gap minimally: a load signal drives PR 6's DrainShard. Twelve shards
// of a Zipf-skewed keyspace start packed three-per-node on four
// servers; 200 clients hammer the keyspace; a greedy rebalancer
// samples per-node goodput each window and moves the hottest shard
// from the most-loaded node onto the least-loaded of a dozen
// server-capable nodes until the per-node goodput spread falls under
// its target — live, mid-run, with zero failed client calls. Run
// twice per seed; the runs must agree bit-for-bit.
package bench

import (
	"fmt"
	"math"
	"time"

	"lite/internal/apps/kvstore"
	"lite/internal/detrand"
	"lite/internal/lite"
	"lite/internal/simtime"
)

func init() {
	register("rebalance", "Live rebalancing: load-driven DrainShard spreads a Zipf keyspace across a dozen servers", runRebalance)
}

const (
	rebNodes    = 500
	rebShards   = 12
	rebPool     = 16 // server-capable nodes 1..16; manager on 0
	rebClients  = 200
	rebKeys     = 4096
	rebZipfS    = 1.1
	rebOps      = 400 // per client
	rebGap      = 50 * time.Microsecond
	rebWindow   = 500 * time.Microsecond
	rebSeed     = 1337
	rebMinMoves = 4
	// rebStopSpread is the greedy loop's target (with hysteresis under
	// the 2x gate): stop moving once max/min per-serving-node goodput
	// since the last move is below this.
	rebStopSpread = 1.9
	rebGateSpread = 2.0
	// rebMoveCutoff stops new moves after this fraction of the client
	// ops, leaving the tail of the run to measure the settled placement
	// (the gated spread is the aggregate since the last move).
	rebMoveCutoff = 0.75
	// rebDecideFloor is the minimum aggregated sample before the greedy
	// trusts the spread enough to act on it.
	rebDecideFloor = 1000
)

// rebWeights are the per-shard traffic masses the rank ranges target.
// Near-uniform by design: the greedy's destinations are always the
// least-loaded pool node, which is a zero-load spare while any remain,
// so shards unpack toward one-per-node and the best reachable spread
// is max/min shard weight. The band is tight (9.2/7.5 = 1.23 designed)
// because measured server load is not the designed mass: same-size Put
// overwrites bump the value version in place, every version bump
// invalidates the one-sided Get cache of each client holding that key,
// and the forced re-resolves amplify hot shards' server ops ~1.3x over
// their traffic share. 1.23 designed stays under the 2x gate even with
// that amplification. The imbalance the rebalancer must fix comes from
// the initial packing (4/3/3/2 shards on four nodes, ~34% of the
// traffic on the first), not from wildly unequal shards.
var rebWeights = [rebShards]float64{0.092, 0.09, 0.088, 0.086, 0.085, 0.084, 0.083, 0.082, 0.08, 0.078, 0.077, 0.075}

// rebHomeOf is the initial packing: shards 0-3 on node 1, 4-6 on node
// 2, 7-9 on node 3, 10-11 on node 4.
func rebHomeOf(s int) int {
	switch {
	case s < 4:
		return 1
	case s < 7:
		return 2
	case s < 10:
		return 3
	default:
		return 4
	}
}

// rebShardOf maps a Zipf rank onto a shard via contiguous rank ranges
// hitting the rebWeights masses.
var rebBounds = rebComputeBounds()

// rebComputeBounds partitions ranks 0..rebKeys-1 into rebShards
// contiguous ranges hitting fixed target masses under the Zipf(s)
// popularity law. Pure arithmetic on constants: identical every run.
func rebComputeBounds() [rebShards + 1]int {
	weights := rebWeights
	mass := make([]float64, rebKeys)
	total := 0.0
	for k := 0; k < rebKeys; k++ {
		mass[k] = math.Pow(float64(k+1), -rebZipfS)
		total += mass[k]
	}
	var bounds [rebShards + 1]int
	acc, shard, want := 0.0, 0, weights[0]*total
	for k := 0; k < rebKeys && shard < rebShards-1; k++ {
		acc += mass[k]
		if acc >= want {
			shard++
			bounds[shard] = k + 1
			want += weights[shard] * total
		}
	}
	for s := shard + 1; s <= rebShards; s++ {
		bounds[s] = rebKeys
	}
	return bounds
}

func rebShardOf(rank uint64) int {
	for s := 1; s <= rebShards; s++ {
		if int(rank) < rebBounds[s] {
			return s - 1
		}
	}
	return rebShards - 1
}

type rebOutcome struct {
	events      int64
	virtual     simtime.Time
	ops         int64
	errs        int64
	moves       int64
	failedMoves int64
	serving     int64   // nodes serving at least one shard at the end
	spread      float64 // settled max/min per-serving-node goodput
}

func runRebalanceOnce() (*rebOutcome, error) {
	opts := lite.DefaultOptions()
	opts.QPsPerPair = 1
	opts.MeshPeers = func(a, b int) bool { return a <= rebPool || b <= rebPool }
	// Without this, each commit holds the migration fence for the full
	// O(cluster) membership fan-out (~3.2ms at 500 nodes) — the moves
	// per run drop below the gate and clients stall behind the fence.
	opts.AsyncCommitBroadcast = true
	cls, dep, err := newLITEOpts(rebNodes, opts)
	if err != nil {
		return nil, err
	}
	stores := make([]*kvstore.Store, rebShards)
	for s := 0; s < rebShards; s++ {
		st, err := kvstore.StartFn(cls, dep, []int{rebHomeOf(s)}, 4, lite.FirstUserFunc+s)
		if err != nil {
			return nil, err
		}
		stores[s] = st
	}

	out := &rebOutcome{}
	for ci := 0; ci < rebClients; ci++ {
		node := rebPool + 1 + ci
		kcs := make([]*kvstore.Client, rebShards)
		for s := range kcs {
			kcs[s] = stores[s].NewClient(node)
		}
		z := detrand.NewZipf(rebSeed+uint64(ci), rebZipfS, rebKeys)
		cls.GoOn(node, "reb-client", func(p *simtime.Proc) {
			for j := 0; j < rebOps; j++ {
				rank := z.Next()
				kc := kcs[rebShardOf(rank)]
				key := fmt.Sprintf("k%04d", rank)
				var err error
				if j%3 == 0 {
					err = kc.Put(p, key, []byte("0123456789abcdef"))
				} else if _, err = kc.Get(p, key); err == kvstore.ErrNotFound {
					err = nil // a miss is a served lookup
				}
				out.ops++
				if err != nil {
					out.errs++
				}
				p.Sleep(simtime.Time(rebGap))
			}
		})
	}

	// The rebalancer: each window, sample per-shard goodput (delta of
	// ServedOps at the shard's current home) into an aggregate that
	// resets on every committed move; while the aggregated per-node
	// spread is past target, move the hottest shard off the hottest
	// multi-shard node onto the least-loaded pool node. Spares count
	// as zero-load targets, so hot shards spill onto fresh nodes and
	// cold shards stay packed. Deciding on the since-last-move
	// aggregate (not one noisy 500us window) keeps the greedy from
	// chasing sampling noise into extra moves, and the same aggregate
	// is what the final gate judges. All state is indexed by shard or
	// by the dense 1..rebPool node range — no map is ever ranged over,
	// so every decision replays identically.
	lastServed := make([]int64, rebShards)
	lastHome := make([]int, rebShards)
	for s := range lastHome {
		lastHome[s] = stores[s].ServerNodes()[0]
	}
	aggShard := make([]int64, rebShards)
	totalOps := int64(rebClients * rebOps)
	cls.GoOn(0, "reb-rebalancer", func(p *simtime.Proc) {
		for out.ops < totalOps {
			p.Sleep(simtime.Time(rebWindow))
			for s, st := range stores {
				home := st.ServerNodes()[0]
				if home != lastHome[s] {
					// The shard moved: the new incarnation's counter starts
					// at zero, so the old home's baseline would go negative.
					lastHome[s], lastServed[s] = home, 0
				}
				now := st.ServedOps(home)
				aggShard[s] += now - lastServed[s]
				lastServed[s] = now
			}
			load := make([]int64, rebPool+1)
			shards := make([]int, rebPool+1)
			var total int64
			for s := range stores {
				load[lastHome[s]] += aggShard[s]
				shards[lastHome[s]]++
				total += aggShard[s]
			}
			if total < rebDecideFloor {
				continue // aggregate too sparse to act on
			}
			var maxLoad int64
			var minLoad int64 = math.MaxInt64
			hotNode := -1
			for n := 1; n <= rebPool; n++ {
				if shards[n] == 0 {
					continue
				}
				if load[n] < minLoad {
					minLoad = load[n]
				}
				if load[n] > maxLoad {
					maxLoad = load[n]
				}
				// Only a node with shards to spare can shed one; moving a
				// lone shard just relocates the hotspot.
				if shards[n] > 1 && (hotNode < 0 || load[n] > load[hotNode]) {
					hotNode = n
				}
			}
			spread := math.Inf(1)
			if minLoad > 0 {
				spread = float64(maxLoad) / float64(minLoad)
			}
			if spread <= rebStopSpread || hotNode < 0 ||
				out.ops >= int64(rebMoveCutoff*float64(totalOps)) {
				continue
			}
			// Hottest shard on the hottest node, to the least-loaded
			// pool node (spares carry zero load).
			hotShard := -1
			for s := range stores {
				if lastHome[s] != hotNode {
					continue
				}
				if hotShard < 0 || aggShard[s] > aggShard[hotShard] {
					hotShard = s
				}
			}
			dst := -1
			var dstLoad int64 = math.MaxInt64
			for n := 1; n <= rebPool; n++ {
				if n != hotNode && load[n] < dstLoad {
					dst, dstLoad = n, load[n]
				}
			}
			if hotShard < 0 || dst < 0 {
				continue
			}
			st := stores[hotShard]
			var wg simtime.WaitGroup
			wg.Add(1)
			cls.GoOn(hotNode, "reb-drain", func(q *simtime.Proc) {
				defer wg.Done(q.Env())
				if err := st.DrainShard(q, hotNode, dst); err != nil {
					out.failedMoves++
				} else {
					out.moves++
				}
			})
			wg.Wait(p)
			// Placement changed: the settled-spread sample restarts.
			for s := range aggShard {
				aggShard[s] = 0
			}
		}
	})

	if err := cls.Run(); err != nil {
		return nil, err
	}
	finalLoad := make([]int64, rebPool+1)
	finalShards := make([]int, rebPool+1)
	for s := range stores {
		home := stores[s].ServerNodes()[0]
		finalLoad[home] += aggShard[s]
		finalShards[home]++
	}
	var aggMax int64
	var aggMin int64 = math.MaxInt64
	for n := 1; n <= rebPool; n++ {
		if finalShards[n] == 0 {
			continue
		}
		out.serving++
		if finalLoad[n] < aggMin {
			aggMin = finalLoad[n]
		}
		if finalLoad[n] > aggMax {
			aggMax = finalLoad[n]
		}
	}
	out.spread = math.Inf(1)
	if aggMin > 0 {
		out.spread = float64(aggMax) / float64(aggMin)
	}
	out.events = cls.Env.Events()
	out.virtual = cls.Env.Now()
	return out, nil
}

func runRebalance() (*Table, error) {
	a, err := runRebalanceOnce()
	if err != nil {
		return nil, fmt.Errorf("rebalance: %w", err)
	}
	b, err := runRebalanceOnce()
	if err != nil {
		return nil, fmt.Errorf("rebalance: rerun: %w", err)
	}
	tab := &Table{
		ID:     "rebalance",
		Title:  "Live rebalancing: greedy move-hottest-shard under a Zipf keyspace, 12 shards over a 16-node pool",
		Header: []string{"metric", "value"},
	}
	tab.AddRow("ops", fmt.Sprintf("%d", a.ops))
	tab.AddRow("errs", fmt.Sprintf("%d", a.errs))
	tab.AddRow("moves", fmt.Sprintf("%d", a.moves))
	tab.AddRow("failed_moves", fmt.Sprintf("%d", a.failedMoves))
	tab.AddRow("serving_nodes", fmt.Sprintf("%d", a.serving))
	tab.AddRow("final_spread", fmt.Sprintf("%.2f", a.spread))
	tab.Note("%d clients, Zipf(s=%.1f) over %d keys in 12 rank-range shards (hottest ~9.2%% of traffic, coldest ~7.5%%), initial packing 4/3/3/2 shards on 4 nodes", rebClients, rebZipfS, rebKeys)
	tab.Note("rebalancer samples per-node goodput every %v and drains the hottest shard to the least-loaded pool node until spread <= %.1f", rebWindow, rebStopSpread)

	if *a != *b {
		return tab, fmt.Errorf("rebalance: runs diverge: %+v vs %+v", a, b)
	}
	if a.errs != 0 {
		return tab, fmt.Errorf("rebalance: %d client calls failed during live moves", a.errs)
	}
	if a.failedMoves != 0 {
		return tab, fmt.Errorf("rebalance: %d shard moves failed", a.failedMoves)
	}
	if a.moves < rebMinMoves {
		return tab, fmt.Errorf("rebalance: only %d shards moved, want >= %d", a.moves, rebMinMoves)
	}
	if a.spread > rebGateSpread {
		return tab, fmt.Errorf("rebalance: final goodput spread %.2fx exceeds %.1fx", a.spread, rebGateSpread)
	}
	return tab, nil
}
