package bench

import "testing"

// TestOpenLoopReproducible reruns the overloaded admission-controlled
// configuration twice with the same seed and demands bit-identical
// results — counts, span, and every reported quantile. This is the
// whole-stack determinism check: the Poisson schedule, the simulated
// fabric, the admission decisions, and the histogram must all be pure
// functions of the seed.
func TestOpenLoopReproducible(t *testing.T) {
	a, err := runOpenLoop(42, 2.0, 300, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runOpenLoop(42, 2.0, 300, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a.Issued != b.Issued || a.OK != b.OK || a.Shed != b.Shed || a.Timeout != b.Timeout || a.Errored != b.Errored {
		t.Fatalf("counts differ:\n  %+v\n  %+v", a, b)
	}
	if a.Start != b.Start || a.End != b.End {
		t.Fatalf("span differs: [%v,%v] vs [%v,%v]", a.Start, a.End, b.Start, b.End)
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if a.Hist.Quantile(q) != b.Hist.Quantile(q) {
			t.Fatalf("q%.3f differs: %v vs %v", q, a.Hist.Quantile(q), b.Hist.Quantile(q))
		}
	}
	// The overloaded run must actually exercise the admission path,
	// or this reproducibility check is vacuous.
	if a.Shed == 0 {
		t.Fatal("overloaded run shed nothing; admission control not exercised")
	}
}

// TestOpenLoopAdmissionBoundsTail pins the experiment's headline
// claim: past the knee, the admission-controlled server keeps the
// survivors' tail bounded near queue-cap x service time and never
// times a call out, while the ablation's queue grows until calls age
// into the timeout.
func TestOpenLoopAdmissionBoundsTail(t *testing.T) {
	adm, err := runOpenLoop(42, 2.0, 600, 16)
	if err != nil {
		t.Fatal(err)
	}
	abl, err := runOpenLoop(42, 2.0, 600, 0)
	if err != nil {
		t.Fatal(err)
	}
	if adm.Timeout != 0 {
		t.Fatalf("admission run timed out %d calls, want 0", adm.Timeout)
	}
	if abl.Timeout == 0 {
		t.Fatal("ablation run had no timeouts; overload not reproduced")
	}
	if adm.P99() >= abl.P99() {
		t.Fatalf("admission p99 %v not below ablation p99 %v", adm.P99(), abl.P99())
	}
}
