package bench

import (
	"fmt"

	"lite/internal/lite"
	"lite/internal/simtime"
)

func init() {
	register("tput", "LT_RPC throughput vs size and threads: fast path vs per-WR posting (Fig 7 shape)", tput)
}

// perWROptions disables every small-message fast-path lever: payloads
// always take the DMA read, every post rings its own doorbell
// (including the 512-buffer receive restocks), and every send is
// signaled. This is what the stack looked like before the fast path
// and is the baseline the speedup column measures against.
func perWROptions() lite.Options {
	o := lite.DefaultOptions()
	o.DisableInline = true
	o.DisableDoorbellBatch = true
	o.SignalEvery = 1
	return o
}

// litePathThroughput measures the aggregate LT_RPC rate of `clients`
// threads sending inputSize-byte requests (8-byte replies) under the
// given LITE options, using the same rendezvous discipline as fig11:
// the clock starts when every thread has completed a warmup call.
func litePathThroughput(opts lite.Options, inputSize, clients, opsPerClient int) (simtime.Time, error) {
	const replySize = 8
	cls, dep, err := newLITEOpts(2, opts)
	if err != nil {
		return 0, err
	}
	startLITEEcho(cls, dep, 1, clients)
	var done, started simtime.WaitGroup
	done.Add(clients)
	started.Add(clients)
	var measStart, last simtime.Time
	var firstErr error
	for th := 0; th < clients; th++ {
		cls.GoOn(0, "client", func(p *simtime.Proc) {
			defer done.Done(p.Env())
			startedDone := false
			markStarted := func() {
				if !startedDone {
					startedDone = true
					started.Done(p.Env())
				}
			}
			defer markStarted()
			c := dep.Instance(0).KernelClient()
			in := rpcInput(inputSize, replySize)
			if _, err := c.RPC(p, 1, benchFn, in, replySize+8); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			markStarted()
			started.Wait(p)
			if measStart == 0 {
				measStart = p.Now()
			}
			for i := 0; i < opsPerClient; i++ {
				if _, err := c.RPC(p, 1, benchFn, in, replySize+8); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
			}
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := cls.Run(); err != nil {
		return 0, err
	}
	if firstErr != nil {
		return 0, firstErr
	}
	return last - measStart, nil
}

// tput is the small-message fast-path experiment: multi-thread LT_RPC
// throughput versus request size, once with the fast path on (inline
// WQEs, doorbell-batched post lists, selective signaling — the
// defaults) and once with per-WR posting, at equal offered load.
func tput() (*Table, error) {
	t := &Table{
		ID:     "tput",
		Title:  "LT_RPC throughput vs request size (8B replies): fast path vs per-WR posting",
		Header: []string{"Input (B)", "Threads", "Fast path (req/us)", "Per-WR (req/us)", "Speedup"},
	}
	const ops = 150
	fast := lite.DefaultOptions()
	perWR := perWROptions()
	for _, size := range []int{8, 64, 256, 1024, 4096} {
		for _, clients := range []int{1, 8} {
			ef, err := litePathThroughput(fast, size, clients, ops)
			if err != nil {
				return nil, err
			}
			ew, err := litePathThroughput(perWR, size, clients, ops)
			if err != nil {
				return nil, err
			}
			n := int64(clients * ops)
			t.AddRow(fmt.Sprintf("%d", size), fmt.Sprintf("%d", clients),
				reqPerUs(n, ef), reqPerUs(n, ew),
				fmt.Sprintf("%.2fx", float64(ew)/float64(ef)))
		}
	}
	t.Note("per-WR = DisableInline + DisableDoorbellBatch + SignalEvery=1: every payload takes the DMA read, every post (including 512-buffer recv restocks) rings its own doorbell, every send is signaled")
	t.Note("requests <= MaxInline (256B) ride inline in the WQE; the gap narrows at 1KB+ where the payload DMA dominates either way")
	return t, nil
}
