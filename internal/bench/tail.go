package bench

import (
	"errors"
	"fmt"
	"time"

	"lite/internal/lite"
	"lite/internal/load"
	"lite/internal/simtime"
)

func init() {
	register("tail", "Open-loop tail latency at fixed offered load, admission control vs ablation", tail)
	register("saturate", "Saturation sweep: offered load vs achieved throughput and tail latency", saturate)
}

// tailFn is the RPC function the serving-under-load experiments bind.
const tailFn = lite.FirstUserFunc + 1

// tailService is the simulated per-call handler cost; with
// tailWorkers server threads the node saturates at
// tailWorkers/tailService requests per microsecond (1 req/us here).
const (
	tailService = 2 * time.Microsecond
	tailWorkers = 2
)

// tailOpts is the deployment configuration for the serving
// experiments: a short RPC timeout and backoff so the ablation's
// collapse fits a bounded virtual-time run, with the admission
// high-water mark as the experiment variable.
func tailOpts(highWater int) lite.Options {
	opts := lite.DefaultOptions()
	opts.RPCTimeout = 200 * time.Microsecond
	opts.RetryBackoff = 20 * time.Microsecond
	opts.AdmissionHighWater = highWater
	return opts
}

// runOpenLoop boots a 2-node cluster, starts the bounded handler pool
// on node 1, and drives it from node 0 with an n-request Poisson
// schedule at ratePerUs. Returns the load result once the cluster
// drains.
func runOpenLoop(seed uint64, ratePerUs float64, n, highWater int) (*load.Result, error) {
	cls, dep, err := newLITEOpts(2, tailOpts(highWater))
	if err != nil {
		return nil, err
	}
	srv := dep.Instance(1)
	if err := srv.ServeRPC(tailFn, tailWorkers, func(p *simtime.Proc, c *lite.Call) []byte {
		p.Work(tailService)
		return c.Input[:8]
	}); err != nil {
		return nil, err
	}
	// Warm the binding before the schedule opens so ring negotiation is
	// not measured as the first requests' latency.
	cls.GoOn(0, "warmup", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		_, _ = c.RPCRetry(p, 1, tailFn, make([]byte, 16), 64)
	})
	// Requests are issued without the retry wrapper: the harness
	// measures what the server does to a fixed offered load, and a
	// shed must show up as a shed, not as a retried-and-eventually-
	// served success whose latency is mostly client backoff.
	client := dep.Instance(0).KernelClient()
	sched := load.Poisson(seed, ratePerUs, n, 50*time.Microsecond)
	res := load.Run(cls, 0, sched, func(p *simtime.Proc, k int) load.Status {
		_, err := client.RPC(p, 1, tailFn, make([]byte, 16), 64)
		switch {
		case err == nil:
			return load.StatusOK
		case errors.Is(err, lite.ErrOverloaded):
			return load.StatusShed
		case errors.Is(err, lite.ErrTimeout):
			return load.StatusTimeout
		default:
			return load.StatusError
		}
	})
	if err := cls.Run(); err != nil {
		return nil, err
	}
	return res, nil
}

// tail measures the latency distribution an open-loop client sees at a
// light load and at 2x saturation, with and without admission control.
// Past the knee the admission-controlled server sheds the excess with
// a fast typed error and keeps the survivors' tail bounded by the
// queue cap; the ablation lets the queue grow without bound, so calls
// age into the RPC timeout — late enough that the server has already
// burned service time on requests whose clients gave up.
func tail() (*Table, error) {
	t := &Table{
		ID:     "tail",
		Title:  "Open-loop tail latency, 2 workers x 2us service (capacity 1 req/us)",
		Header: []string{"Offered (req/us)", "Admission", "OK", "Shed", "Timeout", "p50 (us)", "p99 (us)", "p999 (us)"},
	}
	const n = 600
	for _, rate := range []float64{0.5, 2.0} {
		for _, hw := range []int{16, 0} {
			res, err := runOpenLoop(42, rate, n, hw)
			if err != nil {
				return nil, err
			}
			adm := "off"
			if hw > 0 {
				adm = fmt.Sprintf("hw=%d", hw)
			}
			t.AddRow(fmt.Sprintf("%.1f", rate), adm,
				fmt.Sprintf("%d", res.OK), fmt.Sprintf("%d", res.Shed), fmt.Sprintf("%d", res.Timeout),
				us(res.P50()), us(res.P99()), us(res.P999()))
		}
	}
	t.Note("latency is measured from the scheduled arrival (open loop), so server queueing is not hidden by coordinated omission")
	t.Note("past the knee: admission control sheds the excess fast and bounds p99 near queue-cap x service time; the ablation's queue grows until calls age into the RPC timeout")
	return t, nil
}

// saturate locates the saturation knee with admission control on: a
// coarse doubling ramp until the server first sheds (or the goodput
// gap opens), then a fixed number of bisection steps between the last
// clean rate and the first overloaded one. Every probe reruns the same
// seed, so the bracketing — and the whole table — is deterministic.
func saturate() (*Table, error) {
	t := &Table{
		ID:     "saturate",
		Title:  "Saturation knee auto-bisection, admission hw=16 (capacity 1 req/us)",
		Header: []string{"Phase", "Offered (req/us)", "Achieved (req/us)", "OK", "Shed", "Timeout", "p50 (us)", "p99 (us)", "p999 (us)"},
	}
	const n = 300
	overloaded := func(rate float64, res *load.Result) bool {
		return res.Shed > 0 || res.AchievedPerUs() < 0.95*rate
	}
	probe := func(phase string, rate float64) (*load.Result, error) {
		res, err := runOpenLoop(7, rate, n, 16)
		if err != nil {
			return nil, err
		}
		t.AddRow(phase, fmt.Sprintf("%.3f", rate), fmt.Sprintf("%.2f", res.AchievedPerUs()),
			fmt.Sprintf("%d", res.OK), fmt.Sprintf("%d", res.Shed), fmt.Sprintf("%d", res.Timeout),
			us(res.P50()), us(res.P99()), us(res.P999()))
		return res, nil
	}
	lo, hi := 0.0, 0.0
	for rate := 0.2; rate <= 3.2; rate *= 2 {
		res, err := probe("ramp", rate)
		if err != nil {
			return nil, err
		}
		if overloaded(rate, res) {
			hi = rate
			break
		}
		lo = rate
	}
	if hi == 0 {
		t.Note("no knee found: the server kept up through 3.2 req/us offered")
		return t, nil
	}
	for i := 0; i < 5; i++ {
		mid := (lo + hi) / 2
		res, err := probe("bisect", mid)
		if err != nil {
			return nil, err
		}
		if overloaded(mid, res) {
			hi = mid
		} else {
			lo = mid
		}
	}
	t.Note("knee bisected to [%.3f, %.3f] req/us offered (first shed or >5%% goodput gap)", lo, hi)
	return t, nil
}
