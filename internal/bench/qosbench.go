package bench

import (
	"fmt"
	"time"

	"lite/internal/apps/graph"
	"lite/internal/apps/litelog"
	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/simtime"
	"lite/internal/workload"
)

func init() {
	register("fig15", "QoS with real applications: LITE-Log and LITE-Graph vs background traffic", fig15)
	register("fig16", "QoS under the synthetic high/low-priority mix (timeline)", fig16)
}

// backgroundWriters floods low-priority 64KB writes from srcs to dst
// until stop.
func backgroundWriters(cls *cluster.Cluster, dep *lite.Deployment, srcs []int, dst int, stop *bool) {
	for _, s := range srcs {
		s := s
		cls.GoDaemonOn(s, "bg-writer", func(p *simtime.Proc) {
			c := dep.Instance(s).KernelClient().SetPriority(lite.PriLow)
			h, err := c.MallocAt(p, []int{dst}, 1<<20, "", lite.PermRead|lite.PermWrite)
			if err != nil {
				return
			}
			buf := make([]byte, 64<<10)
			for !*stop {
				_ = c.Write(p, h, 0, buf)
			}
		})
	}
}

// logRateUnder measures LITE-Log commit throughput at node 1 (log at
// node 0) under the given QoS mode with background traffic.
func logRateUnder(mode lite.QoSMode, withBG bool) (float64, error) {
	opts := lite.DefaultOptions()
	opts.QPsPerPair = 4 // three QPs for high priority, one for low (6.2)
	cls, dep, err := newLITEOpts(4, opts)
	if err != nil {
		return 0, err
	}
	dep.SetQoSMode(mode)
	stop := false
	if withBG {
		backgroundWriters(cls, dep, []int{2, 3}, 0, &stop)
	}
	const ops = 300
	var rate float64
	cls.GoOn(1, "committer", func(p *simtime.Proc) {
		c := dep.Instance(1).KernelClient() // high priority by default
		lg, err := litelog.Create(p, c, 0, 32<<20, "qos-log")
		if err != nil {
			return
		}
		entry := [][]byte{make([]byte, 16)}
		p.Sleep(50 * time.Microsecond) // let background traffic ramp
		start := p.Now()
		for i := 0; i < ops; i++ {
			if _, err := lg.Append(p, entry); err != nil {
				return
			}
		}
		rate = float64(ops) / (p.Now() - start).Seconds()
		stop = true
	})
	if err := cls.Run(); err != nil {
		return 0, err
	}
	return rate, nil
}

// graphRateUnder measures LITE-Graph PageRank speed (iterations/s)
// under the given QoS mode with background traffic.
func graphRateUnder(mode lite.QoSMode, withBG bool) (float64, error) {
	opts := lite.DefaultOptions()
	opts.QPsPerPair = 4
	cls, dep, err := newLITEOpts(4, opts)
	if err != nil {
		return 0, err
	}
	dep.SetQoSMode(mode)
	stop := false
	if withBG {
		backgroundWriters(cls, dep, []int{2, 3}, 0, &stop)
	}
	g := workload.NewPowerLawGraph(5, 8000, 80000)
	cfg := graph.DefaultConfig([]int{0, 1, 2, 3}, 2, 6)
	res, err := graph.RunLITE(cls, dep, cfg, g)
	stop = true
	if err != nil {
		return 0, err
	}
	return float64(cfg.Iterations) / res.Time.Seconds(), nil
}

func fig15() (*Table, error) {
	t := &Table{
		ID:     "fig15",
		Title:  "QoS with real applications (performance normalized to no-background)",
		Header: []string{"App", "No b/g traffic", "SW-Pri", "HW-Sep", "No QoS"},
	}
	type runFn func(lite.QoSMode, bool) (float64, error)
	for _, app := range []struct {
		name string
		run  runFn
	}{{"LITE-Log", logRateUnder}, {"LITE-Graph", graphRateUnder}} {
		base, err := app.run(lite.QoSNone, false)
		if err != nil {
			return nil, err
		}
		row := []string{app.name, "1.00"}
		for _, mode := range []lite.QoSMode{lite.QoSSWPri, lite.QoSHWSep, lite.QoSNone} {
			v, err := app.run(mode, true)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", v/base))
		}
		t.AddRow(row...)
	}
	t.Note("paper: SW-Pri keeps high-priority apps near their no-background performance; HW-Sep is worse; no QoS worst")
	return t, nil
}

// fig16 reproduces the synthetic QoS timeline: low-priority writers
// run from t=0; high-priority writers join later; throughput is
// bucketed over time for each policy.
func fig16() (*Table, error) {
	t := &Table{
		ID:     "fig16",
		Title:  "QoS timeline, synthetic mix (GB/s per 10ms bucket; high joins at 20ms)",
		Header: []string{"t (ms)", "NoQoS total", "NoQoS high", "HW-Sep total", "HW-Sep high", "SW-Pri total", "SW-Pri high"},
	}
	const buckets = 8
	const bucketLen = 10 * time.Millisecond
	type series struct{ total, high [buckets]int64 }
	runPolicy := func(mode lite.QoSMode) (*series, error) {
		opts := lite.DefaultOptions()
		opts.QPsPerPair = 4
		cls, dep, err := newLITEOpts(3, opts)
		if err != nil {
			return nil, err
		}
		dep.SetQoSMode(mode)
		s := &series{}
		record := func(at simtime.Time, n int64, high bool) {
			b := int(at / bucketLen)
			if b >= 0 && b < buckets {
				s.total[b] += n
				if high {
					s.high[b] += n
				}
			}
		}
		var done simtime.WaitGroup
		const lowThreads, highThreads = 10, 10
		const lowOps, highOps = 1200, 800
		done.Add(lowThreads + highThreads)
		for th := 0; th < lowThreads; th++ {
			cls.GoOn(1, "low", func(p *simtime.Proc) {
				defer done.Done(p.Env())
				c := dep.Instance(1).KernelClient().SetPriority(lite.PriLow)
				h, err := c.MallocAt(p, []int{0}, 1<<20, "", lite.PermRead|lite.PermWrite)
				if err != nil {
					return
				}
				buf := make([]byte, 8<<10)
				for i := 0; i < lowOps; i++ {
					if err := c.Write(p, h, 0, buf); err != nil {
						return
					}
					record(p.Now(), int64(len(buf)), false)
				}
			})
		}
		for th := 0; th < highThreads; th++ {
			cls.GoOn(2, "high", func(p *simtime.Proc) {
				defer done.Done(p.Env())
				c := dep.Instance(2).KernelClient().SetPriority(lite.PriHigh)
				h, err := c.MallocAt(p, []int{0}, 1<<20, "", lite.PermRead|lite.PermWrite)
				if err != nil {
					return
				}
				p.Sleep(20 * time.Millisecond)
				buf := make([]byte, 8<<10)
				for i := 0; i < highOps; i++ {
					if err := c.Write(p, h, 0, buf); err != nil {
						return
					}
					record(p.Now(), int64(len(buf)), true)
				}
			})
		}
		if err := cls.Run(); err != nil {
			return nil, err
		}
		return s, nil
	}

	var all []*series
	for _, mode := range []lite.QoSMode{lite.QoSNone, lite.QoSHWSep, lite.QoSSWPri} {
		s, err := runPolicy(mode)
		if err != nil {
			return nil, err
		}
		all = append(all, s)
	}
	for b := 0; b < buckets; b++ {
		row := []string{fmt.Sprintf("%d-%d", b*10, b*10+10)}
		for _, s := range all {
			row = append(row, gbps(s.total[b], bucketLen), gbps(s.high[b], bucketLen))
		}
		t.AddRow(row...)
	}
	t.Note("paper: SW-Pri protects high-priority bandwidth while keeping total near no-QoS; HW-Sep has the lowest total")
	return t, nil
}
