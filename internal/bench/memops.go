package bench

import (
	"fmt"

	"lite/internal/lite"
	"lite/internal/simtime"
)

func init() {
	register("fig17", "Memory-like operation latency vs size (7.1)", fig17)
}

func fig17() (*Table, error) {
	t := &Table{
		ID:     "fig17",
		Title:  "LITE memory operation latency vs size",
		Header: []string{"Size (KB)", "LT_malloc (us)", "LT_memset (us)", "LT_memcpy (us)", "LT_memcpy local (us)", "LT_memmove (us)"},
	}
	sizes := []int64{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
	for _, size := range sizes {
		size := size
		cls, dep, err := newLITE(3)
		if err != nil {
			return nil, err
		}
		var malloc, memset, memcpyT, memcpyLocal, memmove simtime.Time
		cls.GoOn(0, "bench", func(p *simtime.Proc) {
			c := dep.Instance(0).KernelClient()
			start := p.Now()
			// LT_malloc at a remote node (the common datacenter case).
			src, err := c.MallocAt(p, []int{1}, size, "", lite.PermRead|lite.PermWrite)
			if err != nil {
				return
			}
			malloc = p.Now() - start
			// Destination on a different node for the remote memcpy, and
			// a sibling on the same node for the local one.
			dst, err := c.MallocAt(p, []int{2}, size, "", lite.PermRead|lite.PermWrite)
			if err != nil {
				return
			}
			sib, err := c.MallocAt(p, []int{1}, size, "", lite.PermRead|lite.PermWrite)
			if err != nil {
				return
			}
			start = p.Now()
			if err := c.Memset(p, src, 0, 0xAB, size); err != nil {
				return
			}
			memset = p.Now() - start
			start = p.Now()
			if err := c.Memcpy(p, dst, 0, src, 0, size); err != nil {
				return
			}
			memcpyT = p.Now() - start
			start = p.Now()
			if err := c.Memcpy(p, sib, 0, src, 0, size); err != nil {
				return
			}
			memcpyLocal = p.Now() - start
			start = p.Now()
			if err := c.Memmove(p, dst, 0, src, 0, size); err != nil {
				return
			}
			memmove = p.Now() - start
		})
		if err := cls.Run(); err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", size/1024), us(malloc), us(memset), us(memcpyT), us(memcpyLocal), us(memmove))
	}
	t.Note("paper: LT_malloc roughly flat; set/copy/move grow with size; the local memcpy variant is cheapest")
	return t, nil
}
