package bench

import (
	"fmt"

	"lite/internal/lite"
	"lite/internal/simtime"
)

func init() {
	register("lease", "Connection setup: cold rdma_cm connect vs kernel QP lease pool", leaseExp)
}

// The lease experiment measures what the KRCORE-style connection pool
// buys on the reconnect critical path: a node re-establishing its
// shared-QP fan-out (what a restarted server does before rejoining,
// and what a new client pays before its first RPC) either runs the
// full rdma_cm exchange per QP or leases pre-established connections
// and lets the background replenisher rebuild the pool off-path.
const (
	leaseNodes = 5
	leaseSrc   = 1
)

// runLease measures per-peer and full-fanout reconnect latency on one
// node, cold or leased.
func runLease(pool int) (perPeer, fanout simtime.Time, leased, cold int, err error) {
	opts := lite.DefaultOptions()
	opts.QPLeasePool = pool
	cls, dep, err := newLITEOpts(leaseNodes, opts)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	inst := dep.Instance(leaseSrc)
	cls.GoOn(leaseSrc, "lease-bench", func(p *simtime.Proc) {
		t0 := p.Now()
		first := simtime.Time(0)
		for dst := 0; dst < leaseNodes; dst++ {
			if dst == leaseSrc {
				continue
			}
			l, c := inst.ConnectPeer(p, dst)
			leased += l
			cold += c
			if first == 0 {
				first = p.Now() - t0
			}
		}
		perPeer = first
		fanout = p.Now() - t0
	})
	if err := cls.Run(); err != nil {
		return 0, 0, 0, 0, err
	}
	return perPeer, fanout, leased, cold, nil
}

func leaseExp() (*Table, error) {
	t := &Table{
		ID:     "lease",
		Title:  "Reconnect critical path: cold rdma_cm connect vs leased from the kernel connection pool",
		Header: []string{"Mode", "QPs leased", "QPs cold", "First peer (us)", "Full fan-out (us)"},
	}
	opts := lite.DefaultOptions()
	var coldFan, leasedFan simtime.Time
	for _, pool := range []int{0, opts.QPsPerPair} {
		perPeer, fanout, leased, cold, err := runLease(pool)
		if err != nil {
			return nil, err
		}
		mode := "cold"
		if pool > 0 {
			mode = "leased"
			leasedFan = fanout
		} else {
			coldFan = fanout
		}
		t.AddRow(mode, fmt.Sprintf("%d", leased), fmt.Sprintf("%d", cold), us(perPeer), us(fanout))
	}
	ratio := 0.0
	if leasedFan > 0 {
		ratio = float64(coldFan) / float64(leasedFan)
	}
	t.Note("leased connect is %.0fx faster than cold (%d QPs to each of %d peers; pool rebuilt by the background replenisher)",
		ratio, opts.QPsPerPair, leaseNodes-1)
	t.Note("cold pays the full rdma_cm exchange + QP state transitions per QP; a lease is a kernel pool lookup and ownership handoff")
	return t, nil
}
