package bench

import (
	"fmt"
	"strings"

	"lite/internal/obs"
	"lite/internal/simtime"
)

func init() {
	register("trace", "Span tree of one traced LT_RPC, 8B -> 4KB (5.3)", trace)
}

// traceRPC runs the §5.3 single-RPC workload — user-level client and
// user-level echo server on a 2-node cluster, one warmup call, then
// one measured call — and returns the measured call's end-to-end
// latency plus (when traced) every span recorded during it. The
// workload is identical either way, so the traced and untraced
// latencies must agree exactly; the trace experiment and the obs
// tests both assert that.
func traceRPC(traced bool) (simtime.Time, []obs.SpanView, error) {
	cls, dep, err := newLITE(2)
	if err != nil {
		return 0, nil, err
	}
	var dom *obs.Domain
	if traced {
		dom = cls.EnableObs()
		dom.EnableTracing()
	}
	inst := dep.Instance(1)
	if err := inst.RegisterRPC(benchFn); err != nil {
		return 0, nil, err
	}
	// The paper's breakdown is for user-level processes on both ends:
	// the client pays the LT_RPC entry crossing, the server the
	// LT_replyRPC entry crossing — two crossings total (§5.2).
	cls.GoDaemonOn(1, "echo", func(p *simtime.Proc) {
		c := inst.UserClient()
		call, err := c.RecvRPC(p, benchFn)
		for err == nil {
			n := int(call.Input[0]) | int(call.Input[1])<<8 | int(call.Input[2])<<16
			call, err = c.ReplyRecvRPC(p, call, make([]byte, n), benchFn)
		}
	})
	var lat simtime.Time
	var callErr error
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		c := dep.Instance(0).UserClient()
		in := rpcInput(8, 4096)
		if _, err := c.RPC(p, 1, benchFn, in, 4104); err != nil {
			callErr = err
			return
		}
		// Warmup done (binding negotiated, NIC caches hot): restrict
		// the trace to exactly the measured call.
		dom.ResetSpans()
		start := p.Now()
		if _, err := c.RPC(p, 1, benchFn, in, 4104); err != nil {
			callErr = err
			return
		}
		lat = p.Now() - start
	})
	if err := cls.Run(); err != nil {
		return 0, nil, err
	}
	if callErr != nil {
		return 0, nil, callErr
	}
	var spans []obs.SpanView
	if traced {
		spans = dom.Spans()
	}
	return lat, spans, nil
}

// spanTreeRows renders the spans as an indented tree, depth-first in
// start order, with starts relative to the earliest span.
func spanTreeRows(t *Table, spans []obs.SpanView) {
	present := make(map[uint64]bool, len(spans))
	for _, v := range spans {
		present[v.ID] = true
	}
	children := make(map[uint64][]obs.SpanView)
	var roots []obs.SpanView
	for _, v := range spans {
		if v.Parent != 0 && present[v.Parent] {
			children[v.Parent] = append(children[v.Parent], v)
		} else {
			roots = append(roots, v)
		}
	}
	base := spans[0].Start
	var walk func(v obs.SpanView, depth int)
	walk = func(v obs.SpanView, depth int) {
		t.AddRow(strings.Repeat("  ", depth)+v.Name,
			fmt.Sprintf("%d", v.Node), us(v.Start-base), us(v.Dur()))
		for _, c := range children[v.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

// trace regenerates the §5.3 breakdown as an emergent property of the
// span tree: no hand-rolled timers, just the spans each layer records.
func trace() (*Table, error) {
	base, _, err := traceRPC(false)
	if err != nil {
		return nil, err
	}
	lat, spans, err := traceRPC(true)
	if err != nil {
		return nil, err
	}
	if lat != base {
		return nil, fmt.Errorf("trace: tracing perturbed the timeline: %v traced vs %v untraced", lat, base)
	}
	if len(spans) == 0 {
		return nil, fmt.Errorf("trace: no spans recorded")
	}
	var root *obs.SpanView
	for k, v := range spans {
		if v.Name == "lite.rpc" {
			root = &spans[k]
			break
		}
	}
	if root == nil || root.Dur() != lat {
		return nil, fmt.Errorf("trace: client root span does not cover the call (%+v vs %v)", root, lat)
	}
	t := &Table{
		ID:     "trace",
		Title:  "One traced LT_RPC, 8B input -> 4KB return (5.3)",
		Header: []string{"Span", "Node", "Start (us)", "Dur (us)"},
	}
	spanTreeRows(t, spans)
	sums := obs.SumByName(spans)
	t.Note("traced end-to-end %s us == untraced %s us: observability is timeline-neutral", us(lat), us(base))
	t.Note("crossings %s us, metadata checks %s us (paper 5.3: ~0.17 us and <0.3 us)", us(sums["hostos.crossing"]), us(sums["lite.check"]))
	t.Note("server spans overlap the client's wait: the tree shows where the time goes, not a disjoint partition")
	return t, nil
}
