package bench

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"lite/internal/detrand"
	"lite/internal/lite"
	"lite/internal/load"
	"lite/internal/simtime"
)

func init() {
	register("fairness", "Per-client goodput under 2x overload: cost-aware fair admission vs depth-only ablation", fairness)
}

// The fairness experiment: four client nodes share one RPC server at
// 2x its capacity. Client 3 is greedy — it offers 5x the load of each
// well-behaved client — and every client demands at least its fair
// share, so the policies separate cleanly: depth-only admission hands
// out goodput in proportion to arrival rate (and to the greedy
// client's structural advantage in the admission race), while the
// cost-aware DRR policy equalizes per-client goodput.
const (
	fairnessClients = 4
	fairnessRate    = 2.0 // aggregate offered load, req/us (capacity is 1)
	fairnessReqs    = 2400
	fairnessSeed    = 42
)

// fairnessWeights is each client's slice of the aggregate arrival
// stream: client 3 offers 1.25 req/us, the rest 0.25 req/us each.
var fairnessWeights = []float64{0.25, 0.25, 0.25, 1.25}

// runFairness drives the multi-issuer open-loop workload against the
// tail-experiment server (2 workers x 2us service) with the chosen
// admission policy and returns the per-client results.
func runFairness(seed uint64, fair bool) ([]*load.Result, error) {
	opts := tailOpts(48)
	opts.FairAdmission = fair
	cls, dep, err := newLITEOpts(fairnessClients+1, opts)
	if err != nil {
		return nil, err
	}
	const srvNode = fairnessClients
	srv := dep.Instance(srvNode)
	if err := srv.ServeRPC(tailFn, tailWorkers, func(p *simtime.Proc, c *lite.Call) []byte {
		p.Work(tailService)
		return c.Input[:8]
	}); err != nil {
		return nil, err
	}
	// Warm every client's binding — and prime the service-time EWMA the
	// fair policy's cost model needs — before the schedule opens.
	for n := 0; n < fairnessClients; n++ {
		n := n
		cls.GoOn(n, "warmup", func(p *simtime.Proc) {
			c := dep.Instance(n).KernelClient()
			_, _ = c.RPCRetry(p, srvNode, tailFn, make([]byte, 16), 64)
		})
	}
	// One aggregate Poisson stream, deterministically thinned across the
	// issuers, so the server sees identical arrival instants under both
	// policies. Each issuer draws its keys from its own Zipf stream
	// (skewed per-client working sets, as in the kvstore workloads).
	scheds := load.SplitPoissonWeighted(seed, fairnessRate, fairnessReqs, 50*time.Microsecond, fairnessWeights)
	nodes := make([]int, fairnessClients)
	clients := make([]*lite.Client, fairnessClients)
	keys := make([][]uint64, fairnessClients)
	for n := 0; n < fairnessClients; n++ {
		nodes[n] = n
		clients[n] = dep.Instance(n).KernelClient()
		z := detrand.NewZipf(seed+uint64(n)*1000, 1.2, 1<<16)
		keys[n] = make([]uint64, len(scheds[n]))
		for k := range keys[n] {
			keys[n][k] = z.Next()
		}
	}
	// Issued raw (no retry wrapper): a shed must count as a shed, so the
	// per-client goodput measures what the server admitted, not how
	// persistently a client hammered it.
	res := load.RunMulti(cls, nodes, scheds, func(p *simtime.Proc, issuer, k int) load.Status {
		in := make([]byte, 16)
		binary.LittleEndian.PutUint64(in, keys[issuer][k])
		_, err := clients[issuer].RPC(p, srvNode, tailFn, in, 64)
		switch {
		case err == nil:
			return load.StatusOK
		case errors.Is(err, lite.ErrOverloaded):
			return load.StatusShed
		case errors.Is(err, lite.ErrTimeout):
			return load.StatusTimeout
		default:
			return load.StatusError
		}
	})
	if err := cls.Run(); err != nil {
		return nil, err
	}
	return res, nil
}

// fairnessRatio is the max/min per-client goodput (OK counts over a
// shared span, so the counts themselves compare).
func fairnessRatio(res []*load.Result) float64 {
	min, max := res[0].OK, res[0].OK
	for _, r := range res[1:] {
		if r.OK < min {
			min = r.OK
		}
		if r.OK > max {
			max = r.OK
		}
	}
	if min == 0 {
		return float64(max)
	}
	return float64(max) / float64(min)
}

func fairness() (*Table, error) {
	t := &Table{
		ID:     "fairness",
		Title:  "Per-client goodput at 2x overload, greedy client 3 vs 3 well-behaved (capacity 1 req/us)",
		Header: []string{"Policy", "Client", "Demand (req/us)", "Issued", "OK", "Shed", "Timeout", "Goodput (req/us)", "p99 (us)"},
	}
	var sum float64
	for _, w := range fairnessWeights {
		sum += w
	}
	for _, fair := range []bool{true, false} {
		res, err := runFairness(fairnessSeed, fair)
		if err != nil {
			return nil, err
		}
		policy := "depth-only"
		if fair {
			policy = "fair"
		}
		span := load.Merge(res)
		for n, r := range res {
			goodput := "0.00"
			if span.End > span.Start {
				goodput = fmt.Sprintf("%.2f", float64(r.OK)*1000.0/float64(span.End-span.Start))
			}
			t.AddRow(policy, fmt.Sprintf("%d", n),
				fmt.Sprintf("%.2f", fairnessRate*fairnessWeights[n]/sum),
				fmt.Sprintf("%d", r.Issued), fmt.Sprintf("%d", r.OK),
				fmt.Sprintf("%d", r.Shed), fmt.Sprintf("%d", r.Timeout),
				goodput, us(r.P99()))
		}
		t.Note("%s admission: per-client goodput max/min = %.2f", policy, fairnessRatio(res))
	}
	t.Note("identical arrival instants under both policies (one split Poisson stream); only the admission decision differs")
	t.Note("depth-only goodput tracks arrival share (greedy wins ~10x); fair DRR equalizes it and sheds the over-share client with a Retry-After hint")
	return t, nil
}
