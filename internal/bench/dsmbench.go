package bench

import (
	"fmt"

	"lite/internal/apps/dsm"
	"lite/internal/simtime"
)

func init() {
	register("dsm-micro", "LITE-DSM page operation latencies (8.4)", dsmMicro)
}

// dsmMicro reproduces §8.4's microbenchmark numbers: random and
// sequential 4KB reads, writes, and the acquire/release cost of
// committing ten dirty pages, on four machines.
func dsmMicro() (*Table, error) {
	t := &Table{
		ID:     "dsm-micro",
		Title:  "LITE-DSM operation latency (4 nodes, 4KB pages)",
		Header: []string{"Operation", "Latency (us)"},
	}
	cls, dep, err := newLITE(4)
	if err != nil {
		return nil, err
	}
	const reads = 50
	var randRead, seqRead, write, acquire, commit simtime.Time
	cls.GoOn(0, "bench", func(p *simtime.Proc) {
		sys, err := dsm.Boot(p, cls, dep, []int{0, 1, 2, 3}, 16<<20, dsm.DefaultConfig())
		if err != nil {
			return
		}
		d := sys.Node(0)
		buf := make([]byte, 4096)

		// Random 4KB reads over uncached pages.
		rng := xorshift(17)
		start := p.Now()
		for i := 0; i < reads; i++ {
			off := int64(rng.next()%(16<<20/4096)) * 4096
			if err := d.Read(p, off, buf); err != nil {
				return
			}
		}
		randRead = (p.Now() - start) / reads

		// Sequential 4KB reads over a fresh region (cold pages, but
		// consecutive homes round-robin across nodes).
		d2 := sys.Node(1)
		start = p.Now()
		for i := 0; i < reads; i++ {
			if err := d2.Read(p, int64(i)*4096, buf); err != nil {
				return
			}
		}
		seqRead = (p.Now() - start) / reads

		// Writes of fresh data to cached pages (faults already taken).
		for i := range buf {
			buf[i] = 0xC3
		}
		start = p.Now()
		for i := 0; i < reads; i++ {
			if err := d2.Write(p, int64(i)*4096, buf); err != nil {
				return
			}
		}
		write = (p.Now() - start) / reads

		// Acquire, then commit 10 dirty pages at release.
		start = p.Now()
		d2.Acquire(p)
		acquire = p.Now() - start
		start = p.Now()
		if err := d2.Release(p); err != nil {
			return
		}
		commit = p.Now() - start
	})
	if err := cls.Run(); err != nil {
		return nil, err
	}
	t.AddRow("random 4KB read (cold)", us(randRead))
	t.AddRow("sequential 4KB read (cold)", us(seqRead))
	t.AddRow("4KB write (cached page)", us(write))
	t.AddRow("sync begin (acquire)", us(acquire))
	t.AddRow(fmt.Sprintf("sync commit (%d dirty pages)", reads), us(commit))
	t.Note("paper 8.4: 12.6us random / 17.2us sequential 4KB reads; 9.2us sync begin; 74.3us commit of 10 dirty pages")
	return t, nil
}
