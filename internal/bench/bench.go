// Package bench is the experiment harness: one runner per table and
// figure of the paper's evaluation, each regenerating the same rows or
// series the paper reports (see DESIGN.md for the per-experiment
// index and EXPERIMENTS.md for paper-vs-measured results).
package bench

import (
	"fmt"
	"sort"
	"strings"

	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/obs"
	"lite/internal/params"
	"lite/internal/simtime"
)

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string

	// Virtual is the longest virtual-time span simulated by any cluster
	// the experiment built — the "how long would this have taken on real
	// hardware" figure, as opposed to host wall time.
	Virtual simtime.Time
	// Metrics is the merged observability snapshot across every cluster
	// the experiment built. Nil unless metrics collection was enabled
	// with SetObsEnabled (or an experiment enabled obs itself).
	Metrics *obs.Snapshot

	// Events is the total number of simulator events dispatched across
	// every cluster the experiment built (filled by Run). Deterministic
	// for a given workload, like Virtual.
	Events int64
	// EventsPerSec is the simulator's raw wall-time speed measured by
	// the experiment itself (events dispatched per host second). Only
	// experiments that measure it set it (see scalebench.go); unlike
	// every other figure it is host-dependent, so the bench guard
	// compares it with a tolerance band rather than exactly.
	EventsPerSec float64
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cols ...string) { t.Rows = append(t.Rows, cols) }

// Note appends a free-form note line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// Experiment is a registered experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Table, error)
}

var registry []Experiment

func register(id, title string, run func() (*Table, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Run executes one experiment by id. The returned table carries the
// virtual duration and (when enabled) merged metrics of every cluster
// the experiment constructed.
func Run(id string) (*Table, error) {
	e, ok := Lookup(id)
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q", id)
	}
	runClusters = nil
	tab, err := e.Run()
	if tab != nil {
		for _, cls := range runClusters {
			if d := cls.Env.Now(); d > tab.Virtual {
				tab.Virtual = d
			}
			tab.Events += cls.Env.Events()
		}
		if obsEnabled {
			var snaps []obs.Snapshot
			for _, cls := range runClusters {
				if cls.Obs != nil {
					snaps = append(snaps, cls.Obs.Snapshot())
				}
			}
			if len(snaps) > 0 {
				merged := obs.Merge(snaps...)
				tab.Metrics = &merged
			}
		}
	}
	runClusters = nil
	return tab, err
}

// ---- shared helpers ----

// obsEnabled makes newLITECfg/newBare enable observability on every
// cluster they build, so Run can attach a metrics snapshot.
var obsEnabled bool

// runClusters collects the clusters built during the current Run call
// (the harness is single-threaded).
var runClusters []*cluster.Cluster

// SetObsEnabled toggles metrics collection for subsequently run
// experiments.
func SetObsEnabled(v bool) { obsEnabled = v }

// track registers a cluster with the current experiment run.
func track(cls *cluster.Cluster) *cluster.Cluster {
	if obsEnabled {
		cls.EnableObs()
	}
	runClusters = append(runClusters, cls)
	return cls
}

// newLITE builds an n-node cluster with LITE booted.
func newLITE(n int) (*cluster.Cluster, *lite.Deployment, error) {
	return newLITEOpts(n, lite.DefaultOptions())
}

// newLITEOpts is newLITE with explicit LITE options.
func newLITEOpts(n int, opts lite.Options) (*cluster.Cluster, *lite.Deployment, error) {
	cfg := params.Default()
	return newLITECfg(&cfg, n, opts)
}

// newLITECfg is newLITE with an explicit cost model and LITE options.
// The config is copied so the caller may reuse it.
func newLITECfg(cfg *params.Config, n int, opts lite.Options) (*cluster.Cluster, *lite.Deployment, error) {
	own := *cfg
	cls, err := cluster.New(&own, n, 4<<30)
	if err != nil {
		return nil, nil, err
	}
	track(cls)
	dep, err := lite.Start(cls, opts)
	if err != nil {
		return nil, nil, err
	}
	return cls, dep, nil
}

// newBare builds an n-node cluster without LITE.
func newBare(n int) (*cluster.Cluster, error) {
	cfg := params.Default()
	cls, err := cluster.New(&cfg, n, 4<<30)
	if err != nil {
		return nil, err
	}
	return track(cls), nil
}

// us formats a duration in microseconds.
func us(d simtime.Time) string { return fmt.Sprintf("%.2f", float64(d)/1000.0) }

// gbps formats bytes over a duration as GB/s.
func gbps(bytes int64, d simtime.Time) string {
	if d <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", float64(bytes)/d.Seconds()/1e9)
}

// reqPerUs formats an operation rate as requests per microsecond.
func reqPerUs(ops int64, d simtime.Time) string {
	if d <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", float64(ops)/(float64(d)/1000.0))
}

// xorshift is a tiny deterministic PRNG for workload loops.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}
