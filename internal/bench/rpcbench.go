package bench

import (
	"fmt"
	"time"

	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/obs"
	"lite/internal/rpcbase"
	"lite/internal/simtime"
	"lite/internal/workload"
)

func init() {
	register("fig10", "RPC latency vs return size: LITE, 2 Verbs writes, HERD, FaSST", fig10)
	register("fig11", "RPC throughput vs return size, 1 and 16 clients", fig11)
	register("fig12", "RPC memory utilization under the Facebook key-value distribution", fig12)
	register("fig13", "CPU time per RPC vs inter-arrival amplification (Facebook distribution)", fig13)
	register("tab-cpu", "Total CPU time at 1000 RPC/s x 8 threads (5.3)", tabCPU)
	register("breakdown", "LITE RPC latency breakdown from obs spans (8B -> 4KB, 5.3)", breakdown)
}

const benchFn = lite.FirstUserFunc

// startLITEEcho runs LITE RPC server threads at node that reply with
// replySize bytes.
func startLITEEcho(cls *cluster.Cluster, dep *lite.Deployment, node, workers int) {
	inst := dep.Instance(node)
	_ = inst.RegisterRPC(benchFn)
	for w := 0; w < workers; w++ {
		cls.GoDaemonOn(node, "lite-echo", func(p *simtime.Proc) {
			c := inst.KernelClient()
			call, err := c.RecvRPC(p, benchFn)
			if err != nil {
				return
			}
			for {
				// First 4 bytes of input encode the reply size.
				n := int(call.Input[0]) | int(call.Input[1])<<8 | int(call.Input[2])<<16
				call, err = c.ReplyRecvRPC(p, call, make([]byte, n), benchFn)
				if err != nil {
					return
				}
			}
		})
	}
}

func rpcInput(inputSize, replySize int) []byte {
	in := make([]byte, inputSize)
	in[0] = byte(replySize)
	in[1] = byte(replySize >> 8)
	in[2] = byte(replySize >> 16)
	return in
}

// liteRPCLatency measures mean LT_RPC latency for 8B input and the
// given return size.
func liteRPCLatency(replySize int, kernel bool) (simtime.Time, error) {
	cls, dep, err := newLITE(2)
	if err != nil {
		return 0, err
	}
	startLITEEcho(cls, dep, 1, 2)
	var lat simtime.Time
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		var c *lite.Client
		if kernel {
			c = dep.Instance(0).KernelClient()
		} else {
			c = dep.Instance(0).UserClient()
		}
		in := rpcInput(8, replySize)
		const iters = 50
		if _, err := c.RPC(p, 1, benchFn, in, int64(replySize)+8); err != nil {
			return
		}
		start := p.Now()
		for i := 0; i < iters; i++ {
			if _, err := c.RPC(p, 1, benchFn, in, int64(replySize)+8); err != nil {
				return
			}
		}
		lat = (p.Now() - start) / iters
	})
	if err := cls.Run(); err != nil {
		return 0, err
	}
	return lat, nil
}

func farmTwoWriteLatency(replySize int) (simtime.Time, error) {
	cls, err := newBare(2)
	if err != nil {
		return 0, err
	}
	pair, err := rpcbase.NewFaRMPair(cls, 0, 1)
	if err != nil {
		return 0, err
	}
	var lat simtime.Time
	cls.GoOn(1, "responder", func(p *simtime.Proc) {
		e := pair.End(1)
		for i := 0; i < 41; i++ {
			if _, err := e.Recv(p); err != nil {
				return
			}
			if err := e.Send(p, make([]byte, replySize)); err != nil {
				return
			}
		}
	})
	cls.GoOn(0, "pinger", func(p *simtime.Proc) {
		e := pair.End(0)
		in := make([]byte, 8)
		_ = e.Send(p, in)
		_, _ = e.Recv(p)
		start := p.Now()
		for i := 0; i < 40; i++ {
			_ = e.Send(p, in)
			if _, err := e.Recv(p); err != nil {
				return
			}
		}
		lat = (p.Now() - start) / 40
	})
	if err := cls.Run(); err != nil {
		return 0, err
	}
	return lat, nil
}

func herdLatency(replySize int) (simtime.Time, error) {
	cls, err := newBare(2)
	if err != nil {
		return 0, err
	}
	srv := rpcbase.StartHERD(cls, 1, 1, func(in []byte) []byte { return make([]byte, replySize) })
	var lat simtime.Time
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		c, err := rpcbase.ConnectHERD(cls, srv, 0)
		if err != nil {
			return
		}
		in := make([]byte, 8)
		if _, err := c.Call(p, in); err != nil {
			return
		}
		start := p.Now()
		for i := 0; i < 50; i++ {
			if _, err := c.Call(p, in); err != nil {
				return
			}
		}
		lat = (p.Now() - start) / 50
	})
	if err := cls.Run(); err != nil {
		return 0, err
	}
	return lat, nil
}

func fasstLatency(replySize int) (simtime.Time, error) {
	cls, err := newBare(2)
	if err != nil {
		return 0, err
	}
	srv, err := rpcbase.StartFaSST(cls, 1, 1, func(in []byte) []byte { return make([]byte, replySize) })
	if err != nil {
		return 0, err
	}
	var lat simtime.Time
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		c, err := rpcbase.ConnectFaSST(cls, srv, 0)
		if err != nil {
			return
		}
		in := make([]byte, 8)
		if _, err := c.Call(p, in); err != nil {
			return
		}
		start := p.Now()
		for i := 0; i < 50; i++ {
			if _, err := c.Call(p, in); err != nil {
				return
			}
		}
		lat = (p.Now() - start) / 50
	})
	if err := cls.Run(); err != nil {
		return 0, err
	}
	return lat, nil
}

func fig10() (*Table, error) {
	t := &Table{
		ID:     "fig10",
		Title:  "RPC latency vs return size (8B input)",
		Header: []string{"Return (B)", "LITE_RPC (us)", "LITE_RPC KL (us)", "2 Verbs writes (us)", "HERD (us)", "FaSST (us)"},
	}
	for _, r := range []int{8, 64, 512, 4096} {
		user, err := liteRPCLatency(r, false)
		if err != nil {
			return nil, err
		}
		kl, err := liteRPCLatency(r, true)
		if err != nil {
			return nil, err
		}
		farm, err := farmTwoWriteLatency(r)
		if err != nil {
			return nil, err
		}
		herd, err := herdLatency(r)
		if err != nil {
			return nil, err
		}
		fasst, err := fasstLatency(r)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", r), us(user), us(kl), us(farm), us(herd), us(fasst))
	}
	t.Note("paper: LITE has a slight overhead over two bare writes; HERD slightly faster small, worse big; FaSST worst at large sizes")
	return t, nil
}

// liteRPCThroughput measures aggregate reply throughput with the given
// number of client threads.
func liteRPCThroughput(replySize, clients, opsPerClient int) (simtime.Time, error) {
	cls, dep, err := newLITE(2)
	if err != nil {
		return 0, err
	}
	startLITEEcho(cls, dep, 1, clients)
	var done, started simtime.WaitGroup
	done.Add(clients)
	started.Add(clients)
	var measStart, last simtime.Time
	var firstErr error
	for th := 0; th < clients; th++ {
		cls.GoOn(0, "client", func(p *simtime.Proc) {
			defer done.Done(p.Env())
			startedDone := false
			markStarted := func() {
				if !startedDone {
					startedDone = true
					started.Done(p.Env())
				}
			}
			defer markStarted()
			c := dep.Instance(0).KernelClient()
			in := rpcInput(8, replySize)
			if _, err := c.RPC(p, 1, benchFn, in, int64(replySize)+8); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			markStarted()
			started.Wait(p)
			if measStart == 0 {
				measStart = p.Now()
			}
			for i := 0; i < opsPerClient; i++ {
				if _, err := c.RPC(p, 1, benchFn, in, int64(replySize)+8); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
			}
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := cls.Run(); err != nil {
		return 0, err
	}
	if firstErr != nil {
		return 0, firstErr
	}
	return last - measStart, nil
}

func baseRPCThroughput(scheme string, replySize, clients, opsPerClient int) (simtime.Time, error) {
	cls, err := newBare(2)
	if err != nil {
		return 0, err
	}
	handler := func(in []byte) []byte { return make([]byte, replySize) }
	var herdSrv *rpcbase.HERDServer
	var fasstSrv *rpcbase.FaSSTServer
	switch scheme {
	case "herd":
		herdSrv = rpcbase.StartHERD(cls, 1, 4, handler)
	case "fasst":
		// FaSST's master poller executes handlers inline: one thread.
		fasstSrv, err = rpcbase.StartFaSST(cls, 1, 1, handler)
		if err != nil {
			return 0, err
		}
	}
	var done, started simtime.WaitGroup
	done.Add(clients)
	started.Add(clients)
	var measStart, last simtime.Time
	var firstErr error
	for th := 0; th < clients; th++ {
		cls.GoOn(0, "client", func(p *simtime.Proc) {
			defer done.Done(p.Env())
			startedDone := false
			markStarted := func() {
				if !startedDone {
					startedDone = true
					started.Done(p.Env())
				}
			}
			defer markStarted()
			fail := func(err error) {
				if firstErr == nil {
					firstErr = err
				}
			}
			var call func(*simtime.Proc, []byte) ([]byte, error)
			switch scheme {
			case "herd":
				c, err := rpcbase.ConnectHERD(cls, herdSrv, 0)
				if err != nil {
					fail(err)
					return
				}
				call = c.Call
			case "fasst":
				c, err := rpcbase.ConnectFaSST(cls, fasstSrv, 0)
				if err != nil {
					fail(err)
					return
				}
				call = c.Call
			}
			in := make([]byte, 8)
			if _, err := call(p, in); err != nil {
				fail(err)
				return
			}
			markStarted()
			started.Wait(p)
			if measStart == 0 {
				measStart = p.Now()
			}
			for i := 0; i < opsPerClient; i++ {
				if _, err := call(p, in); err != nil {
					fail(err)
					return
				}
			}
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := cls.Run(); err != nil {
		return 0, err
	}
	if firstErr != nil {
		return 0, firstErr
	}
	return last - measStart, nil
}

func fig11() (*Table, error) {
	t := &Table{
		ID:     "fig11",
		Title:  "RPC throughput vs return size (8B input)",
		Header: []string{"Return (B)", "LITE-1 (GB/s)", "HERD-1 (GB/s)", "FaSST-1 (GB/s)", "LITE-16 (GB/s)", "HERD-16 (GB/s)", "FaSST-16 (GB/s)"},
	}
	const ops = 150
	for _, r := range []int{64, 512, 1024, 4096} {
		row := []string{fmt.Sprintf("%d", r)}
		for _, clients := range []int{1, 16} {
			el, err := liteRPCThroughput(r, clients, ops)
			if err != nil {
				return nil, err
			}
			row = append(row, gbps(int64(clients*ops*r), el))
			for _, s := range []string{"herd", "fasst"} {
				el, err := baseRPCThroughput(s, r, clients, ops)
				if err != nil {
					return nil, err
				}
				row = append(row, gbps(int64(clients*ops*r), el))
			}
		}
		t.AddRow(row...)
	}
	t.Note("paper: LITE-16 highest beyond ~1KB returns; FaSST limited by its inline-handler master poller")
	return t, nil
}

func fig12() (*Table, error) {
	t := &Table{
		ID:     "fig12",
		Title:  "RPC memory utilization, Facebook ETC key/value sizes",
		Header: []string{"Scheme", "Key utilization", "Value utilization"},
	}
	kv := workload.NewFacebookKV(99)
	const n = 50000
	keys := make([]int64, n)
	vals := make([]int64, n)
	for i := 0; i < n; i++ {
		keys[i] = kv.KeySize()
		vals[i] = kv.ValueSize()
	}
	for k := 1; k <= 4; k++ {
		ku := rpcbase.SendRQUtilization(keys, rpcbase.RQClasses(keys, k))
		vu := rpcbase.SendRQUtilization(vals, rpcbase.RQClasses(vals, k))
		t.AddRow(fmt.Sprintf("%dRQ", k), fmt.Sprintf("%.0f%%", ku*100), fmt.Sprintf("%.0f%%", vu*100))
	}
	t.AddRow("LITE", fmt.Sprintf("%.0f%%", rpcbase.LITERingUtilization(keys)*100),
		fmt.Sprintf("%.0f%%", rpcbase.LITERingUtilization(vals)*100))
	t.Note("paper: send-based RPC wastes posted buffers even with 4 sized RQs; LITE's write-imm rings consume only written bytes")
	return t, nil
}

// cpuPerRequest runs nReq RPCs with the given inter-arrival factor and
// returns total CPU time across both nodes divided by requests.
func cpuPerRequest(scheme string, factor int, nReq int) (simtime.Time, error) {
	gaps := make([]simtime.Time, nReq)
	kv := workload.NewFacebookKV(7)
	sizes := make([]int, nReq)
	for i := range gaps {
		gaps[i] = kv.InterArrival() * simtime.Time(factor)
		v := kv.ValueSize()
		if v > 4096 {
			v = 4096
		}
		sizes[i] = int(v)
	}
	var cls *cluster.Cluster
	run := func(call func(p *simtime.Proc, replySize int) error) error {
		var done simtime.WaitGroup
		const threads = 8
		done.Add(threads)
		for th := 0; th < threads; th++ {
			th := th
			cls.GoOn(0, "client", func(p *simtime.Proc) {
				defer done.Done(p.Env())
				for i := th; i < nReq; i += threads {
					p.Sleep(gaps[i] * threads)
					if err := call(p, sizes[i]); err != nil {
						return
					}
				}
			})
		}
		return cls.Run()
	}

	switch scheme {
	case "lite":
		lcls, dep, err := newLITE(2)
		if err != nil {
			return 0, err
		}
		cls = lcls
		startLITEEcho(cls, dep, 1, 8)
		clients := make([]*lite.Client, 8)
		for i := range clients {
			clients[i] = dep.Instance(0).UserClient()
		}
		var idx int
		if err := run(func(p *simtime.Proc, r int) error {
			c := clients[idx%8]
			idx++
			_, err := c.RPC(p, 1, benchFn, rpcInput(16, r), 4104)
			return err
		}); err != nil {
			return 0, err
		}
	case "herd":
		bcls, err := newBare(2)
		if err != nil {
			return 0, err
		}
		cls = bcls
		srv := rpcbase.StartHERD(cls, 1, 1, func(in []byte) []byte {
			n := int(in[0]) | int(in[1])<<8
			return make([]byte, n)
		})
		conns := make([]*rpcbase.HERDClient, 8)
		var setupDone simtime.WaitGroup
		setupDone.Add(1)
		cls.GoOn(0, "setup", func(p *simtime.Proc) {
			defer setupDone.Done(p.Env())
			for i := range conns {
				conns[i], _ = rpcbase.ConnectHERD(cls, srv, 0)
			}
		})
		var idx int
		if err := run(func(p *simtime.Proc, r int) error {
			setupDone.Wait(p)
			c := conns[idx%8]
			idx++
			in := make([]byte, 16)
			in[0], in[1] = byte(r), byte(r>>8)
			_, err := c.Call(p, in)
			return err
		}); err != nil {
			return 0, err
		}
	case "fasst":
		bcls, err := newBare(2)
		if err != nil {
			return 0, err
		}
		cls = bcls
		srv, err := rpcbase.StartFaSST(cls, 1, 1, func(in []byte) []byte {
			n := int(in[0]) | int(in[1])<<8
			return make([]byte, n)
		})
		if err != nil {
			return 0, err
		}
		conns := make([]*rpcbase.FaSSTClient, 8)
		var setupDone simtime.WaitGroup
		setupDone.Add(1)
		cls.GoOn(0, "setup", func(p *simtime.Proc) {
			defer setupDone.Done(p.Env())
			for i := range conns {
				conns[i], _ = rpcbase.ConnectFaSST(cls, srv, 0)
			}
		})
		var idx int
		if err := run(func(p *simtime.Proc, r int) error {
			setupDone.Wait(p)
			c := conns[idx%8]
			idx++
			in := make([]byte, 16)
			in[0], in[1] = byte(r), byte(r>>8)
			_, err := c.Call(p, in)
			return err
		}); err != nil {
			return 0, err
		}
	}
	return cls.TotalCPU() / simtime.Time(nReq), nil
}

func fig13() (*Table, error) {
	t := &Table{
		ID:     "fig13",
		Title:  "CPU time per RPC vs inter-arrival amplification (Facebook distribution, 8 threads)",
		Header: []string{"Factor", "HERD (us)", "FaSST (us)", "LITE (us)"},
	}
	const nReq = 2000
	for _, f := range []int{1, 2, 4, 8} {
		h, err := cpuPerRequest("herd", f, nReq)
		if err != nil {
			return nil, err
		}
		fa, err := cpuPerRequest("fasst", f, nReq)
		if err != nil {
			return nil, err
		}
		l, err := cpuPerRequest("lite", f, nReq)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%dx", f), us(h), us(fa), us(l))
	}
	t.Note("paper: LITE lowest at light load (adaptive sleep); polling designs burn CPU in proportion to idle time")
	return t, nil
}

func tabCPU() (*Table, error) {
	t := &Table{
		ID:     "tab-cpu",
		Title:  "Total CPU time, 1000 RPC/s across 8 threads for 1s (5.3)",
		Header: []string{"Scheme", "CPU time (s)"},
	}
	// 1000 requests at fixed 1ms spacing across 8 threads.
	for _, scheme := range []string{"lite", "herd", "fasst"} {
		cpu, err := fixedRateCPU(scheme, 1000, time.Millisecond)
		if err != nil {
			return nil, err
		}
		t.AddRow(scheme, fmt.Sprintf("%.2f", cpu.Seconds()))
	}
	t.Note("paper: LITE 4.3s vs HERD 8.7s and FaSST 8.8s on their testbed; the ordering and rough ratio are the reproducible shape")
	return t, nil
}

func fixedRateCPU(scheme string, nReq int, gap simtime.Time) (simtime.Time, error) {
	// Reuse cpuPerRequest's machinery with constant gaps by shadowing
	// the Facebook distribution: emulate with factor chosen so mean
	// gap ~ target. Simpler: run a dedicated loop here.
	switch scheme {
	case "lite":
		cls, dep, err := newLITE(2)
		if err != nil {
			return 0, err
		}
		startLITEEcho(cls, dep, 1, 8)
		var done simtime.WaitGroup
		const threads = 8
		done.Add(threads)
		for th := 0; th < threads; th++ {
			cls.GoOn(0, "client", func(p *simtime.Proc) {
				defer done.Done(p.Env())
				c := dep.Instance(0).UserClient()
				for i := 0; i < nReq/threads; i++ {
					p.Sleep(gap * threads)
					if _, err := c.RPC(p, 1, benchFn, rpcInput(16, 64), 128); err != nil {
						return
					}
				}
			})
		}
		if err := cls.Run(); err != nil {
			return 0, err
		}
		return cls.TotalCPU(), nil
	default:
		cls, err := newBare(2)
		if err != nil {
			return 0, err
		}
		handler := func(in []byte) []byte { return make([]byte, 64) }
		var herdSrv *rpcbase.HERDServer
		var fasstSrv *rpcbase.FaSSTServer
		if scheme == "herd" {
			herdSrv = rpcbase.StartHERD(cls, 1, 1, handler)
		} else {
			fasstSrv, err = rpcbase.StartFaSST(cls, 1, 1, handler)
			if err != nil {
				return 0, err
			}
		}
		var done simtime.WaitGroup
		const threads = 8
		done.Add(threads)
		for th := 0; th < threads; th++ {
			cls.GoOn(0, "client", func(p *simtime.Proc) {
				defer done.Done(p.Env())
				var call func(*simtime.Proc, []byte) ([]byte, error)
				if scheme == "herd" {
					c, err := rpcbase.ConnectHERD(cls, herdSrv, 0)
					if err != nil {
						return
					}
					call = c.Call
				} else {
					c, err := rpcbase.ConnectFaSST(cls, fasstSrv, 0)
					if err != nil {
						return
					}
					call = c.Call
				}
				for i := 0; i < nReq/threads; i++ {
					p.Sleep(gap * threads)
					if _, err := call(p, make([]byte, 16)); err != nil {
						return
					}
				}
			})
		}
		if err := cls.Run(); err != nil {
			return 0, err
		}
		return cls.TotalCPU(), nil
	}
}

// breakdown derives the §5.3 component table from the spans of one
// traced call: each row sums the spans of one layer, replacing the
// hand-computed cfg arithmetic this experiment used to hard-code.
func breakdown() (*Table, error) {
	t := &Table{
		ID:     "breakdown",
		Title:  "LITE RPC latency breakdown from obs spans, 8B input -> 4KB return (5.3)",
		Header: []string{"Component", "Time (us)", "Spans"},
	}
	_, spans, err := traceRPC(true)
	if err != nil {
		return nil, err
	}
	sums := obs.SumByName(spans)
	counts := obs.CountByName(spans)
	row := func(label string, names ...string) {
		var d simtime.Time
		var n int
		for _, nm := range names {
			d += sums[nm]
			n += counts[nm]
		}
		t.AddRow(label, us(d), fmt.Sprintf("%d", n))
	}
	row("total (client LT_RPC)", "lite.rpc")
	row("metadata (mapping+protection checks)", "lite.check")
	row("user/kernel crossings", "hostos.crossing")
	row("kernel dispatch", "hostos.dispatch")
	row("ring post (QoS+QP+doorbell)", "lite.rpc.post")
	row("NIC engine (WQE+caches)", "rnic.tx", "rnic.rx")
	row("NIC DMA", "rnic.tx_dma", "rnic.rx_dma")
	row("wire + switching", "fabric.wire")
	row("server turnaround", "lite.rpc.server")
	row("client reply wait", "lite.rpc.wait")
	t.Note("rows are summed obs spans of one traced call; NIC, wire, and server rows overlap the client's wait")
	t.Note("paper: 6.95us total; metadata < 0.3us; crossings ~0.17us")
	return t, nil
}
