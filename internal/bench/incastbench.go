// The incast experiment synchronizes ~200 clients onto one server's
// leaf downlink: every round, all clients fire a 4 KB request at the
// same virtual instant, so the aggregate burst must serialize through
// the victim leaf's oversubscribed spine downlinks before the NIC ever
// sees it. The fabric occupancy probes (DownlinkBusy vs IngressBusy)
// gate that the fabric — not the NIC — is the measured bottleneck,
// and fair admission + pacing must keep the victim's p99 bounded
// against the burst. Run twice per seed; the runs must agree
// bit-for-bit.
package bench

import (
	"errors"
	"fmt"
	"time"

	"lite/internal/lite"
	"lite/internal/obs"
	"lite/internal/params"
	"lite/internal/simtime"
)

func init() {
	register("incast", "Incast fan-in: 200 synchronized clients onto one server's leaf downlink", runIncast)
}

const (
	incastNodes     = 500
	incastLeafNodes = 25
	incastSpines    = 2 // few, slow uplinks: the downlink is the choke point
	incastVictim    = 1 // the server everyone converges on (leaf 0)
	incastClients   = 200
	incastRounds    = 24
	incastReqBytes  = 4096
	incastPeriod    = 500 * time.Microsecond
	incastFn        = lite.FirstUserFunc
	// incastP99Bound caps the admitted-and-paced victim p99 per call
	// (first attempt to success, shed-retries included).
	incastP99Bound = 500 * time.Microsecond
	// incastFabricMargin is how much busier the victim leaf's downlinks
	// must be than its NIC ingress for the run to count as fabric-bound.
	incastFabricMargin = 2.0
)

type incastOutcome struct {
	events       int64
	virtual      simtime.Time
	ops          int64
	errs         int64
	sheds        int64
	p50, p99     simtime.Time
	downlinkBusy simtime.Time // sum over spines into the victim leaf
	ingressBusy  simtime.Time // the victim NIC's own serialization
}

func runIncastOnce() (*incastOutcome, error) {
	cfg := params.Default()
	cfg.ClosLeafNodes = incastLeafNodes
	cfg.ClosSpines = incastSpines
	// Slow the uplinks to a quarter of the host link rate: the two
	// downlinks into the victim leaf aggregate to half a NIC, so the
	// fan-in queues in the fabric, not the NIC.
	cfg.ClosUplinkBandwidth = cfg.LinkBandwidth / 4
	opts := lite.DefaultOptions()
	opts.QPsPerPair = 1
	opts.MeshPeers = func(a, b int) bool { return a <= incastVictim || b <= incastVictim }
	opts.AdmissionHighWater = 64
	opts.FairAdmission = true
	opts.Pacer = true
	cls, dep, err := newLITECfg(&cfg, incastNodes, opts)
	if err != nil {
		return nil, err
	}
	if err := dep.Instance(incastVictim).RegisterRPC(incastFn); err != nil {
		return nil, err
	}
	for th := 0; th < 8; th++ {
		cls.GoDaemonOn(incastVictim, "incast-server", func(p *simtime.Proc) {
			c := dep.Instance(incastVictim).KernelClient()
			call, err := c.RecvRPC(p, incastFn)
			for err == nil {
				call, err = c.ReplyRecvRPC(p, call, []byte{1}, incastFn)
			}
		})
	}

	out := &incastOutcome{}
	hist := &obs.Histogram{}
	req := make([]byte, incastReqBytes)
	for i := range req {
		req[i] = byte(i)
	}
	// Clients live on leaves 1..8 — every request crosses the spines
	// into the victim's leaf.
	for ci := 0; ci < incastClients; ci++ {
		node := incastLeafNodes + ci
		lc := dep.Instance(node).KernelClient()
		cls.GoOn(node, "incast-client", func(p *simtime.Proc) {
			for r := 0; r < incastRounds; r++ {
				p.SleepUntil(simtime.Time(incastPeriod) * simtime.Time(r+1))
				t0 := p.Now()
				var err error
				for attempt := 0; ; attempt++ {
					_, err = lc.RPCRetry(p, incastVictim, incastFn, req, 8)
					var ov *lite.OverloadError
					if !errors.As(err, &ov) || attempt >= 50 {
						break
					}
					out.sheds++
					wait := ov.RetryAfter
					if wait <= 0 {
						wait = simtime.Time(time.Microsecond)
					}
					p.Sleep(wait)
				}
				out.ops++
				if err != nil {
					out.errs++
				} else {
					hist.Record(p.Now() - t0)
				}
			}
		})
	}
	if err := cls.Run(); err != nil {
		return nil, err
	}
	out.p50, out.p99 = hist.Quantile(0.5), hist.Quantile(0.99)
	for sp := 0; sp < incastSpines; sp++ {
		out.downlinkBusy += cls.Fab.DownlinkBusy(sp, incastVictim/incastLeafNodes)
	}
	out.ingressBusy = cls.Fab.IngressBusy(incastVictim)
	out.events = cls.Env.Events()
	out.virtual = cls.Env.Now()
	return out, nil
}

func runIncast() (*Table, error) {
	a, err := runIncastOnce()
	if err != nil {
		return nil, fmt.Errorf("incast: %w", err)
	}
	b, err := runIncastOnce()
	if err != nil {
		return nil, fmt.Errorf("incast: rerun: %w", err)
	}
	tab := &Table{
		ID:     "incast",
		Title:  "Incast fan-in: 200 synchronized 4KB requests per round onto one server",
		Header: []string{"metric", "value"},
	}
	tab.AddRow("ops", fmt.Sprintf("%d", a.ops))
	tab.AddRow("errs", fmt.Sprintf("%d", a.errs))
	tab.AddRow("sheds", fmt.Sprintf("%d", a.sheds))
	tab.AddRow("p50_us", us(a.p50))
	tab.AddRow("p99_us", us(a.p99))
	tab.AddRow("downlink_busy_us", us(a.downlinkBusy))
	tab.AddRow("nic_ingress_busy_us", us(a.ingressBusy))
	ratio := 0.0
	if a.ingressBusy > 0 {
		ratio = float64(a.downlinkBusy) / float64(a.ingressBusy)
	}
	tab.AddRow("fabric_over_nic", fmt.Sprintf("%.2f", ratio))
	tab.Note("topology: %d nodes, %d spines, uplinks at 1/4 host rate: the victim leaf's aggregate downlink is half a NIC, so the burst serializes in the fabric",
		incastNodes, incastSpines)
	tab.Note("%d clients x %d rounds, one %dB request per round fired at the same virtual instant; fair admission + pacer absorb the bursts", incastClients, incastRounds, incastReqBytes)

	if *a != *b {
		return tab, fmt.Errorf("incast: runs diverge: %+v vs %+v", a, b)
	}
	if a.errs != 0 {
		return tab, fmt.Errorf("incast: %d calls failed", a.errs)
	}
	if ratio < incastFabricMargin {
		return tab, fmt.Errorf("incast: downlink busy only %.2fx NIC ingress busy, want >= %.1fx (fabric is not the bottleneck)", ratio, incastFabricMargin)
	}
	if a.p99 > simtime.Time(incastP99Bound) {
		return tab, fmt.Errorf("incast: victim p99 %s us exceeds bound %v", us(a.p99), incastP99Bound)
	}
	return tab, nil
}
