package bench

import (
	"encoding/json"
	"os"
	"time"

	"lite/internal/obs"
	"lite/internal/params"
)

// JSONHist is a histogram summary in the JSON feed.
type JSONHist struct {
	Name   string `json:"name"`
	Count  int64  `json:"count"`
	SumNs  int64  `json:"sum_ns"`
	MinNs  int64  `json:"min_ns"`
	MaxNs  int64  `json:"max_ns"`
	MeanNs int64  `json:"mean_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P99Ns  int64  `json:"p99_ns"`
	P999Ns int64  `json:"p999_ns"`
}

// JSONMetrics is a metric snapshot in the JSON feed.
type JSONMetrics struct {
	Counters   map[string]int64 `json:"counters,omitempty"`
	Histograms []JSONHist       `json:"histograms,omitempty"`
}

// JSONResult is one experiment's machine-readable record: the table
// rows, the virtual duration the experiment simulated, the host wall
// time it took to simulate it (deliberately separate fields — one is
// the measurement, the other the cost of obtaining it), and the
// metric snapshot when collection was enabled.
type JSONResult struct {
	ID        string       `json:"id"`
	Title     string       `json:"title,omitempty"`
	Header    []string     `json:"header,omitempty"`
	Rows      [][]string   `json:"rows,omitempty"`
	Notes     []string     `json:"notes,omitempty"`
	VirtualNs int64        `json:"virtual_ns"`
	WallNs    int64        `json:"wall_ns"`
	Events    int64        `json:"events,omitempty"`
	Metrics   *JSONMetrics `json:"metrics,omitempty"`
	Error     string       `json:"error,omitempty"`
	// EventsPerSec is the simulator's wall-time speed as measured by
	// the experiment (zero for experiments that don't measure it).
	// Host-dependent: the bench guard compares it within a ±25% band,
	// unlike the exact virtual_ns comparison.
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// JSONReport is the top-level BENCH_*.json document. Params snapshots
// the cost model the figures were produced under (durations in
// nanoseconds), so a recorded virtual-time number can never be read
// against the wrong calibration.
type JSONReport struct {
	Benchmark string         `json:"benchmark"`
	Params    *params.Config `json:"params,omitempty"`
	Results   []JSONResult   `json:"results"`
}

// NewJSONResult converts one experiment outcome into its JSON record.
func NewJSONResult(id string, tab *Table, wall time.Duration, err error) JSONResult {
	r := JSONResult{ID: id, WallNs: wall.Nanoseconds()}
	if err != nil {
		r.Error = err.Error()
		return r
	}
	r.Title = tab.Title
	r.Header = tab.Header
	r.Rows = tab.Rows
	r.Notes = tab.Notes
	r.VirtualNs = int64(tab.Virtual)
	r.Events = tab.Events
	r.EventsPerSec = tab.EventsPerSec
	if tab.Metrics != nil {
		r.Metrics = newJSONMetrics(tab.Metrics)
	}
	return r
}

func newJSONMetrics(s *obs.Snapshot) *JSONMetrics {
	m := &JSONMetrics{Counters: s.Counters}
	for _, name := range s.HistNames() {
		h := s.Hists[name]
		m.Histograms = append(m.Histograms, JSONHist{
			Name:   name,
			Count:  h.Count(),
			SumNs:  int64(h.Sum()),
			MinNs:  int64(h.Min()),
			MaxNs:  int64(h.Max()),
			MeanNs: int64(h.Mean()),
			P50Ns:  int64(h.Quantile(0.5)),
			P99Ns:  int64(h.Quantile(0.99)),
			P999Ns: int64(h.Quantile(0.999)),
		})
	}
	return m
}

// WriteJSON writes the report to path, indented so the feed diffs
// cleanly in review.
func WriteJSON(path string, results []JSONResult) error {
	cfg := params.Default()
	data, err := json.MarshalIndent(JSONReport{Benchmark: "litebench", Params: &cfg, Results: results}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadJSON loads a report previously written by WriteJSON.
func ReadJSON(path string) (*JSONReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep JSONReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}
