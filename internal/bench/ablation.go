package bench

import (
	"fmt"
	"time"

	"lite/internal/lite"
	"lite/internal/params"
	"lite/internal/simtime"
)

// Ablations probe the design choices DESIGN.md calls out: the K in the
// K x N shared-QP budget (§6.1), LITE's adaptive poll window (§5.2),
// the physically contiguous chunk size behind large LMRs (§4.1), and
// the RPC ring size (§5.1).
func init() {
	register("abl-qp", "Ablation: shared QPs per node pair (K) vs write throughput", ablQP)
	register("abl-window", "Ablation: adaptive poll window vs RPC latency and CPU", ablWindow)
	register("abl-chunk", "Ablation: LMR chunk size vs large-transfer throughput (4.1's <2% claim)", ablChunk)
	register("abl-ring", "Ablation: RPC ring size vs 16-client throughput", ablRing)
}

func ablQP() (*Table, error) {
	t := &Table{
		ID:     "abl-qp",
		Title:  "Shared QPs per node pair (K) vs 48-thread 64B write throughput",
		Header: []string{"K", "Throughput (req/us)", "Outstanding-op budget"},
	}
	for _, k := range []int{1, 2, 4, 8} {
		opts := lite.DefaultOptions()
		opts.QPsPerPair = k
		cls, dep, err := newLITEOpts(2, opts)
		if err != nil {
			return nil, err
		}
		// Oversubscribe the per-QP outstanding-op budget so K is the
		// binding resource.
		const threads, ops = 48, 80
		var done simtime.WaitGroup
		done.Add(threads)
		var h lite.LH
		var last simtime.Time
		cls.GoOn(0, "setup", func(p *simtime.Proc) {
			c := dep.Instance(0).KernelClient()
			h, err = c.MallocAt(p, []int{1}, 1<<20, "", lite.PermRead|lite.PermWrite)
			if err != nil {
				return
			}
			for th := 0; th < threads; th++ {
				cls.GoOn(0, "writer", func(q *simtime.Proc) {
					defer done.Done(q.Env())
					qc := dep.Instance(0).KernelClient()
					buf := make([]byte, 64)
					for i := 0; i < ops; i++ {
						if err := qc.Write(q, h, 0, buf); err != nil {
							return
						}
					}
					if q.Now() > last {
						last = q.Now()
					}
				})
			}
			done.Wait(p)
		})
		if err := cls.Run(); err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", k), reqPerUs(int64(threads*ops), last),
			fmt.Sprintf("%d", k*16))
	}
	t.Note("throughput is insensitive to K: the NIC pipeline, not the QP budget, is the binding resource — which is why LITE can serve a whole node on K x N shared QPs (paper 6.1: 1<=K<=4 suffices)")
	return t, nil
}

func ablWindow() (*Table, error) {
	t := &Table{
		ID:     "abl-window",
		Title:  "Adaptive poll window vs 8B RPC latency and CPU per light-load request",
		Header: []string{"Window (us)", "RPC latency (us)", "CPU/req at 60us gaps (us)"},
	}
	for _, w := range []time.Duration{1 * time.Microsecond, 4 * time.Microsecond, 8 * time.Microsecond, 25 * time.Microsecond, 100 * time.Microsecond} {
		lat, err := rpcLatencyWithWindow(w)
		if err != nil {
			return nil, err
		}
		cpu, err := rpcCPUWithWindow(w)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0f", float64(w)/1000), us(lat), us(cpu))
	}
	t.Note("small windows add wakeup latency to every RPC; large windows burn CPU at light load — 5.2's tradeoff")
	return t, nil
}

func rpcLatencyWithWindow(w time.Duration) (simtime.Time, error) {
	cfg := params.Default()
	cfg.AdaptivePollWindow = w
	return liteRPCLatencyCfg(&cfg, 64)
}

func rpcCPUWithWindow(w time.Duration) (simtime.Time, error) {
	cfg := params.Default()
	cfg.AdaptivePollWindow = w
	cls, dep, err := newLITECfg(&cfg, 2, lite.DefaultOptions())
	if err != nil {
		return 0, err
	}
	startLITEEcho(cls, dep, 1, 2)
	const nReq = 400
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		c := dep.Instance(0).UserClient()
		in := rpcInput(16, 64)
		for i := 0; i < nReq; i++ {
			p.Sleep(60 * time.Microsecond)
			if _, err := c.RPC(p, 1, benchFn, in, 128); err != nil {
				return
			}
		}
	})
	if err := cls.Run(); err != nil {
		return 0, err
	}
	return cls.TotalCPU() / nReq, nil
}

// liteRPCLatencyCfg is liteRPCLatency with a custom cost model.
func liteRPCLatencyCfg(cfg *params.Config, replySize int) (simtime.Time, error) {
	cls, dep, err := newLITECfg(cfg, 2, lite.DefaultOptions())
	if err != nil {
		return 0, err
	}
	startLITEEcho(cls, dep, 1, 2)
	var lat simtime.Time
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		in := rpcInput(8, replySize)
		const iters = 50
		if _, err := c.RPC(p, 1, benchFn, in, int64(replySize)+8); err != nil {
			return
		}
		start := p.Now()
		for i := 0; i < iters; i++ {
			if _, err := c.RPC(p, 1, benchFn, in, int64(replySize)+8); err != nil {
				return
			}
		}
		lat = (p.Now() - start) / iters
	})
	if err := cls.Run(); err != nil {
		return 0, err
	}
	return lat, nil
}

func ablChunk() (*Table, error) {
	t := &Table{
		ID:     "abl-chunk",
		Title:  "LMR chunk size vs 64MB LMR write throughput (1MB sequential writes)",
		Header: []string{"Chunk (MB)", "Throughput (GB/s)", "Chunks"},
	}
	const lmrSize = 64 << 20
	const writeSize = 1 << 20
	const ops = 128
	for _, chunkMB := range []int64{1, 4, 16, 64} {
		opts := lite.DefaultOptions()
		opts.MaxChunkBytes = chunkMB << 20
		cls, dep, err := newLITEOpts(2, opts)
		if err != nil {
			return nil, err
		}
		var elapsed simtime.Time
		cls.GoOn(0, "writer", func(p *simtime.Proc) {
			c := dep.Instance(0).KernelClient()
			h, err := c.MallocAt(p, []int{1}, lmrSize, "", lite.PermRead|lite.PermWrite)
			if err != nil {
				return
			}
			buf := make([]byte, writeSize)
			start := p.Now()
			for i := 0; i < ops; i++ {
				off := int64(i) % (lmrSize / writeSize) * writeSize
				if err := c.Write(p, h, off, buf); err != nil {
					return
				}
			}
			elapsed = p.Now() - start
		})
		if err := cls.Run(); err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", chunkMB), gbps(ops*writeSize, elapsed),
			fmt.Sprintf("%d", lmrSize/(chunkMB<<20)))
	}
	t.Note("paper 4.1: chunking large LMRs into small physically contiguous pieces costs under 2 percent vs one huge region")
	return t, nil
}

func ablRing() (*Table, error) {
	t := &Table{
		ID:     "abl-ring",
		Title:  "RPC ring size vs 16-client RPC throughput (4KB inputs ride the ring)",
		Header: []string{"Ring (KB)", "Throughput (GB/s)"},
	}
	for _, ringKB := range []int64{8, 32, 128, 1024} {
		opts := lite.DefaultOptions()
		opts.RingBytes = ringKB << 10
		cls, dep, err := newLITEOpts(2, opts)
		if err != nil {
			return nil, err
		}
		startLITEEcho(cls, dep, 1, 16)
		const clients, ops, inSize = 16, 120, 4096
		var done simtime.WaitGroup
		done.Add(clients)
		var last simtime.Time
		for th := 0; th < clients; th++ {
			cls.GoOn(0, "client", func(p *simtime.Proc) {
				defer done.Done(p.Env())
				c := dep.Instance(0).KernelClient()
				in := rpcInput(inSize, 8)
				for i := 0; i < ops; i++ {
					if _, err := c.RPC(p, 1, benchFn, in, 64); err != nil {
						return
					}
				}
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		if err := cls.Run(); err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", ringKB), gbps(int64(clients*ops*inSize), last))
	}
	t.Note("tiny rings stall clients on head-update flow control; beyond a few tens of KB the ring is off the critical path")
	return t, nil
}
