package bench

import (
	"fmt"

	"lite/internal/hostmem"
	"lite/internal/lite"
	"lite/internal/rnic"
	"lite/internal/simtime"
	"lite/internal/verbs"
)

func init() {
	register("fig4", "RDMA write latency vs number of (L)MRs (64B writes, 4KB regions)", fig4)
	register("fig5", "RDMA write throughput vs total (L)MR size (4 threads)", fig5)
	register("fig6", "Write latency vs request size: Verbs, LITE (kernel/user), TCP/IP", fig6)
	register("fig7", "Write throughput vs request size, 1 and 8 threads", fig7)
	register("fig8", "(De)registration latency vs size: Verbs pin/unpin vs LT_map/LT_unmap", fig8)
}

// verbsWriteLatency measures the mean blocking write latency against
// nMRs 4KB virtual regions at the remote node.
func verbsWriteLatency(nMRs, ops int) (simtime.Time, error) {
	cls, err := newBare(2)
	if err != nil {
		return 0, err
	}
	var out simtime.Time
	cls.GoOn(0, "bench", func(p *simtime.Proc) {
		local := verbs.Open(cls.Nodes[0].NIC, hostmem.NewAddressSpace(cls.Nodes[0].Mem))
		remote := verbs.Open(cls.Nodes[1].NIC, hostmem.NewAddressSpace(cls.Nodes[1].Mem))
		srcVA, _ := local.AddressSpace().Map(4096)
		src, err := local.RegisterMR(p, srcVA, 4096, rnic.PermRead|rnic.PermWrite)
		if err != nil {
			return
		}
		mrs := make([]*rnic.MR, nMRs)
		for i := range mrs {
			va, err := remote.AddressSpace().Map(4096)
			if err != nil {
				return
			}
			mrs[i], err = remote.RegisterMR(p, va, 4096, rnic.PermRead|rnic.PermWrite)
			if err != nil {
				return
			}
		}
		qa, _ := verbs.ConnectRC(local, remote)
		disp := verbs.NewDispatcher(qa.SendCQ())
		rng := xorshift(12345)
		warm := ops / 4
		var start simtime.Time
		for i := 0; i < warm+ops; i++ {
			if i == warm {
				start = p.Now()
			}
			mr := mrs[rng.next()%uint64(nMRs)]
			wrid := uint64(i + 1)
			_ = local.PostSend(p, qa, rnic.WR{
				Kind: rnic.OpWrite, WRID: wrid, Signaled: true,
				LocalMR: src, Len: 64, RemoteKey: mr.Key(),
			})
			disp.Wait(p, wrid)
		}
		out = (p.Now() - start) / simtime.Time(ops)
	})
	if err := cls.Run(); err != nil {
		return 0, err
	}
	return out, nil
}

// liteWriteLatency measures mean LT_write latency against nLMRs 4KB
// LMRs homed at the remote node.
func liteWriteLatency(nLMRs, ops int) (simtime.Time, error) {
	cls, dep, err := newLITE(2)
	if err != nil {
		return 0, err
	}
	var out simtime.Time
	cls.GoOn(0, "bench", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		lhs := make([]lite.LH, nLMRs)
		for i := range lhs {
			h, err := c.MallocAt(p, []int{1}, 4096, "", lite.PermRead|lite.PermWrite)
			if err != nil {
				return
			}
			lhs[i] = h
		}
		buf := make([]byte, 64)
		rng := xorshift(777)
		warm := ops / 4
		var start simtime.Time
		for i := 0; i < warm+ops; i++ {
			if i == warm {
				start = p.Now()
			}
			h := lhs[rng.next()%uint64(nLMRs)]
			if err := c.Write(p, h, 0, buf); err != nil {
				return
			}
		}
		out = (p.Now() - start) / simtime.Time(ops)
	})
	if err := cls.Run(); err != nil {
		return 0, err
	}
	return out, nil
}

func fig4() (*Table, error) {
	t := &Table{
		ID:     "fig4",
		Title:  "RDMA write latency vs number of (L)MRs (64B writes to random 4KB regions)",
		Header: []string{"#(L)MRs", "Verbs write (us)", "LITE_write (us)"},
	}
	counts := []int{10, 100, 1000, 10000, 50000}
	for _, n := range counts {
		ops := 1000
		v, err := verbsWriteLatency(n, ops)
		if err != nil {
			return nil, err
		}
		l, err := liteWriteLatency(n, ops)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n), us(v), us(l))
	}
	t.Note("paper: Verbs degrades past ~100 MRs (NIC key-cache thrash); LITE stays flat (one global physical MR)")
	return t, nil
}

// writeThroughput measures blocking-write throughput with the given
// thread count against one region of the given size, excluding setup:
// every thread first runs a warm-up quarter, all threads rendezvous,
// and only the timed ops count.
func writeThroughput(liteSide bool, size int64, writeSize int, threads, opsPerThread int) (simtime.Time, error) {
	warm := opsPerThread / 4
	var measStart, last simtime.Time
	var warmWG, done simtime.WaitGroup
	warmWG.Add(threads)
	done.Add(threads)

	// writer runs one thread's loop given a write closure.
	writer := func(q *simtime.Proc, seed uint64, write func(q *simtime.Proc, off int64) error) {
		defer done.Done(q.Env())
		rng := xorshift(seed)
		for i := 0; i < warm; i++ {
			off := int64(rng.next() % uint64(size-int64(writeSize)))
			if write(q, off) != nil {
				return
			}
		}
		warmWG.Done(q.Env())
		warmWG.Wait(q)
		if measStart == 0 {
			measStart = q.Now()
		}
		for i := 0; i < opsPerThread; i++ {
			off := int64(rng.next() % uint64(size-int64(writeSize)))
			if write(q, off) != nil {
				return
			}
		}
		if q.Now() > last {
			last = q.Now()
		}
	}

	if liteSide {
		cls, dep, err := newLITE(2)
		if err != nil {
			return 0, err
		}
		cls.GoOn(0, "setup", func(p *simtime.Proc) {
			c := dep.Instance(0).KernelClient()
			h, err := c.MallocAt(p, []int{1}, size, "", lite.PermRead|lite.PermWrite)
			if err != nil {
				return
			}
			for th := 0; th < threads; th++ {
				th := th
				cls.GoOn(0, "writer", func(q *simtime.Proc) {
					qc := dep.Instance(0).KernelClient()
					buf := make([]byte, writeSize)
					writer(q, uint64(th)*7919+13, func(q *simtime.Proc, off int64) error {
						return qc.Write(q, h, off, buf)
					})
				})
			}
			done.Wait(p)
		})
		if err := cls.Run(); err != nil {
			return 0, err
		}
		return last - measStart, nil
	}
	cls, err := newBare(2)
	if err != nil {
		return 0, err
	}
	cls.GoOn(0, "setup", func(p *simtime.Proc) {
		local := verbs.Open(cls.Nodes[0].NIC, hostmem.NewAddressSpace(cls.Nodes[0].Mem))
		remote := verbs.Open(cls.Nodes[1].NIC, hostmem.NewAddressSpace(cls.Nodes[1].Mem))
		va, err := remote.AddressSpace().Map(size)
		if err != nil {
			return
		}
		rmr, err := remote.RegisterMR(p, va, size, rnic.PermRead|rnic.PermWrite)
		if err != nil {
			return
		}
		srcVA, _ := local.AddressSpace().Map(int64(writeSize) + 4096)
		src, err := local.RegisterMR(p, srcVA, int64(writeSize)+4096, rnic.PermRead|rnic.PermWrite)
		if err != nil {
			return
		}
		for th := 0; th < threads; th++ {
			th := th
			qa, _ := verbs.ConnectRC(local, remote)
			disp := verbs.NewDispatcher(qa.SendCQ())
			cls.GoOn(0, "writer", func(q *simtime.Proc) {
				var wrid uint64
				writer(q, uint64(th)*104729+7, func(q *simtime.Proc, off int64) error {
					wrid++
					id := uint64(th+1)<<32 | wrid
					if err := local.PostSend(q, qa, rnic.WR{
						Kind: rnic.OpWrite, WRID: id, Signaled: true,
						LocalMR: src, Len: int64(writeSize),
						RemoteKey: rmr.Key(), RemoteOff: off,
					}); err != nil {
						return err
					}
					disp.Wait(q, id)
					return nil
				})
			})
		}
		done.Wait(p)
	})
	if err := cls.Run(); err != nil {
		return 0, err
	}
	return last - measStart, nil
}

func fig5() (*Table, error) {
	t := &Table{
		ID:     "fig5",
		Title:  "Write throughput vs total (L)MR size (4 threads, random writes)",
		Header: []string{"Size (MB)", "Verbs-64B (req/us)", "LITE-64B (req/us)", "Verbs-1K (req/us)", "LITE-1K (req/us)"},
	}
	const threads, ops = 4, 400
	for _, mb := range []int64{1, 4, 16, 64, 256, 1024} {
		size := mb << 20
		row := []string{fmt.Sprintf("%d", mb)}
		for _, ws := range []int{64, 1024} {
			v, err := writeThroughput(false, size, ws, threads, ops)
			if err != nil {
				return nil, err
			}
			l, err := writeThroughput(true, size, ws, threads, ops)
			if err != nil {
				return nil, err
			}
			row = append(row, reqPerUs(int64(threads*ops), v), reqPerUs(int64(threads*ops), l))
		}
		// Reorder: 64B pair then 1K pair already in order.
		t.AddRow(row...)
	}
	t.Note("paper: Verbs thrashes the NIC PTE cache above ~4MB; LITE stays flat (physical addressing)")
	return t, nil
}

func fig6() (*Table, error) {
	t := &Table{
		ID:     "fig6",
		Title:  "Write latency vs request size",
		Header: []string{"Size (B)", "Verbs (us)", "LITE KL (us)", "LITE user (us)", "TCP/IP (us)"},
	}
	sizes := []int{8, 64, 512, 4096, 32768}

	// Verbs and LITE on one cluster each.
	type meas struct{ verbs, kl, user simtime.Time }
	res := make(map[int]*meas)
	for _, s := range sizes {
		res[s] = &meas{}
	}
	cls, dep, err := newLITE(2)
	if err != nil {
		return nil, err
	}
	cls.GoOn(0, "bench", func(p *simtime.Proc) {
		// Native verbs target.
		local := verbs.Open(cls.Nodes[0].NIC, hostmem.NewAddressSpace(cls.Nodes[0].Mem))
		remote := verbs.Open(cls.Nodes[1].NIC, hostmem.NewAddressSpace(cls.Nodes[1].Mem))
		va, _ := remote.AddressSpace().Map(64 << 10)
		rmr, _ := remote.RegisterMR(p, va, 64<<10, rnic.PermRead|rnic.PermWrite)
		sva, _ := local.AddressSpace().Map(64 << 10)
		src, _ := local.RegisterMR(p, sva, 64<<10, rnic.PermRead|rnic.PermWrite)
		qa, _ := verbs.ConnectRC(local, remote)
		disp := verbs.NewDispatcher(qa.SendCQ())
		// LITE target.
		kc := dep.Instance(0).KernelClient()
		uc := dep.Instance(0).UserClient()
		h, _ := kc.MallocAt(p, []int{1}, 64<<10, "", lite.PermRead|lite.PermWrite)
		const iters = 60
		for _, s := range sizes {
			buf := make([]byte, s)
			measure := func(op func(i int)) simtime.Time {
				op(0) // warm
				start := p.Now()
				for i := 1; i <= iters; i++ {
					op(i)
				}
				return (p.Now() - start) / iters
			}
			res[s].verbs = measure(func(i int) {
				wrid := uint64(s*1000 + i + 1)
				_ = local.PostSend(p, qa, rnic.WR{
					Kind: rnic.OpWrite, WRID: wrid, Signaled: true,
					LocalMR: src, Len: int64(s), RemoteKey: rmr.Key(),
				})
				disp.Wait(p, wrid)
			})
			res[s].kl = measure(func(int) { _ = kc.Write(p, h, 0, buf) })
			res[s].user = measure(func(int) { _ = uc.Write(p, h, 0, buf) })
		}
	})
	if err := cls.Run(); err != nil {
		return nil, err
	}

	// TCP ping-pong on a fresh cluster; report one-way (RTT/2).
	tcpLat := make(map[int]simtime.Time)
	tcls, err := newBare(2)
	if err != nil {
		return nil, err
	}
	l, _ := tcls.Net.Stack(1).Listen(80)
	tcls.GoOn(1, "pong", func(p *simtime.Proc) {
		conn, err := l.Accept(p)
		if err != nil {
			return
		}
		for {
			m, err := conn.Recv(p)
			if err != nil {
				return
			}
			if err := conn.Send(p, m); err != nil {
				return
			}
		}
	})
	tcls.GoOn(0, "ping", func(p *simtime.Proc) {
		conn, err := tcls.Net.Stack(0).Dial(p, 1, 80)
		if err != nil {
			return
		}
		const iters = 40
		for _, s := range sizes {
			buf := make([]byte, s)
			_ = conn.Send(p, buf)
			_, _ = conn.Recv(p)
			start := p.Now()
			for i := 0; i < iters; i++ {
				_ = conn.Send(p, buf)
				_, _ = conn.Recv(p)
			}
			tcpLat[s] = (p.Now() - start) / (2 * iters)
		}
		conn.Close(p.Env())
	})
	if err := tcls.Run(); err != nil {
		return nil, err
	}

	for _, s := range sizes {
		t.AddRow(fmt.Sprintf("%d", s), us(res[s].verbs), us(res[s].kl), us(res[s].user), us(tcpLat[s]))
	}
	t.Note("paper: LITE KL ~= Verbs; LITE user slightly above (two crossings); TCP/IP an order of magnitude higher")
	return t, nil
}

func fig7() (*Table, error) {
	t := &Table{
		ID:     "fig7",
		Title:  "Write throughput vs request size (1 and 8 threads)",
		Header: []string{"Size (KB)", "Verbs-1 (GB/s)", "LITE-1 (GB/s)", "Verbs-8 (GB/s)", "LITE-8 (GB/s)", "RDMA-CM-8 (GB/s)", "TCP/IP (GB/s)"},
	}
	sizes := []int{1 << 10, 4 << 10, 16 << 10, 64 << 10}
	const ops = 300
	region := int64(2 << 20) // fits every cache: best case for both stacks
	for _, ws := range sizes {
		var cells []string
		cells = append(cells, fmt.Sprintf("%d", ws/1024))
		for _, cfgRun := range []struct {
			lite    bool
			threads int
		}{{false, 1}, {true, 1}, {false, 8}, {true, 8}} {
			el, err := writeThroughput(cfgRun.lite, region, ws, cfgRun.threads, ops)
			if err != nil {
				return nil, err
			}
			cells = append(cells, gbps(int64(cfgRun.threads*ops*ws), el))
		}
		// RDMA-CM: verbs plus librdmacm per-post overhead; modeled as
		// the verbs result (the paper finds them nearly identical).
		cells = append(cells, cells[4])
		el, err := tcpStreamTime(ws, ops*2)
		if err != nil {
			return nil, err
		}
		cells = append(cells, gbps(int64(2*ops*ws), el))
		t.AddRow(cells...)
	}
	t.Note("paper: LITE-8 ~= Verbs-8 at the ~4GB/s link peak; TCP/IP well below")
	return t, nil
}

// tcpStreamTime measures a one-directional TCP stream of count
// messages of the given size and returns the elapsed time.
func tcpStreamTime(msgSize, count int) (simtime.Time, error) {
	cls, err := newBare(2)
	if err != nil {
		return 0, err
	}
	l, _ := cls.Net.Stack(1).Listen(80)
	var done simtime.Time
	cls.GoOn(1, "sink", func(p *simtime.Proc) {
		conn, err := l.Accept(p)
		if err != nil {
			return
		}
		for i := 0; i < count; i++ {
			if _, err := conn.Recv(p); err != nil {
				return
			}
		}
		done = p.Now()
	})
	cls.GoOn(0, "source", func(p *simtime.Proc) {
		conn, err := cls.Net.Stack(0).Dial(p, 1, 80)
		if err != nil {
			return
		}
		buf := make([]byte, msgSize)
		for i := 0; i < count; i++ {
			if err := conn.Send(p, buf); err != nil {
				return
			}
		}
	})
	if err := cls.Run(); err != nil {
		return 0, err
	}
	return done, nil
}

func fig8() (*Table, error) {
	t := &Table{
		ID:     "fig8",
		Title:  "(De)registration latency vs region size",
		Header: []string{"Size (KB)", "Verbs register (us)", "Verbs deregister (us)", "LT_map (us)", "LT_unmap (us)"},
	}
	sizes := []int64{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

	for _, size := range sizes {
		var reg, dereg, ltmap, ltunmap simtime.Time
		cls, dep, err := newLITE(2)
		if err != nil {
			return nil, err
		}
		size := size
		ready := false
		var readyCond simtime.Cond
		cls.GoOn(1, "owner", func(p *simtime.Proc) {
			// The LMR lives at node 0 ("a local LMR" for the mapper);
			// its master is node 1.
			c := dep.Instance(1).KernelClient()
			_, _ = c.MallocAt(p, []int{0}, size, fmt.Sprintf("reg-%d", size), lite.PermRead|lite.PermWrite)
			ready = true
			readyCond.Broadcast(p.Env())
		})
		cls.GoOn(0, "bench", func(p *simtime.Proc) {
			for !ready {
				readyCond.Wait(p)
			}
			ctx := verbs.Open(cls.Nodes[0].NIC, hostmem.NewAddressSpace(cls.Nodes[0].Mem))
			va, err := ctx.AddressSpace().Map(size)
			if err != nil {
				return
			}
			start := p.Now()
			mr, err := ctx.RegisterMR(p, va, size, rnic.PermRead|rnic.PermWrite)
			if err != nil {
				return
			}
			reg = p.Now() - start
			start = p.Now()
			_ = ctx.DeregisterMR(p, mr)
			dereg = p.Now() - start

			c := dep.Instance(0).KernelClient()
			start = p.Now()
			h, err := c.Map(p, fmt.Sprintf("reg-%d", size))
			if err != nil {
				return
			}
			ltmap = p.Now() - start
			start = p.Now()
			_ = c.Unmap(p, h)
			ltunmap = p.Now() - start
		})
		if err := cls.Run(); err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", size/1024), us(reg), us(dereg), us(ltmap), us(ltunmap))
	}
	t.Note("paper: Verbs (de)registration grows with size (page pinning); LT_map/LT_unmap are flat metadata operations")
	return t, nil
}
