package bench

import (
	"fmt"
	"time"

	"lite/internal/apps/kvstore"
	"lite/internal/detrand"
	"lite/internal/lite"
	"lite/internal/load"
	"lite/internal/obs"
	"lite/internal/simtime"
)

func init() {
	register("drain", "Elasticity: kvstore tail latency during live shard migration vs crash-failover", drainExp)
}

// The drain experiment puts the elasticity claim on the open-loop tail
// harness: a two-shard kvstore serves a Poisson put/get mix while one
// shard leaves node 1 — either gracefully (DrainShard live-migrates it
// to a fresh node, in-flight calls complete, stale traffic bounces to
// the new home) or the way the pre-migration system did it (the node
// crashes; clients discover the death through heartbeats, the keys are
// lost and re-created on the survivors). Latency is windowed around
// the event: live migration must keep every call succeeding with p99
// within a small factor of steady state, while crash-failover eats a
// detection-timeout outage and a wave of failed calls.
const (
	drainNodes   = 5 // 0, 4 clients; 1, 2 shards; 3 migration target
	drainKeys    = 64
	drainRate    = 0.1 // per client node, req/us
	drainReqs    = 400 // per client node
	drainSeed    = 77
	drainStart   = 300 * time.Microsecond
	drainEventAt = 1500 * time.Microsecond
	drainWindow  = 1000 * time.Microsecond // "during" window after the event
)

// drainRec is one issued request's fate.
type drainRec struct {
	at  simtime.Time
	lat simtime.Time
	ok  bool
}

// runDrain drives the workload once. With migrate true the shard at
// node 1 live-migrates to node 3 at drainEventAt; otherwise node 1
// crashes there.
func runDrain(migrate bool) ([]drainRec, error) {
	opts := lite.DefaultOptions()
	opts.HeartbeatInterval = 100 * time.Microsecond
	opts.HeartbeatTimeout = 300 * time.Microsecond
	cls, dep, err := newLITEOpts(drainNodes, opts)
	if err != nil {
		return nil, err
	}
	s, err := kvstore.Start(cls, dep, []int{1, 2}, 2)
	if err != nil {
		return nil, err
	}
	key := func(k uint64) string { return fmt.Sprintf("key-%02d", k) }
	val := func(k uint64) []byte { return []byte(fmt.Sprintf("value-%02d", k)) }

	clientNodes := []int{0, 4}
	recs := make([][]drainRec, len(clientNodes))
	for ci, node := range clientNodes {
		ci, node := ci, node
		sched := load.Poisson(drainSeed+uint64(ci), drainRate, drainReqs, simtime.Time(drainStart))
		z := detrand.NewZipf(drainSeed+100*uint64(ci), 1.1, drainKeys)
		ops := make([]uint64, len(sched))
		for k := range ops {
			ops[k] = z.Next()
		}
		cls.GoOn(node, "drain-client", func(p *simtime.Proc) {
			k := s.NewClient(node)
			// Preload this client's half of the keyspace before the
			// schedule opens, so steady-state gets never miss.
			for i := uint64(ci); i < drainKeys; i += 2 {
				if err := k.Put(p, key(i), val(i)); err != nil {
					return
				}
			}
			var wg simtime.WaitGroup
			wg.Add(len(sched))
			out := make([]drainRec, len(sched))
			for idx, at := range sched {
				if at > p.Now() {
					p.SleepUntil(at)
				}
				idx := idx
				cls.GoOn(node, "drain-req", func(q *simtime.Proc) {
					defer wg.Done(q.Env())
					t0 := q.Now()
					kk := ops[idx]
					var err error
					if idx%2 == 0 {
						err = k.Put(q, key(kk), val(kk))
					} else {
						_, err = k.Get(q, key(kk))
					}
					out[idx] = drainRec{at: t0, lat: q.Now() - t0, ok: err == nil}
				})
			}
			wg.Wait(p)
			recs[ci] = out
		})
	}

	if migrate {
		cls.GoOn(1, "drain-driver", func(p *simtime.Proc) {
			p.SleepUntil(simtime.Time(drainEventAt))
			_ = s.DrainShard(p, 1, 3)
		})
	} else {
		cls.GoOn(0, "crash-driver", func(p *simtime.Proc) {
			p.SleepUntil(simtime.Time(drainEventAt))
			cls.CrashNode(p, 1)
		})
	}
	if err := cls.Run(); err != nil {
		return nil, err
	}
	var all []drainRec
	for _, r := range recs {
		all = append(all, r...)
	}
	return all, nil
}

// drainSummary is one window's digest.
type drainSummary struct {
	name       string
	issued, ok int
	p50, p99   simtime.Time
}

// drainWindows buckets records into steady / during / after around the
// event instant and summarizes each bucket.
func drainWindows(all []drainRec) []drainSummary {
	type bucket struct {
		name     string
		from, to simtime.Time
	}
	ev := simtime.Time(drainEventAt)
	buckets := []bucket{
		{"steady", 0, ev},
		{"during", ev, ev + simtime.Time(drainWindow)},
		{"after", ev + simtime.Time(drainWindow), 1 << 62},
	}
	var out []drainSummary
	for _, b := range buckets {
		h := &obs.Histogram{}
		s := drainSummary{name: b.name}
		for _, r := range all {
			if r.at < b.from || r.at >= b.to {
				continue
			}
			s.issued++
			if r.ok {
				s.ok++
				h.Record(r.lat)
			}
		}
		s.p50, s.p99 = h.Quantile(0.5), h.Quantile(0.99)
		out = append(out, s)
	}
	return out
}

func drainExp() (*Table, error) {
	t := &Table{
		ID:     "drain",
		Title:  "Put/get tail latency around a shard leaving node 1: live migration (DrainShard) vs crash-failover",
		Header: []string{"Mode", "Window", "Issued", "OK", "Failed", "p50 (us)", "p99 (us)"},
	}
	for _, migrate := range []bool{true, false} {
		all, err := runDrain(migrate)
		if err != nil {
			return nil, err
		}
		mode := "crash-failover"
		if migrate {
			mode = "live-migration"
		}
		var steady, during drainSummary
		for _, w := range drainWindows(all) {
			t.AddRow(mode, w.name, fmt.Sprintf("%d", w.issued), fmt.Sprintf("%d", w.ok),
				fmt.Sprintf("%d", w.issued-w.ok), us(w.p50), us(w.p99))
			switch w.name {
			case "steady":
				steady = w
			case "during":
				during = w
			}
		}
		ratio := 0.0
		if steady.p99 > 0 {
			ratio = float64(during.p99) / float64(steady.p99)
		}
		t.Note("%s: during-window p99 is %.2fx steady, %d of %d calls failed in the window",
			mode, ratio, during.issued-during.ok, during.issued)
	}
	t.Note("live migration keeps every call succeeding (held calls complete, stale traffic bounces to the new home); crash-failover fails calls until heartbeats declare the node dead and keys are re-created")
	return t, nil
}
