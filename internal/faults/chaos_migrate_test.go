package faults_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"lite/internal/cluster"
	"lite/internal/faults"
	"lite/internal/lite"
	"lite/internal/params"
	"lite/internal/simtime"
)

// The chaos-during-migration suite: a live migration of an RPC
// function runs under client load while a fault plan crashes a node at
// an exact protocol phase (the migration announces every phase on the
// event bus, and Plan.CrashOnEvent pins the crash to it). Whatever the
// fault, three invariants must hold:
//
//   - no client call fails and none executes twice (the dedup windows
//     travel with the function, so a retry that crosses the migration
//     redirects into the cached reply instead of re-running);
//   - ownership resolves to exactly one node, and every live
//     instance's view agrees (the manager's epoch-bumped handoff
//     record gates the commit, so a crash anywhere leaves either the
//     old owner or the new one — never both, never neither);
//   - the same seed replays the identical timeline, bit for bit.

const migChaosFn = lite.FirstUserFunc + 9

// migFault pins one crash to one migration phase.
type migFault struct {
	name         string
	event        string // migration-phase announcement that triggers the crash
	victim       int
	restartAfter simtime.Time
	commits      bool // whether the migration is expected to commit
}

// migFaults covers every phase of the protocol. Crashes at drain and
// transfer kill the target itself — the migration must abort and the
// source must keep serving as if nothing happened. Crashes of a
// bystander at prepare, fence, and commit interleave a membership
// epoch bump (death declaration, handoff purge) with the protocol —
// the migration must ride through it and commit.
var migFaults = []migFault{
	{name: "bystander-at-prepare", event: "lite.migrate.prepare", victim: 5, restartAfter: 2 * time.Millisecond, commits: true},
	{name: "bystander-at-fence", event: "lite.migrate.fence", victim: 5, commits: true},
	{name: "target-at-drain", event: "lite.migrate.drain", victim: 2, restartAfter: 3 * time.Millisecond, commits: false},
	{name: "target-at-transfer", event: "lite.migrate.transfer", victim: 2, commits: false},
	{name: "bystander-at-commit", event: "lite.migrate.commit", victim: 5, commits: true},
}

// migChaosOutcome captures everything observable about one run for the
// same-seed bit-identical comparison.
type migChaosOutcome struct {
	end       simtime.Time
	epoch     uint64
	drainErr  string
	owner     string
	committed int64
	aborted   int64
	counts    map[uint64]int
	calls     string
	dropped   int64
}

// runMigrationChaos executes one fault case once. Topology: node 0 is
// the manager, 1 the migration source, 2 the target, 3 and 4 run
// clients, 5 is an idle bystander.
func runMigrationChaos(t *testing.T, seed uint64, fc migFault) migChaosOutcome {
	t.Helper()
	pcfg := params.Default()
	cls := cluster.MustNew(&pcfg, 6, 1<<30)
	opts := lite.DefaultOptions()
	opts.HeartbeatInterval = 100 * time.Microsecond
	opts.HeartbeatTimeout = 300 * time.Microsecond
	dep, err := lite.Start(cls, opts)
	if err != nil {
		t.Fatal(err)
	}

	pl := faults.NewPlan(seed).
		CrashOnEvent(fc.event, fc.victim, fc.restartAfter).
		// The loss window opens after the migration settles: seeds then
		// perturb the client timeline (drops, retries) without making
		// the protocol outcome itself a coin flip.
		LossDuring(0.002, 1200*time.Microsecond, 2200*time.Microsecond)
	inj := faults.Attach(cls, pl)

	counts := make(map[uint64]int)
	serve := func(inst *lite.Instance, node, workers int) {
		for w := 0; w < workers; w++ {
			cls.GoDaemonOn(node, "mig-chaos-server", func(p *simtime.Proc) {
				c := inst.KernelClient()
				call, err := c.RecvRPC(p, migChaosFn)
				for err == nil {
					counts[binary.LittleEndian.Uint64(call.Input)]++
					call, err = c.ReplyRecvRPC(p, call, call.Input, migChaosFn)
				}
			})
		}
	}
	src := dep.Instance(1)
	if err := src.RegisterRPC(migChaosFn); err != nil {
		t.Fatal(err)
	}
	serve(src, 1, 2)
	tgt := dep.Instance(2)
	tgt.OnAdopt(migChaosFn, func(p *simtime.Proc, from int, app []byte) error {
		if err := tgt.RegisterRPC(migChaosFn); err != nil {
			return err
		}
		serve(tgt, 2, 2)
		return nil
	})

	// Client load across the whole migration window, every call logged.
	logs := make([][]string, 2)
	for ci, node := range []int{3, 4} {
		ci, node := ci, node
		cls.GoOn(node, "mig-chaos-client", func(p *simtime.Proc) {
			c := dep.Instance(node).KernelClient()
			for k := 0; k < 110; k++ {
				id := uint64(node)<<32 | uint64(k)
				var req [8]byte
				binary.LittleEndian.PutUint64(req[:], id)
				t0 := p.Now()
				out, err := c.RPCRetry(p, 1, migChaosFn, req[:], 64)
				if err != nil {
					t.Errorf("%s: client %d call %d failed: %v", fc.name, node, k, err)
					return
				}
				if !bytes.Equal(out, req[:]) {
					t.Errorf("%s: client %d call %d: bad echo", fc.name, node, k)
				}
				logs[ci] = append(logs[ci], fmt.Sprintf("c%d #%d at=%v lat=%v", node, k, t0, p.Now()-t0))
				p.Sleep(20 * time.Microsecond)
			}
		})
	}

	var drainErr error
	cls.GoOn(1, "mig-chaos-drain", func(p *simtime.Proc) {
		p.SleepUntil(400 * time.Microsecond)
		drainErr = src.Drain(p, migChaosFn, 2, nil)
	})

	// Verification after the dust settles: every live instance must
	// agree on the single owner, and the source must not be stuck in a
	// half-open migration.
	var owner string
	var epoch uint64
	cls.GoOn(0, "mig-chaos-verify", func(p *simtime.Proc) {
		p.SleepUntil(6 * time.Millisecond)
		mgr := dep.Instance(0).KernelClient()
		var views []string
		for n := 0; n < 6; n++ {
			if mgr.NodeDead(n) {
				continue
			}
			if to, ok := dep.Instance(n).MovedTo(1, migChaosFn); ok {
				views = append(views, fmt.Sprintf("%d:%d", n, to))
			} else {
				views = append(views, fmt.Sprintf("%d:src", n))
			}
		}
		owner = strings.Join(views, " ")
		epoch = mgr.MembershipEpoch()
		if src.MigratingFn(migChaosFn) {
			t.Errorf("%s: source still mid-migration after settling", fc.name)
		}
	})

	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}

	if fc.commits {
		if drainErr != nil {
			t.Errorf("%s: expected commit, Drain returned %v", fc.name, drainErr)
		}
		for _, v := range strings.Fields(owner) {
			if !strings.HasSuffix(v, ":2") {
				t.Errorf("%s: live view %s does not name the target as owner (views: %s)", fc.name, v, owner)
			}
		}
	} else {
		if drainErr == nil {
			t.Errorf("%s: expected abort, Drain succeeded", fc.name)
		}
		for _, v := range strings.Fields(owner) {
			if !strings.HasSuffix(v, ":src") {
				t.Errorf("%s: live view %s records a move after an abort (views: %s)", fc.name, v, owner)
			}
		}
	}
	for id, n := range counts {
		if n != 1 {
			t.Errorf("%s: request %#x executed %d times", fc.name, id, n)
		}
	}
	if len(counts) != 220 {
		t.Errorf("%s: %d distinct requests executed, want 220", fc.name, len(counts))
	}
	if inj.Crashes != 1 {
		t.Errorf("%s: injector fired %d crashes, want 1", fc.name, inj.Crashes)
	}

	errStr := ""
	if drainErr != nil {
		errStr = drainErr.Error()
	}
	var all []string
	for _, l := range logs {
		all = append(all, l...)
	}
	return migChaosOutcome{
		end:       cls.Env.Now(),
		epoch:     epoch,
		drainErr:  errStr,
		owner:     owner,
		committed: cls.Obs.Total("lite.migrate.committed"),
		aborted:   cls.Obs.Total("lite.migrate.aborted"),
		counts:    counts,
		calls:     strings.Join(all, "\n"),
		dropped:   inj.Dropped(),
	}
}

// migChaosSeeds are the three seeds CI replays (make migrate-chaos).
var migChaosSeeds = []uint64{0xA11CE, 0x0DDBA11, 0xF00D5EED}

// TestMigrationChaos runs every phase-pinned fault under every seed,
// twice each: the invariants must hold and the two same-seed runs must
// be bit-identical.
func TestMigrationChaos(t *testing.T) {
	for _, seed := range migChaosSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%#x", seed), func(t *testing.T) {
			for _, fc := range migFaults {
				fc := fc
				t.Run(fc.name, func(t *testing.T) {
					first := runMigrationChaos(t, seed, fc)
					second := runMigrationChaos(t, seed, fc)
					if !reflect.DeepEqual(first, second) {
						t.Errorf("same seed, different timelines:\n--- first\n%+v\n--- second\n%+v", first, second)
					}
				})
			}
		})
	}
}
