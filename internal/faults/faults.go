// Package faults provides seeded, deterministic fault injection for
// the simulated cluster: node crashes and restarts at chosen instants,
// link flaps, probabilistic message loss, and slow-node (degraded
// latency) injection. A Plan is a pure description; Attach installs an
// injector daemon that replays it against the cluster's fabric and
// crash hooks. The same plan and seed always produce the same
// simulated timeline, which is what makes chaos runs assertable.
package faults

import (
	"fmt"
	"sort"

	"lite/internal/cluster"
	"lite/internal/detrand"
	"lite/internal/simtime"
)

// EventKind enumerates injectable faults.
type EventKind int

const (
	// Crash fails Node at At (fabric port dark, software hooks run).
	Crash EventKind = iota
	// Restart brings Node back at At.
	Restart
	// LinkDown cuts the directed Src->Dst link at At.
	LinkDown
	// LinkUp restores the directed Src->Dst link at At.
	LinkUp
	// SlowNode injects Delay of extra one-way latency on every message
	// touching Node, from At on. Delay zero clears the injection.
	SlowNode
	// LossRate sets the probabilistic message-drop rate to Rate from
	// At on. Rate zero disables loss.
	LossRate
)

func (k EventKind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Restart:
		return "restart"
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case SlowNode:
		return "slow-node"
	case LossRate:
		return "loss-rate"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one scheduled fault.
type Event struct {
	At       simtime.Time
	Kind     EventKind
	Node     int          // Crash, Restart, SlowNode
	Src, Dst int          // LinkDown, LinkUp
	Delay    simtime.Time // SlowNode
	Rate     float64      // LossRate
}

// Trigger is an event-driven fault: the node crashes the instant the
// named cluster event is announced (first occurrence only), which pins
// faults to exact protocol phases — "crash the source at the commit
// point" — instead of guessing wall-clock offsets.
type Trigger struct {
	Event string
	Node  int
	// RestartAfter, when nonzero, brings the node back this long after
	// the triggered crash.
	RestartAfter simtime.Time
}

// Plan is a deterministic fault schedule. Seed drives the injector's
// probabilistic-loss RNG; the event list is explicit.
type Plan struct {
	Seed     uint64
	Events   []Event
	Triggers []Trigger
}

// NewPlan returns an empty plan with the given loss-RNG seed.
func NewPlan(seed uint64) *Plan { return &Plan{Seed: seed} }

// CrashAt schedules a node crash.
func (pl *Plan) CrashAt(node int, at simtime.Time) *Plan {
	pl.Events = append(pl.Events, Event{At: at, Kind: Crash, Node: node})
	return pl
}

// RestartAt schedules a node restart.
func (pl *Plan) RestartAt(node int, at simtime.Time) *Plan {
	pl.Events = append(pl.Events, Event{At: at, Kind: Restart, Node: node})
	return pl
}

// FlapLink cuts the directed src->dst link during [from, to).
func (pl *Plan) FlapLink(src, dst int, from, to simtime.Time) *Plan {
	pl.Events = append(pl.Events,
		Event{At: from, Kind: LinkDown, Src: src, Dst: dst},
		Event{At: to, Kind: LinkUp, Src: src, Dst: dst})
	return pl
}

// FlapBoth cuts both directions of the (a, b) pair during [from, to).
func (pl *Plan) FlapBoth(a, b int, from, to simtime.Time) *Plan {
	return pl.FlapLink(a, b, from, to).FlapLink(b, a, from, to)
}

// SlowNodeDuring injects extra one-way latency on every message
// touching node during [from, to).
func (pl *Plan) SlowNodeDuring(node int, delay, from, to simtime.Time) *Plan {
	pl.Events = append(pl.Events,
		Event{At: from, Kind: SlowNode, Node: node, Delay: delay},
		Event{At: to, Kind: SlowNode, Node: node, Delay: 0})
	return pl
}

// LossDuring drops each message with probability rate during [from, to).
func (pl *Plan) LossDuring(rate float64, from, to simtime.Time) *Plan {
	pl.Events = append(pl.Events,
		Event{At: from, Kind: LossRate, Rate: rate},
		Event{At: to, Kind: LossRate, Rate: 0})
	return pl
}

// CrashOnEvent schedules a crash of node at the first announcement of
// the named cluster event, optionally restarting it restartAfter later
// (zero means no restart).
func (pl *Plan) CrashOnEvent(event string, node int, restartAfter simtime.Time) *Plan {
	pl.Triggers = append(pl.Triggers, Trigger{Event: event, Node: node, RestartAfter: restartAfter})
	return pl
}

// sorted returns the events ordered by time (stable for equal times,
// so a plan's build order breaks ties deterministically).
func (pl *Plan) sorted() []Event {
	evs := append([]Event(nil), pl.Events...)
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].At < evs[b].At })
	return evs
}

// RandomPlan derives a randomized chaos schedule from a seed: one
// crash/restart pair on a victim node (never node 0, which usually
// hosts the manager), two bidirectional link flaps among survivors,
// and one probabilistic-loss window. All choices come from the seed,
// so a given (seed, nodes, horizon) is one fixed schedule.
func RandomPlan(seed uint64, nodes int, horizon simtime.Time) *Plan {
	if nodes < 3 {
		panic("faults: RandomPlan needs at least 3 nodes")
	}
	pl := NewPlan(seed)
	rng := detrand.New(seed)
	victim := 1 + int(rng.Uint64()%uint64(nodes-1))
	crashAt := horizon/4 + simtime.Time(rng.Uint64()%uint64(horizon/4))
	restartAt := crashAt + horizon/8 + simtime.Time(rng.Uint64()%uint64(horizon/4))
	pl.CrashAt(victim, crashAt).RestartAt(victim, restartAt)
	for f := 0; f < 2; f++ {
		a := int(rng.Uint64() % uint64(nodes))
		b := int(rng.Uint64() % uint64(nodes))
		for b == a || a == victim || b == victim {
			a = int(rng.Uint64() % uint64(nodes))
			b = int(rng.Uint64() % uint64(nodes))
		}
		from := simtime.Time(rng.Uint64() % uint64(horizon/2))
		to := from + horizon/16 + simtime.Time(rng.Uint64()%uint64(horizon/8))
		pl.FlapBoth(a, b, from, to)
	}
	lossFrom := simtime.Time(rng.Uint64() % uint64(horizon/2))
	pl.LossDuring(0.005, lossFrom, lossFrom+horizon/8)
	return pl
}

// Injector replays a plan against a cluster.
type Injector struct {
	cls  *cluster.Cluster
	plan *Plan
	rng  *detrand.RNG
	rate float64

	// Counters for reporting what actually happened.
	Crashes  int
	Restarts int
	Flaps    int
}

// Attach installs the plan on the cluster: the fabric gets the seeded
// drop hook and a daemon replays the events in time order. The daemon
// does not keep the simulation alive; when the workload finishes,
// remaining events are moot.
func Attach(cls *cluster.Cluster, pl *Plan) *Injector {
	inj := &Injector{cls: cls, plan: pl, rng: detrand.New(pl.Seed)}
	// Drop accounting lives in the observability registry; make sure
	// one exists so Dropped() always has a counter to read.
	cls.EnableObs()
	cls.Fab.SetDropHook(func(at simtime.Time, src, dst int, size int64) bool {
		return inj.rate > 0 && inj.rng.Float64() < inj.rate
	})
	if len(pl.Triggers) > 0 {
		fired := make([]bool, len(pl.Triggers))
		cls.OnEvent(func(p *simtime.Proc, name string) {
			for idx := range pl.Triggers {
				tr := pl.Triggers[idx]
				if fired[idx] || tr.Event != name {
					continue
				}
				fired[idx] = true
				inj.Crashes++
				inj.cls.CrashNode(p, tr.Node)
				if tr.RestartAfter > 0 {
					node, after := tr.Node, tr.RestartAfter
					cls.Env.GoDaemon("fault-trigger-restart", func(q *simtime.Proc) {
						q.Sleep(after)
						inj.Restarts++
						inj.cls.RestartNode(q, node)
					})
				}
			}
		})
	}
	events := pl.sorted()
	cls.Env.GoDaemon("fault-injector", func(p *simtime.Proc) {
		for _, ev := range events {
			if ev.At > p.Now() {
				p.Sleep(ev.At - p.Now())
			}
			inj.apply(p, ev)
		}
	})
	return inj
}

// Dropped returns the number of messages the loss hook has dropped.
func (inj *Injector) Dropped() int64 { return inj.cls.Obs.Total("fabric.dropped") }

func (inj *Injector) apply(p *simtime.Proc, ev Event) {
	switch ev.Kind {
	case Crash:
		inj.Crashes++
		inj.cls.CrashNode(p, ev.Node)
	case Restart:
		inj.Restarts++
		inj.cls.RestartNode(p, ev.Node)
	case LinkDown:
		inj.Flaps++
		inj.cls.Fab.SetLinkDown(ev.Src, ev.Dst)
	case LinkUp:
		inj.cls.Fab.SetLinkUp(ev.Src, ev.Dst)
	case SlowNode:
		inj.cls.Fab.SetNodeDelay(ev.Node, ev.Delay)
	case LossRate:
		inj.rate = ev.Rate
	}
}
