package faults_test

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"lite/internal/apps/kvstore"
	"lite/internal/apps/mapreduce"
	"lite/internal/cluster"
	"lite/internal/faults"
	"lite/internal/lite"
	"lite/internal/params"
	"lite/internal/simtime"
	"lite/internal/workload"
)

// RandomPlan must be a pure function of its inputs: the same seed
// yields the same schedule, a different seed a different one.
func TestRandomPlanDeterministic(t *testing.T) {
	a := faults.RandomPlan(7, 5, 20*time.Millisecond)
	b := faults.RandomPlan(7, 5, 20*time.Millisecond)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different plans:\n%v\n%v", a.Events, b.Events)
	}
	c := faults.RandomPlan(8, 5, 20*time.Millisecond)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical plans")
	}
	for _, ev := range a.Events {
		if ev.Kind == faults.Crash && ev.Node == 0 {
			t.Fatal("RandomPlan crashed node 0")
		}
	}
}

// chaosOutcome captures everything observable about one chaos run, so
// two runs of the same seed can be compared field by field.
type chaosOutcome struct {
	end      simtime.Time
	counts   map[string]int64
	log      string
	dropped  int64
	crashes  int
	restarts int
}

// runChaos executes the full chaos scenario once: a 5-node cluster with
// heartbeats on, a kvstore on nodes {1,2,3} with clients on 0 and 4,
// and a LITE-MR word count across workers {1,2,3,4} — while a seeded
// plan crashes node 2 mid-run, flaps two links, and opens a lossy
// window. It returns only when both applications have terminated.
func runChaos(t *testing.T, seed uint64) chaosOutcome {
	t.Helper()
	input := workload.NewCorpus(42, 300).Generate(40000)
	pcfg := params.Default()
	cls := cluster.MustNew(&pcfg, 5, 1<<30)
	opts := lite.DefaultOptions()
	opts.HeartbeatInterval = 100 * time.Microsecond
	opts.HeartbeatTimeout = 300 * time.Microsecond
	dep, err := lite.Start(cls, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Timed to land while LITE-MR is actually running: the crash hits
	// mid map phase, the first flap separates the master from worker 3
	// long enough to be suspected, the second flaps two workers, and
	// the loss window covers the re-execution.
	pl := faults.NewPlan(seed).
		CrashAt(2, 150*time.Microsecond).
		RestartAt(2, 8*time.Millisecond).
		FlapBoth(0, 3, 300*time.Microsecond, 2500*time.Microsecond).
		FlapBoth(1, 4, 3*time.Millisecond, 5*time.Millisecond).
		LossDuring(0.002, 100*time.Microsecond, 6*time.Millisecond)
	inj := faults.Attach(cls, pl)

	kv, err := kvstore.Start(cls, dep, []int{1, 2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	clientNodes := []int{0, 4}
	logs := make([][]string, len(clientNodes))
	for ci, node := range clientNodes {
		ci, node := ci, node
		cls.GoOn(node, "kv-client", func(p *simtime.Proc) {
			k := kv.NewClient(node)
			rec := func(format string, args ...any) {
				logs[ci] = append(logs[ci],
					fmt.Sprintf("%v c%d ", p.Now(), node)+fmt.Sprintf(format, args...))
			}
			keys := make([]string, 4)
			for i := range keys {
				keys[i] = fmt.Sprintf("c%d-key-%d", node, i)
			}
			// Chaos phase: keep writing and reading through the faults,
			// recording every outcome. Lost keys (crashed shard) and
			// transient errors are legal; hangs are not.
			for round := 0; p.Now() < 25*time.Millisecond; round++ {
				for _, key := range keys {
					val := []byte(fmt.Sprintf("%s-r%d", key, round))
					if err := k.Put(p, key, val); err != nil {
						rec("put %s: %v", key, err)
						continue
					}
					got, err := k.Get(p, key)
					switch {
					case err == kvstore.ErrNotFound:
						rec("get %s: lost", key)
					case err != nil:
						rec("get %s: %v", key, err)
					case !bytes.Equal(got, val):
						// A membership change between the put and the
						// get can re-home the key onto a server still
						// holding an older incarnation.
						rec("get %s: stale", key)
					}
				}
				p.Sleep(500 * time.Microsecond)
			}
			// The plan is exhausted; wait for the membership view to
			// settle, then every key must be writable and readable.
			lc := dep.Instance(node).KernelClient()
			deadline := p.Now() + 30*time.Millisecond
			for _, s := range []int{1, 2, 3} {
				for lc.NodeDead(s) {
					if p.Now() > deadline {
						t.Errorf("client %d: server %d still dead after the plan ended", node, s)
						return
					}
					p.Sleep(200 * time.Microsecond)
				}
			}
			for _, key := range keys {
				want := []byte(key + "-final")
				if err := k.Put(p, key, want); err != nil {
					t.Errorf("client %d: final put %s: %v", node, key, err)
					continue
				}
				got, err := k.Get(p, key)
				if err != nil || !bytes.Equal(got, want) {
					t.Errorf("client %d: final get %s = %q, %v", node, key, got, err)
				}
			}
			rec("done")
		})
	}

	mcfg := mapreduce.DefaultConfig(0, []int{1, 2, 3, 4}, 2, 4)
	mcfg.ChunkSize = 4096
	mcfg.TaskTimeout = 5 * time.Millisecond
	res, err := mapreduce.RunLITE(cls, dep, mcfg, input)
	if err != nil {
		t.Fatalf("LITE-MR under chaos: %v", err)
	}

	want := refWordCount(input)
	if len(res.Counts) != len(want) {
		t.Fatalf("MR counts: %d distinct words, want %d", len(res.Counts), len(want))
	}
	for w, n := range want {
		if res.Counts[w] != n {
			t.Fatalf("MR count[%q] = %d, want %d", w, res.Counts[w], n)
		}
	}
	if inj.Crashes != 1 || inj.Restarts != 1 {
		t.Fatalf("injector replayed %d crashes / %d restarts, want 1 / 1", inj.Crashes, inj.Restarts)
	}

	var all []string
	for _, l := range logs {
		all = append(all, l...)
	}
	return chaosOutcome{
		end:      cls.Env.Now(),
		counts:   res.Counts,
		log:      strings.Join(all, "\n"),
		dropped:  inj.Dropped(),
		crashes:  inj.Crashes,
		restarts: inj.Restarts,
	}
}

func refWordCount(input []byte) map[string]int64 {
	counts := make(map[string]int64)
	for _, w := range bytes.Fields(input) {
		counts[string(w)]++
	}
	return counts
}

// The capstone: a seeded fault plan crashes a node that serves both a
// kvstore shard and an MR worker, flaps two links, and drops messages
// for a while — and both applications still terminate with correct
// results. Running the same seed twice produces the identical
// timeline: same end time, same counts, same client logs, same number
// of dropped messages.
func TestChaosRunIsCorrectAndDeterministic(t *testing.T) {
	first := runChaos(t, 0xC0FFEE)
	second := runChaos(t, 0xC0FFEE)

	if first.end != second.end {
		t.Errorf("end times differ across identical seeds: %v vs %v", first.end, second.end)
	}
	if !reflect.DeepEqual(first.counts, second.counts) {
		t.Error("MR counts differ across identical seeds")
	}
	if first.log != second.log {
		t.Errorf("client logs differ across identical seeds:\n--- first\n%s\n--- second\n%s",
			first.log, second.log)
	}
	if first.dropped != second.dropped {
		t.Errorf("drop counts differ across identical seeds: %d vs %d", first.dropped, second.dropped)
	}
	if first.dropped == 0 {
		t.Error("loss window dropped nothing; chaos run did not exercise message loss")
	}
}
