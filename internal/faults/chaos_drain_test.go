package faults_test

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"lite/internal/apps/kvstore"
	"lite/internal/cluster"
	"lite/internal/faults"
	"lite/internal/lite"
	"lite/internal/params"
	"lite/internal/simtime"
)

// Concurrent-drain admission regression. Two shards of one store share
// a function id; draining both onto the same target at once used to
// interleave their handoff records against a single fn-keyed adoption
// slot. The manager now admits one in-flight handoff per (fn, target)
// and bounces the loser with ErrMigrating. This test pins the race
// deterministically: the second drain launches off the first drain's
// fence announcement (guaranteed inside the first's prepare→commit
// window), and faults.CrashOnEvent kills a bystander at the first
// transfer so a death declaration — epoch bump plus handoff purge —
// interleaves with both handoffs. The purge of the dead bystander must
// not clobber either live record.

// drainRaceOutcome captures one run for the same-seed comparison.
type drainRaceOutcome struct {
	end       simtime.Time
	bounces   int
	committed int64
	aborted   int64
	owner     string
	values    string
}

func runConcurrentDrainRace(t *testing.T, seed uint64) drainRaceOutcome {
	t.Helper()
	// 0 manager, 1 and 2 shard homes, 3 the common target, 4 and 5
	// clients, 6 the bystander the fault plan kills.
	pcfg := params.Default()
	cls := cluster.MustNew(&pcfg, 7, 1<<30)
	opts := lite.DefaultOptions()
	opts.HeartbeatInterval = 100 * time.Microsecond
	opts.HeartbeatTimeout = 300 * time.Microsecond
	dep, err := lite.Start(cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	pl := faults.NewPlan(seed).
		CrashOnEvent("lite.migrate.transfer", 6, 2*time.Millisecond)
	inj := faults.Attach(cls, pl)

	s, err := kvstore.Start(cls, dep, []int{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	const nkeys = 30
	key := func(k int) string { return fmt.Sprintf("race-%03d", k) }

	fenced := false
	cls.OnEvent(func(p *simtime.Proc, name string) {
		if name == "lite.migrate.fence" && !fenced {
			fenced = true
		}
	})

	// Clients mutate across the whole double-migration window; no call
	// may fail and every value must land.
	final := make(map[string]string)
	for ci, node := range []int{4, 5} {
		ci, node := ci, node
		cls.GoOn(node, "race-client", func(p *simtime.Proc) {
			k := s.NewClient(node)
			for gen := 0; gen < 6; gen++ {
				for i := ci; i < nkeys; i += 2 {
					v := fmt.Sprintf("v-%03d-g%d-c%d", i, gen, node)
					if err := k.Put(p, key(i), []byte(v)); err != nil {
						t.Errorf("client %d put %d gen %d: %v", node, i, gen, err)
						return
					}
					final[key(i)] = v
				}
				p.Sleep(150 * time.Microsecond)
			}
		})
	}

	cls.GoOn(1, "drain-a", func(p *simtime.Proc) {
		p.SleepUntil(400 * time.Microsecond)
		if err := s.DrainShard(p, 1, 3); err != nil {
			t.Errorf("drain 1->3: %v", err)
		}
	})
	bounces := 0
	cls.GoOn(2, "drain-b", func(p *simtime.Proc) {
		// Launch inside drain A's prepare→commit window: its fence
		// announcement is after prepare, and quiesce + per-key LMR
		// handover keep the handoff record alive long past our prepare.
		for !fenced {
			p.Sleep(5 * time.Microsecond)
		}
		for {
			err := s.DrainShard(p, 2, 3)
			if err == nil {
				return
			}
			if !errors.Is(err, lite.ErrMigrating) {
				t.Errorf("drain 2->3: want ErrMigrating bounce, got %v", err)
				return
			}
			bounces++
			p.Sleep(100 * time.Microsecond)
		}
	})

	var owner string
	var values []string
	cls.GoOn(0, "verify", func(p *simtime.Proc) {
		p.SleepUntil(6 * time.Millisecond)
		owner = fmt.Sprint(s.ServerNodes())
		k := s.NewClient(0)
		for i := 0; i < nkeys; i++ {
			got, err := k.Get(p, key(i))
			if err != nil {
				t.Errorf("final get %d: %v", i, err)
				continue
			}
			if want := final[key(i)]; string(got) != want {
				t.Errorf("final get %d = %q, want %q", i, got, want)
			}
			values = append(values, string(got))
		}
	})

	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
	if owner != "[3]" {
		t.Errorf("post-drain servers = %s, want [3]", owner)
	}
	if bounces < 1 {
		t.Error("second drain was never bounced; the race window did not overlap")
	}
	if got := cls.Obs.Total("lite.migrate.committed"); got != 2 {
		t.Errorf("lite.migrate.committed = %d, want 2", got)
	}
	if inj.Crashes != 1 {
		t.Errorf("injector fired %d crashes, want 1", inj.Crashes)
	}
	return drainRaceOutcome{
		end:       cls.Env.Now(),
		bounces:   bounces,
		committed: cls.Obs.Total("lite.migrate.committed"),
		aborted:   cls.Obs.Total("lite.migrate.aborted"),
		owner:     owner,
		values:    strings.Join(values, ","),
	}
}

// TestConcurrentDrainSameTarget runs the pinned race twice per seed:
// the loser must bounce cleanly, both shards must land on the target,
// and the two same-seed runs must agree bit for bit.
func TestConcurrentDrainSameTarget(t *testing.T) {
	for _, seed := range []uint64{0xBEEF, 0xCAFE} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%#x", seed), func(t *testing.T) {
			first := runConcurrentDrainRace(t, seed)
			second := runConcurrentDrainRace(t, seed)
			if !reflect.DeepEqual(first, second) {
				t.Errorf("same seed, different timelines:\n--- first\n%+v\n--- second\n%+v", first, second)
			}
		})
	}
}
