package faults_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"lite/internal/cluster"
	"lite/internal/faults"
	"lite/internal/lite"
	"lite/internal/params"
	"lite/internal/simtime"
)

// overloadOutcome captures everything observable about one
// chaos-under-overload run so two same-seed runs compare field by
// field.
type overloadOutcome struct {
	counts   map[string]int64 // per-client outcome tallies, "c<node>/<status>"
	finals   map[int]bool     // per-client post-plan probe success
	execs    int64            // total handler executions
	doubles  int64            // request ids executed more than once
	end      simtime.Time
	restarts int
}

const chaosOvFn = lite.FirstUserFunc + 3

// runChaosOverload drives the fair-admission overload workload through
// a fault plan: three clients (one greedy) hammer a single-worker
// server at ~2x capacity while the server node crashes and restarts,
// a client link flaps, and a lossy window drops traffic. Every request
// carries a unique id so the server can count executions per id.
func runChaosOverload(t *testing.T, seed uint64) overloadOutcome {
	t.Helper()
	pcfg := params.Default()
	cls := cluster.MustNew(&pcfg, 4, 1<<30)
	opts := lite.DefaultOptions()
	opts.HeartbeatInterval = 100 * time.Microsecond
	opts.HeartbeatTimeout = 300 * time.Microsecond
	opts.RPCTimeout = 200 * time.Microsecond
	opts.RetryBackoff = 20 * time.Microsecond
	opts.AdmissionHighWater = 8
	opts.FairAdmission = true
	dep, err := lite.Start(cls, opts)
	if err != nil {
		t.Fatal(err)
	}

	const srvNode = 1
	// Executions per request id: the dedup window (and its boot-stamp
	// ambiguity escape hatch) must keep every id at <= 1 even when
	// retries cross the crash/restart.
	execSeen := make(map[uint64]int64)
	var execs, doubles int64
	restarts := 0
	if err := dep.Instance(srvNode).ServeRPC(chaosOvFn, 1, func(p *simtime.Proc, c *lite.Call) []byte {
		id := binary.LittleEndian.Uint64(c.Input)
		execSeen[id]++
		execs++
		if execSeen[id] == 2 {
			doubles++
		}
		p.Work(2 * time.Microsecond)
		return c.Input[:8]
	}); err != nil {
		t.Fatal(err)
	}
	cls.OnNodeUp(func(p *simtime.Proc, node int) {
		if node == srvNode {
			restarts++
		}
	})

	// Faults land while the workload is in full swing: the server
	// bounces once, the greedy client's link flaps, and a lossy window
	// covers the recovery.
	pl := faults.NewPlan(seed).
		CrashAt(srvNode, 500*time.Microsecond).
		RestartAt(srvNode, 1500*time.Microsecond).
		FlapBoth(3, srvNode, 2500*time.Microsecond, 2900*time.Microsecond).
		LossDuring(0.002, 2*time.Millisecond, 4*time.Millisecond)
	faults.Attach(cls, pl)

	clientNodes := []int{0, 2, 3}
	counts := make(map[string]int64)
	finals := make(map[int]bool)
	record := func(node int, status string) { counts[fmt.Sprintf("c%d/%s", node, status)]++ }
	var end simtime.Time
	for ci, node := range clientNodes {
		ci, node := ci, node
		cls.GoOn(node, "chaos-client", func(p *simtime.Proc) {
			c := dep.Instance(node).KernelClient()
			// The greedy client (node 3) issues at ~4x the rate of the
			// others; the aggregate runs ~2x the 0.5 req/us capacity.
			gap := 8 * time.Microsecond
			if node == 3 {
				gap = 2 * time.Microsecond
			}
			for k := 0; p.Now() < 6*time.Millisecond; k++ {
				in := make([]byte, 16)
				binary.LittleEndian.PutUint64(in, uint64(ci)<<32|uint64(k))
				_, err := c.RPCRetry(p, srvNode, chaosOvFn, in, 64)
				switch {
				case err == nil:
					record(node, "ok")
				case errors.Is(err, lite.ErrMaybeExecuted):
					record(node, "maybe")
				case errors.Is(err, lite.ErrTimeout):
					record(node, "timeout")
				case errors.Is(err, lite.ErrOverloaded):
					record(node, "overload")
				default:
					record(node, "other")
				}
				p.Sleep(gap)
			}
			// The plan is over: one retried probe per client must get
			// through, or a client has been permanently starved.
			in := make([]byte, 16)
			binary.LittleEndian.PutUint64(in, uint64(ci)<<32|uint64(1<<20))
			_, err := c.RPCRetry(p, srvNode, chaosOvFn, in, 64)
			finals[node] = err == nil
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
	return overloadOutcome{counts: counts, finals: finals, execs: execs,
		doubles: doubles, end: end, restarts: restarts}
}

// TestChaosUnderOverload runs the fair-admission overload workload
// through a crash/flap/loss plan and checks the safety and liveness
// contracts hold at once: no request id ever executes twice (retries
// that cross the restart surface ErrMaybeExecuted instead), no client
// is permanently starved after the faults clear, and the whole run —
// faults, sheds, retries and all — replays bit for bit per seed.
func TestChaosUnderOverload(t *testing.T) {
	a := runChaosOverload(t, 21)
	if a.doubles != 0 {
		t.Fatalf("%d request ids executed more than once (counts %v)", a.doubles, a.counts)
	}
	if a.restarts != 1 {
		t.Fatalf("server restarted %d times, want 1", a.restarts)
	}
	if a.execs == 0 {
		t.Fatal("no handler executions at all: workload never reached the server")
	}
	for _, node := range []int{0, 2, 3} {
		ok := a.counts[fmt.Sprintf("c%d/ok", node)]
		if ok == 0 {
			t.Fatalf("client %d finished no request at all (counts %v)", node, a.counts)
		}
		if !a.finals[node] {
			t.Fatalf("client %d still cannot complete a call after the fault plan: starved", node)
		}
	}
	b := runChaosOverload(t, 21)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed chaos runs diverged:\n%+v\n%+v", a, b)
	}
}
