package faults_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"lite/internal/apps/kvstore"
	"lite/internal/cluster"
	"lite/internal/faults"
	"lite/internal/lite"
	"lite/internal/params"
	"lite/internal/simtime"
)

// Chaos for the one-sided kvstore read path: the server is crashed at
// its own fence announcements — mid-resize ("kvstore.resize.fence")
// and mid-DrainShard ("kvstore.drain.fence") — while a writer mutates
// and a reader traverses the index client-side. Invariants:
//
//   - zero stale reads: every successful GET returns a value that was
//     actually issued for that key (the value encodes the key, so a
//     torn or phantom read cannot parse as legal), and after the dust
//     settles every key reads back exactly its final value — a
//     delayed double execution of an older PUT would clobber it;
//   - readers observe the fence: the crash invalidates the published
//     index, readers fall back to RPC (or error while the node is
//     dark) and re-attach to the new incarnation — the one-sided path
//     must resume, proven by an exact DirectGets count on the final
//     sweep;
//   - the same seed replays the identical timeline bit for bit.

// onesidedFault pins one crash to one fence announcement.
type onesidedFault struct {
	name  string
	event string // fence announcement that triggers the crash
	nkeys int    // 100 forces bucket resizes; 40 stays under one table
	drain bool   // also run a DrainShard for the crash to land in
}

var onesidedFaults = []onesidedFault{
	{name: "server-at-resize-fence", event: "kvstore.resize.fence", nkeys: 100},
	{name: "server-at-drain-fence", event: "kvstore.drain.fence", nkeys: 40, drain: true},
}

// onesidedChaosOutcome captures one run for the same-seed comparison.
type onesidedChaosOutcome struct {
	end        simtime.Time
	log        string
	crashes    int
	restarts   int
	directGets int64
	fallbacks  int64
	attaches   int64
	finals     string
}

// runOneSidedChaos executes one fault case once. Topology: node 0 the
// manager, 1 the one-sided server (the victim), 2 the writer, 3 the
// reader, 4 the drain target.
func runOneSidedChaos(t *testing.T, seed uint64, fc onesidedFault) onesidedChaosOutcome {
	t.Helper()
	pcfg := params.Default()
	cls := cluster.MustNew(&pcfg, 5, 1<<30)
	opts := lite.DefaultOptions()
	opts.HeartbeatInterval = 100 * time.Microsecond
	opts.HeartbeatTimeout = 300 * time.Microsecond
	dep, err := lite.Start(cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	pl := faults.NewPlan(seed).CrashOnEvent(fc.event, 1, 2*time.Millisecond)
	inj := faults.Attach(cls, pl)

	s, err := kvstore.StartOneSided(cls, dep, []int{1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	key := func(i int) string { return fmt.Sprintf("ck%03d", i) }

	// everPut records every value issued for a key, at issue time, so a
	// concurrent reader may legally observe an in-flight PUT.
	everPut := make(map[string]map[string]bool, fc.nkeys)
	var logLines []string
	rec := func(p *simtime.Proc, format string, args ...any) {
		logLines = append(logLines, fmt.Sprintf("%v ", p.Now())+fmt.Sprintf(format, args...))
	}

	const chaosEnd = 6 * time.Millisecond
	writerDone, finalsIn := false, false

	cls.GoOn(2, "chaos-writer", func(p *simtime.Proc) {
		k := s.NewClient(2)
		for round := 0; p.Now() < chaosEnd; round++ {
			for i := 0; i < fc.nkeys; i++ {
				v := fmt.Sprintf("%s:r%d", key(i), round)
				if everPut[key(i)] == nil {
					everPut[key(i)] = make(map[string]bool)
				}
				everPut[key(i)][v] = true
				if err := k.Put(p, key(i), []byte(v)); err != nil {
					rec(p, "w put %s: %v", key(i), err)
				}
			}
			p.Sleep(80 * time.Microsecond)
		}
		// Wait for the membership view to settle, then write the final
		// values every key must hold at the end of the run.
		lc := dep.Instance(2).KernelClient()
		deadline := p.Now() + 30*time.Millisecond
		for lc.NodeDead(1) {
			if p.Now() > deadline {
				t.Error("writer: server 1 still dead after the plan ended")
				return
			}
			p.Sleep(200 * time.Microsecond)
		}
		for i := 0; i < fc.nkeys; i++ {
			v := key(i) + ":final"
			everPut[key(i)][v] = true
			if err := k.Put(p, key(i), []byte(v)); err != nil {
				t.Errorf("writer: final put %s: %v", key(i), err)
				return
			}
		}
		finalsIn = true
		writerDone = true
	})

	if fc.drain {
		cls.GoOn(0, "chaos-drainer", func(p *simtime.Proc) {
			p.SleepUntil(1 * time.Millisecond)
			if err := s.DrainShard(p, 1, 4); err != nil {
				rec(p, "drain 1->4: %v", err)
			} else {
				rec(p, "drain 1->4: ok")
			}
		})
	}

	var reader *kvstore.Client
	var finals []string
	cls.GoOn(3, "chaos-reader", func(p *simtime.Proc) {
		k := s.NewClient(3)
		reader = k
		for i := 0; !finalsIn; i++ {
			kk := key(i % fc.nkeys)
			v, err := k.GetDirect(p, kk)
			switch {
			case err == kvstore.ErrNotFound:
				// Legal: not yet written, or lost with the crashed
				// incarnation.
			case err != nil:
				rec(p, "r get %s: %v", kk, err)
			case !everPut[kk][string(v)]:
				t.Errorf("STALE/PHANTOM read: get %s = %q, never a live value", kk, v)
			}
			p.Sleep(25 * time.Microsecond)
		}
		// Final sweep: the one-sided path must have resumed against the
		// restarted incarnation — every GET below is resolved without
		// server CPU and sees exactly the final value.
		before := k.DirectGets
		for i := 0; i < fc.nkeys; i++ {
			v, err := k.GetDirect(p, key(i))
			if err != nil || string(v) != key(i)+":final" {
				t.Errorf("final get %s = %q, %v", key(i), v, err)
			}
			finals = append(finals, string(v))
		}
		if got := k.DirectGets - before; got != int64(fc.nkeys) {
			t.Errorf("final sweep resolved %d/%d GETs one-sided; path did not resume", got, fc.nkeys)
		}
	})

	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
	if !writerDone {
		t.Error("writer never finished")
	}
	if inj.Crashes != 1 {
		t.Errorf("injector fired %d crashes, want 1 (%s never announced?)", inj.Crashes, fc.event)
	}
	if inj.Restarts != 1 {
		t.Errorf("injector fired %d restarts, want 1", inj.Restarts)
	}
	if reader.Attaches < 2 {
		t.Errorf("reader attached %d times, want >= 2 (fence never observed)", reader.Attaches)
	}
	return onesidedChaosOutcome{
		end:        cls.Env.Now(),
		log:        strings.Join(logLines, "\n"),
		crashes:    inj.Crashes,
		restarts:   inj.Restarts,
		directGets: reader.DirectGets,
		fallbacks:  reader.DirectFallbacks,
		attaches:   reader.Attaches,
		finals:     strings.Join(finals, ","),
	}
}

// TestOneSidedChaos runs each pinned crash twice per seed: the reader
// must never see a stale or phantom value, the one-sided path must
// resume after the restart, and the two same-seed runs must agree.
func TestOneSidedChaos(t *testing.T) {
	for _, fc := range onesidedFaults {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			first := runOneSidedChaos(t, 0xA11CE, fc)
			if t.Failed() {
				t.Fatal("invariant violations above")
			}
			second := runOneSidedChaos(t, 0xA11CE, fc)
			if !reflect.DeepEqual(first, second) {
				t.Errorf("same seed, different timelines:\n--- first\n%+v\n--- second\n%+v", first, second)
			}
		})
	}
}
