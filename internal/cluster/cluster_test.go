package cluster

import (
	"testing"
	"time"

	"lite/internal/params"
	"lite/internal/simtime"
)

func TestNewBuildsAllComponents(t *testing.T) {
	cfg := params.Default()
	c, err := New(&cfg, 4, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != 4 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	for i, nd := range c.Nodes {
		if nd.ID != i || nd.Mem == nil || nd.NIC == nil || nd.OS == nil || nd.TCP == nil || nd.KernelAS == nil || nd.CPU == nil {
			t.Fatalf("node %d incompletely built: %+v", i, nd)
		}
		if nd.Mem.TotalBytes() != 1<<30 {
			t.Fatalf("node %d memory = %d", i, nd.Mem.TotalBytes())
		}
	}
	if c.Fab.Ports() != 4 {
		t.Fatalf("fabric ports = %d", c.Fab.Ports())
	}
}

func TestNewRejectsZeroNodes(t *testing.T) {
	cfg := params.Default()
	if _, err := New(&cfg, 0, 1<<30); err == nil {
		t.Fatal("expected error for zero nodes")
	}
}

func TestGoOnAccountsCPUPerNode(t *testing.T) {
	cfg := params.Default()
	c := MustNew(&cfg, 2, 1<<30)
	c.GoOn(0, "worker", func(p *simtime.Proc) {
		p.Work(5 * time.Microsecond)
	})
	c.GoOn(1, "worker", func(p *simtime.Proc) {
		p.Work(3 * time.Microsecond)
		p.Sleep(100 * time.Microsecond) // idle, not charged
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Nodes[0].CPU.Busy() != 5*time.Microsecond {
		t.Fatalf("node0 cpu = %v", c.Nodes[0].CPU.Busy())
	}
	if c.Nodes[1].CPU.Busy() != 3*time.Microsecond {
		t.Fatalf("node1 cpu = %v", c.Nodes[1].CPU.Busy())
	}
	if c.TotalCPU() != 8*time.Microsecond {
		t.Fatalf("total = %v", c.TotalCPU())
	}
}

func TestGoDaemonOnDoesNotBlockRun(t *testing.T) {
	cfg := params.Default()
	c := MustNew(&cfg, 1, 1<<30)
	c.GoDaemonOn(0, "poller", func(p *simtime.Proc) {
		for {
			p.Sleep(time.Microsecond)
		}
	})
	c.GoOn(0, "main", func(p *simtime.Proc) { p.Sleep(5 * time.Microsecond) })
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Env.Now() != 5*time.Microsecond {
		t.Fatalf("now = %v", c.Env.Now())
	}
}
