// Package cluster assembles the simulated testbed: N nodes, each with
// physical memory, an RDMA NIC, an OS boundary, a TCP/IP (IPoIB)
// stack, and a CPU account, all connected by one switched fabric —
// the shape of the paper's 10-machine InfiniBand cluster.
package cluster

import (
	"fmt"

	"lite/internal/fabric"
	"lite/internal/hostmem"
	"lite/internal/hostos"
	"lite/internal/obs"
	"lite/internal/params"
	"lite/internal/rnic"
	"lite/internal/simtime"
	"lite/internal/tcpip"
)

// Node is one simulated machine.
type Node struct {
	ID       int
	Mem      *hostmem.Memory
	NIC      *rnic.NIC
	OS       *hostos.OS
	TCP      *tcpip.Stack
	KernelAS *hostmem.AddressSpace
	CPU      *simtime.CPUAccount
	// Obs is the node's metric registry; nil until EnableObs.
	Obs *obs.Registry
}

// Cluster is the whole simulated testbed.
type Cluster struct {
	Env   *simtime.Env
	Cfg   *params.Config
	Fab   *fabric.Fabric
	Reg   *rnic.Registry
	Net   *tcpip.Network
	Nodes []*Node

	// Obs is the cluster's observability domain; nil until EnableObs
	// (observability is off by default so the cost model is never
	// perturbed — not that obs would perturb it, but off-by-default
	// keeps the disabled fast path exercised everywhere).
	Obs *obs.Domain

	// down marks crashed nodes (see CrashNode).
	down map[int]bool
	// onDown/onUp run, in registration order, inside CrashNode and
	// RestartNode. Software layers (LITE, apps) register here to stop
	// daemons, fail pending work, and rejoin on restart.
	onDown []func(p *simtime.Proc, node int)
	onUp   []func(p *simtime.Proc, node int)
	// onEvent receives named application events (see Announce). The
	// fault injector listens here to trigger crashes at semantic
	// instants ("the migration just fenced") rather than wall offsets.
	onEvent []func(p *simtime.Proc, name string)
}

// New builds a cluster of n nodes with memPerNode bytes of physical
// memory each.
func New(cfg *params.Config, n int, memPerNode int64) (*Cluster, error) {
	return NewOn(simtime.NewEnv(), cfg, n, memPerNode)
}

// NewOn builds a cluster on a caller-supplied environment. The `scale`
// benchmark uses it to run one workload under both the calendar-queue
// and the legacy binary-heap scheduler (simtime.NewLegacyEnv) and
// compare wall-time throughput; everything else should use New.
func NewOn(env *simtime.Env, cfg *params.Config, n int, memPerNode int64) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", n)
	}
	fab := fabric.New(cfg)
	c := &Cluster{
		Env:  env,
		Cfg:  cfg,
		Fab:  fab,
		Reg:  rnic.NewRegistry(env, cfg, fab),
		Net:  tcpip.NewNetwork(env, cfg, fab),
		down: make(map[int]bool),
	}
	for i := 0; i < n; i++ {
		mem := hostmem.New(memPerNode, cfg.PageSize)
		nic, err := c.Reg.NewNIC(i, mem)
		if err != nil {
			return nil, err
		}
		c.Nodes = append(c.Nodes, &Node{
			ID:       i,
			Mem:      mem,
			NIC:      nic,
			OS:       hostos.New(cfg),
			TCP:      c.Net.Stack(i),
			KernelAS: hostmem.NewAddressSpace(mem),
			CPU:      &simtime.CPUAccount{},
		})
	}
	return c, nil
}

// EnableObs creates the cluster's observability domain and points
// every layer's collector at it: each node's NIC and OS report into
// that node's registry, the shared fabric into the domain's global
// registry. Idempotent, and callable at any point in the simulation
// (layers read their registry pointer on every event). Returns the
// domain for convenience.
func (c *Cluster) EnableObs() *obs.Domain {
	if c.Obs != nil {
		return c.Obs
	}
	c.Obs = obs.NewDomain(len(c.Nodes))
	c.Fab.SetObs(c.Obs.Global())
	for i, nd := range c.Nodes {
		nd.Obs = c.Obs.Node(i)
		nd.NIC.SetObs(nd.Obs)
		nd.OS.SetObs(nd.Obs)
	}
	return c.Obs
}

// MustNew is New for tests and examples; it panics on error.
func MustNew(cfg *params.Config, n int, memPerNode int64) *Cluster {
	c, err := New(cfg, n, memPerNode)
	if err != nil {
		panic(err)
	}
	return c
}

// GoOn spawns a process logically running on the given node: its CPU
// time accrues to that node's account.
func (c *Cluster) GoOn(node int, name string, fn func(*simtime.Proc)) *simtime.Proc {
	nd := c.Nodes[node]
	return c.Env.Go(fmt.Sprintf("n%d/%s", node, name), func(p *simtime.Proc) {
		p.SetCPUAccount(nd.CPU)
		fn(p)
	})
}

// GoDaemonOn is GoOn for daemon processes (background pollers).
func (c *Cluster) GoDaemonOn(node int, name string, fn func(*simtime.Proc)) *simtime.Proc {
	nd := c.Nodes[node]
	return c.Env.GoDaemon(fmt.Sprintf("n%d/%s", node, name), func(p *simtime.Proc) {
		p.SetCPUAccount(nd.CPU)
		fn(p)
	})
}

// Run executes the simulation to completion.
func (c *Cluster) Run() error { return c.Env.Run() }

// OnNodeDown registers a hook invoked by CrashNode after the node's
// fabric port is cut. Hooks run in registration order in the crashing
// caller's process context.
func (c *Cluster) OnNodeDown(fn func(p *simtime.Proc, node int)) {
	c.onDown = append(c.onDown, fn)
}

// OnNodeUp registers a hook invoked by RestartNode after the node's
// fabric port is restored.
func (c *Cluster) OnNodeUp(fn func(p *simtime.Proc, node int)) {
	c.onUp = append(c.onUp, fn)
}

// OnEvent registers a hook invoked by Announce. Hooks run in
// registration order in the announcing process's context, so anything
// a hook does (including crashing the announcing node) lands at a
// deterministic point in the announcing code path.
func (c *Cluster) OnEvent(fn func(p *simtime.Proc, name string)) {
	c.onEvent = append(c.onEvent, fn)
}

// Announce publishes a named event on the cluster's event bus.
// Software layers call it at semantically meaningful instants (e.g.
// "lite.migrate.fence") so test harnesses can inject faults exactly
// there. With no listeners it is free: no virtual time passes.
func (c *Cluster) Announce(p *simtime.Proc, name string) {
	for _, fn := range c.onEvent {
		fn(p, name)
	}
}

// NodeDown reports whether the node is currently crashed.
func (c *Cluster) NodeDown(node int) bool { return c.down[node] }

// CrashNode fails a machine: its fabric port goes dark (in-flight and
// future messages to or from it are lost, so remote QPs targeting it
// complete with StatusTimeout), then the registered down-hooks run so
// software layers stop the node's daemons and fail its pending work.
// Crashing an already-down node is a no-op.
func (c *Cluster) CrashNode(p *simtime.Proc, node int) {
	if c.down[node] {
		return
	}
	c.down[node] = true
	c.Obs.Global().Add("cluster.crashes", 1)
	c.Fab.SetNodeDown(node)
	for _, fn := range c.onDown {
		fn(p, node)
	}
}

// RestartNode brings a crashed machine back: the fabric port is
// restored and the registered up-hooks run so software layers can
// re-initialize state and rejoin the cluster. Restarting a live node
// is a no-op.
func (c *Cluster) RestartNode(p *simtime.Proc, node int) {
	if !c.down[node] {
		return
	}
	delete(c.down, node)
	c.Obs.Global().Add("cluster.restarts", 1)
	c.Fab.SetNodeUp(node)
	for _, fn := range c.onUp {
		fn(p, node)
	}
}

// TotalCPU returns the summed busy CPU time across all nodes.
func (c *Cluster) TotalCPU() simtime.Time {
	var t simtime.Time
	for _, nd := range c.Nodes {
		t += nd.CPU.Busy()
	}
	return t
}
