// Package cluster assembles the simulated testbed: N nodes, each with
// physical memory, an RDMA NIC, an OS boundary, a TCP/IP (IPoIB)
// stack, and a CPU account, all connected by one switched fabric —
// the shape of the paper's 10-machine InfiniBand cluster.
package cluster

import (
	"fmt"

	"lite/internal/fabric"
	"lite/internal/hostmem"
	"lite/internal/hostos"
	"lite/internal/params"
	"lite/internal/rnic"
	"lite/internal/simtime"
	"lite/internal/tcpip"
)

// Node is one simulated machine.
type Node struct {
	ID       int
	Mem      *hostmem.Memory
	NIC      *rnic.NIC
	OS       *hostos.OS
	TCP      *tcpip.Stack
	KernelAS *hostmem.AddressSpace
	CPU      *simtime.CPUAccount
}

// Cluster is the whole simulated testbed.
type Cluster struct {
	Env   *simtime.Env
	Cfg   *params.Config
	Fab   *fabric.Fabric
	Reg   *rnic.Registry
	Net   *tcpip.Network
	Nodes []*Node
}

// New builds a cluster of n nodes with memPerNode bytes of physical
// memory each.
func New(cfg *params.Config, n int, memPerNode int64) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", n)
	}
	env := simtime.NewEnv()
	fab := fabric.New(cfg)
	c := &Cluster{
		Env: env,
		Cfg: cfg,
		Fab: fab,
		Reg: rnic.NewRegistry(env, cfg, fab),
		Net: tcpip.NewNetwork(env, cfg, fab),
	}
	for i := 0; i < n; i++ {
		mem := hostmem.New(memPerNode, cfg.PageSize)
		nic, err := c.Reg.NewNIC(i, mem)
		if err != nil {
			return nil, err
		}
		c.Nodes = append(c.Nodes, &Node{
			ID:       i,
			Mem:      mem,
			NIC:      nic,
			OS:       hostos.New(cfg),
			TCP:      c.Net.Stack(i),
			KernelAS: hostmem.NewAddressSpace(mem),
			CPU:      &simtime.CPUAccount{},
		})
	}
	return c, nil
}

// MustNew is New for tests and examples; it panics on error.
func MustNew(cfg *params.Config, n int, memPerNode int64) *Cluster {
	c, err := New(cfg, n, memPerNode)
	if err != nil {
		panic(err)
	}
	return c
}

// GoOn spawns a process logically running on the given node: its CPU
// time accrues to that node's account.
func (c *Cluster) GoOn(node int, name string, fn func(*simtime.Proc)) *simtime.Proc {
	nd := c.Nodes[node]
	return c.Env.Go(fmt.Sprintf("n%d/%s", node, name), func(p *simtime.Proc) {
		p.SetCPUAccount(nd.CPU)
		fn(p)
	})
}

// GoDaemonOn is GoOn for daemon processes (background pollers).
func (c *Cluster) GoDaemonOn(node int, name string, fn func(*simtime.Proc)) *simtime.Proc {
	nd := c.Nodes[node]
	return c.Env.GoDaemon(fmt.Sprintf("n%d/%s", node, name), func(p *simtime.Proc) {
		p.SetCPUAccount(nd.CPU)
		fn(p)
	})
}

// Run executes the simulation to completion.
func (c *Cluster) Run() error { return c.Env.Run() }

// TotalCPU returns the summed busy CPU time across all nodes.
func (c *Cluster) TotalCPU() simtime.Time {
	var t simtime.Time
	for _, nd := range c.Nodes {
		t += nd.CPU.Busy()
	}
	return t
}
