package lite

import (
	"lite/internal/hostmem"
	"lite/internal/simtime"
)

// Client is a process's handle on LITE — the public API of Table 1.
//
// A kernel client calls straight into the indirection tier (LITE
// serves kernel-level applications directly); a user client pays the
// user/kernel boundary costs, with the §5.2 optimizations applied to
// the RPC path (only entry crossings on the critical path, results
// returned through the shared completion page).
type Client struct {
	inst   *Instance
	kernel bool
	pri    Priority

	// tenant scopes every LMR/handle operation and outbound RPC of
	// this client to a tenant namespace. Zero (the default) is the
	// kernel/untenanted class: it bypasses tenant checks, like a root
	// process. Nonzero tenants cannot touch another tenant's handles
	// and are admitted under their registered QoS weight.
	tenant uint16
}

// KernelClient returns a kernel-level client of this instance.
func (i *Instance) KernelClient() *Client { return &Client{inst: i, kernel: true} }

// UserClient returns a user-level client of this instance.
func (i *Instance) UserClient() *Client { return &Client{inst: i} }

// TenantClient returns a client scoped to tenant t's namespace. LMRs
// it creates are owned by t, handles it acquires are stamped t, and
// its RPCs carry t in the ring header so servers apply t's QoS weight.
// TenantClient(0) is equivalent to KernelClient.
func (i *Instance) TenantClient(t uint16) *Client {
	if t != 0 {
		i.obsReg().Add("lite.tenant.clients", 1)
	}
	return &Client{inst: i, kernel: true, tenant: t}
}

// Tenant returns the tenant ID this client is scoped to (0 = kernel).
func (c *Client) Tenant() uint16 { return c.tenant }

// Instance returns the underlying LITE instance.
func (c *Client) Instance() *Instance { return c.inst }

// NodeID returns the node this client runs on.
func (c *Client) NodeID() int { return c.inst.node.ID }

// SetPriority tags all subsequent operations of this client with the
// given QoS priority and returns the client.
func (c *Client) SetPriority(pri Priority) *Client {
	c.pri = pri
	return c
}

// syscall wraps fn in a full syscall round trip for user clients.
func (c *Client) syscall(p *simtime.Proc, fn func()) {
	if c.kernel {
		fn()
		return
	}
	c.inst.node.OS.Syscall(p, fn)
}

// enter charges only the kernel-entry crossing (the return is hidden
// behind the shared completion page; §5.2).
func (c *Client) enter(p *simtime.Proc) {
	if !c.kernel {
		c.inst.node.OS.EnterKernel(p)
	}
}

// Malloc implements LT_malloc on the local node: allocate an LMR of
// the given size, optionally registering a global name ("" for an
// anonymous LMR). The caller becomes the LMR's master.
func (c *Client) Malloc(p *simtime.Proc, size int64, name string, defPerm Perm) (LH, error) {
	return c.MallocAt(p, []int{c.inst.node.ID}, size, name, defPerm)
}

// MallocAt is LT_malloc with explicit physical placement: the LMR's
// chunks are spread round-robin over homeNodes (masters choose where
// an LMR lives, and an LMR may span machines; §4.1).
func (c *Client) MallocAt(p *simtime.Proc, homeNodes []int, size int64, name string, defPerm Perm) (LH, error) {
	var h LH
	var err error
	c.syscall(p, func() { h, err = c.inst.mallocInternal(p, homeNodes, size, name, defPerm, c.pri, c.tenant) })
	return h, err
}

// RegisterLMR registers already-allocated physically contiguous memory
// as an LMR (a master capability; §4.1).
func (c *Client) RegisterLMR(p *simtime.Proc, pa hostmem.PAddr, size int64, name string, defPerm Perm) (LH, error) {
	var h LH
	var err error
	c.syscall(p, func() { h, err = c.inst.registerLMRInternal(p, pa, size, name, defPerm, c.pri, c.tenant) })
	return h, err
}

// Free implements LT_free: master-only; releases the LMR and notifies
// every node that mapped it.
func (c *Client) Free(p *simtime.Proc, h LH) error {
	var err error
	c.syscall(p, func() { err = c.inst.freeInternal(p, h, c.pri, c.tenant) })
	return err
}

// Map implements LT_map: acquire an lh for the LMR registered under
// name, with the permission its master grants this node.
func (c *Client) Map(p *simtime.Proc, name string) (LH, error) {
	var h LH
	var err error
	c.syscall(p, func() { h, err = c.inst.mapInternal(p, name, c.pri, c.tenant) })
	return h, err
}

// Unmap implements LT_unmap: drop the lh and its local metadata.
func (c *Client) Unmap(p *simtime.Proc, h LH) error {
	var err error
	c.syscall(p, func() { err = c.inst.unmapInternal(p, h, c.pri, c.tenant) })
	return err
}

// Grant sets another node's permission on the LMR (master only). Use
// it to hand out read/write or even the master role itself.
func (c *Client) Grant(p *simtime.Proc, h LH, node int, perm Perm) error {
	var err error
	c.syscall(p, func() { err = c.inst.grantInternal(p, h, node, perm, c.tenant) })
	return err
}

// Move relocates the LMR's storage to another node (master only).
func (c *Client) Move(p *simtime.Proc, h LH, node int) error {
	var err error
	c.syscall(p, func() { err = c.inst.moveInternal(p, h, node, c.pri, c.tenant) })
	return err
}

// Read implements LT_read: read LMR space into buf; returns when the
// data is present (no separate completion polling; §4.2).
func (c *Client) Read(p *simtime.Proc, h LH, off int64, buf []byte) error {
	var err error
	c.syscall(p, func() { err = c.inst.readInternal(p, h, off, buf, c.pri, c.tenant) })
	return err
}

// Write implements LT_write symmetrically to Read.
func (c *Client) Write(p *simtime.Proc, h LH, off int64, data []byte) error {
	var err error
	c.syscall(p, func() { err = c.inst.writeInternal(p, h, off, data, c.pri, c.tenant) })
	return err
}

// Memset implements LT_memset: set n bytes at off to val.
func (c *Client) Memset(p *simtime.Proc, h LH, off int64, val byte, n int64) error {
	var err error
	c.syscall(p, func() { err = c.inst.memsetInternal(p, h, off, val, n, c.pri, c.tenant) })
	return err
}

// Memcpy implements LT_memcpy between two LMRs (possibly on different
// nodes; the transfer happens where the data lives, §7.1).
func (c *Client) Memcpy(p *simtime.Proc, dst LH, dstOff int64, src LH, srcOff, n int64) error {
	var err error
	c.syscall(p, func() { err = c.inst.memcpyInternal(p, dst, dstOff, src, srcOff, n, c.pri, c.tenant) })
	return err
}

// Memmove implements LT_memmove; like its POSIX counterpart it is safe
// for overlapping ranges within one LMR because the source is staged
// before the destination is written.
func (c *Client) Memmove(p *simtime.Proc, dst LH, dstOff int64, src LH, srcOff, n int64) error {
	return c.Memcpy(p, dst, dstOff, src, srcOff, n)
}

// FetchAdd implements LT_fetch-add on an 8-byte word of an LMR and
// returns the previous value.
func (c *Client) FetchAdd(p *simtime.Proc, h LH, off int64, delta uint64) (uint64, error) {
	var v uint64
	var err error
	c.syscall(p, func() { v, err = c.inst.fetchAddInternal(p, h, off, delta, c.pri, c.tenant) })
	return v, err
}

// CompareSwap implements LT_cas on an 8-byte word of an LMR: replace
// the word with swap iff it equals cmp. Returns the previous value
// (equal to cmp means the swap happened).
func (c *Client) CompareSwap(p *simtime.Proc, h LH, off int64, cmp, swap uint64) (uint64, error) {
	var v uint64
	var err error
	c.syscall(p, func() { v, err = c.inst.casInternal(p, h, off, cmp, swap, c.pri, c.tenant) })
	return v, err
}

// CompareSwapMasked implements masked LT_cas (ConnectX extended
// atomics): the compare applies only under cmpMask and the swap
// replaces only the bits under swapMask.
func (c *Client) CompareSwapMasked(p *simtime.Proc, h LH, off int64, cmp, swap, cmpMask, swapMask uint64) (uint64, error) {
	var v uint64
	var err error
	c.syscall(p, func() {
		v, err = c.inst.casMaskedInternal(p, h, off, cmp, swap, cmpMask, swapMask, c.pri, c.tenant)
	})
	return v, err
}

// FetchAddMasked implements masked LT_faa: fetch-add whose carries do
// not propagate across the field boundaries marked in boundary (each
// set bit is the MSB of an independent field).
func (c *Client) FetchAddMasked(p *simtime.Proc, h LH, off int64, delta, boundary uint64) (uint64, error) {
	var v uint64
	var err error
	c.syscall(p, func() { v, err = c.inst.faaMaskedInternal(p, h, off, delta, boundary, c.pri, c.tenant) })
	return v, err
}

// TestSet implements LT_test-set: atomically set the word to val if it
// was zero; returns the previous value (zero means the set succeeded).
func (c *Client) TestSet(p *simtime.Proc, h LH, off int64, val uint64) (uint64, error) {
	var v uint64
	var err error
	c.syscall(p, func() { v, err = c.inst.testSetInternal(p, h, off, val, c.pri, c.tenant) })
	return v, err
}

// AllocLock creates a distributed lock hosted at owner.
func (c *Client) AllocLock(p *simtime.Proc, owner int) (Lock, error) {
	var lk Lock
	var err error
	c.syscall(p, func() { lk, err = c.inst.allocLockInternal(p, owner, c.pri) })
	return lk, err
}

// LockAcquire implements LT_lock.
func (c *Client) LockAcquire(p *simtime.Proc, lk Lock) error {
	var err error
	c.enter(p)
	err = c.inst.lockInternal(p, lk, c.pri)
	return err
}

// LockRelease implements LT_unlock.
func (c *Client) LockRelease(p *simtime.Proc, lk Lock) error {
	var err error
	c.syscall(p, func() { err = c.inst.unlockInternal(p, lk, c.pri) })
	return err
}

// Barrier implements LT_barrier: block until n participants have
// arrived at barrier id.
func (c *Client) Barrier(p *simtime.Proc, id uint64, n int) error {
	c.enter(p)
	return c.inst.barrierInternal(p, id, n, c.pri)
}

// RegisterRPC registers an RPC function ID served from this node.
func (c *Client) RegisterRPC(id int) error { return c.inst.RegisterRPC(id) }

// RPC implements LT_RPC: call function fn at node dst with input and
// return the reply (at most maxReply bytes). On the user level only
// the kernel-entry crossing sits on the critical path (§5.2).
func (c *Client) RPC(p *simtime.Proc, dst, fn int, input []byte, maxReply int64) ([]byte, error) {
	reg := c.inst.obsReg()
	t0 := p.Now()
	end := c.inst.rootSpan(p, "lite.rpc")
	c.enter(p)
	out, err := c.inst.rpcInternalFull(p, dst, fn, input, maxReply, c.pri, c.inst.opts.RPCTimeout, false, nil, c.tenant)
	end()
	reg.Add("lite.rpc.calls", 1)
	if err != nil {
		reg.Add("lite.rpc.errors", 1)
	} else {
		reg.Observe("lite.rpc.latency", p.Now()-t0)
	}
	return out, err
}

// RecvRPC implements LT_recvRPC: receive the next call to fn.
func (c *Client) RecvRPC(p *simtime.Proc, fn int) (*Call, error) {
	c.enter(p)
	return c.inst.recvRPCInternal(p, fn)
}

// ReplyRPC implements LT_replyRPC: send the function result back to
// the caller. It may be invoked from any thread, once per call.
func (c *Client) ReplyRPC(p *simtime.Proc, call *Call, output []byte) error {
	end := c.inst.rootSpan(p, "lite.rpc.server")
	c.enter(p)
	err := c.inst.replyRPCInternal(p, call, output, c.pri)
	end()
	return err
}

// ReplyRecvRPC combines LT_replyRPC and LT_recvRPC in one boundary
// crossing — the optional API §5.2 adds for server loops. The server
// span closes once the reply is posted: the wait for the next call is
// idle time, not part of serving this one.
func (c *Client) ReplyRecvRPC(p *simtime.Proc, call *Call, output []byte, fn int) (*Call, error) {
	end := c.inst.rootSpan(p, "lite.rpc.server")
	c.enter(p)
	err := c.inst.replyRPCInternal(p, call, output, c.pri)
	end()
	if err != nil {
		return nil, err
	}
	return c.inst.recvRPCInternal(p, fn)
}

// Send implements LT_send: a one-way message to a node.
func (c *Client) Send(p *simtime.Proc, dst int, data []byte) error {
	var err error
	c.syscall(p, func() { err = c.inst.sendInternal(p, dst, data, c.pri) })
	return err
}

// Recv receives the next LT_send message addressed to this node.
func (c *Client) Recv(p *simtime.Proc) (Message, error) {
	c.enter(p)
	return c.inst.recvInternal(p)
}

// TryRecv returns a queued message without blocking.
func (c *Client) TryRecv(p *simtime.Proc) (Message, bool) {
	var m Message
	var ok bool
	c.syscall(p, func() { m, ok = c.inst.tryRecvInternal(p) })
	return m, ok
}
