package lite

import "lite/internal/simtime"

// Client-side overload pacer. The fair admission policy's Retry-After
// hint tells a shed client when its share at the server frees up; the
// retry layer already stretches the shed call's own backoff to honor
// it. The pacer (Options.Pacer) turns the same hint into flow control:
// the horizon is remembered per (server, function), and this client's
// NEXT calls to that target wait it out before posting — instead of
// burning a round trip each to be shed in turn. The horizon is a local
// scalar per target, so the disabled path costs nothing and the
// enabled path adds no messages.

// pacerLearn records a Retry-After hint against (dst, fn). Horizons
// only ever extend — a shorter hint racing in behind a longer one must
// not shrink the wait.
func (i *Instance) pacerLearn(p *simtime.Proc, dst, fn int, after simtime.Time) {
	if !i.opts.Pacer || after <= 0 {
		return
	}
	key := bindKey{dst, fn}
	if horizon := p.Now() + after; horizon > i.pacer[key] {
		i.pacer[key] = horizon
	}
}

// pacerWait delays the caller until the pacing horizon for (dst, fn)
// has passed. Expired horizons are dropped so the map stays small.
func (i *Instance) pacerWait(p *simtime.Proc, dst, fn int) {
	if !i.opts.Pacer || fn < FirstUserFunc {
		return
	}
	key := bindKey{dst, fn}
	until, ok := i.pacer[key]
	if !ok {
		return
	}
	if until <= p.Now() {
		delete(i.pacer, key)
		return
	}
	i.obsReg().Add("lite.pacer.delayed", 1)
	p.Sleep(until - p.Now())
}
