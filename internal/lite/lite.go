// Package lite implements LITE, the Local Indirection TiEr for RDMA of
// Tsai & Zhang (SOSP'17), on the simulated substrate: a kernel-space
// indirection layer that virtualizes native RDMA behind a flexible,
// high-level abstraction (LMRs named by application-chosen names and
// accessed through opaque handles), manages and shares all RDMA
// resources across applications, and preserves native RDMA's latency.
//
// The package mirrors the paper's structure:
//
//   - the RDMA stack (§4): LT_malloc/LT_free/LT_map/LT_unmap, LT_read/
//     LT_write and the memory-like operations, all built on one global
//     physical-address memory registration per node so the NIC needs
//     neither per-region keys nor page-table entries;
//   - the RPC stack (§5): write-imm based RPC over per-(client,function)
//     ring buffers, a single shared receive-CQ polling thread per node,
//     and the shared-completion-page syscall optimizations;
//   - resource sharing and QoS (§6): K×N shared queue pairs per node and
//     the HW-Sep / SW-Pri isolation policies;
//   - extended functionality (§7): memory-like operations implemented on
//     RPC, and synchronization primitives (locks, barriers, atomics).
package lite

import (
	"errors"
	"fmt"

	"lite/internal/cluster"
	"lite/internal/hostmem"
	"lite/internal/hostos"
	"lite/internal/params"
	"lite/internal/rnic"
	"lite/internal/simtime"
	"lite/internal/verbs"
)

// Errors returned by LITE operations.
var (
	ErrNoSuchName = errors.New("lite: no LMR registered under that name")
	ErrNameTaken  = errors.New("lite: name already registered")
	ErrBadHandle  = errors.New("lite: invalid or revoked lh")
	ErrPermission = errors.New("lite: permission denied")
	ErrBounds     = errors.New("lite: access outside LMR")
	// ErrAlign reports an atomic on a word that is not 8-byte aligned
	// in physical memory — the NIC's atomic engine contract, enforced
	// on the local fast path too so both paths behave identically.
	ErrAlign        = errors.New("lite: atomics require an 8-byte-aligned word")
	ErrNotMaster    = errors.New("lite: operation requires the master role")
	ErrFreed        = errors.New("lite: LMR has been freed")
	ErrTimeout      = errors.New("lite: operation timed out")
	ErrNodeDead     = errors.New("lite: node declared dead")
	ErrNoSuchRPC    = errors.New("lite: no RPC function with that ID")
	ErrRemoteFailed = errors.New("lite: remote operation failed")
	// ErrOverloaded reports that the destination shed the call at
	// admission: its pending-call queue for the function was past the
	// configured high-water mark. Unlike ErrTimeout it is a definitive
	// statement that the call did NOT execute, so retrying it (with
	// backoff) is always safe — and unlike a timeout it arrives in one
	// round trip instead of a full timeout wait.
	ErrOverloaded = errors.New("lite: server overloaded, call shed")
	// ErrMaybeExecuted reports that a retry of a timed-out call reached
	// a server that has restarted since the call's first attempt: the
	// dedup window that would have recognized the earlier attempt died
	// with the previous incarnation, so whether the call executed is
	// unknowable. Unlike a silent re-execution this is a typed answer
	// the application can act on — idempotent operations resubmit,
	// non-idempotent ones reconcile. It is terminal to the retry layer.
	ErrMaybeExecuted = errors.New("lite: retry crossed a server restart, call may have executed")
	// ErrBadRingBytes reports an Options.RingBytes the IMM offset
	// encoding cannot address: ring offsets travel in 23 bits of 8-byte
	// units, so rings must be positive multiples of 8 no larger than
	// MaxRingBytes (64 MB). Anything larger would silently wrap offsets
	// and corrupt the ring.
	ErrBadRingBytes = errors.New("lite: RingBytes must be a positive multiple of 8 no larger than 64 MB")
	// ErrMoved reports that the function this call targeted has been
	// migrated away from the destination node: the server fenced the
	// request and answered with a tagRPCMoved notification instead of
	// executing it. Like ErrOverloaded it is a definitive "did NOT
	// execute"; the rich MovedError form carries the new home node, and
	// the retry layer re-routes there transparently, so applications
	// normally never observe it.
	ErrMoved = errors.New("lite: function migrated to another node")
	// ErrMigrating reports a Drain invoked on a function that is
	// already mid-migration on this node.
	ErrMigrating = errors.New("lite: function is already migrating")
	// ErrTenantDenied reports a cross-tenant namespace violation: a
	// tenant-tagged client touched an LMR or handle owned by a
	// different tenant. Unlike ErrPermission (which an owner can cure
	// with LT_grant), a tenant boundary is not grantable.
	ErrTenantDenied = errors.New("lite: handle belongs to another tenant")
)

// OverloadError is the rich form of ErrOverloaded a shed notification
// may carry when the fair admission policy is active: RetryAfter is
// the server's estimate of when the client's in-flight work will have
// drained enough to admit one more call — a Retry-After hint, not a
// lease. It unwraps to ErrOverloaded, so errors.Is(err, ErrOverloaded)
// matches either form and existing callers need no change; the retry
// layer additionally extracts the hint with errors.As and stretches
// its backoff to honor it.
type OverloadError struct {
	RetryAfter simtime.Time
}

func (e *OverloadError) Error() string { return ErrOverloaded.Error() }

// Unwrap makes errors.Is(err, ErrOverloaded) hold.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// MovedError is the rich form of ErrMoved a tagRPCMoved notification
// carries: To is the node the function now lives on. It unwraps to
// ErrMoved so errors.Is matches either form; the retry layer extracts
// To with errors.As, records the move in its local view, and reissues
// the call against the new home without consuming a retry attempt.
type MovedError struct {
	To int
}

func (e *MovedError) Error() string { return ErrMoved.Error() }

// Unwrap makes errors.Is(err, ErrMoved) hold.
func (e *MovedError) Unwrap() error { return ErrMoved }

// TenantDeniedError is the rich form of ErrTenantDenied: Tenant is the
// caller, Owner the tenant that owns the handle or LMR it touched. It
// unwraps to ErrTenantDenied so errors.Is matches either form.
type TenantDeniedError struct {
	Tenant uint16
	Owner  uint16
}

func (e *TenantDeniedError) Error() string { return ErrTenantDenied.Error() }

// Unwrap makes errors.Is(err, ErrTenantDenied) hold.
func (e *TenantDeniedError) Unwrap() error { return ErrTenantDenied }

// Options configures a LITE deployment.
type Options struct {
	// QPsPerPair is K in the paper's K×N queue-pair budget (§6.1).
	QPsPerPair int
	// RingBytes is the size of each RPC ring buffer LMR (§5.1 uses
	// 16 MB; the default is smaller to fit many bindings).
	RingBytes int64
	// ScratchBytes is the per-node scratch arena used for response
	// buffers and internal operations.
	ScratchBytes int64
	// RPCTimeout bounds LT_RPC waiting for a reply.
	RPCTimeout simtime.Time
	// ManagerNode hosts the cluster name directory (§3.3).
	ManagerNode int
	// RecvBatch is how many zero-byte IMM receive buffers the
	// background reposter keeps posted per node.
	RecvBatch int
	// MaxChunkBytes is the largest physically contiguous piece LITE
	// allocates for an LMR; larger LMRs are spread over multiple
	// chunks to avoid external fragmentation (§4.1). The paper found
	// the chunked layout costs under 2% versus one huge region.
	MaxChunkBytes int64

	// MeshPeers, when non-nil, restricts the boot-time shared-QP mesh
	// and control-ring setup to node pairs the predicate admits; nil
	// keeps the paper's full K×N mesh. The predicate is consulted once
	// per unordered pair (a < b) and must be symmetric in intent. At
	// datacenter scale the full mesh is exactly the connection
	// explosion RDMAvisor warns about (500 nodes ≈ 250k QP pairs), and
	// real deployments bring up connections to the peers a node
	// actually talks to; the `scale` benchmark meshes clients with the
	// kvstore servers and the manager only. RPCs are only valid
	// between meshed pairs — calls to an unmeshed peer have no QPs and
	// no control ring. Leasing (ConnectPeer) still works on demand for
	// any pair.
	MeshPeers func(a, b int) bool

	// CompatBaseline reproduces the host-cost behavior the simulator
	// had before the 500-node scaling work, for use as a measured
	// baseline: every completion scans all peers' shared QPs for ones
	// below the receive low-water mark (instead of visiting only the
	// QPs whose low-water notification fired), and completion/receive
	// queues consume by re-slicing their front away (reallocating every
	// queue lap) instead of the head-indexed ring discipline.
	// Virtual-time behavior is identical — the same QPs are restocked
	// and the same completions delivered at the same instants; the
	// difference is host cost. The scale benchmark uses it to measure
	// the pre-optimization hot path, and equivalence tests use it to
	// cross-check the dirty list against the scan.
	CompatBaseline bool

	// HeartbeatInterval enables failure detection when nonzero: the
	// cluster manager probes every node with a keepalive RPC at this
	// period. Zero (the default) disables the detector entirely so
	// latency-sensitive deployments pay nothing for it.
	HeartbeatInterval simtime.Time
	// HeartbeatTimeout bounds each keepalive round trip.
	HeartbeatTimeout simtime.Time
	// HeartbeatMiss is K, the consecutive missed beats after which the
	// manager declares a node dead and broadcasts a new membership
	// epoch.
	HeartbeatMiss int
	// ProbeStagger spreads the manager's per-target prober phases
	// deterministically across the heartbeat interval (offset derived
	// from the target id, not wall-clock). At hundreds of nodes this
	// turns the manager's probe traffic from one synchronized burst per
	// interval — which a leaf failure converts into a correlated
	// timeout storm — into a flat trickle. Off by default so existing
	// recorded timelines are unchanged.
	ProbeStagger bool
	// AsyncCommitBroadcast acks a migration commit before fanning the
	// new membership epoch out to the cluster, instead of after. The
	// commit's linearization point is the manager's moves-table update
	// either way; what the synchronous fan-out adds is an O(cluster)
	// wait — ~3.2ms at 500 nodes — spent with the source still fenced
	// and every held client call parked behind it. The rebalance storm
	// flushed this out: each shard move's fence window was dominated
	// not by quiesce or transfer but by the manager reciting the epoch
	// to 499 bystanders. Off by default so existing recorded timelines
	// are unchanged.
	AsyncCommitBroadcast bool
	// RetryAttempts bounds the RPC retry wrapper (RPCRetry); each
	// attempt pays its own timeout.
	RetryAttempts int
	// RetryBackoff is the base of the exponential backoff between
	// retry attempts (doubled per attempt, plus deterministic jitter
	// derived from the simulation clock, never wall-clock).
	RetryBackoff simtime.Time

	// AdmissionHighWater, when positive, enables server-side admission
	// control on application RPC functions: a request arriving while
	// the function's pending-call queue already holds this many calls
	// is shed immediately with a fast ErrOverloaded notification back
	// to the caller, instead of being queued until the caller's wait
	// degenerates into a timeout. Zero (the default) disables shedding.
	AdmissionHighWater int

	// FairAdmission upgrades admission control (it requires a positive
	// AdmissionHighWater) from the depth-only shed to the cost-aware,
	// per-client-fair policy in admission.go: calls are charged
	// input-bytes + service-time-EWMA cost, each client is entitled to
	// a deficit-round-robin fair share of AdmissionHighWater×avg-cost,
	// and only the over-share client is shed — with a Retry-After hint
	// in the notification — when the server is past budget. Off (the
	// default) keeps the PR 4 depth-only behaviour.
	FairAdmission bool

	// DisableInline turns off in-WQE (inline) payload delivery: every
	// ring post then pays the NIC's payload DMA-read stage regardless
	// of size. Used by ablation experiments; off (inline on) is the
	// production configuration.
	DisableInline bool
	// DisableDoorbellBatch turns off single-doorbell list posting:
	// head updates and receive restocks then ring one doorbell per
	// work request, the pre-fast-path behaviour.
	DisableDoorbellBatch bool
	// SignalEvery is the selective-signaling period on the shared QPs:
	// every Nth post is signaled (and its completion lazily reclaims
	// the accumulated send-queue slots); the posts in between produce
	// no CQE at all. Zero selects the default; 1 signals every post.
	SignalEvery int

	// QPLeasePool, when positive, keeps that many pre-established spare
	// QPs per peer in a kernel connection pool (KRCORE-style): a node
	// re-establishing connectivity leases one per needed QP at
	// Params.QPLeaseGrant instead of paying the full rdma_cm exchange
	// at Params.QPConnectTime, and a background replenisher rebuilds
	// the pool off the critical path. Zero (the default) disables the
	// pool; reconnects then cold-connect. The pool, like the manager's
	// membership table, is modeled as surviving node restarts (it lives
	// in the kernel connection service on the paper's HA pair).
	QPLeasePool int
	// RingLeasePool, when positive, pre-allocates that many RPC ring
	// arenas per node at boot; a binding negotiated at runtime leases
	// one at Params.QPLeaseGrant instead of paying the page-allocator
	// cost for a fresh contiguous arena. Zero disables it.
	RingLeasePool int
	// ReconnectOnRestart makes a restarting node re-establish its
	// shared QP mesh (leasing from the pool when QPLeasePool is set,
	// cold-connecting otherwise) before it rejoins the cluster. Off by
	// default: the base simulation models QPs as surviving restarts,
	// and flipping this on changes restart timelines.
	ReconnectOnRestart bool

	// Pacer enables the client-side overload pacer: a Retry-After hint
	// shipped with a fair-admission shed is remembered per (node,
	// function) and delays this client's NEXT sends to that target —
	// flow control, not just retry backoff. Off by default.
	Pacer bool
}

// DefaultOptions returns the standard deployment configuration.
func DefaultOptions() Options {
	return Options{
		QPsPerPair:       2,
		RingBytes:        1 << 20,
		ScratchBytes:     64 << 20,
		RPCTimeout:       10 * 1000 * 1000, // 10ms
		ManagerNode:      0,
		RecvBatch:        512,
		MaxChunkBytes:    4 << 20,
		HeartbeatTimeout: 500 * 1000, // 500us per keepalive round trip
		HeartbeatMiss:    3,
		RetryAttempts:    4,
		RetryBackoff:     100 * 1000, // 100us base, doubled per attempt
	}
}

// Instance is one node's LITE kernel module.
type Instance struct {
	cls  *cluster.Cluster
	node *cluster.Node
	opts Options
	cfg  *params.Config
	dep  *Deployment

	ctx      *verbs.Context
	globalMR *rnic.MR

	// Shared queue pairs: qps[remote][k]; nil for the local node.
	qps      [][]*rnic.QP
	qpSlots  [][]*simtime.Semaphore // per-QP outstanding-op budget
	qpSig    [][]*qpSigState        // per-QP selective-signaling state
	nextQP   []int
	sendCQ   *rnic.CQ
	sendDisp *verbs.Dispatcher
	recvCQ   *rnic.CQ

	// lowRecv lists shared QPs whose posted-receive count dropped below
	// the restock low-water mark (fed by rnic.SetRecvLowWater), so
	// topUpRecvs visits exactly the QPs that need a refill instead of
	// scanning all peers on every completion. recvTmpl is a read-only
	// RecvBatch-long refill list (every entry is the same zero-byte IMM
	// buffer), so restocks are alloc-free at steady state.
	lowRecv  []*rnic.QP
	recvTmpl []rnic.PostedRecv

	scratch   scratchRing
	nextWR    uint64
	framePool [][]byte // recycled ring-frame buffers (postToRing)

	// LMR state (lmr.go).
	lhs      map[uint64]*lhEntry
	nextLH   uint64
	localLMR map[uint64]*lmrState // LMRs homed (at least partly) here

	// RPC state (rpc.go).
	funcs     map[int]*rpcFunc
	bindings  map[bindKey]*binding
	bindSetup map[bindKey]*bindSetup
	srvRings  map[bindKey]*srvRing
	pending   map[uint32]*pendingCall
	nextToken uint32
	// nextSeq numbers retried RPCs for server-side duplicate
	// suppression. It is monotonic for the life of the instance and
	// deliberately NOT reset on restart, so a rebooted client can never
	// collide with sequence numbers its previous incarnation left in a
	// server's dedup window.
	nextSeq uint64
	// adm is the per-function fair-admission state (admission.go),
	// created lazily and wiped wholesale on crash/restart (the queued
	// calls it accounted for die with the incarnation).
	adm map[int]*fnAdm
	// tenantCtrs caches per-tenant obs counter names (obs.go).
	tenantCtrs map[uint16]*tenantCtrNames
	// boots counts this node's incarnations: 0 at deployment boot,
	// incremented by every restart. It stamps ring frames and the
	// server-side dedup windows, so a retry whose first attempt
	// targeted an earlier incarnation is detectably ambiguous
	// (ErrMaybeExecuted) instead of silently re-executing.
	boots    uint64
	headUpd  *simtime.Chan[headUpdate]
	msgQueue []Message
	msgCond  simtime.Cond
	sysQueue []*rpcFunc
	sysCond  simtime.Cond

	// Migration state (migrate.go). migrating tracks this node's
	// in-progress outbound migrations by function; moved is this
	// instance's view of committed moves (installed by membership
	// broadcasts and learned from MovedError redirects); adopted holds
	// dedup windows shipped ahead of an adoption, installed into the
	// ring when the client binds; onAdopt holds per-function
	// application adoption hooks run on the target during state
	// transfer.
	migrating map[int]*migState
	moved     map[migKey]int
	adopted   map[bindKey]*adoptedWindow
	onAdopt   map[int]AdoptFunc
	// onAdoptFrom holds source-scoped adoption hooks, keyed (src, fn)
	// and consumed by the first matching adoption. Concurrent drains of
	// distinct shards that share a function id (every kvstore shard
	// speaks the same fn) land on the same target; a single fn-keyed
	// hook would route both transfers through whichever hook was
	// registered last.
	onAdoptFrom map[migKey]AdoptFunc

	// Lease state (lease.go): the node's view of the kernel connection
	// pool plus the pre-allocated ring arenas.
	lease leaseState

	// Pacer state (pacer.go): per-(node, function) earliest-next-send
	// horizons distilled from Retry-After hints.
	pacer map[bindKey]simtime.Time

	// Sync state (sync.go).
	locks map[uint64]*lockState
	// lockSeq mints lock ids. Per-instance, not process-global: ids are
	// fixed-width so a global counter cannot skew timing the way the
	// store-id counter did, but replayed runs should still mint
	// identical ids.
	lockSeq uint64

	// QoS state (qos.go).
	qos qosState

	// Failure state (membership.go, failover.go). stopped is set while
	// the node is crashed; epoch/deadView are this instance's view of
	// the manager's membership broadcasts.
	stopped  bool
	epoch    uint64
	deadView map[int]bool

	// Diagnostics.
	PollerCPU simtime.Time
}

// Deployment is a LITE cluster: one Instance per node plus the global
// name directory hosted at the manager node.
type Deployment struct {
	Cluster   *cluster.Cluster
	Instances []*Instance
	opts      Options

	// directory is the manager-node name service (§3.3). Lookups from
	// other nodes pay an RPC round trip to the manager.
	directory map[string]*lmrState
	nextLMRID uint64
	appSeq    uint64
	barriers  map[uint64]*barrierState
	qsig      qosSignals

	// memb is the manager's authoritative membership view (modeled as
	// surviving manager restarts, as on the paper's HA node pair).
	memb membState

	// tenantW maps a registered tenant ID to its QoS weight: weight w
	// earns w shares of every function's admission budget. Unregistered
	// tenants default to weight 1. Registration happens at deployment
	// setup (internal/tenant.Registry.Attach), before traffic flows.
	tenantW map[uint16]int64
}

// SetTenantWeight registers tenant id with QoS weight w (floored at
// 1). Tenant 0 is the kernel/untenanted class and cannot be weighted.
func (d *Deployment) SetTenantWeight(id uint16, w int) {
	if id == 0 {
		return
	}
	if w < 1 {
		w = 1
	}
	if d.tenantW == nil {
		d.tenantW = make(map[uint16]int64)
	}
	d.tenantW[id] = int64(w)
}

// tenantWeight returns tenant id's registered QoS weight, defaulting
// to 1 for tenants that never registered one.
func (d *Deployment) tenantWeight(id uint16) int64 {
	if w, ok := d.tenantW[id]; ok {
		return w
	}
	return 1
}

// meshedPair normalizes a MeshPeers query to the unordered (low, high)
// form the predicate is specified over.
func meshedPair(mesh func(a, b int) bool, x, y int) bool {
	if x > y {
		x, y = y, x
	}
	return mesh(x, y)
}

// Start boots LITE on every node of the cluster: it registers the
// global physical-address MR on each NIC, builds the shared K×N queue
// pair mesh, and starts each node's shared polling thread and
// background header-update thread.
func Start(cls *cluster.Cluster, opts Options) (*Deployment, error) {
	if opts.QPsPerPair < 1 {
		return nil, fmt.Errorf("lite: QPsPerPair must be >= 1")
	}
	if err := validateRingBytes(opts.RingBytes); err != nil {
		return nil, err
	}
	dep := &Deployment{
		Cluster:   cls,
		opts:      opts,
		directory: make(map[string]*lmrState),
		barriers:  make(map[uint64]*barrierState),
	}
	n := len(cls.Nodes)
	for _, nd := range cls.Nodes {
		inst := &Instance{
			cls:         cls,
			node:        nd,
			opts:        opts,
			cfg:         cls.Cfg,
			dep:         dep,
			ctx:         verbs.Open(nd.NIC, nd.KernelAS),
			qps:         make([][]*rnic.QP, n),
			qpSlots:     make([][]*simtime.Semaphore, n),
			qpSig:       make([][]*qpSigState, n),
			nextQP:      make([]int, n),
			lhs:         make(map[uint64]*lhEntry),
			nextLH:      1,
			localLMR:    make(map[uint64]*lmrState),
			funcs:       make(map[int]*rpcFunc),
			bindings:    make(map[bindKey]*binding),
			srvRings:    make(map[bindKey]*srvRing),
			pending:     make(map[uint32]*pendingCall),
			headUpd:     simtime.NewChan[headUpdate](4096),
			locks:       make(map[uint64]*lockState),
			deadView:    make(map[int]bool),
			migrating:   make(map[int]*migState),
			moved:       make(map[migKey]int),
			adopted:     make(map[bindKey]*adoptedWindow),
			onAdopt:     make(map[int]AdoptFunc),
			onAdoptFrom: make(map[migKey]AdoptFunc),
			pacer:       make(map[bindKey]simtime.Time),
		}
		inst.lease.init(&opts, n, nd.ID)
		inst.qos.init(inst, opts.QPsPerPair, &dep.qsig)
		// One global MR per node covering all of physical memory,
		// registered with physical addresses (§4.1): one lkey/rkey, no
		// PTEs on the NIC, no pinning pass.
		mr, err := nd.NIC.RegisterPhysMR(nd.KernelAS, 0, nd.Mem.TotalBytes(), rnic.PermRead|rnic.PermWrite|rnic.PermAtomic)
		if err != nil {
			return nil, err
		}
		mr.SetOwner("lite/global")
		inst.globalMR = mr
		if opts.CompatBaseline {
			nd.NIC.SetCompatSlidingQueues(true)
		}
		inst.sendCQ = nd.NIC.CreateCQ()
		inst.sendDisp = verbs.NewDispatcher(inst.sendCQ)
		inst.recvCQ = nd.NIC.CreateCQ()
		if err := inst.initScratch(); err != nil {
			return nil, err
		}
		if err := inst.initRingLeases(); err != nil {
			return nil, err
		}
		dep.Instances = append(dep.Instances, inst)
	}
	// Shared QP mesh: K QPs per node pair, all completing into the
	// owning node's single shared send CQ / receive CQ.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if opts.MeshPeers != nil && !opts.MeshPeers(i, j) {
				continue
			}
			a, b := dep.Instances[i], dep.Instances[j]
			for k := 0; k < opts.QPsPerPair; k++ {
				qa := a.node.NIC.CreateQP(rnic.RC, a.sendCQ, a.recvCQ)
				qb := b.node.NIC.CreateQP(rnic.RC, b.sendCQ, b.recvCQ)
				qa.SetOwner("lite/shared-mesh")
				qb.SetOwner("lite/shared-mesh")
				qa.SetRecvLowWater(opts.RecvBatch/2, a.noteLowRecv)
				qb.SetRecvLowWater(opts.RecvBatch/2, b.noteLowRecv)
				qa.Connect(j, qb.QPN())
				qb.Connect(i, qa.QPN())
				a.qps[j] = append(a.qps[j], qa)
				b.qps[i] = append(b.qps[i], qb)
				a.qpSlots[j] = append(a.qpSlots[j], simtime.NewSemaphore(qpDepth))
				b.qpSlots[i] = append(b.qpSlots[i], simtime.NewSemaphore(qpDepth))
				a.qpSig[j] = append(a.qpSig[j], &qpSigState{})
				b.qpSig[i] = append(b.qpSig[i], &qpSigState{})
			}
		}
	}
	// Control rings for internal RPC (binding setup, naming, memory
	// ops, locking) are established as part of cluster bootstrap.
	for _, inst := range dep.Instances {
		inst.registerSystemFuncs()
	}
	for _, inst := range dep.Instances {
		for _, other := range dep.Instances {
			if other == inst {
				continue
			}
			if opts.MeshPeers != nil && !meshedPair(opts.MeshPeers, inst.node.ID, other.node.ID) {
				continue
			}
			if err := inst.setupBinding(other.node.ID, funcControl); err != nil {
				return nil, err
			}
		}
	}
	// Per-node daemons: shared poller, IMM-buffer reposter (folded into
	// the poller), header-update sender, and system RPC workers.
	for _, inst := range dep.Instances {
		inst.topUpRecvs(nil)
		inst.spawnDaemons()
	}
	// Node-failure plumbing: crash/restart hooks on the cluster, and
	// the manager's heartbeat probers when failure detection is on.
	dep.memb.init()
	dep.attachFailover()
	if opts.HeartbeatInterval > 0 {
		mgr := dep.Instances[opts.ManagerNode]
		for _, inst := range dep.Instances {
			if inst == mgr {
				continue
			}
			target := inst.node.ID
			cls.GoDaemonOn(mgr.node.ID, "lite-prober", func(p *simtime.Proc) {
				mgr.proberLoop(p, target)
			})
		}
	}
	return dep, nil
}

// spawnDaemons starts (or, after a restart, restarts) the per-node
// background threads.
func (i *Instance) spawnDaemons() {
	i.cls.GoDaemonOn(i.node.ID, "lite-poller", i.pollerLoop)
	i.cls.GoDaemonOn(i.node.ID, "lite-headupd", i.headUpdateLoop)
	for w := 0; w < systemWorkers; w++ {
		i.cls.GoDaemonOn(i.node.ID, "lite-sys", i.systemWorkerLoop)
	}
}

// qpDepth bounds outstanding operations per shared QP; it is what
// makes HW-Sep QP reservation an actual resource partition.
const qpDepth = 16

// defaultSignalEvery is the selective-signaling period: one signaled
// send per this many posts on a shared QP. It must stay below qpDepth
// so a full send queue always has a signaled completion in flight to
// unblock it.
const defaultSignalEvery = 4

// systemWorkers is the number of kernel worker threads per node that
// execute LITE-internal RPC handlers.
const systemWorkers = 4

// signalEvery returns the effective selective-signaling period,
// clamped below qpDepth so a full send queue always has a signaled
// completion in flight to unblock it.
func (i *Instance) signalEvery() int {
	se := i.opts.SignalEvery
	if se <= 0 {
		se = defaultSignalEvery
	}
	if se >= qpDepth {
		se = qpDepth - 1
	}
	return se
}

// qpSigState is the selective-signaling bookkeeping of one shared QP:
// how many posts have gone unsignaled since the last signaled one, the
// send-queue slot releases those posts deferred, and the signaled
// batches still awaiting their completion. Reclamation is strictly
// per-QP: posters reap arrived completions on the next post, and a
// poster facing a full send queue waits on this QP's own oldest
// signaled completion — never on another QP's, so a destination that
// is timing out cannot starve traffic to healthy ones.
type qpSigState struct {
	count    int
	pending  []func()
	inflight []reclaimBatch
	// reaping marks that some poster is blocked waiting for the oldest
	// in-flight completion; contenders park on cond instead of
	// double-waiting on the same work-request id.
	reaping bool
	cond    simtime.Cond
}

// reclaimBatch is one signaled WR's worth of deferred send-queue slot
// releases, freed when that WR's completion is reaped.
type reclaimBatch struct {
	wrid     uint64
	releases []func()
}

// Instance accessors.

// NodeID returns the node this instance runs on.
func (i *Instance) NodeID() int { return i.node.ID }

// Deployment returns the owning deployment.
func (i *Instance) Deployment() *Deployment { return i.dep }

// QPCount returns the number of shared queue pairs this node holds
// (the paper's K×N; §6.1).
func (i *Instance) QPCount() int {
	c := 0
	for _, qs := range i.qps {
		c += len(qs)
	}
	return c
}

// OS returns the node's OS boundary.
func (i *Instance) OS() *hostos.OS { return i.node.OS }

// Instance returns the deployment's instance at the given node.
func (d *Deployment) Instance(node int) *Instance { return d.Instances[node] }

// NextAppSeq hands out deployment-scoped sequence numbers for
// applications to build unique identifiers from (store ids, shard
// names). Scoped to the deployment, not the process: a process-global
// counter leaks state between simulation runs — identifiers grow one
// digit wider, every message carrying one grows a byte, and a
// supposedly seed-identical replay drifts by a few nanoseconds of
// serialization time per message. The rebalance stress run flushed
// exactly that out of the kvstore's store-id counter.
func (d *Deployment) NextAppSeq() uint64 {
	d.appSeq++
	return d.appSeq
}

// wrID returns a fresh work-request id.
func (i *Instance) wrID() uint64 {
	i.nextWR++
	return i.nextWR
}

// pickQP selects a shared QP to the destination honoring the QoS mode,
// acquires one outstanding-op slot on it, and returns the QP, its
// index within the destination's QP set, and a release func.
func (i *Instance) pickQP(p *simtime.Proc, dst int, pri Priority) (*rnic.QP, int, func()) {
	// Shares acquireShared's reclaim machinery: slots on a shared QP
	// may be held by lazily-reclaimed batches whose completions already
	// arrived, and only reaping frees them — a plain Acquire here could
	// starve one-sided ops behind stale batch slots.
	qp, k, _, release := i.acquireShared(p, dst, pri)
	return qp, k, release
}

// scratchRing is a bump allocator over a contiguous kernel arena used
// for response buffers and internal staging. Allocations are 64-byte
// aligned and the ring wraps; reply buffers of timed-out RPCs are
// quarantined (the server's late reply write-imm may still be in
// flight) and the allocator steps around them until the reply lands or
// the membership epoch advances past the call.
type scratchRing struct {
	base hostmem.PAddr
	size int64
	next int64

	quar      []quarRange
	quarBytes int64
	// evicted collects tokens whose quarantine the safety valve
	// force-released; the owner drops their pending entries.
	evicted []uint32
	// Evictions counts safety-valve releases, for diagnostics: nonzero
	// means a reply buffer was reused while a late reply could still
	// have been in flight.
	Evictions int64
}

// quarRange is one quarantined reply buffer: [start, end) offsets into
// the arena, the pending token that owns it, and the membership epoch
// at which the owning call timed out.
type quarRange struct {
	start, end int64
	token      uint32
	epoch      uint64
}

func (i *Instance) initScratch() error {
	pa, err := i.node.Mem.AllocContiguous(i.opts.ScratchBytes)
	if err != nil {
		return err
	}
	i.scratch = scratchRing{base: pa, size: i.opts.ScratchBytes}
	return nil
}

func (s *scratchRing) alloc(n int64) hostmem.PAddr {
	// Reserve at least one cache line even for zero-reply calls: a
	// shed notification may write an 8-byte Retry-After hint into the
	// reply buffer, so every response address must own real space.
	if n < 64 {
		n = 64
	}
	n = (n + 63) &^ 63
	wraps := 0
	for {
		if s.next+n > s.size {
			s.next = 0
			wraps++
			// Two full wraps without finding a gap means quarantined
			// buffers are starving the arena; reclaim the oldest.
			if wraps >= 2 {
				s.evictOldest()
				wraps = 0
			}
		}
		if q, hit := s.overlap(s.next, s.next+n); hit {
			s.next = (q.end + 63) &^ 63
			if s.quarBytes > s.size/2 {
				s.evictOldest()
			}
			continue
		}
		pa := s.base + hostmem.PAddr(s.next)
		s.next += n
		return pa
	}
}

// overlap returns the quarantined range intersecting [start, end), if
// any.
func (s *scratchRing) overlap(start, end int64) (quarRange, bool) {
	for _, q := range s.quar {
		if start < q.end && q.start < end {
			return q, true
		}
	}
	return quarRange{}, false
}

// quarantine marks a reply buffer unusable until release. Every reply
// buffer owns at least one cache line (see alloc), and even a
// zero-reply call's buffer can still receive a late 8-byte shed hint,
// so the minimum is quarantined too.
func (s *scratchRing) quarantine(pa hostmem.PAddr, n int64, token uint32, epoch uint64) {
	if n < 64 {
		n = 64
	}
	n = (n + 63) &^ 63
	start := int64(pa - s.base)
	s.quar = append(s.quar, quarRange{start: start, end: start + n, token: token, epoch: epoch})
	s.quarBytes += n
}

// release frees the quarantined buffer owned by token, if present.
func (s *scratchRing) release(token uint32) {
	for k, q := range s.quar {
		if q.token == token {
			s.quarBytes -= q.end - q.start
			s.quar = append(s.quar[:k], s.quar[k+1:]...)
			return
		}
	}
}

// releaseBefore frees every quarantine installed before the given
// membership epoch (any in-flight reply from those calls was sent by a
// since-declared-dead or since-restarted peer) and returns their
// tokens.
func (s *scratchRing) releaseBefore(epoch uint64) []uint32 {
	var toks []uint32
	kept := s.quar[:0]
	for _, q := range s.quar {
		if q.epoch < epoch {
			s.quarBytes -= q.end - q.start
			toks = append(toks, q.token)
			continue
		}
		kept = append(kept, q)
	}
	s.quar = kept
	return toks
}

// evictOldest is the safety valve: if quarantines accumulate without
// any reply or epoch advance ever releasing them, drop the oldest so
// the arena cannot be starved. The hazard window this reopens is
// counted in Evictions.
func (s *scratchRing) evictOldest() {
	if len(s.quar) == 0 {
		return
	}
	q := s.quar[0]
	s.quar = s.quar[1:]
	s.quarBytes -= q.end - q.start
	s.evicted = append(s.evicted, q.token)
	s.Evictions++
}

// scratchAlloc is the instance-level allocator entry point: it
// allocates from the ring and drops the pending entries of any
// quarantines the safety valve evicted.
func (i *Instance) scratchAlloc(n int64) hostmem.PAddr {
	pa := i.scratch.alloc(n)
	if len(i.scratch.evicted) > 0 {
		for _, tok := range i.scratch.evicted {
			delete(i.pending, tok)
		}
		i.scratch.evicted = i.scratch.evicted[:0]
	}
	return pa
}

// adaptiveWait blocks until ready() holds, using LITE's adaptive
// thread model: busy-check (CPU charged) for the configured window,
// then sleep and pay one wakeup. It returns false if the deadline (if
// nonzero) passed first.
func (i *Instance) adaptiveWait(p *simtime.Proc, cond *simtime.Cond, ready func() bool, deadline simtime.Time) bool {
	if ready() {
		return true
	}
	busyUntil := p.Now() + i.cfg.AdaptivePollWindow
	for !ready() && p.Now() < busyUntil {
		if deadline > 0 && p.Now() >= deadline {
			return false
		}
		limit := busyUntil
		if deadline > 0 && deadline < limit {
			limit = deadline
		}
		t0 := p.Now()
		cond.WaitTimeout(p, limit-p.Now())
		p.CPUAccount().Charge(p.Now() - t0)
	}
	if ready() {
		return true
	}
	for !ready() {
		if deadline > 0 {
			if p.Now() >= deadline {
				return false
			}
			cond.WaitTimeout(p, deadline-p.Now())
		} else {
			cond.Wait(p)
		}
	}
	p.Work(i.cfg.WakeupLatency)
	return true
}

// memcpyCost charges the calling thread for an n-byte host memory copy.
func (i *Instance) memcpyCost(p *simtime.Proc, n int64) {
	p.Work(params.TransferTime(n, i.cfg.MemcpyBandwidth))
}
