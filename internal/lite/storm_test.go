package lite

import (
	"fmt"
	"testing"
	"time"

	"lite/internal/cluster"
	"lite/internal/params"
	"lite/internal/simtime"
)

// Pinned regressions for the two latent bugs the churn storm flushed
// out of the membership and lease layers.

// TestDeclareDeadDedup pins the declaration collapse: concurrent
// declarations of one node must cost one epoch bump and one death, and
// a second view change landing while the first broadcast is in flight
// must coalesce into the in-flight fan-out (dirty re-ship), not start
// its own. Before the fix a 25-host leaf failure cost O(deaths x
// nodes) correlated broadcasts, and overlapping fan-outs could pair a
// fresh epoch with a stale dead list.
func TestDeclareDeadDedup(t *testing.T) {
	cls, dep := testDep(t, 6)
	cls.EnableObs()
	mgr := dep.Instance(0)
	// First declarer: opens the broadcast fan-out, then yields inside
	// the first ctlMembership RPC.
	cls.GoOn(0, "declare-a", func(p *simtime.Proc) {
		mgr.declareDead(p, 3)
	})
	// Second declarer runs while that fan-out is in flight: the repeat
	// declaration of 3 must be a no-op, and the new death of 4 must
	// ride the in-flight broadcast as a dirty re-ship.
	cls.GoOn(0, "declare-b", func(p *simtime.Proc) {
		mgr.declareDead(p, 3)
		mgr.declareDead(p, 4)
		if !mgr.dep.memb.broadcasting {
			t.Error("second declarer did not overlap the first broadcast; the race this test pins did not occur")
		}
	})
	run(t, cls)

	if got := cls.Obs.Total("lite.membership.deaths"); got != 2 {
		t.Errorf("deaths = %d, want 2 (repeat declaration must not count)", got)
	}
	if got := cls.Obs.Total("lite.membership.epochs"); got != 2 {
		t.Errorf("epoch bumps = %d, want 2", got)
	}
	if got := cls.Obs.Total("lite.membership.broadcasts"); got != 2 {
		t.Errorf("broadcast laps = %d, want 2 (one fan-out plus one coalesced re-ship)", got)
	}
	// Every live instance converged on the final (epoch, dead) pair —
	// no one pinned a fresh epoch with a stale dead list.
	want := dep.memb.epoch
	for _, n := range []int{0, 1, 2, 5} {
		inst := dep.Instance(n)
		if inst.epoch != want {
			t.Errorf("node %d epoch = %d, want %d", n, inst.epoch, want)
		}
		if !inst.deadView[3] || !inst.deadView[4] {
			t.Errorf("node %d dead view missed a death: %v", n, inst.deadView)
		}
	}
}

// leaseStormOutcome captures one run for the same-seed comparison.
type leaseStormOutcome struct {
	end     simtime.Time
	revoked int64
	deaths  int64
	spares  string
}

// runLeaseStorm crashes three peers at once, then restarts them, and
// watches a survivor's connection pool through the cycle.
func runLeaseStorm(t *testing.T) leaseStormOutcome {
	t.Helper()
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, 8, 1<<30)
	opts := DefaultOptions()
	opts.HeartbeatInterval = 100 * time.Microsecond
	opts.HeartbeatTimeout = 300 * time.Microsecond
	opts.QPLeasePool = 2
	opts.ReconnectOnRestart = true
	dep, err := Start(cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	cls.EnableObs()
	victims := []int{2, 3, 4}
	survivor := dep.Instance(1)

	cls.GoOn(0, "killer", func(p *simtime.Proc) {
		p.SleepUntil(200 * time.Microsecond)
		for _, v := range victims {
			cls.CrashNode(p, v)
		}
		p.SleepUntil(3 * time.Millisecond)
		for _, v := range victims {
			cls.RestartNode(p, v)
		}
	})

	var midSpares string
	cls.GoOn(1, "watch", func(p *simtime.Proc) {
		// After the declarations land, every spare toward the dead
		// leaf must be revoked — handing one out would put a dead
		// connection on a caller's critical path.
		p.SleepUntil(2 * time.Millisecond)
		var mid []string
		for _, v := range victims {
			mid = append(mid, fmt.Sprintf("%d:%d", v, survivor.LeaseSpares(v)))
			if survivor.LeaseSpares(v) != 0 {
				t.Errorf("spares toward dead node %d = %d, want 0 (revoked)", v, survivor.LeaseSpares(v))
			}
		}
		midSpares = fmt.Sprint(mid)
		// After the revival broadcast, the jittered replenisher must
		// rebuild every revoked slot — before the fix the pool stayed
		// empty until the next ConnectPeer paid the cold cost inline.
		p.SleepUntil(9 * time.Millisecond)
		for _, v := range victims {
			if got, want := survivor.LeaseSpares(v), survivor.LeaseTarget(); got != want {
				t.Errorf("spares toward revived node %d = %d, want %d (replenisher re-armed)", v, got, want)
			}
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
	if got := cls.Obs.Total("lite.membership.deaths"); got != int64(len(victims)) {
		t.Errorf("deaths = %d, want %d", got, len(victims))
	}
	if got := cls.Obs.Total("lite.lease.revoked"); got < int64(len(victims)*opts.QPLeasePool) {
		t.Errorf("lite.lease.revoked = %d, want >= %d", got, len(victims)*opts.QPLeasePool)
	}
	return leaseStormOutcome{
		end:     cls.Env.Now(),
		revoked: cls.Obs.Total("lite.lease.revoked"),
		deaths:  cls.Obs.Total("lite.membership.deaths"),
		spares:  midSpares,
	}
}

// TestLeaseStormRevokeAndHeal runs the crash/restart cycle twice: the
// revoke-on-death and jittered-replenish behavior must hold and the
// two runs must replay identically (the jitter is deterministic).
func TestLeaseStormRevokeAndHeal(t *testing.T) {
	first := runLeaseStorm(t)
	second := runLeaseStorm(t)
	if first != second {
		t.Errorf("same configuration, different timelines:\n--- first\n%+v\n--- second\n%+v", first, second)
	}
}
