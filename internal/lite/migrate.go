package lite

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"lite/internal/simtime"
)

// Live handle migration (MigrOS-style, adapted to LITE's indirection
// tier): an RPC function — and with it the application shard it serves
// — moves from one node to another while in-flight calls complete and
// without a single client call failing. The protocol:
//
//	prepare   the manager records an epoch-stamped handoff record
//	          {src, fn} -> target. The record is routing-inert; it only
//	          gates the commit, so a crash anywhere resolves to exactly
//	          one owner: whoever the manager's committed moves table
//	          names.
//	fence     new arrivals for fn at the source are held, not executed.
//	drain     the source waits until every queued and in-flight call
//	          has replied.
//	transfer  the source ships fn's serving state — per-client dedup
//	          windows with their boot-stamp lineage, plus an opaque
//	          application payload — to the target, whose registered
//	          OnAdopt hook installs the application state and stands up
//	          serving before anything routes there.
//	commit    the manager checks the handoff record, installs the move
//	          in its moves table, bumps the membership epoch, and
//	          broadcasts. This is the linearization point of ownership.
//	done      the source answers every held call with a tagRPCMoved
//	          notification carrying the new home; clients re-route and
//	          reissue without consuming a retry attempt. The source's
//	          rings stay alive so stale frames keep bouncing to the new
//	          home instead of timing out.
//
// Any failure before commit aborts: the fence lifts and held calls
// dispatch normally, as if the migration never happened. A commit
// whose reply was lost is resolved through the manager's moves table
// (idempotent re-commit, or the membership broadcast that the commit
// itself triggered).
//
// Every phase is announced on the cluster event bus, so fault plans
// can crash nodes at exact protocol instants.

// migKey identifies one move record: function fn moved away from node
// src. Keyed by (src, fn), not fn alone — function IDs are commonly
// shared by many servers (every kvstore shard server registers the
// same fn), and only the one that migrated must bounce.
type migKey struct {
	src int
	fn  int
}

// moveRec is one committed move in a membership broadcast.
type moveRec struct {
	src, fn, dst int
}

// AdoptFunc is the application hook run on a migration target while
// the source is fenced: it receives the source node and the opaque
// application payload shipped with the transfer, and must leave the
// function fully serving (registered, state installed, server threads
// up) before it returns — commit routes clients here immediately.
type AdoptFunc func(p *simtime.Proc, src int, app []byte) error

// OnAdopt registers the application adoption hook for fn on this node.
func (i *Instance) OnAdopt(fn int, h AdoptFunc) { i.onAdopt[fn] = h }

// OnAdoptFrom registers a one-shot adoption hook scoped to transfers of
// fn arriving from src specifically; it is consumed by the first
// matching adoption. Applications whose shards all share one function
// id (kvstore) need this when two sources drain onto the same target
// concurrently: with only the fn-keyed hook, the second registration
// overwrites the first and both transfers run the same shard's hook.
func (i *Instance) OnAdoptFrom(fn, src int, h AdoptFunc) {
	i.onAdoptFrom[migKey{src, fn}] = h
}

// migState tracks one in-progress outbound migration at the source.
type migState struct {
	fn     int
	target int
	fenced bool
	held   []*Call
}

// adoptedWindow is a dedup window shipped ahead of a client's binding:
// installed into the srvRing when the client binds to the target.
type adoptedWindow struct {
	boots     []uint64
	dedup     map[uint64]*dedupEntry
	dedupFIFO []uint64
}

// drainPoll is how often the drain phase re-checks quiescence.
const drainPoll = 5 * 1000 // 5us

// commitAttempts bounds the commit retry loop. Commit must survive a
// manager crash-and-restart (the handoff and moves tables do, on the
// HA pair), so it retries harder than a regular RPC.
const commitAttempts = 8

// Drain live-migrates fn from this node to target. appState, when
// non-nil, runs after the function has quiesced and returns the opaque
// application payload handed to the target's OnAdopt hook (the
// application typically serializes its shard and hands over its LMRs
// inside this callback). On success the function's new home is target
// and this node bounces stale traffic there; on error the migration
// aborted and this node still owns fn.
func (i *Instance) Drain(p *simtime.Proc, fn, target int, appState func(q *simtime.Proc) ([]byte, error)) error {
	if i.stopped {
		return ErrNodeDead
	}
	if fn < FirstUserFunc || fn >= MaxFunc {
		return fmt.Errorf("lite: Drain: function ids must be in [%d, %d)", FirstUserFunc, MaxFunc)
	}
	f, ok := i.funcs[fn]
	if !ok {
		return ErrNoSuchRPC
	}
	if target == i.node.ID || target < 0 || target >= len(i.dep.Instances) {
		return fmt.Errorf("lite: Drain: bad target node %d", target)
	}
	if i.deadView[target] {
		return ErrNodeDead
	}
	if i.migrating[fn] != nil {
		return ErrMigrating
	}
	if _, gone := i.moved[migKey{i.node.ID, fn}]; gone {
		return ErrMoved
	}
	reg := i.obsReg()
	reg.Add("lite.migrate.started", 1)
	t0 := p.Now()

	i.cls.Announce(p, "lite.migrate.prepare")
	if err := i.ctlMigPrepare(p, fn, target); err != nil {
		reg.Add("lite.migrate.aborted", 1)
		return err
	}

	ms := &migState{fn: fn, target: target, fenced: true}
	i.migrating[fn] = ms
	i.cls.Announce(p, "lite.migrate.fence")

	if err := i.drainQuiesce(p, f); err != nil {
		return i.abortMigration(p, ms, err)
	}
	i.cls.Announce(p, "lite.migrate.drain")

	var app []byte
	if appState != nil {
		b, err := appState(p)
		if err != nil {
			return i.abortMigration(p, ms, err)
		}
		app = b
	}
	state := i.encodeMigState(fn, app)
	i.cls.Announce(p, "lite.migrate.transfer")
	if err := i.ctlMigState(p, target, state); err != nil {
		return i.abortMigration(p, ms, err)
	}

	i.cls.Announce(p, "lite.migrate.commit")
	if err := i.commitMigration(p, fn, target); err != nil {
		return i.abortMigration(p, ms, err)
	}

	// Committed: ownership changed at the manager. Record it locally
	// (the membership broadcast will confirm), lift the fence, and
	// bounce every held call to the new home.
	i.moved[migKey{i.node.ID, fn}] = target
	delete(i.migrating, fn)
	for _, c := range ms.held {
		i.queueNotify(p, headUpdate{kind: updMoved, client: c.Src, fn: fn, token: c.token, replyPA: c.replyPA, reply: encodeMovedTo(target)})
	}
	reg.Add("lite.migrate.committed", 1)
	reg.Add("lite.migrate.held_bounced", int64(len(ms.held)))
	reg.Observe("lite.migrate.duration", p.Now()-t0)
	ms.held = nil
	i.cls.Announce(p, "lite.migrate.done")
	return nil
}

// drainQuiesce waits until fn has no queued and no executing calls.
// New arrivals are already fenced, so the wait is bounded by the
// longest in-flight handler; the RPC timeout bounds it defensively.
func (i *Instance) drainQuiesce(p *simtime.Proc, f *rpcFunc) error {
	var deadline simtime.Time
	if i.opts.RPCTimeout > 0 {
		deadline = p.Now() + 4*i.opts.RPCTimeout
	}
	for len(f.queue) > 0 || f.executing > 0 {
		if i.stopped {
			return ErrNodeDead
		}
		if deadline > 0 && p.Now() >= deadline {
			return ErrTimeout
		}
		p.Sleep(drainPoll)
	}
	return nil
}

// commitMigration asks the manager to commit, retrying across manager
// downtime: the handoff and moves tables survive a manager restart, so
// a lost reply is resolved by re-asking (the handler answers a
// re-commit of an already-committed move with OK) — or by the
// membership broadcast the successful commit triggered, which installs
// the move into this instance's own view.
func (i *Instance) commitMigration(p *simtime.Proc, fn, target int) error {
	var lastErr error
	for a := 0; a < commitAttempts; a++ {
		if i.stopped {
			return ErrNodeDead
		}
		if to, ok := i.moved[migKey{i.node.ID, fn}]; ok && to == target {
			// The commit landed and its broadcast beat the reply here.
			return nil
		}
		err := i.ctlMigCommit(p, fn, target)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable(err) && !errors.Is(err, ErrNodeDead) {
			// A definitive rejection: the handoff record is gone or
			// names someone else.
			return err
		}
		p.Sleep(i.retryDelay(p, a))
	}
	if to, ok := i.moved[migKey{i.node.ID, fn}]; ok && to == target {
		return nil
	}
	return lastErr
}

// abortMigration unwinds a failed migration: the manager's handoff
// record is cleared (best effort — a stale record is routing-inert and
// is purged when either party dies or re-prepares), the fence lifts,
// and held calls dispatch as if they had just arrived. Their dedup
// entries were installed at hold time, so a retry that raced in during
// the fence redirects into them rather than executing twice.
func (i *Instance) abortMigration(p *simtime.Proc, ms *migState, cause error) error {
	i.obsReg().Add("lite.migrate.aborted", 1)
	if i.stopped {
		// Crashed mid-migration: held calls died with the incarnation;
		// their clients fail over through timeout or membership.
		return cause
	}
	delete(i.migrating, ms.fn)
	_ = i.ctlMigAbort(p, ms.fn)
	if f, ok := i.funcs[ms.fn]; ok {
		for _, c := range ms.held {
			i.dispatchCall(f, c)
		}
	}
	ms.held = nil
	i.cls.Announce(p, "lite.migrate.abort")
	return cause
}

// encodeMovedTo builds the 8-byte new-home payload of a tagRPCMoved
// notification.
func encodeMovedTo(to int) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(to))
	return b
}

// MovedTo reports this instance's view of where fn moved from src:
// the committed new home and true, or 0 and false if no move is
// recorded. Observability for tests and tooling; routing uses the
// retry layer's automatic redirect.
func (i *Instance) MovedTo(src, fn int) (int, bool) {
	to, ok := i.moved[migKey{src, fn}]
	return to, ok
}

// MigratingFn reports whether an outbound migration of fn is in
// progress on this node.
func (i *Instance) MigratingFn(fn int) bool { return i.migrating[fn] != nil }

// resolveMoved follows this instance's view of committed moves from
// dst, bounded against stale-view cycles.
func (i *Instance) resolveMoved(dst, fn int) int {
	for hops := 0; hops <= len(i.moved); hops++ {
		to, ok := i.moved[migKey{dst, fn}]
		if !ok {
			return dst
		}
		dst = to
	}
	return dst
}

// learnMove records a move reported by a MovedError redirect. The
// reverse edge is dropped so a later A->B->A migration chain cannot
// leave a cycle in this client's view.
func (i *Instance) learnMove(from, fn, to int) {
	i.moved[migKey{from, fn}] = to
	delete(i.moved, migKey{to, fn})
}

// sortedSrvRingKeys returns the server-ring keys in a stable order.
func (i *Instance) sortedSrvRingKeys() []bindKey {
	keys := make([]bindKey, 0, len(i.srvRings))
	for k := range i.srvRings {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].node != keys[b].node {
			return keys[a].node < keys[b].node
		}
		return keys[a].fn < keys[b].fn
	})
	return keys
}

// encodeMigState serializes fn's transferable serving state: for every
// client ring, the boot lineage and the completed entries of the dedup
// window (sequence number plus cached reply), followed by the opaque
// application payload.
//
// Order is load-bearing: rings are walked in sorted key order and
// window entries in FIFO insertion order — never in map order, which
// would make the migrated timeline depend on Go's map randomization.
// In-flight and held entries are deliberately excluded: they have not
// executed here, so the target must run them fresh.
//
// Wire format, all little endian:
//
//	[fn 4][nrings 4] then per ring:
//	  [client 4][nboots 2][boot 8]x then [nentries 4] per entry:
//	    [seq 8][replyLen 4][reply ...]
//	then [appLen 4][app ...]
func (i *Instance) encodeMigState(fn int, app []byte) []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint32(out[0:], uint32(fn))
	nrings := 0
	for _, key := range i.sortedSrvRingKeys() {
		if key.fn != fn {
			continue
		}
		nrings++
		ring := i.srvRings[key]
		var b [8]byte
		binary.LittleEndian.PutUint32(b[:4], uint32(key.node))
		out = append(out, b[:4]...)
		boots := append([]uint64{ring.boot}, ring.adoptedBoots...)
		binary.LittleEndian.PutUint16(b[:2], uint16(len(boots)))
		out = append(out, b[:2]...)
		for _, bt := range boots {
			binary.LittleEndian.PutUint64(b[:], bt)
			out = append(out, b[:]...)
		}
		ndOff := len(out)
		out = append(out, 0, 0, 0, 0)
		n := 0
		for _, seq := range ring.dedupFIFO {
			e := ring.dedup[seq]
			if e == nil || !e.done {
				continue
			}
			n++
			binary.LittleEndian.PutUint64(b[:], e.seq)
			out = append(out, b[:]...)
			binary.LittleEndian.PutUint32(b[:4], uint32(len(e.reply)))
			out = append(out, b[:4]...)
			out = append(out, e.reply...)
		}
		binary.LittleEndian.PutUint32(out[ndOff:], uint32(n))
	}
	binary.LittleEndian.PutUint32(out[4:], uint32(nrings))
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(app)))
	out = append(out, b[:]...)
	out = append(out, app...)
	return out
}

// adoptMigState installs a shipped serving state on this node (the
// migration target): per-client dedup windows merge into existing
// rings or park in the adopted set until the client binds, and the
// application payload runs through the registered OnAdopt hook, which
// must leave fn fully serving.
func (i *Instance) adoptMigState(p *simtime.Proc, src int, data []byte) error {
	if len(data) < 8 {
		return ErrRemoteFailed
	}
	fn := int(binary.LittleEndian.Uint32(data[0:]))
	nrings := int(binary.LittleEndian.Uint32(data[4:]))
	off := 8
	type adoptedRing struct {
		client  int
		w       *adoptedWindow
		entries []*dedupEntry
	}
	rings := make([]adoptedRing, 0, nrings)
	for r := 0; r < nrings; r++ {
		if len(data) < off+6 {
			return ErrRemoteFailed
		}
		client := int(binary.LittleEndian.Uint32(data[off:]))
		nboots := int(binary.LittleEndian.Uint16(data[off+4:]))
		off += 6
		w := &adoptedWindow{}
		for k := 0; k < nboots; k++ {
			if len(data) < off+8 {
				return ErrRemoteFailed
			}
			w.boots = append(w.boots, binary.LittleEndian.Uint64(data[off:]))
			off += 8
		}
		if len(data) < off+4 {
			return ErrRemoteFailed
		}
		nent := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		var entries []*dedupEntry
		for k := 0; k < nent; k++ {
			if len(data) < off+12 {
				return ErrRemoteFailed
			}
			seq := binary.LittleEndian.Uint64(data[off:])
			rl := int(binary.LittleEndian.Uint32(data[off+8:]))
			off += 12
			if len(data) < off+rl {
				return ErrRemoteFailed
			}
			reply := append([]byte(nil), data[off:off+rl]...)
			off += rl
			entries = append(entries, &dedupEntry{seq: seq, done: true, reply: reply})
		}
		rings = append(rings, adoptedRing{client: client, w: w, entries: entries})
	}
	if len(data) < off+4 {
		return ErrRemoteFailed
	}
	appLen := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if len(data) < off+appLen {
		return ErrRemoteFailed
	}
	app := data[off : off+appLen]

	// Installing the windows models a host-memory copy of the shipped
	// state.
	i.memcpyCost(p, int64(len(data)))
	for _, ar := range rings {
		key := bindKey{ar.client, fn}
		if ring, ok := i.srvRings[key]; ok {
			// The client is already bound here (this node was already
			// serving fn for other shards): merge the lineage and the
			// completed entries directly into the live window.
			ring.adoptedBoots = append(ring.adoptedBoots, ar.w.boots...)
			for _, e := range ar.entries {
				ring.dedupInsert(e)
			}
			continue
		}
		w := i.adopted[key]
		if w == nil {
			// First parked window for this (client, fn). A second
			// transfer for the same pair (concurrent drains of two
			// shards sharing fn) merges below instead of overwriting —
			// the overwrite dropped the first shard's dedup entries, so
			// an ambiguous retry against it could re-execute.
			w = ar.w
			i.adopted[key] = w
		} else {
			w.boots = append(w.boots, ar.w.boots...)
		}
		for _, e := range ar.entries {
			if w.dedup == nil {
				w.dedup = make(map[uint64]*dedupEntry)
			}
			if _, dup := w.dedup[e.seq]; dup {
				continue
			}
			w.dedup[e.seq] = e
			w.dedupFIFO = append(w.dedupFIFO, e.seq)
		}
	}
	// Source-scoped hooks win over the per-function hook and are
	// consumed: each concurrent drain onto this target runs exactly the
	// hook its DrainShard registered for it.
	if h, ok := i.onAdoptFrom[migKey{src, fn}]; ok {
		delete(i.onAdoptFrom, migKey{src, fn})
		if err := h(p, src, app); err != nil {
			return err
		}
	} else if h, ok := i.onAdopt[fn]; ok {
		if err := h(p, src, app); err != nil {
			return err
		}
	} else if len(app) > 0 {
		return fmt.Errorf("lite: migration of fn %d shipped application state but node %d has no OnAdopt hook", fn, i.node.ID)
	}
	i.obsReg().Add("lite.migrate.adopted", 1)
	return nil
}

// ---- control-plane wire helpers ----

func (i *Instance) ctlMigPrepare(p *simtime.Proc, fn, target int) error {
	req := make([]byte, 9)
	req[0] = copMigPrepare
	binary.LittleEndian.PutUint32(req[1:], uint32(fn))
	binary.LittleEndian.PutUint32(req[5:], uint32(target))
	_, err := i.ctl(p, i.opts.ManagerNode, req, 0, PriHigh)
	return err
}

func (i *Instance) ctlMigState(p *simtime.Proc, target int, state []byte) error {
	req := append([]byte{copMigState}, state...)
	_, err := i.ctl(p, target, req, 0, PriHigh)
	return err
}

func (i *Instance) ctlMigCommit(p *simtime.Proc, fn, target int) error {
	req := make([]byte, 9)
	req[0] = copMigCommit
	binary.LittleEndian.PutUint32(req[1:], uint32(fn))
	binary.LittleEndian.PutUint32(req[5:], uint32(target))
	_, err := i.ctl(p, i.opts.ManagerNode, req, 0, PriHigh)
	return err
}

func (i *Instance) ctlMigAbort(p *simtime.Proc, fn int) error {
	req := make([]byte, 5)
	req[0] = copMigAbort
	binary.LittleEndian.PutUint32(req[1:], uint32(fn))
	_, err := i.ctl(p, i.opts.ManagerNode, req, 0, PriHigh)
	return err
}
