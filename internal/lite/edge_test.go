package lite

import (
	"testing"

	"lite/internal/cluster"
	"lite/internal/hostmem"
	"lite/internal/params"
	"lite/internal/simtime"
)

func TestMallocOutOfMemory(t *testing.T) {
	// A node with little memory: local and remote allocation failures
	// surface as errors, not corruption.
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, 2, 256<<20)
	dep, err := Start(cls, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cls.GoOn(0, "alloc", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		if _, err := c.Malloc(p, 1<<30, "", PermRead); err != hostmem.ErrOutOfMemory {
			t.Fatalf("local OOM err = %v", err)
		}
		if _, err := c.MallocAt(p, []int{1}, 1<<30, "", PermRead); err != hostmem.ErrOutOfMemory {
			t.Fatalf("remote OOM err = %v", err)
		}
		// A sane allocation still works afterwards.
		if _, err := c.Malloc(p, 1<<20, "", PermRead); err != nil {
			t.Fatalf("post-OOM alloc: %v", err)
		}
	})
	run(t, cls)
}

func TestMessagingTryRecvAndUserClient(t *testing.T) {
	cls, dep := testDep(t, 2)
	cls.GoOn(0, "sender", func(p *simtime.Proc) {
		c := dep.Instance(0).UserClient()
		if err := c.Send(p, 1, []byte("m1")); err != nil {
			t.Fatal(err)
		}
	})
	cls.GoOn(1, "receiver", func(p *simtime.Proc) {
		c := dep.Instance(1).UserClient()
		// TryRecv before arrival: empty.
		if _, ok := c.TryRecv(p); ok {
			t.Fatal("TryRecv returned a message before any was sent")
		}
		m, err := c.Recv(p)
		if err != nil || string(m.Data) != "m1" || m.Src != 0 {
			t.Fatalf("recv = %+v, %v", m, err)
		}
		if _, ok := c.TryRecv(p); ok {
			t.Fatal("TryRecv returned a duplicate")
		}
	})
	run(t, cls)
}

func TestSelfSendAndSelfRPC(t *testing.T) {
	cls, dep := testDep(t, 1)
	inst := dep.Instance(0)
	_ = inst.RegisterRPC(echoFn)
	cls.GoDaemonOn(0, "echo", func(p *simtime.Proc) {
		c := inst.KernelClient()
		call, err := c.RecvRPC(p, echoFn)
		for err == nil {
			call, err = c.ReplyRecvRPC(p, call, call.Input, echoFn)
		}
	})
	cls.GoOn(0, "self", func(p *simtime.Proc) {
		c := inst.KernelClient()
		if err := c.Send(p, 0, []byte("loop")); err != nil {
			t.Fatal(err)
		}
		m, err := c.Recv(p)
		if err != nil || string(m.Data) != "loop" {
			t.Fatalf("self message = %+v, %v", m, err)
		}
		out, err := c.RPC(p, 0, echoFn, []byte("self-rpc"), 32)
		if err != nil || string(out) != "self-rpc" {
			t.Fatalf("self RPC = %q, %v", out, err)
		}
	})
	run(t, cls)
}

func TestQoSRangesAndThrottleUnits(t *testing.T) {
	var sig qosSignals
	var q qosState
	q.init(nil, 4, &sig)
	// No QoS: full range, no throttle.
	if lo, hi := q.qpRange(PriLow, 4); lo != 0 || hi != 4 {
		t.Fatalf("none range = [%d,%d)", lo, hi)
	}
	q.mode = QoSHWSep
	if lo, hi := q.qpRange(PriHigh, 4); lo != 0 || hi != 3 {
		t.Fatalf("high range = [%d,%d)", lo, hi)
	}
	if lo, hi := q.qpRange(PriLow, 4); lo != 3 || hi != 4 {
		t.Fatalf("low range = [%d,%d)", lo, hi)
	}
	// A single QP cannot be partitioned.
	if lo, hi := q.qpRange(PriLow, 1); lo != 0 || hi != 1 {
		t.Fatalf("k=1 range = [%d,%d)", lo, hi)
	}
}

func TestSWPriThrottleOnlyWhenHighActive(t *testing.T) {
	cls, dep := testDep(t, 2)
	dep.SetQoSMode(QoSSWPri)
	cls.GoOn(0, "low", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient().SetPriority(PriLow)
		h, err := c.MallocAt(p, []int{1}, 1<<20, "", PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64<<10)
		// No high-priority traffic anywhere: low runs at full speed.
		start := p.Now()
		for i := 0; i < 10; i++ {
			if err := c.Write(p, h, 0, buf); err != nil {
				t.Fatal(err)
			}
		}
		free := p.Now() - start
		// Now mark the high class active and observe throttling.
		hc := dep.Instance(0).KernelClient().SetPriority(PriHigh)
		if err := hc.Write(p, h, 0, buf[:4096]); err != nil {
			t.Fatal(err)
		}
		start = p.Now()
		for i := 0; i < 10; i++ {
			if err := c.Write(p, h, 0, buf); err != nil {
				t.Fatal(err)
			}
		}
		throttled := p.Now() - start
		if throttled < 2*free {
			t.Fatalf("low-priority not throttled: free %v vs active %v", free, throttled)
		}
	})
	run(t, cls)
}
