package lite

import (
	"encoding/binary"
	"sort"

	"lite/internal/detrand"
	"lite/internal/simtime"
)

// Failure detection (§3.3 extended): the cluster manager probes every
// node with periodic keepalive RPCs. After HeartbeatMiss consecutive
// missed beats it declares the node dead, bumps a monotonically
// increasing membership epoch, and broadcasts the new view to every
// live instance. Instances use the view to fail outstanding RPCs to
// dead nodes immediately (instead of waiting out the transport
// timeout), to refuse new sends toward them, and to release
// quarantined reply buffers from before the epoch advance.
//
// The detector is conservative in both directions: a node that answers
// a later probe (a false suspicion during a link flap, or a silent
// restart) is revived with another epoch bump, and a probe reply
// carrying a stale epoch triggers an anti-entropy re-broadcast so a
// node that missed a membership message converges on the next beat.

// membState is the manager's authoritative membership bookkeeping.
// moves is the committed live-migration table ({src, fn} -> new home);
// handoff holds prepared-but-uncommitted migrations (routing-inert;
// they only gate commits, see migrate.go). Both are part of the view
// modeled as surviving manager restarts on the HA pair.
type membState struct {
	epoch   uint64
	dead    map[int]bool
	miss    map[int]int
	moves   map[migKey]int
	handoff map[migKey]int
	// broadcasting/dirty coalesce concurrent view changes into one
	// broadcast stream: while a broadcast is in flight, further epoch
	// bumps mark the view dirty instead of starting their own
	// 475-message fan-out, and the in-flight broadcaster re-ships the
	// final view once. Without this a leaf failure (25 near-simultaneous
	// declarations) cost O(deaths x nodes) correlated control messages —
	// and the overlapping fan-outs could pair a freshly bumped epoch
	// with a stale dead list, which receivers then pinned as current.
	broadcasting bool
	dirty        bool
}

func (m *membState) init() {
	m.dead = make(map[int]bool)
	m.miss = make(map[int]int)
	m.moves = make(map[migKey]int)
	m.handoff = make(map[migKey]int)
}

// purgeHandoffs drops prepared-but-uncommitted migrations touching the
// given node (as source or target): the migration can no longer
// commit, so the record must not gate a future one.
func (m *membState) purgeHandoffs(node int) {
	// Deleting while ranging is safe, and dropping entries is
	// order-independent.
	for k, t := range m.handoff {
		if k.src == node || t == node {
			delete(m.handoff, k)
		}
	}
}

// movesList returns the committed moves as a deterministically ordered
// slice for broadcast payloads.
func (m *membState) movesList() []moveRec {
	out := make([]moveRec, 0, len(m.moves))
	for k, dst := range m.moves {
		out = append(out, moveRec{src: k.src, fn: k.fn, dst: dst})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].src != out[b].src {
			return out[a].src < out[b].src
		}
		return out[a].fn < out[b].fn
	})
	return out
}

// deadList returns the dead set as a sorted slice (broadcast payloads
// and map iterations must be deterministic).
func (m *membState) deadList() []int {
	var out []int
	for n := range m.dead {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// NodeDead reports whether this instance's membership view has
// declared the node dead.
func (i *Instance) NodeDead(node int) bool { return i.deadView[node] }

// MembershipEpoch returns the membership epoch this instance has seen.
func (i *Instance) MembershipEpoch() uint64 { return i.epoch }

// ManagerEpoch returns the manager's authoritative epoch.
func (d *Deployment) ManagerEpoch() uint64 { return d.memb.epoch }

// proberLoop runs on the manager node, one daemon per probed peer.
//
// With ProbeStagger set, each prober's phase is offset by a
// deterministic hash of its target before the first beat. All probers
// otherwise share the boot instant as their phase, so every beat is a
// synchronized n-1 probe burst and a leaf failure makes all of the
// leaf's probers time out, declare, and broadcast in the same instant —
// the correlated O(n^2) storm the churn experiment measures. The offset
// is a pure function of the target id, so the spread replays bit for
// bit.
func (i *Instance) proberLoop(p *simtime.Proc, target int) {
	if i.opts.ProbeStagger && i.opts.HeartbeatInterval > 0 {
		p.Sleep(simtime.Time(detrand.Mix64(uint64(target)) % uint64(i.opts.HeartbeatInterval)))
	}
	for {
		p.Sleep(i.opts.HeartbeatInterval)
		if i.stopped {
			continue // manager down: detector paused until restart
		}
		m := &i.dep.memb
		peerEpoch, err := i.ctlPing(p, target)
		if err != nil {
			if m.dead[target] {
				continue
			}
			m.miss[target]++
			i.obsReg().Add("lite.heartbeat.misses", 1)
			if m.miss[target] >= i.opts.HeartbeatMiss {
				i.declareDead(p, target)
			}
			continue
		}
		m.miss[target] = 0
		if m.dead[target] {
			// False suspicion (or a restart whose join we missed):
			// bring the node back with a fresh epoch.
			i.reviveNode(p, target)
			continue
		}
		if peerEpoch < m.epoch {
			// Anti-entropy: the peer missed a membership broadcast.
			i.sendMembership(p, target)
		}
	}
}

// declareDead marks the target dead, bumps the epoch, and broadcasts.
// Declaring an already-dead node is a no-op: concurrent declarations of
// the same node must collapse to one epoch bump and one broadcast, not
// one per declarer.
func (i *Instance) declareDead(p *simtime.Proc, target int) {
	m := &i.dep.memb
	if m.dead[target] {
		return
	}
	m.dead[target] = true
	m.purgeHandoffs(target)
	m.epoch++
	i.obsReg().Add("lite.membership.epochs", 1)
	i.obsReg().Add("lite.membership.deaths", 1)
	i.broadcastMembership(p)
}

// reviveNode clears the target's dead mark with a new epoch.
func (i *Instance) reviveNode(p *simtime.Proc, target int) {
	m := &i.dep.memb
	delete(m.dead, target)
	m.miss[target] = 0
	m.epoch++
	i.obsReg().Add("lite.membership.epochs", 1)
	i.obsReg().Add("lite.membership.revivals", 1)
	i.broadcastMembership(p)
}

// broadcastMembership ships the manager's current view to every live
// instance (applied locally for the manager itself). Sends are bounded
// by the heartbeat timeout; a node that misses the message converges
// through anti-entropy on the next probe.
//
// Overlapping broadcasts coalesce: if one fan-out is already in
// flight, the caller marks the view dirty and returns; the in-flight
// broadcaster re-ships the final view once before it finishes. Each
// lap snapshots (epoch, dead, moves) together, so a peer never
// receives a fresh epoch paired with a stale view — the interleaving
// that previously made receivers pin an outdated dead list as current
// and drop the corrected broadcast as a replay.
func (i *Instance) broadcastMembership(p *simtime.Proc) {
	m := &i.dep.memb
	if m.broadcasting {
		// Apply locally right away (the manager's own view must fail
		// pending RPCs to the newly dead promptly); only the remote
		// fan-out is deferred to the in-flight broadcaster.
		i.applyMembership(m.epoch, m.deadList(), m.movesList())
		m.dirty = true
		return
	}
	m.broadcasting = true
	defer func() { m.broadcasting = false }()
	for {
		m.dirty = false
		epoch := m.epoch
		dead := m.deadList()
		moves := m.movesList()
		i.applyMembership(epoch, dead, moves)
		for _, peer := range i.dep.Instances {
			pid := peer.node.ID
			if pid == i.node.ID || m.dead[pid] {
				continue
			}
			_ = i.ctlMembership(p, pid, epoch, dead, moves)
		}
		i.obsReg().Add("lite.membership.broadcasts", 1)
		if !m.dirty {
			return
		}
	}
}

// sendMembership ships the current view to one node.
func (i *Instance) sendMembership(p *simtime.Proc, target int) {
	m := &i.dep.memb
	_ = i.ctlMembership(p, target, m.epoch, m.deadList(), m.movesList())
}

// applyMembership installs a membership view on this instance. Stale
// epochs are ignored. Outstanding RPCs to now-dead nodes fail with
// ErrNodeDead, ring-space waiters toward them are woken so they can
// abort, and quarantined reply buffers from before the new epoch are
// released (any straggler reply from that era was sent by a peer now
// declared dead or restarted, so it can no longer arrive).
func (i *Instance) applyMembership(epoch uint64, dead []int, moves []moveRec) {
	if epoch <= i.epoch || i.stopped {
		return
	}
	i.epoch = epoch
	oldDead := i.deadView
	i.deadView = make(map[int]bool, len(dead))
	for _, n := range dead {
		i.deadView[n] = true
	}
	// Connection-pool reconciliation: revoke spares toward the newly
	// dead, re-arm the replenisher (jittered) for the newly revived.
	i.reconcileLeases(oldDead, epoch)
	// Install the committed-moves view. Entries sourced at this node
	// are preserved even if the broadcast predates their commit: the
	// node itself completed the handoff, and forgetting that would let
	// it execute calls on state it no longer owns.
	moved := make(map[migKey]int, len(moves))
	for _, mv := range moves {
		moved[migKey{mv.src, mv.fn}] = mv.dst
	}
	for k, v := range i.moved {
		if k.src == i.node.ID {
			moved[k] = v
		}
	}
	i.moved = moved
	env := i.cls.Env
	for _, token := range i.sortedPendingTokens() {
		pc := i.pending[token]
		if pc.done || pc.abandoned || pc.probe || !i.deadView[pc.dst] {
			continue
		}
		pc.err = ErrNodeDead
		pc.done = true
		pc.cond.Broadcast(env)
	}
	for _, token := range i.scratch.releaseBefore(epoch) {
		delete(i.pending, token)
	}
	for _, key := range i.sortedBindKeys() {
		if i.deadView[key.node] {
			i.bindings[key].space.Broadcast(env)
		}
	}
}

// sortedPendingTokens returns the pending-call tokens in a stable
// order; broadcasting wakeups in map-iteration order would make the
// simulation timeline depend on Go's map randomization.
func (i *Instance) sortedPendingTokens() []uint32 {
	toks := make([]uint32, 0, len(i.pending))
	for t := range i.pending {
		toks = append(toks, t)
	}
	sort.Slice(toks, func(a, b int) bool { return toks[a] < toks[b] })
	return toks
}

// sortedBindKeys returns the binding keys in a stable order.
func (i *Instance) sortedBindKeys() []bindKey {
	keys := make([]bindKey, 0, len(i.bindings))
	for k := range i.bindings {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].node != keys[b].node {
			return keys[a].node < keys[b].node
		}
		return keys[a].fn < keys[b].fn
	})
	return keys
}

// ---- control-plane wire helpers ----

// ctlPing sends one keepalive and returns the peer's membership epoch.
func (i *Instance) ctlPing(p *simtime.Proc, dst int) (uint64, error) {
	out, err := i.rpcInternalProbe(p, dst, funcControl, []byte{copPing}, 9, PriHigh, i.opts.HeartbeatTimeout, true)
	if err != nil {
		return 0, err
	}
	if len(out) < 9 || out[0] != cstOK {
		return 0, ErrRemoteFailed
	}
	return binary.LittleEndian.Uint64(out[1:]), nil
}

// ctlMembership pushes an (epoch, dead set, committed moves) view to
// dst.
func (i *Instance) ctlMembership(p *simtime.Proc, dst int, epoch uint64, dead []int, moves []moveRec) error {
	req := make([]byte, 13+4*len(dead)+12*len(moves))
	req[0] = copMembership
	binary.LittleEndian.PutUint64(req[1:], epoch)
	binary.LittleEndian.PutUint16(req[9:], uint16(len(dead)))
	off := 11
	for _, n := range dead {
		binary.LittleEndian.PutUint32(req[off:], uint32(n))
		off += 4
	}
	binary.LittleEndian.PutUint16(req[off:], uint16(len(moves)))
	off += 2
	for _, mv := range moves {
		binary.LittleEndian.PutUint32(req[off:], uint32(mv.src))
		binary.LittleEndian.PutUint32(req[off+4:], uint32(mv.fn))
		binary.LittleEndian.PutUint32(req[off+8:], uint32(mv.dst))
		off += 12
	}
	_, err := i.rpcInternalT(p, dst, funcControl, req, 1, PriHigh, i.opts.HeartbeatTimeout)
	return err
}

// ctlJoin announces this node to the manager after a restart.
func (i *Instance) ctlJoin(p *simtime.Proc) error {
	_, err := i.rpcInternalT(p, i.opts.ManagerNode, funcControl, []byte{copJoin}, 1, PriHigh, i.opts.RPCTimeout)
	return err
}

// handleJoin runs on the manager when a restarted node announces
// itself: revive it under a fresh epoch so every instance drops its
// dead mark and releases pre-restart quarantines.
func (i *Instance) handleJoin(p *simtime.Proc, src int) {
	m := &i.dep.memb
	m.miss[src] = 0
	delete(m.dead, src)
	// Any migration the node had in flight died with it; its prepared
	// records must not gate a fresh attempt.
	m.purgeHandoffs(src)
	m.epoch++
	i.obsReg().Add("lite.membership.epochs", 1)
	i.obsReg().Add("lite.membership.joins", 1)
	i.broadcastMembership(p)
}
