package lite

import (
	"lite/internal/hostmem"
	"lite/internal/simtime"
)

// Perm is an LMR permission set granted to a user.
type Perm uint8

// Permission bits. Master implies the right to grant permissions,
// move, and free the LMR (§4.1).
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermMaster
)

// LH is a LITE handle: the only entity LITE exposes for an LMR. It is
// local to the node (and conceptually the process) that acquired it;
// passing it to another node is meaningless (§4.1).
type LH uint64

// chunk is one physically contiguous piece of an LMR.
type chunk struct {
	node int
	pa   hostmem.PAddr
	size int64
}

// lmrState is the metadata of one LMR. The authoritative copy lives
// with the master; other nodes obtain it via LT_map and cache it with
// their lh (the paper stores all lh metadata at the requesting node).
type lmrState struct {
	id       uint64
	name     string
	size     int64
	chunks   []chunk
	masters  map[int]bool
	acl      map[int]Perm // per-node grants
	defPerm  Perm         // grant for nodes not in acl
	mappedBy map[int]bool
	freed    bool

	// tenant is the namespace the LMR belongs to: the tenant of the
	// client that created it (0 = kernel/public). A nonzero-tenant LMR
	// can only be mapped or touched by clients of the same tenant (or
	// the kernel); the boundary is checked before the per-node ACL and
	// is not grantable.
	tenant uint16
}

// lhEntry is the per-node state behind an lh.
type lhEntry struct {
	ls     *lmrState
	perm   Perm
	master bool
	// tenant stamps the handle with the namespace of the client that
	// acquired it; a handle is usable only by its acquiring tenant
	// (handles are per-acquirer, so a guessed handle number from
	// another tenant's table fails the check, not just the ACL).
	tenant uint16
}

func (d *Deployment) newLMRID() uint64 {
	d.nextLMRID++
	return d.nextLMRID
}

func (i *Instance) newLH(ls *lmrState, perm Perm, ten uint16) LH {
	h := i.nextLH
	i.nextLH++
	i.lhs[h] = &lhEntry{ls: ls, perm: perm, master: perm&PermMaster != 0, tenant: ten}
	return LH(h)
}

// lookupLH resolves a handle on behalf of tenant ten. This is the
// tenant-namespace chokepoint: every data-path operation (read, write,
// memset, memcpy, atomics) and every master operation (grant, free,
// move) funnels through it, so a tenant presenting a handle it did not
// acquire — including a guessed handle number from another tenant's
// table — is refused with the typed denial before any permission or
// bounds logic runs. The kernel (ten == 0) bypasses the check.
func (i *Instance) lookupLH(h LH, ten uint16) (*lhEntry, error) {
	e, ok := i.lhs[uint64(h)]
	if !ok {
		return nil, ErrBadHandle
	}
	if ten != 0 && e.tenant != ten {
		i.tenantCount(ten, tenObsDenied, false)
		return nil, &TenantDeniedError{Tenant: ten, Owner: e.tenant}
	}
	if e.ls.freed {
		return nil, ErrFreed
	}
	return e, nil
}

// allocChunksLocal allocates size bytes of LMR storage on this node in
// physically contiguous chunks, charging the page-allocator cost.
func (i *Instance) allocChunksLocal(p *simtime.Proc, size int64) ([]chunk, error) {
	var out []chunk
	remain := size
	for remain > 0 {
		n := remain
		if n > i.opts.MaxChunkBytes {
			n = i.opts.MaxChunkBytes
		}
		pa, err := i.node.Mem.AllocContiguous(n)
		if err == hostmem.ErrNoContiguous {
			// Fragmentation: fall back to smaller pieces.
			if n > i.cfg.PageSize {
				n = n / 2
				continue
			}
			return nil, err
		}
		if err != nil {
			return nil, err
		}
		p.Work(simtime.Time((n+i.cfg.PageSize-1)/i.cfg.PageSize) * i.cfg.PageAllocPerPage)
		out = append(out, chunk{node: i.node.ID, pa: pa, size: n})
		remain -= n
	}
	return out, nil
}

// mallocInternal implements LT_malloc: allocate an LMR of the given
// size spread round-robin over homeNodes, optionally register a name
// with the cluster manager, and return a master lh.
func (i *Instance) mallocInternal(p *simtime.Proc, homeNodes []int, size int64, name string, defPerm Perm, pri Priority, ten uint16) (LH, error) {
	if size <= 0 {
		return 0, hostmem.ErrBadSize
	}
	if len(homeNodes) == 0 {
		homeNodes = []int{i.node.ID}
	}
	p.Work(i.cfg.LITECheck)

	// Split into chunks round-robin over the home nodes.
	var sizes []int64
	remain := size
	for remain > 0 {
		n := remain
		if n > i.opts.MaxChunkBytes {
			n = i.opts.MaxChunkBytes
		}
		sizes = append(sizes, n)
		remain -= n
	}
	var chunks []chunk
	for idx, n := range sizes {
		home := homeNodes[idx%len(homeNodes)]
		if home == i.node.ID {
			cs, err := i.allocChunksLocal(p, n)
			if err != nil {
				return 0, err
			}
			chunks = append(chunks, cs...)
		} else {
			pa, err := i.ctlAllocChunk(p, home, n, pri)
			if err != nil {
				return 0, err
			}
			chunks = append(chunks, chunk{node: home, pa: pa, size: n})
		}
	}
	ls := &lmrState{
		id:       i.dep.newLMRID(),
		name:     name,
		size:     size,
		chunks:   chunks,
		masters:  map[int]bool{i.node.ID: true},
		acl:      make(map[int]Perm),
		defPerm:  defPerm,
		mappedBy: map[int]bool{i.node.ID: true},
		tenant:   ten,
	}
	i.localLMR[ls.id] = ls
	if name != "" {
		if err := i.registerName(p, ls, pri); err != nil {
			return 0, err
		}
	}
	return i.newLH(ls, PermRead|PermWrite|PermMaster, ten), nil
}

// registerName publishes the LMR in the manager-node directory; remote
// callers pay an RPC round trip.
func (i *Instance) registerName(p *simtime.Proc, ls *lmrState, pri Priority) error {
	if i.node.ID == i.opts.ManagerNode {
		if _, taken := i.dep.directory[ls.name]; taken {
			return ErrNameTaken
		}
		i.dep.directory[ls.name] = ls
		return nil
	}
	return i.ctlRegName(p, ls, pri)
}

// RegisterLMR registers already-allocated physically contiguous memory
// as an LMR (masters may do this per §4.1).
func (i *Instance) registerLMRInternal(p *simtime.Proc, pa hostmem.PAddr, size int64, name string, defPerm Perm, pri Priority, ten uint16) (LH, error) {
	p.Work(i.cfg.LITECheck)
	ls := &lmrState{
		id:       i.dep.newLMRID(),
		name:     name,
		size:     size,
		chunks:   []chunk{{node: i.node.ID, pa: pa, size: size}},
		masters:  map[int]bool{i.node.ID: true},
		acl:      make(map[int]Perm),
		defPerm:  defPerm,
		mappedBy: map[int]bool{i.node.ID: true},
		tenant:   ten,
	}
	i.localLMR[ls.id] = ls
	if name != "" {
		if err := i.registerName(p, ls, pri); err != nil {
			return 0, err
		}
	}
	return i.newLH(ls, PermRead|PermWrite|PermMaster, ten), nil
}

// mapInternal implements LT_map: resolve a name through the manager
// directory, obtain a grant from a master, and build a fresh local lh.
// LITE generates a new lh for every acquisition (§4.1).
func (i *Instance) mapInternal(p *simtime.Proc, name string, pri Priority, ten uint16) (LH, error) {
	p.Work(i.cfg.LITECheck)
	var ls *lmrState
	if i.node.ID == i.opts.ManagerNode {
		ls = i.dep.directory[name]
	} else {
		id, err := i.ctlLookupName(p, name, pri)
		if err != nil {
			return 0, err
		}
		ls = i.dep.lmrByID(id)
	}
	if ls == nil {
		return 0, ErrNoSuchName
	}
	// Tenant namespace boundary, checked before any grant is even
	// requested: a tenant may map its own LMRs and kernel/public ones
	// (tenant 0), never another tenant's. Unlike ErrPermission this is
	// not curable by the owner granting broader ACLs.
	if ten != 0 && ls.tenant != 0 && ls.tenant != ten {
		i.tenantCount(ten, tenObsDenied, false)
		return 0, &TenantDeniedError{Tenant: ten, Owner: ls.tenant}
	}
	// Obtain the grant from a master node.
	var perm Perm
	if ls.masters[i.node.ID] {
		perm = grantFor(ls, i.node.ID)
		ls.mappedBy[i.node.ID] = true
	} else {
		master := i.liveMaster(ls)
		g, err := i.ctlMapRequest(p, master, ls.id, pri)
		if err != nil {
			return 0, err
		}
		perm = g
	}
	if perm == 0 {
		return 0, ErrPermission
	}
	if ls.freed {
		return 0, ErrFreed
	}
	return i.newLH(ls, perm, ten), nil
}

func grantFor(ls *lmrState, node int) Perm {
	if p, ok := ls.acl[node]; ok {
		return p
	}
	return ls.defPerm
}

func anyMaster(ls *lmrState) int {
	best := -1
	for n := range ls.masters {
		if best < 0 || n < best {
			best = n
		}
	}
	return best
}

// liveMaster picks a master this instance's membership view believes
// alive (smallest id for determinism). A migrated LMR keeps its old
// home in masters until that node relinquishes the role, so after the
// old home dies the grant request must go to a surviving master. With
// no live master it falls back to anyMaster and lets the control RPC
// surface the real failure.
func (i *Instance) liveMaster(ls *lmrState) int {
	best := -1
	for n := range ls.masters {
		if i.deadView[n] {
			continue
		}
		if best < 0 || n < best {
			best = n
		}
	}
	if best < 0 {
		return anyMaster(ls)
	}
	return best
}

// unmapInternal implements LT_unmap: drop the lh and its metadata and
// inform the master.
func (i *Instance) unmapInternal(p *simtime.Proc, h LH, pri Priority, ten uint16) error {
	e, ok := i.lhs[uint64(h)]
	if !ok {
		return ErrBadHandle
	}
	if ten != 0 && e.tenant != ten {
		i.tenantCount(ten, tenObsDenied, false)
		return &TenantDeniedError{Tenant: ten, Owner: e.tenant}
	}
	p.Work(i.cfg.LITECheck)
	delete(i.lhs, uint64(h))
	if !e.ls.masters[i.node.ID] && !e.ls.freed {
		_ = i.ctlUnmapNotify(p, i.liveMaster(e.ls), e.ls.id, pri)
	}
	return nil
}

// grantInternal lets a master set another node's permission (including
// granting the master role; §4.1).
func (i *Instance) grantInternal(p *simtime.Proc, h LH, node int, perm Perm, ten uint16) error {
	e, err := i.lookupLH(h, ten)
	if err != nil {
		return err
	}
	if !e.master {
		return ErrNotMaster
	}
	p.Work(i.cfg.LITECheck)
	e.ls.acl[node] = perm
	if perm&PermMaster != 0 {
		e.ls.masters[node] = true
	} else {
		delete(e.ls.masters, node)
	}
	return nil
}

// freeInternal implements LT_free: master-only; notifies every node
// that mapped the LMR and releases its chunks.
func (i *Instance) freeInternal(p *simtime.Proc, h LH, pri Priority, ten uint16) error {
	e, err := i.lookupLH(h, ten)
	if err != nil {
		return err
	}
	if !e.master {
		return ErrNotMaster
	}
	p.Work(i.cfg.LITECheck)
	ls := e.ls
	ls.freed = true
	delete(i.lhs, uint64(h))
	// Notify nodes that have the LMR mapped (the paper's master keeps
	// this list exactly for free/move notifications).
	for n := range ls.mappedBy {
		if n != i.node.ID {
			_ = i.ctlInvalidate(p, n, ls.id, pri)
		}
	}
	// Release the memory.
	for _, c := range ls.chunks {
		if c.node == i.node.ID {
			if err := i.node.Mem.Free(c.pa, c.size); err != nil {
				return err
			}
		} else {
			if err := i.ctlFreeChunk(p, c.node, c.pa, c.size, pri); err != nil {
				return err
			}
		}
	}
	// Drop the directory entry.
	if ls.name != "" {
		if i.node.ID == i.opts.ManagerNode {
			delete(i.dep.directory, ls.name)
		} else {
			_ = i.ctlUnregName(p, ls.name, pri)
		}
	}
	return nil
}

// moveInternal relocates an LMR's storage to another node (a master
// capability the paper lists for load management). Data is copied
// through the network and every mapping node keeps working because lh
// metadata points at the shared authoritative state.
func (i *Instance) moveInternal(p *simtime.Proc, h LH, newNode int, pri Priority, ten uint16) error {
	e, err := i.lookupLH(h, ten)
	if err != nil {
		return err
	}
	if !e.master {
		return ErrNotMaster
	}
	ls := e.ls
	var newChunks []chunk
	buf := make([]byte, 0, i.opts.MaxChunkBytes)
	for _, c := range ls.chunks {
		if c.node == newNode {
			newChunks = append(newChunks, c)
			continue
		}
		var pa hostmem.PAddr
		if newNode == i.node.ID {
			cs, err := i.allocChunksLocal(p, c.size)
			if err != nil {
				return err
			}
			if len(cs) != 1 {
				// Fragmented target: keep the pieces.
				if err := i.copyChunk(p, c, cs, buf, pri); err != nil {
					return err
				}
				newChunks = append(newChunks, cs...)
				i.freeChunk(p, c, pri)
				continue
			}
			pa = cs[0].pa
		} else {
			var err error
			pa, err = i.ctlAllocChunk(p, newNode, c.size, pri)
			if err != nil {
				return err
			}
		}
		nc := chunk{node: newNode, pa: pa, size: c.size}
		if err := i.copyChunk(p, c, []chunk{nc}, buf, pri); err != nil {
			return err
		}
		newChunks = append(newChunks, nc)
		i.freeChunk(p, c, pri)
	}
	ls.chunks = newChunks
	return nil
}

func (i *Instance) freeChunk(p *simtime.Proc, c chunk, pri Priority) {
	if c.node == i.node.ID {
		_ = i.node.Mem.Free(c.pa, c.size)
	} else {
		_ = i.ctlFreeChunk(p, c.node, c.pa, c.size, pri)
	}
}

// lmrByID resolves an LMR id in the deployment-wide table.
func (d *Deployment) lmrByID(id uint64) *lmrState {
	for _, inst := range d.Instances {
		if ls, ok := inst.localLMR[id]; ok {
			return ls
		}
	}
	return nil
}

// LMRSizeByName reports the size of the LMR registered under name, or
// zero if none. It reads the manager directory without cost — a
// stand-in for applications exchanging sizes out of band.
func (d *Deployment) LMRSizeByName(name string) int64 {
	if ls, ok := d.directory[name]; ok {
		return ls.size
	}
	return 0
}
