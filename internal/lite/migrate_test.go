package lite

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"testing"

	"lite/internal/load"
	"lite/internal/simtime"
)

const migFn = FirstUserFunc + 7

// serveMig arms echo servers for migFn on the instance, counting how
// many times each request id executes (the zero-double-execution
// ledger).
func serveMig(inst *Instance, workers int, counts map[uint64]int) {
	for w := 0; w < workers; w++ {
		inst.cls.GoDaemonOn(inst.node.ID, "mig-server", func(p *simtime.Proc) {
			c := inst.KernelClient()
			call, err := c.RecvRPC(p, migFn)
			for err == nil {
				counts[binary.LittleEndian.Uint64(call.Input)]++
				call, err = c.ReplyRecvRPC(p, call, call.Input, migFn)
			}
		})
	}
}

// TestDrainLiveMigration drives open-loop load at a server while its
// function live-migrates to a fresh node: zero calls may fail, zero
// may execute twice, and the p99 of calls scheduled during the drain
// window must stay within 3x of steady state.
func TestDrainLiveMigration(t *testing.T) {
	cls, dep := testDep(t, 4)
	cls.EnableObs()
	counts := make(map[uint64]int)

	src := dep.Instance(1)
	if err := src.RegisterRPC(migFn); err != nil {
		t.Fatal(err)
	}
	serveMig(src, 4, counts)

	tgt := dep.Instance(3)
	tgt.OnAdopt(migFn, func(p *simtime.Proc, from int, app []byte) error {
		if err := tgt.RegisterRPC(migFn); err != nil {
			return err
		}
		serveMig(tgt, 4, counts)
		return nil
	})

	var fenceAt, doneAt simtime.Time
	cls.OnEvent(func(p *simtime.Proc, name string) {
		switch name {
		case "lite.migrate.fence":
			fenceAt = p.Now()
		case "lite.migrate.done":
			doneAt = p.Now()
		}
	})

	type rec struct {
		at, lat simtime.Time
	}
	var recs []rec
	failures := 0
	total := 0
	gen := func(node int, seed uint64, n int) {
		sched := load.Poisson(seed, 0.5, n, 50*1000)
		inst := dep.Instance(node)
		total += n
		cls.GoOn(node, "mig-gen", func(p *simtime.Proc) {
			for k, at := range sched {
				if at > p.Now() {
					p.SleepUntil(at)
				}
				k, at := k, at
				cls.GoOn(node, "mig-req", func(q *simtime.Proc) {
					in := make([]byte, 8)
					id := uint64(node)<<32 | uint64(k)
					binary.LittleEndian.PutUint64(in, id)
					out, err := inst.KernelClient().RPCRetry(q, 1, migFn, in, 64)
					if err != nil || !bytes.Equal(out, in) {
						failures++
						return
					}
					recs = append(recs, rec{at: at, lat: q.Now() - at})
				})
			}
		})
	}
	gen(0, 41, 700)
	gen(2, 42, 700)

	cls.GoOn(1, "drain-driver", func(p *simtime.Proc) {
		p.SleepUntil(500 * 1000)
		if err := src.Drain(p, migFn, 3, nil); err != nil {
			t.Errorf("Drain: %v", err)
		}
	})
	run(t, cls)

	if failures != 0 {
		t.Fatalf("%d calls failed during live migration, want 0", failures)
	}
	if len(recs) != total {
		t.Fatalf("completed %d of %d calls", len(recs), total)
	}
	if len(counts) != total {
		t.Fatalf("executed %d distinct ids, want %d", len(counts), total)
	}
	for id, n := range counts {
		if n != 1 {
			t.Fatalf("id %d executed %d times, want exactly once", id, n)
		}
	}
	if fenceAt == 0 || doneAt <= fenceAt {
		t.Fatalf("migration window [%v, %v] not recorded", fenceAt, doneAt)
	}
	if got := cls.Obs.Total("lite.migrate.committed"); got != 1 {
		t.Fatalf("lite.migrate.committed = %d, want 1", got)
	}
	if cls.Obs.Total("lite.migrate.held") < 1 {
		t.Fatalf("no call was fenced during drain; the test did not exercise the hold path")
	}

	p99 := func(lats []simtime.Time) simtime.Time {
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		return lats[len(lats)*99/100]
	}
	var steady, during []simtime.Time
	for _, r := range recs {
		switch {
		case r.at < fenceAt:
			steady = append(steady, r.lat)
		case r.at <= doneAt:
			during = append(during, r.lat)
		}
	}
	if len(during) == 0 {
		t.Fatalf("no call was scheduled inside the drain window [%v, %v]", fenceAt, doneAt)
	}
	if s, d := p99(steady), p99(during); d > 3*s {
		t.Fatalf("p99 during drain = %v, steady = %v: exceeds 3x", d, s)
	}

	// Routing converged: the clients' views carry the committed move.
	if to, ok := dep.Instance(0).moved[migKey{1, migFn}]; !ok || to != 3 {
		t.Fatalf("client view moved[{1,fn}] = (%d, %v), want (3, true)", to, ok)
	}
}

// TestMovedBounceStaleClient clears a client's committed-moves view
// after a migration and calls the old home directly: the source must
// answer with the new home and the retry layer must re-route without
// consuming an attempt or failing the call.
func TestMovedBounceStaleClient(t *testing.T) {
	cls, dep := testDep(t, 4)
	cls.EnableObs()
	counts := make(map[uint64]int)
	src := dep.Instance(1)
	if err := src.RegisterRPC(migFn); err != nil {
		t.Fatal(err)
	}
	serveMig(src, 2, counts)
	tgt := dep.Instance(3)
	tgt.OnAdopt(migFn, func(p *simtime.Proc, from int, app []byte) error {
		if err := tgt.RegisterRPC(migFn); err != nil {
			return err
		}
		serveMig(tgt, 2, counts)
		return nil
	})
	cls.GoOn(1, "drain-driver", func(p *simtime.Proc) {
		p.SleepUntil(100 * 1000)
		if err := src.Drain(p, migFn, 3, nil); err != nil {
			t.Errorf("Drain: %v", err)
		}
	})
	cls.GoOn(2, "stale-client", func(p *simtime.Proc) {
		p.SleepUntil(400 * 1000)
		inst := dep.Instance(2)
		// Forget the broadcast: this models a client that missed the
		// membership message and still routes to the old home.
		delete(inst.moved, migKey{1, migFn})
		in := make([]byte, 8)
		binary.LittleEndian.PutUint64(in, 99)
		out, err := inst.KernelClient().RPCRetry(p, 1, migFn, in, 64)
		if err != nil {
			t.Errorf("stale-route call failed: %v", err)
		} else if !bytes.Equal(out, in) {
			t.Errorf("stale-route echo = %q", out)
		}
		// The bounce taught the client the new home.
		if to, ok := inst.moved[migKey{1, migFn}]; !ok || to != 3 {
			t.Errorf("learned move = (%d, %v), want (3, true)", to, ok)
		}
	})
	run(t, cls)
	if got := cls.Obs.Total("lite.retry.moved"); got < 1 {
		t.Fatalf("lite.retry.moved = %d, want >= 1", got)
	}
	if got := cls.Obs.Total("lite.rpc.moved_bounce"); got < 1 {
		t.Fatalf("lite.rpc.moved_bounce = %d, want >= 1", got)
	}
	if counts[99] != 1 {
		t.Fatalf("bounced call executed %d times, want 1", counts[99])
	}
}

// TestDrainAbortRestoresService fails the appState callback: the
// migration must abort, held calls must dispatch at the source as if
// nothing happened, and the source must keep serving.
func TestDrainAbortRestoresService(t *testing.T) {
	cls, dep := testDep(t, 3)
	cls.EnableObs()
	counts := make(map[uint64]int)
	src := dep.Instance(1)
	if err := src.RegisterRPC(migFn); err != nil {
		t.Fatal(err)
	}
	serveMig(src, 2, counts)

	failures := 0
	const n = 40
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		inst := dep.Instance(0)
		for k := 0; k < n; k++ {
			in := make([]byte, 8)
			binary.LittleEndian.PutUint64(in, uint64(k))
			out, err := inst.KernelClient().RPCRetry(p, 1, migFn, in, 64)
			if err != nil || !bytes.Equal(out, in) {
				failures++
			}
			p.Sleep(10 * 1000)
		}
	})
	var drainErr error
	cls.GoOn(1, "drain-driver", func(p *simtime.Proc) {
		p.SleepUntil(150 * 1000)
		drainErr = src.Drain(p, migFn, 2, func(q *simtime.Proc) ([]byte, error) {
			return nil, fmt.Errorf("shard refused to serialize")
		})
	})
	run(t, cls)

	if drainErr == nil {
		t.Fatal("Drain succeeded despite failing appState")
	}
	if failures != 0 {
		t.Fatalf("%d calls failed across the aborted migration, want 0", failures)
	}
	for id, c := range counts {
		if c != 1 {
			t.Fatalf("id %d executed %d times, want 1", id, c)
		}
	}
	if len(counts) != n {
		t.Fatalf("executed %d ids, want %d", len(counts), n)
	}
	if got := cls.Obs.Total("lite.migrate.aborted"); got != 1 {
		t.Fatalf("lite.migrate.aborted = %d, want 1", got)
	}
	if got := cls.Obs.Total("lite.migrate.committed"); got != 0 {
		t.Fatalf("lite.migrate.committed = %d, want 0", got)
	}
	if src.migrating[migFn] != nil {
		t.Fatal("migration state leaked after abort")
	}
	if _, gone := src.moved[migKey{1, migFn}]; gone {
		t.Fatal("aborted migration left a moved record")
	}
}

// TestMigStateRoundTrip checks the dedup-window serialization: encode
// on one node, adopt on another, and the parked windows must carry the
// boot lineage and exactly the completed entries in FIFO order.
// In-flight entries and other functions' rings must not ship.
func TestMigStateRoundTrip(t *testing.T) {
	cls, dep := testDep(t, 3)
	cls.GoOn(0, "roundtrip", func(p *simtime.Proc) {
		a, b, c := dep.Instance(0), dep.Instance(1), dep.Instance(2)
		const fn = FirstUserFunc + 9

		ring := &srvRing{client: 5, fn: fn, boot: 2, adoptedBoots: []uint64{0, 1}}
		ring.dedupInsert(&dedupEntry{seq: 11, done: true, reply: []byte("r11")})
		ring.dedupInsert(&dedupEntry{seq: 12, call: &Call{}}) // in flight
		ring.dedupInsert(&dedupEntry{seq: 13, done: true})
		a.srvRings[bindKey{5, fn}] = ring
		ring2 := &srvRing{client: 6, fn: fn, boot: 0}
		ring2.dedupInsert(&dedupEntry{seq: 3, done: true, reply: []byte("x")})
		a.srvRings[bindKey{6, fn}] = ring2
		a.srvRings[bindKey{5, fn + 1}] = &srvRing{client: 5, fn: fn + 1, boot: 9}

		blob := a.encodeMigState(fn, []byte("app-payload"))
		if again := a.encodeMigState(fn, []byte("app-payload")); !bytes.Equal(blob, again) {
			t.Fatal("encodeMigState is not deterministic")
		}

		// Application payload without a hook must be refused.
		if err := c.adoptMigState(p, 0, blob); err == nil {
			t.Fatal("adopt without OnAdopt hook accepted an application payload")
		}

		var gotSrc int
		var gotApp []byte
		b.OnAdopt(fn, func(q *simtime.Proc, src int, app []byte) error {
			gotSrc, gotApp = src, append([]byte(nil), app...)
			return nil
		})
		if err := b.adoptMigState(p, 0, blob); err != nil {
			t.Fatalf("adopt: %v", err)
		}
		if gotSrc != 0 || string(gotApp) != "app-payload" {
			t.Fatalf("hook got (%d, %q)", gotSrc, gotApp)
		}

		w := b.adopted[bindKey{5, fn}]
		if w == nil {
			t.Fatal("no parked window for client 5")
		}
		if want := []uint64{2, 0, 1}; len(w.boots) != 3 || w.boots[0] != want[0] || w.boots[1] != want[1] || w.boots[2] != want[2] {
			t.Fatalf("boots = %v, want %v", w.boots, want)
		}
		if len(w.dedupFIFO) != 2 || w.dedupFIFO[0] != 11 || w.dedupFIFO[1] != 13 {
			t.Fatalf("FIFO = %v, want [11 13] (in-flight seq 12 must not ship)", w.dedupFIFO)
		}
		if e := w.dedup[11]; e == nil || !e.done || string(e.reply) != "r11" {
			t.Fatalf("entry 11 = %+v", e)
		}
		if e := w.dedup[13]; e == nil || !e.done || len(e.reply) != 0 {
			t.Fatalf("entry 13 = %+v", e)
		}
		w2 := b.adopted[bindKey{6, fn}]
		if w2 == nil || len(w2.boots) != 1 || w2.boots[0] != 0 || len(w2.dedupFIFO) != 1 || w2.dedupFIFO[0] != 3 {
			t.Fatalf("client 6 window = %+v", w2)
		}
		if _, leak := b.adopted[bindKey{5, fn + 1}]; leak {
			t.Fatal("another function's ring shipped with the migration")
		}

		// Merge path: a target already serving this client folds the
		// shipped window into the live ring.
		live := &srvRing{client: 5, fn: fn, boot: 7}
		live.dedupInsert(&dedupEntry{seq: 20, done: true})
		c.srvRings[bindKey{5, fn}] = live
		c.OnAdopt(fn, func(q *simtime.Proc, src int, app []byte) error { return nil })
		if err := c.adoptMigState(p, 0, blob); err != nil {
			t.Fatalf("merge adopt: %v", err)
		}
		if len(live.adoptedBoots) != 3 {
			t.Fatalf("merged lineage = %v, want the 3 shipped boots", live.adoptedBoots)
		}
		if !live.bootKnown(2) || !live.bootKnown(7) || live.bootKnown(5) {
			t.Fatal("bootKnown does not cover the merged lineage")
		}
		if live.dedupLookup(11) == nil || live.dedupLookup(13) == nil || live.dedupLookup(20) == nil {
			t.Fatal("merged window lost entries")
		}
	})
	run(t, cls)
}
