package lite

import "lite/internal/simtime"

// MulticastRPC sends the same LT_RPC to every destination concurrently
// and returns once all destinations have replied, with the replies in
// destination order. This is the multicast extension the paper added
// to LITE while building LITE-DSM's invalidation protocol (§8.4): "a
// simple implementation by generating concurrent LT_RPC requests to
// the destinations and replying to the RPC client after all the
// destinations reply."
func (c *Client) MulticastRPC(p *simtime.Proc, dsts []int, fn int, input []byte, maxReply int64) ([][]byte, error) {
	c.enter(p)
	if len(dsts) == 0 {
		return nil, nil
	}
	replies := make([][]byte, len(dsts))
	errs := make([]error, len(dsts))
	var wg simtime.WaitGroup
	wg.Add(len(dsts))
	for k, dst := range dsts {
		k, dst := k, dst
		c.inst.cls.GoOn(c.inst.node.ID, "lite-mcast", func(q *simtime.Proc) {
			defer wg.Done(q.Env())
			replies[k], errs[k] = c.inst.rpcInternal(q, dst, fn, input, maxReply, c.pri)
		})
	}
	wg.Wait(p)
	for _, err := range errs {
		if err != nil {
			return replies, err
		}
	}
	return replies, nil
}
