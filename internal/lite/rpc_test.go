package lite

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"lite/internal/cluster"
	"lite/internal/params"
	"lite/internal/simtime"
)

const echoFn = FirstUserFunc

// startEchoServer registers echoFn at the node and runs nWorkers
// server threads that echo the input back.
func startEchoServer(cls *cluster.Cluster, dep *Deployment, node, nWorkers int) {
	inst := dep.Instance(node)
	_ = inst.RegisterRPC(echoFn)
	for w := 0; w < nWorkers; w++ {
		cls.GoDaemonOn(node, "echo-server", func(p *simtime.Proc) {
			c := inst.KernelClient()
			call, err := c.RecvRPC(p, echoFn)
			if err != nil {
				return
			}
			for {
				call, err = c.ReplyRecvRPC(p, call, call.Input, echoFn)
				if err != nil {
					return
				}
			}
		})
	}
}

func TestRPCEcho(t *testing.T) {
	cls, dep := testDep(t, 2)
	startEchoServer(cls, dep, 1, 2)
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		in := []byte("ping payload")
		out, err := c.RPC(p, 1, echoFn, in, 64)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, in) {
			t.Fatalf("echo = %q, want %q", out, in)
		}
	})
	run(t, cls)
}

func TestRPCLatency8BTo4KB(t *testing.T) {
	cls, dep := testDep(t, 2)
	startEchoServer(cls, dep, 1, 2)
	var lat simtime.Time
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		// The paper's §5.3 breakdown: 8B key in, 4KB page back, 6.95us.
		in := make([]byte, 8)
		reply := make([]byte, 4096)
		_ = reply
		// Warm up: the server echoes input, so to get a 4KB reply we use
		// a 4KB input (transfer sizes match the paper's total bytes).
		big := make([]byte, 4096)
		if _, err := c.RPC(p, 1, echoFn, big, 4096); err != nil {
			t.Fatal(err)
		}
		start := p.Now()
		out, err := c.RPC(p, 1, echoFn, big, 4096)
		if err != nil {
			t.Fatal(err)
		}
		lat = p.Now() - start
		if len(out) != 4096 {
			t.Fatalf("reply len = %d", len(out))
		}
		_ = in
	})
	run(t, cls)
	if lat < 3*time.Microsecond || lat > 15*time.Microsecond {
		t.Fatalf("4KB RPC latency = %v, want mid-single-digit microseconds", lat)
	}
}

func TestRPCManyClients(t *testing.T) {
	cls, dep := testDep(t, 4)
	startEchoServer(cls, dep, 0, 4)
	for n := 1; n < 4; n++ {
		n := n
		cls.GoOn(n, "client", func(p *simtime.Proc) {
			c := dep.Instance(n).KernelClient()
			for k := 0; k < 50; k++ {
				in := []byte(fmt.Sprintf("n%d-call%d", n, k))
				out, err := c.RPC(p, 0, echoFn, in, 64)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(out, in) {
					t.Fatalf("echo mismatch: %q vs %q", out, in)
				}
			}
		})
	}
	run(t, cls)
}

func TestRPCRingWrapAndFlowControl(t *testing.T) {
	// A tiny ring forces wraparound and head-update flow control.
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, 2, 1<<30)
	opts := DefaultOptions()
	opts.RingBytes = 4096
	dep, err := Start(cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	startEchoServer(cls, dep, 1, 1)
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		payload := make([]byte, 1000) // ~4 messages fill the ring
		for k := 0; k < 100; k++ {
			payload[0] = byte(k)
			out, err := c.RPC(p, 1, echoFn, payload, 1024)
			if err != nil {
				t.Fatalf("call %d: %v", k, err)
			}
			if out[0] != byte(k) {
				t.Fatalf("call %d echoed %d", k, out[0])
			}
		}
	})
	run(t, cls)
}

func TestRPCTimeoutOnPartition(t *testing.T) {
	cls, dep := testDep(t, 2)
	startEchoServer(cls, dep, 1, 1)
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		// Warm up the binding first.
		if _, err := c.RPC(p, 1, echoFn, []byte("x"), 16); err != nil {
			t.Fatal(err)
		}
		cls.Fab.SetLinkDown(0, 1)
		start := p.Now()
		_, err := c.RPC(p, 1, echoFn, []byte("x"), 16)
		if err != ErrTimeout {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
		if el := p.Now() - start; el < dep.opts.RPCTimeout {
			t.Fatalf("timed out after %v, want >= %v", el, dep.opts.RPCTimeout)
		}
		cls.Fab.SetLinkUp(0, 1)
	})
	run(t, cls)
}

func TestRPCUnknownFunction(t *testing.T) {
	cls, dep := testDep(t, 2)
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		if _, err := c.RPC(p, 1, 77, []byte("x"), 16); err != ErrTimeout {
			t.Fatalf("err = %v, want ErrTimeout (server never answers)", err)
		}
	})
	run(t, cls)
}

func TestRegisterRPCValidation(t *testing.T) {
	_, dep := testDep(t, 1)
	inst := dep.Instance(0)
	if err := inst.RegisterRPC(3); err == nil {
		t.Fatal("reserved id accepted")
	}
	if err := inst.RegisterRPC(echoFn); err != nil {
		t.Fatal(err)
	}
	if err := inst.RegisterRPC(echoFn); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

func TestUserLevelRPCSlightlySlowerThanKernel(t *testing.T) {
	measure := func(kernel bool) simtime.Time {
		cls, dep := testDep(t, 2)
		startEchoServer(cls, dep, 1, 1)
		var lat simtime.Time
		cls.GoOn(0, "client", func(p *simtime.Proc) {
			var c *Client
			if kernel {
				c = dep.Instance(0).KernelClient()
			} else {
				c = dep.Instance(0).UserClient()
			}
			in := make([]byte, 64)
			const iters = 50
			if _, err := c.RPC(p, 1, echoFn, in, 128); err != nil {
				t.Fatal(err)
			}
			start := p.Now()
			for k := 0; k < iters; k++ {
				if _, err := c.RPC(p, 1, echoFn, in, 128); err != nil {
					t.Fatal(err)
				}
			}
			lat = (p.Now() - start) / iters
		})
		run(t, cls)
		return lat
	}
	k := measure(true)
	u := measure(false)
	if u <= k {
		t.Fatalf("user-level RPC (%v) should be slightly slower than kernel-level (%v)", u, k)
	}
	if u-k > time.Microsecond {
		t.Fatalf("user/kernel gap = %v, want well under 1us (paper: ~0.17us of crossings)", u-k)
	}
}

func TestMessaging(t *testing.T) {
	cls, dep := testDep(t, 2)
	cls.GoOn(0, "sender", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		for k := 0; k < 10; k++ {
			if err := c.Send(p, 1, []byte{byte(k)}); err != nil {
				t.Fatal(err)
			}
		}
	})
	cls.GoOn(1, "receiver", func(p *simtime.Proc) {
		c := dep.Instance(1).KernelClient()
		for k := 0; k < 10; k++ {
			m, err := c.Recv(p)
			if err != nil {
				t.Fatal(err)
			}
			if m.Src != 0 || m.Data[0] != byte(k) {
				t.Fatalf("msg %d = %+v (ordering must hold)", k, m)
			}
		}
	})
	run(t, cls)
}

func TestLockMutualExclusion(t *testing.T) {
	cls, dep := testDep(t, 3)
	var lk Lock
	haveLock := false
	var cond simtime.Cond
	cls.GoOn(0, "alloc", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		var err error
		lk, err = c.AllocLock(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		haveLock = true
		cond.Broadcast(p.Env())
	})
	inside, maxInside, total := 0, 0, 0
	for n := 0; n < 3; n++ {
		n := n
		cls.GoOn(n, "locker", func(p *simtime.Proc) {
			for !haveLock {
				cond.Wait(p)
			}
			c := dep.Instance(n).KernelClient()
			for k := 0; k < 10; k++ {
				if err := c.LockAcquire(p, lk); err != nil {
					t.Fatal(err)
				}
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				p.Sleep(2 * time.Microsecond) // critical section
				inside--
				total++
				if err := c.LockRelease(p, lk); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
	run(t, cls)
	if maxInside != 1 {
		t.Fatalf("maxInside = %d, want 1", maxInside)
	}
	if total != 30 {
		t.Fatalf("total = %d, want 30", total)
	}
}

func TestUncontendedLockLatency(t *testing.T) {
	cls, dep := testDep(t, 2)
	var lat simtime.Time
	cls.GoOn(1, "locker", func(p *simtime.Proc) {
		c := dep.Instance(1).KernelClient()
		lk, err := c.AllocLock(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Warm.
		_ = c.LockAcquire(p, lk)
		_ = c.LockRelease(p, lk)
		start := p.Now()
		_ = c.LockAcquire(p, lk)
		lat = p.Now() - start
		_ = c.LockRelease(p, lk)
	})
	run(t, cls)
	// Paper: ~2.2us for an available lock (one fetch-add RTT).
	if lat < time.Microsecond || lat > 4*time.Microsecond {
		t.Fatalf("uncontended lock acquire = %v, want ~2.2us", lat)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	cls, dep := testDep(t, 4)
	var release [4]simtime.Time
	for n := 0; n < 4; n++ {
		n := n
		cls.GoOn(n, "member", func(p *simtime.Proc) {
			c := dep.Instance(n).KernelClient()
			p.Sleep(simtime.Time(n) * 10 * time.Microsecond) // stagger arrivals
			if err := c.Barrier(p, 42, 4); err != nil {
				t.Fatal(err)
			}
			release[n] = p.Now()
		})
	}
	run(t, cls)
	// No one may be released before the last arrival at t=30us.
	for n, r := range release {
		if r < 30*time.Microsecond {
			t.Fatalf("node %d released at %v, before the last arrival", n, r)
		}
	}
}

func TestBarrierReusableAcrossGenerations(t *testing.T) {
	cls, dep := testDep(t, 2)
	for n := 0; n < 2; n++ {
		n := n
		cls.GoOn(n, "member", func(p *simtime.Proc) {
			c := dep.Instance(n).KernelClient()
			for g := 0; g < 5; g++ {
				if err := c.Barrier(p, 7, 2); err != nil {
					t.Fatalf("generation %d: %v", g, err)
				}
			}
		})
	}
	run(t, cls)
}

func TestSWPriThrottlesLowPriority(t *testing.T) {
	cls, dep := testDep(t, 3)
	dep.SetQoSMode(QoSSWPri)
	var hiDone, loDone simtime.Time
	const nOps = 60
	buf := make([]byte, 16<<10)

	var hiLH, loLH LH
	cls.GoOn(0, "setup", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		var err error
		hiLH, err = c.MallocAt(p, []int{2}, 1<<20, "", PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		loLH, err = c.MallocAt(p, []int{2}, 1<<20, "", PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		cls.GoOn(0, "high", func(p *simtime.Proc) {
			c := dep.Instance(0).KernelClient().SetPriority(PriHigh)
			for k := 0; k < nOps; k++ {
				if err := c.Write(p, hiLH, 0, buf); err != nil {
					t.Fatal(err)
				}
			}
			hiDone = p.Now()
		})
		cls.GoOn(0, "low", func(p *simtime.Proc) {
			c := dep.Instance(0).KernelClient().SetPriority(PriLow)
			for k := 0; k < nOps; k++ {
				if err := c.Write(p, loLH, 0, buf); err != nil {
					t.Fatal(err)
				}
			}
			loDone = p.Now()
		})
	})
	run(t, cls)
	if loDone < hiDone {
		t.Fatalf("low-priority finished (%v) before high-priority (%v) under SW-Pri", loDone, hiDone)
	}
	if loDone < hiDone*3/2 {
		t.Fatalf("low-priority (%v) not clearly throttled vs high (%v)", loDone, hiDone)
	}
}

func TestHWSepPartitionsQPs(t *testing.T) {
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, 2, 1<<30)
	opts := DefaultOptions()
	opts.QPsPerPair = 4
	dep, err := Start(cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	dep.SetQoSMode(QoSHWSep)
	inst := dep.Instance(0)
	lo, hi := inst.qos.qpRange(PriHigh, 4)
	if lo != 0 || hi != 3 {
		t.Fatalf("high range = [%d,%d), want [0,3)", lo, hi)
	}
	lo, hi = inst.qos.qpRange(PriLow, 4)
	if lo != 3 || hi != 4 {
		t.Fatalf("low range = [%d,%d), want [3,4)", lo, hi)
	}
	// Sanity: ops still work in both classes.
	cls.GoOn(0, "ops", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		h, err := c.MallocAt(p, []int{1}, 4096, "", PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SetPriority(PriLow).Write(p, h, 0, []byte("low")); err != nil {
			t.Fatal(err)
		}
		if err := c.SetPriority(PriHigh).Write(p, h, 0, []byte("high")); err != nil {
			t.Fatal(err)
		}
	})
	run(t, cls)
}

func TestQPSharingBudget(t *testing.T) {
	// K x N QPs per node regardless of thread or app count (§6.1).
	cls, dep := testDep(t, 4)
	opts := dep.opts
	want := opts.QPsPerPair * 3
	for n := 0; n < 4; n++ {
		if got := dep.Instance(n).QPCount(); got != want {
			t.Fatalf("node %d QPs = %d, want %d", n, got, want)
		}
	}
	_ = cls
}
