package lite

import (
	"fmt"

	"lite/internal/obs"
	"lite/internal/simtime"
)

// Observability plumbing. The registry pointer is read from the node
// on every event (never cached at Start) so cluster.EnableObs works
// whenever it is called; with observability off every call below is a
// nil-receiver no-op. Nothing here advances virtual time: a traced
// run and an untraced run produce identical timelines.

// obsReg returns the node's metric registry, nil when observability
// is disabled.
func (i *Instance) obsReg() *obs.Registry { return i.node.Obs }

// procSpan returns the process's active trace span, if any.
func procSpan(p *simtime.Proc) *obs.Span {
	s, _ := p.Trace().(*obs.Span)
	return s
}

// noopEnd is returned by rootSpan when tracing is off, so the
// disabled path allocates nothing.
var noopEnd = func() {}

// Per-tenant counter kinds for tenantCount.
const (
	tenObsAdmit = iota
	tenObsDenied
)

// tenantCtrNames caches the formatted per-tenant counter names so the
// hot path never re-formats them; built lazily per tenant, bounded by
// the number of tenants that actually send traffic through this node.
type tenantCtrNames struct {
	admitted string
	shed     string
	denied   string
}

// tenantCount bumps a tenant-labeled counter. Everything — including
// the lazy name formatting — is guarded behind the registry nil check,
// so the disabled path stays allocation- and format-free.
func (i *Instance) tenantCount(ten uint16, kind int, ok bool) {
	reg := i.obsReg()
	if reg == nil {
		return
	}
	n := i.tenantCtrs[ten]
	if n == nil {
		n = &tenantCtrNames{
			admitted: fmt.Sprintf("lite.tenant.%d.admitted", ten),
			shed:     fmt.Sprintf("lite.tenant.%d.shed", ten),
			denied:   fmt.Sprintf("lite.tenant.%d.denied", ten),
		}
		if i.tenantCtrs == nil {
			i.tenantCtrs = make(map[uint16]*tenantCtrNames)
		}
		i.tenantCtrs[ten] = n
	}
	switch kind {
	case tenObsAdmit:
		if ok {
			reg.Add(n.admitted, 1)
		} else {
			reg.Add(n.shed, 1)
		}
	case tenObsDenied:
		reg.Add("lite.tenant.denied", 1)
		reg.Add(n.denied, 1)
	}
}

// rootSpan opens a span and installs it as the process's active trace
// context, so every layer the call passes through (hostos crossings,
// ring posts, NIC pipelines) hangs its spans underneath. The returned
// func closes the span and restores the previous context.
func (i *Instance) rootSpan(p *simtime.Proc, name string) func() {
	root := i.obsReg().StartSpan(p.Now(), name, procSpan(p))
	if root == nil {
		return noopEnd
	}
	prev := p.Trace()
	p.SetTrace(root)
	return func() {
		root.Done(p.Now())
		p.SetTrace(prev)
	}
}
