package lite

import (
	"lite/internal/obs"
	"lite/internal/simtime"
)

// Observability plumbing. The registry pointer is read from the node
// on every event (never cached at Start) so cluster.EnableObs works
// whenever it is called; with observability off every call below is a
// nil-receiver no-op. Nothing here advances virtual time: a traced
// run and an untraced run produce identical timelines.

// obsReg returns the node's metric registry, nil when observability
// is disabled.
func (i *Instance) obsReg() *obs.Registry { return i.node.Obs }

// procSpan returns the process's active trace span, if any.
func procSpan(p *simtime.Proc) *obs.Span {
	s, _ := p.Trace().(*obs.Span)
	return s
}

// noopEnd is returned by rootSpan when tracing is off, so the
// disabled path allocates nothing.
var noopEnd = func() {}

// rootSpan opens a span and installs it as the process's active trace
// context, so every layer the call passes through (hostos crossings,
// ring posts, NIC pipelines) hangs its spans underneath. The returned
// func closes the span and restores the previous context.
func (i *Instance) rootSpan(p *simtime.Proc, name string) func() {
	root := i.obsReg().StartSpan(p.Now(), name, procSpan(p))
	if root == nil {
		return noopEnd
	}
	prev := p.Trace()
	p.SetTrace(root)
	return func() {
		root.Done(p.Now())
		p.SetTrace(prev)
	}
}
