package lite

import (
	"encoding/binary"
	"fmt"
	"time"

	"lite/internal/hostmem"
	"lite/internal/rnic"
	"lite/internal/simtime"
)

// Reserved RPC function IDs. User functions must use FirstUserFunc and
// above.
const (
	funcControl = 0 // binding setup, naming, memory ops
	funcMsg     = 1 // LT_send messaging
	funcLock    = 2 // distributed lock protocol
	funcBarrier = 3 // distributed barrier

	// FirstUserFunc is the lowest RPC function ID available to
	// applications.
	FirstUserFunc = 16
)

// IMM value encoding: [4b tag][5b func][23b offset-or-delta/8].
// Function IDs are limited to 32 and ring offsets to 64 MB with 8-byte
// slot alignment (the fine alignment is what makes LITE's rings
// space-efficient in Figure 12).
const (
	tagRPCReq   = 1
	tagRPCRep   = 2
	tagHeadUpd  = 3
	tagRPCShed  = 4 // admission control: call shed, token in the low 28 bits
	tagRPCMaybe = 5 // dedup ambiguity: retry crossed a server restart
	tagRPCMoved = 6 // migration fence: function moved, new home in the reply buffer

	// MaxFunc is the exclusive upper bound on RPC function IDs.
	MaxFunc = 32

	ringAlign = 8
)

// MaxRingBytes is the largest RPC ring the IMM encoding can address:
// 23 bits of 8-byte units. A ring of exactly this size is fine (its
// largest frame offset is MaxRingBytes-8); anything bigger would wrap
// offsets silently and corrupt the ring.
const MaxRingBytes = int64(0x7fffff+1) * ringAlign // 64 MB

// maxImmDelta is the largest head-update credit one IMM can carry.
// Deltas include wrap padding and can approach twice the ring size, so
// oversized credits are split across multiple updates.
const maxImmDelta = int64(0x7fffff) * ringAlign

// validateRingBytes rejects ring sizes the IMM offset encoding cannot
// represent. Checked at deployment boot, at boot-time binding setup,
// and on the serving side of ring negotiation, so a corrupting
// configuration can never produce a live ring.
func validateRingBytes(n int64) error {
	if n <= 0 || n%ringAlign != 0 || n > MaxRingBytes {
		return ErrBadRingBytes
	}
	return nil
}

func encodeImm(tag, fn int, v int64) uint32 {
	return uint32(tag)<<28 | uint32(fn&0x1f)<<23 | uint32((v/ringAlign)&0x7fffff)
}

func decodeImm(imm uint32) (tag, fn int, v int64) {
	return int(imm >> 28), int(imm >> 23 & 0x1f), int64(imm&0x7fffff) * ringAlign
}

func encodeReplyImm(token uint32) uint32 { return uint32(tagRPCRep)<<28 | token&0x0fffffff }

func encodeShedImm(token uint32) uint32 { return uint32(tagRPCShed)<<28 | token&0x0fffffff }

func encodeMaybeImm(token uint32) uint32 { return uint32(tagRPCMaybe)<<28 | token&0x0fffffff }

func encodeMovedImm(token uint32) uint32 { return uint32(tagRPCMoved)<<28 | token&0x0fffffff }

// Ring message header layout (all little endian):
//
//	[0:4]   total payload length (header + input), pre-alignment
//	[4:8]   reply token
//	[8:16]  reply physical address on the caller's node
//	[16:20] input length
//	[20:28] client sequence number (0 = unsequenced, no dedup)
//	[28:36] server boot count the logical call was first posted to
//	[36:38] prior ambiguous (timed-out) attempts of this logical call
//	[38:40] reserved
//	[40:..] input bytes
//
// The sequence number identifies a logical call across retry attempts:
// a timed-out RPC may have executed server-side with only the reply
// lost, so the server keeps a small per-(client, function) window of
// recently seen sequence numbers and answers duplicates from it
// instead of running the handler twice.
//
// The boot stamp closes that window's restart gap: the window dies
// with the server's rings on a crash, so a retry that crosses a server
// restart would otherwise re-execute silently. A retry (attempt > 0)
// carrying a boot stamp older than the serving ring's is answered with
// tagRPCMaybe — the typed "may have executed" — instead of being run.
const ringHdr = 40

// bindKey identifies an RPC binding: a (peer node, function) pair.
type bindKey struct {
	node int
	fn   int
}

// binding is the client-side state of an RPC binding: a ring buffer
// LMR at the server written with write-imm. The client manages the
// tail; the server sends back head updates from a background thread
// (§5.1).
type binding struct {
	dst      int
	fn       int
	ringPA   hostmem.PAddr
	ringSize int64
	tail     int64 // monotonic bytes written (incl. wrap padding)
	head     int64 // monotonic bytes the server reported consumed
	space    simtime.Cond
	// srvBoot is the server incarnation that negotiated this ring
	// (returned by copBind; zero for boot-time bindings). First
	// attempts of retried calls are stamped with it so the server can
	// detect a retry that crossed its own restart.
	srvBoot uint64
	// dead marks a binding severed by a node crash; waiters abort.
	dead bool
}

// srvRing is the server-side state of a binding.
type srvRing struct {
	client    int
	fn        int
	pa        hostmem.PAddr
	size      int64
	headLocal int64 // monotonic bytes consumed (incl. wrap padding)
	// boot is the serving instance's incarnation when the ring (and
	// with it the dedup window below) was created — the window's
	// epoch stamp. Non-control rings never survive a restart, so a
	// frame stamped with an older boot is a retry whose history this
	// window cannot hold.
	boot uint64

	// dedup is the duplicate-suppression window for retried calls: the
	// last dedupWindow sequence numbers seen from this (client, fn),
	// with the cached reply once one completes. Duplicates of a
	// completed call replay the cached reply; duplicates of an
	// in-flight call redirect its eventual reply to the newest
	// attempt's token and buffer. The window dies with the ring on
	// crash teardown.
	dedup     map[uint64]*dedupEntry
	dedupFIFO []uint64

	// adoptedBoots lists earlier incarnations whose dedup history this
	// ring inherited through a live migration: the boot stamps of the
	// source rings whose windows were transferred in (chains of
	// migrations accumulate lineage). A retry stamped with any of these
	// boots is covered by this window, so the restart-ambiguity check
	// must not fire for it.
	adoptedBoots []uint64
}

// bootKnown reports whether the given boot stamp's dedup history is
// held by this ring: its own incarnation, or one it adopted through
// migration.
func (r *srvRing) bootKnown(boot uint64) bool {
	if boot == r.boot {
		return true
	}
	for _, b := range r.adoptedBoots {
		if b == boot {
			return true
		}
	}
	return false
}

// dedupWindow bounds the per-(client, function) duplicate-suppression
// window. A client retries one call at a time with bounded attempts,
// so a handful of entries per binding is ample; the cap only bounds
// memory against pathological clients.
const dedupWindow = 64

// dedupEntry is one remembered call in a srvRing's window.
type dedupEntry struct {
	seq   uint64
	call  *Call // in-flight call, so a duplicate can redirect its reply
	done  bool
	reply []byte // cached output once replied
}

// dedupLookup returns the window entry for seq, if present.
func (r *srvRing) dedupLookup(seq uint64) *dedupEntry {
	if r.dedup == nil {
		return nil
	}
	return r.dedup[seq]
}

// dedupInsert records a freshly admitted call, evicting the oldest
// entry past the window cap.
func (r *srvRing) dedupInsert(e *dedupEntry) {
	if r.dedup == nil {
		r.dedup = make(map[uint64]*dedupEntry)
	}
	r.dedup[e.seq] = e
	r.dedupFIFO = append(r.dedupFIFO, e.seq)
	if len(r.dedupFIFO) > dedupWindow {
		delete(r.dedup, r.dedupFIFO[0])
		r.dedupFIFO = r.dedupFIFO[1:]
	}
}

// callMeta identifies one logical retried call across its attempts:
// the client sequence number for the server's dedup window, the count
// of prior attempts that ended ambiguously (timed out — an overload
// shed is a definitive "did not execute" and does not count), and the
// server incarnation the call was first posted to. The boot stamp is
// (re)captured on every attempt until one turns ambiguous, then
// frozen: from that point a differing server incarnation means the
// window that could have remembered the call is gone.
type callMeta struct {
	seq     uint64
	attempt uint16
	boot    uint64
}

// rpcFunc is a registered RPC function. Application functions queue
// calls for LT_recvRPC; system functions carry a handler executed by
// the kernel worker pool.
type rpcFunc struct {
	id      int
	queue   []*Call
	cond    simtime.Cond
	handler func(p *simtime.Proc, c *Call)
	// executing counts remote calls dequeued by a server thread whose
	// reply has not yet posted. Drain's quiescence condition is
	// len(queue) == 0 && executing == 0.
	executing int
}

// Call is a received RPC call. The server thread must reply exactly
// once with ReplyRPC (possibly later, from another thread).
type Call struct {
	Func int
	Src  int
	// Tenant is the caller's tenant ID as carried in the ring header
	// (0 = kernel/untenanted). Handlers may use it to act on the
	// caller's behalf inside that tenant's namespace.
	Tenant  uint16
	Input   []byte
	token   uint32
	replyPA hostmem.PAddr

	// headDelta is the ring credit returned to the client when the
	// call is consumed.
	headDelta int64

	// ded points at this call's dedup-window entry (sequenced calls
	// only); the reply is cached there for duplicate replay.
	ded *dedupEntry

	// admCost is the cost the fair-admission policy charged for this
	// call, released when the reply posts; recvAt stamps when a server
	// thread dequeued it, so the reply can feed the observed service
	// time back into the policy's EWMA.
	admCost int64
	recvAt  simtime.Time

	// exec points at the function whose executing count this call holds
	// (set when a server thread dequeues a remote call, cleared when
	// the reply posts); Drain uses the count to wait out in-flight work.
	exec *rpcFunc

	// Node-local fast path.
	local      bool
	pend       *pendingCall
	localReply []byte
}

// pendingCall tracks an outstanding LT_RPC at the client.
type pendingCall struct {
	cond    simtime.Cond
	done    bool
	respPA  hostmem.PAddr
	respLen int64
	dst     int
	// err, when set by a membership change or local crash, is returned
	// to the waiter instead of a reply.
	err error
	// abandoned marks a call whose waiter timed out; the entry stays
	// pending (and its reply buffer quarantined) until the late reply
	// lands or the membership epoch advances.
	abandoned bool
	// probe marks a keepalive: it may target a declared-dead node (that
	// is the point — a successful probe revives it), so membership
	// changes must not fail it preemptively.
	probe bool
}

// Kinds of notification the background header-update thread posts.
// All three are small write-imms to the client, so they share the
// thread's per-client doorbell batching and its ordering guarantee.
const (
	updCredit = iota // ring head credit (the original head update)
	updShed          // admission control: shed notification (+ optional 8-byte Retry-After hint)
	updReply         // cached-reply replay for a deduplicated retry
	updMaybe         // dedup ambiguity: retry crossed a server restart
	updMoved         // migration: function moved, 8-byte new-home payload
)

// headUpdate is queued to the background header-update thread.
type headUpdate struct {
	kind   int
	client int
	fn     int
	delta  int64 // updCredit: bytes consumed

	// updShed / updReply / updMaybe coordinates of the attempt being
	// answered.
	token   uint32
	replyPA hostmem.PAddr
	reply   []byte // updReply: cached output; updShed: 8-byte Retry-After hint
}

// Message is a unidirectional LT_send message.
type Message struct {
	Src  int
	Data []byte
}

// RegisterRPC registers an application RPC function ID on this node so
// clients can bind to it and server threads can LT_recvRPC on it.
func (i *Instance) RegisterRPC(id int) error {
	if id < FirstUserFunc || id >= MaxFunc {
		return fmt.Errorf("lite: function ids must be in [%d, %d)", FirstUserFunc, MaxFunc)
	}
	if _, ok := i.funcs[id]; ok {
		return fmt.Errorf("lite: RPC function %d already registered", id)
	}
	i.funcs[id] = &rpcFunc{id: id}
	return nil
}

// RPCRegistered reports whether fn is registered on this node. A node
// adopting a migrated shard uses it to decide whether serving must be
// stood up from scratch or merged into an existing registration.
func (i *Instance) RPCRegistered(id int) bool {
	_, ok := i.funcs[id]
	return ok
}

func (i *Instance) registerSystemFuncs() {
	i.funcs[funcControl] = &rpcFunc{id: funcControl, handler: i.handleControl}
	i.funcs[funcMsg] = &rpcFunc{id: funcMsg}
	i.funcs[funcLock] = &rpcFunc{id: funcLock, handler: i.handleLock}
	i.funcs[funcBarrier] = &rpcFunc{id: funcBarrier, handler: i.handleBarrier}
}

// setupBinding establishes the client-side ring for (dst, fn). The
// control binding is built directly at bootstrap by the cluster
// manager; all other bindings are negotiated over the control binding.
func (i *Instance) setupBinding(dst, fn int) error {
	key := bindKey{dst, fn}
	if _, ok := i.bindings[key]; ok {
		return nil
	}
	if fn != funcControl {
		return fmt.Errorf("lite: setupBinding(%d) at boot is control-only", fn)
	}
	if err := validateRingBytes(i.opts.RingBytes); err != nil {
		return err
	}
	remote := i.dep.Instances[dst]
	pa, err := remote.node.Mem.AllocContiguous(i.opts.RingBytes)
	if err != nil {
		return err
	}
	i.bindings[key] = &binding{dst: dst, fn: fn, ringPA: pa, ringSize: i.opts.RingBytes}
	remote.srvRings[bindKey{i.node.ID, fn}] = &srvRing{client: i.node.ID, fn: fn, pa: pa, size: i.opts.RingBytes}
	return nil
}

// getBinding returns the binding for (dst, fn), negotiating a new ring
// over the control channel on first use. Setup is single-flight: all
// concurrent first users share the one ring (clients of a binding
// share the tail pointer, so two independent bindings to one ring
// would clobber each other's frames).
func (i *Instance) getBinding(p *simtime.Proc, dst, fn int, pri Priority) (*binding, error) {
	key := bindKey{dst, fn}
	if b, ok := i.bindings[key]; ok {
		return b, nil
	}
	if st, ok := i.bindSetup[key]; ok {
		for !st.done {
			st.cond.Wait(p)
		}
		if st.err != nil {
			return nil, st.err
		}
		return i.bindings[key], nil
	}
	st := &bindSetup{}
	if i.bindSetup == nil {
		i.bindSetup = make(map[bindKey]*bindSetup)
	}
	i.bindSetup[key] = st
	pa, size, boot, err := i.ctlBind(p, dst, fn, pri)
	if err == nil {
		i.bindings[key] = &binding{dst: dst, fn: fn, ringPA: pa, ringSize: size, srvBoot: boot}
	}
	st.err = err
	st.done = true
	st.cond.Broadcast(p.Env())
	delete(i.bindSetup, key)
	if err != nil {
		return nil, err
	}
	return i.bindings[key], nil
}

// bindSetup tracks an in-flight binding negotiation.
type bindSetup struct {
	done bool
	err  error
	cond simtime.Cond
}

func (i *Instance) token() uint32 {
	i.nextToken = (i.nextToken + 1) & 0x0fffffff
	if i.nextToken == 0 {
		i.nextToken = 1
	}
	return i.nextToken
}

// seqID allocates a client sequence number for one logical retried
// call. It is monotonic for the life of the process and deliberately
// not reset across instance restarts, so a restarted client can never
// collide with its own stale entries in a server's dedup window.
func (i *Instance) seqID() uint64 {
	i.nextSeq++
	return i.nextSeq
}

// reserveRing claims space for a message of the given aligned size in
// the ring, waiting for head updates if the ring is full, and returns
// the ring offset to write at. It accounts wrap padding. It aborts
// with ErrNodeDead if the binding is severed (crash or membership)
// and with ErrTimeout if no credit arrives within the RPC timeout —
// a full ring whose head updates were lost must not block forever;
// the retry layer heals it by renegotiating the binding.
func (i *Instance) reserveRing(p *simtime.Proc, b *binding, need int64, probe bool) (int64, error) {
	var deadline simtime.Time
	if i.opts.RPCTimeout > 0 {
		deadline = p.Now() + i.opts.RPCTimeout
	}
	for {
		if i.stopped || b.dead || (!probe && i.deadView[b.dst]) {
			return 0, ErrNodeDead
		}
		// Pad to the ring start if the message would wrap.
		pad := int64(0)
		if off := b.tail % b.ringSize; off+need > b.ringSize {
			pad = b.ringSize - off
		}
		if b.tail+pad+need-b.head <= b.ringSize {
			b.tail += pad
			off := b.tail % b.ringSize
			b.tail += need
			return off, nil
		}
		if deadline > 0 {
			if p.Now() >= deadline {
				return 0, ErrTimeout
			}
			b.space.WaitTimeout(p, deadline-p.Now())
		} else {
			b.space.Wait(p)
		}
	}
}

// ---- small-message fast path ----

// maxPooledFrames bounds the per-instance frame free list; frames
// beyond the cap (or oversized ones) fall back to the GC.
const maxPooledFrames = 64

// maxFrameBytes is the largest frame the pool keeps; jumbo LT_send
// payloads are not worth retaining.
const maxFrameBytes = 64 << 10

// getFrame returns a framing buffer of exactly n bytes, reusing a
// pooled one when possible so the posting hot path stops allocating
// per message (the NIC snapshots the payload synchronously at post
// time, which is what makes recycling safe).
func (i *Instance) getFrame(n int64) []byte {
	if k := len(i.framePool); k > 0 {
		buf := i.framePool[k-1]
		i.framePool = i.framePool[:k-1]
		if int64(cap(buf)) >= n {
			return buf[:n]
		}
	}
	return make([]byte, n)
}

// putFrame recycles a framing buffer.
func (i *Instance) putFrame(buf []byte) {
	if cap(buf) > maxFrameBytes || len(i.framePool) >= maxPooledFrames {
		return
	}
	i.framePool = append(i.framePool, buf)
}

// wantInline reports whether an n-byte payload should ride inline in
// the WQE (skipping the NIC's payload DMA read).
func (i *Instance) wantInline(n int64) bool {
	return !i.opts.DisableInline && n <= int64(i.cfg.MaxInline)
}

// reapQP frees the send-queue slots of every in-flight signaled batch
// whose completion has already arrived, oldest first, without
// blocking. Stops at the first batch still outstanding.
func (i *Instance) reapQP(p *simtime.Proc, sig *qpSigState) {
	for len(sig.inflight) > 0 {
		b := sig.inflight[0]
		if _, ok := i.sendDisp.TryClaim(p, b.wrid); !ok {
			return
		}
		sig.inflight = sig.inflight[1:]
		for _, rel := range b.releases {
			rel()
		}
	}
}

// acquireShared selects a shared QP to dst (round-robin within the
// QoS range) and takes one send-queue slot on it, reaping this QP's
// arrived completions first. When the queue is full the caller waits
// on this QP's own oldest signaled completion — never another QP's —
// so a destination that is timing out cannot starve posts to healthy
// ones. Exactly one waiter reaps at a time; contenders park on the
// QP's cond.
func (i *Instance) acquireShared(p *simtime.Proc, dst int, pri Priority) (*rnic.QP, int, *qpSigState, func()) {
	lo, hi := i.qos.qpRange(pri, len(i.qps[dst]))
	k := lo + i.nextQP[dst]%(hi-lo)
	i.nextQP[dst]++
	qp := i.qps[dst][k]
	slot := i.qpSlots[dst][k]
	sig := i.qpSig[dst][k]
	env := i.cls.Env
	for {
		i.reapQP(p, sig)
		if slot.TryAcquire(p) {
			return qp, k, sig, func() { slot.Release(env) }
		}
		if sig.reaping {
			sig.cond.Wait(p)
			continue
		}
		if len(sig.inflight) == 0 {
			// The held slots belong to posts still in flight (their
			// holders file or release them when their PostSendList
			// returns); just wait for a permit.
			slot.Acquire(p)
			return qp, k, sig, func() { slot.Release(env) }
		}
		sig.reaping = true
		b := sig.inflight[0]
		sig.inflight = sig.inflight[1:]
		i.sendDisp.WaitQuiet(p, b.wrid)
		for _, rel := range b.releases {
			rel()
		}
		sig.reaping = false
		sig.cond.Broadcast(env)
	}
}

// postShared posts a chain of work requests to dst over one shared QP
// behind a single doorbell, applying selective completion signaling:
// posts are normally unsignaled (no CQE), their send-queue slots held
// until every signalEvery-th post, whose last WR is signaled; the
// accumulated slot releases are then filed under that completion and
// freed when a later poster reaps it — lazy WQE reclaim, bounded by
// qpDepth: a sender is never more than one signaled completion away
// from free slots.
func (i *Instance) postShared(p *simtime.Proc, dst int, pri Priority, wrs []rnic.WR) error {
	qp, _, sig, release := i.acquireShared(p, dst, pri)
	// The signaling decision must be made AND published in sig.count
	// before PostSendList parks to pay the posting cost. Concurrent
	// posters on the same QP would otherwise all read the
	// pre-increment count, each decide "not my turn to signal", and
	// fill the entire send queue with unsignaled WQEs — leaving no
	// completion to ever reclaim the slots and deadlocking every
	// sender to this destination. (Closed-loop clients never hit this;
	// an open-loop burst does.)
	signaled := sig.count+len(wrs) >= i.signalEvery()
	if signaled {
		last := &wrs[len(wrs)-1]
		last.Signaled = true
		last.WRID = i.wrID()
		sig.count = 0
	} else {
		sig.count += len(wrs)
	}
	err := i.ctx.PostSendList(p, qp, wrs)
	if err != nil {
		release()
		return err
	}
	sig.pending = append(sig.pending, release)
	if !signaled {
		return nil
	}
	// The batch takes every release currently deferred on this QP.
	// Releases of posts that raced in after this WR was decided may
	// ride along and free their slot on this completion — a slightly
	// early reclaim of the simulated slot budget, never a leak.
	sig.inflight = append(sig.inflight, reclaimBatch{wrid: wrs[len(wrs)-1].WRID, releases: sig.pending})
	sig.pending = nil
	return nil
}

// postToRing writes a framed message into the binding's ring at the
// server with one unsignaled write-imm (§5.1: the sending state is
// never polled; reply or timeout detects failure). Frames that fit
// Params.MaxInline travel inline in the WQE and skip the payload DMA
// stage.
func (i *Instance) postToRing(p *simtime.Proc, b *binding, fn int, token uint32, replyPA hostmem.PAddr, input []byte, pri Priority, probe bool, meta *callMeta, ten uint16) error {
	var seq, boot uint64
	var attempt uint16
	if meta != nil {
		if meta.attempt == 0 {
			// Until an attempt ends ambiguously the logical call is
			// (re)stamped with the current server incarnation; after
			// that the stamp freezes so a restart in between is
			// detectable server-side.
			meta.boot = b.srvBoot
		}
		seq, boot, attempt = meta.seq, meta.boot, meta.attempt
	}
	need := int64(ringHdr + len(input))
	aligned := (need + ringAlign - 1) &^ (ringAlign - 1)
	off, err := i.reserveRing(p, b, aligned, probe)
	if err != nil {
		return err
	}

	msg := i.getFrame(need)
	binary.LittleEndian.PutUint32(msg[0:], uint32(need))
	binary.LittleEndian.PutUint32(msg[4:], token)
	binary.LittleEndian.PutUint64(msg[8:], uint64(replyPA))
	binary.LittleEndian.PutUint32(msg[16:], uint32(len(input)))
	binary.LittleEndian.PutUint64(msg[20:], seq)
	binary.LittleEndian.PutUint64(msg[28:], boot)
	binary.LittleEndian.PutUint16(msg[36:], attempt)
	binary.LittleEndian.PutUint16(msg[38:], ten)
	copy(msg[ringHdr:], input)

	i.qos.throttle(p, pri, need)
	err = i.postShared(p, b.dst, pri, []rnic.WR{{
		Kind:      rnic.OpWriteImm,
		WRID:      i.wrID(),
		Signaled:  false,
		Inline:    i.wantInline(need),
		LocalBuf:  msg,
		Len:       need,
		RemoteKey: i.dep.Instances[b.dst].globalMR.Key(),
		RemoteOff: int64(b.ringPA) + off,
		Imm:       encodeImm(tagRPCReq, fn, off),
		Trace:     procSpan(p),
	}})
	// The NIC snapshotted the payload synchronously inside the post, so
	// the frame can be recycled immediately.
	i.putFrame(msg)
	return err
}

// rpcInternal implements LT_RPC: write-imm the input into the server's
// ring, then wait (adaptively) for the reply write-imm that lands
// directly in this node's response buffer.
func (i *Instance) rpcInternal(p *simtime.Proc, dst, fn int, input []byte, maxReply int64, pri Priority) ([]byte, error) {
	return i.rpcInternalT(p, dst, fn, input, maxReply, pri, i.opts.RPCTimeout)
}

// rpcInternalT is rpcInternal with an explicit timeout; a zero timeout
// means wait forever (used by locks and barriers, whose replies are
// intentionally withheld until the event occurs).
func (i *Instance) rpcInternalT(p *simtime.Proc, dst, fn int, input []byte, maxReply int64, pri Priority, timeout simtime.Time) ([]byte, error) {
	return i.rpcInternalFull(p, dst, fn, input, maxReply, pri, timeout, false, nil, 0)
}

// rpcInternalProbe is rpcInternalT with the probe flag exposed:
// keepalives may target declared-dead nodes, since a successful probe
// is exactly what revives one.
func (i *Instance) rpcInternalProbe(p *simtime.Proc, dst, fn int, input []byte, maxReply int64, pri Priority, timeout simtime.Time, probe bool) ([]byte, error) {
	return i.rpcInternalFull(p, dst, fn, input, maxReply, pri, timeout, probe, nil, 0)
}

// rpcInternalFull is the complete LT_RPC entry point. meta, when
// non-nil, identifies this logical call across retry attempts (client
// sequence number, ambiguous-attempt count, server boot stamp); the
// server's dedup window uses it to suppress duplicate execution after
// a lost reply and to detect retries that crossed its restart. ten is
// the caller's tenant ID (0 = kernel/untenanted), carried in the ring
// header so the server can apply tenant-weighted admission.
func (i *Instance) rpcInternalFull(p *simtime.Proc, dst, fn int, input []byte, maxReply int64, pri Priority, timeout simtime.Time, probe bool, meta *callMeta, ten uint16) ([]byte, error) {
	reg := i.obsReg()
	parent := procSpan(p)
	t0 := p.Now()
	p.Work(i.cfg.LITECheck)
	reg.AddSpan(t0, p.Now(), "lite.check", parent)
	if i.stopped {
		return nil, ErrNodeDead
	}
	if dst == i.node.ID {
		return i.rpcLocal(p, fn, input, timeout, ten)
	}
	b, err := i.getBinding(p, dst, fn, pri)
	if err != nil {
		return nil, err
	}
	token := i.token()
	respPA := i.scratchAlloc(maxReply)
	pc := &pendingCall{respPA: respPA, dst: dst, probe: probe}
	i.pending[token] = pc

	post := reg.StartSpan(p.Now(), "lite.rpc.post", parent)
	err = i.postToRing(p, b, fn, token, respPA, input, pri, probe, meta, ten)
	post.Done(p.Now())
	if err != nil {
		delete(i.pending, token)
		return nil, err
	}
	var deadline simtime.Time
	if timeout > 0 {
		deadline = p.Now() + timeout
	}
	wait := reg.StartSpan(p.Now(), "lite.rpc.wait", parent)
	waited := i.adaptiveWait(p, &pc.cond, func() bool { return pc.done }, deadline)
	wait.Done(p.Now())
	if !waited {
		// The server may yet deliver a late reply write-imm into
		// respPA. Keep the pending entry and quarantine the buffer so
		// the allocator cannot hand it out on ring wraparound while
		// that write is in flight; the quarantine lifts when the reply
		// lands or the membership epoch advances past this call.
		pc.abandoned = true
		i.scratch.quarantine(respPA, maxReply, token, i.epoch)
		return nil, ErrTimeout
	}
	if pc.err != nil {
		return nil, pc.err
	}
	if pc.respLen > maxReply {
		pc.respLen = maxReply
	}
	// The NIC wrote the reply directly into this buffer (zero copy at
	// the client side); materialize it for the caller.
	out := make([]byte, pc.respLen)
	if err := i.node.Mem.Read(respPA, out); err != nil {
		return nil, err
	}
	return out, nil
}

// rpcLocal dispatches an RPC whose server is this node without
// touching the network.
func (i *Instance) rpcLocal(p *simtime.Proc, fn int, input []byte, timeout simtime.Time, ten uint16) ([]byte, error) {
	if i.stopped {
		return nil, ErrNodeDead
	}
	f, ok := i.funcs[fn]
	if !ok {
		return nil, ErrNoSuchRPC
	}
	pc := &pendingCall{}
	call := &Call{Func: fn, Src: i.node.ID, Tenant: ten, Input: append([]byte(nil), input...), local: true, pend: pc}
	i.memcpyCost(p, int64(len(input)))
	i.dispatchCall(f, call)
	var deadline simtime.Time
	if timeout > 0 {
		deadline = p.Now() + timeout
	}
	if !i.adaptiveWait(p, &pc.cond, func() bool { return pc.done }, deadline) {
		return nil, ErrTimeout
	}
	if pc.err != nil {
		return nil, pc.err
	}
	return call.localReply, nil
}

func (i *Instance) dispatchCall(f *rpcFunc, call *Call) {
	f.queue = append(f.queue, call)
	if f.handler != nil {
		i.sysQueue = append(i.sysQueue, f)
		i.sysCond.Signal(i.cls.Env)
	} else {
		f.cond.Signal(i.cls.Env)
	}
}

// recvRPCInternal implements LT_recvRPC: wait (adaptively) for the
// next call to the function and return it, paying the single data move
// from the ring into the caller's memory (§5.2).
func (i *Instance) recvRPCInternal(p *simtime.Proc, fn int) (*Call, error) {
	f, ok := i.funcs[fn]
	if !ok {
		return nil, ErrNoSuchRPC
	}
	var call *Call
	for call == nil {
		if !i.adaptiveWait(p, &f.cond, func() bool { return i.stopped || len(f.queue) > 0 }, 0) {
			return nil, ErrTimeout
		}
		if i.stopped {
			return nil, ErrNodeDead
		}
		if len(f.queue) == 0 {
			continue // another server thread took it during our wakeup
		}
		call = f.queue[0]
		f.queue = f.queue[1:]
	}
	i.memcpyCost(p, int64(len(call.Input)))
	// Stamp the dequeue instant: reply time minus this is the observed
	// handler service time the fair-admission EWMA learns from.
	call.recvAt = p.Now()
	// Count the serve on the responder node: this is the "server CPU
	// got involved" signal one-sided data paths are measured against.
	i.obsReg().Add("lite.rpc.served", 1)
	if !call.local {
		// Advance the ring header; the new value ships from the
		// background thread (Figure 9, step f). headDelta is zero for
		// calls that were fenced and re-dispatched (credited at hold).
		if call.headDelta > 0 {
			i.queueHeadUpdate(p, call.Src, call.Func, call.headDelta)
		}
		call.exec = f
		f.executing++
	}
	return call, nil
}

// replyRPCInternal implements LT_replyRPC: write-imm the return value
// directly into the client's response buffer.
func (i *Instance) replyRPCInternal(p *simtime.Proc, c *Call, output []byte, pri Priority) error {
	reg := i.obsReg()
	parent := procSpan(p)
	t0 := p.Now()
	p.Work(i.cfg.LITECheck)
	reg.AddSpan(t0, p.Now(), "lite.check", parent)
	if c.local {
		c.localReply = append([]byte(nil), output...)
		i.memcpyCost(p, int64(len(output)))
		c.pend.done = true
		c.pend.cond.Broadcast(i.cls.Env)
		return nil
	}
	if c.ded != nil {
		// Remember the outcome so a duplicate retry of this sequence
		// number replays the reply instead of re-running the handler.
		c.ded.done = true
		c.ded.call = nil
		c.ded.reply = append([]byte(nil), output...)
	}
	// Feed the observed service time back into the admission cost
	// model and release the call's admitted cost. Pure integer
	// bookkeeping — no virtual time moves, so a depth-only or
	// admission-free timeline is unperturbed.
	if c.recvAt > 0 {
		i.admServiceObserve(c.Func, p.Now()-c.recvAt)
		c.recvAt = 0
	}
	i.admRelease(c)
	if c.exec != nil {
		c.exec.executing--
		c.exec = nil
	}
	post := reg.StartSpan(p.Now(), "lite.rpc.post", parent)
	i.qos.throttle(p, pri, int64(len(output)))
	err := i.postShared(p, c.Src, pri, []rnic.WR{{
		Kind:      rnic.OpWriteImm,
		WRID:      i.wrID(),
		Signaled:  false,
		Inline:    i.wantInline(int64(len(output))),
		LocalBuf:  output,
		Len:       int64(len(output)),
		RemoteKey: i.dep.Instances[c.Src].globalMR.Key(),
		RemoteOff: int64(c.replyPA),
		Imm:       encodeReplyImm(c.token),
		Trace:     parent,
	}})
	post.Done(p.Now())
	return err
}

// sendInternal implements LT_send: a one-way message into the
// destination's message queue, delivered through the funcMsg ring.
func (i *Instance) sendInternal(p *simtime.Proc, dst int, data []byte, pri Priority) error {
	p.Work(i.cfg.LITECheck)
	if dst == i.node.ID {
		i.memcpyCost(p, int64(len(data)))
		i.msgQueue = append(i.msgQueue, Message{Src: i.node.ID, Data: append([]byte(nil), data...)})
		i.msgCond.Signal(i.cls.Env)
		return nil
	}
	b, err := i.getBinding(p, dst, funcMsg, pri)
	if err != nil {
		return err
	}
	return i.postToRing(p, b, funcMsg, 0, 0, data, pri, false, nil, 0)
}

// recvInternal implements the receive side of LT_send.
func (i *Instance) recvInternal(p *simtime.Proc) (Message, error) {
	for {
		if !i.adaptiveWait(p, &i.msgCond, func() bool { return i.stopped || len(i.msgQueue) > 0 }, 0) {
			return Message{}, ErrTimeout
		}
		if i.stopped {
			return Message{}, ErrNodeDead
		}
		if len(i.msgQueue) == 0 {
			continue // another receiver took it during our wakeup
		}
		m := i.msgQueue[0]
		i.msgQueue = i.msgQueue[1:]
		i.memcpyCost(p, int64(len(m.Data)))
		return m, nil
	}
}

// tryRecvInternal returns a queued message without blocking.
func (i *Instance) tryRecvInternal(p *simtime.Proc) (Message, bool) {
	if len(i.msgQueue) == 0 {
		return Message{}, false
	}
	m := i.msgQueue[0]
	i.msgQueue = i.msgQueue[1:]
	i.memcpyCost(p, int64(len(m.Data)))
	return m, true
}

// ---- shared polling thread (§5.1) ----

// pollerHandleCost is the software cost of demultiplexing one CQE in
// the shared polling thread.
const pollerHandleCost = 120 * time.Nanosecond

// pollerBatchCost is the amortized cost of each additional CQE drained
// in the same sweep: the poll descriptor and cache lines are hot, so
// coalesced completions demultiplex cheaper than the first one.
const pollerBatchCost = 40 * time.Nanosecond

// pollerLoop is the per-node shared polling thread: it busy-polls the
// single shared receive CQ for all RPC clients and functions, parses
// the IMM metadata, and routes work — one thread per node, shared by
// every application (§5.1, §6.1). It uses the same adaptive model as
// user threads so an idle node does not burn a core forever.
// Completions that accumulated while it worked are drained in one
// sweep at the amortized batch cost — the consumer half of CQ
// moderation (the producer half is selective signaling: unsignaled
// WRs never generate a CQE at all).
func (i *Instance) pollerLoop(p *simtime.Proc) {
	for !i.stopped {
		if cqe, ok := i.recvCQ.TryPoll(); ok {
			p.Work(pollerHandleCost)
			i.PollerCPU += pollerHandleCost
			i.handleRecvCQE(p, cqe)
			for !i.stopped {
				cqe, ok := i.recvCQ.TryPoll()
				if !ok {
					break
				}
				p.Work(pollerBatchCost)
				i.PollerCPU += pollerBatchCost
				i.obsReg().Add("lite.poller.coalesced", 1)
				i.handleRecvCQE(p, cqe)
			}
			continue
		}
		// Busy window.
		t0 := p.Now()
		if i.recvCQ.WaitTimeout(p, i.cfg.AdaptivePollWindow) {
			d := p.Now() - t0
			p.CPUAccount().Charge(d)
			i.PollerCPU += d
			continue
		}
		d := p.Now() - t0
		p.CPUAccount().Charge(d)
		i.PollerCPU += d
		// Sleep until the next completion.
		i.recvCQ.Wait(p)
		p.Work(i.cfg.WakeupLatency)
		i.PollerCPU += i.cfg.WakeupLatency
	}
}

func (i *Instance) handleRecvCQE(p *simtime.Proc, cqe rnic.CQE) {
	i.topUpRecvs(p)
	if !cqe.HasImm {
		return
	}
	tag, fn, v := decodeImm(cqe.Imm)
	switch tag {
	case tagRPCReq:
		i.handleRPCReq(p, cqe.SrcNode, fn, v)
	case tagRPCRep:
		token := cqe.Imm & 0x0fffffff
		if pc, ok := i.pending[token]; ok {
			delete(i.pending, token)
			if pc.abandoned {
				// Late reply for a call whose waiter already timed
				// out: the write has landed, so the quarantined reply
				// buffer is safe to reuse.
				i.scratch.release(token)
				return
			}
			pc.respLen = cqe.Len
			pc.done = true
			pc.cond.Broadcast(i.cls.Env)
		}
	case tagHeadUpd:
		if b, ok := i.bindings[bindKey{cqe.SrcNode, fn}]; ok {
			b.head += v
			b.space.Broadcast(i.cls.Env)
		}
	case tagRPCShed:
		token := cqe.Imm & 0x0fffffff
		if pc, ok := i.pending[token]; ok {
			delete(i.pending, token)
			if pc.abandoned {
				// The shed notice raced with the waiter's timeout; no
				// reply will ever land, so free the quarantined buffer.
				i.scratch.release(token)
				return
			}
			pc.err = ErrOverloaded
			if cqe.Len >= 8 {
				// The fair policy shipped a Retry-After hint in the
				// reply buffer; surface it through the typed error so
				// the retry layer can honor it.
				var buf [8]byte
				if i.node.Mem.Read(pc.respPA, buf[:]) == nil {
					if h := simtime.Time(binary.LittleEndian.Uint64(buf[:])); h > 0 {
						pc.err = &OverloadError{RetryAfter: h}
					}
				}
			}
			pc.done = true
			pc.cond.Broadcast(i.cls.Env)
		}
	case tagRPCMaybe:
		token := cqe.Imm & 0x0fffffff
		if pc, ok := i.pending[token]; ok {
			delete(i.pending, token)
			if pc.abandoned {
				// The ambiguity notice raced with the waiter's timeout;
				// no reply will ever land, so free the quarantined
				// buffer.
				i.scratch.release(token)
				return
			}
			i.obsReg().Add("lite.rpc.maybe_executed", 1)
			pc.err = ErrMaybeExecuted
			pc.done = true
			pc.cond.Broadcast(i.cls.Env)
		}
	case tagRPCMoved:
		token := cqe.Imm & 0x0fffffff
		if pc, ok := i.pending[token]; ok {
			delete(i.pending, token)
			if pc.abandoned {
				// The moved notice raced with the waiter's timeout; no
				// reply will ever land, so free the quarantined buffer.
				i.scratch.release(token)
				return
			}
			i.obsReg().Add("lite.rpc.moved", 1)
			pc.err = ErrMoved
			if cqe.Len >= 8 {
				// The fence shipped the new home node in the reply
				// buffer; surface it through the typed error so the
				// retry layer can re-route without consuming an attempt.
				var buf [8]byte
				if i.node.Mem.Read(pc.respPA, buf[:]) == nil {
					pc.err = &MovedError{To: int(binary.LittleEndian.Uint64(buf[:]))}
				}
			}
			pc.done = true
			pc.cond.Broadcast(i.cls.Env)
		}
	}
}

// handleRPCReq parses a request frame out of the server-side ring and
// routes it to the function's queue (applications) or the system
// worker pool (LITE-internal functions).
func (i *Instance) handleRPCReq(p *simtime.Proc, src, fn int, off int64) {
	ring, ok := i.srvRings[bindKey{src, fn}]
	if !ok {
		return
	}
	var hdr [ringHdr]byte
	if err := i.node.Mem.Read(ring.pa+hostmem.PAddr(off), hdr[:]); err != nil {
		return
	}
	total := int64(binary.LittleEndian.Uint32(hdr[0:]))
	token := binary.LittleEndian.Uint32(hdr[4:])
	replyPA := hostmem.PAddr(binary.LittleEndian.Uint64(hdr[8:]))
	inLen := int64(binary.LittleEndian.Uint32(hdr[16:]))
	seq := binary.LittleEndian.Uint64(hdr[20:])
	boot := binary.LittleEndian.Uint64(hdr[28:])
	attempt := binary.LittleEndian.Uint16(hdr[36:])
	ten := binary.LittleEndian.Uint16(hdr[38:])
	if inLen < 0 || inLen > total-ringHdr {
		return
	}
	input := make([]byte, inLen)
	_ = i.node.Mem.Read(ring.pa+hostmem.PAddr(off+ringHdr), input)

	// Ring accounting, in arrival order: account wrap padding the
	// client inserted before this frame, then the frame itself.
	pad := (off - ring.headLocal%ring.size + ring.size) % ring.size
	aligned := (total + ringAlign - 1) &^ (ringAlign - 1)
	ring.headLocal += pad + aligned
	delta := pad + aligned

	call := &Call{Func: fn, Src: src, Tenant: ten, Input: input, token: token, replyPA: replyPA, headDelta: delta}
	if fn == funcMsg {
		i.msgQueue = append(i.msgQueue, Message{Src: src, Data: input})
		i.msgCond.Signal(i.cls.Env)
		// Messages are consumed immediately; credit the ring now.
		i.queueHeadUpdate(p, src, fn, delta)
		return
	}
	if to, ok := i.moved[migKey{i.node.ID, fn}]; ok {
		// This function migrated away from this node. The ring stays
		// alive exactly for this moment: stale clients (and retries of
		// calls whose replies were lost) are answered with the typed
		// moved notice carrying the new home, never silently dropped.
		// Checked before the dedup lookup — the windows transferred with
		// the migration, so any replay must happen at the new home.
		i.obsReg().Add("lite.rpc.moved_bounce", 1)
		i.queueHeadUpdate(p, src, fn, delta)
		i.queueNotify(p, headUpdate{kind: updMoved, client: src, fn: fn, token: token, replyPA: replyPA, reply: encodeMovedTo(to)})
		return
	}
	f, ok := i.funcs[fn]
	if !ok {
		// Unknown function: reclaim the ring space; the client times out.
		i.queueHeadUpdate(p, src, fn, delta)
		return
	}
	if seq != 0 {
		if e := ring.dedupLookup(seq); e != nil {
			// Retry of a call already seen from this (client, fn). The
			// frame still consumed ring space, so always credit it; then
			// either replay the cached reply or redirect the in-flight
			// call's eventual reply to this newest attempt's coordinates.
			i.queueHeadUpdate(p, src, fn, delta)
			if e.done {
				i.obsReg().Add("lite.rpc.dedup_replay", 1)
				i.queueNotify(p, headUpdate{kind: updReply, client: src, fn: fn, token: token, replyPA: replyPA, reply: e.reply})
			} else {
				i.obsReg().Add("lite.rpc.dedup_redirect", 1)
				e.call.token = token
				e.call.replyPA = replyPA
			}
			return
		}
		if attempt > 0 && !ring.bootKnown(boot) {
			// A retry of a timed-out call whose first attempt targeted
			// an earlier incarnation of this server: the dedup window
			// that could have remembered it died with that
			// incarnation's rings, so whether it executed is
			// unknowable here. Answer with the typed ambiguity notice
			// instead of silently running the handler a second time.
			i.obsReg().Add("lite.rpc.dedup_ambiguous", 1)
			i.queueHeadUpdate(p, src, fn, delta)
			i.queueNotify(p, headUpdate{kind: updMaybe, client: src, fn: fn, token: token})
			return
		}
	}
	if ms := i.migrating[fn]; ms != nil && ms.fenced {
		// The function is mid-migration and fenced: hold the call
		// instead of executing it. On commit every held call is answered
		// with the moved notice (the client re-routes, zero failures);
		// on abort they dispatch normally. The dedup entry is inserted
		// NOW so a retry arriving while the call is held redirects into
		// it rather than being held (and later dispatched) a second
		// time. The ring credit was already paid above, so the delta is
		// zeroed to keep LT_recvRPC from crediting it again on abort.
		i.obsReg().Add("lite.migrate.held", 1)
		i.queueHeadUpdate(p, src, fn, delta)
		call.headDelta = 0
		if seq != 0 {
			e := &dedupEntry{seq: seq, call: call}
			call.ded = e
			ring.dedupInsert(e)
		}
		ms.held = append(ms.held, call)
		return
	}
	if fn >= FirstUserFunc {
		reg := i.obsReg()
		reg.Observe("lite.rpc.queue_depth", simtime.Time(len(f.queue)))
		if hw := i.opts.AdmissionHighWater; hw > 0 {
			p.Work(i.cfg.AdmissionCheck)
			if i.opts.FairAdmission {
				p.Work(i.cfg.FairAdmissionCheck)
				var cost int64
				var hint simtime.Time
				var ok bool
				if ten != 0 {
					// A tenant-tagged request: weighted-tenant admission,
					// with the extra credential/credit bookkeeping charged.
					p.Work(i.cfg.TenantCheck)
					cost, hint, ok = i.admFor(fn).admitTenant(ten, i.dep.tenantWeight(ten), inLen, hw, len(f.queue))
					i.tenantCount(ten, tenObsAdmit, ok)
				} else {
					cost, hint, ok = i.admFor(fn).admit(src, inLen, hw, len(f.queue))
				}
				if !ok {
					// Shed the over-share client: credit the frame and
					// notify fast, shipping the Retry-After estimate in
					// the call's reply buffer (every reply buffer owns
					// at least a cache line, so the 8-byte hint always
					// has a landing zone).
					reg.Add("lite.rpc.shed", 1)
					reg.Add("lite.rpc.shed_fair", 1)
					i.queueHeadUpdate(p, src, fn, delta)
					u := headUpdate{kind: updShed, client: src, fn: fn, token: token}
					if hint > 0 {
						buf := make([]byte, 8)
						binary.LittleEndian.PutUint64(buf, uint64(hint))
						u.reply = buf
						u.replyPA = replyPA
					}
					i.queueNotify(p, u)
					return
				}
				call.admCost = cost
			} else if len(f.queue) >= hw {
				// Shed: credit the frame and tell the client fast with a
				// zero-length write-imm, instead of letting it burn a
				// full RPC timeout against a queue that cannot drain.
				reg.Add("lite.rpc.shed", 1)
				i.queueHeadUpdate(p, src, fn, delta)
				i.queueNotify(p, headUpdate{kind: updShed, client: src, fn: fn, token: token})
				return
			}
		}
	}
	if seq != 0 {
		e := &dedupEntry{seq: seq, call: call}
		call.ded = e
		ring.dedupInsert(e)
	}
	i.dispatchCall(f, call)
	// The paper adjusts the header at LT_recvRPC time and ships it from
	// a background thread; the delta rides on the call until consumed.
}

// queueHeadUpdate hands a ring-credit notification to the background
// header-update thread (step f in Figure 9). Credits larger than the
// IMM delta encoding (possible with wrap padding on a near-maximal
// ring) are split across several updates.
func (i *Instance) queueHeadUpdate(p *simtime.Proc, client, fn int, delta int64) {
	for delta > maxImmDelta {
		i.queueNotify(p, headUpdate{kind: updCredit, client: client, fn: fn, delta: maxImmDelta})
		delta -= maxImmDelta
	}
	i.queueNotify(p, headUpdate{kind: updCredit, client: client, fn: fn, delta: delta})
}

// queueNotify hands any notification (credit, shed, reply replay) to
// the background header-update thread.
func (i *Instance) queueNotify(p *simtime.Proc, u headUpdate) {
	if i.stopped {
		return // crashed mid-consume: the notification dies with the node
	}
	if !i.headUpd.TrySend(p, u) {
		// The queue is sized far beyond any realistic backlog; losing a
		// credit would leak ring space, so fail loudly.
		panic("lite: header-update queue overflow")
	}
}

// headUpdBatchMax bounds how many queued head updates the background
// thread drains into one doorbell-batched burst.
const headUpdBatchMax = 16

// notifyWR builds the write-imm for one queued notification: a
// zero-length ring credit, a shed notice (zero-length, or carrying an
// 8-byte Retry-After hint under the fair policy), a zero-length
// restart-ambiguity notice, or a cached reply replayed into the
// retrying attempt's response buffer.
func (i *Instance) notifyWR(u headUpdate) rnic.WR {
	wr := rnic.WR{
		Kind:      rnic.OpWriteImm,
		WRID:      i.wrID(),
		Signaled:  false,
		Inline:    i.wantInline(0),
		Len:       0,
		RemoteKey: i.dep.Instances[u.client].globalMR.Key(),
		RemoteOff: 0,
	}
	switch u.kind {
	case updShed:
		wr.Imm = encodeShedImm(u.token)
		if len(u.reply) > 0 {
			// Fair-admission shed with a Retry-After hint: the 8 bytes
			// land in the call's reply buffer ahead of the IMM.
			wr.Inline = i.wantInline(int64(len(u.reply)))
			wr.LocalBuf = u.reply
			wr.Len = int64(len(u.reply))
			wr.RemoteOff = int64(u.replyPA)
		}
	case updMaybe:
		wr.Imm = encodeMaybeImm(u.token)
	case updMoved:
		// Migration fence notice: the 8-byte new-home payload lands in
		// the call's reply buffer ahead of the IMM (every reply buffer
		// owns at least a cache line, so it always has a landing zone).
		wr.Imm = encodeMovedImm(u.token)
		wr.Inline = i.wantInline(int64(len(u.reply)))
		wr.LocalBuf = u.reply
		wr.Len = int64(len(u.reply))
		wr.RemoteOff = int64(u.replyPA)
	case updReply:
		wr.Inline = i.wantInline(int64(len(u.reply)))
		wr.LocalBuf = u.reply
		wr.Len = int64(len(u.reply))
		wr.RemoteOff = int64(u.replyPA)
		wr.Imm = encodeReplyImm(u.token)
	default:
		wr.Imm = encodeImm(tagHeadUpd, u.fn, u.delta)
	}
	return wr
}

// headUpdateLoop is the background thread that returns ring head
// pointers to clients with small unsignaled write-imms. Updates that
// queued up while it worked are drained together and posted as
// per-client WR chains behind a single doorbell each, instead of one
// doorbell per credit.
func (i *Instance) headUpdateLoop(p *simtime.Proc) {
	for {
		u, ok := i.headUpd.Recv(p)
		if !ok {
			return
		}
		batch := []headUpdate{u}
		if !i.opts.DisableDoorbellBatch {
			for len(batch) < headUpdBatchMax {
				v, ok := i.headUpd.TryRecv(p)
				if !ok {
					break
				}
				batch = append(batch, v)
			}
		}
		// Group into per-client chains, preserving arrival order (order
		// matters: credits for one binding must land in sequence).
		for len(batch) > 0 {
			client := batch[0].client
			wrs := []rnic.WR{i.notifyWR(batch[0])}
			rest := batch[:0]
			for _, v := range batch[1:] {
				if v.client == client {
					wrs = append(wrs, i.notifyWR(v))
				} else {
					rest = append(rest, v)
				}
			}
			batch = rest
			_ = i.postShared(p, client, PriHigh, wrs)
		}
	}
}

// topUpRecvs keeps the pool of zero-byte IMM receive buffers posted on
// the shared QPs stocked ("LITE periodically posts IMM buffers in the
// receive queue in the background", §5.1). Each QP is tracked
// individually against a low-water mark of half the batch: one hot QP
// must never run dry behind a global count. A restock posts the whole
// refill list behind one doorbell (charged to p when the caller runs
// in process context; the boot-time call passes nil) and is counted in
// the lite.recv_restock counters so restock storms show up in
// -metrics output.
// The QPs needing a refill arrive on i.lowRecv via the per-QP
// low-water notification (rnic.SetRecvLowWater), so a restock pass is
// O(QPs below low water) — at 500 nodes a full scan of every peer's
// QPs on each completion was the dominant per-event cost.
func (i *Instance) topUpRecvs(p *simtime.Proc) {
	if i.opts.CompatBaseline {
		// Baseline hot path: scan every peer's QPs on each completion.
		i.lowRecv = i.lowRecv[:0]
		for _, qs := range i.qps {
			for _, qp := range qs {
				i.restockQP(p, qp)
			}
		}
		return
	}
	if len(i.lowRecv) == 0 {
		return
	}
	// Detach the dirty list before draining: posting charges doorbell
	// time, and notifications raised while this process is parked must
	// land on a fresh list, not the one being iterated.
	qs := i.lowRecv
	i.lowRecv = nil
	for _, qp := range qs {
		i.restockQP(p, qp)
	}
}

// restockQP refills one shared QP to RecvBatch if it is below the
// low-water mark.
func (i *Instance) restockQP(p *simtime.Proc, qp *rnic.QP) {
	low := i.opts.RecvBatch / 2
	if qp.RecvPosted() >= low {
		return // already stocked (duplicate notification)
	}
	if len(i.recvTmpl) < i.opts.RecvBatch {
		i.recvTmpl = make([]rnic.PostedRecv, i.opts.RecvBatch)
		for k := range i.recvTmpl {
			i.recvTmpl[k] = rnic.PostedRecv{MR: i.globalMR, Off: 0, Len: 0}
		}
	}
	n := i.opts.RecvBatch - qp.RecvPosted()
	rs := i.recvTmpl[:n]
	if p == nil {
		_ = qp.PostRecvList(rs)
	} else if i.opts.DisableDoorbellBatch {
		for _, r := range rs {
			_ = i.ctx.PostRecv(p, qp, r)
		}
	} else {
		_ = i.ctx.PostRecvList(p, qp, rs)
	}
	reg := i.obsReg()
	reg.Add("lite.recv_restock", 1)
	reg.Add("lite.recv_restock.posted", int64(n))
}

// noteLowRecv is the rnic low-water callback: it queues the QP for the
// next restock pass. Host-side bookkeeping only — no virtual time.
func (i *Instance) noteLowRecv(qp *rnic.QP) {
	i.lowRecv = append(i.lowRecv, qp)
}

// systemWorkerLoop executes LITE-internal RPC handlers (control plane,
// memory operations, locks, barriers) from the system queue.
func (i *Instance) systemWorkerLoop(p *simtime.Proc) {
	for !i.stopped {
		if !i.adaptiveWait(p, &i.sysCond, func() bool { return i.stopped || len(i.sysQueue) > 0 }, 0) {
			return
		}
		if i.stopped {
			return
		}
		if len(i.sysQueue) == 0 {
			// Another worker drained the queue while this one was
			// paying its wakeup latency.
			continue
		}
		f := i.sysQueue[0]
		i.sysQueue = i.sysQueue[1:]
		if len(f.queue) == 0 {
			continue
		}
		call := f.queue[0]
		f.queue = f.queue[1:]
		if !call.local {
			i.queueHeadUpdate(p, call.Src, call.Func, call.headDelta)
		}
		f.handler(p, call)
	}
}
