package lite

import (
	"encoding/binary"

	"lite/internal/hostmem"
	"lite/internal/rnic"
	"lite/internal/simtime"
)

// localAtomicCost is the host cost of a node-local atomic operation.
const localAtomicCost = 150 // nanoseconds, see use below

// rawFetchAdd atomically adds delta to the 8-byte word at (node, pa)
// and returns the previous value. Remote words go through the NIC's
// masked atomic engine; local words execute directly.
func (i *Instance) rawFetchAdd(p *simtime.Proc, node int, pa hostmem.PAddr, delta uint64, pri Priority) (uint64, error) {
	if node == i.node.ID {
		p.Work(localAtomicCost)
		var b [8]byte
		if err := i.node.Mem.Read(pa, b[:]); err != nil {
			return 0, err
		}
		old := binary.LittleEndian.Uint64(b[:])
		binary.LittleEndian.PutUint64(b[:], old+delta)
		return old, i.node.Mem.Write(pa, b[:])
	}
	return i.remoteAtomic(p, node, pa, rnic.WR{Kind: rnic.OpFetchAdd, Add: delta}, pri)
}

// rawCmpSwap atomically compares the word at (node, pa) with cmp and,
// if equal, replaces it with swap. It returns the previous value.
func (i *Instance) rawCmpSwap(p *simtime.Proc, node int, pa hostmem.PAddr, cmp, swap uint64, pri Priority) (uint64, error) {
	if node == i.node.ID {
		p.Work(localAtomicCost)
		var b [8]byte
		if err := i.node.Mem.Read(pa, b[:]); err != nil {
			return 0, err
		}
		old := binary.LittleEndian.Uint64(b[:])
		if old == cmp {
			binary.LittleEndian.PutUint64(b[:], swap)
			if err := i.node.Mem.Write(pa, b[:]); err != nil {
				return 0, err
			}
		}
		return old, nil
	}
	return i.remoteAtomic(p, node, pa, rnic.WR{Kind: rnic.OpCmpSwap, Compare: cmp, Swap: swap}, pri)
}

// rawMaskCmpSwap is rawCmpSwap under masks: the compare applies only
// under cmpMask and the swap replaces only the bits under swapMask
// (ConnectX extended-atomic semantics). The local fast path computes
// exactly what the responder NIC would.
func (i *Instance) rawMaskCmpSwap(p *simtime.Proc, node int, pa hostmem.PAddr, cmp, swap, cmpMask, swapMask uint64, pri Priority) (uint64, error) {
	if node == i.node.ID {
		p.Work(localAtomicCost)
		var b [8]byte
		if err := i.node.Mem.Read(pa, b[:]); err != nil {
			return 0, err
		}
		old := binary.LittleEndian.Uint64(b[:])
		if old&cmpMask == cmp&cmpMask {
			binary.LittleEndian.PutUint64(b[:], old&^swapMask|swap&swapMask)
			if err := i.node.Mem.Write(pa, b[:]); err != nil {
				return 0, err
			}
		}
		return old, nil
	}
	return i.remoteAtomic(p, node, pa, rnic.WR{
		Kind: rnic.OpMaskCmpSwap, Compare: cmp, Swap: swap,
		CompareMask: cmpMask, SwapMask: swapMask,
	}, pri)
}

// rawMaskFetchAdd is rawFetchAdd with carries confined by the boundary
// mask (each set bit ends an independent field; see rnic.MaskedAdd).
func (i *Instance) rawMaskFetchAdd(p *simtime.Proc, node int, pa hostmem.PAddr, delta, boundary uint64, pri Priority) (uint64, error) {
	if node == i.node.ID {
		p.Work(localAtomicCost)
		var b [8]byte
		if err := i.node.Mem.Read(pa, b[:]); err != nil {
			return 0, err
		}
		old := binary.LittleEndian.Uint64(b[:])
		binary.LittleEndian.PutUint64(b[:], rnic.MaskedAdd(old, delta, boundary))
		return old, i.node.Mem.Write(pa, b[:])
	}
	return i.remoteAtomic(p, node, pa, rnic.WR{
		Kind: rnic.OpMaskFetchAdd, Add: delta, BoundaryMask: boundary,
	}, pri)
}

func (i *Instance) remoteAtomic(p *simtime.Proc, node int, pa hostmem.PAddr, wr rnic.WR, pri Priority) (uint64, error) {
	qp, _, release := i.pickQP(p, node, pri)
	defer release()
	var result uint64
	var buf [8]byte
	wr.WRID = i.wrID()
	wr.Signaled = true
	wr.LocalBuf = buf[:]
	wr.Len = 8
	wr.RemoteKey = i.dep.Instances[node].globalMR.Key()
	wr.RemoteOff = int64(pa)
	wr.AtomicResult = &result
	p.Work(i.cfg.NICDoorbell)
	if err := i.node.NIC.PostSend(p.Now(), qp, wr); err != nil {
		return 0, err
	}
	cqe := i.sendDisp.Wait(p, wr.WRID)
	if err := statusErr(cqe.Status); err != nil {
		return 0, err
	}
	return result, nil
}

// resolveWord resolves (lh, off) to the node and physical address of
// an 8-byte word, which must not straddle chunks.
func (i *Instance) resolveWord(h LH, off int64, need Perm, ten uint16) (int, hostmem.PAddr, error) {
	e, err := i.lookupLH(h, ten)
	if err != nil {
		return 0, 0, err
	}
	if e.perm&need == 0 {
		return 0, 0, ErrPermission
	}
	parts, err := split(e.ls, off, 8)
	if err != nil {
		return 0, 0, err
	}
	if len(parts) != 1 {
		return 0, 0, ErrBounds
	}
	pt := parts[0]
	pa := pt.c.pa + hostmem.PAddr(pt.cOff)
	if pa&7 != 0 {
		return 0, 0, ErrAlign
	}
	return pt.c.node, pa, nil
}

// fetchAddInternal implements LT_fetch-add on LMR space.
func (i *Instance) fetchAddInternal(p *simtime.Proc, h LH, off int64, delta uint64, pri Priority, ten uint16) (uint64, error) {
	p.Work(i.cfg.LITECheck)
	node, pa, err := i.resolveWord(h, off, PermWrite, ten)
	if err != nil {
		return 0, err
	}
	return i.rawFetchAdd(p, node, pa, delta, pri)
}

// testSetInternal implements LT_test-set on LMR space: it atomically
// sets the word to val if it was zero and returns the previous value.
func (i *Instance) testSetInternal(p *simtime.Proc, h LH, off int64, val uint64, pri Priority, ten uint16) (uint64, error) {
	p.Work(i.cfg.LITECheck)
	node, pa, err := i.resolveWord(h, off, PermWrite, ten)
	if err != nil {
		return 0, err
	}
	return i.rawCmpSwap(p, node, pa, 0, val, pri)
}

// casInternal implements LT_cas on LMR space: compare the word at
// (h, off) with cmp and, if equal, replace it with swap. Returns the
// previous value; the caller infers success by comparing it to cmp.
func (i *Instance) casInternal(p *simtime.Proc, h LH, off int64, cmp, swap uint64, pri Priority, ten uint16) (uint64, error) {
	p.Work(i.cfg.LITECheck)
	node, pa, err := i.resolveWord(h, off, PermWrite, ten)
	if err != nil {
		return 0, err
	}
	return i.rawCmpSwap(p, node, pa, cmp, swap, pri)
}

// casMaskedInternal implements masked LT_cas on LMR space (ConnectX
// extended atomics: compare under cmpMask, swap bits under swapMask).
func (i *Instance) casMaskedInternal(p *simtime.Proc, h LH, off int64, cmp, swap, cmpMask, swapMask uint64, pri Priority, ten uint16) (uint64, error) {
	p.Work(i.cfg.LITECheck)
	node, pa, err := i.resolveWord(h, off, PermWrite, ten)
	if err != nil {
		return 0, err
	}
	return i.rawMaskCmpSwap(p, node, pa, cmp, swap, cmpMask, swapMask, pri)
}

// faaMaskedInternal implements masked LT_faa on LMR space: fetch-add
// with carries confined to the fields delimited by boundary.
func (i *Instance) faaMaskedInternal(p *simtime.Proc, h LH, off int64, delta, boundary uint64, pri Priority, ten uint16) (uint64, error) {
	p.Work(i.cfg.LITECheck)
	node, pa, err := i.resolveWord(h, off, PermWrite, ten)
	if err != nil {
		return 0, err
	}
	return i.rawMaskFetchAdd(p, node, pa, delta, boundary, pri)
}

// ---- distributed locks (§7.2) ----

// Lock names a LITE distributed lock: a 64-bit word at an owner node
// plus a FIFO wait queue maintained there.
type Lock struct {
	ID    uint64
	Owner int
	pa    hostmem.PAddr
}

// lockState is the owner-node bookkeeping for one lock.
type lockState struct {
	pa            hostmem.PAddr
	waiting       []*Call // parked LT_lock wait RPCs, FIFO
	pendingGrants int     // releases that arrived before the wait RPC
}

// Lock-protocol opcodes carried over funcLock.
const (
	lopWait byte = iota + 1
	lopRelease
	lopAlloc
)

// allocLockInternal creates a lock whose word and wait queue live at
// the owner node.
func (i *Instance) allocLockInternal(p *simtime.Proc, owner int, pri Priority) (Lock, error) {
	p.Work(i.cfg.LITECheck)
	if owner == i.node.ID {
		return i.allocLockLocal(), nil
	}
	out, err := i.rpcInternal(p, owner, funcLock, []byte{lopAlloc}, 17, pri)
	if err != nil {
		return Lock{}, err
	}
	if len(out) < 17 || out[0] != cstOK {
		return Lock{}, ErrRemoteFailed
	}
	return Lock{
		ID:    binary.LittleEndian.Uint64(out[1:]),
		Owner: owner,
		pa:    hostmem.PAddr(binary.LittleEndian.Uint64(out[9:])),
	}, nil
}

func (i *Instance) allocLockLocal() Lock {
	i.lockSeq++
	id := uint64(i.node.ID)<<32 | i.lockSeq&0xffffffff
	pa := i.scratchAlloc(8)
	_ = i.node.Mem.Write(pa, make([]byte, 8))
	i.locks[id] = &lockState{pa: pa}
	return Lock{ID: id, Owner: i.node.ID, pa: pa}
}

// lockInternal implements LT_lock: one fetch-add acquires an
// uncontended lock in a single RTT (~2.2 us in the paper); contended
// callers park in a FIFO queue at the owner and are woken by exactly
// one message, minimizing network traffic (§7.2).
func (i *Instance) lockInternal(p *simtime.Proc, lk Lock, pri Priority) error {
	p.Work(i.cfg.LITECheck)
	old, err := i.rawFetchAdd(p, lk.Owner, lk.pa, 1, pri)
	if err != nil {
		return err
	}
	if old == 0 {
		return nil
	}
	req := make([]byte, 9)
	req[0] = lopWait
	binary.LittleEndian.PutUint64(req[1:], lk.ID)
	// The reply IS the grant; it arrives when the lock is handed over,
	// so wait without an RPC timeout.
	_, err = i.rpcInternalT(p, lk.Owner, funcLock, req, 1, pri, 0)
	return err
}

// unlockInternal implements LT_unlock.
func (i *Instance) unlockInternal(p *simtime.Proc, lk Lock, pri Priority) error {
	p.Work(i.cfg.LITECheck)
	old, err := i.rawFetchAdd(p, lk.Owner, lk.pa, ^uint64(0), pri) // -1
	if err != nil {
		return err
	}
	if old <= 1 {
		return nil // no waiters
	}
	req := make([]byte, 9)
	req[0] = lopRelease
	binary.LittleEndian.PutUint64(req[1:], lk.ID)
	_, err = i.rpcInternal(p, lk.Owner, funcLock, req, 1, pri)
	return err
}

// handleLock executes lock-protocol requests at the owner node.
func (i *Instance) handleLock(p *simtime.Proc, c *Call) {
	in := c.Input
	if len(in) < 1 {
		_ = i.replyRPCInternal(p, c, []byte{cstBadArg}, PriHigh)
		return
	}
	switch in[0] {
	case lopAlloc:
		lk := i.allocLockLocal()
		out := make([]byte, 17)
		out[0] = cstOK
		binary.LittleEndian.PutUint64(out[1:], lk.ID)
		binary.LittleEndian.PutUint64(out[9:], uint64(lk.pa))
		_ = i.replyRPCInternal(p, c, out, PriHigh)

	case lopWait:
		id := binary.LittleEndian.Uint64(in[1:])
		st, ok := i.locks[id]
		if !ok {
			_ = i.replyRPCInternal(p, c, []byte{cstBadArg}, PriHigh)
			return
		}
		if st.pendingGrants > 0 {
			st.pendingGrants--
			_ = i.replyRPCInternal(p, c, []byte{cstOK}, PriHigh)
			return
		}
		st.waiting = append(st.waiting, c) // grant later

	case lopRelease:
		id := binary.LittleEndian.Uint64(in[1:])
		st, ok := i.locks[id]
		if !ok {
			_ = i.replyRPCInternal(p, c, []byte{cstBadArg}, PriHigh)
			return
		}
		if len(st.waiting) > 0 {
			next := st.waiting[0]
			st.waiting = st.waiting[1:]
			_ = i.replyRPCInternal(p, next, []byte{cstOK}, PriHigh)
		} else {
			st.pendingGrants++
		}
		_ = i.replyRPCInternal(p, c, []byte{cstOK}, PriHigh)

	default:
		_ = i.replyRPCInternal(p, c, []byte{cstBadArg}, PriHigh)
	}
}

// ---- distributed barrier (§7.2) ----

// barrierState tracks arrivals for one barrier generation at the
// manager node.
type barrierState struct {
	arrived []*Call
}

// barrierInternal implements LT_barrier: wait until n participants
// have reached barrier id.
func (i *Instance) barrierInternal(p *simtime.Proc, id uint64, n int, pri Priority) error {
	p.Work(i.cfg.LITECheck)
	req := make([]byte, 13)
	binary.LittleEndian.PutUint64(req[0:], id)
	binary.LittleEndian.PutUint32(req[8:], uint32(n))
	out, err := i.rpcInternalT(p, i.opts.ManagerNode, funcBarrier, req, 1, pri, 0)
	if err != nil {
		return err
	}
	if len(out) < 1 || out[0] != cstOK {
		return ErrRemoteFailed
	}
	return nil
}

// handleBarrier executes barrier arrivals at the manager node.
func (i *Instance) handleBarrier(p *simtime.Proc, c *Call) {
	if len(c.Input) < 12 {
		_ = i.replyRPCInternal(p, c, []byte{cstBadArg}, PriHigh)
		return
	}
	id := binary.LittleEndian.Uint64(c.Input[0:])
	n := int(binary.LittleEndian.Uint32(c.Input[8:]))
	bs := i.dep.barriers[id]
	if bs == nil {
		bs = &barrierState{}
		i.dep.barriers[id] = bs
	}
	bs.arrived = append(bs.arrived, c)
	if len(bs.arrived) >= n {
		for _, w := range bs.arrived {
			_ = i.replyRPCInternal(p, w, []byte{cstOK}, PriHigh)
		}
		delete(i.dep.barriers, id)
	}
}
