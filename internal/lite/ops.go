package lite

import (
	"lite/internal/hostmem"
	"lite/internal/rnic"
	"lite/internal/simtime"
)

// part is one piece of an LMR access that falls in a single chunk.
type part struct {
	c      chunk
	cOff   int64 // offset within the chunk
	bufOff int64 // offset within the caller's buffer
	n      int64
}

// split decomposes an access [off, off+n) into per-chunk parts.
func split(ls *lmrState, off, n int64) ([]part, error) {
	if off < 0 || n < 0 || off+n > ls.size {
		return nil, ErrBounds
	}
	var out []part
	var base, bufOff int64
	remain := n
	for _, c := range ls.chunks {
		if remain == 0 {
			break
		}
		end := base + c.size
		if off < end {
			start := off - base
			if start < 0 {
				start = 0
			}
			take := c.size - start
			if take > remain {
				take = remain
			}
			out = append(out, part{c: c, cOff: start, bufOff: bufOff, n: take})
			bufOff += take
			off += take
			remain -= take
		}
		base = end
	}
	if remain != 0 {
		return nil, ErrBounds
	}
	return out, nil
}

func statusErr(s rnic.Status) error {
	switch s {
	case rnic.StatusOK:
		return nil
	case rnic.StatusTimeout:
		return ErrTimeout
	case rnic.StatusAccessError, rnic.StatusBadKey:
		return ErrPermission
	case rnic.StatusLengthError:
		return ErrBounds
	}
	return ErrRemoteFailed
}

// readInternal implements LT_read: a one-sided RDMA read of LMR space
// into buf. Local chunks are served by memcpy; remote chunks by native
// one-sided reads against the target node's global physical MR — no
// remote CPU, kernel, or LITE involvement (§4).
func (i *Instance) readInternal(p *simtime.Proc, h LH, off int64, buf []byte, pri Priority, ten uint16) error {
	e, err := i.lookupLH(h, ten)
	if err != nil {
		return err
	}
	if e.perm&PermRead == 0 {
		return ErrPermission
	}
	p.Work(i.cfg.LITECheck)
	parts, err := split(e.ls, off, int64(len(buf)))
	if err != nil {
		return err
	}
	return i.runParts(p, parts, buf, rnic.OpRead, pri)
}

// writeInternal implements LT_write symmetrically to readInternal.
func (i *Instance) writeInternal(p *simtime.Proc, h LH, off int64, data []byte, pri Priority, ten uint16) error {
	e, err := i.lookupLH(h, ten)
	if err != nil {
		return err
	}
	if e.perm&PermWrite == 0 {
		return ErrPermission
	}
	p.Work(i.cfg.LITECheck)
	parts, err := split(e.ls, off, int64(len(data)))
	if err != nil {
		return err
	}
	return i.runParts(p, parts, data, rnic.OpWrite, pri)
}

// runParts executes the per-chunk pieces of a read or write: local
// pieces via host memcpy, remote pieces as parallel one-sided verbs,
// then waits for all completions.
func (i *Instance) runParts(p *simtime.Proc, parts []part, buf []byte, kind rnic.OpKind, pri Priority) error {
	var total int64
	for _, pt := range parts {
		if pt.c.node != i.node.ID {
			total += pt.n
		}
	}
	i.qos.throttle(p, pri, total)
	start := p.Now()

	type outstanding struct {
		wrid    uint64
		release func()
	}
	var waits []outstanding
	for _, pt := range parts {
		seg := buf[pt.bufOff : pt.bufOff+pt.n]
		if pt.c.node == i.node.ID {
			// Local piece: direct physical access, one copy.
			i.memcpyCost(p, pt.n)
			if kind == rnic.OpRead {
				if err := i.node.Mem.Read(pt.c.pa+hostmem.PAddr(pt.cOff), seg); err != nil {
					return err
				}
			} else {
				if err := i.node.Mem.Write(pt.c.pa+hostmem.PAddr(pt.cOff), seg); err != nil {
					return err
				}
			}
			continue
		}
		qp, _, release := i.pickQP(p, pt.c.node, pri)
		wrid := i.wrID()
		p.Work(i.cfg.NICDoorbell)
		err := i.node.NIC.PostSend(p.Now(), qp, rnic.WR{
			Kind:      kind,
			WRID:      wrid,
			Signaled:  true,
			LocalBuf:  seg,
			Len:       pt.n,
			RemoteKey: i.dep.Instances[pt.c.node].globalMR.Key(),
			RemoteOff: int64(pt.c.pa) + pt.cOff,
		})
		if err != nil {
			release()
			return err
		}
		waits = append(waits, outstanding{wrid, release})
	}
	var firstErr error
	for _, w := range waits {
		cqe := i.sendDisp.Wait(p, w.wrid)
		w.release()
		if err := statusErr(cqe.Status); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if total > 0 {
		i.qos.record(p, pri, total, p.Now()-start)
	}
	return firstErr
}

// memsetInternal implements LT_memset by sending the command to the
// node that stores each affected chunk, which performs a local memset
// and replies — cheaper than shipping the pattern over the wire (§7.1).
func (i *Instance) memsetInternal(p *simtime.Proc, h LH, off int64, val byte, n int64, pri Priority, ten uint16) error {
	e, err := i.lookupLH(h, ten)
	if err != nil {
		return err
	}
	if e.perm&PermWrite == 0 {
		return ErrPermission
	}
	p.Work(i.cfg.LITECheck)
	parts, err := split(e.ls, off, n)
	if err != nil {
		return err
	}
	for _, pt := range parts {
		if pt.c.node == i.node.ID {
			i.memcpyCost(p, pt.n)
			if err := memsetPhys(i, pt.c.pa+hostmem.PAddr(pt.cOff), val, pt.n); err != nil {
				return err
			}
			continue
		}
		if err := i.ctlMemset(p, pt.c.node, pt.c.pa+hostmem.PAddr(pt.cOff), val, pt.n, pri); err != nil {
			return err
		}
	}
	return nil
}

func memsetPhys(i *Instance, pa hostmem.PAddr, val byte, n int64) error {
	buf := make([]byte, n)
	if val != 0 {
		for k := range buf {
			buf[k] = val
		}
	}
	return i.node.Mem.Write(pa, buf)
}

// memcpyInternal implements LT_memcpy and LT_memmove: LITE sends an
// RPC to the node storing the source; that node performs a local
// memcpy if the destination is co-located, or an LT_write to the
// destination node otherwise, then replies (§7.1).
func (i *Instance) memcpyInternal(p *simtime.Proc, dst LH, dstOff int64, src LH, srcOff int64, n int64, pri Priority, ten uint16) error {
	de, err := i.lookupLH(dst, ten)
	if err != nil {
		return err
	}
	se, err := i.lookupLH(src, ten)
	if err != nil {
		return err
	}
	if de.perm&PermWrite == 0 || se.perm&PermRead == 0 {
		return ErrPermission
	}
	p.Work(i.cfg.LITECheck)
	sparts, err := split(se.ls, srcOff, n)
	if err != nil {
		return err
	}
	dparts, err := split(de.ls, dstOff, n)
	if err != nil {
		return err
	}
	// Sub-split so each piece is contiguous on both sides.
	for _, piece := range alignParts(sparts, dparts) {
		sp, dp := piece.src, piece.dst
		if sp.c.node == i.node.ID {
			// Source is local: read here, write through the normal path.
			if err := i.copySegment(p, sp, dp, pri); err != nil {
				return err
			}
			continue
		}
		// Ship the command to the source node.
		if err := i.ctlMemcpy(p, sp.c.node,
			sp.c.pa+hostmem.PAddr(sp.cOff),
			dp.c.node, dp.c.pa+hostmem.PAddr(dp.cOff), piece.n, pri); err != nil {
			return err
		}
	}
	return nil
}

// alignedPiece pairs a source and destination part of equal length.
type alignedPiece struct {
	src, dst part
	n        int64
}

// alignParts zips two part lists covering the same total length into
// pieces contiguous on both sides.
func alignParts(src, dst []part) []alignedPiece {
	var out []alignedPiece
	si, di := 0, 0
	var sUsed, dUsed int64
	for si < len(src) && di < len(dst) {
		s, d := src[si], dst[di]
		n := s.n - sUsed
		if d.n-dUsed < n {
			n = d.n - dUsed
		}
		out = append(out, alignedPiece{
			src: part{c: s.c, cOff: s.cOff + sUsed, n: n},
			dst: part{c: d.c, cOff: d.cOff + dUsed, n: n},
			n:   n,
		})
		sUsed += n
		dUsed += n
		if sUsed == s.n {
			si++
			sUsed = 0
		}
		if dUsed == d.n {
			di++
			dUsed = 0
		}
	}
	return out
}

// copySegment copies one aligned piece whose source chunk is local.
func (i *Instance) copySegment(p *simtime.Proc, sp, dp part, pri Priority) error {
	buf := make([]byte, sp.n)
	i.memcpyCost(p, sp.n)
	if err := i.node.Mem.Read(sp.c.pa+hostmem.PAddr(sp.cOff), buf); err != nil {
		return err
	}
	if dp.c.node == i.node.ID {
		i.memcpyCost(p, sp.n)
		return i.node.Mem.Write(dp.c.pa+hostmem.PAddr(dp.cOff), buf)
	}
	return i.rawWrite(p, dp.c.node, dp.c.pa+hostmem.PAddr(dp.cOff), buf, pri)
}

// rawWrite performs a one-sided write of buf to a physical address on
// a remote node through the shared QPs.
func (i *Instance) rawWrite(p *simtime.Proc, node int, pa hostmem.PAddr, buf []byte, pri Priority) error {
	if node == i.node.ID {
		i.memcpyCost(p, int64(len(buf)))
		return i.node.Mem.Write(pa, buf)
	}
	i.qos.throttle(p, pri, int64(len(buf)))
	start := p.Now()
	qp, _, release := i.pickQP(p, node, pri)
	defer release()
	wrid := i.wrID()
	p.Work(i.cfg.NICDoorbell)
	err := i.node.NIC.PostSend(p.Now(), qp, rnic.WR{
		Kind: rnic.OpWrite, WRID: wrid, Signaled: true,
		LocalBuf: buf, Len: int64(len(buf)),
		RemoteKey: i.dep.Instances[node].globalMR.Key(),
		RemoteOff: int64(pa),
	})
	if err != nil {
		return err
	}
	cqe := i.sendDisp.Wait(p, wrid)
	i.qos.record(p, pri, int64(len(buf)), p.Now()-start)
	return statusErr(cqe.Status)
}

// rawRead performs a one-sided read from a physical address on a
// remote node into buf.
func (i *Instance) rawRead(p *simtime.Proc, node int, pa hostmem.PAddr, buf []byte, pri Priority) error {
	if node == i.node.ID {
		i.memcpyCost(p, int64(len(buf)))
		return i.node.Mem.Read(pa, buf)
	}
	i.qos.throttle(p, pri, int64(len(buf)))
	start := p.Now()
	qp, _, release := i.pickQP(p, node, pri)
	defer release()
	wrid := i.wrID()
	p.Work(i.cfg.NICDoorbell)
	err := i.node.NIC.PostSend(p.Now(), qp, rnic.WR{
		Kind: rnic.OpRead, WRID: wrid, Signaled: true,
		LocalBuf: buf, Len: int64(len(buf)),
		RemoteKey: i.dep.Instances[node].globalMR.Key(),
		RemoteOff: int64(pa),
	})
	if err != nil {
		return err
	}
	cqe := i.sendDisp.Wait(p, wrid)
	i.qos.record(p, pri, int64(len(buf)), p.Now()-start)
	return statusErr(cqe.Status)
}

// copyChunk copies the contents of chunk c into dsts (which together
// cover c.size), used by LMR migration.
func (i *Instance) copyChunk(p *simtime.Proc, c chunk, dsts []chunk, scratch []byte, pri Priority) error {
	var buf []byte
	if int64(cap(scratch)) < c.size {
		buf = make([]byte, c.size)
	} else {
		buf = scratch[:c.size]
	}
	if c.node == i.node.ID {
		i.memcpyCost(p, c.size)
		if err := i.node.Mem.Read(c.pa, buf); err != nil {
			return err
		}
	} else {
		if err := i.rawRead(p, c.node, c.pa, buf, pri); err != nil {
			return err
		}
	}
	var off int64
	for _, d := range dsts {
		seg := buf[off : off+d.size]
		if d.node == i.node.ID {
			i.memcpyCost(p, d.size)
			if err := i.node.Mem.Write(d.pa, seg); err != nil {
				return err
			}
		} else if err := i.rawWrite(p, d.node, d.pa, seg, pri); err != nil {
			return err
		}
		off += d.size
	}
	return nil
}
