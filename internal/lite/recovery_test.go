package lite

import (
	"testing"
	"time"

	"lite/internal/simtime"
)

func TestManagerDirectoryRecovery(t *testing.T) {
	cls, dep := testDep(t, 3)
	phase := 0
	var cond simtime.Cond
	bump := func(p *simtime.Proc) { phase++; cond.Broadcast(p.Env()) }
	wait := func(p *simtime.Proc, n int) {
		for phase < n {
			cond.Wait(p)
		}
	}
	cls.GoOn(1, "owner", func(p *simtime.Proc) {
		c := dep.Instance(1).KernelClient()
		h, err := c.Malloc(p, 4096, "survivor", PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Write(p, h, 0, []byte("persisted")); err != nil {
			t.Fatal(err)
		}
		// Anonymous LMRs and foreign-mastered names must not confuse
		// recovery.
		if _, err := c.Malloc(p, 4096, "", PermRead); err != nil {
			t.Fatal(err)
		}
		bump(p)
		wait(p, 2)
		// The manager lost its directory; recovery republishes names.
		if err := dep.RecoverManagerDirectory(p); err != nil {
			t.Fatal(err)
		}
		bump(p)
	})
	cls.GoOn(2, "mapper", func(p *simtime.Proc) {
		wait(p, 1)
		c := dep.Instance(2).KernelClient()
		if _, err := c.Map(p, "survivor"); err != nil {
			t.Fatalf("map before crash: %v", err)
		}
		dep.CrashManagerDirectory()
		if _, err := c.Map(p, "survivor"); err != ErrNoSuchName {
			t.Fatalf("map after crash err = %v, want ErrNoSuchName", err)
		}
		bump(p)
		wait(p, 3)
		h, err := c.Map(p, "survivor")
		if err != nil {
			t.Fatalf("map after recovery: %v", err)
		}
		got := make([]byte, 9)
		if err := c.Read(p, h, 0, got); err != nil {
			t.Fatal(err)
		}
		if string(got) != "persisted" {
			t.Fatalf("data after recovery = %q", got)
		}
	})
	run(t, cls)
}

func TestReRegisterNamesIdempotent(t *testing.T) {
	cls, dep := testDep(t, 2)
	cls.GoOn(1, "owner", func(p *simtime.Proc) {
		c := dep.Instance(1).KernelClient()
		if _, err := c.Malloc(p, 4096, "idem", PermRead); err != nil {
			t.Fatal(err)
		}
		// Without a crash, recovery must be a no-op.
		if err := dep.Instance(1).ReRegisterNames(p); err != nil {
			t.Fatal(err)
		}
		p.Sleep(10 * time.Microsecond)
		if _, err := c.Map(p, "idem"); err != nil {
			t.Fatalf("name lost by idempotent re-register: %v", err)
		}
	})
	run(t, cls)
}

// The simulation is deterministic: the same workload produces the same
// virtual timeline, bit for bit.
func TestDeterministicReplay(t *testing.T) {
	runOnce := func() simtime.Time {
		cls, dep := testDep(t, 3)
		startEchoServerN(cls, dep, 2)
		cls.GoOn(0, "client", func(p *simtime.Proc) {
			c := dep.Instance(0).KernelClient()
			h, _ := c.MallocAt(p, []int{1}, 1<<20, "det", PermRead|PermWrite)
			buf := make([]byte, 4096)
			for i := 0; i < 40; i++ {
				_ = c.Write(p, h, int64(i)*4096, buf)
				if _, err := c.RPC(p, 2, echoFn, buf[:64], 128); err != nil {
					t.Fatal(err)
				}
			}
		})
		run(t, cls)
		return cls.Env.Now()
	}
	first := runOnce()
	for i := 0; i < 3; i++ {
		if again := runOnce(); again != first {
			t.Fatalf("run %d ended at %v, first at %v", i, again, first)
		}
	}
}
