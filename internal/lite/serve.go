package lite

import (
	"fmt"

	"lite/internal/simtime"
)

// ServeRPC registers an application RPC function and spawns a bounded
// pool of server threads for it. The pool size is the concurrency
// limit on the serving side: calls beyond it queue at the function,
// and — when Options.AdmissionHighWater is set — queue past the
// high-water mark is shed back to clients with ErrOverloaded instead
// of being allowed to pile up into ring-full timeouts. Each worker is
// a daemon thread running the LT_recvRPC / handler / LT_replyRPC loop
// with the combined reply+receive call, mirroring the paper's
// multi-threaded RPC servers (§5.2).
//
// The handler returns the reply payload; it runs on the worker's
// simulated thread, so any p.Work it performs is the per-call service
// time that determines the pool's capacity.
func (i *Instance) ServeRPC(fn, workers int, handler func(p *simtime.Proc, c *Call) []byte) error {
	if workers < 1 {
		return fmt.Errorf("lite: ServeRPC needs at least one worker, got %d", workers)
	}
	if err := i.RegisterRPC(fn); err != nil {
		return err
	}
	i.spawnServePool(fn, workers, handler)
	// The workers are daemons of the current incarnation and die with
	// a crash, but the registration (i.funcs) survives a restart —
	// re-arm the pool when the node comes back so a restarted server
	// resumes serving. Runs after the instance's own restart hook
	// (registration order), so state is already reset.
	i.cls.OnNodeUp(func(p *simtime.Proc, node int) {
		if node == i.node.ID {
			i.spawnServePool(fn, workers, handler)
		}
	})
	return nil
}

// spawnServePool starts one incarnation's worth of server threads.
func (i *Instance) spawnServePool(fn, workers int, handler func(p *simtime.Proc, c *Call) []byte) {
	for w := 0; w < workers; w++ {
		i.cls.GoDaemonOn(i.node.ID, fmt.Sprintf("lite-serve-%d", fn), func(p *simtime.Proc) {
			c := i.KernelClient()
			call, err := c.RecvRPC(p, fn)
			if err != nil {
				return
			}
			for {
				call, err = c.ReplyRecvRPC(p, call, handler(p, call), fn)
				if err != nil {
					return
				}
			}
		})
	}
}
