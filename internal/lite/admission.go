package lite

import "lite/internal/simtime"

// Cost-aware, per-client-fair admission control.
//
// The depth-only policy (Options.AdmissionHighWater alone) treats every
// queued call as equal, so one greedy client can occupy the whole
// pending-call budget and starve everyone else — exactly the
// multi-tenant sharing problem LITE's shared kernel-level RPC service
// (§5, §6) exists to arbitrate. The fair policy keeps, per function, a
// cost model and per-client in-flight accounting:
//
//   - cost of one call = input bytes + the EWMA of the handler's
//     observed service time (one cost unit per byte and per nanosecond;
//     both are "how long this call will occupy the server" proxies:
//     bytes for the data motion, the EWMA for the CPU);
//   - budget = AdmissionHighWater × the average per-call cost, i.e. the
//     depth knob re-expressed in cost units, so operators keep one
//     tuning parameter;
//   - each client may hold budget/activeClients of in-flight cost (its
//     fair share), plus a deficit-round-robin carryover: a round ends
//     when one budget's worth of cost has been admitted, and a client
//     that under-used its share while holding less than a share in
//     flight banks the unused part (capped at two shares) as deficit;
//   - a call past the share line is admitted only if the marginal cost
//     is covered 1:1 by banked deficit, and otherwise shed with a
//     Retry-After hint sized to when a slot for it should free up.
//
// All state is integers, mutated only from the node's poller and server
// threads inside the deterministic simulation, so runs replay bit for
// bit.

const (
	// admEwmaShift is the EWMA decay: est += (sample - est) >> shift,
	// i.e. alpha = 1/8 — slow enough to ride out bimodal handlers,
	// fast enough to track a real shift within ~16 calls.
	admEwmaShift = 3

	// maxAdmCost clamps any single observation or per-call cost so a
	// pathological sample (an hours-long handler, a near-2^63 byte
	// claim) cannot overflow the int64 accounting that sums them.
	maxAdmCost = int64(1) << 40

	// maxAdmHint caps the Retry-After hint carried in a shed
	// notification; a hint is advice about queue drain, not a lease,
	// and must never park a client for longer than a timeout would.
	maxAdmHint = simtime.Time(2_000_000) // 2ms
)

// ewmaInt is an integer exponentially-weighted moving average. The
// first observation primes it; until then value() is zero and primed
// reports false, which admit() uses to fall back to depth-only.
type ewmaInt struct {
	v      int64
	primed bool
}

func (e *ewmaInt) observe(s int64) {
	if s < 0 {
		s = 0
	}
	if s > maxAdmCost {
		s = maxAdmCost
	}
	if !e.primed {
		e.v = s
		e.primed = true
		return
	}
	e.v += (s - e.v) >> admEwmaShift
}

// clientAdm is one client's admission accounting for one function.
type clientAdm struct {
	cost    int64 // admitted cost still in flight
	calls   int   // admitted calls still in flight
	used    int64 // cost admitted during the current DRR round
	deficit int64 // unused share carried from the previous round
}

// fnAdm is the per-function fair-admission state.
type fnAdm struct {
	svc     ewmaInt // observed handler service time, nanoseconds
	in      ewmaInt // observed input size, bytes
	total   int64   // admitted in-flight cost across all clients
	round   int64   // cost admitted in the current DRR round
	clients map[int]*clientAdm
}

func newFnAdm() *fnAdm { return &fnAdm{clients: make(map[int]*clientAdm)} }

// callCost estimates the cost of admitting one call with the given
// input size.
func (a *fnAdm) callCost(bytes int64) int64 {
	c := bytes + a.svc.v
	if c < 1 {
		c = 1
	}
	if c > maxAdmCost {
		c = maxAdmCost
	}
	return c
}

// budget is the total in-flight cost the function accepts: the depth
// high-water mark expressed in cost units via the average call cost.
func (a *fnAdm) budget(hw int) int64 {
	unit := a.svc.v + a.in.v
	if unit < 1 {
		unit = 1
	}
	b := int64(hw) * unit
	if b < 1 {
		b = 1
	}
	return b
}

func (a *fnAdm) client(src int) *clientAdm {
	c := a.clients[src]
	if c == nil {
		c = &clientAdm{}
		a.clients[src] = c
	}
	return c
}

// active counts clients with admitted work in flight, always including
// the arriving client itself (a newcomer deserves a share before it
// holds anything). Counting over the map is order-independent, so map
// iteration cannot perturb the result.
func (a *fnAdm) active(src int) int {
	n := 0
	seen := false
	for id, c := range a.clients {
		if c.calls > 0 || c.cost > 0 {
			n++
			if id == src {
				seen = true
			}
		}
	}
	if !seen {
		n++
	}
	return n
}

// endRound closes a DRR round: a client that under-used its share
// banks the unused part as deficit, capped at two shares so an idle
// client cannot hoard unbounded credit; a client at or over its share
// starts the next round with none. Clients with nothing in flight and
// no deficit are garbage-collected. Every per-client update is
// independent, so map iteration order does not affect the outcome.
func (a *fnAdm) endRound(share int64) {
	for id, c := range a.clients {
		// Deficit is for clients that genuinely could not use their
		// share — under-admitted this round AND holding less than a
		// share in flight when it closed. A persistently over-share
		// client whose round usage merely dipped must not earn credit
		// it would immediately spend to stay over share.
		if spare := share - c.used; spare > 0 && c.cost < share {
			c.deficit += spare
			if c.deficit > 2*share {
				c.deficit = 2 * share
			}
		} else {
			c.deficit = 0
		}
		c.used = 0
		if c.calls == 0 && c.cost == 0 && c.deficit == 0 {
			delete(a.clients, id)
		}
	}
	a.round = 0
}

// admit decides one arrival from src with the given input size, at the
// configured high-water mark and current queue depth. On admission it
// returns the charged cost, to be released via complete() when the
// reply posts. On a shed it returns a Retry-After hint: the estimated
// time until the client's in-flight work drains enough to admit one
// more call.
func (a *fnAdm) admit(src int, bytes int64, hw, depth int) (cost int64, hint simtime.Time, ok bool) {
	a.in.observe(bytes)
	cost = a.callCost(bytes)
	if !a.svc.primed {
		// Cold start: no service-time estimate means no cost model;
		// behave exactly like the depth-only policy until the first
		// completion primes the EWMA. The accounting below still runs
		// so in-flight state is consistent once the model wakes up.
		if depth >= hw {
			return 0, 0, false
		}
	} else {
		bud := a.budget(hw)
		share := bud / int64(a.active(src))
		if share < 1 {
			share = 1
		}
		if a.round >= bud {
			a.endRound(share)
		}
		c := a.client(src)
		if over := c.cost + cost - share; over > 0 {
			// Over share: the part of this call past the share line
			// must be covered 1:1 by deficit banked in under-used
			// earlier rounds. Admitting on spare total budget instead
			// was tried and rejected: spare slots open in proportion
			// to arrival rate, so a work-conservation rule hands
			// nearly all of them to the most aggressive client and
			// quietly re-creates the depth-only policy's proportional
			// allocation.
			spend := cost
			if over < cost {
				spend = over
			}
			if spend > c.deficit {
				h := simtime.Time(a.svc.v) * simtime.Time(c.calls+1)
				if h > maxAdmHint {
					h = maxAdmHint
				}
				return 0, h, false
			}
			c.deficit -= spend
		}
	}
	c := a.client(src)
	c.cost += cost
	c.calls++
	c.used += cost
	a.total += cost
	a.round += cost
	return cost, 0, true
}

// complete releases an admitted call's cost when its reply posts.
func (a *fnAdm) complete(src int, cost int64) {
	c := a.clients[src]
	if c == nil {
		return
	}
	c.cost -= cost
	if c.cost < 0 {
		c.cost = 0
	}
	if c.calls > 0 {
		c.calls--
	}
	a.total -= cost
	if a.total < 0 {
		a.total = 0
	}
	if c.calls == 0 && c.cost == 0 && c.deficit == 0 && c.used == 0 {
		delete(a.clients, src)
	}
}

// admFor returns (lazily creating) the fair-admission state for fn.
func (i *Instance) admFor(fn int) *fnAdm {
	if i.adm == nil {
		i.adm = make(map[int]*fnAdm)
	}
	a := i.adm[fn]
	if a == nil {
		a = newFnAdm()
		i.adm[fn] = a
	}
	return a
}

// admServiceObserve feeds one observed handler service time (dequeue
// to reply, the same interval the lite.rpc.server span covers) into
// the function's estimator. Cheap integer bookkeeping: it never
// advances virtual time, so observing with the fair policy off cannot
// perturb a depth-only timeline.
func (i *Instance) admServiceObserve(fn int, d simtime.Time) {
	if fn < FirstUserFunc {
		return
	}
	i.admFor(fn).svc.observe(int64(d))
}

// admRelease returns an admitted call's cost to its function's budget
// when the call replies.
func (i *Instance) admRelease(c *Call) {
	if c.admCost <= 0 {
		return
	}
	if a := i.adm[c.Func]; a != nil {
		a.complete(c.Src, c.admCost)
	}
	c.admCost = 0
}
