package lite

import (
	"lite/internal/params"
	"lite/internal/simtime"
)

// Cost-aware, per-client-fair admission control.
//
// The depth-only policy (Options.AdmissionHighWater alone) treats every
// queued call as equal, so one greedy client can occupy the whole
// pending-call budget and starve everyone else — exactly the
// multi-tenant sharing problem LITE's shared kernel-level RPC service
// (§5, §6) exists to arbitrate. The fair policy keeps, per function, a
// cost model and per-client in-flight accounting:
//
//   - cost of one call = input bytes + the EWMA of the handler's
//     observed service time (one cost unit per byte and per nanosecond;
//     both are "how long this call will occupy the server" proxies:
//     bytes for the data motion, the EWMA for the CPU);
//   - budget = AdmissionHighWater × the average per-call cost, i.e. the
//     depth knob re-expressed in cost units, so operators keep one
//     tuning parameter;
//   - each client may hold budget/activeClients of in-flight cost (its
//     fair share), plus a deficit-round-robin carryover: a round ends
//     when one budget's worth of cost has been admitted, and a client
//     that under-used its share while holding less than a share in
//     flight banks the unused part (capped at two shares) as deficit;
//   - a call past the share line is admitted only if the marginal cost
//     is covered 1:1 by banked deficit, and otherwise shed with a
//     Retry-After hint sized to when a slot for it should free up.
//
// All state is integers, mutated only from the node's poller and server
// threads inside the deterministic simulation, so runs replay bit for
// bit.

const (
	// admEwmaShift is the EWMA decay: est += (sample - est) >> shift,
	// i.e. alpha = 1/8 — slow enough to ride out bimodal handlers,
	// fast enough to track a real shift within ~16 calls.
	admEwmaShift = 3

	// maxAdmCost clamps any single observation or per-call cost so a
	// pathological sample (an hours-long handler, a near-2^63 byte
	// claim) cannot overflow the int64 accounting that sums them.
	maxAdmCost = int64(1) << 40

	// maxTenantWeight clamps a tenant's QoS weight so weight x accrual
	// products stay far from int64 overflow.
	maxTenantWeight = int64(1) << 10

	// admAccrueRebase is the accrual-clock value at which tenant
	// accounting rebases (the monotonic admitted-cost counter and every
	// tenant's snapshot shift down together) so the clock can never
	// overflow int64 on a long run.
	admAccrueRebase = int64(1) << 48
)

// ewmaInt is an integer exponentially-weighted moving average. The
// first observation primes it; until then value() is zero and primed
// reports false, which admit() uses to fall back to depth-only.
type ewmaInt struct {
	v      int64
	primed bool
}

func (e *ewmaInt) observe(s int64) {
	if s < 0 {
		s = 0
	}
	if s > maxAdmCost {
		s = maxAdmCost
	}
	if !e.primed {
		e.v = s
		e.primed = true
		return
	}
	e.v += (s - e.v) >> admEwmaShift
}

// clientAdm is one client's admission accounting for one function.
type clientAdm struct {
	cost    int64 // admitted cost still in flight
	calls   int   // admitted calls still in flight
	used    int64 // cost admitted during the current DRR round
	deficit int64 // unused share carried from the previous round
}

// tenantAdm is one tenant's weighted admission accounting for one
// function. Unlike clientAdm's round-scoped shares, tenants draw from
// a credit bank that refills in proportion to their QoS weight, which
// stays meaningful even when thousands of sporadic tenants each hold a
// per-round share smaller than a single call's cost.
type tenantAdm struct {
	w      int64 // QoS weight (shares of the admission budget)
	credit int64 // banked admission credit, in cost units
	lastA  int64 // fnAdm.accrued snapshot at the last credit refresh
	rem    int64 // accrual division remainder, so credit is exact
	cost   int64 // admitted cost still in flight
	calls  int   // admitted calls still in flight
}

// fnAdm is the per-function fair-admission state.
type fnAdm struct {
	svc     ewmaInt // observed handler service time, nanoseconds
	in      ewmaInt // observed input size, bytes
	total   int64   // admitted in-flight cost across all clients
	round   int64   // cost admitted in the current DRR round
	clients map[int]*clientAdm

	// Tenant-weighted regime (nonzero tenant IDs only). accrued is a
	// monotonic clock of admitted tenant cost; each tenant's credit is
	// lazily topped up from it in proportion to weight. The map is
	// bounded by the number of registered tenants and never GC'd: a
	// tenant's bank is its QoS state, not per-round scratch.
	tenants map[uint16]*tenantAdm
	tsumW   int64 // sum of weights of tenants seen by this function
	accrued int64 // admitted tenant cost, monotonic (rebased, see below)

	// Caps from params.Config (admFor overwrites the packaged
	// defaults with the deployment's config).
	hintCap    simtime.Time // Retry-After ceiling (AdmissionHintCap)
	bankShares int64        // deficit/credit cap in shares (AdmissionBankShares)
}

func newFnAdm() *fnAdm {
	def := params.Default()
	return &fnAdm{
		clients:    make(map[int]*clientAdm),
		tenants:    make(map[uint16]*tenantAdm),
		hintCap:    simtime.Time(def.AdmissionHintCap),
		bankShares: int64(def.AdmissionBankShares),
	}
}

// unit is the average per-call cost — the denomination the budget,
// shares, and tenant credit caps are all expressed in.
func (a *fnAdm) unit() int64 {
	u := a.svc.v + a.in.v
	if u < 1 {
		u = 1
	}
	return u
}

// callCost estimates the cost of admitting one call with the given
// input size.
func (a *fnAdm) callCost(bytes int64) int64 {
	c := bytes + a.svc.v
	if c < 1 {
		c = 1
	}
	if c > maxAdmCost {
		c = maxAdmCost
	}
	return c
}

// budget is the total in-flight cost the function accepts: the depth
// high-water mark expressed in cost units via the average call cost.
func (a *fnAdm) budget(hw int) int64 {
	b := int64(hw) * a.unit()
	if b < 1 {
		b = 1
	}
	return b
}

func (a *fnAdm) client(src int) *clientAdm {
	c := a.clients[src]
	if c == nil {
		c = &clientAdm{}
		a.clients[src] = c
	}
	return c
}

// active counts clients with admitted work in flight, always including
// the arriving client itself (a newcomer deserves a share before it
// holds anything). Counting over the map is order-independent, so map
// iteration cannot perturb the result.
func (a *fnAdm) active(src int) int {
	n := 0
	seen := false
	for id, c := range a.clients {
		if c.calls > 0 || c.cost > 0 {
			n++
			if id == src {
				seen = true
			}
		}
	}
	if !seen {
		n++
	}
	return n
}

// endRound closes a DRR round: a client that under-used its share
// banks the unused part as deficit, capped at two shares so an idle
// client cannot hoard unbounded credit; a client at or over its share
// starts the next round with none. Clients with nothing in flight and
// no deficit are garbage-collected. Every per-client update is
// independent, so map iteration order does not affect the outcome.
func (a *fnAdm) endRound(share int64) {
	for id, c := range a.clients {
		// Deficit is for clients that genuinely could not use their
		// share — under-admitted this round AND holding less than a
		// share in flight when it closed. A persistently over-share
		// client whose round usage merely dipped must not earn credit
		// it would immediately spend to stay over share.
		if spare := share - c.used; spare > 0 && c.cost < share {
			c.deficit += spare
			if lim := a.bankShares * share; c.deficit > lim {
				c.deficit = lim
			}
		} else {
			c.deficit = 0
		}
		c.used = 0
		if c.calls == 0 && c.cost == 0 && c.deficit == 0 {
			delete(a.clients, id)
		}
	}
	a.round = 0
}

// admit decides one arrival from src with the given input size, at the
// configured high-water mark and current queue depth. On admission it
// returns the charged cost, to be released via complete() when the
// reply posts. On a shed it returns a Retry-After hint: the estimated
// time until the client's in-flight work drains enough to admit one
// more call.
func (a *fnAdm) admit(src int, bytes int64, hw, depth int) (cost int64, hint simtime.Time, ok bool) {
	a.in.observe(bytes)
	cost = a.callCost(bytes)
	if !a.svc.primed {
		// Cold start: no service-time estimate means no cost model;
		// behave exactly like the depth-only policy until the first
		// completion primes the EWMA. The accounting below still runs
		// so in-flight state is consistent once the model wakes up.
		if depth >= hw {
			return 0, 0, false
		}
	} else {
		bud := a.budget(hw)
		share := bud / int64(a.active(src))
		if share < 1 {
			share = 1
		}
		if a.round >= bud {
			a.endRound(share)
		}
		c := a.client(src)
		if over := c.cost + cost - share; over > 0 {
			// Over share: the part of this call past the share line
			// must be covered 1:1 by deficit banked in under-used
			// earlier rounds. Admitting on spare total budget instead
			// was tried and rejected: spare slots open in proportion
			// to arrival rate, so a work-conservation rule hands
			// nearly all of them to the most aggressive client and
			// quietly re-creates the depth-only policy's proportional
			// allocation.
			spend := cost
			if over < cost {
				spend = over
			}
			if spend > c.deficit {
				h := simtime.Time(a.svc.v) * simtime.Time(c.calls+1)
				if h > a.hintCap {
					h = a.hintCap
				}
				return 0, h, false
			}
			c.deficit -= spend
		}
	}
	c := a.client(src)
	c.cost += cost
	c.calls++
	c.used += cost
	a.total += cost
	a.round += cost
	return cost, 0, true
}

// complete releases an admitted call's cost when its reply posts.
func (a *fnAdm) complete(src int, cost int64) {
	c := a.clients[src]
	if c == nil {
		return
	}
	c.cost -= cost
	if c.cost < 0 {
		c.cost = 0
	}
	if c.calls > 0 {
		c.calls--
	}
	a.total -= cost
	if a.total < 0 {
		a.total = 0
	}
	if c.calls == 0 && c.cost == 0 && c.deficit == 0 && c.used == 0 {
		delete(a.clients, src)
	}
}

// tenant returns (lazily creating) tenant t's accounting, keeping the
// registered weight and the weight sum current. A newcomer's bank is
// seeded full so a fresh tenant is never cold-shed while others hold
// banked credit.
func (a *fnAdm) tenant(t uint16, w int64) *tenantAdm {
	if w < 1 {
		w = 1
	}
	if w > maxTenantWeight {
		w = maxTenantWeight
	}
	c := a.tenants[t]
	if c == nil {
		c = &tenantAdm{w: w, lastA: a.accrued, credit: a.creditCap(w)}
		a.tenants[t] = c
		a.tsumW += w
	} else if c.w != w {
		a.tsumW += w - c.w
		c.w = w
	}
	return c
}

// creditCap bounds a tenant's banked credit at AdmissionBankShares
// average calls' worth per weight share, so an idle tenant's burst
// allowance is a couple of calls (scaled by weight), never a hoard.
func (a *fnAdm) creditCap(w int64) int64 {
	lim := a.bankShares * a.unit() * w
	if lim < 1 {
		lim = 1
	}
	if lim > maxAdmCost {
		lim = maxAdmCost
	}
	return lim
}

// refreshTenant lazily pays out the credit tenant c earned since its
// last arrival: every admitted tenant call of cost C pays C x w/sumW
// to each registered tenant, tracked exactly with a division
// remainder. Total payout equals total admitted cost, so with every
// tenant backlogged, admitted throughput splits in proportion to
// weight.
func (a *fnAdm) refreshTenant(c *tenantAdm) {
	d := a.accrued - c.lastA
	c.lastA = a.accrued
	if d <= 0 || a.tsumW <= 0 {
		return
	}
	num := d*c.w + c.rem
	c.credit += num / a.tsumW
	c.rem = num % a.tsumW
	if lim := a.creditCap(c.w); c.credit > lim {
		c.credit = lim
		c.rem = 0
	}
}

// tenantHint estimates when tenant c's bank will cover one call of
// the given cost: the aggregate admitted cost needed to accrue the
// shortfall, expressed in average calls, times the service estimate.
func (a *fnAdm) tenantHint(c *tenantAdm, cost int64) simtime.Time {
	calls := int64(c.calls) + 1
	if short := cost - c.credit; short > 0 && a.tsumW > 0 {
		calls += short * a.tsumW / (c.w * a.unit())
	}
	sv := a.svc.v
	if sv < 1 {
		sv = 1
	}
	if calls > int64(a.hintCap)/sv {
		return a.hintCap
	}
	return simtime.Time(sv * calls)
}

// admitTenant decides one arrival from tenant t carrying QoS weight w.
// Tenants are admitted from a weighted credit bank rather than the
// per-client DRR shares: with ~1000 sporadic tenants a per-round share
// is smaller than one call's cost, so round-scoped shares would shed
// everything (or, with work conservation, hand slots out by arrival
// rate — the failure mode the per-client policy's comment documents).
// Instead every admitted tenant call accrues credit to all registered
// tenants in proportion to weight; an arrival is admitted when the
// global budget has room AND the tenant's bank covers the call's cost,
// charged 1:1. A tenant offering at or below its weighted share of
// capacity refills faster than it drains and is never shed; a greedy
// tenant's excess arrivals bounce off its empty bank without consuming
// budget, so it cannot move a well-behaved tenant's tail. The bank cap
// (creditCap) bounds idle hoarding; banking and the Retry-After hint
// are tenant-scoped.
func (a *fnAdm) admitTenant(t uint16, w, bytes int64, hw, depth int) (cost int64, hint simtime.Time, ok bool) {
	a.in.observe(bytes)
	cost = a.callCost(bytes)
	c := a.tenant(t, w)
	if !a.svc.primed {
		// Cold start: depth-only, like the per-client path. Accounting
		// below still runs so state is consistent once the model wakes.
		if depth >= hw {
			return 0, 0, false
		}
	} else {
		a.refreshTenant(c)
		switch {
		case a.total == 0:
			// Work-conservation floor: the function is completely idle,
			// so holding this tenant to its bank would shed work a free
			// server could run — and, since credit accrues only from
			// admitted tenant cost, an all-banks-empty pool would
			// otherwise starve forever. Admit, spending whatever credit
			// is there (never going negative). Under load total > 0 and
			// the floor vanishes, so a greedy tenant cannot ride it
			// while victims hold work in flight.
			if c.credit >= cost {
				c.credit -= cost
			} else {
				c.credit, c.rem = 0, 0
			}
		case a.total+cost > a.budget(hw) || c.credit < cost:
			return 0, a.tenantHint(c, cost), false
		default:
			c.credit -= cost
		}
	}
	c.cost += cost
	c.calls++
	a.total += cost
	a.accrued += cost
	if a.accrued >= admAccrueRebase {
		// Rebase the monotonic accrual clock so it cannot overflow on
		// a long run: every snapshot shifts down with it, preserving
		// all pending diffs. Per-tenant updates are independent, so
		// map order cannot perturb the outcome.
		for _, tc := range a.tenants {
			tc.lastA -= a.accrued
		}
		a.accrued = 0
	}
	return cost, 0, true
}

// completeTenant releases an admitted tenant call's cost when its
// reply posts. Tenant entries are not GC'd: the bank is durable QoS
// state, bounded by the number of registered tenants.
func (a *fnAdm) completeTenant(t uint16, cost int64) {
	c := a.tenants[t]
	if c == nil {
		return
	}
	c.cost -= cost
	if c.cost < 0 {
		c.cost = 0
	}
	if c.calls > 0 {
		c.calls--
	}
	a.total -= cost
	if a.total < 0 {
		a.total = 0
	}
}

// admFor returns (lazily creating) the fair-admission state for fn.
func (i *Instance) admFor(fn int) *fnAdm {
	if i.adm == nil {
		i.adm = make(map[int]*fnAdm)
	}
	a := i.adm[fn]
	if a == nil {
		a = newFnAdm()
		a.hintCap = simtime.Time(i.cfg.AdmissionHintCap)
		a.bankShares = int64(i.cfg.AdmissionBankShares)
		i.adm[fn] = a
	}
	return a
}

// admServiceObserve feeds one observed handler service time (dequeue
// to reply, the same interval the lite.rpc.server span covers) into
// the function's estimator. Cheap integer bookkeeping: it never
// advances virtual time, so observing with the fair policy off cannot
// perturb a depth-only timeline.
func (i *Instance) admServiceObserve(fn int, d simtime.Time) {
	if fn < FirstUserFunc {
		return
	}
	i.admFor(fn).svc.observe(int64(d))
}

// admRelease returns an admitted call's cost to its function's budget
// when the call replies.
func (i *Instance) admRelease(c *Call) {
	if c.admCost <= 0 {
		return
	}
	if a := i.adm[c.Func]; a != nil {
		if c.Tenant != 0 {
			a.completeTenant(c.Tenant, c.admCost)
		} else {
			a.complete(c.Src, c.admCost)
		}
	}
	c.admCost = 0
}
