package lite

import (
	"bytes"
	"errors"
	"testing"

	"lite/internal/cluster"
	"lite/internal/params"
	"lite/internal/simtime"
)

// TestTenantNamespaceIsolation proves the core multi-tenant property:
// a tenant cannot map, read, or otherwise touch another tenant's LMRs,
// while its own accesses and kernel (tenant-0) accesses keep working.
func TestTenantNamespaceIsolation(t *testing.T) {
	cls, dep := testDep(t, 2)
	cls.EnableObs()
	var h LH
	ready := false
	var readyCond simtime.Cond
	cls.GoOn(0, "owner", func(p *simtime.Proc) {
		owner := dep.Instance(0).TenantClient(1)
		var err error
		h, err = owner.Malloc(p, 4096, "t1-secret", PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		if err := owner.Write(p, h, 0, []byte("tenant-1 data")); err != nil {
			t.Fatal(err)
		}
		ready = true
		readyCond.Broadcast(p.Env())

		// Another tenant on the owner's node: using the owner's handle
		// directly must be denied too (handles are per-acquirer).
		local := dep.Instance(0).TenantClient(2)
		buf := make([]byte, 4)
		if err := local.Read(p, h, 0, buf); !errors.Is(err, ErrTenantDenied) {
			t.Fatalf("cross-tenant Read error = %v, want ErrTenantDenied", err)
		}
		if err := local.Free(p, h); !errors.Is(err, ErrTenantDenied) {
			t.Fatalf("cross-tenant Free error = %v, want ErrTenantDenied", err)
		}
	})
	cls.GoOn(1, "others", func(p *simtime.Proc) {
		for !ready {
			readyCond.Wait(p)
		}
		// Another tenant on another node: Map by name must be denied
		// with the typed error.
		thief := dep.Instance(1).TenantClient(2)
		_, err := thief.Map(p, "t1-secret")
		if !errors.Is(err, ErrTenantDenied) {
			t.Fatalf("cross-tenant Map error = %v, want ErrTenantDenied", err)
		}
		var td *TenantDeniedError
		if !errors.As(err, &td) || td.Tenant != 2 || td.Owner != 1 {
			t.Fatalf("denial detail = %+v, want Tenant=2 Owner=1", td)
		}

		// The owner tenant itself maps and reads fine from anywhere.
		mine := dep.Instance(1).TenantClient(1)
		same, err := mine.Map(p, "t1-secret")
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 13)
		if err := mine.Read(p, same, 0, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, []byte("tenant-1 data")) {
			t.Fatalf("owner read back %q", got)
		}

		// Kernel (tenant 0) bypasses tenant checks, like root.
		kc := dep.Instance(1).KernelClient()
		kh, err := kc.Map(p, "t1-secret")
		if err != nil {
			t.Fatalf("kernel Map: %v", err)
		}
		if err := kc.Read(p, kh, 0, got); err != nil {
			t.Fatalf("kernel Read: %v", err)
		}
	})
	run(t, cls)
	if n := cls.Obs.Total("lite.tenant.denied"); n < 3 {
		t.Fatalf("lite.tenant.denied = %d, want >= 3", n)
	}
}

// TestTenantCanMapPublicLMR: kernel-created (tenant-0) named LMRs are
// public infrastructure — tenants may map them subject to the normal
// ACL, so shared services keep working under tenancy.
func TestTenantCanMapPublicLMR(t *testing.T) {
	cls, dep := testDep(t, 2)
	var kh LH
	ready := false
	var readyCond simtime.Cond
	cls.GoOn(0, "kernel", func(p *simtime.Proc) {
		k := dep.Instance(0).KernelClient()
		h, err := k.Malloc(p, 4096, "public-region", PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Write(p, h, 0, []byte("shared")); err != nil {
			t.Fatal(err)
		}
		kh = h
		ready = true
		readyCond.Broadcast(p.Env())
	})
	cls.GoOn(1, "tenant", func(p *simtime.Proc) {
		for !ready {
			readyCond.Wait(p)
		}
		tc := dep.Instance(1).TenantClient(5)
		th, err := tc.Map(p, "public-region")
		if err != nil {
			t.Fatalf("tenant Map of public LMR: %v", err)
		}
		got := make([]byte, 6)
		if err := tc.Read(p, th, 0, got); err != nil {
			t.Fatal(err)
		}
		if string(got) != "shared" {
			t.Fatalf("got %q", got)
		}
		// But the tenant cannot use the kernel's own handle: handles
		// are stamped per acquirer. (The kernel's handle lives on node
		// 0; a node-0 tenant client demonstrates the denial.)
		if err := dep.Instance(0).TenantClient(5).Read(p, kh, 0, got); !errors.Is(err, ErrTenantDenied) {
			t.Fatalf("tenant use of kernel handle = %v, want ErrTenantDenied", err)
		}
	})
	run(t, cls)
}

// TestTenantRPCCarriesTenantAndCounters: a tenant client's RPC carries
// its tenant ID in the ring header to the server's Call, and per-tenant
// admitted counters tick.
func TestTenantRPCCarriesTenantAndCounters(t *testing.T) {
	cls, dep := testDep(t, 2)
	cls.EnableObs()
	inst := dep.Instance(1)
	_ = inst.RegisterRPC(echoFn)
	var seen []uint16
	cls.GoDaemonOn(1, "server", func(p *simtime.Proc) {
		c := inst.KernelClient()
		call, err := c.RecvRPC(p, echoFn)
		for err == nil {
			seen = append(seen, call.Tenant)
			call, err = c.ReplyRecvRPC(p, call, call.Input, echoFn)
		}
	})
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		tc := dep.Instance(0).TenantClient(42)
		out, err := tc.RPC(p, 1, echoFn, []byte("hello"), 64)
		if err != nil || string(out) != "hello" {
			t.Fatalf("tenant RPC: %q, %v", out, err)
		}
		kc := dep.Instance(0).KernelClient()
		if _, err := kc.RPC(p, 1, echoFn, []byte("ker"), 64); err != nil {
			t.Fatal(err)
		}
	})
	run(t, cls)
	if len(seen) != 2 || seen[0] != 42 || seen[1] != 0 {
		t.Fatalf("server saw tenants %v, want [42 0]", seen)
	}
	if n := cls.Obs.Total("lite.tenant.clients"); n != 1 {
		t.Fatalf("lite.tenant.clients = %d, want 1", n)
	}
}

// TestTenantAdmittedCounter: with fair admission on, a tenant call
// ticks its per-tenant admitted counter on the serving node.
func TestTenantAdmittedCounter(t *testing.T) {
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, 2, 1<<30)
	opts := DefaultOptions()
	opts.AdmissionHighWater = 64
	opts.FairAdmission = true
	dep, err := Start(cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	cls.EnableObs()
	startEchoServer(cls, dep, 1, 2)
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		tc := dep.Instance(0).TenantClient(7)
		for k := 0; k < 5; k++ {
			if _, err := tc.RPC(p, 1, echoFn, []byte("x"), 64); err != nil {
				t.Fatal(err)
			}
		}
	})
	run(t, cls)
	if n := cls.Obs.Total("lite.tenant.7.admitted"); n != 5 {
		t.Fatalf("lite.tenant.7.admitted = %d, want 5", n)
	}
}

// TestTenantQPScaling proves the shared-QP claim: the RC mesh is
// n(n-1) x QPsPerPair regardless of how many tenants attach.
func TestTenantQPScaling(t *testing.T) {
	cls, dep := testDep(t, 3)
	perNode := 0
	for i := 0; i < 3; i++ {
		perNode += cls.Nodes[i].NIC.QPCountByOwner("lite/shared-mesh")
	}
	want := 3 * 2 * DefaultOptions().QPsPerPair
	if perNode != want {
		t.Fatalf("mesh QPs = %d, want n(n-1) x K = %d", perNode, want)
	}
	before := cls.Nodes[0].NIC.QPCount()
	for ten := uint16(1); ten <= 100; ten++ {
		_ = dep.Instance(0).TenantClient(ten)
	}
	if got := cls.Nodes[0].NIC.QPCount(); got != before {
		t.Fatalf("QP count moved %d -> %d after 100 tenants; must scale with nodes, not tenants", before, got)
	}
}

// TestSetTenantWeight covers the deployment-level weight registry.
func TestSetTenantWeight(t *testing.T) {
	_, dep := testDep(t, 2)
	if w := dep.tenantWeight(3); w != 1 {
		t.Fatalf("default weight = %d, want 1", w)
	}
	dep.SetTenantWeight(3, 4)
	dep.SetTenantWeight(0, 9) // tenant 0 is not a tenant; ignored
	dep.SetTenantWeight(5, 0) // floored to 1
	if w := dep.tenantWeight(3); w != 4 {
		t.Fatalf("weight = %d, want 4", w)
	}
	if w := dep.tenantWeight(0); w != 1 {
		t.Fatalf("tenant-0 weight = %d, want untracked 1", w)
	}
	if w := dep.tenantWeight(5); w != 1 {
		t.Fatalf("floored weight = %d, want 1", w)
	}
}
