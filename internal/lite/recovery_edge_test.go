package lite

import (
	"testing"
	"time"

	"lite/internal/simtime"
)

// ReRegisterNames must republish exactly the named, live, self-mastered
// LMRs: freed LMRs, anonymous LMRs, and LMRs whose master role was
// revoked stay out of the rebuilt directory.
func TestReRegisterNamesSkipsFreedUnnamedNonMastered(t *testing.T) {
	cls, dep := testDep(t, 2)
	phase := 0
	var cond simtime.Cond
	bump := func(p *simtime.Proc) { phase++; cond.Broadcast(p.Env()) }
	wait := func(p *simtime.Proc, n int) {
		for phase < n {
			cond.Wait(p)
		}
	}
	cls.GoOn(1, "owner", func(p *simtime.Proc) {
		c := dep.Instance(1).KernelClient()
		if _, err := c.Malloc(p, 4096, "keep", PermRead); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Malloc(p, 4096, "", PermRead); err != nil {
			t.Fatal(err)
		}
		hGone, err := c.Malloc(p, 4096, "gone", PermRead)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Free(p, hGone); err != nil {
			t.Fatal(err)
		}
		hForeign, err := c.Malloc(p, 4096, "foreign", PermRead)
		if err != nil {
			t.Fatal(err)
		}
		// Hand the master role to node 0 and have our own revoked.
		if err := c.Grant(p, hForeign, 0, PermRead|PermWrite|PermMaster); err != nil {
			t.Fatal(err)
		}
		bump(p)
		wait(p, 2)
		dep.CrashManagerDirectory()
		// Only this node recovers: the directory afterwards holds
		// exactly what this node still masters.
		if err := dep.Instance(1).ReRegisterNames(p); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Map(p, "keep"); err != nil {
			t.Fatalf("named live LMR not republished: %v", err)
		}
		if _, err := c.Map(p, "gone"); err != ErrNoSuchName {
			t.Fatalf("freed LMR republished: err = %v", err)
		}
		if _, err := c.Map(p, "foreign"); err != ErrNoSuchName {
			t.Fatalf("non-mastered LMR republished: err = %v", err)
		}
	})
	cls.GoOn(0, "revoker", func(p *simtime.Proc) {
		wait(p, 1)
		c := dep.Instance(0).KernelClient()
		h, err := c.Map(p, "foreign")
		if err != nil {
			t.Fatal(err)
		}
		// Node 0 is a master now; strip node 1 of the role.
		if err := c.Grant(p, h, 1, PermRead); err != nil {
			t.Fatal(err)
		}
		bump(p)
	})
	run(t, cls)
}

// Running the recovery protocol twice in a row must be harmless: the
// second pass finds every name already present and republishes nothing.
func TestDoubleRecoveryIdempotent(t *testing.T) {
	cls, dep := testDep(t, 3)
	cls.GoOn(1, "driver", func(p *simtime.Proc) {
		c := dep.Instance(1).KernelClient()
		h, err := c.Malloc(p, 4096, "twice", PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Write(p, h, 0, []byte("payload")); err != nil {
			t.Fatal(err)
		}
		dep.CrashManagerDirectory()
		if err := dep.RecoverManagerDirectory(p); err != nil {
			t.Fatal(err)
		}
		if err := dep.RecoverManagerDirectory(p); err != nil {
			t.Fatalf("second recovery errored: %v", err)
		}
		c2 := dep.Instance(2).KernelClient()
		h2, err := c2.Map(p, "twice")
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 7)
		if err := c2.Read(p, h2, 0, got); err != nil {
			t.Fatal(err)
		}
		if string(got) != "payload" {
			t.Fatalf("data after double recovery = %q", got)
		}
	})
	run(t, cls)
}

// Recovery must tolerate fresh registrations racing with it: names
// created while the directory is being rebuilt survive alongside the
// republished ones.
func TestRecoveryRacesConcurrentRegistration(t *testing.T) {
	cls, dep := testDep(t, 3)
	phase := 0
	var cond simtime.Cond
	bump := func(p *simtime.Proc) { phase++; cond.Broadcast(p.Env()) }
	wait := func(p *simtime.Proc, n int) {
		for phase < n {
			cond.Wait(p)
		}
	}
	cls.GoOn(1, "recoverer", func(p *simtime.Proc) {
		c := dep.Instance(1).KernelClient()
		if _, err := c.Malloc(p, 4096, "old", PermRead); err != nil {
			t.Fatal(err)
		}
		dep.CrashManagerDirectory()
		bump(p)
		if err := dep.RecoverManagerDirectory(p); err != nil {
			t.Fatal(err)
		}
		bump(p)
	})
	cls.GoOn(2, "registrar", func(p *simtime.Proc) {
		wait(p, 1)
		// Interleave with the recovery sweep: these registrations hit
		// the manager while nodes are republishing.
		c := dep.Instance(2).KernelClient()
		for k := 0; k < 4; k++ {
			name := string(rune('a' + k))
			if _, err := c.Malloc(p, 4096, "fresh-"+name, PermRead); err != nil {
				t.Fatalf("concurrent registration %q: %v", name, err)
			}
			p.Sleep(time.Microsecond)
		}
		wait(p, 2)
		if _, err := c.Map(p, "old"); err != nil {
			t.Fatalf("republished name lost: %v", err)
		}
		for k := 0; k < 4; k++ {
			if _, err := c.Map(p, "fresh-"+string(rune('a'+k))); err != nil {
				t.Fatalf("concurrent registration lost: %v", err)
			}
		}
	})
	run(t, cls)
}
