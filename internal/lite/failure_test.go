package lite

import (
	"bytes"
	"testing"
	"time"

	"lite/internal/cluster"
	"lite/internal/params"
	"lite/internal/simtime"
)

// testDepOpts is testDep with custom deployment options.
func testDepOpts(t *testing.T, n int, opts Options) (*cluster.Cluster, *Deployment) {
	t.Helper()
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, n, 1<<30)
	dep, err := Start(cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	return cls, dep
}

func heartbeatOptions() Options {
	opts := DefaultOptions()
	opts.HeartbeatInterval = 100 * time.Microsecond
	opts.HeartbeatTimeout = 300 * time.Microsecond
	opts.HeartbeatMiss = 3
	return opts
}

// --- scratch-ring quarantine (reply-buffer reuse hazard) ---

func TestScratchQuarantineBlocksReuse(t *testing.T) {
	s := scratchRing{base: 0, size: 1024}
	a := s.alloc(100) // [0, 128)
	if a != 0 {
		t.Fatalf("first alloc at %d, want 0", a)
	}
	// A timed-out call quarantines its reply buffer; the allocator must
	// skip the range until the quarantine is released.
	s.quarantine(a, 100, 7, 1)
	s.next = 0 // simulate a wrap back to the start
	b := s.alloc(64)
	if int64(b) < 128 {
		t.Fatalf("alloc landed at %d, inside the quarantined range", b)
	}
	s.release(7)
	s.next = 0
	c := s.alloc(64)
	if c != 0 {
		t.Fatalf("alloc after release at %d, want 0", c)
	}
	if s.Evictions != 0 {
		t.Fatalf("evictions = %d, want 0", s.Evictions)
	}
}

func TestScratchQuarantineReleaseBefore(t *testing.T) {
	s := scratchRing{base: 0, size: 4096}
	s.quarantine(s.alloc(64), 64, 1, 1)
	s.quarantine(s.alloc(64), 64, 2, 2)
	s.quarantine(s.alloc(64), 64, 3, 5)
	// A membership-epoch advance releases quarantines from older
	// epochs: a late reply from a node now declared dead can no longer
	// land.
	freed := s.releaseBefore(5)
	if len(freed) != 2 || freed[0] != 1 || freed[1] != 2 {
		t.Fatalf("releaseBefore freed %v, want [1 2]", freed)
	}
	if len(s.quar) != 1 || s.quar[0].token != 3 {
		t.Fatalf("remaining quarantine = %+v", s.quar)
	}
}

func TestScratchQuarantineSafetyValve(t *testing.T) {
	// If quarantined buffers would wedge the allocator (two full wraps
	// without finding a gap, or over half the arena quarantined), the
	// oldest quarantine is force-released and reported via evicted.
	s := scratchRing{base: 0, size: 256}
	s.quarantine(s.alloc(64), 64, 1, 1)
	s.quarantine(s.alloc(64), 64, 2, 1)
	s.quarantine(s.alloc(64), 64, 3, 1)
	// Arena: [0,192) quarantined, 64 bytes free. Allocating 128 cannot
	// fit without evicting.
	_ = s.alloc(128)
	if s.Evictions == 0 {
		t.Fatal("allocator wedged: no safety-valve eviction")
	}
	if len(s.evicted) == 0 || s.evicted[0] != 1 {
		t.Fatalf("evicted = %v, want oldest token 1 first", s.evicted)
	}
}

// slowFn echoes, but sleeps before replying when the input starts with
// 'S' — long enough for the caller's timeout to fire first.
const slowFn = FirstUserFunc + 1

func startSlowEchoServer(cls *cluster.Cluster, dep *Deployment, node int, delay simtime.Time) {
	inst := dep.Instance(node)
	_ = inst.RegisterRPC(slowFn)
	cls.GoDaemonOn(node, "slow-echo", func(p *simtime.Proc) {
		c := inst.KernelClient()
		for {
			call, err := c.RecvRPC(p, slowFn)
			if err != nil {
				return
			}
			if len(call.Input) > 0 && call.Input[0] == 'S' {
				p.Sleep(delay)
			}
			if err := c.ReplyRPC(p, call, call.Input); err != nil {
				return
			}
		}
	})
}

// Regression test for the scratch-ring reply-buffer hazard: a timed-out
// call's reply buffer must not be handed to a later call while the
// stale reply can still land on it.
func TestLateReplyDoesNotCorruptLaterCalls(t *testing.T) {
	cls, dep := testDep(t, 2)
	startSlowEchoServer(cls, dep, 1, 2*time.Millisecond)
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		inst := dep.Instance(0)
		slow := append([]byte("S"), bytes.Repeat([]byte{0xAA}, 200)...)
		if _, err := c.RPCT(p, 1, slowFn, slow, 256, 200*time.Microsecond); err != ErrTimeout {
			t.Fatalf("slow call err = %v, want ErrTimeout", err)
		}
		if len(inst.scratch.quar) == 0 {
			t.Fatal("timed-out reply buffer was not quarantined")
		}
		// Hammer the RPC path while the stale reply is in flight; every
		// reply must match its own request.
		for k := 0; k < 50; k++ {
			in := bytes.Repeat([]byte{byte(k + 1)}, 200)
			out, err := c.RPC(p, 1, slowFn, in, 256)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out, in) {
				t.Fatalf("call %d: reply corrupted by stale buffer reuse", k)
			}
		}
		// Once the late reply lands it is dropped on the floor and its
		// quarantine is released.
		p.Sleep(3 * time.Millisecond)
		if len(inst.scratch.quar) != 0 {
			t.Fatalf("quarantine not released after late reply: %+v", inst.scratch.quar)
		}
		if inst.scratch.Evictions != 0 {
			t.Fatalf("safety valve fired (%d) in a healthy run", inst.scratch.Evictions)
		}
		for tok, pc := range inst.pending {
			if pc.abandoned {
				t.Fatalf("abandoned pending entry %d not cleaned up", tok)
			}
		}
	})
	run(t, cls)
}

// --- heartbeat membership ---

func TestHeartbeatDeclaresDeadAndRevives(t *testing.T) {
	cls, dep := testDepOpts(t, 3, heartbeatOptions())
	startEchoServerN(cls, dep, 2)
	cls.GoOn(0, "driver", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		if _, err := c.RPC(p, 2, echoFn, []byte("warm"), 32); err != nil {
			t.Fatal(err)
		}
		epoch0 := dep.ManagerEpoch()
		cls.Fab.SetNodeDown(2)
		deadline := p.Now() + 20*time.Millisecond
		for !dep.Instance(0).NodeDead(2) {
			if p.Now() > deadline {
				t.Fatal("node 2 never declared dead")
			}
			p.Sleep(100 * time.Microsecond)
		}
		if dep.ManagerEpoch() <= epoch0 {
			t.Fatalf("epoch not bumped: %d -> %d", epoch0, dep.ManagerEpoch())
		}
		// The epoch broadcast reaches other live instances too.
		for !dep.Instance(1).NodeDead(2) {
			if p.Now() > deadline {
				t.Fatal("membership broadcast never reached node 1")
			}
			p.Sleep(100 * time.Microsecond)
		}
		// Declared-dead targets fail fast, without burning the timeout.
		start := p.Now()
		if _, err := c.RPCRetry(p, 2, echoFn, []byte("x"), 32); err != ErrNodeDead {
			t.Fatalf("RPC to dead node err = %v, want ErrNodeDead", err)
		}
		if el := p.Now() - start; el >= dep.opts.RPCTimeout {
			t.Fatalf("fail-fast took %v, at least a full RPC timeout", el)
		}
		// The node comes back; a successful probe revives it and the
		// epoch advances again.
		epochDead := dep.ManagerEpoch()
		cls.Fab.SetNodeUp(2)
		deadline = p.Now() + 20*time.Millisecond
		for dep.Instance(0).NodeDead(2) {
			if p.Now() > deadline {
				t.Fatal("node 2 never revived")
			}
			p.Sleep(100 * time.Microsecond)
		}
		if dep.ManagerEpoch() <= epochDead {
			t.Fatal("revival did not bump the epoch")
		}
		out, err := c.RPCRetry(p, 2, echoFn, []byte("back"), 32)
		if err != nil || string(out) != "back" {
			t.Fatalf("RPC after revival = %q, %v", out, err)
		}
	})
	run(t, cls)
}

// --- retry layer ---

func TestRPCRetryRidesOutLinkFlap(t *testing.T) {
	cls, dep := testDep(t, 2) // heartbeats off: no death declaration
	startEchoServer(cls, dep, 1, 1)
	cls.GoDaemonOn(0, "flap", func(p *simtime.Proc) {
		p.Sleep(50 * time.Microsecond)
		cls.Fab.Partition([]int{0}, []int{1})
		p.Sleep(3 * time.Millisecond)
		cls.Fab.HealPartition([]int{0}, []int{1})
	})
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		if _, err := c.RPC(p, 1, echoFn, []byte("warm"), 32); err != nil {
			t.Fatal(err)
		}
		p.Sleep(100 * time.Microsecond) // flap is now active
		out, err := c.RPCRetryT(p, 1, echoFn, []byte("persist"), 32, 2*time.Millisecond)
		if err != nil {
			t.Fatalf("retry did not ride out the flap: %v", err)
		}
		if string(out) != "persist" {
			t.Fatalf("echo = %q", out)
		}
	})
	run(t, cls)
}

func TestRPCRetryGivesUpAfterBoundedAttempts(t *testing.T) {
	cls, dep := testDep(t, 2)
	startEchoServer(cls, dep, 1, 1)
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		if _, err := c.RPC(p, 1, echoFn, []byte("warm"), 32); err != nil {
			t.Fatal(err)
		}
		cls.Fab.SetNodeDown(1) // never heals, heartbeats off
		start := p.Now()
		_, err := c.RPCRetryT(p, 1, echoFn, []byte("x"), 32, 500*time.Microsecond)
		if err != ErrTimeout {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
		el := p.Now() - start
		// Bounded: at most attempts * (timeout + max backoff), far from
		// an unbounded wait.
		max := simtime.Time(dep.opts.RetryAttempts) * (500*time.Microsecond + 25*time.Millisecond)
		if el > max {
			t.Fatalf("retries took %v, over the bound %v", el, max)
		}
		cls.Fab.SetNodeUp(1)
	})
	run(t, cls)
}

// --- crash / restart ---

func TestCrashNodeFailsCallersAndRestartRejoins(t *testing.T) {
	cls, dep := testDepOpts(t, 3, heartbeatOptions())
	startEchoServerN(cls, dep, 2)
	startSlowEchoServer(cls, dep, 2, 20*time.Millisecond)
	cls.OnNodeUp(func(p *simtime.Proc, node int) {
		if node == 2 {
			startEchoServerN(cls, dep, 2)
		}
	})
	cls.GoOn(0, "driver", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		if _, err := c.RPC(p, 2, echoFn, []byte("warm"), 32); err != nil {
			t.Fatal(err)
		}
		cls.GoDaemonOn(1, "crasher", func(q *simtime.Proc) {
			q.Sleep(100 * time.Microsecond)
			cls.CrashNode(q, 2)
		})
		// A call in flight when the node dies (the slow server sits on
		// it for 20ms) fails once the manager declares the node dead —
		// well before its own 50ms deadline, and not never.
		start := p.Now()
		_, err := c.RPCT(p, 2, slowFn, []byte("S"), 32, 50*time.Millisecond)
		if err == nil {
			t.Fatal("call to crashed node succeeded")
		}
		if el := p.Now() - start; el >= 20*time.Millisecond {
			t.Fatalf("in-flight call failed only after %v; membership did not fail it fast", el)
		}
		for !dep.Instance(0).NodeDead(2) {
			p.Sleep(100 * time.Microsecond)
		}
		epochDead := dep.ManagerEpoch()
		cls.RestartNode(p, 2)
		deadline := p.Now() + 30*time.Millisecond
		for dep.Instance(0).NodeDead(2) {
			if p.Now() > deadline {
				t.Fatal("restarted node never rejoined")
			}
			p.Sleep(200 * time.Microsecond)
		}
		if dep.ManagerEpoch() <= epochDead {
			t.Fatal("rejoin did not bump the epoch")
		}
		out, err := c.RPCRetry(p, 2, echoFn, []byte("again"), 32)
		if err != nil || string(out) != "again" {
			t.Fatalf("RPC after restart = %q, %v", out, err)
		}
	})
	run(t, cls)
}

func TestManagerCrashRestartRecoversDirectory(t *testing.T) {
	cls, dep := testDepOpts(t, 3, heartbeatOptions())
	cls.GoOn(1, "driver", func(p *simtime.Proc) {
		c := dep.Instance(1).KernelClient()
		h, err := c.Malloc(p, 4096, "durable", PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Write(p, h, 0, []byte("alive")); err != nil {
			t.Fatal(err)
		}
		// The manager node crashes, losing the name directory, then
		// restarts: the rejoin protocol republishes surviving names.
		cls.CrashNode(p, 0)
		cls.RestartNode(p, 0)
		deadline := p.Now() + 50*time.Millisecond
		for {
			if _, err := c.Map(p, "durable"); err == nil {
				break
			}
			if p.Now() > deadline {
				t.Fatal("directory never recovered after manager restart")
			}
			p.Sleep(500 * time.Microsecond)
		}
		h2, err := c.Map(p, "durable")
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 5)
		if err := c.Read(p, h2, 0, got); err != nil {
			t.Fatal(err)
		}
		if string(got) != "alive" {
			t.Fatalf("data after manager recovery = %q", got)
		}
	})
	run(t, cls)
}
