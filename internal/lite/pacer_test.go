package lite

import (
	"testing"
	"time"

	"lite/internal/simtime"
)

// pacerOpts builds a deployment where overload is easy to provoke: one
// slow worker, a shallow admission queue, fair admission (so sheds
// carry a Retry-After horizon), and short client timeouts.
func pacerOpts(pacer bool) Options {
	opts := DefaultOptions()
	opts.RPCTimeout = 400 * time.Microsecond
	opts.RetryBackoff = 20 * time.Microsecond
	opts.AdmissionHighWater = 4
	opts.FairAdmission = true
	opts.Pacer = pacer
	return opts
}

// runPacerBurst hammers a slow single-worker server from several
// client threads and reports the delayed-by-pacer counter plus how
// many calls ultimately failed.
func runPacerBurst(t *testing.T, pacer bool) (delayed int64, failures int) {
	t.Helper()
	cls, dep := testDepOpts(t, 3, pacerOpts(pacer))
	cls.EnableObs()
	srv := dep.Instance(2)
	if err := srv.ServeRPC(echoFn, 1, func(p *simtime.Proc, c *Call) []byte {
		p.Work(5 * time.Microsecond)
		return c.Input
	}); err != nil {
		t.Fatal(err)
	}
	for node := 0; node < 2; node++ {
		node := node
		for th := 0; th < 4; th++ {
			cls.GoOn(node, "pacer-client", func(p *simtime.Proc) {
				c := dep.Instance(node).KernelClient()
				for k := 0; k < 12; k++ {
					if _, err := c.RPCRetry(p, 2, echoFn, make([]byte, 16), 64); err != nil {
						failures++
					}
				}
			})
		}
	}
	run(t, cls)
	return cls.Obs.Total("lite.pacer.delayed"), failures
}

// TestPacerHonorsRetryAfter: with the pacer on, Retry-After horizons
// learned from sheds make later calls to the same (server, fn) wait
// out the horizon instead of burning a round trip to be shed — the
// lite.pacer.delayed counter proves calls were actually held back, and
// pacing must not turn any call into a failure. With the pacer off the
// counter must stay zero (the option is purely opt-in).
func TestPacerHonorsRetryAfter(t *testing.T) {
	delayed, failures := runPacerBurst(t, true)
	if delayed == 0 {
		t.Error("pacer on: lite.pacer.delayed = 0, want > 0 (no call was ever paced)")
	}
	if failures != 0 {
		t.Errorf("pacer on: %d calls failed, want 0", failures)
	}

	// Pacer off: the counter must stay zero (the option is opt-in).
	// Calls may fail here — retries burned on being shed again are the
	// failure mode the pacer exists to remove.
	delayed, offFailures := runPacerBurst(t, false)
	if delayed != 0 {
		t.Errorf("pacer off: lite.pacer.delayed = %d, want 0", delayed)
	}
	if offFailures < failures {
		t.Errorf("pacer off failed %d calls vs %d with pacing; pacing should never make the burst less reliable", offFailures, failures)
	}
}
