package lite

import (
	"testing"

	"lite/internal/cluster"
	"lite/internal/params"
	"lite/internal/simtime"
)

// BenchmarkRPCRoundTrip measures host-side (wall-clock) allocations
// per LT_RPC round trip. The request path frames each message into a
// pooled buffer before postToRing (the RNIC snapshots the payload at
// post time, so the frame is recycled as soon as the post returns) —
// without the pool every call allocated a fresh frame. Run with:
//
//	go test -bench=RPCRoundTrip -benchmem ./internal/lite/
func BenchmarkRPCRoundTrip(b *testing.B) {
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, 2, 1<<30)
	dep, err := Start(cls, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	srv := dep.Instance(1)
	_ = srv.RegisterRPC(FirstUserFunc)
	reply := []byte("pooled!!")
	cls.GoDaemonOn(1, "echo", func(p *simtime.Proc) {
		c := srv.KernelClient()
		call, err := c.RecvRPC(p, FirstUserFunc)
		if err != nil {
			return
		}
		for {
			call, err = c.ReplyRecvRPC(p, call, reply, FirstUserFunc)
			if err != nil {
				return
			}
		}
	})
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		in := make([]byte, 64)
		// Warm the path (ring setup, QP caches, frame pool) before
		// counting.
		if _, err := c.RPC(p, 1, FirstUserFunc, in, 16); err != nil {
			b.Error(err)
			return
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.RPC(p, 1, FirstUserFunc, in, 16); err != nil {
				b.Error(err)
				return
			}
		}
	})
	if err := cls.Run(); err != nil {
		b.Fatal(err)
	}
}
