package lite

import (
	"lite/internal/params"
	"lite/internal/simtime"
)

// Priority classifies LITE traffic for QoS purposes (§6.2).
type Priority int

// Priorities. PriHigh is the default.
const (
	PriHigh Priority = iota
	PriLow
)

// QoSMode selects the isolation policy (§6.2).
type QoSMode int

// QoS modes.
const (
	// QoSNone applies no isolation.
	QoSNone QoSMode = iota
	// QoSHWSep partitions the shared queue pairs: high priority gets
	// most of them, low priority the remainder — hardware resources
	// reserved per priority, idle or not.
	QoSHWSep
	// QoSSWPri rate-limits low-priority senders in software based on
	// high-priority load (sender-side information) and high-priority
	// RTT inflation (receiver-side information).
	QoSSWPri
)

// qosSignals is the cluster-wide QoS signal state: the high-priority
// load and latency observations every sender consults. LITE's
// management service distributes these observations; the simulation
// shares them directly (staleness is negligible at the timescales
// involved).
type qosSignals struct {
	lastHigh simtime.Time // when a high-priority op last finished
	rttEMA   float64      // smoothed high-priority op latency (ns)
	rttBase  float64      // smallest observed high-priority latency (ns)
}

// qosState is per-instance QoS bookkeeping.
type qosState struct {
	mode QoSMode
	k    int
	sig  *qosSignals
	inst *Instance

	lowNext simtime.Time // leaky-bucket horizon for low priority
}

func (q *qosState) init(inst *Instance, k int, sig *qosSignals) {
	q.inst = inst
	q.k = k
	q.sig = sig
}

// highActiveWindow is how recently a high-priority op must have run
// for SW-Pri policy 1/2 to consider the high class active.
const highActiveWindow = 1000 * 1000 // 1ms in ns

// lowRateFraction is the fraction of link bandwidth low-priority
// traffic may use while high-priority traffic is active.
const lowRateFraction = 0.15

// qpRange returns the half-open range of shared-QP indices the given
// priority may use out of n.
func (q *qosState) qpRange(pri Priority, n int) (lo, hi int) {
	if q.mode != QoSHWSep || n <= 1 {
		return 0, n
	}
	split := n * 3 / 4
	if split < 1 {
		split = 1
	}
	if split >= n {
		split = n - 1
	}
	if pri == PriHigh {
		return 0, split
	}
	return split, n
}

// throttle delays a low-priority operation of the given size according
// to the active isolation policy before it is posted.
func (q *qosState) throttle(p *simtime.Proc, pri Priority, bytes int64) {
	if pri != PriLow || bytes == 0 {
		return
	}
	var rate float64
	switch q.mode {
	case QoSHWSep:
		// Hardware partitioning: the NIC arbitrates round robin over
		// the reserved QP sets, so the low class holds its share of the
		// wire whether or not high-priority traffic exists — exactly
		// why the paper finds HW-Sep's aggregate throughput lowest.
		lo, hi := q.qpRange(PriLow, q.k)
		rate = float64(hi-lo) / float64(q.k) * 4.2e9
	case QoSSWPri:
		active := q.sig.lastHigh > 0 && p.Now()-q.sig.lastHigh < highActiveWindow
		congested := q.sig.rttBase > 0 && q.sig.rttEMA > 1.5*q.sig.rttBase
		if !active && !congested {
			// Policy 2: no (or very light) high-priority load — run free.
			q.lowNext = 0
			return
		}
		// Policies 1 and 3: rate limit.
		rate = lowRateFraction * 4.2e9
	default:
		return
	}
	d := params.TransferTime(bytes, rate)
	start := p.Now()
	if q.lowNext > start {
		start = q.lowNext
	}
	q.lowNext = start + d
	if start > p.Now() {
		if q.inst != nil {
			reg := q.inst.obsReg()
			reg.Add("lite.qos.throttled", 1)
			reg.Observe("lite.qos.throttle", start-p.Now())
		}
		p.SleepUntil(start)
	}
}

// record feeds per-op statistics into the SW-Pri controller.
func (q *qosState) record(p *simtime.Proc, pri Priority, bytes int64, rtt simtime.Time) {
	if pri != PriHigh {
		return
	}
	q.sig.lastHigh = p.Now()
	r := float64(rtt)
	if q.sig.rttBase == 0 || r < q.sig.rttBase {
		q.sig.rttBase = r
	}
	if q.sig.rttEMA == 0 {
		q.sig.rttEMA = r
	} else {
		q.sig.rttEMA = 0.9*q.sig.rttEMA + 0.1*r
	}
}

// SetQoSMode sets the isolation policy on every node.
func (d *Deployment) SetQoSMode(m QoSMode) {
	for _, inst := range d.Instances {
		inst.qos.mode = m
	}
}
