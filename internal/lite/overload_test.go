package lite

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"lite/internal/cluster"
	"lite/internal/params"
	"lite/internal/simtime"
)

// TestRingBytesBoundary pins the IMM encoding limit: a ring of exactly
// MaxRingBytes (64 MB) is accepted, one alignment step past it — or an
// unaligned or non-positive size — is rejected with the typed error at
// instance setup, before any binding can be built on it.
func TestRingBytesBoundary(t *testing.T) {
	cases := []struct {
		name string
		ring int64
		ok   bool
	}{
		{"exactly-max", MaxRingBytes, true},
		{"max-plus-8", MaxRingBytes + 8, false},
		{"unaligned", 4096 + 4, false},
		{"zero", 0, false},
		{"negative", -8, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := params.Default()
			cls := cluster.MustNew(&cfg, 2, 1<<30)
			opts := DefaultOptions()
			opts.RingBytes = tc.ring
			_, err := Start(cls, opts)
			if tc.ok && err != nil {
				t.Fatalf("RingBytes=%d: Start failed: %v", tc.ring, err)
			}
			if !tc.ok && !errors.Is(err, ErrBadRingBytes) {
				t.Fatalf("RingBytes=%d: err = %v, want ErrBadRingBytes", tc.ring, err)
			}
		})
	}
}

// TestRPCDedupDropReply provokes the duplicate-execution scenario the
// sequence-number window exists for: the server executes the call but
// the reply is lost, the client times out and retries, and the server
// must recognize the retry and replay the cached reply instead of
// executing the handler twice.
func TestRPCDedupDropReply(t *testing.T) {
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, 2, 1<<30)
	opts := DefaultOptions()
	opts.RPCTimeout = 200 * time.Microsecond
	opts.RetryBackoff = 20 * time.Microsecond
	dep, err := Start(cls, opts)
	if err != nil {
		t.Fatal(err)
	}

	const replyLen = 480
	execs := 0
	inst := dep.Instance(1)
	if err := inst.ServeRPC(echoFn, 1, func(p *simtime.Proc, c *Call) []byte {
		execs++
		out := make([]byte, replyLen)
		copy(out, c.Input)
		return out
	}); err != nil {
		t.Fatal(err)
	}

	// Drop exactly the first server->client transfer big enough to be
	// the reply (control traffic and credit updates are far smaller);
	// the retry's replayed reply must get through.
	drops := 0
	cls.Fab.SetDropHook(func(at simtime.Time, src, dst int, size int64) bool {
		if src == 1 && dst == 0 && size >= replyLen && drops == 0 {
			drops++
			return true
		}
		return false
	})

	var out []byte
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		out, err = c.RPCRetry(p, 1, echoFn, []byte("dedup-probe"), 512)
	})
	run(t, cls)

	if err != nil {
		t.Fatalf("RPCRetry after dropped reply: %v", err)
	}
	if drops != 1 {
		t.Fatalf("drop hook fired %d times, want exactly 1 (reply lost once)", drops)
	}
	if execs != 1 {
		t.Fatalf("handler executed %d times, want 1 (retry must be deduplicated)", execs)
	}
	want := make([]byte, replyLen)
	copy(want, "dedup-probe")
	if !bytes.Equal(out, want) {
		t.Fatalf("replayed reply = %q, want %q", out, want)
	}
}

// TestAdmissionShedsFast checks the admission-control contract: once
// the pending-call queue reaches the high-water mark, a new call is
// rejected with ErrOverloaded at network round-trip speed instead of
// aging into the RPC timeout.
func TestAdmissionShedsFast(t *testing.T) {
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, 2, 1<<30)
	opts := DefaultOptions()
	opts.AdmissionHighWater = 2
	dep, err := Start(cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Register the function but run no server threads: every arriving
	// call queues, so the third arrival finds the queue at the mark.
	if err := dep.Instance(1).RegisterRPC(echoFn); err != nil {
		t.Fatal(err)
	}

	var shedErr error
	var shedLatency simtime.Time
	for k := 0; k < 3; k++ {
		k := k
		cls.GoOn(0, "client", func(p *simtime.Proc) {
			p.SleepUntil(simtime.Time(k+1) * simtime.Time(10*time.Microsecond))
			c := dep.Instance(0).KernelClient()
			start := p.Now()
			_, err := c.RPC(p, 1, echoFn, []byte("q"), 64)
			if k == 2 {
				shedErr = err
				shedLatency = p.Now() - start
			} else if !errors.Is(err, ErrTimeout) {
				t.Errorf("queued call %d: err = %v, want ErrTimeout", k, err)
			}
		})
	}
	run(t, cls)

	if !errors.Is(shedErr, ErrOverloaded) {
		t.Fatalf("third call: err = %v, want ErrOverloaded", shedErr)
	}
	if shedLatency >= simtime.Time(opts.RPCTimeout) {
		t.Fatalf("shed took %v, want well under the %v timeout", shedLatency, opts.RPCTimeout)
	}
}

// TestRetryOverloadBacksOff checks that the retry layer treats
// ErrOverloaded as a definitive not-executed answer: it backs off and
// retries the same binding — no rebind, which is the escalation for
// ambiguous timeouts — and succeeds once the server drains.
func TestRetryOverloadBacksOff(t *testing.T) {
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, 2, 1<<30)
	dom := cls.EnableObs()
	opts := DefaultOptions()
	opts.AdmissionHighWater = 1
	dep, err := Start(cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Instance(1).RegisterRPC(echoFn); err != nil {
		t.Fatal(err)
	}

	// A first call occupies the queue slot so the probe call sheds.
	cls.GoOn(0, "filler", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		if _, err := c.RPC(p, 1, echoFn, []byte("fill"), 64); err != nil {
			t.Errorf("filler call: %v", err)
		}
	})
	var probeErr error
	cls.GoOn(0, "probe", func(p *simtime.Proc) {
		p.Sleep(10 * time.Microsecond)
		c := dep.Instance(0).KernelClient()
		_, probeErr = c.RPCRetry(p, 1, echoFn, []byte("probe"), 64)
	})
	// The server comes up only after the probe has been shed at least
	// once, then drains both calls.
	cls.GoOn(1, "late-server", func(p *simtime.Proc) {
		p.Sleep(50 * time.Microsecond)
		c := dep.Instance(1).KernelClient()
		for served := 0; served < 2; served++ {
			call, err := c.RecvRPC(p, echoFn)
			if err != nil {
				t.Errorf("server recv: %v", err)
				return
			}
			if err := c.ReplyRPC(p, call, call.Input); err != nil {
				t.Errorf("server reply: %v", err)
				return
			}
		}
	})
	run(t, cls)

	if probeErr != nil {
		t.Fatalf("probe after backoff: %v", probeErr)
	}
	snap := dom.Snapshot()
	if n := snap.Counters["lite.retry.overloads"]; n < 1 {
		t.Fatalf("lite.retry.overloads = %d, want >= 1", n)
	}
	if n := snap.Counters["lite.rpc.shed"]; n < 1 {
		t.Fatalf("lite.rpc.shed = %d, want >= 1", n)
	}
	if n := snap.Counters["lite.retry.rebinds"]; n != 0 {
		t.Fatalf("lite.retry.rebinds = %d, want 0 (overload must not trigger rebind)", n)
	}
}
