package lite

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"lite/internal/cluster"
	"lite/internal/load"
	"lite/internal/params"
	"lite/internal/simtime"
)

// TestRingBytesBoundary pins the IMM encoding limit: a ring of exactly
// MaxRingBytes (64 MB) is accepted, one alignment step past it — or an
// unaligned or non-positive size — is rejected with the typed error at
// instance setup, before any binding can be built on it.
func TestRingBytesBoundary(t *testing.T) {
	cases := []struct {
		name string
		ring int64
		ok   bool
	}{
		{"exactly-max", MaxRingBytes, true},
		{"max-plus-8", MaxRingBytes + 8, false},
		{"unaligned", 4096 + 4, false},
		{"zero", 0, false},
		{"negative", -8, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := params.Default()
			cls := cluster.MustNew(&cfg, 2, 1<<30)
			opts := DefaultOptions()
			opts.RingBytes = tc.ring
			_, err := Start(cls, opts)
			if tc.ok && err != nil {
				t.Fatalf("RingBytes=%d: Start failed: %v", tc.ring, err)
			}
			if !tc.ok && !errors.Is(err, ErrBadRingBytes) {
				t.Fatalf("RingBytes=%d: err = %v, want ErrBadRingBytes", tc.ring, err)
			}
		})
	}
}

// TestRPCDedupDropReply provokes the duplicate-execution scenario the
// sequence-number window exists for: the server executes the call but
// the reply is lost, the client times out and retries, and the server
// must recognize the retry and replay the cached reply instead of
// executing the handler twice.
func TestRPCDedupDropReply(t *testing.T) {
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, 2, 1<<30)
	opts := DefaultOptions()
	opts.RPCTimeout = 200 * time.Microsecond
	opts.RetryBackoff = 20 * time.Microsecond
	dep, err := Start(cls, opts)
	if err != nil {
		t.Fatal(err)
	}

	const replyLen = 480
	execs := 0
	inst := dep.Instance(1)
	if err := inst.ServeRPC(echoFn, 1, func(p *simtime.Proc, c *Call) []byte {
		execs++
		out := make([]byte, replyLen)
		copy(out, c.Input)
		return out
	}); err != nil {
		t.Fatal(err)
	}

	// Drop exactly the first server->client transfer big enough to be
	// the reply (control traffic and credit updates are far smaller);
	// the retry's replayed reply must get through.
	drops := 0
	cls.Fab.SetDropHook(func(at simtime.Time, src, dst int, size int64) bool {
		if src == 1 && dst == 0 && size >= replyLen && drops == 0 {
			drops++
			return true
		}
		return false
	})

	var out []byte
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		out, err = c.RPCRetry(p, 1, echoFn, []byte("dedup-probe"), 512)
	})
	run(t, cls)

	if err != nil {
		t.Fatalf("RPCRetry after dropped reply: %v", err)
	}
	if drops != 1 {
		t.Fatalf("drop hook fired %d times, want exactly 1 (reply lost once)", drops)
	}
	if execs != 1 {
		t.Fatalf("handler executed %d times, want 1 (retry must be deduplicated)", execs)
	}
	want := make([]byte, replyLen)
	copy(want, "dedup-probe")
	if !bytes.Equal(out, want) {
		t.Fatalf("replayed reply = %q, want %q", out, want)
	}
}

// TestAdmissionShedsFast checks the admission-control contract: once
// the pending-call queue reaches the high-water mark, a new call is
// rejected with ErrOverloaded at network round-trip speed instead of
// aging into the RPC timeout.
func TestAdmissionShedsFast(t *testing.T) {
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, 2, 1<<30)
	opts := DefaultOptions()
	opts.AdmissionHighWater = 2
	dep, err := Start(cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Register the function but run no server threads: every arriving
	// call queues, so the third arrival finds the queue at the mark.
	if err := dep.Instance(1).RegisterRPC(echoFn); err != nil {
		t.Fatal(err)
	}

	var shedErr error
	var shedLatency simtime.Time
	for k := 0; k < 3; k++ {
		k := k
		cls.GoOn(0, "client", func(p *simtime.Proc) {
			p.SleepUntil(simtime.Time(k+1) * simtime.Time(10*time.Microsecond))
			c := dep.Instance(0).KernelClient()
			start := p.Now()
			_, err := c.RPC(p, 1, echoFn, []byte("q"), 64)
			if k == 2 {
				shedErr = err
				shedLatency = p.Now() - start
			} else if !errors.Is(err, ErrTimeout) {
				t.Errorf("queued call %d: err = %v, want ErrTimeout", k, err)
			}
		})
	}
	run(t, cls)

	if !errors.Is(shedErr, ErrOverloaded) {
		t.Fatalf("third call: err = %v, want ErrOverloaded", shedErr)
	}
	if shedLatency >= simtime.Time(opts.RPCTimeout) {
		t.Fatalf("shed took %v, want well under the %v timeout", shedLatency, opts.RPCTimeout)
	}
}

// TestRetryOverloadBacksOff checks that the retry layer treats
// ErrOverloaded as a definitive not-executed answer: it backs off and
// retries the same binding — no rebind, which is the escalation for
// ambiguous timeouts — and succeeds once the server drains.
func TestRetryOverloadBacksOff(t *testing.T) {
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, 2, 1<<30)
	dom := cls.EnableObs()
	opts := DefaultOptions()
	opts.AdmissionHighWater = 1
	dep, err := Start(cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Instance(1).RegisterRPC(echoFn); err != nil {
		t.Fatal(err)
	}

	// A first call occupies the queue slot so the probe call sheds.
	cls.GoOn(0, "filler", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		if _, err := c.RPC(p, 1, echoFn, []byte("fill"), 64); err != nil {
			t.Errorf("filler call: %v", err)
		}
	})
	var probeErr error
	cls.GoOn(0, "probe", func(p *simtime.Proc) {
		p.Sleep(10 * time.Microsecond)
		c := dep.Instance(0).KernelClient()
		_, probeErr = c.RPCRetry(p, 1, echoFn, []byte("probe"), 64)
	})
	// The server comes up only after the probe has been shed at least
	// once, then drains both calls.
	cls.GoOn(1, "late-server", func(p *simtime.Proc) {
		p.Sleep(50 * time.Microsecond)
		c := dep.Instance(1).KernelClient()
		for served := 0; served < 2; served++ {
			call, err := c.RecvRPC(p, echoFn)
			if err != nil {
				t.Errorf("server recv: %v", err)
				return
			}
			if err := c.ReplyRPC(p, call, call.Input); err != nil {
				t.Errorf("server reply: %v", err)
				return
			}
		}
	})
	run(t, cls)

	if probeErr != nil {
		t.Fatalf("probe after backoff: %v", probeErr)
	}
	snap := dom.Snapshot()
	if n := snap.Counters["lite.retry.overloads"]; n < 1 {
		t.Fatalf("lite.retry.overloads = %d, want >= 1", n)
	}
	if n := snap.Counters["lite.rpc.shed"]; n < 1 {
		t.Fatalf("lite.rpc.shed = %d, want >= 1", n)
	}
	if n := snap.Counters["lite.retry.rebinds"]; n != 0 {
		t.Fatalf("lite.retry.rebinds = %d, want 0 (overload must not trigger rebind)", n)
	}
}

// --- cost-aware fair admission ---

// runFairnessWorkload mirrors the bench fairness experiment exactly:
// four clients share one 2-worker x 2us server (capacity 1 req/us) at
// 2x aggregate overload, with client 3 offering 5x the load of each
// well-behaved client. Requests go out raw (no retry wrapper) so each
// client's OK count is the goodput the admission policy granted it.
func runFairnessWorkload(t *testing.T, seed uint64, fair bool) []*load.Result {
	t.Helper()
	const (
		clients = 4
		srvNode = clients
		service = 2 * time.Microsecond
		workers = 2
		reqs    = 2400
		rate    = 2.0
	)
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, clients+1, 1<<30)
	opts := DefaultOptions()
	opts.RPCTimeout = 200 * time.Microsecond
	opts.RetryBackoff = 20 * time.Microsecond
	opts.AdmissionHighWater = 48
	opts.FairAdmission = fair
	dep, err := Start(cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Instance(srvNode).ServeRPC(echoFn, workers, func(p *simtime.Proc, c *Call) []byte {
		p.Work(service)
		return c.Input[:8]
	}); err != nil {
		t.Fatal(err)
	}
	// Warm every binding (and prime the fair policy's service-time EWMA)
	// before the schedule opens.
	for n := 0; n < clients; n++ {
		n := n
		cls.GoOn(n, "warmup", func(p *simtime.Proc) {
			c := dep.Instance(n).KernelClient()
			if _, err := c.RPCRetry(p, srvNode, echoFn, make([]byte, 16), 64); err != nil {
				t.Errorf("warmup %d: %v", n, err)
			}
		})
	}
	scheds := load.SplitPoissonWeighted(seed, rate, reqs, simtime.Time(50*time.Microsecond),
		[]float64{0.25, 0.25, 0.25, 1.25})
	nodes := make([]int, clients)
	issuers := make([]*Client, clients)
	for n := range nodes {
		nodes[n] = n
		issuers[n] = dep.Instance(n).KernelClient()
	}
	res := load.RunMulti(cls, nodes, scheds, func(p *simtime.Proc, issuer, k int) load.Status {
		_, err := issuers[issuer].RPC(p, srvNode, echoFn, make([]byte, 16), 64)
		switch {
		case err == nil:
			return load.StatusOK
		case errors.Is(err, ErrOverloaded):
			return load.StatusShed
		case errors.Is(err, ErrTimeout):
			return load.StatusTimeout
		default:
			return load.StatusError
		}
	})
	run(t, cls)
	return res
}

func goodputRatio(res []*load.Result) float64 {
	min, max := res[0].OK, res[0].OK
	for _, r := range res[1:] {
		if r.OK < min {
			min = r.OK
		}
		if r.OK > max {
			max = r.OK
		}
	}
	if min == 0 {
		return float64(max)
	}
	return float64(max) / float64(min)
}

// fingerprintResults flattens per-client results into strings so two
// same-seed runs can be compared bit for bit.
func fingerprintResults(res []*load.Result) []string {
	out := make([]string, len(res))
	for n, r := range res {
		out[n] = fmt.Sprintf("issued=%d ok=%d shed=%d timeout=%d err=%d p99=%d end=%d",
			r.Issued, r.OK, r.Shed, r.Timeout, r.Errored, r.P99(), r.End)
	}
	return out
}

// TestFairAdmissionEqualizesGoodput is the fairness property test: at
// 2x overload with one greedy client, the cost-aware DRR policy must
// hold per-client goodput within 1.5x across clients, while the
// depth-only ablation — identical arrival instants, only the admission
// decision differs — leaves at least a 4x spread. Both policies must
// replay bit for bit under the same seed.
func TestFairAdmissionEqualizesGoodput(t *testing.T) {
	const seed = 42
	fair := runFairnessWorkload(t, seed, true)
	fairRatio := goodputRatio(fair)
	if fairRatio > 1.5 {
		t.Fatalf("fair admission goodput max/min = %.2f, want <= 1.5 (per-client OK: %v)",
			fairRatio, fingerprintResults(fair))
	}
	depth := runFairnessWorkload(t, seed, false)
	depthRatio := goodputRatio(depth)
	if depthRatio < 4.0 {
		t.Fatalf("depth-only goodput max/min = %.2f, want >= 4 (per-client OK: %v)",
			depthRatio, fingerprintResults(depth))
	}
	// Every client keeps a useful share under the fair policy: nobody is
	// starved outright even while the aggregate stays 2x over capacity.
	for n, r := range fair {
		if r.OK == 0 {
			t.Fatalf("fair admission starved client %d: %+v", n, r)
		}
	}
	// Determinism: a same-seed rerun of each policy must reproduce every
	// per-client tally, tail quantile, and completion instant exactly.
	for _, tc := range []struct {
		name string
		fair bool
		want []string
	}{
		{"fair", true, fingerprintResults(fair)},
		{"depth-only", false, fingerprintResults(depth)},
	} {
		got := fingerprintResults(runFairnessWorkload(t, seed, tc.fair))
		for n := range tc.want {
			if got[n] != tc.want[n] {
				t.Fatalf("%s policy replay diverged for client %d:\n  first:  %s\n  second: %s",
					tc.name, n, tc.want[n], got[n])
			}
		}
	}
}

// --- dedup across server restart ---

// TestRetryRestartCrossingMaybeExecuted pins the dedup-window gap fix:
// a call executes, its reply is lost, and the server crashes and
// restarts before the retry lands. The restarted server's dedup window
// is gone, so it cannot prove the retry safe to re-execute; it must
// answer with the ambiguity signal and the retry layer must surface
// the typed ErrMaybeExecuted — never execute the handler twice, never
// pretend the call definitively failed.
func TestRetryRestartCrossingMaybeExecuted(t *testing.T) {
	opts := heartbeatOptions()
	opts.RPCTimeout = 200 * time.Microsecond
	opts.RetryBackoff = 20 * time.Microsecond
	cls, dep := testDepOpts(t, 2, opts)
	dom := cls.EnableObs()

	const replyLen = 480
	execs := 0
	serve := func() {
		if err := dep.Instance(1).ServeRPC(echoFn, 1, func(p *simtime.Proc, c *Call) []byte {
			execs++
			out := make([]byte, replyLen)
			copy(out, c.Input)
			return out
		}); err != nil {
			t.Errorf("serve: %v", err)
		}
	}
	serve()

	// Drop the first full-size reply so the client times out after the
	// handler has already run.
	drops := 0
	cls.Fab.SetDropHook(func(at simtime.Time, src, dst int, size int64) bool {
		if src == 1 && dst == 0 && size >= replyLen && drops == 0 {
			drops++
			return true
		}
		return false
	})

	// The server bounces while the client is waiting out its timeout.
	cls.GoOn(0, "bouncer", func(p *simtime.Proc) {
		p.Sleep(50 * time.Microsecond)
		cls.CrashNode(p, 1)
		p.Sleep(50 * time.Microsecond)
		cls.RestartNode(p, 1)
	})

	var callErr error
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		_, callErr = c.RPCRetry(p, 1, echoFn, []byte("restart-probe"), 512)
	})
	run(t, cls)

	if !errors.Is(callErr, ErrMaybeExecuted) {
		t.Fatalf("retry across restart: err = %v, want ErrMaybeExecuted", callErr)
	}
	if execs != 1 {
		t.Fatalf("handler executed %d times, want exactly 1", execs)
	}
	snap := dom.Snapshot()
	if n := snap.Counters["lite.rpc.dedup_ambiguous"]; n < 1 {
		t.Fatalf("lite.rpc.dedup_ambiguous = %d, want >= 1", n)
	}
	if n := snap.Counters["lite.retry.maybe_executed"]; n < 1 {
		t.Fatalf("lite.retry.maybe_executed = %d, want >= 1", n)
	}
}

// TestServeRPCRearmAfterRestart checks that a ServeRPC registration
// survives a crash/restart cycle: the worker pool is re-spawned in the
// new incarnation and a fresh call (new binding, new boot stamp)
// succeeds without the caller doing anything special.
func TestServeRPCRearmAfterRestart(t *testing.T) {
	cls, dep := testDepOpts(t, 2, heartbeatOptions())
	if err := dep.Instance(1).ServeRPC(echoFn, 1, func(p *simtime.Proc, c *Call) []byte {
		return c.Input
	}); err != nil {
		t.Fatal(err)
	}
	cls.GoOn(0, "driver", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		if out, err := c.RPCRetry(p, 1, echoFn, []byte("before"), 64); err != nil || string(out) != "before" {
			t.Fatalf("RPC before restart = %q, %v", out, err)
		}
		cls.CrashNode(p, 1)
		p.Sleep(100 * time.Microsecond)
		cls.RestartNode(p, 1)
		// Wait for rejoin, then the re-armed pool must serve again.
		for dep.Instance(0).NodeDead(1) {
			p.Sleep(200 * time.Microsecond)
		}
		out, err := c.RPCRetry(p, 1, echoFn, []byte("after"), 64)
		if err != nil || string(out) != "after" {
			t.Fatalf("RPC after restart = %q, %v", out, err)
		}
	})
	run(t, cls)
}
