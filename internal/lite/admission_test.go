package lite

import (
	"fmt"
	"testing"

	"lite/internal/simtime"
)

func TestEwmaInt(t *testing.T) {
	cases := []struct {
		name    string
		samples []int64
		want    int64
	}{
		// The first sample primes the estimator directly.
		{"prime", []int64{100}, 100},
		// est += (sample - est) >> 3.
		{"decay", []int64{100, 200}, 112},
		// Negative samples clamp to zero before the update.
		{"negative-clamps", []int64{64, -1000}, 56},
		// Oversized samples clamp to maxAdmCost before the update.
		{"large-clamps", []int64{0, 1 << 62}, (int64(1) << 40) >> admEwmaShift},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var e ewmaInt
			for _, s := range tc.samples {
				e.observe(s)
			}
			if e.v != tc.want {
				t.Fatalf("samples %v: got %d, want %d", tc.samples, e.v, tc.want)
			}
		})
	}
	t.Run("unprimed", func(t *testing.T) {
		var e ewmaInt
		if e.primed || e.v != 0 {
			t.Fatalf("fresh estimator: primed=%v v=%d", e.primed, e.v)
		}
	})
	t.Run("bimodal", func(t *testing.T) {
		// Alternating 1us / 9us handlers: the estimate settles between
		// the modes (fixed points ~4733 and ~5267), never chasing
		// either extreme.
		var e ewmaInt
		for k := 0; k < 64; k++ {
			if k%2 == 0 {
				e.observe(1000)
			} else {
				e.observe(9000)
			}
		}
		if e.v < 4000 || e.v > 6000 {
			t.Fatalf("bimodal estimate %d outside [4000, 6000]", e.v)
		}
	})
}

func TestAdmitColdStartFallsBackToDepth(t *testing.T) {
	a := newFnAdm()
	// No service-time estimate yet: the policy must behave exactly like
	// the depth-only shed.
	if _, hint, ok := a.admit(1, 64, 4, 4); ok || hint != 0 {
		t.Fatalf("depth at high water: ok=%v hint=%v, want shed with no hint", ok, hint)
	}
	cost, _, ok := a.admit(1, 64, 4, 3)
	if !ok {
		t.Fatal("depth under high water must admit during cold start")
	}
	if cost != 64 {
		t.Fatalf("cold-start cost = %d, want input bytes 64", cost)
	}
}

func TestAdmitOneClientDegenerate(t *testing.T) {
	// A single client gets the whole budget: fairness with nobody to be
	// fair to must not shed below the depth-equivalent capacity.
	a := newFnAdm()
	a.svc.observe(1000)
	costs := make([]int64, 0, 4)
	for k := 0; k < 4; k++ {
		cost, hint, ok := a.admit(1, 100, 4, k)
		if !ok || hint != 0 {
			t.Fatalf("admit %d: ok=%v hint=%v", k, ok, hint)
		}
		costs = append(costs, cost)
	}
	// cost = bytes + svc EWMA; budget = hw x (svc + in) = 4 x 1100.
	for k, c := range costs {
		if c != 1100 {
			t.Fatalf("cost[%d] = %d, want 1100", k, c)
		}
	}
	// The 5th call finds the budget full and the deficit empty: shed,
	// with a hint sized to draining the client's in-flight work.
	_, hint, ok := a.admit(1, 100, 4, 4)
	if ok {
		t.Fatal("5th call admitted past a full budget")
	}
	if want := simtime.Time(5000); hint != want {
		t.Fatalf("hint = %v, want svc x (calls+1) = %v", hint, want)
	}
	// One completion frees a slot.
	a.complete(1, 1100)
	if _, _, ok := a.admit(1, 100, 4, 3); !ok {
		t.Fatal("admit after completion failed")
	}
}

func TestAdmitCostOverflowClamp(t *testing.T) {
	a := newFnAdm()
	a.svc.observe(1)
	cost, _, ok := a.admit(1, int64(1)<<60, 2, 0)
	if !ok {
		t.Fatal("first oversized call must be admitted")
	}
	if cost != maxAdmCost {
		t.Fatalf("cost = %d, want clamp at %d", cost, maxAdmCost)
	}
	// A second clamped call still fits the budget (2 x avg unit); the
	// third must shed — and the arithmetic stays well clear of int64
	// overflow throughout.
	if _, _, ok := a.admit(1, int64(1)<<60, 2, 1); !ok {
		t.Fatal("second oversized call must be admitted")
	}
	_, hint, ok := a.admit(1, int64(1)<<60, 2, 2)
	if ok {
		t.Fatal("third oversized call admitted past the budget")
	}
	if hint <= 0 || hint > a.hintCap {
		t.Fatalf("hint = %v outside (0, %v]", hint, a.hintCap)
	}
	if a.total < 0 || a.total > 3*maxAdmCost {
		t.Fatalf("total cost %d corrupted", a.total)
	}
}

func TestAdmitHintClamp(t *testing.T) {
	a := newFnAdm()
	// An enormous (clamped) service estimate times queued calls must
	// never exceed the hint cap.
	a.svc.observe(1 << 62)
	if _, _, ok := a.admit(1, 0, 1, 0); !ok {
		t.Fatal("first call must be admitted")
	}
	_, hint, ok := a.admit(1, 0, 1, 1)
	if ok {
		t.Fatal("second call admitted past a budget of one")
	}
	if hint != a.hintCap {
		t.Fatalf("hint = %v, want clamp at %v", hint, a.hintCap)
	}
}

func TestAdmitDeficitRoundRobin(t *testing.T) {
	// Two clients, fixed cost 1000/call (zero-byte inputs, svc=1000ns),
	// hw=4 so budget=4000 and the two-client share is 2000. The
	// scripted sequence exercises every admit rule: within-share, the
	// over-share shed, deficit grant at a round boundary, and spend.
	a := newFnAdm()
	a.svc.observe(1000)
	const admit, complete = 0, 1
	steps := []struct {
		op       int
		src      int
		wantOK   bool
		wantHint simtime.Time
	}{
		{op: admit, src: 1, wantOK: true}, // r1: only active client, share 4000
		{op: admit, src: 2, wantOK: true}, // r1: within share 2000
		{op: admit, src: 2, wantOK: true}, // r1: at share
		{op: complete, src: 2},            // one of c2's calls drains
		{op: admit, src: 2, wantOK: true}, // r1: back within share; round reaches budget
		// Round boundary on the next admit: c1 used 1000 < share while
		// holding 1000 < share in flight, so it banks 1000 deficit;
		// c2 used 3000 and banks nothing.
		{op: admit, src: 1, wantOK: true},                  // r2: at share, no deficit needed
		{op: admit, src: 1, wantOK: true},                  // r2: 1000 over share, covered by the banked deficit
		{op: admit, src: 1, wantOK: false, wantHint: 4000}, // deficit spent -> shed, hint = 1000 x (3+1)
		{op: admit, src: 2, wantOK: false, wantHint: 3000}, // c2 banked nothing -> shed, hint = 1000 x (2+1)
	}
	for k, st := range steps {
		if st.op == complete {
			a.complete(st.src, 1000)
			continue
		}
		_, hint, ok := a.admit(st.src, 0, 4, k)
		if ok != st.wantOK {
			t.Fatalf("step %d (src %d): ok=%v, want %v", k, st.src, ok, st.wantOK)
		}
		if !ok && hint != st.wantHint {
			t.Fatalf("step %d (src %d): hint=%v, want %v", k, st.src, hint, st.wantHint)
		}
	}
}

func TestAdmitDeficitSpendIsIncremental(t *testing.T) {
	// Banked deficit covers the marginal cost of each over-share call
	// 1:1 (true DRR), not the cumulative overage: a client with two
	// calls' worth of deficit gets exactly two calls past its share.
	a := newFnAdm()
	a.svc.observe(1000)
	a.client(2).cost, a.client(2).calls = 1000, 1 // keeps active=2, share=2000
	c := a.client(1)
	c.cost, c.calls, c.deficit = 2000, 2, 2000
	if _, _, ok := a.admit(1, 0, 4, 0); !ok {
		t.Fatal("first over-share call must spend deficit and admit")
	}
	if c.deficit != 1000 {
		t.Fatalf("deficit after first spend = %d, want 1000", c.deficit)
	}
	if _, _, ok := a.admit(1, 0, 4, 0); !ok {
		t.Fatal("second over-share call must spend the remaining deficit")
	}
	if c.deficit != 0 {
		t.Fatalf("deficit after second spend = %d, want 0", c.deficit)
	}
	if _, hint, ok := a.admit(1, 0, 4, 0); ok || hint == 0 {
		t.Fatalf("third over-share call: ok=%v hint=%v, want shed with hint", ok, hint)
	}
}

func TestEndRoundDeficitCapAndGC(t *testing.T) {
	a := newFnAdm()
	busy := a.client(7)
	busy.cost, busy.calls = 1, 1
	// Client 8 used more than its share and has nothing left in flight:
	// it earns no deficit and must be garbage-collected.
	a.client(8).used = 2500
	a.endRound(2000)
	if busy.deficit != 2000 {
		t.Fatalf("first round deficit = %d, want the full share 2000", busy.deficit)
	}
	a.endRound(2000)
	a.endRound(2000)
	if busy.deficit != 4000 {
		t.Fatalf("deficit after three idle rounds = %d, want cap at two shares", busy.deficit)
	}
	if a.clients[8] != nil {
		t.Fatal("departed over-share client must be garbage-collected")
	}
	if a.clients[7] == nil {
		t.Fatal("client with in-flight work must survive the round")
	}
}

func TestAdmitDeterministicReplay(t *testing.T) {
	// The same interleaved multi-client arrival sequence must produce
	// identical decisions on every run: the accounting may live in maps
	// but no decision may depend on iteration order.
	run := func() []string {
		a := newFnAdm()
		a.svc.observe(1500)
		var out []string
		srcs := []int{3, 1, 2, 1, 1, 3, 2, 1, 3, 2, 1, 1, 2, 3, 1, 2}
		for k, src := range srcs {
			cost, hint, ok := a.admit(src, int64(16*(k%3)), 6, k%6)
			out = append(out, fmt.Sprintf("%d:%v/%d/%v", src, ok, cost, hint))
			if k%5 == 4 && ok {
				a.complete(src, cost)
			}
		}
		return out
	}
	a, b := run(), run()
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("replay diverged at %d: %q vs %q", k, a[k], b[k])
		}
	}
}

func TestAdmitTenantColdStartFallsBackToDepth(t *testing.T) {
	a := newFnAdm()
	if _, hint, ok := a.admitTenant(1, 1, 64, 4, 4); ok || hint != 0 {
		t.Fatalf("depth at high water: ok=%v hint=%v, want shed with no hint", ok, hint)
	}
	cost, _, ok := a.admitTenant(1, 1, 64, 4, 3)
	if !ok {
		t.Fatal("depth under high water must admit during cold start")
	}
	if cost != 64 {
		t.Fatalf("cold-start cost = %d, want input bytes 64", cost)
	}
}

func TestTenantWeightClampAndSum(t *testing.T) {
	a := newFnAdm()
	if a.tenant(1, 0).w != 1 {
		t.Fatal("weight 0 must clamp to 1")
	}
	if a.tenant(2, 1<<20).w != maxTenantWeight {
		t.Fatalf("oversized weight must clamp to %d", maxTenantWeight)
	}
	if want := 1 + maxTenantWeight; a.tsumW != want {
		t.Fatalf("tsumW = %d, want %d", a.tsumW, want)
	}
	// A weight change moves the sum by the delta, not a re-add.
	a.tenant(1, 5)
	if want := 5 + maxTenantWeight; a.tsumW != want {
		t.Fatalf("tsumW after reweight = %d, want %d", a.tsumW, want)
	}
}

func TestAdmitTenantNewcomerSeededAtCap(t *testing.T) {
	// A tenant's first-ever arrival must be admitted: the bank is seeded
	// at the cap, so newcomers are not cold-shed while others hold
	// banked credit.
	a := newFnAdm()
	a.svc.observe(1000)
	cost, _, ok := a.admitTenant(1, 1, 0, 4, 0)
	if !ok || cost != 1000 {
		t.Fatalf("newcomer: ok=%v cost=%d, want admit at cost 1000", ok, cost)
	}
	c := a.tenants[1]
	// cap = bankShares x unit x w = 2 x 1000 x 1, minus the call just
	// admitted.
	if c.credit != 1000 {
		t.Fatalf("credit after first admit = %d, want 1000", c.credit)
	}
}

func TestAdmitTenantEmptyBankShedsWithoutConsumingBudget(t *testing.T) {
	a := newFnAdm()
	a.svc.observe(1000)
	// Another tenant holds work in flight, so the idle floor is off.
	if _, _, ok := a.admitTenant(1, 1, 0, 8, 0); !ok {
		t.Fatal("setup admit failed")
	}
	g := a.tenant(7, 1)
	g.credit, g.rem, g.lastA = 0, 0, a.accrued
	before := a.total
	_, hint, ok := a.admitTenant(7, 1, 0, 8, 0)
	if ok {
		t.Fatal("empty bank must shed while the server is busy")
	}
	if a.total != before {
		t.Fatalf("shed consumed budget: total %d -> %d", before, a.total)
	}
	if hint <= 0 || hint > a.hintCap {
		t.Fatalf("hint = %v outside (0, %v]", hint, a.hintCap)
	}
}

func TestAdmitTenantIdleFloorNeverStarves(t *testing.T) {
	// Credit accrues only from admitted tenant cost, so an empty bank
	// with a completely idle server must admit (work conservation),
	// never deadlock waiting for accrual that can only come from
	// itself.
	a := newFnAdm()
	a.svc.observe(1000)
	g := a.tenant(7, 1)
	g.credit, g.rem = 0, 0
	for k := 0; k < 3; k++ {
		cost, _, ok := a.admitTenant(7, 1, 0, 8, 0)
		if !ok {
			t.Fatalf("serial call %d shed on an idle server", k)
		}
		if g.credit < 0 {
			t.Fatalf("credit went negative: %d", g.credit)
		}
		a.completeTenant(7, cost)
	}
}

func TestAdmitTenantFullBudgetShedsDespiteCredit(t *testing.T) {
	a := newFnAdm()
	a.svc.observe(1000)
	// hw=2 -> budget 2000. Two admitted calls fill it; the third tenant
	// holds a full bank but must still shed on the global budget.
	if _, _, ok := a.admitTenant(1, 1, 0, 2, 0); !ok {
		t.Fatal("first call must be admitted")
	}
	if _, _, ok := a.admitTenant(2, 1, 0, 2, 0); !ok {
		t.Fatal("second call must be admitted")
	}
	_, hint, ok := a.admitTenant(3, 1, 0, 2, 0)
	if ok {
		t.Fatal("third call admitted past a full budget")
	}
	if hint <= 0 || hint > a.hintCap {
		t.Fatalf("hint = %v outside (0, %v]", hint, a.hintCap)
	}
	// A completion frees the budget again.
	cost := a.tenants[1].cost
	a.completeTenant(1, cost)
	if _, _, ok := a.admitTenant(3, 1, 0, 2, 0); !ok {
		t.Fatal("admit after completion failed")
	}
}

func TestAdmitTenantHintClamp(t *testing.T) {
	a := newFnAdm()
	a.svc.observe(1 << 62) // clamps to maxAdmCost
	if _, _, ok := a.admitTenant(1, 1, 0, 1, 0); !ok {
		t.Fatal("first call must be admitted")
	}
	_, hint, ok := a.admitTenant(1, 1, 0, 1, 1)
	if ok {
		t.Fatal("second call admitted past a budget of one")
	}
	if hint != a.hintCap {
		t.Fatalf("hint = %v, want clamp at %v", hint, a.hintCap)
	}
}

func TestAdmitTenantWeightedGoodputSplit(t *testing.T) {
	// Two tenants, weights 3:1, each attempting one fixed-cost call per
	// round with completions keeping the global budget free: admission
	// is limited purely by weighted credit refill, so the admitted
	// throughput must converge to the 3:1 weight ratio.
	a := newFnAdm()
	a.svc.observe(1000)
	admits := map[uint16]int{}
	type flight struct {
		ten  uint16
		cost int64
	}
	var inflight []flight
	const rounds = 400
	for k := 0; k < rounds; k++ {
		for _, tn := range []uint16{1, 2} {
			w := int64(1)
			if tn == 1 {
				w = 3
			}
			cost, _, ok := a.admitTenant(tn, w, 0, 16, 0)
			if ok {
				admits[tn]++
				inflight = append(inflight, flight{tn, cost})
			}
		}
		// One completion per round: slower than the combined demand of
		// two calls per round, so the server stays busy and the idle
		// floor never fires — admission is governed by weighted credit.
		if len(inflight) > 0 {
			a.completeTenant(inflight[0].ten, inflight[0].cost)
			inflight = inflight[1:]
		}
	}
	ratio := float64(admits[1]) / float64(admits[2])
	if ratio < 2.4 || ratio > 3.6 {
		t.Fatalf("goodput ratio %.2f (admits %d vs %d), want ~3.0", ratio, admits[1], admits[2])
	}
}

func TestAdmitTenantAccrualRebasePreservesDiffs(t *testing.T) {
	a := newFnAdm()
	a.svc.observe(1000)
	t1 := a.tenant(1, 1) // snapshot at accrued=0
	// Pretend a long run: push the accrual clock to the rebase edge.
	a.accrued = admAccrueRebase - 500
	cost, _, ok := a.admitTenant(2, 1, 0, 4, 0)
	if !ok || cost != 1000 {
		t.Fatalf("edge admit: ok=%v cost=%d", ok, cost)
	}
	if a.accrued != 0 {
		t.Fatalf("accrued = %d after rebase, want 0", a.accrued)
	}
	t2 := a.tenants[2]
	// t2 snapped at rebase-500, then 1000 was admitted: its pending
	// diff must still be exactly 1000 after the rebase.
	if d := a.accrued - t2.lastA; d != 1000 {
		t.Fatalf("t2 pending diff = %d, want 1000", d)
	}
	a.refreshTenant(t2)
	// t2 spent 1000 from its seeded 2000 bank, then earns back its
	// weighted half of the 1000 accrual.
	if t2.credit != 1500 {
		t.Fatalf("t2 credit = %d, want 1500", t2.credit)
	}
	// t1's diff covers the whole simulated history and caps out.
	a.refreshTenant(t1)
	if want := a.creditCap(1); t1.credit != want {
		t.Fatalf("t1 credit = %d, want cap %d", t1.credit, want)
	}
}

func TestAdmitTenantDeterministicReplay(t *testing.T) {
	// Interleaved tenant and per-client arrivals must replay bit for
	// bit: no decision may depend on map iteration order.
	run := func() []string {
		a := newFnAdm()
		a.svc.observe(1500)
		var out []string
		seq := []struct {
			ten uint16
			w   int64
			src int
		}{
			{ten: 1, w: 3}, {src: 9}, {ten: 2, w: 1}, {ten: 1, w: 3},
			{src: 8}, {ten: 3, w: 2}, {ten: 2, w: 1}, {ten: 1, w: 3},
			{ten: 3, w: 2}, {src: 9}, {ten: 2, w: 1}, {ten: 1, w: 3},
		}
		for k, st := range seq {
			var cost int64
			var hint simtime.Time
			var ok bool
			if st.ten != 0 {
				cost, hint, ok = a.admitTenant(st.ten, st.w, int64(16*(k%3)), 5, k%5)
			} else {
				cost, hint, ok = a.admit(st.src, int64(16*(k%3)), 5, k%5)
			}
			out = append(out, fmt.Sprintf("%d/%d:%v/%d/%v", st.ten, st.src, ok, cost, hint))
			if k%4 == 3 && ok {
				if st.ten != 0 {
					a.completeTenant(st.ten, cost)
				} else {
					a.complete(st.src, cost)
				}
			}
		}
		return out
	}
	x, y := run(), run()
	for k := range x {
		if x[k] != y[k] {
			t.Fatalf("replay diverged at %d: %q vs %q", k, x[k], y[k])
		}
	}
}
