package lite

import (
	"errors"

	"lite/internal/detrand"
	"lite/internal/simtime"
)

// RPC retry layer: a bounded-attempt exponential-backoff-with-jitter
// wrapper over rpcInternalT. The jitter is derived deterministically
// from the simulation clock and the call's coordinates — never from
// wall-clock or a global RNG — so a run with a given fault plan
// replays bit for bit.

// maxRetryBackoff caps a single backoff sleep.
const maxRetryBackoff = 20 * 1000 * 1000 // 20ms

// rpcRetryT issues the RPC with up to opts.RetryAttempts attempts.
// Between attempts it sleeps base<<attempt plus jitter. Once the
// membership view declares the target dead the call fails fast with
// ErrNodeDead; if the membership epoch advanced across a failed
// attempt, the binding is dropped so the next attempt renegotiates
// against the (possibly restarted) server. A second consecutive
// timeout also forces a rebind, which heals a ring whose head-update
// credits were lost to message drops.
//
// The retryable errors are handled very differently. A timeout is
// ambiguous — the call may have executed with only the reply lost — so
// user-function attempts all carry one client sequence number and the
// server's dedup window guarantees single execution; each timed-out
// attempt also bumps the call's ambiguous-attempt count, which lets a
// restarted server (whose window died with it) answer the retry with
// the terminal ErrMaybeExecuted instead of re-executing. An overload
// shed is a definitive "did NOT execute": the retry backs off and
// tries again — stretching the backoff to any Retry-After hint the
// fair admission policy shipped — but never rebinds (the binding is
// healthy; the server is just full) and never counts toward the
// rebind-forcing timeout streak.
func (i *Instance) rpcRetryT(p *simtime.Proc, dst, fn int, input []byte, maxReply int64, pri Priority, timeout simtime.Time, ten uint16) ([]byte, error) {
	attempts := i.opts.RetryAttempts
	if attempts < 1 {
		attempts = 1
	}
	var meta *callMeta
	if fn >= FirstUserFunc && dst != i.node.ID {
		meta = &callMeta{seq: i.seqID()}
	}
	dst = i.resolveMoved(dst, fn)
	var lastErr error
	timeouts := 0
	movedHops := 0
	for a := 0; a < attempts; a++ {
		if i.stopped {
			return nil, ErrNodeDead
		}
		if dst != i.node.ID && i.deadView[dst] {
			return nil, ErrNodeDead
		}
		i.pacerWait(p, dst, fn)
		epochBefore := i.epoch
		out, err := i.rpcInternalFull(p, dst, fn, input, maxReply, pri, timeout, false, meta, ten)
		if err == nil {
			return out, nil
		}
		var me *MovedError
		if errors.As(err, &me) {
			// The function migrated: learn the new home and re-issue
			// there. A redirect is not a failure, so it does not consume
			// a retry attempt; the hop bound catches a routing loop from
			// wildly stale views.
			i.learnMove(dst, fn, me.To)
			movedHops++
			if movedHops > len(i.dep.Instances)+1 {
				return nil, err
			}
			i.obsReg().Add("lite.retry.moved", 1)
			dst = i.resolveMoved(me.To, fn)
			a--
			continue
		}
		if !retryable(err) {
			if errors.Is(err, ErrMaybeExecuted) {
				i.obsReg().Add("lite.retry.maybe_executed", 1)
			}
			return nil, err
		}
		lastErr = err
		if a == attempts-1 {
			break
		}
		i.obsReg().Add("lite.retry.attempts", 1)
		delay := i.retryDelay(p, a)
		if errors.Is(err, ErrOverloaded) {
			i.obsReg().Add("lite.retry.overloads", 1)
			timeouts = 0
			var oe *OverloadError
			if errors.As(err, &oe) {
				// The hint also feeds the client-side pacer, so sibling
				// callers on this node hold off instead of piling on.
				i.pacerLearn(p, dst, fn, oe.RetryAfter)
				if oe.RetryAfter > delay {
					// The server estimated when this client's share
					// frees up; waiting less just buys another shed.
					i.obsReg().Add("lite.retry.hint_waits", 1)
					delay = oe.RetryAfter
				}
			}
		} else {
			timeouts++
			if meta != nil {
				meta.attempt++
			}
			if i.epoch != epochBefore || timeouts >= 2 {
				i.obsReg().Add("lite.retry.rebinds", 1)
				i.resetBinding(dst, fn)
			}
		}
		p.Sleep(delay)
	}
	return nil, lastErr
}

// retryable reports whether an error is worth another attempt.
// ErrNodeDead is terminal; name-service and permission errors are
// definitive answers, not transport failures — and so is
// ErrMaybeExecuted, which by construction can never become
// unambiguous by retrying.
func retryable(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, ErrOverloaded)
}

// retryDelay returns the backoff before attempt a+1: base<<a, capped,
// with deterministic jitter in [0, d/2) mixed from the current virtual
// time, the node id, and the attempt number.
func (i *Instance) retryDelay(p *simtime.Proc, a int) simtime.Time {
	d := i.opts.RetryBackoff
	if d <= 0 {
		d = 100 * 1000 // 100us
	}
	d <<= uint(a)
	if d > maxRetryBackoff {
		d = maxRetryBackoff
	}
	j := detrand.Mix64(uint64(p.Now()) ^ uint64(i.node.ID)<<40 ^ uint64(a)<<56)
	return d + simtime.Time(j%uint64(d/2+1))
}
