package lite

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"lite/internal/simtime"
)

// Property: split covers exactly [off, off+n) with contiguous,
// in-order, chunk-respecting parts.
func TestQuickSplitCovers(t *testing.T) {
	f := func(seed int64, rawOff, rawN uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		// Build a random chunk layout.
		nChunks := rng.Intn(6) + 1
		ls := &lmrState{}
		for i := 0; i < nChunks; i++ {
			sz := int64(rng.Intn(10000) + 1)
			ls.chunks = append(ls.chunks, chunk{node: i % 3, pa: 0, size: sz})
			ls.size += sz
		}
		off := int64(rawOff) % ls.size
		n := int64(rawN) % (ls.size - off + 1)
		parts, err := split(ls, off, n)
		if err != nil {
			return false
		}
		// Reference: walk the chunks and compute overlaps directly.
		var want []part
		var base, bufOff int64
		for _, c := range ls.chunks {
			lo, hi := off, off+n
			if base+c.size > lo && base < hi {
				s := lo - base
				if s < 0 {
					s = 0
				}
				e := hi - base
				if e > c.size {
					e = c.size
				}
				if e > s {
					want = append(want, part{c: c, cOff: s, bufOff: bufOff, n: e - s})
					bufOff += e - s
				}
			}
			base += c.size
		}
		if len(parts) != len(want) {
			t.Logf("got %d parts, want %d", len(parts), len(want))
			return false
		}
		for i := range want {
			if parts[i] != want[i] {
				t.Logf("part %d: got %+v, want %+v", i, parts[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitRejectsOutOfBounds(t *testing.T) {
	ls := &lmrState{size: 100, chunks: []chunk{{size: 100}}}
	for _, c := range []struct{ off, n int64 }{{-1, 10}, {0, 101}, {90, 20}, {0, -1}} {
		if _, err := split(ls, c.off, c.n); err != ErrBounds {
			t.Errorf("split(%d, %d) err = %v, want ErrBounds", c.off, c.n, err)
		}
	}
}

// Property: alignParts produces pieces that tile both sides with equal
// lengths.
func TestQuickAlignParts(t *testing.T) {
	f := func(seed int64, total16 uint16) bool {
		total := int64(total16%5000) + 1
		rng := rand.New(rand.NewSource(seed))
		mk := func() []part {
			var out []part
			remain := total
			for remain > 0 {
				n := int64(rng.Intn(int(remain))) + 1
				out = append(out, part{c: chunk{size: n}, n: n})
				remain -= n
			}
			return out
		}
		pieces := alignParts(mk(), mk())
		var covered int64
		for _, pc := range pieces {
			if pc.n <= 0 || pc.src.n != pc.n || pc.dst.n != pc.n {
				return false
			}
			covered += pc.n
		}
		return covered == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: ring reservation never exceeds the window and offsets stay
// in bounds with correct wrap padding.
func TestQuickReserveRing(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int64(1) << (8 + rng.Intn(6)) // 256B .. 8KB
		b := &binding{ringSize: size}
		for i := 0; i < 200; i++ {
			need := (int64(rng.Intn(100)) + ringHdr + ringAlign - 1) &^ (ringAlign - 1)
			if need > size {
				continue
			}
			// Credit the ring as a consumer would, enough to never
			// block (accounting for the wrap padding the reservation
			// will insert).
			pad := int64(0)
			if off := b.tail % size; off+need > size {
				pad = size - off
			}
			if b.tail+pad+need-b.head > size {
				b.head = b.tail + pad + need - size
			}
			off := b.reserveRingNonblocking(need)
			if off < 0 || off+need > size {
				t.Logf("offset %d + %d outside ring %d", off, need, size)
				return false
			}
			if b.tail-b.head > size {
				t.Logf("window overflow: tail %d head %d size %d", b.tail, b.head, size)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// reserveRingNonblocking mirrors reserveRing's arithmetic without a
// process context, for property testing.
func (b *binding) reserveRingNonblocking(need int64) int64 {
	pad := int64(0)
	if off := b.tail % b.ringSize; off+need > b.ringSize {
		pad = b.ringSize - off
	}
	if b.tail+pad+need-b.head > b.ringSize {
		return -1
	}
	b.tail += pad
	off := b.tail % b.ringSize
	b.tail += need
	return off
}

func TestImmEncodingRoundTrip(t *testing.T) {
	for _, tag := range []int{tagRPCReq, tagRPCRep, tagHeadUpd} {
		for _, fn := range []int{0, 1, 15, 31} {
			for _, v := range []int64{0, 8, 64, 1 << 20, (1<<23 - 1) * ringAlign} {
				gt, gf, gv := decodeImm(encodeImm(tag, fn, v))
				if gt != tag || gf != fn || gv != v {
					t.Fatalf("imm(%d,%d,%d) -> (%d,%d,%d)", tag, fn, v, gt, gf, gv)
				}
			}
		}
	}
}

func TestReadTimesOutOnPartition(t *testing.T) {
	cls, dep := testDep(t, 2)
	cls.GoOn(0, "reader", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		h, err := c.MallocAt(p, []int{1}, 4096, "", PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		if err := c.Read(p, h, 0, buf); err != nil {
			t.Fatal(err)
		}
		cls.Fab.SetLinkDown(0, 1)
		start := p.Now()
		if err := c.Read(p, h, 0, buf); err != ErrTimeout {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
		if p.Now()-start < cls.Cfg.RCTimeout {
			t.Fatal("timed out too early")
		}
		// Recovery after the link returns.
		cls.Fab.SetLinkUp(0, 1)
		if err := c.Read(p, h, 0, buf); err != nil {
			t.Fatalf("read after recovery: %v", err)
		}
	})
	run(t, cls)
}

func TestAtomicTimesOutOnPartition(t *testing.T) {
	cls, dep := testDep(t, 2)
	cls.GoOn(0, "adder", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		h, err := c.MallocAt(p, []int{1}, 64, "", PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.FetchAdd(p, h, 0, 1); err != nil {
			t.Fatal(err)
		}
		cls.Fab.SetLinkDown(0, 1)
		if _, err := c.FetchAdd(p, h, 0, 1); err != ErrTimeout {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
	})
	run(t, cls)
}

func TestPollerCPUAccounted(t *testing.T) {
	cls, dep := testDep(t, 2)
	startEchoServerN(cls, dep, 1)
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		for i := 0; i < 20; i++ {
			if _, err := c.RPC(p, 1, echoFn, []byte("x"), 16); err != nil {
				t.Fatal(err)
			}
		}
	})
	run(t, cls)
	if dep.Instance(1).PollerCPU == 0 {
		t.Fatal("server poller CPU unaccounted")
	}
}

func TestScratchRingWraps(t *testing.T) {
	s := scratchRing{base: 0, size: 1 << 20}
	seen := make(map[int64]bool)
	for i := 0; i < 100000; i++ {
		pa := s.alloc(100)
		if int64(pa) < 0 || int64(pa)+100 > 1<<20 {
			t.Fatalf("allocation [%d, %d) outside arena", pa, int64(pa)+100)
		}
		if int64(pa)%64 != 0 {
			t.Fatalf("allocation %d not 64B aligned", pa)
		}
		seen[int64(pa)] = true
	}
	if len(seen) < 2 {
		t.Fatal("ring never advanced")
	}
}

func TestAdaptiveWaitDeadline(t *testing.T) {
	cls, dep := testDep(t, 1)
	inst := dep.Instance(0)
	cls.GoOn(0, "waiter", func(p *simtime.Proc) {
		var cond simtime.Cond
		start := p.Now()
		ok := inst.adaptiveWait(p, &cond, func() bool { return false }, p.Now()+50*time.Microsecond)
		if ok {
			t.Fatal("wait succeeded without the predicate holding")
		}
		if el := p.Now() - start; el < 50*time.Microsecond || el > 60*time.Microsecond {
			t.Fatalf("deadline respected poorly: %v", el)
		}
	})
	run(t, cls)
}
