package lite

import (
	"encoding/binary"
	"testing"

	"lite/internal/simtime"
)

// TestCompareSwapLocalRemoteParity runs LT_cas and the masked variants
// against a local and a remote LMR word and requires identical
// semantics: the local fast path must compute exactly what the
// responder NIC does.
func TestCompareSwapLocalRemoteParity(t *testing.T) {
	cls, dep := testDep(t, 2)
	cls.GoOn(0, "app", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		for _, home := range []int{0, 1} { // local word, then remote word
			h, err := c.MallocAt(p, []int{home}, 4096, "", PermRead|PermWrite)
			if err != nil {
				t.Fatal(err)
			}
			// CAS success and failure.
			if old, err := c.CompareSwap(p, h, 0, 0, 7); err != nil || old != 0 {
				t.Fatalf("home %d: CAS(0->7) old=%d err=%v", home, old, err)
			}
			if old, err := c.CompareSwap(p, h, 0, 0, 9); err != nil || old != 7 {
				t.Fatalf("home %d: failed CAS old=%d err=%v (want 7, unchanged)", home, old, err)
			}
			// Masked CAS: match the low byte only, swap bits 8-15 only.
			if old, err := c.CompareSwapMasked(p, h, 0, 7, 0x0100, 0xff, 0xff00); err != nil || old != 7 {
				t.Fatalf("home %d: masked CAS old=%d err=%v", home, old, err)
			}
			var b [8]byte
			if err := c.Read(p, h, 0, b[:]); err != nil {
				t.Fatal(err)
			}
			if v := binary.LittleEndian.Uint64(b[:]); v != 0x0107 {
				t.Fatalf("home %d: word = %#x, want 0x0107", home, v)
			}
			// No-op masked CAS (swap mask zero): pure compare, no change.
			if old, err := c.CompareSwapMasked(p, h, 0, 0x0107, 0, ^uint64(0), 0); err != nil || old != 0x0107 {
				t.Fatalf("home %d: no-op CAS old=%d err=%v", home, old, err)
			}
			// Masked FAA: low 32-bit field wraps without carrying.
			if err := c.Write(p, h, 8, le64(0x00000000_ffffffff)); err != nil {
				t.Fatal(err)
			}
			old, err := c.FetchAddMasked(p, h, 8, 1, 1<<31)
			if err != nil || old != 0x00000000_ffffffff {
				t.Fatalf("home %d: masked FAA old=%#x err=%v", home, old, err)
			}
			if err := c.Read(p, h, 8, b[:]); err != nil {
				t.Fatal(err)
			}
			if v := binary.LittleEndian.Uint64(b[:]); v != 0 {
				t.Fatalf("home %d: word after masked FAA = %#x, want 0", home, v)
			}
			// Misaligned offsets are rejected (words must be 8-aligned to
			// be NIC atomics; the local path enforces the same contract).
			if _, err := c.CompareSwap(p, h, 4, 0, 1); err == nil {
				t.Fatalf("home %d: misaligned CAS succeeded", home)
			}
		}
	})
	run(t, cls)
}

func le64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}
