package lite

import "lite/internal/simtime"

// The paper's cluster manager "can run on one node or a
// high-availability node pair, and all the states it maintains can be
// easily reconstructed upon failure restart" (§3.3). This file
// implements that reconstruction: after the manager loses its name
// directory, every node republishes the named LMRs it masters.

// CrashManagerDirectory simulates a manager restart that lost the name
// directory (LMR data and per-node lh state survive — only the
// manager's soft state is gone).
func (d *Deployment) CrashManagerDirectory() {
	d.directory = make(map[string]*lmrState)
}

// ReRegisterNames republishes every named, live LMR mastered by this
// node with the manager directory, paying one registration RPC per
// name for remote nodes. It is idempotent: names already present are
// left as is.
func (i *Instance) ReRegisterNames(p *simtime.Proc) error {
	for _, ls := range i.localLMR {
		if ls.name == "" || ls.freed || !ls.masters[i.node.ID] {
			continue
		}
		if _, ok := i.dep.directory[ls.name]; ok {
			continue
		}
		if err := i.registerName(p, ls, PriHigh); err != nil && err != ErrNameTaken {
			return err
		}
	}
	return nil
}

// RecoverManagerDirectory drives the full recovery: every live node
// republishes its names (crashed nodes are skipped — their LMRs died
// with them and a recovery process cannot run there). Call it from one
// process per node is the faithful protocol; this helper spawns those
// processes and waits.
func (d *Deployment) RecoverManagerDirectory(p *simtime.Proc) error {
	errs := make([]error, len(d.Instances))
	var wg simtime.WaitGroup
	live := 0
	for _, inst := range d.Instances {
		if !inst.stopped {
			live++
		}
	}
	wg.Add(live)
	for k, inst := range d.Instances {
		if inst.stopped {
			continue
		}
		k, inst := k, inst
		d.Cluster.GoOn(inst.node.ID, "lite-recover", func(q *simtime.Proc) {
			defer wg.Done(q.Env())
			errs[k] = inst.ReRegisterNames(q)
		})
	}
	wg.Wait(p)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
