package lite

import (
	"bytes"
	"testing"
	"time"

	"lite/internal/simtime"
)

func TestMulticastRPC(t *testing.T) {
	cls, dep := testDep(t, 4)
	for n := 1; n < 4; n++ {
		startEchoServerN(cls, dep, n)
	}
	cls.GoOn(0, "caller", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		replies, err := c.MulticastRPC(p, []int{1, 2, 3}, echoFn, []byte("mc"), 32)
		if err != nil {
			t.Fatal(err)
		}
		if len(replies) != 3 {
			t.Fatalf("replies = %d", len(replies))
		}
		for i, r := range replies {
			if string(r) != "mc" {
				t.Fatalf("reply %d = %q", i, r)
			}
		}
		// Concurrency: three RPCs must take far less than three
		// sequential round trips.
		start := p.Now()
		if _, err := c.MulticastRPC(p, []int{1, 2, 3}, echoFn, []byte("mc"), 32); err != nil {
			t.Fatal(err)
		}
		el := p.Now() - start
		if el > 6*time.Microsecond {
			t.Fatalf("multicast to 3 nodes took %v, want overlap (single RPC ~2.5us)", el)
		}
	})
	run(t, cls)
}

func TestMulticastRPCEmptyAndError(t *testing.T) {
	cls, dep := testDep(t, 2)
	cls.GoOn(0, "caller", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		if replies, err := c.MulticastRPC(p, nil, echoFn, nil, 8); err != nil || replies != nil {
			t.Fatalf("empty multicast: %v %v", replies, err)
		}
		// No server registered at node 1: the call must time out.
		if _, err := c.MulticastRPC(p, []int{1}, echoFn, []byte("x"), 8); err != ErrTimeout {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
	})
	run(t, cls)
}

// startEchoServerN registers echoFn on one node with one server thread.
func startEchoServerN(cls interface {
	GoDaemonOn(int, string, func(*simtime.Proc)) *simtime.Proc
}, dep *Deployment, node int) {
	inst := dep.Instance(node)
	_ = inst.RegisterRPC(echoFn)
	cls.GoDaemonOn(node, "echo", func(p *simtime.Proc) {
		c := inst.KernelClient()
		call, err := c.RecvRPC(p, echoFn)
		for err == nil {
			call, err = c.ReplyRecvRPC(p, call, call.Input, echoFn)
		}
	})
}

func TestMoveLMR(t *testing.T) {
	cls, dep := testDep(t, 3)
	cls.GoOn(0, "mover", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		h, err := c.MallocAt(p, []int{1}, 64<<10, "movable", PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 64<<10)
		for i := range data {
			data[i] = byte(i * 7)
		}
		if err := c.Write(p, h, 0, data); err != nil {
			t.Fatal(err)
		}
		node1Before := cls.Nodes[1].Mem.AllocatedBytes()
		if err := c.Move(p, h, 2); err != nil {
			t.Fatal(err)
		}
		// Data survives the move and the old node's memory is freed.
		got := make([]byte, len(data))
		if err := c.Read(p, h, 0, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("data lost in move")
		}
		if cls.Nodes[1].Mem.AllocatedBytes() >= node1Before {
			t.Fatal("old home still holds the chunks")
		}
	})
	run(t, cls)
}

func TestMoveRequiresMaster(t *testing.T) {
	cls, dep := testDep(t, 2)
	cls.GoOn(0, "owner", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		if _, err := c.Malloc(p, 4096, "fixed", PermRead|PermWrite); err != nil {
			t.Fatal(err)
		}
	})
	cls.GoOn(1, "interloper", func(p *simtime.Proc) {
		p.Sleep(50 * time.Microsecond)
		c := dep.Instance(1).KernelClient()
		h, err := c.Map(p, "fixed")
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Move(p, h, 1); err != ErrNotMaster {
			t.Fatalf("err = %v, want ErrNotMaster", err)
		}
		if err := c.Free(p, h); err != ErrNotMaster {
			t.Fatalf("free err = %v, want ErrNotMaster", err)
		}
	})
	run(t, cls)
}

func TestGrantMasterRole(t *testing.T) {
	// A master can grant the master role to another node (§4.1), which
	// can then free the LMR.
	cls, dep := testDep(t, 2)
	granted := false
	var cond simtime.Cond
	cls.GoOn(0, "owner", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		h, err := c.Malloc(p, 4096, "comaster", PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Grant(p, h, 1, PermRead|PermWrite|PermMaster); err != nil {
			t.Fatal(err)
		}
		granted = true
		cond.Broadcast(p.Env())
	})
	cls.GoOn(1, "comaster", func(p *simtime.Proc) {
		for !granted {
			cond.Wait(p)
		}
		c := dep.Instance(1).KernelClient()
		h, err := c.Map(p, "comaster")
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Free(p, h); err != nil {
			t.Fatalf("co-master free failed: %v", err)
		}
	})
	run(t, cls)
}

func TestRegisterLMRFromExistingMemory(t *testing.T) {
	// Masters may register already-allocated memory as an LMR (§4.1).
	cls, dep := testDep(t, 2)
	cls.GoOn(0, "owner", func(p *simtime.Proc) {
		pa, err := cls.Nodes[0].Mem.AllocContiguous(8192)
		if err != nil {
			t.Fatal(err)
		}
		if err := cls.Nodes[0].Mem.Write(pa, []byte("pre-existing")); err != nil {
			t.Fatal(err)
		}
		c := dep.Instance(0).KernelClient()
		_, err = c.RegisterLMR(p, pa, 8192, "pre", PermRead)
		if err != nil {
			t.Fatal(err)
		}
	})
	cls.GoOn(1, "reader", func(p *simtime.Proc) {
		p.Sleep(50 * time.Microsecond)
		c := dep.Instance(1).KernelClient()
		h, err := c.Map(p, "pre")
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 12)
		if err := c.Read(p, h, 0, got); err != nil {
			t.Fatal(err)
		}
		if string(got) != "pre-existing" {
			t.Fatalf("got %q", got)
		}
	})
	run(t, cls)
}

func TestUserLevelOpsPaySyscalls(t *testing.T) {
	cls, dep := testDep(t, 2)
	cls.GoOn(0, "app", func(p *simtime.Proc) {
		kc := dep.Instance(0).KernelClient()
		uc := dep.Instance(0).UserClient()
		h, err := kc.MallocAt(p, []int{1}, 4096, "", PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		// Warm.
		_ = kc.Write(p, h, 0, buf)
		_ = uc.Write(p, h, 0, buf)
		start := p.Now()
		_ = kc.Write(p, h, 0, buf)
		kl := p.Now() - start
		start = p.Now()
		_ = uc.Write(p, h, 0, buf)
		ul := p.Now() - start
		if ul <= kl {
			t.Fatalf("user write (%v) must exceed kernel write (%v)", ul, kl)
		}
		if ul-kl > 500*time.Nanosecond {
			t.Fatalf("syscall gap = %v, want a fraction of a microsecond", ul-kl)
		}
	})
	run(t, cls)
}

func TestNameCollision(t *testing.T) {
	cls, dep := testDep(t, 2)
	cls.GoOn(0, "a", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		if _, err := c.Malloc(p, 4096, "dup", PermRead); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Malloc(p, 4096, "dup", PermRead); err != ErrNameTaken {
			t.Fatalf("err = %v, want ErrNameTaken", err)
		}
	})
	cls.GoOn(1, "b", func(p *simtime.Proc) {
		p.Sleep(50 * time.Microsecond)
		c := dep.Instance(1).KernelClient()
		if _, err := c.Malloc(p, 4096, "dup", PermRead); err != ErrNameTaken {
			t.Fatalf("remote err = %v, want ErrNameTaken", err)
		}
	})
	run(t, cls)
}
