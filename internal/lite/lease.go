package lite

import (
	"lite/internal/hostmem"
	"lite/internal/simtime"
)

// Connection leasing (KRCORE-style): establishing an RC connection the
// cold way costs the full rdma_cm exchange plus the driver's QP state
// transitions — hundreds of microseconds per QP, paid on the critical
// path of every new client and every restarted server. A kernel-
// resident connection pool removes that: LITE pre-establishes spare
// connections per peer ahead of demand, a node needing connectivity
// leases one at Params.QPLeaseGrant (a lookup and an ownership
// handoff), and a background replenisher rebuilds the pool off the
// critical path. The same idea applies to RPC ring arenas: a pool of
// pre-allocated scratch rings lets binding negotiation skip the
// contiguous-page allocation.
//
// In the simulation the pool is modeled as per-peer spare-connection
// counts plus a ring free list; the lease/cold distinction is purely
// which cost the verbs layer charges. The pool, like the manager's
// membership table, is modeled as surviving node restarts — it lives
// in the kernel connection service on the paper's HA pair.

// leaseState is one node's view of the connection pool.
type leaseState struct {
	// want is the configured spare-connection target per peer.
	want int
	// spares[peer] counts pre-established spare connections to peer.
	spares []int
	// rings is the free list of pre-allocated ring arenas.
	rings []hostmem.PAddr
	// replenishing marks an active background replenisher, so at most
	// one runs per node at a time.
	replenishing bool
}

func (l *leaseState) init(opts *Options, n, self int) {
	l.want = opts.QPLeasePool
	if l.want <= 0 {
		return
	}
	l.spares = make([]int, n)
	for d := range l.spares {
		if d != self {
			l.spares[d] = l.want
		}
	}
}

// initRingLeases pre-allocates the configured number of ring arenas at
// boot, so runtime binding negotiation can lease one instead of
// calling the contiguous-page allocator.
func (i *Instance) initRingLeases() error {
	for k := 0; k < i.opts.RingLeasePool; k++ {
		pa, err := i.node.Mem.AllocContiguous(i.opts.RingBytes)
		if err != nil {
			return err
		}
		i.lease.rings = append(i.lease.rings, pa)
	}
	return nil
}

// takeRing pops a pre-allocated ring arena from the lease pool.
func (l *leaseState) takeRing() (hostmem.PAddr, bool) {
	if n := len(l.rings); n > 0 {
		pa := l.rings[n-1]
		l.rings = l.rings[:n-1]
		return pa, true
	}
	return 0, false
}

// ConnectPeer (re-)establishes this node's shared-QP connectivity to
// dst: each of the K shared QPs is either leased from the connection
// pool (Params.QPLeaseGrant each) or cold-connected through the full
// rdma_cm exchange (Params.QPConnectTime each). Returns how many were
// leased and how many went cold. A drained pool is replenished in the
// background, off this caller's critical path.
func (i *Instance) ConnectPeer(p *simtime.Proc, dst int) (leased, cold int) {
	reg := i.obsReg()
	for _, qp := range i.qps[dst] {
		if i.lease.want > 0 && i.lease.spares[dst] > 0 {
			i.lease.spares[dst]--
			i.ctx.LeaseQP(p, qp)
			leased++
		} else {
			i.ctx.ConnectQP(p, qp, qp.RemoteNode(), qp.RemoteQPN())
			cold++
		}
	}
	reg.Add("lite.lease.leased", int64(leased))
	reg.Add("lite.lease.cold", int64(cold))
	if leased > 0 {
		i.spawnReplenisher()
	}
	return leased, cold
}

// reconnectPeers re-establishes connectivity to every peer, as a
// restarting node does before rejoining when ReconnectOnRestart is set.
func (i *Instance) reconnectPeers(p *simtime.Proc) {
	for dst := range i.qps {
		if dst == i.node.ID || len(i.qps[dst]) == 0 {
			continue
		}
		i.ConnectPeer(p, dst)
	}
}

// spawnReplenisher starts the background pool rebuilder if the pool is
// below target and no rebuilder is already running. Each rebuilt spare
// pays the full cold-connect cost — but in the background, where nobody
// waits on it.
func (i *Instance) spawnReplenisher() {
	if i.lease.replenishing || i.lease.want <= 0 {
		return
	}
	i.lease.replenishing = true
	i.cls.GoDaemonOn(i.node.ID, "lite-lease-replenish", func(p *simtime.Proc) {
		defer func() { i.lease.replenishing = false }()
		for {
			if i.stopped {
				return
			}
			dst := -1
			for d := range i.lease.spares {
				if d != i.node.ID && len(i.qps[d]) > 0 && i.lease.spares[d] < i.lease.want {
					dst = d
					break
				}
			}
			if dst < 0 {
				return
			}
			p.Work(simtime.Time(i.cfg.QPConnectTime))
			i.lease.spares[dst]++
			i.obsReg().Add("lite.lease.replenished", 1)
		}
	})
}
