package lite

import (
	"lite/internal/detrand"
	"lite/internal/hostmem"
	"lite/internal/simtime"
)

// Connection leasing (KRCORE-style): establishing an RC connection the
// cold way costs the full rdma_cm exchange plus the driver's QP state
// transitions — hundreds of microseconds per QP, paid on the critical
// path of every new client and every restarted server. A kernel-
// resident connection pool removes that: LITE pre-establishes spare
// connections per peer ahead of demand, a node needing connectivity
// leases one at Params.QPLeaseGrant (a lookup and an ownership
// handoff), and a background replenisher rebuilds the pool off the
// critical path. The same idea applies to RPC ring arenas: a pool of
// pre-allocated scratch rings lets binding negotiation skip the
// contiguous-page allocation.
//
// In the simulation the pool is modeled as per-peer spare-connection
// counts plus a ring free list; the lease/cold distinction is purely
// which cost the verbs layer charges. The pool, like the manager's
// membership table, is modeled as surviving node restarts — it lives
// in the kernel connection service on the paper's HA pair.

// leaseState is one node's view of the connection pool.
type leaseState struct {
	// want is the configured spare-connection target per peer.
	want int
	// spares[peer] counts pre-established spare connections to peer.
	spares []int
	// rings is the free list of pre-allocated ring arenas.
	rings []hostmem.PAddr
	// replenishing marks an active background replenisher, so at most
	// one runs per node at a time.
	replenishing bool
}

func (l *leaseState) init(opts *Options, n, self int) {
	l.want = opts.QPLeasePool
	if l.want <= 0 {
		return
	}
	l.spares = make([]int, n)
	for d := range l.spares {
		if d != self {
			l.spares[d] = l.want
		}
	}
}

// revoke drops every spare connection held toward a now-dead peer and
// returns how many were revoked. A spare is half-owned by the remote
// connection service; when that node dies, its QP state dies with it,
// so the spares are unleaseable garbage — handing one out later would
// put a dead connection on a caller's critical path. The revoked slots
// are rebuilt (against the revived peer) by the replenisher.
func (l *leaseState) revoke(dst int) int {
	if l.want <= 0 || dst < 0 || dst >= len(l.spares) {
		return 0
	}
	n := l.spares[dst]
	l.spares[dst] = 0
	return n
}

// LeaseSpares reports the current spare-connection count held toward
// dst (0 when the pool is disabled). Churn harnesses poll it to time
// how long mass revocation takes to heal.
func (i *Instance) LeaseSpares(dst int) int {
	if i.lease.want <= 0 || dst < 0 || dst >= len(i.lease.spares) {
		return 0
	}
	return i.lease.spares[dst]
}

// LeaseTarget reports the configured spare-connection target per peer.
func (i *Instance) LeaseTarget() int { return i.lease.want }

// initRingLeases pre-allocates the configured number of ring arenas at
// boot, so runtime binding negotiation can lease one instead of
// calling the contiguous-page allocator.
func (i *Instance) initRingLeases() error {
	for k := 0; k < i.opts.RingLeasePool; k++ {
		pa, err := i.node.Mem.AllocContiguous(i.opts.RingBytes)
		if err != nil {
			return err
		}
		i.lease.rings = append(i.lease.rings, pa)
	}
	return nil
}

// takeRing pops a pre-allocated ring arena from the lease pool.
func (l *leaseState) takeRing() (hostmem.PAddr, bool) {
	if n := len(l.rings); n > 0 {
		pa := l.rings[n-1]
		l.rings = l.rings[:n-1]
		return pa, true
	}
	return 0, false
}

// ConnectPeer (re-)establishes this node's shared-QP connectivity to
// dst: each of the K shared QPs is either leased from the connection
// pool (Params.QPLeaseGrant each) or cold-connected through the full
// rdma_cm exchange (Params.QPConnectTime each). Returns how many were
// leased and how many went cold. A drained pool is replenished in the
// background, off this caller's critical path.
func (i *Instance) ConnectPeer(p *simtime.Proc, dst int) (leased, cold int) {
	reg := i.obsReg()
	for _, qp := range i.qps[dst] {
		if i.lease.want > 0 && i.lease.spares[dst] > 0 {
			i.lease.spares[dst]--
			i.ctx.LeaseQP(p, qp)
			leased++
		} else {
			i.ctx.ConnectQP(p, qp, qp.RemoteNode(), qp.RemoteQPN())
			cold++
		}
	}
	reg.Add("lite.lease.leased", int64(leased))
	reg.Add("lite.lease.cold", int64(cold))
	if leased > 0 {
		i.spawnReplenisher()
	}
	return leased, cold
}

// reconnectPeers re-establishes connectivity to every peer, as a
// restarting node does before rejoining when ReconnectOnRestart is set.
// Peers this node's membership view has declared dead are skipped: a
// whole-leaf failure would otherwise make every restarting sibling
// burn a pool slot (and a lease grant) per dead neighbor, connections
// that can never complete — the leaked-slot bug the churn storm
// exposed. Connectivity toward a skipped peer is rebuilt by the
// replenisher when the membership view revives it.
func (i *Instance) reconnectPeers(p *simtime.Proc) {
	for dst := range i.qps {
		if dst == i.node.ID || len(i.qps[dst]) == 0 || i.deadView[dst] {
			continue
		}
		i.ConnectPeer(p, dst)
	}
}

// spawnReplenisher starts the background pool rebuilder if the pool is
// below target and no rebuilder is already running. Each rebuilt spare
// pays the full cold-connect cost — but in the background, where nobody
// waits on it.
func (i *Instance) spawnReplenisher() { i.spawnReplenisherAfter(0) }

// spawnReplenisherAfter is spawnReplenisher with an initial delay
// before the first rebuild. Mass-revival paths use it with a
// deterministic jitter so hundreds of survivors do not open their
// rdma_cm exchanges against the revived node at the same instant (the
// re-lease stampede); the zero-delay form is the ConnectPeer fast
// path, unchanged.
func (i *Instance) spawnReplenisherAfter(delay simtime.Time) {
	if i.lease.replenishing || i.lease.want <= 0 {
		return
	}
	i.lease.replenishing = true
	i.cls.GoDaemonOn(i.node.ID, "lite-lease-replenish", func(p *simtime.Proc) {
		defer func() { i.lease.replenishing = false }()
		if delay > 0 {
			p.Sleep(delay)
		}
		for {
			if i.stopped {
				return
			}
			dst := -1
			for d := range i.lease.spares {
				// Dead peers are skipped, not retried: before this check
				// the rebuilder would hot-spin cold connects against every
				// corpse in a failed leaf, starving the live destinations
				// behind them in the scan order.
				if d != i.node.ID && len(i.qps[d]) > 0 && !i.deadView[d] && i.lease.spares[d] < i.lease.want {
					dst = d
					break
				}
			}
			if dst < 0 {
				return
			}
			p.Work(simtime.Time(i.cfg.QPConnectTime))
			i.lease.spares[dst]++
			i.obsReg().Add("lite.lease.replenished", 1)
		}
	})
}

// reconcileLeases runs on every membership-view change: spares toward
// newly dead peers are revoked, and a revival re-arms the replenisher
// (with deterministic per-node jitter) to rebuild the revoked slots.
// Without the re-arm, a pool drained by revocation stayed empty until
// this node's next ConnectPeer — which then paid the cold-connect cost
// on the critical path, exactly what the pool exists to avoid.
func (i *Instance) reconcileLeases(oldDead map[int]bool, epoch uint64) {
	if i.lease.want <= 0 {
		return
	}
	revoked := 0
	rearm := false
	for d := range i.lease.spares {
		switch {
		case i.deadView[d] && !oldDead[d]:
			// Only pairs with QPs ever lease or replenish; spares toward
			// non-mesh peers are inert, so revoking them would just
			// inflate the counter.
			if len(i.qps[d]) > 0 {
				revoked += i.lease.revoke(d)
			}
		case !i.deadView[d] && oldDead[d]:
			if len(i.qps[d]) > 0 && i.lease.spares[d] < i.lease.want {
				rearm = true
			}
		}
	}
	if revoked > 0 {
		i.obsReg().Add("lite.lease.revoked", int64(revoked))
	}
	if rearm {
		// Jitter in [0, QPConnectTime): derived from (node, epoch) so
		// the spread is deterministic per run but decorrelated across
		// the survivors that all saw the same revival broadcast.
		window := uint64(simtime.Time(i.cfg.QPConnectTime))
		var jitter simtime.Time
		if window > 0 {
			jitter = simtime.Time(detrand.Mix64(uint64(i.node.ID)<<32^epoch) % window)
		}
		i.spawnReplenisherAfter(jitter)
	}
}
