package lite

import (
	"testing"

	"lite/internal/cluster"
	"lite/internal/params"
	"lite/internal/simtime"
)

// testDepQPs is testDep with an explicit K (QPs per node pair).
func testDepQPs(t *testing.T, n, k int) (*cluster.Cluster, *Deployment) {
	t.Helper()
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, n, 1<<30)
	opts := DefaultOptions()
	opts.QPsPerPair = k
	dep, err := Start(cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	return cls, dep
}

// Under QoSHWSep, pickQP must keep the two priority classes on
// disjoint QP ranges: high priority on [0, split), low priority on
// [split, n). The priority sequence is drawn from a seeded PRNG so the
// interleaving is arbitrary but reproducible.
func TestPickQPHWSepPartition(t *testing.T) {
	cls, dep := testDepQPs(t, 2, 4)
	dep.SetQoSMode(QoSHWSep)
	inst := dep.Instance(0)
	n := len(inst.qps[1])
	if n != 4 {
		t.Fatalf("QPs to node 1 = %d, want 4", n)
	}
	lo, hi := inst.qos.qpRange(PriHigh, n)
	if lo != 0 || hi != 3 {
		t.Fatalf("high range = [%d,%d), want [0,3)", lo, hi)
	}
	lo, hi = inst.qos.qpRange(PriLow, n)
	if lo != 3 || hi != 4 {
		t.Fatalf("low range = [%d,%d), want [3,4)", lo, hi)
	}
	split := 3
	seed := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}
	cls.GoOn(0, "picker", func(p *simtime.Proc) {
		for i := 0; i < 400; i++ {
			pri := PriHigh
			if next()%2 == 0 {
				pri = PriLow
			}
			_, k, release := inst.pickQP(p, 1, pri)
			release()
			if pri == PriHigh && k >= split {
				t.Fatalf("high-priority pick landed on reserved low QP %d", k)
			}
			if pri == PriLow && k < split {
				t.Fatalf("low-priority pick landed on reserved high QP %d", k)
			}
		}
	})
	run(t, cls)
}

// pickQP round-robins over the permitted range even when several
// processes pick concurrently: the shared cursor hands out every index
// equally often.
func TestPickQPRoundRobinAcrossConcurrentSenders(t *testing.T) {
	cls, dep := testDepQPs(t, 2, 4)
	inst := dep.Instance(0)
	n := len(inst.qps[1])
	counts := make([]int, n)
	const procs, picks = 4, 100
	for w := 0; w < procs; w++ {
		w := w
		cls.GoOn(0, "picker", func(p *simtime.Proc) {
			// Distinct start offsets so the processes genuinely
			// interleave instead of running back to back.
			p.Sleep(simtime.Time(w * 50))
			for i := 0; i < picks; i++ {
				_, k, release := inst.pickQP(p, 1, PriHigh)
				counts[k]++
				release()
				p.Sleep(simtime.Time(100 + w))
			}
		})
	}
	run(t, cls)
	want := procs * picks / n
	for k, c := range counts {
		if c != want {
			t.Errorf("QP %d picked %d times, want %d (counts %v)", k, c, want, counts)
		}
	}
}

// Every QP slot taken by pickQP during normal RPC traffic must come
// back: after a burst of calls completes, the outstanding-op
// semaphores are all back to full capacity once in-flight signaled
// batches are reaped.
func TestPickQPSlotsRecycled(t *testing.T) {
	cls, dep := testDep(t, 2)
	inst := dep.Instance(1)
	_ = inst.RegisterRPC(FirstUserFunc)
	cls.GoDaemonOn(1, "echo", func(p *simtime.Proc) {
		c := inst.KernelClient()
		call, err := c.RecvRPC(p, FirstUserFunc)
		if err != nil {
			return
		}
		for {
			call, err = c.ReplyRecvRPC(p, call, []byte("ok"), FirstUserFunc)
			if err != nil {
				return
			}
		}
	})
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		for i := 0; i < 64; i++ {
			if _, err := c.RPC(p, 1, FirstUserFunc, []byte("ping"), 16); err != nil {
				t.Errorf("rpc %d: %v", i, err)
				return
			}
		}
	})
	run(t, cls)
	for node, slots := range dep.Instance(0).qpSlots {
		for k, s := range slots {
			held := qpDepth - s.Available()
			inflight := 0
			sig := dep.Instance(0).qpSig[node][k]
			for _, b := range sig.inflight {
				inflight += len(b.releases)
			}
			if held != len(sig.pending)+inflight {
				t.Errorf("QP %d->%d[%d]: %d slots held, %d accounted (pending %d, inflight %d)",
					0, node, k, held, len(sig.pending)+inflight, len(sig.pending), inflight)
			}
		}
	}
}
