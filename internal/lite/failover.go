package lite

import (
	"sort"

	"lite/internal/simtime"
)

// Node crash/restart handling. Cluster.CrashNode cuts the node's
// fabric port (so remote QPs targeting it complete with StatusTimeout)
// and then runs the hooks registered here, which model the software
// consequences: the node's LITE daemons stop, its outstanding RPCs
// fail, and both sides of its RPC bindings are torn down. RestartNode
// reverses it: state is re-initialized, daemons respawn, and the node
// rejoins the cluster through the manager.

// attachFailover registers the LITE layer's crash/restart hooks with
// the cluster.
func (d *Deployment) attachFailover() {
	d.Cluster.OnNodeDown(func(p *simtime.Proc, node int) {
		d.Instances[node].crash(p)
	})
	d.Cluster.OnNodeUp(func(p *simtime.Proc, node int) {
		d.Instances[node].restart(p)
	})
}

// crash models the node's kernel going away: every daemon loop exits,
// every blocked caller is woken with an error, and peers' bindings to
// this node are torn down (the RC connections are broken; peers'
// in-flight requests fail by timeout or by membership notice).
func (i *Instance) crash(p *simtime.Proc) {
	if i.stopped {
		return
	}
	i.stopped = true
	env := i.cls.Env

	// Fail this node's own outstanding RPCs.
	for _, token := range i.sortedPendingTokens() {
		pc := i.pending[token]
		if !pc.done {
			pc.err = ErrNodeDead
			pc.done = true
			pc.cond.Broadcast(env)
		}
	}
	i.pending = make(map[uint32]*pendingCall)
	i.scratch.quar = nil
	i.scratch.quarBytes = 0
	i.scratch.evicted = nil
	// The calls the fair-admission policy was accounting for die with
	// the incarnation; its state dies too. Likewise migration soft
	// state: an in-flight Drain is abandoned (the manager's handoff
	// record is purged at rejoin or death), and the committed-moves
	// view is relearned from the manager's next broadcast.
	i.adm = nil
	i.migrating = make(map[int]*migState)
	i.adopted = make(map[bindKey]*adoptedWindow)
	i.moved = make(map[migKey]int)
	i.pacer = make(map[bindKey]simtime.Time)

	// Stop daemons: the header-update thread exits on channel close;
	// the poller and system workers observe stopped after a wakeup.
	// Deferred send-queue slots are returned here — nothing of the
	// dead incarnation will post again to reap their completions.
	for _, sigs := range i.qpSig {
		for _, s := range sigs {
			for _, rel := range s.pending {
				rel()
			}
			s.pending = nil
			s.count = 0
			for _, b := range s.inflight {
				for _, rel := range b.releases {
					rel()
				}
			}
			s.inflight = nil
			s.cond.Broadcast(env)
		}
	}
	i.headUpd.Close(p)
	i.recvCQ.Broadcast(env)
	i.sysQueue = nil
	i.sysCond.Broadcast(env)
	i.msgQueue = nil
	i.msgCond.Broadcast(env)
	for _, fn := range i.sortedFuncIDs() {
		f := i.funcs[fn]
		// Queued node-local calls have waiters parked on their own
		// pendingCall; fail them before dropping the queue.
		for _, call := range f.queue {
			if call.local && call.pend != nil && !call.pend.done {
				call.pend.err = ErrNodeDead
				call.pend.done = true
				call.pend.cond.Broadcast(env)
			}
		}
		f.queue = nil
		f.cond.Broadcast(env)
	}

	// Tear down this node's client bindings. Control bindings survive
	// (they are the bootstrap channel and are pointer-reset on
	// restart); everything else is renegotiated after recovery.
	for _, key := range i.sortedBindKeys() {
		b := i.bindings[key]
		b.dead = true
		b.space.Broadcast(env)
		if key.fn != funcControl {
			delete(i.bindings, key)
		}
	}
	for key := range i.srvRings {
		if key.fn != funcControl {
			delete(i.srvRings, key)
		}
	}

	// Tear down peers' bindings toward this node symmetrically.
	for _, peer := range i.dep.Instances {
		if peer == i || peer.stopped {
			continue
		}
		for _, key := range peer.sortedBindKeys() {
			if key.node != i.node.ID {
				continue
			}
			b := peer.bindings[key]
			b.dead = true
			b.space.Broadcast(env)
			if key.fn != funcControl {
				delete(peer.bindings, key)
			}
		}
		for key := range peer.srvRings {
			if key.node == i.node.ID && key.fn != funcControl {
				delete(peer.srvRings, key)
			}
		}
	}

	// The manager's soft state dies with it (§3.3); survivors
	// reconstruct it after the restart via RecoverManagerDirectory.
	if i.node.ID == i.opts.ManagerNode {
		i.dep.CrashManagerDirectory()
	}
}

// restart re-initializes the instance after a crash and rejoins the
// cluster: control rings are pointer-reset on both sides, daemons
// respawn, and a join announcement (or, for the manager, a directory
// recovery sweep) runs on the freshly booted node.
func (i *Instance) restart(p *simtime.Proc) {
	if !i.stopped {
		return
	}
	i.stopped = false
	env := i.cls.Env
	// A new incarnation: rings negotiated from here stamp their dedup
	// windows with the new boot count, so retries of calls first
	// posted to the previous incarnation are detectably ambiguous.
	i.boots++
	i.adm = nil
	i.pending = make(map[uint32]*pendingCall)
	i.headUpd = simtime.NewChan[headUpdate](4096)
	i.msgQueue = nil
	i.sysQueue = nil
	i.scratch.next = 0
	for _, fn := range i.sortedFuncIDs() {
		i.funcs[fn].queue = nil
	}

	// Revive the control bindings in both directions with reset ring
	// pointers; any bytes the old incarnation left in the rings are
	// dead (offsets ride in the IMM, so the accounting restarts
	// consistently from zero on both sides).
	for _, key := range i.sortedBindKeys() {
		b := i.bindings[key]
		b.dead = false
		b.tail, b.head = 0, 0
		if ring, ok := i.dep.Instances[key.node].srvRings[bindKey{i.node.ID, key.fn}]; ok {
			ring.headLocal = 0
		}
	}
	for _, peer := range i.dep.Instances {
		if peer == i {
			continue
		}
		if b, ok := peer.bindings[bindKey{i.node.ID, funcControl}]; ok {
			b.dead = false
			b.tail, b.head = 0, 0
			b.space.Broadcast(env)
		}
		if ring, ok := i.srvRings[bindKey{peer.node.ID, funcControl}]; ok {
			ring.headLocal = 0
		}
	}

	i.topUpRecvs(p)
	i.spawnDaemons()

	node := i.node.ID
	if node == i.opts.ManagerNode {
		i.cls.GoOn(node, "lite-mgr-recover", func(q *simtime.Proc) {
			// Fresh epoch: survivors drop stale quarantines and relearn
			// the view (the membership table itself survives on the HA
			// pair, §3.3).
			i.dep.memb.epoch++
			i.broadcastMembership(q)
			_ = i.dep.RecoverManagerDirectory(q)
		})
		return
	}
	i.cls.GoOn(node, "lite-rejoin", func(q *simtime.Proc) {
		// With leasing enabled, re-establish shared-QP connectivity
		// from the pool before announcing — this is the restart path
		// the lease experiment measures.
		if i.opts.ReconnectOnRestart {
			i.reconnectPeers(q)
		}
		// Announce to the manager with bounded retries; if the manager
		// is itself down, its own restart broadcast revives us.
		for a := 0; a < i.opts.RetryAttempts; a++ {
			if i.ctlJoin(q) == nil {
				return
			}
			q.Sleep(i.retryDelay(q, a))
		}
	})
}

// sortedFuncIDs returns registered RPC function ids in a stable order.
func (i *Instance) sortedFuncIDs() []int {
	ids := make([]int, 0, len(i.funcs))
	for id := range i.funcs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// resetBinding forces renegotiation of (dst, fn) on the next use. The
// control binding cannot be deleted (it is the channel renegotiation
// itself runs over), so it is pointer-reset on both sides instead.
func (i *Instance) resetBinding(dst, fn int) {
	key := bindKey{dst, fn}
	b, ok := i.bindings[key]
	if !ok {
		return
	}
	if fn != funcControl {
		b.dead = true
		b.space.Broadcast(i.cls.Env)
		delete(i.bindings, key)
		return
	}
	b.tail, b.head = 0, 0
	b.space.Broadcast(i.cls.Env)
	if ring, ok := i.dep.Instances[dst].srvRings[bindKey{i.node.ID, fn}]; ok {
		ring.headLocal = 0
	}
}
