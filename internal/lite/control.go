package lite

import (
	"encoding/binary"

	"lite/internal/hostmem"
	"lite/internal/simtime"
)

// Control-plane operation codes carried over the funcControl binding.
const (
	copBind byte = iota + 1
	copAllocChunk
	copFreeChunk
	copRegName
	copUnregName
	copLookupName
	copMapReq
	copUnmapNotify
	copInvalidate
	copMemset
	copMemcpy
	copPing       // keepalive probe; reply carries the node's epoch
	copMembership // manager -> node membership (epoch, dead set, moves) push
	copJoin       // restarted node -> manager rejoin announcement
	copMigPrepare // source -> manager: record the handoff {src, fn} -> target
	copMigState   // source -> target: dedup windows + application payload
	copMigCommit  // source -> manager: commit the move (linearization point)
	copMigAbort   // source -> manager: clear the handoff record
)

// Control-plane status codes.
const (
	cstOK byte = iota
	cstError
	cstNameTaken
	cstNoSuchName
	cstPermission
	cstNoMemory
	cstBadArg
	cstBusy // migration admission: target already receiving this fn
)

func cstToErr(b byte) error {
	switch b {
	case cstOK:
		return nil
	case cstNameTaken:
		return ErrNameTaken
	case cstNoSuchName:
		return ErrNoSuchName
	case cstPermission:
		return ErrPermission
	case cstNoMemory:
		return hostmem.ErrOutOfMemory
	case cstBusy:
		return ErrMigrating
	}
	return ErrRemoteFailed
}

func errToCst(err error) byte {
	switch err {
	case nil:
		return cstOK
	case ErrNameTaken:
		return cstNameTaken
	case ErrNoSuchName:
		return cstNoSuchName
	case ErrPermission:
		return cstPermission
	case hostmem.ErrOutOfMemory, hostmem.ErrNoContiguous:
		return cstNoMemory
	case ErrMigrating:
		return cstBusy
	}
	return cstError
}

// ctl sends a control request and returns the response payload.
func (i *Instance) ctl(p *simtime.Proc, dst int, req []byte, maxReply int64, pri Priority) ([]byte, error) {
	out, err := i.rpcInternal(p, dst, funcControl, req, maxReply+1, pri)
	if err != nil {
		return nil, err
	}
	if len(out) < 1 {
		return nil, ErrRemoteFailed
	}
	if err := cstToErr(out[0]); err != nil {
		return nil, err
	}
	return out[1:], nil
}

// ctlBind negotiates a ring for (dst, fn) and returns its address,
// size, and the serving instance's boot count — the incarnation stamp
// retried calls carry so the server can detect retries that crossed
// its own restart.
func (i *Instance) ctlBind(p *simtime.Proc, dst, fn int, pri Priority) (hostmem.PAddr, int64, uint64, error) {
	req := make([]byte, 5)
	req[0] = copBind
	binary.LittleEndian.PutUint32(req[1:], uint32(fn))
	out, err := i.ctl(p, dst, req, 24, pri)
	if err != nil {
		return 0, 0, 0, err
	}
	if len(out) < 24 {
		return 0, 0, 0, ErrRemoteFailed
	}
	return hostmem.PAddr(binary.LittleEndian.Uint64(out[0:])), int64(binary.LittleEndian.Uint64(out[8:])),
		binary.LittleEndian.Uint64(out[16:]), nil
}

func (i *Instance) ctlAllocChunk(p *simtime.Proc, dst int, size int64, pri Priority) (hostmem.PAddr, error) {
	req := make([]byte, 9)
	req[0] = copAllocChunk
	binary.LittleEndian.PutUint64(req[1:], uint64(size))
	out, err := i.ctl(p, dst, req, 8, pri)
	if err != nil {
		return 0, err
	}
	return hostmem.PAddr(binary.LittleEndian.Uint64(out)), nil
}

func (i *Instance) ctlFreeChunk(p *simtime.Proc, dst int, pa hostmem.PAddr, size int64, pri Priority) error {
	req := make([]byte, 17)
	req[0] = copFreeChunk
	binary.LittleEndian.PutUint64(req[1:], uint64(pa))
	binary.LittleEndian.PutUint64(req[9:], uint64(size))
	_, err := i.ctl(p, dst, req, 0, pri)
	return err
}

func (i *Instance) ctlRegName(p *simtime.Proc, ls *lmrState, pri Priority) error {
	req := make([]byte, 9+len(ls.name))
	req[0] = copRegName
	binary.LittleEndian.PutUint64(req[1:], ls.id)
	copy(req[9:], ls.name)
	_, err := i.ctl(p, i.opts.ManagerNode, req, 0, pri)
	return err
}

func (i *Instance) ctlUnregName(p *simtime.Proc, name string, pri Priority) error {
	req := append([]byte{copUnregName}, name...)
	_, err := i.ctl(p, i.opts.ManagerNode, req, 0, pri)
	return err
}

func (i *Instance) ctlLookupName(p *simtime.Proc, name string, pri Priority) (uint64, error) {
	req := append([]byte{copLookupName}, name...)
	out, err := i.ctl(p, i.opts.ManagerNode, req, 8, pri)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(out), nil
}

func (i *Instance) ctlMapRequest(p *simtime.Proc, master int, lmrID uint64, pri Priority) (Perm, error) {
	req := make([]byte, 9)
	req[0] = copMapReq
	binary.LittleEndian.PutUint64(req[1:], lmrID)
	out, err := i.ctl(p, master, req, 1, pri)
	if err != nil {
		return 0, err
	}
	return Perm(out[0]), nil
}

func (i *Instance) ctlUnmapNotify(p *simtime.Proc, master int, lmrID uint64, pri Priority) error {
	req := make([]byte, 9)
	req[0] = copUnmapNotify
	binary.LittleEndian.PutUint64(req[1:], lmrID)
	_, err := i.ctl(p, master, req, 0, pri)
	return err
}

func (i *Instance) ctlInvalidate(p *simtime.Proc, node int, lmrID uint64, pri Priority) error {
	req := make([]byte, 9)
	req[0] = copInvalidate
	binary.LittleEndian.PutUint64(req[1:], lmrID)
	_, err := i.ctl(p, node, req, 0, pri)
	return err
}

func (i *Instance) ctlMemset(p *simtime.Proc, dst int, pa hostmem.PAddr, val byte, n int64, pri Priority) error {
	req := make([]byte, 18)
	req[0] = copMemset
	binary.LittleEndian.PutUint64(req[1:], uint64(pa))
	binary.LittleEndian.PutUint64(req[9:], uint64(n))
	req[17] = val
	_, err := i.ctl(p, dst, req, 0, pri)
	return err
}

func (i *Instance) ctlMemcpy(p *simtime.Proc, srcNode int, srcPA hostmem.PAddr, dstNode int, dstPA hostmem.PAddr, n int64, pri Priority) error {
	req := make([]byte, 29)
	req[0] = copMemcpy
	binary.LittleEndian.PutUint64(req[1:], uint64(srcPA))
	binary.LittleEndian.PutUint64(req[9:], uint64(n))
	binary.LittleEndian.PutUint32(req[17:], uint32(dstNode))
	binary.LittleEndian.PutUint64(req[21:], uint64(dstPA))
	_, err := i.ctl(p, srcNode, req, 0, pri)
	return err
}

// handleControl executes control-plane requests on the serving node.
func (i *Instance) handleControl(p *simtime.Proc, c *Call) {
	reply := func(status byte, payload []byte) {
		_ = i.replyRPCInternal(p, c, append([]byte{status}, payload...), PriHigh)
	}
	in := c.Input
	if len(in) < 1 {
		reply(cstBadArg, nil)
		return
	}
	switch in[0] {
	case copBind:
		fn := int(binary.LittleEndian.Uint32(in[1:]))
		key := bindKey{c.Src, fn}
		ring, ok := i.srvRings[key]
		if !ok {
			if validateRingBytes(i.opts.RingBytes) != nil {
				// A ring the IMM offset encoding cannot address must
				// never go live; the client surfaces a setup error.
				reply(cstBadArg, nil)
				return
			}
			pa, leased := i.lease.takeRing()
			if leased {
				// Pre-allocated ring arena from the lease pool: a
				// lookup and handoff instead of the page allocator.
				p.Work(simtime.Time(i.cfg.QPLeaseGrant))
				i.obsReg().Add("lite.lease.ring_leased", 1)
			} else {
				var err error
				pa, err = i.node.Mem.AllocContiguous(i.opts.RingBytes)
				if err != nil {
					reply(errToCst(err), nil)
					return
				}
			}
			// The ring is stamped with this incarnation's boot count:
			// its dedup window can only vouch for calls first posted to
			// this incarnation.
			ring = &srvRing{client: c.Src, fn: fn, pa: pa, size: i.opts.RingBytes, boot: i.boots}
			if w, ok := i.adopted[key]; ok {
				// A migration shipped this client's dedup window ahead
				// of the binding; the fresh ring inherits the history
				// and the boot lineage it vouches for.
				ring.adoptedBoots = w.boots
				ring.dedup = w.dedup
				ring.dedupFIFO = w.dedupFIFO
				delete(i.adopted, key)
			}
			i.srvRings[key] = ring
		} else {
			// Re-bind after a failure: the client restarts its tail at
			// zero, so reset the consume pointer to match. Frames the
			// old incarnation left unconsumed are dropped (their
			// callers have already timed out or failed over). The dedup
			// window and its boot stamp survive — the server did not
			// restart, so its duplicate-suppression history is intact.
			ring.headLocal = 0
		}
		out := make([]byte, 24)
		binary.LittleEndian.PutUint64(out[0:], uint64(ring.pa))
		binary.LittleEndian.PutUint64(out[8:], uint64(ring.size))
		binary.LittleEndian.PutUint64(out[16:], ring.boot)
		reply(cstOK, out)

	case copAllocChunk:
		size := int64(binary.LittleEndian.Uint64(in[1:]))
		pa, err := i.node.Mem.AllocContiguous(size)
		if err != nil {
			reply(errToCst(err), nil)
			return
		}
		p.Work(simtime.Time((size+i.cfg.PageSize-1)/i.cfg.PageSize) * i.cfg.PageAllocPerPage)
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, uint64(pa))
		reply(cstOK, out)

	case copFreeChunk:
		pa := hostmem.PAddr(binary.LittleEndian.Uint64(in[1:]))
		size := int64(binary.LittleEndian.Uint64(in[9:]))
		reply(errToCst(i.node.Mem.Free(pa, size)), nil)

	case copRegName:
		id := binary.LittleEndian.Uint64(in[1:])
		name := string(in[9:])
		if i.node.ID != i.opts.ManagerNode {
			reply(cstBadArg, nil)
			return
		}
		if _, taken := i.dep.directory[name]; taken {
			reply(cstNameTaken, nil)
			return
		}
		ls := i.dep.lmrByID(id)
		if ls == nil {
			reply(cstError, nil)
			return
		}
		i.dep.directory[name] = ls
		reply(cstOK, nil)

	case copUnregName:
		delete(i.dep.directory, string(in[1:]))
		reply(cstOK, nil)

	case copLookupName:
		ls, ok := i.dep.directory[string(in[1:])]
		if !ok {
			reply(cstNoSuchName, nil)
			return
		}
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, ls.id)
		reply(cstOK, out)

	case copMapReq:
		id := binary.LittleEndian.Uint64(in[1:])
		ls := i.dep.lmrByID(id)
		if ls == nil || ls.freed {
			reply(cstNoSuchName, nil)
			return
		}
		if !ls.masters[i.node.ID] {
			reply(cstPermission, nil)
			return
		}
		g := grantFor(ls, c.Src)
		if g == 0 {
			reply(cstPermission, nil)
			return
		}
		ls.mappedBy[c.Src] = true
		reply(cstOK, []byte{byte(g)})

	case copUnmapNotify:
		id := binary.LittleEndian.Uint64(in[1:])
		if ls := i.dep.lmrByID(id); ls != nil {
			delete(ls.mappedBy, c.Src)
			ls.mappedBy[i.node.ID] = true // master keeps its own entry
		}
		reply(cstOK, nil)

	case copInvalidate:
		id := binary.LittleEndian.Uint64(in[1:])
		// Drop any local lhs pointing at the freed LMR.
		for h, e := range i.lhs {
			if e.ls.id == id {
				delete(i.lhs, h)
			}
		}
		reply(cstOK, nil)

	case copMemset:
		pa := hostmem.PAddr(binary.LittleEndian.Uint64(in[1:]))
		n := int64(binary.LittleEndian.Uint64(in[9:]))
		val := in[17]
		i.memcpyCost(p, n)
		reply(errToCst(memsetPhys(i, pa, val, n)), nil)

	case copMemcpy:
		srcPA := hostmem.PAddr(binary.LittleEndian.Uint64(in[1:]))
		n := int64(binary.LittleEndian.Uint64(in[9:]))
		dstNode := int(binary.LittleEndian.Uint32(in[17:]))
		dstPA := hostmem.PAddr(binary.LittleEndian.Uint64(in[21:]))
		buf := make([]byte, n)
		i.memcpyCost(p, n)
		if err := i.node.Mem.Read(srcPA, buf); err != nil {
			reply(errToCst(err), nil)
			return
		}
		var err error
		if dstNode == i.node.ID {
			i.memcpyCost(p, n)
			err = i.node.Mem.Write(dstPA, buf)
		} else {
			err = i.rawWrite(p, dstNode, dstPA, buf, PriHigh)
		}
		reply(errToCst(err), nil)

	case copPing:
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, i.epoch)
		reply(cstOK, out)

	case copMembership:
		if len(in) < 11 {
			reply(cstBadArg, nil)
			return
		}
		epoch := binary.LittleEndian.Uint64(in[1:])
		n := int(binary.LittleEndian.Uint16(in[9:]))
		if len(in) < 13+4*n {
			reply(cstBadArg, nil)
			return
		}
		dead := make([]int, n)
		for k := 0; k < n; k++ {
			dead[k] = int(binary.LittleEndian.Uint32(in[11+4*k:]))
		}
		off := 11 + 4*n
		m := int(binary.LittleEndian.Uint16(in[off:]))
		off += 2
		if len(in) < off+12*m {
			reply(cstBadArg, nil)
			return
		}
		moves := make([]moveRec, m)
		for k := 0; k < m; k++ {
			moves[k] = moveRec{
				src: int(binary.LittleEndian.Uint32(in[off:])),
				fn:  int(binary.LittleEndian.Uint32(in[off+4:])),
				dst: int(binary.LittleEndian.Uint32(in[off+8:])),
			}
			off += 12
		}
		i.applyMembership(epoch, dead, moves)
		reply(cstOK, nil)

	case copJoin:
		if i.node.ID != i.opts.ManagerNode {
			reply(cstBadArg, nil)
			return
		}
		i.handleJoin(p, c.Src)
		reply(cstOK, nil)

	case copMigPrepare:
		if i.node.ID != i.opts.ManagerNode || len(in) < 9 {
			reply(cstBadArg, nil)
			return
		}
		fn := int(binary.LittleEndian.Uint32(in[1:]))
		target := int(binary.LittleEndian.Uint32(in[5:]))
		m := &i.dep.memb
		if m.dead[c.Src] || m.dead[target] || target == c.Src {
			reply(cstBadArg, nil)
			return
		}
		// Per-target admission: at most one in-flight handoff of a
		// given fn may target a node. Two concurrent drains of distinct
		// shards sharing fn onto one target would interleave their
		// transfer/commit phases against a single fn-keyed adoption slot
		// on the target; the loser is bounced with cstBusy and retries
		// after the winner commits.
		for k, to := range m.handoff {
			if k.fn == fn && to == target && k.src != c.Src {
				reply(cstBusy, nil)
				return
			}
		}
		// The handoff record is routing-inert; it exists to gate the
		// commit, so a crash between here and commit resolves to the
		// moves table's answer, deterministically.
		m.handoff[migKey{c.Src, fn}] = target
		i.obsReg().Add("lite.migrate.prepared", 1)
		reply(cstOK, nil)

	case copMigState:
		if len(in) < 1 {
			reply(cstBadArg, nil)
			return
		}
		if err := i.adoptMigState(p, c.Src, in[1:]); err != nil {
			reply(errToCst(err), nil)
			return
		}
		reply(cstOK, nil)

	case copMigCommit:
		if i.node.ID != i.opts.ManagerNode || len(in) < 9 {
			reply(cstBadArg, nil)
			return
		}
		fn := int(binary.LittleEndian.Uint32(in[1:]))
		target := int(binary.LittleEndian.Uint32(in[5:]))
		m := &i.dep.memb
		k := migKey{c.Src, fn}
		if to, ok := m.moves[k]; ok && to == target {
			// Idempotent re-commit: the first commit's reply was lost.
			reply(cstOK, nil)
			return
		}
		if to, ok := m.handoff[k]; !ok || to != target {
			reply(cstBadArg, nil)
			return
		}
		delete(m.handoff, k)
		m.moves[k] = target
		// Collapse chains eagerly: if fn had previously moved TO c.Src,
		// or target was itself a recorded source, rewrite so the table
		// stays cycle-free and one lookup away from the live owner.
		delete(m.moves, migKey{target, fn})
		m.epoch++
		i.obsReg().Add("lite.membership.epochs", 1)
		i.obsReg().Add("lite.migrate.commits", 1)
		if i.opts.AsyncCommitBroadcast {
			// The moves-table update above is the linearization point;
			// ack the source now and recite the epoch to the cluster in
			// the background. broadcastMembership's coalescing flags
			// make a concurrent second entry a cheap dirty-mark.
			reply(cstOK, nil)
			i.cls.GoDaemonOn(i.node.ID, "lite-memb-broadcast", func(q *simtime.Proc) {
				i.broadcastMembership(q)
			})
			return
		}
		i.broadcastMembership(p)
		reply(cstOK, nil)

	case copMigAbort:
		if i.node.ID != i.opts.ManagerNode || len(in) < 5 {
			reply(cstBadArg, nil)
			return
		}
		fn := int(binary.LittleEndian.Uint32(in[1:]))
		delete(i.dep.memb.handoff, migKey{c.Src, fn})
		i.obsReg().Add("lite.migrate.aborts", 1)
		reply(cstOK, nil)

	default:
		reply(cstBadArg, nil)
	}
}
