package lite

import (
	"bytes"
	"testing"
	"time"

	"lite/internal/cluster"
	"lite/internal/params"
	"lite/internal/simtime"
)

// testDep builds an n-node cluster with LITE booted on every node.
func testDep(t *testing.T, n int) (*cluster.Cluster, *Deployment) {
	t.Helper()
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, n, 1<<30)
	dep, err := Start(cls, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return cls, dep
}

func run(t *testing.T, cls *cluster.Cluster) {
	t.Helper()
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMallocWriteReadLocal(t *testing.T) {
	cls, dep := testDep(t, 2)
	cls.GoOn(0, "app", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		h, err := c.Malloc(p, 8192, "buf", PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		msg := []byte("local lmr data")
		if err := c.Write(p, h, 100, msg); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(msg))
		if err := c.Read(p, h, 100, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("got %q", got)
		}
	})
	run(t, cls)
}

func TestRemoteWriteReadAndLatency(t *testing.T) {
	cls, dep := testDep(t, 2)
	var lat simtime.Time
	cls.GoOn(0, "app", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		// Allocate on node 1, access from node 0.
		h, err := c.MallocAt(p, []int{1}, 4096, "remote", PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		msg := []byte("remote write payload")
		// Warm caches.
		if err := c.Write(p, h, 0, msg); err != nil {
			t.Fatal(err)
		}
		start := p.Now()
		if err := c.Write(p, h, 0, msg); err != nil {
			t.Fatal(err)
		}
		lat = p.Now() - start
		got := make([]byte, len(msg))
		if err := c.Read(p, h, 0, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("got %q", got)
		}
	})
	run(t, cls)
	if lat < 1*time.Microsecond || lat > 4*time.Microsecond {
		t.Fatalf("warm LT_write latency = %v, want ~1.5-2.5us", lat)
	}
}

func TestMapByNameFromOtherNode(t *testing.T) {
	cls, dep := testDep(t, 3)
	ready := false
	var readyCond simtime.Cond
	cls.GoOn(1, "owner", func(p *simtime.Proc) {
		c := dep.Instance(1).KernelClient()
		h, err := c.Malloc(p, 4096, "shared-region", PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Write(p, h, 0, []byte("shared!")); err != nil {
			t.Fatal(err)
		}
		ready = true
		readyCond.Broadcast(p.Env())
	})
	cls.GoOn(2, "mapper", func(p *simtime.Proc) {
		for !ready {
			readyCond.Wait(p)
		}
		c := dep.Instance(2).KernelClient()
		h, err := c.Map(p, "shared-region")
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 7)
		if err := c.Read(p, h, 0, got); err != nil {
			t.Fatal(err)
		}
		if string(got) != "shared!" {
			t.Fatalf("got %q", got)
		}
		if err := c.Unmap(p, h); err != nil {
			t.Fatal(err)
		}
		if err := c.Read(p, h, 0, got); err != ErrBadHandle {
			t.Fatalf("read after unmap err = %v, want ErrBadHandle", err)
		}
	})
	run(t, cls)
}

func TestMapUnknownName(t *testing.T) {
	cls, dep := testDep(t, 2)
	cls.GoOn(1, "mapper", func(p *simtime.Proc) {
		c := dep.Instance(1).KernelClient()
		if _, err := c.Map(p, "nope"); err != ErrNoSuchName {
			t.Fatalf("err = %v, want ErrNoSuchName", err)
		}
	})
	run(t, cls)
}

func TestPermissionEnforcement(t *testing.T) {
	cls, dep := testDep(t, 2)
	cls.GoOn(0, "owner", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		// Default grant is read-only for other nodes.
		_, err := c.Malloc(p, 4096, "ro-region", PermRead)
		if err != nil {
			t.Fatal(err)
		}
	})
	cls.GoOn(1, "reader", func(p *simtime.Proc) {
		p.Sleep(50 * time.Microsecond)
		c := dep.Instance(1).KernelClient()
		h, err := c.Map(p, "ro-region")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 8)
		if err := c.Read(p, h, 0, buf); err != nil {
			t.Fatalf("read should be allowed: %v", err)
		}
		if err := c.Write(p, h, 0, buf); err != ErrPermission {
			t.Fatalf("write err = %v, want ErrPermission", err)
		}
	})
	run(t, cls)
}

func TestGrantChangesPermissionWithoutReregistration(t *testing.T) {
	cls, dep := testDep(t, 2)
	cls.GoOn(0, "owner", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		h, err := c.Malloc(p, 4096, "grant-region", 0) // no default grant
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Grant(p, h, 1, PermRead|PermWrite); err != nil {
			t.Fatal(err)
		}
	})
	cls.GoOn(1, "writer", func(p *simtime.Proc) {
		p.Sleep(50 * time.Microsecond)
		c := dep.Instance(1).KernelClient()
		h, err := c.Map(p, "grant-region")
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Write(p, h, 0, []byte("granted")); err != nil {
			t.Fatal(err)
		}
	})
	run(t, cls)
}

func TestFreeInvalidatesRemoteHandles(t *testing.T) {
	cls, dep := testDep(t, 2)
	var h1 LH
	mapped := false
	var cond simtime.Cond
	cls.GoOn(1, "mapper", func(p *simtime.Proc) {
		c := dep.Instance(1).KernelClient()
		// Wait for the region to exist.
		var err error
		for {
			h1, err = c.Map(p, "to-free")
			if err == nil {
				break
			}
			p.Sleep(20 * time.Microsecond)
		}
		mapped = true
		cond.Broadcast(p.Env())
		// Wait for the owner to free it.
		p.Sleep(200 * time.Microsecond)
		buf := make([]byte, 4)
		err = c.Read(p, h1, 0, buf)
		if err != ErrBadHandle && err != ErrFreed {
			t.Fatalf("read after free err = %v", err)
		}
	})
	cls.GoOn(0, "owner", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		h, err := c.Malloc(p, 4096, "to-free", PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		for !mapped {
			cond.Wait(p)
		}
		if err := c.Free(p, h); err != nil {
			t.Fatal(err)
		}
		// Its memory is back.
		if _, err := c.Map(p, "to-free"); err != ErrNoSuchName {
			t.Fatalf("map after free err = %v, want ErrNoSuchName", err)
		}
	})
	run(t, cls)
}

func TestLargeChunkedLMR(t *testing.T) {
	cls, dep := testDep(t, 2)
	cls.GoOn(0, "app", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		// 10 MB LMR on node 1: split into 4 MB + 4 MB + 2 MB chunks.
		h, err := c.MallocAt(p, []int{1}, 10<<20, "", PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		// Write spanning the chunk boundary at 4 MB.
		data := make([]byte, 1<<20)
		for i := range data {
			data[i] = byte(i * 31)
		}
		off := int64(4<<20 - 512*1024)
		if err := c.Write(p, h, off, data); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if err := c.Read(p, h, off, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("cross-chunk round trip mismatch")
		}
	})
	run(t, cls)
}

func TestSpreadLMRAcrossNodes(t *testing.T) {
	cls, dep := testDep(t, 3)
	cls.GoOn(0, "app", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		// 8 MB across nodes 1 and 2 (the paper: "An LMR can even
		// spread across different machines").
		h, err := c.MallocAt(p, []int{1, 2}, 8<<20, "", PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 6<<20)
		for i := range data {
			data[i] = byte(i >> 8)
		}
		if err := c.Write(p, h, 1<<20, data); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if err := c.Read(p, h, 1<<20, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("spread LMR round trip mismatch")
		}
	})
	run(t, cls)
}

func TestBoundsChecking(t *testing.T) {
	cls, dep := testDep(t, 1)
	cls.GoOn(0, "app", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		h, _ := c.Malloc(p, 4096, "", PermRead|PermWrite)
		buf := make([]byte, 16)
		if err := c.Read(p, h, 4090, buf); err != ErrBounds {
			t.Fatalf("err = %v, want ErrBounds", err)
		}
		if err := c.Write(p, h, -1, buf); err != ErrBounds {
			t.Fatalf("err = %v, want ErrBounds", err)
		}
	})
	run(t, cls)
}

func TestMemsetMemcpyRemote(t *testing.T) {
	cls, dep := testDep(t, 3)
	cls.GoOn(0, "app", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		src, err := c.MallocAt(p, []int{1}, 8192, "", PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		dst, err := c.MallocAt(p, []int{2}, 8192, "", PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Memset(p, src, 0, 0xAB, 4096); err != nil {
			t.Fatal(err)
		}
		if err := c.Memcpy(p, dst, 100, src, 0, 4096); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 4096)
		if err := c.Read(p, dst, 100, got); err != nil {
			t.Fatal(err)
		}
		for _, b := range got {
			if b != 0xAB {
				t.Fatalf("memcpy'd byte = %#x, want 0xAB", b)
			}
		}
	})
	run(t, cls)
}

func TestMemcpySameNode(t *testing.T) {
	cls, dep := testDep(t, 2)
	cls.GoOn(0, "app", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		src, _ := c.MallocAt(p, []int{1}, 4096, "", PermRead|PermWrite)
		dst, _ := c.MallocAt(p, []int{1}, 4096, "", PermRead|PermWrite)
		if err := c.Memset(p, src, 0, 0x5A, 512); err != nil {
			t.Fatal(err)
		}
		if err := c.Memcpy(p, dst, 0, src, 0, 512); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 512)
		_ = c.Read(p, dst, 0, got)
		for _, b := range got {
			if b != 0x5A {
				t.Fatalf("byte = %#x", b)
			}
		}
	})
	run(t, cls)
}

func TestFetchAddConcurrent(t *testing.T) {
	cls, dep := testDep(t, 4)
	const perNode = 30
	var counterLH [4]LH
	cls.GoOn(0, "owner", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		_, err := c.Malloc(p, 64, "counter", PermRead|PermWrite)
		if err != nil {
			t.Fatal(err)
		}
	})
	for n := 1; n < 4; n++ {
		n := n
		cls.GoOn(n, "adder", func(p *simtime.Proc) {
			p.Sleep(50 * time.Microsecond)
			c := dep.Instance(n).KernelClient()
			h, err := c.Map(p, "counter")
			if err != nil {
				t.Fatal(err)
			}
			counterLH[n] = h
			for k := 0; k < perNode; k++ {
				if _, err := c.FetchAdd(p, h, 0, 1); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
	run(t, cls)
	// Verify the final count through a fresh read.
	cls2 := cls
	_ = cls2
	cfg := params.Default()
	_ = cfg
	// Re-enter the simulation to read the counter.
	cls.GoOn(1, "checker", func(p *simtime.Proc) {
		c := dep.Instance(1).KernelClient()
		v, err := c.FetchAdd(p, counterLH[1], 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if v != 3*perNode {
			t.Fatalf("counter = %d, want %d", v, 3*perNode)
		}
	})
	run(t, cls)
}

func TestTestSet(t *testing.T) {
	cls, dep := testDep(t, 2)
	cls.GoOn(0, "app", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		h, _ := c.MallocAt(p, []int{1}, 64, "", PermRead|PermWrite)
		old, err := c.TestSet(p, h, 0, 1)
		if err != nil || old != 0 {
			t.Fatalf("first test-set: old=%d err=%v", old, err)
		}
		old, err = c.TestSet(p, h, 0, 1)
		if err != nil || old != 1 {
			t.Fatalf("second test-set: old=%d err=%v (must fail to set)", old, err)
		}
	})
	run(t, cls)
}
