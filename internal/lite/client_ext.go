package lite

import "lite/internal/simtime"

// RPCT is RPC with an explicit reply timeout; zero means wait forever.
// Long-running application tasks (MapReduce phases, graph supersteps)
// use it so legitimate long executions are not cut off by the default
// transport timeout.
func (c *Client) RPCT(p *simtime.Proc, dst, fn int, input []byte, maxReply int64, timeout simtime.Time) ([]byte, error) {
	c.enter(p)
	return c.inst.rpcInternalT(p, dst, fn, input, maxReply, c.pri, timeout)
}
