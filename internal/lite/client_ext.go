package lite

import "lite/internal/simtime"

// RPCT is RPC with an explicit reply timeout; zero means wait forever.
// Long-running application tasks (MapReduce phases, graph supersteps)
// use it so legitimate long executions are not cut off by the default
// transport timeout.
func (c *Client) RPCT(p *simtime.Proc, dst, fn int, input []byte, maxReply int64, timeout simtime.Time) ([]byte, error) {
	c.enter(p)
	return c.inst.rpcInternalFull(p, dst, fn, input, maxReply, c.pri, timeout, false, nil, c.tenant)
}

// RPCRetry is RPC through the bounded retry layer: timeouts are
// retried with exponential backoff and deterministic jitter, bindings
// are renegotiated after membership changes, and the call fails fast
// with ErrNodeDead once the target is declared dead.
func (c *Client) RPCRetry(p *simtime.Proc, dst, fn int, input []byte, maxReply int64) ([]byte, error) {
	return c.RPCRetryT(p, dst, fn, input, maxReply, c.inst.opts.RPCTimeout)
}

// RPCRetryT is RPCRetry with an explicit per-attempt timeout; zero
// falls back to the deployment's RPCTimeout (a retry wrapper around an
// unbounded wait would never fire).
func (c *Client) RPCRetryT(p *simtime.Proc, dst, fn int, input []byte, maxReply int64, timeout simtime.Time) ([]byte, error) {
	c.enter(p)
	if timeout <= 0 {
		timeout = c.inst.opts.RPCTimeout
	}
	return c.inst.rpcRetryT(p, dst, fn, input, maxReply, c.pri, timeout, c.tenant)
}

// NodeDead reports whether this client's node has been told (via a
// membership broadcast) that the given node is dead.
func (c *Client) NodeDead(node int) bool { return c.inst.NodeDead(node) }

// MembershipEpoch returns the membership epoch this client's node has
// seen. Applications that cache routing or handle state keyed on
// cluster membership can compare epochs to find out when to rebuild.
func (c *Client) MembershipEpoch() uint64 { return c.inst.MembershipEpoch() }
