// Package hostmem simulates a node's physical memory: a page-frame
// allocator with support for physically contiguous ranges, per-page pin
// counts (RDMA registration pins pages), lazily materialized page
// contents, and per-process virtual address spaces with page tables.
//
// Physical frames are materialized lazily, so a simulated node can
// expose a large physical memory (the paper's testbed has 128 GB per
// node) while the simulation only pays for pages actually touched.
package hostmem

import (
	"errors"
	"fmt"
	"sort"
)

// PAddr is a physical byte address on one node.
type PAddr int64

// VAddr is a virtual byte address inside one address space.
type VAddr int64

// Common errors returned by the memory system.
var (
	ErrOutOfMemory  = errors.New("hostmem: out of physical memory")
	ErrNoContiguous = errors.New("hostmem: no contiguous physical range of requested size")
	ErrBadAddress   = errors.New("hostmem: address out of range or unmapped")
	ErrDoubleFree   = errors.New("hostmem: freeing memory that is not allocated")
	ErrPinned       = errors.New("hostmem: cannot free pinned memory")
	ErrNotPinned    = errors.New("hostmem: unpinning page that is not pinned")
	ErrBadSize      = errors.New("hostmem: size must be positive")
)

type frameRange struct {
	start int64 // first frame
	n     int64 // number of frames
}

// Memory is one node's physical memory.
type Memory struct {
	pageSize   int64
	totalPages int64
	free       []frameRange // sorted by start, coalesced
	frames     map[int64][]byte
	pins       map[int64]int
	allocated  int64 // frames currently allocated

	watches []watch
	nextWID int
}

// watch is a write observer over a physical range. It exists for
// simulation fidelity: systems like HERD and FaRM detect incoming
// RDMA writes by busy-polling host memory, which a discrete-event
// simulation represents as a callback on commit plus CPU charged by
// the poller for the time it would have spun.
type watch struct {
	id    int
	start PAddr
	end   PAddr
	fn    func()
}

// AddWatch registers fn to run whenever a Write overlaps [pa, pa+n).
// It returns an id for RemoveWatch. The callback runs in whatever
// context performed the write (possibly a scheduler callback) and must
// not block.
func (m *Memory) AddWatch(pa PAddr, n int64, fn func()) int {
	m.nextWID++
	m.watches = append(m.watches, watch{id: m.nextWID, start: pa, end: pa + PAddr(n), fn: fn})
	return m.nextWID
}

// RemoveWatch unregisters a watch by id.
func (m *Memory) RemoveWatch(id int) {
	for k, w := range m.watches {
		if w.id == id {
			m.watches = append(m.watches[:k], m.watches[k+1:]...)
			return
		}
	}
}

func (m *Memory) notifyWatches(pa PAddr, n int64) {
	if len(m.watches) == 0 {
		return
	}
	end := pa + PAddr(n)
	for _, w := range m.watches {
		if pa < w.end && w.start < end {
			w.fn()
		}
	}
}

// New returns a physical memory of totalBytes with the given page size.
func New(totalBytes, pageSize int64) *Memory {
	if pageSize <= 0 || totalBytes < pageSize {
		panic("hostmem: invalid geometry")
	}
	return &Memory{
		pageSize:   pageSize,
		totalPages: totalBytes / pageSize,
		free:       []frameRange{{0, totalBytes / pageSize}},
		frames:     make(map[int64][]byte),
		pins:       make(map[int64]int),
	}
}

// PageSize returns the page size in bytes.
func (m *Memory) PageSize() int64 { return m.pageSize }

// TotalBytes returns the physical memory size.
func (m *Memory) TotalBytes() int64 { return m.totalPages * m.pageSize }

// AllocatedBytes returns the bytes currently allocated.
func (m *Memory) AllocatedBytes() int64 { return m.allocated * m.pageSize }

// FreeBytes returns the bytes currently free.
func (m *Memory) FreeBytes() int64 { return (m.totalPages - m.allocated) * m.pageSize }

func (m *Memory) pagesFor(n int64) int64 {
	return (n + m.pageSize - 1) / m.pageSize
}

// AllocContiguous allocates n bytes of physically contiguous memory
// (first fit) and returns its base physical address.
func (m *Memory) AllocContiguous(n int64) (PAddr, error) {
	if n <= 0 {
		return 0, ErrBadSize
	}
	want := m.pagesFor(n)
	for i, r := range m.free {
		if r.n >= want {
			base := r.start
			if r.n == want {
				m.free = append(m.free[:i], m.free[i+1:]...)
			} else {
				m.free[i] = frameRange{r.start + want, r.n - want}
			}
			m.allocated += want
			return PAddr(base * m.pageSize), nil
		}
	}
	if m.totalPages-m.allocated >= want {
		return 0, ErrNoContiguous
	}
	return 0, ErrOutOfMemory
}

// AllocPages allocates n bytes of physical memory that need not be
// contiguous and returns the frame base addresses, one per page.
func (m *Memory) AllocPages(n int64) ([]PAddr, error) {
	if n <= 0 {
		return nil, ErrBadSize
	}
	want := m.pagesFor(n)
	if m.totalPages-m.allocated < want {
		return nil, ErrOutOfMemory
	}
	out := make([]PAddr, 0, want)
	for want > 0 {
		r := m.free[0]
		take := r.n
		if take > want {
			take = want
		}
		for i := int64(0); i < take; i++ {
			out = append(out, PAddr((r.start+i)*m.pageSize))
		}
		if take == r.n {
			m.free = m.free[1:]
		} else {
			m.free[0] = frameRange{r.start + take, r.n - take}
		}
		m.allocated += take
		want -= take
	}
	return out, nil
}

// Free releases n bytes starting at the page-aligned physical address
// pa. Pinned pages cannot be freed.
func (m *Memory) Free(pa PAddr, n int64) error {
	if n <= 0 {
		return ErrBadSize
	}
	start := int64(pa) / m.pageSize
	count := m.pagesFor(n)
	if int64(pa)%m.pageSize != 0 || start+count > m.totalPages {
		return ErrBadAddress
	}
	for f := start; f < start+count; f++ {
		if m.pins[f] > 0 {
			return ErrPinned
		}
		if m.isFree(f) {
			return ErrDoubleFree
		}
	}
	for f := start; f < start+count; f++ {
		delete(m.frames, f)
	}
	m.insertFree(frameRange{start, count})
	m.allocated -= count
	return nil
}

func (m *Memory) isFree(frame int64) bool {
	i := sort.Search(len(m.free), func(i int) bool { return m.free[i].start+m.free[i].n > frame })
	return i < len(m.free) && m.free[i].start <= frame
}

func (m *Memory) insertFree(r frameRange) {
	i := sort.Search(len(m.free), func(i int) bool { return m.free[i].start > r.start })
	m.free = append(m.free, frameRange{})
	copy(m.free[i+1:], m.free[i:])
	m.free[i] = r
	// Coalesce with neighbors.
	if i+1 < len(m.free) && m.free[i].start+m.free[i].n == m.free[i+1].start {
		m.free[i].n += m.free[i+1].n
		m.free = append(m.free[:i+1], m.free[i+2:]...)
	}
	if i > 0 && m.free[i-1].start+m.free[i-1].n == m.free[i].start {
		m.free[i-1].n += m.free[i].n
		m.free = append(m.free[:i], m.free[i+1:]...)
	}
}

// MaxContiguousRun returns the largest allocatable contiguous range in
// bytes; useful for fragmentation diagnostics.
func (m *Memory) MaxContiguousRun() int64 {
	var best int64
	for _, r := range m.free {
		if r.n > best {
			best = r.n
		}
	}
	return best * m.pageSize
}

// Pin increments the pin count of every page in [pa, pa+n).
func (m *Memory) Pin(pa PAddr, n int64) error {
	start, count, err := m.pageSpan(pa, n)
	if err != nil {
		return err
	}
	for f := start; f < start+count; f++ {
		m.pins[f]++
	}
	return nil
}

// Unpin decrements the pin count of every page in [pa, pa+n).
func (m *Memory) Unpin(pa PAddr, n int64) error {
	start, count, err := m.pageSpan(pa, n)
	if err != nil {
		return err
	}
	for f := start; f < start+count; f++ {
		if m.pins[f] == 0 {
			return ErrNotPinned
		}
	}
	for f := start; f < start+count; f++ {
		if m.pins[f]--; m.pins[f] == 0 {
			delete(m.pins, f)
		}
	}
	return nil
}

// Pinned reports whether the page containing pa is pinned.
func (m *Memory) Pinned(pa PAddr) bool {
	return m.pins[int64(pa)/m.pageSize] > 0
}

func (m *Memory) pageSpan(pa PAddr, n int64) (start, count int64, err error) {
	if n <= 0 {
		return 0, 0, ErrBadSize
	}
	start = int64(pa) / m.pageSize
	end := (int64(pa) + n + m.pageSize - 1) / m.pageSize
	if int64(pa) < 0 || end > m.totalPages {
		return 0, 0, ErrBadAddress
	}
	return start, end - start, nil
}

func (m *Memory) frame(f int64) []byte {
	b := m.frames[f]
	if b == nil {
		b = make([]byte, m.pageSize)
		m.frames[f] = b
	}
	return b
}

// Write copies data into physical memory at pa, which may span pages.
func (m *Memory) Write(pa PAddr, data []byte) error {
	if _, _, err := m.pageSpan(pa, int64(len(data))); err != nil {
		if len(data) == 0 {
			return nil
		}
		return err
	}
	total := int64(len(data))
	addr := int64(pa)
	for len(data) > 0 {
		f := addr / m.pageSize
		off := addr % m.pageSize
		n := copy(m.frame(f)[off:], data)
		data = data[n:]
		addr += int64(n)
	}
	m.notifyWatches(pa, total)
	return nil
}

// Read copies len(buf) bytes of physical memory at pa into buf.
func (m *Memory) Read(pa PAddr, buf []byte) error {
	if _, _, err := m.pageSpan(pa, int64(len(buf))); err != nil {
		if len(buf) == 0 {
			return nil
		}
		return err
	}
	addr := int64(pa)
	for len(buf) > 0 {
		f := addr / m.pageSize
		off := addr % m.pageSize
		n := copy(buf, m.frame(f)[off:])
		buf = buf[n:]
		addr += int64(n)
	}
	return nil
}

// AddressSpace is a per-process virtual address space backed by a page
// table into one Memory. Virtual mappings need not be physically
// contiguous.
type AddressSpace struct {
	mem    *Memory
	table  map[int64]int64 // vpage -> frame
	nextVA int64
}

// NewAddressSpace returns an empty address space over mem. Virtual
// addresses start above zero so that 0 can serve as a nil address.
func NewAddressSpace(mem *Memory) *AddressSpace {
	return &AddressSpace{mem: mem, table: make(map[int64]int64), nextVA: mem.pageSize}
}

// Mem returns the underlying physical memory.
func (as *AddressSpace) Mem() *Memory { return as.mem }

// Map allocates n bytes of (possibly discontiguous) physical memory and
// maps it at a fresh virtual range, returning the base virtual address.
func (as *AddressSpace) Map(n int64) (VAddr, error) {
	if n <= 0 {
		return 0, ErrBadSize
	}
	frames, err := as.mem.AllocPages(n)
	if err != nil {
		return 0, err
	}
	base := as.nextVA
	for i, pa := range frames {
		as.table[(base+int64(i)*as.mem.pageSize)/as.mem.pageSize] = int64(pa) / as.mem.pageSize
	}
	as.nextVA = base + int64(len(frames))*as.mem.pageSize
	return VAddr(base), nil
}

// Unmap releases the mapping and physical memory of [va, va+n).
func (as *AddressSpace) Unmap(va VAddr, n int64) error {
	if n <= 0 {
		return ErrBadSize
	}
	pages := as.mem.pagesFor(n)
	vp := int64(va) / as.mem.pageSize
	for i := int64(0); i < pages; i++ {
		f, ok := as.table[vp+i]
		if !ok {
			return ErrBadAddress
		}
		if err := as.mem.Free(PAddr(f*as.mem.pageSize), as.mem.pageSize); err != nil {
			return err
		}
		delete(as.table, vp+i)
	}
	return nil
}

// Translate returns the physical address backing va. The translation
// is only valid to the end of va's page.
func (as *AddressSpace) Translate(va VAddr) (PAddr, error) {
	f, ok := as.table[int64(va)/as.mem.pageSize]
	if !ok {
		return 0, ErrBadAddress
	}
	return PAddr(f*as.mem.pageSize + int64(va)%as.mem.pageSize), nil
}

// Mapped reports whether va's page is mapped.
func (as *AddressSpace) Mapped(va VAddr) bool {
	_, ok := as.table[int64(va)/as.mem.pageSize]
	return ok
}

// WriteV copies data into the address space at va, page by page.
func (as *AddressSpace) WriteV(va VAddr, data []byte) error {
	for len(data) > 0 {
		pa, err := as.Translate(va)
		if err != nil {
			return err
		}
		room := as.mem.pageSize - int64(va)%as.mem.pageSize
		n := int64(len(data))
		if n > room {
			n = room
		}
		if err := as.mem.Write(pa, data[:n]); err != nil {
			return err
		}
		data = data[n:]
		va += VAddr(n)
	}
	return nil
}

// ReadV copies len(buf) bytes from the address space at va into buf.
func (as *AddressSpace) ReadV(va VAddr, buf []byte) error {
	for len(buf) > 0 {
		pa, err := as.Translate(va)
		if err != nil {
			return err
		}
		room := as.mem.pageSize - int64(va)%as.mem.pageSize
		n := int64(len(buf))
		if n > room {
			n = room
		}
		if err := as.mem.Read(pa, buf[:n]); err != nil {
			return err
		}
		buf = buf[n:]
		va += VAddr(n)
	}
	return nil
}

// String summarizes allocation state for diagnostics.
func (m *Memory) String() string {
	return fmt.Sprintf("hostmem{%d/%d pages allocated, %d free ranges, max run %d B}",
		m.allocated, m.totalPages, len(m.free), m.MaxContiguousRun())
}
