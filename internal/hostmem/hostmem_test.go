package hostmem

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func newMem() *Memory { return New(1<<20, 4096) } // 256 pages

func TestAllocContiguousAndFree(t *testing.T) {
	m := newMem()
	pa, err := m.AllocContiguous(10000)
	if err != nil {
		t.Fatal(err)
	}
	if int64(pa)%4096 != 0 {
		t.Fatalf("pa = %d not page aligned", pa)
	}
	if m.AllocatedBytes() != 3*4096 {
		t.Fatalf("allocated = %d, want 3 pages", m.AllocatedBytes())
	}
	if err := m.Free(pa, 10000); err != nil {
		t.Fatal(err)
	}
	if m.AllocatedBytes() != 0 {
		t.Fatalf("allocated = %d after free, want 0", m.AllocatedBytes())
	}
}

func TestAllocBadSize(t *testing.T) {
	m := newMem()
	if _, err := m.AllocContiguous(0); !errors.Is(err, ErrBadSize) {
		t.Fatalf("err = %v, want ErrBadSize", err)
	}
	if _, err := m.AllocPages(-5); !errors.Is(err, ErrBadSize) {
		t.Fatalf("err = %v, want ErrBadSize", err)
	}
}

func TestOutOfMemory(t *testing.T) {
	m := newMem()
	if _, err := m.AllocContiguous(2 << 20); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestFragmentationForcesNoContiguous(t *testing.T) {
	m := New(16*4096, 4096)
	var held []PAddr
	for i := 0; i < 8; i++ {
		a, err := m.AllocContiguous(2 * 4096)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, a)
	}
	// Free every other block: 8 free pages but max run is 2 pages.
	for i := 0; i < 8; i += 2 {
		if err := m.Free(held[i], 2*4096); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.AllocContiguous(4 * 4096); !errors.Is(err, ErrNoContiguous) {
		t.Fatalf("err = %v, want ErrNoContiguous", err)
	}
	if got := m.MaxContiguousRun(); got != 2*4096 {
		t.Fatalf("max run = %d, want 2 pages", got)
	}
	// Non-contiguous allocation still succeeds.
	if _, err := m.AllocPages(4 * 4096); err != nil {
		t.Fatal(err)
	}
}

func TestFreeCoalescing(t *testing.T) {
	m := New(8*4096, 4096)
	a, _ := m.AllocContiguous(8 * 4096)
	// Free middle, then left, then right; should coalesce back to one run.
	if err := m.Free(a+2*4096, 2*4096); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(a, 2*4096); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(a+4*4096, 4*4096); err != nil {
		t.Fatal(err)
	}
	if got := m.MaxContiguousRun(); got != 8*4096 {
		t.Fatalf("max run = %d, want full memory", got)
	}
}

func TestDoubleFree(t *testing.T) {
	m := newMem()
	a, _ := m.AllocContiguous(4096)
	if err := m.Free(a, 4096); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(a, 4096); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("err = %v, want ErrDoubleFree", err)
	}
}

func TestPinBlocksFree(t *testing.T) {
	m := newMem()
	a, _ := m.AllocContiguous(2 * 4096)
	if err := m.Pin(a, 2*4096); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(a, 2*4096); !errors.Is(err, ErrPinned) {
		t.Fatalf("err = %v, want ErrPinned", err)
	}
	if err := m.Unpin(a, 2*4096); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(a, 2*4096); err != nil {
		t.Fatal(err)
	}
}

func TestPinCounts(t *testing.T) {
	m := newMem()
	a, _ := m.AllocContiguous(4096)
	m.Pin(a, 4096)
	m.Pin(a, 4096)
	m.Unpin(a, 4096)
	if !m.Pinned(a) {
		t.Fatal("page unpinned after one of two unpins")
	}
	m.Unpin(a, 4096)
	if m.Pinned(a) {
		t.Fatal("page still pinned")
	}
	if err := m.Unpin(a, 4096); !errors.Is(err, ErrNotPinned) {
		t.Fatalf("err = %v, want ErrNotPinned", err)
	}
}

func TestReadWriteAcrossPages(t *testing.T) {
	m := newMem()
	a, _ := m.AllocContiguous(3 * 4096)
	data := make([]byte, 9000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := m.Write(a+100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 9000)
	if err := m.Read(a+100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read back != written")
	}
}

func TestReadWriteBounds(t *testing.T) {
	m := newMem()
	buf := make([]byte, 10)
	if err := m.Read(PAddr(m.TotalBytes()), buf); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("err = %v, want ErrBadAddress", err)
	}
	if err := m.Write(PAddr(-1), buf); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("err = %v, want ErrBadAddress", err)
	}
	// Zero-length accesses are no-ops even at odd addresses.
	if err := m.Read(0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddressSpaceMapTranslate(t *testing.T) {
	m := newMem()
	as := NewAddressSpace(m)
	va, err := as.Map(3 * 4096)
	if err != nil {
		t.Fatal(err)
	}
	if va == 0 {
		t.Fatal("va 0 should be reserved")
	}
	pa, err := as.Translate(va + 5000)
	if err != nil {
		t.Fatal(err)
	}
	if int64(pa)%4096 != 5000%4096 {
		t.Fatalf("translation lost page offset: %d", pa)
	}
	if as.Mapped(va + 100*4096) {
		t.Fatal("unmapped page reported mapped")
	}
}

func TestAddressSpaceRWRoundTrip(t *testing.T) {
	m := newMem()
	as := NewAddressSpace(m)
	va, _ := as.Map(5 * 4096)
	data := make([]byte, 18000)
	rand.New(rand.NewSource(1)).Read(data)
	if err := as.WriteV(va+123, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := as.ReadV(va+123, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("virtual round trip mismatch")
	}
}

func TestAddressSpaceUnmapFreesPhysical(t *testing.T) {
	m := newMem()
	as := NewAddressSpace(m)
	va, _ := as.Map(4 * 4096)
	before := m.AllocatedBytes()
	if err := as.Unmap(va, 4*4096); err != nil {
		t.Fatal(err)
	}
	if m.AllocatedBytes() != before-4*4096 {
		t.Fatalf("allocated = %d, want %d", m.AllocatedBytes(), before-4*4096)
	}
	if _, err := as.Translate(va); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("err = %v, want ErrBadAddress after unmap", err)
	}
}

// Property: any sequence of allocs and frees conserves pages, and
// allocated ranges never overlap.
func TestQuickAllocFreeInvariants(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		m := New(64*4096, 4096)
		rng := rand.New(rand.NewSource(seed))
		type alloc struct {
			pa PAddr
			n  int64
		}
		var live []alloc
		owned := make(map[int64]bool)
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				n := int64(op%8+1) * 512 // up to 1 page
				pa, err := m.AllocContiguous(n)
				if err != nil {
					continue
				}
				pages := (n + 4095) / 4096
				for i := int64(0); i < pages; i++ {
					f := int64(pa)/4096 + i
					if owned[f] {
						t.Logf("frame %d double-allocated", f)
						return false
					}
					owned[f] = true
				}
				live = append(live, alloc{pa, n})
			} else {
				i := rng.Intn(len(live))
				a := live[i]
				if err := m.Free(a.pa, a.n); err != nil {
					t.Logf("free failed: %v", err)
					return false
				}
				pages := (a.n + 4095) / 4096
				for j := int64(0); j < pages; j++ {
					delete(owned, int64(a.pa)/4096+j)
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		// Conservation: allocated == sum of live pages.
		var want int64
		for _, a := range live {
			want += (a.n + 4095) / 4096 * 4096
		}
		return m.AllocatedBytes() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: data written at any offset reads back identically.
func TestQuickRWRoundTrip(t *testing.T) {
	m := New(64*4096, 4096)
	base, _ := m.AllocContiguous(32 * 4096)
	f := func(off uint16, data []byte) bool {
		o := int64(off) % (16 * 4096)
		if len(data) > 8*4096 {
			data = data[:8*4096]
		}
		if err := m.Write(base+PAddr(o), data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := m.Read(base+PAddr(o), got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
