package obs

import (
	"reflect"
	"testing"
	"time"
)

func TestNilReceiversAreNoops(t *testing.T) {
	// The disabled state IS a nil registry: every call chain must be
	// safe and side-effect free.
	var r *Registry
	r.Add("x", 3)
	r.Counter("x").Inc()
	r.Observe("h", time.Microsecond)
	r.Histogram("h").Record(1)
	r.EnableTracing()
	if r.Tracing() || r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	s := r.StartSpan(0, "root", nil)
	if s != nil {
		t.Fatal("nil registry produced a span")
	}
	s.Done(5)
	r.AddSpan(0, 1, "x", nil)
	if got := r.Snapshot(); len(got.Counters) != 0 || len(got.Hists) != 0 {
		t.Fatalf("nil snapshot = %+v", got)
	}
	var d *Domain
	d.EnableTracing()
	if d.Node(0) != nil || d.Global() != nil || d.Total("x") != 0 {
		t.Fatal("nil domain not inert")
	}
	d.ResetSpans()
	if len(d.Spans()) != 0 {
		t.Fatal("nil domain has spans")
	}
}

func TestCountersAndSnapshots(t *testing.T) {
	r := NewRegistry(3)
	r.Add("a", 2)
	r.Add("a", 3)
	r.Counter("b").Inc()
	if v := r.Counter("a").Value(); v != 5 {
		t.Fatalf("a = %d", v)
	}
	if r.Node() != 3 {
		t.Fatalf("node = %d", r.Node())
	}
	snap := r.Snapshot()
	r.Add("a", 100)
	if snap.Counters["a"] != 5 || snap.Counters["b"] != 1 {
		t.Fatalf("snapshot not a copy: %+v", snap.Counters)
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, d := range []Time{100, 200, 300, 400, 1000} {
		h.Record(d)
	}
	if h.Count() != 5 || h.Sum() != 2000 || h.Min() != 100 || h.Max() != 1000 {
		t.Fatalf("stats = n%d sum%d min%d max%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if h.Mean() != 400 {
		t.Fatalf("mean = %d", h.Mean())
	}
	if q := h.Quantile(0); q != 100 {
		t.Fatalf("q0 = %d", q)
	}
	if q := h.Quantile(1); q != 1000 {
		t.Fatalf("q1 = %d", q)
	}
	// Quantiles must be monotone and clamped to [min, max].
	prev := Time(0)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev || v < h.Min() || v > h.Max() {
			t.Fatalf("quantile(%f) = %d not monotone in [min,max]", q, v)
		}
		prev = v
	}
	// Negative observations clamp to zero instead of corrupting state.
	h.Record(-5)
	if h.Min() != 0 || h.Count() != 6 {
		t.Fatalf("negative record: min %d count %d", h.Min(), h.Count())
	}
}

func TestHistogramMergeEqualsCombinedStream(t *testing.T) {
	// Merging two histograms must equal recording both streams into
	// one: identical counts, sums, extremes, buckets, and quantiles.
	streamA := []Time{1, 7, 130, 4096, 90000}
	streamB := []Time{3, 130, 255, 70000, 1 << 20}
	var ha, hb, all Histogram
	for _, d := range streamA {
		ha.Record(d)
		all.Record(d)
	}
	for _, d := range streamB {
		hb.Record(d)
		all.Record(d)
	}
	merged := ha.Clone()
	merged.Merge(&hb)
	if merged.Count() != all.Count() || merged.Sum() != all.Sum() ||
		merged.Min() != all.Min() || merged.Max() != all.Max() {
		t.Fatalf("merge stats differ: %+v vs %+v", merged, all)
	}
	if merged.buckets != all.buckets {
		t.Fatal("merge buckets differ from combined stream")
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if merged.Quantile(q) != all.Quantile(q) {
			t.Fatalf("q%.2f: merged %d vs combined %d", q, merged.Quantile(q), all.Quantile(q))
		}
	}
	// Merging into empty and merging empty are both exact.
	empty := &Histogram{}
	c := all.Clone()
	c.Merge(empty)
	empty.Merge(&all)
	if c.Count() != all.Count() || empty.Count() != all.Count() || empty.Min() != all.Min() {
		t.Fatal("empty merge not exact")
	}
}

func TestBucketBounds(t *testing.T) {
	// Bucket i must hold exactly (2^(i-1), 2^i].
	for _, d := range []Time{1, 2, 3, 4, 5, 8, 9, 1023, 1024, 1025} {
		b := bucketOf(d)
		if d > bucketUpper(b) {
			t.Fatalf("d=%d above bucket %d upper %d", d, b, bucketUpper(b))
		}
		if b > 0 && d <= bucketUpper(b-1) {
			t.Fatalf("d=%d should be in bucket %d or lower", d, b-1)
		}
	}
}

func TestSpanTreeAndHelpers(t *testing.T) {
	d := NewDomain(2)
	d.EnableTracing()
	r0, r1 := d.Node(0), d.Node(1)
	root := r0.StartSpan(0, "rpc", nil)
	a := r0.StartSpan(10, "post", root)
	a.Done(20)
	b := r1.StartSpan(20, "server", root)
	c := r1.StartSpan(25, "check", b)
	c.Done(30)
	b.Done(40)
	open := r0.StartSpan(50, "never-closed", root)
	_ = open
	root.Done(100)

	spans := d.Spans()
	if len(spans) != 4 {
		t.Fatalf("closed spans = %d (open span must be excluded)", len(spans))
	}
	// Sorted by start; ids are globally unique across nodes.
	seen := map[uint64]bool{}
	for i, v := range spans {
		if i > 0 && spans[i-1].Start > v.Start {
			t.Fatal("spans not start-ordered")
		}
		if seen[v.ID] {
			t.Fatalf("duplicate span id %d", v.ID)
		}
		seen[v.ID] = true
	}
	roots := Roots(spans)
	if len(roots) != 1 || roots[0].Name != "rpc" {
		t.Fatalf("roots = %+v", roots)
	}
	desc := Descendants(spans, roots[0].ID)
	if len(desc) != 3 {
		t.Fatalf("descendants = %d", len(desc))
	}
	sums := SumByName(spans)
	if sums["rpc"] != 100 || sums["post"] != 10 || sums["server"] != 20 || sums["check"] != 5 {
		t.Fatalf("sums = %+v", sums)
	}
	counts := CountByName(spans)
	if counts["rpc"] != 1 || counts["check"] != 1 {
		t.Fatalf("counts = %+v", counts)
	}
	// Double-close keeps the first end.
	c.Done(9999)
	if SumByName(d.Spans())["check"] != 5 {
		t.Fatal("double Done changed the span")
	}
	d.ResetSpans()
	if len(d.Spans()) != 0 {
		t.Fatal("ResetSpans left spans behind")
	}
}

func TestDomainTotalsAndMerge(t *testing.T) {
	d := NewDomain(3)
	d.Node(0).Add("rpc.calls", 2)
	d.Node(2).Add("rpc.calls", 3)
	d.Global().Add("crashes", 1)
	if d.Total("rpc.calls") != 5 || d.Total("crashes") != 1 {
		t.Fatalf("totals = %d/%d", d.Total("rpc.calls"), d.Total("crashes"))
	}
	d.Node(0).Observe("lat", 100)
	d.Node(1).Observe("lat", 300)
	snap := d.Snapshot()
	if snap.Counters["rpc.calls"] != 5 || snap.Counters["crashes"] != 1 {
		t.Fatalf("snapshot counters = %+v", snap.Counters)
	}
	h := snap.Hists["lat"]
	if h.Count() != 2 || h.Min() != 100 || h.Max() != 300 {
		t.Fatalf("merged hist = %+v", h)
	}
	if names := snap.CounterNames(); !reflect.DeepEqual(names, []string{"crashes", "rpc.calls"}) {
		t.Fatalf("counter names = %v", names)
	}
	if names := snap.HistNames(); !reflect.DeepEqual(names, []string{"lat"}) {
		t.Fatalf("hist names = %v", names)
	}
}

func TestTracingDisabledRecordsNothing(t *testing.T) {
	d := NewDomain(1)
	r := d.Node(0)
	if s := r.StartSpan(0, "x", nil); s != nil {
		t.Fatal("span recorded with tracing off")
	}
	// Enabling through any registry enables the whole domain.
	r.EnableTracing()
	if !d.Global().Tracing() {
		t.Fatal("tracing flag not shared across the domain")
	}
	if s := d.Global().StartSpan(0, "x", nil); s == nil {
		t.Fatal("no span after enable")
	}
}

// BenchmarkDisabled verifies the zero-cost-when-disabled claim: the
// nil fast path must not allocate.
func BenchmarkDisabled(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add("counter", 1)
		r.Observe("hist", 100)
		s := r.StartSpan(0, "span", nil)
		s.Done(1)
	}
}

// BenchmarkEnabledCounter is the reference point for the disabled
// benchmark: the enabled hot path (existing counter) for comparison.
func BenchmarkEnabledCounter(b *testing.B) {
	r := NewRegistry(0)
	r.Add("counter", 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add("counter", 1)
	}
}
