package obs

// Histogram is a latency histogram over virtual-time durations with
// logarithmic (power-of-two) buckets. Bucket i counts observations d
// with 2^(i-1) < d <= 2^i nanoseconds (bucket 0 holds d <= 1ns).
// Because every histogram uses the same fixed bucket layout, merging
// histograms from different nodes is exact bucket-wise addition, and
// quantiles of a merged histogram equal quantiles of the combined
// stream up to bucket resolution.
type Histogram struct {
	name    string
	count   int64
	sum     Time
	min     Time
	max     Time
	buckets [nBuckets]int64
}

// nBuckets covers durations up to 2^62 ns (~146 years of virtual
// time), far beyond any simulated experiment.
const nBuckets = 63

// bucketOf returns the bucket index for duration d.
func bucketOf(d Time) int {
	if d <= 1 {
		return 0
	}
	n := uint64(d - 1)
	b := 0
	for n > 0 {
		n >>= 1
		b++
	}
	return b
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) Time {
	return Time(int64(1) << uint(i))
}

// Record adds one observation. Safe on a nil receiver. Negative
// durations are clamped to zero (they can only arise from caller
// bugs; dropping them silently would hide those).
func (h *Histogram) Record(d Time) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[bucketOf(d)]++
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() Time {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min and Max return the exact extremes (not bucket bounds).
func (h *Histogram) Min() Time {
	if h == nil {
		return 0
	}
	return h.min
}

func (h *Histogram) Max() Time {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean returns the exact arithmetic mean, zero when empty.
func (h *Histogram) Mean() Time {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / Time(h.count)
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) by
// linear interpolation within the containing bucket, clamped to the
// observed [min, max]. Zero when empty.
func (h *Histogram) Quantile(q float64) Time {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank in [1, count]: the observation index the quantile lands on.
	rank := int64(q*float64(h.count-1)) + 1
	// The extremes are tracked exactly; don't approximate them from
	// bucket bounds.
	if rank <= 1 {
		return h.min
	}
	if rank >= h.count {
		return h.max
	}
	var cum int64
	for i := 0; i < nBuckets; i++ {
		n := h.buckets[i]
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo := Time(0)
			if i > 0 {
				lo = bucketUpper(i - 1)
			}
			hi := bucketUpper(i)
			// Interpolate position of rank within this bucket.
			frac := float64(rank-cum) / float64(n)
			est := lo + Time(float64(hi-lo)*frac)
			if est < h.min {
				est = h.min
			}
			if est > h.max {
				est = h.max
			}
			return est
		}
		cum += n
	}
	return h.max
}

// Merge adds other's observations into h bucket-wise. Safe when
// either side is nil or empty.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil || other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
}

// Clone returns a deep copy (nil in, nil out).
func (h *Histogram) Clone() *Histogram {
	if h == nil {
		return nil
	}
	c := *h
	return &c
}
