// Package obs is the observability subsystem: virtual-time-aware
// tracing and metrics that every simulated layer reports into.
//
// A Registry holds one node's typed counters and latency histograms
// (virtual-time buckets, mergeable across nodes) plus lightweight
// spans opened and closed in virtual time with parent links. A Domain
// groups the per-node registries of one cluster, hands out globally
// unique span ids, and merges everything into one Snapshot.
//
// The design is zero-cost when disabled: every method is safe on a
// nil *Registry, nil *Domain, and nil *Span, and does nothing there —
// call sites never branch. Crucially, nothing in this package ever
// advances virtual time or wakes a process, so enabling observability
// cannot perturb the cost model: a traced run and an untraced run of
// the same workload produce identical virtual timelines (the bench
// harness and obs tests enforce this).
//
// Like the rest of the simulation state, a Registry relies on the
// simtime scheduler's one-process-at-a-time guarantee instead of
// locks; do not share one Registry across simulation environments.
package obs

import (
	"sort"
	"time"
)

// Time is a virtual timestamp or duration (simtime.Time has the same
// underlying type; obs avoids the import so lower layers stay free to
// depend on it in either direction).
type Time = time.Duration

// Counter is a monotonically updated typed counter.
type Counter struct {
	name string
	v    int64
}

// Add increments the counter. Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Inc adds one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Name returns the counter's registered name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// idGen hands out span ids; one is shared by all registries of a
// Domain so span ids are unique across nodes.
type idGen struct{ next uint64 }

func (g *idGen) id() uint64 {
	g.next++
	return g.next
}

// Registry is one node's metric and span sink. The zero value is not
// usable; construct with NewRegistry or through a Domain. All methods
// are safe (and free) on a nil receiver — a nil *Registry IS the
// disabled state.
type Registry struct {
	node int
	ids  *idGen

	counters map[string]*Counter
	corder   []string
	hists    map[string]*Histogram
	horder   []string

	tracing *bool // shared across a Domain's registries
	spans   []*Span
}

// NewRegistry returns a standalone registry for the given node id
// (cluster layers use a Domain instead; standalone registries serve
// unit tests and single-component setups).
func NewRegistry(node int) *Registry {
	tracing := false
	return &Registry{
		node:     node,
		ids:      &idGen{},
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		tracing:  &tracing,
	}
}

// Node returns the node id this registry reports for.
func (r *Registry) Node() int {
	if r == nil {
		return -1
	}
	return r.node
}

// Enabled reports whether metrics are being collected (false exactly
// when the receiver is nil).
func (r *Registry) Enabled() bool { return r != nil }

// Counter returns (creating on first use) the named counter; nil on a
// nil registry, so chained Counter(...).Add(...) is always safe.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	r.corder = append(r.corder, name)
	return c
}

// Add is shorthand for Counter(name).Add(n).
func (r *Registry) Add(name string, n int64) {
	if r != nil {
		r.Counter(name).Add(n)
	}
}

// Histogram returns (creating on first use) the named latency
// histogram; nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{name: name}
	r.hists[name] = h
	r.horder = append(r.horder, name)
	return h
}

// Observe is shorthand for Histogram(name).Record(d).
func (r *Registry) Observe(name string, d Time) {
	if r != nil {
		r.Histogram(name).Record(d)
	}
}

// EnableTracing turns span collection on for this registry (and, when
// the registry belongs to a Domain, for all its siblings: the flag is
// shared so a trace never has holes on some nodes).
func (r *Registry) EnableTracing() {
	if r != nil {
		*r.tracing = true
	}
}

// Tracing reports whether spans are being collected.
func (r *Registry) Tracing() bool { return r != nil && *r.tracing }

// Snapshot returns a deep copy of the registry's metric state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]int64{}, Hists: map[string]*Histogram{}}
	if r == nil {
		return s
	}
	for _, name := range r.corder {
		s.Counters[name] = r.counters[name].v
	}
	for _, name := range r.horder {
		s.Hists[name] = r.hists[name].Clone()
	}
	return s
}

// Domain groups the registries of one cluster: one per node plus one
// global registry for cluster-scoped events (crashes, restarts). All
// methods are safe on a nil receiver.
type Domain struct {
	ids     idGen
	tracing bool
	nodes   []*Registry
	global  *Registry
}

// NewDomain returns a domain with n per-node registries. The global
// registry reports as node -1.
func NewDomain(n int) *Domain {
	d := &Domain{}
	mk := func(node int) *Registry {
		return &Registry{
			node:     node,
			ids:      &d.ids,
			counters: make(map[string]*Counter),
			hists:    make(map[string]*Histogram),
			tracing:  &d.tracing,
		}
	}
	for i := 0; i < n; i++ {
		d.nodes = append(d.nodes, mk(i))
	}
	d.global = mk(-1)
	return d
}

// Node returns the registry of the given node; nil on a nil domain or
// out-of-range node.
func (d *Domain) Node(i int) *Registry {
	if d == nil || i < 0 || i >= len(d.nodes) {
		return nil
	}
	return d.nodes[i]
}

// Global returns the cluster-scoped registry.
func (d *Domain) Global() *Registry {
	if d == nil {
		return nil
	}
	return d.global
}

// Registries returns every registry (nodes in order, then global).
func (d *Domain) Registries() []*Registry {
	if d == nil {
		return nil
	}
	return append(append([]*Registry(nil), d.nodes...), d.global)
}

// EnableTracing turns span collection on for every registry.
func (d *Domain) EnableTracing() {
	if d != nil {
		d.tracing = true
	}
}

// Total sums the named counter across all registries.
func (d *Domain) Total(name string) int64 {
	var t int64
	for _, r := range d.Registries() {
		if c, ok := r.counters[name]; ok {
			t += c.v
		}
	}
	return t
}

// Snapshot merges all registries' metrics into one Snapshot: counters
// sum, histograms merge bucket-wise (so percentiles stay exact).
func (d *Domain) Snapshot() Snapshot {
	if d == nil {
		return Snapshot{Counters: map[string]int64{}, Hists: map[string]*Histogram{}}
	}
	snaps := make([]Snapshot, 0, len(d.nodes)+1)
	for _, r := range d.Registries() {
		snaps = append(snaps, r.Snapshot())
	}
	return Merge(snaps...)
}

// Spans returns every closed span across the domain, ordered by
// (start time, id) so output is deterministic.
func (d *Domain) Spans() []SpanView {
	var out []SpanView
	for _, r := range d.Registries() {
		for _, s := range r.spans {
			if !s.open {
				out = append(out, s.view())
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// ResetSpans discards collected spans (typically after warmup, so a
// trace covers exactly the measured window).
func (d *Domain) ResetSpans() {
	if d == nil {
		return
	}
	for _, r := range d.Registries() {
		r.spans = nil
	}
}
