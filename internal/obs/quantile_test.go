package obs

import "testing"

// TestQuantileBucketBoundaries records observations sitting exactly on
// the power-of-two bucket boundaries — the worst case for a log2
// histogram, where an off-by-one in bucketOf or the interpolation puts
// a value in the neighbouring bucket and quantiles drift a full bucket
// width.
func TestQuantileBucketBoundaries(t *testing.T) {
	h := &Histogram{}
	for d := Time(2); d <= 1024; d *= 2 {
		h.Record(d)
	}
	if q := h.Quantile(0); q != 2 {
		t.Fatalf("q=0: got %v, want min 2", q)
	}
	if q := h.Quantile(1); q != 1024 {
		t.Fatalf("q=1: got %v, want max 1024", q)
	}
	// Each boundary value is alone in its bucket, so every quantile
	// estimate must land on one of the recorded boundaries (the
	// interpolated position inside a bucket is clamped by its single
	// occupant's bounds only up to bucket resolution — but it must
	// never leave the observed [min, max] or break monotonicity).
	prev := Time(0)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < 2 || v > 1024 {
			t.Fatalf("q=%.2f: %v outside observed [2, 1024]", q, v)
		}
		if v < prev {
			t.Fatalf("q=%.2f: quantile %v < previous %v (non-monotone)", q, v, prev)
		}
		prev = v
	}
}

// TestQuantileSingleAndUniform pins the degenerate shapes: one
// observation, and many copies of the same observation. Every quantile
// must return exactly that value — bucket interpolation must not
// manufacture values that were never observed.
func TestQuantileSingleAndUniform(t *testing.T) {
	one := &Histogram{}
	one.Record(777)
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 0.999, 1} {
		if v := one.Quantile(q); v != 777 {
			t.Fatalf("single obs, q=%v: got %v, want 777", q, v)
		}
	}

	uni := &Histogram{}
	for k := 0; k < 1000; k++ {
		uni.Record(4096) // exact bucket upper bound
	}
	for _, q := range []float64{0, 0.5, 0.999, 1} {
		if v := uni.Quantile(q); v != 4096 {
			t.Fatalf("uniform, q=%v: got %v, want 4096", q, v)
		}
	}
}

// TestQuantileClampedOutOfRange pins the contract for callers passing
// silly probabilities: below 0 clamps to the min, above 1 to the max,
// and an empty histogram reports zero everywhere.
func TestQuantileClampedOutOfRange(t *testing.T) {
	h := &Histogram{}
	h.Record(10)
	h.Record(1000)
	if v := h.Quantile(-0.5); v != 10 {
		t.Fatalf("q=-0.5: got %v, want min 10", v)
	}
	if v := h.Quantile(2.5); v != 1000 {
		t.Fatalf("q=2.5: got %v, want max 1000", v)
	}
	var empty Histogram
	if v := empty.Quantile(0.99); v != 0 {
		t.Fatalf("empty: got %v, want 0", v)
	}
	var nilH *Histogram
	if v := nilH.Quantile(0.99); v != 0 {
		t.Fatalf("nil: got %v, want 0", v)
	}
}
