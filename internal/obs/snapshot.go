package obs

import "sort"

// Snapshot is a point-in-time copy of metric state: counter values by
// name and cloned histograms by name. Snapshots from different
// registries (or clusters) merge losslessly.
type Snapshot struct {
	Counters map[string]int64
	Hists    map[string]*Histogram
}

// Merge combines snapshots: counters add, histograms merge
// bucket-wise.
func Merge(snaps ...Snapshot) Snapshot {
	out := Snapshot{Counters: map[string]int64{}, Hists: map[string]*Histogram{}}
	for _, s := range snaps {
		for name, v := range s.Counters {
			out.Counters[name] += v
		}
		for name, h := range s.Hists {
			if dst, ok := out.Hists[name]; ok {
				dst.Merge(h)
			} else {
				out.Hists[name] = h.Clone()
			}
		}
	}
	return out
}

// CounterNames returns the snapshot's counter names, sorted.
func (s Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// HistNames returns the snapshot's histogram names, sorted.
func (s Snapshot) HistNames() []string {
	names := make([]string, 0, len(s.Hists))
	for name := range s.Hists {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
