package obs

// Span is one timed region of a virtual-time trace. Spans form trees
// through parent links: a root span (parent 0) is opened at the API
// boundary (e.g. one LT_RPC call) and every layer underneath — host
// OS crossings, NIC pipeline stages, fabric occupancy, ring polling —
// hangs its own spans off it, so the end-to-end latency decomposes
// into labelled intervals without any hand-rolled timers.
//
// All methods are safe on a nil receiver; StartSpan returns nil
// whenever tracing is off, so call sites never branch.
type Span struct {
	reg    *Registry
	id     uint64
	parent uint64
	name   string
	node   int
	start  Time
	end    Time
	open   bool
}

// StartSpan opens a span at virtual time `at` under the given parent
// (nil parent makes a root). Returns nil — and records nothing — when
// the registry is nil or tracing is disabled.
func (r *Registry) StartSpan(at Time, name string, parent *Span) *Span {
	if r == nil || !*r.tracing {
		return nil
	}
	s := &Span{
		reg:   r,
		id:    r.ids.id(),
		name:  name,
		node:  r.node,
		start: at,
		open:  true,
	}
	if parent != nil {
		s.parent = parent.id
	}
	r.spans = append(r.spans, s)
	return s
}

// AddSpan records an already-finished interval [start, end] in one
// call — the common case for event-driven layers (the NIC model
// computes its whole pipeline timeline up front, so there is no
// open/close pair to straddle).
func (r *Registry) AddSpan(start, end Time, name string, parent *Span) *Span {
	s := r.StartSpan(start, name, parent)
	s.Done(end)
	return s
}

// Done closes the span at virtual time `at`. Safe on a nil receiver;
// closing twice keeps the first end.
func (s *Span) Done(at Time) {
	if s == nil || !s.open {
		return
	}
	s.end = at
	s.open = false
}

// ID returns the span's globally unique id (0 for nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SpanView is the immutable, exported form of a closed span.
type SpanView struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	Node   int    `json:"node"`
	Start  Time   `json:"start_ns"`
	End    Time   `json:"end_ns"`
}

// Dur returns the span's duration.
func (v SpanView) Dur() Time { return v.End - v.Start }

func (s *Span) view() SpanView {
	return SpanView{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Node:   s.node,
		Start:  s.start,
		End:    s.end,
	}
}

// SumByName returns, for each span name, the total duration across
// the given spans. The usual way to turn a trace into a breakdown
// table.
func SumByName(spans []SpanView) map[string]Time {
	out := make(map[string]Time)
	for _, v := range spans {
		out[v.Name] += v.Dur()
	}
	return out
}

// CountByName returns, for each span name, how many spans carry it.
func CountByName(spans []SpanView) map[string]int {
	out := make(map[string]int)
	for _, v := range spans {
		out[v.Name]++
	}
	return out
}

// Descendants returns the spans (from the given set) in the subtree
// rooted at id, excluding the root itself.
func Descendants(spans []SpanView, id uint64) []SpanView {
	children := make(map[uint64][]SpanView)
	for _, v := range spans {
		children[v.Parent] = append(children[v.Parent], v)
	}
	var out []SpanView
	var walk func(uint64)
	walk = func(p uint64) {
		for _, c := range children[p] {
			out = append(out, c)
			walk(c.ID)
		}
	}
	walk(id)
	return out
}

// Roots returns the spans whose parent is absent from the set (true
// roots, plus orphans whose parent was reset away).
func Roots(spans []SpanView) []SpanView {
	present := make(map[uint64]bool, len(spans))
	for _, v := range spans {
		present[v.ID] = true
	}
	var out []SpanView
	for _, v := range spans {
		if v.Parent == 0 || !present[v.Parent] {
			out = append(out, v)
		}
	}
	return out
}
