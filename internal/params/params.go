// Package params is the single source of truth for the simulation cost
// model. Every simulated component (fabric, RNIC, host OS, TCP stack,
// memory system) reads its constants from a Config so that all stacks
// share one calibration.
//
// The default values were calibrated once against the absolute scale of
// the paper's microbenchmarks (Figures 4-8 of Tsai & Zhang, SOSP'17:
// 40 Gbps ConnectX-3 InfiniBand, Xeon E5-2620 hosts); every other
// experiment in the repository is emergent from these constants.
package params

import "time"

// Config holds every cost-model constant. Zero values are invalid; use
// Default and modify fields as needed.
type Config struct {
	// ---- Fabric ----

	// LinkBandwidth is the per-direction link goodput in bytes/second
	// (40 Gbps signaling => ~4.2 GB/s of payload goodput).
	LinkBandwidth float64
	// PropagationDelay is the one-way cable+PHY propagation latency.
	PropagationDelay time.Duration
	// SwitchDelay is the per-hop switching latency.
	SwitchDelay time.Duration
	// ClosLeafNodes is the number of host ports per leaf switch in the
	// two-tier Clos topology. Zero (the default) keeps the original
	// single non-blocking switch — the degenerate config every
	// paper-sized experiment uses. Nodes map to leaves in contiguous
	// blocks: leaf = node / ClosLeafNodes.
	ClosLeafNodes int
	// ClosSpines is the number of spine switches (equivalently, the
	// number of uplinks per leaf). Cross-leaf flows are spread over
	// the spines by deterministic flow-keyed ECMP. Values below one
	// are treated as one. Ignored when ClosLeafNodes is zero.
	ClosSpines int
	// ClosUplinkBandwidth is the per-direction bandwidth of one
	// leaf<->spine uplink in bytes/s. Zero means LinkBandwidth. The
	// leaf oversubscription ratio is then
	// ClosLeafNodes*LinkBandwidth / (ClosSpines*ClosUplinkBandwidth);
	// see Config.ClosOversubscription.
	ClosUplinkBandwidth float64

	// ---- RNIC ----

	// NICProcess is the per-WQE processing time in the NIC pipeline
	// (each direction).
	NICProcess time.Duration
	// NICDoorbell is the PIO cost of ringing the NIC doorbell from the
	// host CPU (charged to the posting thread).
	NICDoorbell time.Duration
	// MaxInline is the largest payload (bytes) that can ride inside the
	// WQE itself. Inline sends are PIO-copied by the posting CPU
	// (charged at InlineBandwidth) and skip the NIC's payload DMA read
	// entirely — the HERD/FaSST-style small-message fast path.
	MaxInline int
	// InlineBandwidth is the effective host bandwidth of write-combined
	// PIO stores when building an inline WQE, in bytes/s (charged to
	// the posting thread, per byte of inline payload).
	InlineBandwidth float64
	// NICInlineProcess is the per-WQE NIC processing time for inline
	// WQEs. It is lower than NICProcess because the doorbell write
	// carries the whole WQE (BlueFlame-style), so the NIC skips its
	// DMA fetch of the WQE and gather list from the host send queue.
	NICInlineProcess time.Duration
	// DMABandwidth is the NIC<->host DMA engine bandwidth in bytes/s.
	DMABandwidth float64
	// MRKeyCacheEntries is the number of memory-region protection keys
	// (lkey/rkey + base/bounds) the NIC SRAM can hold.
	MRKeyCacheEntries int
	// MRKeyMissBase is the base penalty for fetching an MR key from
	// host memory on an SRAM miss.
	MRKeyMissBase time.Duration
	// MRKeyMissPerLog2 grows the miss penalty with the host-side table
	// size (hash/radix walk gets deeper as the table grows).
	MRKeyMissPerLog2 time.Duration
	// PTECacheBytes is how much mapped memory the NIC's cached page
	// table entries can cover (paper: thrashing above ~4 MB).
	PTECacheBytes int64
	// PTEMiss is the penalty for fetching one PTE from the host.
	PTEMiss time.Duration
	// QPCacheEntries is the number of QP contexts NIC SRAM holds.
	QPCacheEntries int
	// QPMiss is the penalty for reloading an evicted QP context.
	QPMiss time.Duration
	// AtomicProcess is the extra remote-NIC time for a masked atomic.
	AtomicProcess time.Duration
	// UDHeader is the extra bytes of a UD datagram (GRH).
	UDHeader int
	// RNRRetryDelay is the retry delay when a send finds no posted
	// receive buffer (receiver-not-ready).
	RNRRetryDelay time.Duration
	// RNRRetryMax is how many receiver-not-ready retries are attempted
	// before completing the send in error.
	RNRRetryMax int
	// WireHeader is the per-message wire header size in bytes (RC).
	WireHeader int
	// AckBytes is the size of an RC acknowledgment on the wire.
	AckBytes int
	// RCTimeout is the reliable-connection transport timeout after
	// which an unacknowledged operation completes in error.
	RCTimeout time.Duration
	// QPConnectTime is the cost of establishing one RC connection the
	// cold way: the rdma_cm exchange (route resolution, REQ/REP/RTU)
	// plus driver-side INIT→RTR→RTS modify_qp transitions. Hundreds of
	// microseconds in practice — the figure KRCORE-style leasing avoids.
	QPConnectTime time.Duration
	// QPLeaseGrant is the cost of leasing an already-established QP
	// from a kernel-resident connection pool: a lookup and an ownership
	// handoff, no wire exchange and no QP state transitions.
	QPLeaseGrant time.Duration

	// ---- Host memory ----

	// PageSize is the host page size in bytes.
	PageSize int64
	// MemcpyBandwidth is host memcpy bandwidth in bytes/s.
	MemcpyBandwidth float64
	// PinPerPage is the per-page cost of pinning (get_user_pages) when
	// registering a virtual-address MR.
	PinPerPage time.Duration
	// UnpinPerPage is the per-page cost of unpinning at deregister.
	UnpinPerPage time.Duration
	// MRRegisterBase is the fixed software cost of (de)registering an
	// MR with the driver.
	MRRegisterBase time.Duration
	// PageAllocPerPage is the kernel page-allocator cost per page for
	// physically contiguous allocations (used by LT_malloc).
	PageAllocPerPage time.Duration

	// ---- Host OS ----

	// SyscallCrossing is the cost of one user<->kernel crossing.
	SyscallCrossing time.Duration
	// KernelDispatch is the fixed in-kernel dispatch cost of a LITE
	// syscall (argument checks, routing to the LITE stack).
	KernelDispatch time.Duration
	// LITECheck is LITE's metadata cost per operation: lh lookup,
	// permission check and address mapping (paper: < 0.3 us total
	// metadata handling; mapping+protection is the dominant part).
	LITECheck time.Duration
	// AdmissionCheck is the per-request cost of the server-side
	// admission-control gate (queue-depth load, high-water compare),
	// charged only when a high-water mark is configured.
	AdmissionCheck time.Duration
	// FairAdmissionCheck is the extra per-request cost of the
	// cost-aware fair admission policy (per-client cost lookup, EWMA
	// update, deficit-round-robin accounting), charged on top of
	// AdmissionCheck when Options.FairAdmission is enabled.
	FairAdmissionCheck time.Duration
	// TenantCheck is the extra per-request cost of resolving a tenant
	// tag: credential/namespace lookup plus the weighted-credit
	// accounting, charged on top of FairAdmissionCheck for requests
	// carrying a nonzero tenant ID.
	TenantCheck time.Duration
	// AdmissionHintCap caps the Retry-After hint carried in a shed
	// notification; a hint is advice about queue drain, not a lease,
	// and must never park a client for longer than a timeout would.
	AdmissionHintCap time.Duration
	// AdmissionBankShares caps how much unused fair share an idle
	// client (or tenant) may bank as deficit-round-robin credit,
	// expressed in shares: a client's carried deficit never exceeds
	// AdmissionBankShares x its per-round share, so an idle client
	// cannot hoard unbounded admission credit.
	AdmissionBankShares int
	// AdaptivePollWindow is how long the LITE user library busy-checks
	// the shared completion page before sleeping (5.2's adaptive
	// thread model).
	AdaptivePollWindow time.Duration
	// WakeupLatency is the scheduler wakeup cost after a sleep-wait.
	WakeupLatency time.Duration

	// ---- TCP/IP (IPoIB) ----

	// TCPPerMessage is the per-sendmsg software cost (syscall, socket
	// locking, skb setup) on each side.
	TCPPerMessage time.Duration
	// TCPPerPacket is the per-MTU-packet stack cost on each side.
	TCPPerPacket time.Duration
	// TCPMTU is the IPoIB MTU in bytes (connected mode).
	TCPMTU int
	// TCPCopyBandwidth is the effective per-byte software bandwidth of
	// the TCP path (copies, checksums, segmentation combined).
	TCPCopyBandwidth float64
	// TCPWindow caps in-flight bytes per connection.
	TCPWindow int64
}

// Default returns the calibrated cost model.
func Default() Config {
	return Config{
		LinkBandwidth:    4.2e9,
		PropagationDelay: 300 * time.Nanosecond,
		SwitchDelay:      100 * time.Nanosecond,

		NICProcess:        180 * time.Nanosecond,
		NICDoorbell:       100 * time.Nanosecond,
		MaxInline:         256,
		InlineBandwidth:   8e9,
		NICInlineProcess:  100 * time.Nanosecond,
		DMABandwidth:      9e9,
		MRKeyCacheEntries: 128,
		MRKeyMissBase:     900 * time.Nanosecond,
		MRKeyMissPerLog2:  150 * time.Nanosecond,
		PTECacheBytes:     4 << 20,
		PTEMiss:           800 * time.Nanosecond,
		QPCacheEntries:    256,
		QPMiss:            600 * time.Nanosecond,
		AtomicProcess:     500 * time.Nanosecond,
		UDHeader:          40,
		RNRRetryDelay:     2 * time.Microsecond,
		RNRRetryMax:       16,
		WireHeader:        30,
		AckBytes:          16,
		RCTimeout:         4 * time.Millisecond,
		QPConnectTime:     600 * time.Microsecond,
		QPLeaseGrant:      1 * time.Microsecond,

		PageSize:         4096,
		MemcpyBandwidth:  6e9,
		PinPerPage:       400 * time.Nanosecond,
		UnpinPerPage:     250 * time.Nanosecond,
		MRRegisterBase:   4 * time.Microsecond,
		PageAllocPerPage: 30 * time.Nanosecond,

		SyscallCrossing:     85 * time.Nanosecond,
		KernelDispatch:      60 * time.Nanosecond,
		LITECheck:           120 * time.Nanosecond,
		AdmissionCheck:      20 * time.Nanosecond,
		FairAdmissionCheck:  60 * time.Nanosecond,
		TenantCheck:         15 * time.Nanosecond,
		AdmissionHintCap:    2 * time.Millisecond,
		AdmissionBankShares: 2,
		AdaptivePollWindow:  8 * time.Microsecond,
		WakeupLatency:       1500 * time.Nanosecond,

		TCPPerMessage:    4 * time.Microsecond,
		TCPPerPacket:     5 * time.Microsecond,
		TCPMTU:           65520,
		TCPCopyBandwidth: 1.8e9,
		TCPWindow:        1 << 20,
	}
}

// ClosOversubscription returns the leaf oversubscription ratio: the
// aggregate host-facing bandwidth of one leaf divided by its aggregate
// uplink bandwidth. It is 1 for the single-switch config.
func (c *Config) ClosOversubscription() float64 {
	if c.ClosLeafNodes <= 0 {
		return 1
	}
	spines := c.ClosSpines
	if spines < 1 {
		spines = 1
	}
	up := c.ClosUplinkBandwidth
	if up <= 0 {
		up = c.LinkBandwidth
	}
	return float64(c.ClosLeafNodes) * c.LinkBandwidth / (float64(spines) * up)
}

// TransferTime returns the time to move n bytes at bw bytes/second.
func TransferTime(n int64, bw float64) time.Duration {
	if n <= 0 || bw <= 0 {
		return 0
	}
	return time.Duration(float64(n) / bw * float64(time.Second))
}

// Pages returns how many pages of size pageSize the byte range of
// length n spans, assuming page-aligned start.
func Pages(n, pageSize int64) int64 {
	if n <= 0 {
		return 0
	}
	return (n + pageSize - 1) / pageSize
}
