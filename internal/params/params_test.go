package params

import (
	"testing"
	"time"
)

func TestTransferTime(t *testing.T) {
	if got := TransferTime(1e9, 1e9); got != time.Second {
		t.Fatalf("1GB at 1GB/s = %v", got)
	}
	if got := TransferTime(0, 1e9); got != 0 {
		t.Fatalf("zero bytes = %v", got)
	}
	if got := TransferTime(100, 0); got != 0 {
		t.Fatalf("zero bandwidth = %v", got)
	}
	if got := TransferTime(-5, 1e9); got != 0 {
		t.Fatalf("negative bytes = %v", got)
	}
}

func TestPages(t *testing.T) {
	cases := []struct{ n, ps, want int64 }{
		{0, 4096, 0}, {1, 4096, 1}, {4096, 4096, 1}, {4097, 4096, 2}, {-1, 4096, 0},
	}
	for _, c := range cases {
		if got := Pages(c.n, c.ps); got != c.want {
			t.Errorf("Pages(%d, %d) = %d, want %d", c.n, c.ps, got, c.want)
		}
	}
}

func TestDefaultsSane(t *testing.T) {
	c := Default()
	if c.LinkBandwidth <= 0 || c.DMABandwidth <= 0 || c.MemcpyBandwidth <= 0 {
		t.Fatal("bandwidths must be positive")
	}
	if c.PageSize <= 0 || c.PTECacheBytes < c.PageSize {
		t.Fatal("page geometry invalid")
	}
	if c.MRKeyCacheEntries < 1 || c.QPCacheEntries < 1 {
		t.Fatal("cache sizes invalid")
	}
	// The paper's calibration anchors.
	if c.PTECacheBytes != 4<<20 {
		t.Fatalf("PTE cache = %d, want the paper's 4MB knee", c.PTECacheBytes)
	}
	if c.RCTimeout <= c.RNRRetryDelay*time.Duration(c.RNRRetryMax) {
		t.Fatal("RC timeout must exceed the RNR retry budget")
	}
}
