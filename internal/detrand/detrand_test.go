package detrand

import "testing"

func TestDeterministicStream(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must reproduce the same stream")
		}
	}
	c := New(43)
	if a.Uint64() == c.Uint64() && a.Uint64() == c.Uint64() {
		t.Fatal("different seeds should diverge")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v outside [0,1)", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(2)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only hit %d values", len(seen))
	}
}

func TestZipfSkewAndBounds(t *testing.T) {
	z := NewZipf(3, 1.6, 1000)
	counts := make([]int, 1000)
	const n = 50000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("Zipf sample %d out of range", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate: far above the uniform share.
	if counts[0] < 10*n/1000 {
		t.Fatalf("Zipf not skewed: rank-0 count %d of %d", counts[0], n)
	}
	// And the distribution must be decreasing in aggregate: the top 10
	// ranks together should carry a large share.
	top := 0
	for i := 0; i < 10; i++ {
		top += counts[i]
	}
	if top < n/4 {
		t.Fatalf("top-10 share too small: %d of %d", top, n)
	}
}

func TestZipfDeterministic(t *testing.T) {
	a, b := NewZipf(9, 1.8, 500), NewZipf(9, 1.8, 500)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must reproduce the same Zipf stream")
		}
	}
}
